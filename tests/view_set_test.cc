#include "analysis/view_set.h"

#include <gtest/gtest.h>

#include "analysis/delayed_read.h"
#include "analysis/pwsr.h"
#include "analysis/serializability.h"
#include "common/rng.h"

namespace nse {
namespace {

class ViewSetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.AddIntItems({"a", "b", "c"}, -8, 8).ok());
  }
  Database db_;
};

TEST_F(ViewSetTest, Lemma2RecurrenceByHand) {
  // S: w1(a,1), r2(a,1), w1(b,2), r2(c,0) over d = {a, b}.
  // Serialization order of S^d: T1, T2.
  ScheduleBuilder sb(db_);
  sb.W(1, "a", Value(1))
      .R(2, "a", Value(1))
      .W(1, "b", Value(2))
      .R(2, "c", Value(0));
  Schedule s = sb.Build();
  DataSet d = db_.SetOf({"a", "b"});
  std::vector<TxnId> order{1, 2};
  // p = position 1 (r2(a,1)). T1 writes b after p, so VS(T2) = d - {b}.
  auto vs = ComputeViewSets(s, d, order, /*p=*/1, ViewSetVariant::kGeneral);
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0], d);
  EXPECT_EQ(vs[1], db_.SetOf({"a"}));
  // At p = 3 (end), T1 has no writes after p: VS(T2) = d.
  auto vs_end =
      ComputeViewSets(s, d, order, /*p=*/3, ViewSetVariant::kGeneral);
  EXPECT_EQ(vs_end[1], d);
}

TEST_F(ViewSetTest, Lemma6RecurrenceByHand) {
  // Same schedule; DR variant distinguishes completed vs incomplete T1.
  ScheduleBuilder sb(db_);
  sb.W(1, "a", Value(1))
      .R(2, "a", Value(1))
      .W(1, "b", Value(2))
      .R(2, "c", Value(0));
  Schedule s = sb.Build();
  DataSet d = db_.SetOf({"a", "b"});
  std::vector<TxnId> order{1, 2};
  // At p = 1 T1 is incomplete: VS(T2) = d − WS(T1^d) = {} (T1 writes a, b).
  auto vs =
      ComputeViewSets(s, d, order, /*p=*/1, ViewSetVariant::kDelayedRead);
  EXPECT_EQ(vs[1], DataSet());
  // At p = 3 T1 completed: VS(T2) = d ∪ WS(T1^d) = d.
  auto vs_end =
      ComputeViewSets(s, d, order, /*p=*/3, ViewSetVariant::kDelayedRead);
  EXPECT_EQ(vs_end[1], d);
}

TEST_F(ViewSetTest, SoundnessWitnessOnPaperStyleSchedule) {
  // The schedule of Lemma 2's use in Example 2's analysis: no transaction
  // reads outside its view set at any p.
  ScheduleBuilder sb(db_);
  sb.W(1, "a", Value(1))
      .R(2, "a", Value(1))
      .R(2, "b", Value(-1))
      .W(2, "c", Value(-1))
      .R(1, "c", Value(-1));
  Schedule s = sb.Build();
  DataSet d1 = db_.SetOf({"a", "b"});
  auto order = CheckConflictSerializability(s.Project(d1)).order;
  ASSERT_TRUE(order.has_value());
  for (size_t p = 0; p < s.size(); ++p) {
    EXPECT_EQ(FindViewSetUnsoundness(s, d1, *order, p,
                                     ViewSetVariant::kGeneral),
              std::nullopt)
        << "at p=" << p;
  }
}

struct ViewSetSweepParam {
  uint64_t seed;
  ViewSetVariant variant;
};

class ViewSetPropertyTest
    : public ::testing::TestWithParam<ViewSetSweepParam> {};

TEST_P(ViewSetPropertyTest, Lemma2And6SoundOnRandomSchedules) {
  // Lemma 2 (general) / Lemma 6 (DR schedules): for every serializable
  // projection, serialization order, and position p,
  // RS(before(T^d_i, p, S)) ⊆ VS(T_i, p, d, S).
  const auto& param = GetParam();
  Database db;
  ASSERT_TRUE(db.AddIntItems({"x", "y", "z", "w"}, -8, 8).ok());
  Rng rng(param.seed);
  int usable = 0;
  for (int trial = 0; trial < 400 && usable < 60; ++trial) {
    OpSequence ops;
    for (int step = 0; step < 8; ++step) {
      TxnId txn = static_cast<TxnId>(rng.NextBelow(3) + 1);
      ItemId item = static_cast<ItemId>(rng.NextBelow(4));
      if (rng.NextBool(0.5)) {
        ops.push_back(Operation::Write(txn, item, Value(step)));
      } else {
        ops.push_back(Operation::Read(txn, item, Value(0)));
      }
    }
    Schedule s(std::move(ops));
    if (param.variant == ViewSetVariant::kDelayedRead && !IsDelayedRead(s)) {
      continue;
    }
    // Random projection set d.
    DataSet d;
    for (ItemId item = 0; item < 4; ++item) {
      if (rng.NextBool(0.6)) d.Insert(item);
    }
    if (d.empty()) continue;
    auto csr = CheckConflictSerializability(s.Project(d));
    if (!csr.serializable) continue;
    ++usable;
    for (size_t p = 0; p < s.size(); ++p) {
      EXPECT_EQ(FindViewSetUnsoundness(s, d, *csr.order, p, param.variant),
                std::nullopt)
          << s.ToString(db) << " d=" << db.DataSetToString(d) << " p=" << p;
    }
  }
  EXPECT_GT(usable, 10);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ViewSetPropertyTest,
    ::testing::Values(ViewSetSweepParam{101, ViewSetVariant::kGeneral},
                      ViewSetSweepParam{202, ViewSetVariant::kGeneral},
                      ViewSetSweepParam{303, ViewSetVariant::kDelayedRead},
                      ViewSetSweepParam{404, ViewSetVariant::kDelayedRead}));

}  // namespace
}  // namespace nse
