#include "txn/schedule.h"

#include <gtest/gtest.h>

namespace nse {
namespace {

class ScheduleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.AddIntItems({"a", "b", "c", "d"}, -32, 32).ok());
  }

  /// The paper's Example 1 schedule:
  /// S: r1(a,0), r2(a,0), w2(d,0), r1(c,5), w1(b,5).
  Schedule Example1Schedule() {
    ScheduleBuilder sb(db_);
    sb.R(1, "a", Value(0))
        .R(2, "a", Value(0))
        .W(2, "d", Value(0))
        .R(1, "c", Value(5))
        .W(1, "b", Value(5));
    return sb.Build();
  }

  Database db_;
};

TEST_F(ScheduleTest, BasicAccessors) {
  Schedule s = Example1Schedule();
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.txn_ids(), (std::vector<TxnId>{1, 2}));
  EXPECT_EQ(s.at(2).ToString(db_), "w2(d, 0)");
  EXPECT_EQ(s.depth(2), 2u);
  EXPECT_EQ(s.ToString(db_),
            "r1(a, 0), r2(a, 0), w2(d, 0), r1(c, 5), w1(b, 5)");
}

TEST_F(ScheduleTest, TransactionExtraction) {
  Schedule s = Example1Schedule();
  Transaction t1 = s.TransactionOf(1);
  Transaction t2 = s.TransactionOf(2);
  EXPECT_EQ(t1.ToString(db_), "T1: r1(a, 0), r1(c, 5), w1(b, 5)");
  EXPECT_EQ(t2.ToString(db_), "T2: r2(a, 0), w2(d, 0)");
  EXPECT_TRUE(s.TransactionOf(9).empty());
  EXPECT_EQ(s.Transactions().size(), 2u);
}

TEST_F(ScheduleTest, ProjectionMatchesPaper) {
  // S^{a,c} = r1(a,0), r2(a,0), r1(c,5).
  Schedule proj = Example1Schedule().Project(db_.SetOf({"a", "c"}));
  EXPECT_EQ(proj.ToString(db_), "r1(a, 0), r2(a, 0), r1(c, 5)");
}

TEST_F(ScheduleTest, BeforeAfterSemantics) {
  Schedule s = Example1Schedule();
  // p = w2(d, 0) at position 2.
  size_t p = 2;
  // before(T2, p, S) includes p itself (p ∈ T2): r2(a,0), w2(d,0).
  EXPECT_EQ(OpsToString(db_, s.BeforeOfTxn(2, p)), "r2(a, 0), w2(d, 0)");
  // before(T1, p, S) excludes p (p ∉ T1): r1(a,0).
  EXPECT_EQ(OpsToString(db_, s.BeforeOfTxn(1, p)), "r1(a, 0)");
  // after(T1, p, S) = r1(c,5), w1(b,5) — the paper's example.
  EXPECT_EQ(OpsToString(db_, s.AfterOfTxn(1, p)), "r1(c, 5), w1(b, 5)");
  // after(T2, p, S) = ε.
  EXPECT_TRUE(s.AfterOfTxn(2, p).empty());
  // Schedule prefix through p.
  EXPECT_EQ(s.BeforeAll(p).size(), 3u);
}

TEST_F(ScheduleTest, CompletionTracking) {
  Schedule s = Example1Schedule();
  EXPECT_EQ(s.LastOpIndexOf(1), 4u);
  EXPECT_EQ(s.LastOpIndexOf(2), 2u);
  EXPECT_EQ(s.LastOpIndexOf(9), std::nullopt);
  EXPECT_TRUE(s.CompletedBy(2, 2));
  EXPECT_FALSE(s.CompletedBy(1, 2));
  EXPECT_TRUE(s.CompletedBy(1, 4));
  EXPECT_TRUE(s.CompletedBy(9, 0));  // absent txn is vacuously complete
}

TEST_F(ScheduleTest, ExecuteAppliesWritesAndChecksReads) {
  Schedule s = Example1Schedule();
  DbState ds1 = DbState::OfNamed(db_, {{"a", Value(0)},
                                       {"b", Value(10)},
                                       {"c", Value(5)},
                                       {"d", Value(10)}});
  auto result = s.Execute(ds1);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->reads_consistent());
  EXPECT_EQ(result->final_state,
            DbState::OfNamed(db_, {{"a", Value(0)},
                                   {"b", Value(5)},
                                   {"c", Value(5)},
                                   {"d", Value(0)}}));
}

TEST_F(ScheduleTest, ExecuteFlagsReadMismatches) {
  Schedule s = Example1Schedule();
  DbState wrong = DbState::OfNamed(db_, {{"a", Value(7)},
                                         {"b", Value(10)},
                                         {"c", Value(5)},
                                         {"d", Value(10)}});
  auto result = s.Execute(wrong);
  ASSERT_TRUE(result.ok());
  // Both reads of a (positions 0 and 1) see 7, not the recorded 0.
  EXPECT_EQ(result->read_mismatches, (std::vector<size_t>{0, 1}));
}

TEST_F(ScheduleTest, ExecuteFailsOnUnassignedRead) {
  Schedule s = Example1Schedule();
  DbState partial = DbState::OfNamed(db_, {{"a", Value(0)}});
  auto result = s.Execute(partial);
  EXPECT_FALSE(result.ok());
}

TEST_F(ScheduleTest, ReadOfOwnWritePassesValidation) {
  ScheduleBuilder sb(db_);
  sb.W(1, "a", Value(3)).R(2, "a", Value(3));
  auto result = sb.Build().Execute(DbState::OfNamed(db_, {{"a", Value(0)}}));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->reads_consistent());
}

TEST_F(ScheduleTest, PinnedInitialReads) {
  // First op per item pins it only if it is a read.
  Schedule s = Example1Schedule();
  DbState pinned = s.PinnedInitialReads();
  // a first touched by r1(a,0): pinned to 0. c pinned to 5.
  // d first touched by w2: free. b first touched by w1: free.
  EXPECT_EQ(pinned,
            DbState::OfNamed(db_, {{"a", Value(0)}, {"c", Value(5)}}));
}

TEST_F(ScheduleTest, FromOpsValidatesDerivedTransactions) {
  OpSequence bad{Operation::Read(1, db_.MustFind("a"), Value(0)),
                 Operation::Read(1, db_.MustFind("a"), Value(0))};
  EXPECT_FALSE(Schedule::FromOps(bad).ok());
  OpSequence good{Operation::Read(1, db_.MustFind("a"), Value(0)),
                  Operation::Read(2, db_.MustFind("a"), Value(0))};
  EXPECT_TRUE(Schedule::FromOps(good).ok());
}

TEST_F(ScheduleTest, EmptySchedule) {
  Schedule s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.txn_ids().empty());
  auto result = s.Execute(DbState());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->final_state.empty());
  EXPECT_TRUE(s.AccessedItems().empty());
}

}  // namespace
}  // namespace nse
