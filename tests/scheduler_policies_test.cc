// Policy-output class membership: every schedule a policy emits must lie in
// the class the policy promises (strict 2PL ⇒ CSR ∧ strict; PW-2PL ⇒ PWSR;
// PW-2PL+DR ⇒ PWSR ∧ DR). Verified against generated workloads across
// seeds — the executable counterpart of the paper's §3 schedule classes.

#include <algorithm>

#include <gtest/gtest.h>

#include "analysis/delayed_read.h"
#include "analysis/pwsr.h"
#include "analysis/serializability.h"
#include "scheduler/dr_scheduler.h"
#include "scheduler/metrics.h"
#include "scheduler/pw_two_phase_locking.h"
#include "scheduler/sim.h"
#include "scheduler/two_phase_locking.h"
#include "scheduler/workload.h"

namespace nse {
namespace {

Workload MakeTestWorkload(uint64_t seed, size_t num_txns = 6) {
  PartitionedWorkloadConfig config;
  config.num_partitions = 4;
  config.items_per_partition = 2;
  config.num_txns = num_txns;
  config.partitions_per_txn = 3;
  config.cross_read_probability = 0.4;
  config.acyclic_cross_reads = false;
  config.seed = seed;
  auto workload = MakePartitionedWorkload(config);
  EXPECT_TRUE(workload.ok()) << workload.status();
  return std::move(workload).value();
}

class PolicyClassTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PolicyClassTest, Strict2plProducesCsrStrictSchedules) {
  Workload workload = MakeTestWorkload(GetParam());
  StrictTwoPhaseLocking policy;
  auto result = RunSimulation(policy, workload.scripts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, workload.scripts.size());
  EXPECT_TRUE(IsConflictSerializable(result->schedule));
  EXPECT_TRUE(IsStrict(result->schedule));
  EXPECT_TRUE(IsDelayedRead(result->schedule));
  // CSR implies PWSR for any conjunct partition.
  EXPECT_TRUE(CheckPwsr(result->schedule, *workload.ic).is_pwsr);
}

TEST_P(PolicyClassTest, Pw2plProducesPwsrSchedules) {
  Workload workload = MakeTestWorkload(GetParam());
  PredicatewiseTwoPhaseLocking policy(&*workload.ic);
  auto result = RunSimulation(policy, workload.scripts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, workload.scripts.size());
  EXPECT_TRUE(CheckPwsr(result->schedule, *workload.ic).is_pwsr)
      << result->schedule.ToString(workload.db);
}

TEST_P(PolicyClassTest, DrSchedulerProducesPwsrAndDrSchedules) {
  Workload workload = MakeTestWorkload(GetParam());
  DelayedReadScheduler policy(&*workload.ic);
  auto result = RunSimulation(policy, workload.scripts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, workload.scripts.size());
  EXPECT_TRUE(CheckPwsr(result->schedule, *workload.ic).is_pwsr);
  EXPECT_TRUE(IsDelayedRead(result->schedule))
      << result->schedule.ToString(workload.db);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyClassTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(PolicyBehaviorTest, Pw2plAllowsNonSerializableInterleavings) {
  // The enabling observation of the paper: across seeds, PW-2PL sometimes
  // emits schedules that are PWSR but NOT serializable. (Strict 2PL never
  // does.) At least one seed in a modest sweep must exhibit this.
  bool found_non_csr = false;
  for (uint64_t seed = 1; seed <= 30 && !found_non_csr; ++seed) {
    Workload workload = MakeTestWorkload(seed, /*num_txns=*/8);
    PredicatewiseTwoPhaseLocking policy(&*workload.ic);
    auto result = RunSimulation(policy, workload.scripts);
    ASSERT_TRUE(result.ok());
    if (!IsConflictSerializable(result->schedule)) {
      found_non_csr = true;
      EXPECT_TRUE(CheckPwsr(result->schedule, *workload.ic).is_pwsr);
    }
  }
  EXPECT_TRUE(found_non_csr)
      << "PW-2PL never relaxed serializability across 30 seeds; "
         "the policy is likely over-locking";
}

TEST(PolicyBehaviorTest, Pw2plWaitsNoWorseThan2plOnPartitionedWork) {
  // Aggregate wait time under PW-2PL must not exceed strict 2PL on the CAD
  // style workload (it releases locks earlier, never later).
  SeriesSummary ratio;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    auto workload = MakeCadWorkload(/*num_txns=*/6, /*ops_per_txn=*/16,
                                    /*num_partitions=*/6, seed);
    ASSERT_TRUE(workload.ok());
    StrictTwoPhaseLocking strict;
    auto strict_result = RunSimulation(strict, workload->scripts);
    ASSERT_TRUE(strict_result.ok());
    PredicatewiseTwoPhaseLocking pw(&*workload->ic);
    auto pw_result = RunSimulation(pw, workload->scripts);
    ASSERT_TRUE(pw_result.ok());
    EXPECT_LE(pw_result->makespan, strict_result->makespan + 2)
        << "seed " << seed;
    ratio.Add(static_cast<double>(pw_result->total_wait_ticks) -
              static_cast<double>(strict_result->total_wait_ticks));
  }
  // On average PW-2PL waits strictly less.
  EXPECT_LE(ratio.mean(), 0.0);
}

TEST(DrSchedulerStallTest, OnlineWaitsForDetectsCommitGateDeadlock) {
  // The DR scheduler's stall handling maintains its own incremental
  // waits-for graph: when the commit-gated reads close a wait cycle the
  // policy knows without any external per-tick DFS.
  Database db;
  ASSERT_TRUE(db.AddIntItems({"a", "b"}, -8, 8).ok());
  auto ic = IntegrityConstraint::Parse(db, "a = b");
  ASSERT_TRUE(ic.ok()) << ic.status();
  DelayedReadScheduler policy(&*ic);

  ItemId a = db.MustFind("a");
  ItemId b = db.MustFind("b");
  TxnScript t1;
  t1.steps = {{OpAction::kWrite, a}, {OpAction::kRead, b}};
  TxnScript t2;
  t2.steps = {{OpAction::kWrite, b}, {OpAction::kRead, a}};

  // Both writes proceed and leave dirty, incomplete writers behind.
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 2, t2, 0), AccessVerdict::kGranted);
  EXPECT_FALSE(policy.StalledCycle().has_value());

  // T1's read of b is commit-gated on T2; no cycle yet.
  EXPECT_EQ(Access(policy, 1, t1, 1), AccessVerdict::kWait);
  EXPECT_FALSE(policy.StalledCycle().has_value());
  EXPECT_EQ(policy.wait_events(), 1u);

  // T2's read of a closes the wait cycle — detected at the insertion.
  EXPECT_EQ(Access(policy, 2, t2, 1), AccessVerdict::kWait);
  ASSERT_TRUE(policy.StalledCycle().has_value());
  const std::vector<TxnId>& cycle = *policy.StalledCycle();
  EXPECT_EQ(cycle.front(), cycle.back());
  EXPECT_NE(std::find(cycle.begin(), cycle.end(), TxnId{1}), cycle.end());
  EXPECT_NE(std::find(cycle.begin(), cycle.end(), TxnId{2}), cycle.end());

  // Aborting one participant resolves the policy's deadlock state, and the
  // survivor's retried read goes through once the victim's marks are gone.
  policy.Abort(2);
  EXPECT_FALSE(policy.StalledCycle().has_value());
  EXPECT_EQ(Access(policy, 1, t1, 1), AccessVerdict::kGranted);
}

TEST(DrSchedulerStallTest, SimResolvesCommitGateDeadlock) {
  // End to end: the same deadlock under the simulator — victim abort,
  // restart, both complete, and the trace keeps the policy's promises.
  Database db;
  ASSERT_TRUE(db.AddIntItems({"a", "b"}, -8, 8).ok());
  auto ic = IntegrityConstraint::Parse(db, "a = b");
  ASSERT_TRUE(ic.ok()) << ic.status();
  DelayedReadScheduler policy(&*ic);

  ItemId a = db.MustFind("a");
  ItemId b = db.MustFind("b");
  TxnScript t1;
  t1.steps = {{OpAction::kWrite, a}, {OpAction::kRead, b}};
  TxnScript t2;
  t2.steps = {{OpAction::kWrite, b}, {OpAction::kRead, a}};

  auto result = RunSimulation(policy, {t1, t2});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, 2u);
  EXPECT_GE(result->aborts, 1u);
  EXPECT_GT(policy.wait_events(), 0u);
  EXPECT_TRUE(IsDelayedRead(result->schedule));
  EXPECT_TRUE(CheckPwsr(result->schedule, *ic).is_pwsr);
}

}  // namespace
}  // namespace nse
