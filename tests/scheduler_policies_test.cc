// Policy-output class membership: every schedule a policy emits must lie in
// the class the policy promises (strict 2PL ⇒ CSR ∧ strict; PW-2PL ⇒ PWSR;
// PW-2PL+DR ⇒ PWSR ∧ DR). Verified against generated workloads across
// seeds — the executable counterpart of the paper's §3 schedule classes.

#include <gtest/gtest.h>

#include "analysis/delayed_read.h"
#include "analysis/pwsr.h"
#include "analysis/serializability.h"
#include "scheduler/dr_scheduler.h"
#include "scheduler/metrics.h"
#include "scheduler/pw_two_phase_locking.h"
#include "scheduler/sim.h"
#include "scheduler/two_phase_locking.h"
#include "scheduler/workload.h"

namespace nse {
namespace {

Workload MakeTestWorkload(uint64_t seed, size_t num_txns = 6) {
  PartitionedWorkloadConfig config;
  config.num_partitions = 4;
  config.items_per_partition = 2;
  config.num_txns = num_txns;
  config.partitions_per_txn = 3;
  config.cross_read_probability = 0.4;
  config.acyclic_cross_reads = false;
  config.seed = seed;
  auto workload = MakePartitionedWorkload(config);
  EXPECT_TRUE(workload.ok()) << workload.status();
  return std::move(workload).value();
}

class PolicyClassTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PolicyClassTest, Strict2plProducesCsrStrictSchedules) {
  Workload workload = MakeTestWorkload(GetParam());
  StrictTwoPhaseLocking policy;
  auto result = RunSimulation(policy, workload.scripts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, workload.scripts.size());
  EXPECT_TRUE(IsConflictSerializable(result->schedule));
  EXPECT_TRUE(IsStrict(result->schedule));
  EXPECT_TRUE(IsDelayedRead(result->schedule));
  // CSR implies PWSR for any conjunct partition.
  EXPECT_TRUE(CheckPwsr(result->schedule, *workload.ic).is_pwsr);
}

TEST_P(PolicyClassTest, Pw2plProducesPwsrSchedules) {
  Workload workload = MakeTestWorkload(GetParam());
  PredicatewiseTwoPhaseLocking policy(&*workload.ic);
  auto result = RunSimulation(policy, workload.scripts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, workload.scripts.size());
  EXPECT_TRUE(CheckPwsr(result->schedule, *workload.ic).is_pwsr)
      << result->schedule.ToString(workload.db);
}

TEST_P(PolicyClassTest, DrSchedulerProducesPwsrAndDrSchedules) {
  Workload workload = MakeTestWorkload(GetParam());
  DelayedReadScheduler policy(&*workload.ic);
  auto result = RunSimulation(policy, workload.scripts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, workload.scripts.size());
  EXPECT_TRUE(CheckPwsr(result->schedule, *workload.ic).is_pwsr);
  EXPECT_TRUE(IsDelayedRead(result->schedule))
      << result->schedule.ToString(workload.db);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyClassTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(PolicyBehaviorTest, Pw2plAllowsNonSerializableInterleavings) {
  // The enabling observation of the paper: across seeds, PW-2PL sometimes
  // emits schedules that are PWSR but NOT serializable. (Strict 2PL never
  // does.) At least one seed in a modest sweep must exhibit this.
  bool found_non_csr = false;
  for (uint64_t seed = 1; seed <= 30 && !found_non_csr; ++seed) {
    Workload workload = MakeTestWorkload(seed, /*num_txns=*/8);
    PredicatewiseTwoPhaseLocking policy(&*workload.ic);
    auto result = RunSimulation(policy, workload.scripts);
    ASSERT_TRUE(result.ok());
    if (!IsConflictSerializable(result->schedule)) {
      found_non_csr = true;
      EXPECT_TRUE(CheckPwsr(result->schedule, *workload.ic).is_pwsr);
    }
  }
  EXPECT_TRUE(found_non_csr)
      << "PW-2PL never relaxed serializability across 30 seeds; "
         "the policy is likely over-locking";
}

TEST(PolicyBehaviorTest, Pw2plWaitsNoWorseThan2plOnPartitionedWork) {
  // Aggregate wait time under PW-2PL must not exceed strict 2PL on the CAD
  // style workload (it releases locks earlier, never later).
  SeriesSummary ratio;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    auto workload = MakeCadWorkload(/*num_txns=*/6, /*ops_per_txn=*/16,
                                    /*num_partitions=*/6, seed);
    ASSERT_TRUE(workload.ok());
    StrictTwoPhaseLocking strict;
    auto strict_result = RunSimulation(strict, workload->scripts);
    ASSERT_TRUE(strict_result.ok());
    PredicatewiseTwoPhaseLocking pw(&*workload->ic);
    auto pw_result = RunSimulation(pw, workload->scripts);
    ASSERT_TRUE(pw_result.ok());
    EXPECT_LE(pw_result->makespan, strict_result->makespan + 2)
        << "seed " << seed;
    ratio.Add(static_cast<double>(pw_result->total_wait_ticks) -
              static_cast<double>(strict_result->total_wait_ticks));
  }
  // On average PW-2PL waits strictly less.
  EXPECT_LE(ratio.mean(), 0.0);
}

}  // namespace
}  // namespace nse
