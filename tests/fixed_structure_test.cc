#include "analysis/fixed_structure.h"

#include <gtest/gtest.h>

#include "paper/paper_examples.h"

namespace nse {
namespace {

class FixedStructureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.AddIntItems({"a", "b", "c", "d"}, -8, 8).ok());
  }
  Database db_;
};

TEST_F(FixedStructureTest, StraightLineProgramsAreFixed) {
  TransactionProgram tp("TP", {MustAssign(db_, "a", "b + 1"),
                               MustAssign(db_, "c", "a * 2")});
  EXPECT_TRUE(IsStraightLine(tp));
  StructureAnalysis analysis = AnalyzeStructure(db_, tp);
  EXPECT_TRUE(analysis.valid);
  EXPECT_TRUE(analysis.fixed);
  EXPECT_EQ(StructToString(db_, analysis.signature),
            "r(b), w(a), w(c)");
  EXPECT_EQ(analysis.paths_explored, 1u);
}

TEST_F(FixedStructureTest, PaperExample2Tp1NotFixed) {
  auto ex = paper::Example2::Make();
  EXPECT_FALSE(IsStraightLine(ex.tp1));
  StructureAnalysis analysis = AnalyzeStructure(ex.db, ex.tp1);
  EXPECT_TRUE(analysis.valid);
  EXPECT_FALSE(analysis.fixed);
  EXPECT_FALSE(analysis.explanation.empty());
  EXPECT_EQ(analysis.paths_explored, 2u);
}

TEST_F(FixedStructureTest, PaperExample2Tp1RepairIsFixed) {
  // TP1' adds "else b := b" — both branches now emit r(b), w(b).
  auto ex = paper::Example2::Make();
  StructureAnalysis analysis = AnalyzeStructure(ex.db, ex.tp1_fixed);
  EXPECT_TRUE(analysis.valid);
  EXPECT_TRUE(analysis.fixed);
  EXPECT_EQ(StructToString(ex.db, analysis.signature),
            "w(a), r(c), r(b), w(b)");
  EXPECT_FALSE(IsStraightLine(ex.tp1_fixed));  // fixed ≠ straight-line
}

TEST_F(FixedStructureTest, BranchesWithSameStructureAreFixed) {
  // if (a > 0) then b := c else b := c * 2 — identical access structure.
  TransactionProgram tp(
      "TP", {MustIf(db_, "a > 0", {MustAssign(db_, "b", "c")},
                    {MustAssign(db_, "b", "c * 2")})});
  StructureAnalysis analysis = AnalyzeStructure(db_, tp);
  EXPECT_TRUE(analysis.fixed);
  EXPECT_EQ(StructToString(db_, analysis.signature), "r(a), r(c), w(b)");
}

TEST_F(FixedStructureTest, CacheAwareStructureComparison) {
  // Branches read the same items in different orders; the emitted structure
  // differs (r(b), r(c) vs r(c), r(b)), so the program is not fixed.
  TransactionProgram tp(
      "TP", {MustIf(db_, "a > 0", {MustAssign(db_, "d", "b + c")},
                    {MustAssign(db_, "d", "c + b")})});
  StructureAnalysis analysis = AnalyzeStructure(db_, tp);
  EXPECT_TRUE(analysis.valid);
  EXPECT_FALSE(analysis.fixed);
}

TEST_F(FixedStructureTest, ReadsBeforeBranchMakeOrderIrrelevant) {
  // Reading b and c before the branch caches them; both branches then emit
  // only w(d) regardless of expression order.
  TransactionProgram tp(
      "TP", {MustAssign(db_, "a", "b + c"),
             MustIf(db_, "a > 0", {MustAssign(db_, "d", "b + c")},
                    {MustAssign(db_, "d", "c + b")})});
  StructureAnalysis analysis = AnalyzeStructure(db_, tp);
  EXPECT_TRUE(analysis.fixed);
}

TEST_F(FixedStructureTest, DoubleWriteDetectedAsInvalid) {
  TransactionProgram tp("TP", {MustAssign(db_, "a", "1"),
                               MustAssign(db_, "a", "2")});
  StructureAnalysis analysis = AnalyzeStructure(db_, tp);
  EXPECT_FALSE(analysis.valid);
  EXPECT_NE(analysis.explanation.find("twice"), std::string::npos);
}

TEST_F(FixedStructureTest, NestedBranchesExploreAllPaths) {
  TransactionProgram tp(
      "TP",
      {MustIf(db_, "a > 0",
              {MustIf(db_, "b > 0", {MustAssign(db_, "c", "1")},
                      {MustAssign(db_, "c", "2")})},
              {MustIf(db_, "b > 0", {MustAssign(db_, "c", "3")},
                      {MustAssign(db_, "c", "4")})})});
  StructureAnalysis analysis = AnalyzeStructure(db_, tp);
  EXPECT_EQ(analysis.paths_explored, 4u);
  EXPECT_TRUE(analysis.fixed);  // all paths: r(a), r(b), w(c)
}

TEST_F(FixedStructureTest, EmptyProgramIsFixed) {
  TransactionProgram tp("TP", {});
  StructureAnalysis analysis = AnalyzeStructure(db_, tp);
  EXPECT_TRUE(analysis.fixed);
  EXPECT_TRUE(analysis.signature.empty());
}

TEST_F(FixedStructureTest, RandomizedTestAgreesWithStaticAnalysis) {
  auto ex = paper::Example2::Make();
  Rng rng(99);
  // TP1 (not fixed): the sampler must find two differing structures
  // (branch taken iff c > 0, both signs sampled with high probability).
  auto tp1_result = TestFixedStructureRandomized(ex.db, ex.tp1, rng, 64);
  ASSERT_TRUE(tp1_result.ok());
  EXPECT_FALSE(*tp1_result);
  // TP1' (fixed): all runs agree.
  auto fixed_result =
      TestFixedStructureRandomized(ex.db, ex.tp1_fixed, rng, 64);
  ASSERT_TRUE(fixed_result.ok());
  EXPECT_TRUE(*fixed_result);
}

class FixedStructureAgreementTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FixedStructureAgreementTest, StaticAndRandomizedAgree) {
  // For a family of generated programs, the exact static analysis and the
  // sampling test must agree whenever sampling has a fair chance (branch
  // conditions with both outcomes reachable over the domain).
  Database db;
  ASSERT_TRUE(db.AddIntItems({"p", "q", "r"}, -4, 4).ok());
  Rng rng(GetParam());
  std::vector<TransactionProgram> programs;
  programs.emplace_back("straight",
                        StmtBlock{MustAssign(db, "p", "q + 1")});
  programs.emplace_back(
      "branch-balanced",
      StmtBlock{MustIf(db, "p > 0", {MustAssign(db, "q", "r")},
                       {MustAssign(db, "q", "r + 1")})});
  programs.emplace_back(
      "branch-lopsided",
      StmtBlock{MustIf(db, "p > 0", {MustAssign(db, "q", "1")},
                       {MustAssign(db, "r", "1")})});
  for (const auto& program : programs) {
    StructureAnalysis analysis = AnalyzeStructure(db, program);
    auto sampled = TestFixedStructureRandomized(db, program, rng, 128);
    ASSERT_TRUE(sampled.ok());
    EXPECT_EQ(analysis.fixed, *sampled) << program.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixedStructureAgreementTest,
                         ::testing::Values(1, 12, 123));

}  // namespace
}  // namespace nse
