#include "analysis/violation_search.h"

#include <gtest/gtest.h>

#include "constraints/solver.h"
#include "paper/paper_examples.h"
#include "scheduler/workload.h"

namespace nse {
namespace {

TEST(ViolationSearchTest, FindsExample2StyleViolationUnderPwsrOnly) {
  // With the non-fixed-structure TP1 and only PWSR required, random search
  // must rediscover Example 2's anomaly.
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  HypothesisFilter filter;
  filter.require_pwsr = true;
  Rng rng(2024);
  auto outcome = SearchForViolations(ex.db, *ex.ic, programs, filter, rng,
                                     /*trials=*/400);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_GT(outcome->violations, 0u);
  ASSERT_TRUE(outcome->first_counterexample.has_value());
  const auto& cex = *outcome->first_counterexample;
  EXPECT_FALSE(cex.report.strongly_correct);
  // The counterexample is reproducible from its recorded pieces.
  auto replay = Interleave(ex.db, programs, cex.initial, cex.choices);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->schedule.ToString(ex.db), cex.schedule.ToString(ex.db));
}

TEST(ViolationSearchTest, FixedStructureFilterShortCircuits) {
  // Requiring fixed structure with Example 2's TP1 filters everything out
  // (Theorem 1's hypothesis cannot be met by these programs).
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  HypothesisFilter filter;
  filter.require_pwsr = true;
  filter.require_fixed_structure = true;
  Rng rng(1);
  auto outcome =
      SearchForViolations(ex.db, *ex.ic, programs, filter, rng, 50);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->checked, 0u);
  EXPECT_EQ(outcome->violations, 0u);
}

TEST(ViolationSearchTest, StopAtFirstStopsEarly) {
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  HypothesisFilter filter;  // no filter: every execution checked
  Rng rng(7);
  auto outcome = SearchForViolations(ex.db, *ex.ic, programs, filter, rng,
                                     10'000, /*stop_at_first=*/true);
  ASSERT_TRUE(outcome.ok());
  ASSERT_GT(outcome->violations, 0u);
  EXPECT_LT(outcome->trials, 10'000u);
}

TEST(ViolationSearchTest, ExhaustiveSearchCoversAllInterleavings) {
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  HypothesisFilter filter;
  filter.require_pwsr = true;
  auto outcome = ExhaustiveViolationSearch(ex.db, *ex.ic, programs,
                                           {ex.ds0}, filter, 10'000);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_GT(outcome->trials, 0u);
  EXPECT_GT(outcome->violations, 0u);
  // The limit was generous: every interleaving really was visited.
  EXPECT_EQ(outcome->truncated, 0u);
  ASSERT_TRUE(outcome->first_counterexample.has_value());
  EXPECT_EQ(outcome->first_counterexample->initial, ex.ds0);
}

TEST(ViolationSearchTest, ExhaustiveSearchReportsTruncation) {
  // With a tiny interleaving limit the enumeration is cut off, and the
  // outcome must say so — a truncated search finding no violation is not
  // evidence of correctness, unlike a filtered-but-exhaustive one.
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  HypothesisFilter filter;
  auto outcome =
      ExhaustiveViolationSearch(ex.db, *ex.ic, programs, {ex.ds0}, filter, 2);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->trials, 2u);
  EXPECT_EQ(outcome->truncated, 1u);
}

/// Canonical parity scenario: enough trials to see violations, filtering,
/// and both exploration styles.
SearchConfig ParityConfig(size_t threads) {
  SearchConfig config;
  config.trials = 300;
  config.threads = threads;
  config.batch_size = 7;  // deliberately unaligned with the trial count
  return config;
}

void ExpectSameOutcome(const SearchOutcome& a, const SearchOutcome& b,
                       const Database& db) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.filtered_out, b.filtered_out);
  EXPECT_EQ(a.checked, b.checked);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.first_violation_trial, b.first_violation_trial);
  ASSERT_EQ(a.first_counterexample.has_value(),
            b.first_counterexample.has_value());
  if (a.first_counterexample.has_value()) {
    EXPECT_EQ(a.first_counterexample->initial, b.first_counterexample->initial);
    EXPECT_EQ(a.first_counterexample->choices, b.first_counterexample->choices);
    EXPECT_EQ(a.first_counterexample->schedule.ToString(db),
              b.first_counterexample->schedule.ToString(db));
  }
}

TEST(ViolationSearchTest, OutcomeIsIdenticalAcrossThreadCounts) {
  // The determinism contract: for a fixed seed, counts and the first
  // counterexample (by global trial index) do not depend on the number of
  // worker threads.
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  HypothesisFilter filter;
  filter.require_pwsr = true;

  Rng rng1(2024);
  auto sequential = SearchForViolations(ex.db, *ex.ic, programs, filter, rng1,
                                        ParityConfig(1));
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  EXPECT_GT(sequential->violations, 0u);
  ASSERT_TRUE(sequential->first_counterexample.has_value());

  for (size_t threads : {2, 8}) {
    Rng rng(2024);
    auto parallel = SearchForViolations(ex.db, *ex.ic, programs, filter, rng,
                                        ParityConfig(threads));
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    ExpectSameOutcome(*sequential, *parallel, ex.db);
  }
}

TEST(ViolationSearchTest, StopAtFirstIsIdenticalAcrossThreadCounts) {
  // Early cancellation: the outcome is the deterministic prefix ending at
  // the smallest violating trial index, so stop-at-first results are also
  // thread-count independent — and genuinely early.
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  HypothesisFilter filter;

  SearchConfig config = ParityConfig(1);
  config.trials = 10'000;
  config.stop_at_first = true;

  Rng rng1(7);
  auto sequential =
      SearchForViolations(ex.db, *ex.ic, programs, filter, rng1, config);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  ASSERT_GT(sequential->violations, 0u);
  EXPECT_LT(sequential->trials, 10'000u);
  ASSERT_TRUE(sequential->first_violation_trial.has_value());
  EXPECT_EQ(sequential->trials, *sequential->first_violation_trial + 1);

  config.threads = 8;
  Rng rng8(7);
  auto parallel =
      SearchForViolations(ex.db, *ex.ic, programs, filter, rng8, config);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  ExpectSameOutcome(*sequential, *parallel, ex.db);
}

TEST(ViolationSearchTest, SolverCacheIsSharedAndHot) {
  // The shared cache sees every worker's solver queries; on this workload
  // (few conjuncts, small domains) the post-warmup hit rate is high.
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  HypothesisFilter filter;
  SearchConfig config = ParityConfig(4);
  Rng rng(11);
  auto outcome =
      SearchForViolations(ex.db, *ex.ic, programs, filter, rng, config);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_GT(outcome->solver_cache.hits, 0u);
  EXPECT_GT(outcome->solver_cache.hit_rate(), 0.5);

  // Cache off: the engine still works and reports zero cache traffic.
  config.share_solver_cache = false;
  Rng rng_off(11);
  auto uncached =
      SearchForViolations(ex.db, *ex.ic, programs, filter, rng_off, config);
  ASSERT_TRUE(uncached.ok()) << uncached.status();
  EXPECT_EQ(uncached->solver_cache.hits + uncached->solver_cache.misses, 0u);
  EXPECT_EQ(uncached->trials, config.trials);
}

TEST(ViolationSearchTest, ZeroThreadsMeansHardwareDefault) {
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  HypothesisFilter filter;
  SearchConfig config;
  config.trials = 40;
  config.threads = 0;  // DefaultNumThreads
  Rng rng(3);
  auto outcome =
      SearchForViolations(ex.db, *ex.ic, programs, filter, rng, config);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->trials, 40u);
}

/// Exhaustive-mode parity scenario: a generous budget over several initial
/// states, so the engine has both state- and first-choice-subtree units to
/// distribute across workers.
ExhaustiveSearchConfig ExhaustiveParityConfig(size_t threads) {
  ExhaustiveSearchConfig config;
  config.interleaving_limit = 10'000;
  config.threads = threads;
  return config;
}

TEST(ViolationSearchTest, ExhaustiveOutcomeIsIdenticalAcrossThreadCounts) {
  // The exhaustive determinism contract: counts, truncation, and the first
  // counterexample (by canonical enumeration index) do not depend on the
  // number of workers the subtree units land on.
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  auto states =
      ConsistencyChecker(ex.db, *ex.ic).EnumerateConsistentStates(3);
  ASSERT_TRUE(states.ok()) << states.status();
  ASSERT_GT(states->size(), 1u);
  HypothesisFilter filter;
  filter.require_pwsr = true;

  auto sequential = ExhaustiveViolationSearch(ex.db, *ex.ic, programs, *states,
                                              filter, ExhaustiveParityConfig(1));
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  EXPECT_GT(sequential->violations, 0u);
  EXPECT_EQ(sequential->truncated, 0u);
  ASSERT_TRUE(sequential->first_counterexample.has_value());

  for (size_t threads : {2, 4, 8}) {
    auto parallel = ExhaustiveViolationSearch(
        ex.db, *ex.ic, programs, *states, filter,
        ExhaustiveParityConfig(threads));
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    ExpectSameOutcome(*sequential, *parallel, ex.db);
  }

  // The pre-engine overload is exactly the threads=1 configuration.
  auto legacy = ExhaustiveViolationSearch(ex.db, *ex.ic, programs, *states,
                                          filter, /*interleaving_limit=*/10'000);
  ASSERT_TRUE(legacy.ok()) << legacy.status();
  ExpectSameOutcome(*sequential, *legacy, ex.db);
}

TEST(ViolationSearchTest, ExhaustiveStopAtFirstIsIdenticalAcrossThreadCounts) {
  // Stop-at-first returns the deterministic prefix ending at the first
  // violating enumeration index; a worker deep in a later subtree must not
  // leak trials past that cut.
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  HypothesisFilter filter;  // unfiltered: the first violation comes early

  ExhaustiveSearchConfig config = ExhaustiveParityConfig(1);
  config.stop_at_first = true;
  auto sequential = ExhaustiveViolationSearch(ex.db, *ex.ic, programs,
                                              {ex.ds0}, filter, config);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  ASSERT_GT(sequential->violations, 0u);
  ASSERT_TRUE(sequential->first_violation_trial.has_value());
  EXPECT_EQ(sequential->trials, *sequential->first_violation_trial + 1);

  for (size_t threads : {2, 8}) {
    config.threads = threads;
    auto parallel = ExhaustiveViolationSearch(ex.db, *ex.ic, programs,
                                              {ex.ds0}, filter, config);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    ExpectSameOutcome(*sequential, *parallel, ex.db);
  }
}

TEST(ViolationSearchTest, ExhaustiveTruncationIsIdenticalAcrossThreadCounts) {
  // Tiny budgets cut enumerations mid-subtree; the parallel merge must
  // reconstruct the same per-state budget cuts (and truncated count) the
  // sequential walk hits, for every awkward limit.
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  auto states =
      ConsistencyChecker(ex.db, *ex.ic).EnumerateConsistentStates(3);
  ASSERT_TRUE(states.ok()) << states.status();
  HypothesisFilter filter;

  for (uint64_t limit : {1, 2, 3, 7, 19}) {
    ExhaustiveSearchConfig config;
    config.interleaving_limit = limit;
    auto sequential = ExhaustiveViolationSearch(ex.db, *ex.ic, programs,
                                                *states, filter, config);
    ASSERT_TRUE(sequential.ok()) << sequential.status();
    EXPECT_GT(sequential->truncated, 0u) << "limit " << limit;
    for (size_t threads : {2, 8}) {
      config.threads = threads;
      auto parallel = ExhaustiveViolationSearch(ex.db, *ex.ic, programs,
                                                *states, filter, config);
      ASSERT_TRUE(parallel.ok()) << parallel.status();
      ExpectSameOutcome(*sequential, *parallel, ex.db);
    }
  }
}

TEST(ViolationSearchTest, ExhaustiveCacheToggleNeverChangesTheVerdicts) {
  // Unlike the randomized path (where the cache changes which executions a
  // seed samples), exhaustive enumeration draws nothing at random: cache on
  // and off must agree on every count and the counterexample, differing
  // only in the reported cache traffic.
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  HypothesisFilter filter;
  filter.require_pwsr = true;

  ExhaustiveSearchConfig config = ExhaustiveParityConfig(2);
  auto cached = ExhaustiveViolationSearch(ex.db, *ex.ic, programs, {ex.ds0},
                                          filter, config);
  ASSERT_TRUE(cached.ok()) << cached.status();
  EXPECT_GT(cached->solver_cache.hits, 0u);
  EXPECT_GT(cached->solver_cache.hit_rate(), 0.5);

  config.share_solver_cache = false;
  auto uncached = ExhaustiveViolationSearch(ex.db, *ex.ic, programs, {ex.ds0},
                                            filter, config);
  ASSERT_TRUE(uncached.ok()) << uncached.status();
  EXPECT_EQ(uncached->solver_cache.hits + uncached->solver_cache.misses, 0u);
  ExpectSameOutcome(*cached, *uncached, ex.db);
}

TEST(ViolationSearchTest, GeneratedFixedStructureWorkloadHasNoViolations) {
  // Theorem 1 regime via the workload generator: straight-line correct
  // programs, PWSR-filtered executions — zero violations expected.
  PartitionedWorkloadConfig config;
  config.num_partitions = 3;
  config.items_per_partition = 2;
  config.num_txns = 3;
  config.partitions_per_txn = 2;
  config.branch_probability = 0.0;
  config.seed = 5;
  auto workload = MakePartitionedWorkload(config);
  ASSERT_TRUE(workload.ok()) << workload.status();
  HypothesisFilter filter;
  filter.require_pwsr = true;
  filter.require_fixed_structure = true;
  Rng rng(5);
  auto outcome = SearchForViolations(workload->db, *workload->ic,
                                     workload->ProgramPtrs(), filter, rng,
                                     /*trials=*/150);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_GT(outcome->checked, 0u);
  EXPECT_EQ(outcome->violations, 0u);
}

}  // namespace
}  // namespace nse
