#include "analysis/violation_search.h"

#include <gtest/gtest.h>

#include "paper/paper_examples.h"
#include "scheduler/workload.h"

namespace nse {
namespace {

TEST(ViolationSearchTest, FindsExample2StyleViolationUnderPwsrOnly) {
  // With the non-fixed-structure TP1 and only PWSR required, random search
  // must rediscover Example 2's anomaly.
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  HypothesisFilter filter;
  filter.require_pwsr = true;
  Rng rng(2024);
  auto outcome = SearchForViolations(ex.db, *ex.ic, programs, filter, rng,
                                     /*trials=*/400);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_GT(outcome->violations, 0u);
  ASSERT_TRUE(outcome->first_counterexample.has_value());
  const auto& cex = *outcome->first_counterexample;
  EXPECT_FALSE(cex.report.strongly_correct);
  // The counterexample is reproducible from its recorded pieces.
  auto replay = Interleave(ex.db, programs, cex.initial, cex.choices);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->schedule.ToString(ex.db), cex.schedule.ToString(ex.db));
}

TEST(ViolationSearchTest, FixedStructureFilterShortCircuits) {
  // Requiring fixed structure with Example 2's TP1 filters everything out
  // (Theorem 1's hypothesis cannot be met by these programs).
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  HypothesisFilter filter;
  filter.require_pwsr = true;
  filter.require_fixed_structure = true;
  Rng rng(1);
  auto outcome =
      SearchForViolations(ex.db, *ex.ic, programs, filter, rng, 50);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->checked, 0u);
  EXPECT_EQ(outcome->violations, 0u);
}

TEST(ViolationSearchTest, StopAtFirstStopsEarly) {
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  HypothesisFilter filter;  // no filter: every execution checked
  Rng rng(7);
  auto outcome = SearchForViolations(ex.db, *ex.ic, programs, filter, rng,
                                     10'000, /*stop_at_first=*/true);
  ASSERT_TRUE(outcome.ok());
  ASSERT_GT(outcome->violations, 0u);
  EXPECT_LT(outcome->trials, 10'000u);
}

TEST(ViolationSearchTest, ExhaustiveSearchCoversAllInterleavings) {
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  HypothesisFilter filter;
  filter.require_pwsr = true;
  auto outcome = ExhaustiveViolationSearch(ex.db, *ex.ic, programs,
                                           {ex.ds0}, filter, 10'000);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_GT(outcome->trials, 0u);
  EXPECT_GT(outcome->violations, 0u);
  ASSERT_TRUE(outcome->first_counterexample.has_value());
  EXPECT_EQ(outcome->first_counterexample->initial, ex.ds0);
}

TEST(ViolationSearchTest, GeneratedFixedStructureWorkloadHasNoViolations) {
  // Theorem 1 regime via the workload generator: straight-line correct
  // programs, PWSR-filtered executions — zero violations expected.
  PartitionedWorkloadConfig config;
  config.num_partitions = 3;
  config.items_per_partition = 2;
  config.num_txns = 3;
  config.partitions_per_txn = 2;
  config.branch_probability = 0.0;
  config.seed = 5;
  auto workload = MakePartitionedWorkload(config);
  ASSERT_TRUE(workload.ok()) << workload.status();
  HypothesisFilter filter;
  filter.require_pwsr = true;
  filter.require_fixed_structure = true;
  Rng rng(5);
  auto outcome = SearchForViolations(workload->db, *workload->ic,
                                     workload->ProgramPtrs(), filter, rng,
                                     /*trials=*/150);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_GT(outcome->checked, 0u);
  EXPECT_EQ(outcome->violations, 0u);
}

}  // namespace
}  // namespace nse
