#include "constraints/ast.h"

#include <gtest/gtest.h>

namespace nse {
namespace {

class AstTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.AddIntItems({"a", "b", "c"}, -8, 8).ok());
  }
  Database db_;
};

TEST_F(AstTest, TermFactoriesAndPrinting) {
  Term t = Mul(Add(Var(db_, "a"), Const(Value(1))), Abs(Var(db_, "b")));
  EXPECT_EQ(TermToString(db_, t), "((a + 1) * abs(b))");
  EXPECT_EQ(TermToString(db_, Min(Var(db_, "a"), Const(Value(0)))),
            "min(a, 0)");
  EXPECT_EQ(TermToString(db_, Neg(Var(db_, "c"))), "-c");
  EXPECT_EQ(TermToString(db_, Sub(Var(db_, "a"), Var(db_, "b"))), "(a - b)");
}

TEST_F(AstTest, FormulaFactoriesAndPrinting) {
  Formula f = Implies(Gt(Var(db_, "a"), Const(Value(0))),
                      Gt(Var(db_, "b"), Const(Value(0))));
  EXPECT_EQ(FormulaToString(db_, f), "(a > 0) -> (b > 0)");
  EXPECT_EQ(FormulaToString(db_, Not(Eq(Var(db_, "a"), Var(db_, "b")))),
            "!(a = b)");
  EXPECT_EQ(FormulaToString(db_, True()), "true");
  EXPECT_EQ(FormulaToString(db_, False()), "false");
}

TEST_F(AstTest, ItemsOfCollectsAllVariables) {
  Formula f = And(Gt(Var(db_, "a"), Const(Value(0))),
                  Eq(Var(db_, "b"), Var(db_, "c")));
  EXPECT_EQ(ItemsOf(f), db_.SetOf({"a", "b", "c"}));
  EXPECT_EQ(ItemsOf(Const(Value(5))), DataSet());
  EXPECT_EQ(ItemsOf(True()), DataSet());
}

TEST_F(AstTest, StructuralEquality) {
  Term t1 = Add(Var(db_, "a"), Const(Value(1)));
  Term t2 = Add(Var(db_, "a"), Const(Value(1)));
  Term t3 = Add(Var(db_, "a"), Const(Value(2)));
  EXPECT_TRUE(TermEquals(t1, t2));
  EXPECT_FALSE(TermEquals(t1, t3));
  EXPECT_FALSE(TermEquals(t1, Var(db_, "a")));

  Formula f1 = Gt(t1, Const(Value(0)));
  Formula f2 = Gt(t2, Const(Value(0)));
  Formula f3 = Ge(t1, Const(Value(0)));
  EXPECT_TRUE(FormulaEquals(f1, f2));
  EXPECT_FALSE(FormulaEquals(f1, f3));
}

TEST_F(AstTest, TopLevelConjunctsFlattensNestedAnd) {
  Formula a = Gt(Var(db_, "a"), Const(Value(0)));
  Formula b = Gt(Var(db_, "b"), Const(Value(0)));
  Formula c = Gt(Var(db_, "c"), Const(Value(0)));
  Formula nested = And(And(a, b), c);
  auto conjuncts = TopLevelConjuncts(nested);
  ASSERT_EQ(conjuncts.size(), 3u);
  EXPECT_TRUE(FormulaEquals(conjuncts[0], a));
  EXPECT_TRUE(FormulaEquals(conjuncts[2], c));
  // A disjunction is a single conjunct.
  EXPECT_EQ(TopLevelConjuncts(Or(a, b)).size(), 1u);
}

TEST_F(AstTest, SingletonAndOrCollapse) {
  Formula a = Gt(Var(db_, "a"), Const(Value(0)));
  EXPECT_TRUE(FormulaEquals(And(std::vector<Formula>{a}), a));
  EXPECT_TRUE(FormulaEquals(Or(std::vector<Formula>{a}), a));
}

TEST_F(AstTest, FormulaSizeCountsNodes) {
  Formula f = Gt(Add(Var(db_, "a"), Const(Value(1))), Const(Value(0)));
  // cmp + (add + var + const) + const = 5.
  EXPECT_EQ(FormulaSize(f), 5u);
  EXPECT_EQ(FormulaSize(True()), 1u);
  EXPECT_GT(FormulaSize(And(f, f)), FormulaSize(f));
}

}  // namespace
}  // namespace nse
