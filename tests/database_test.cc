#include "state/database.h"

#include <gtest/gtest.h>

namespace nse {
namespace {

TEST(DataSetTest, ConstructionDeduplicatesAndSorts) {
  DataSet s({3, 1, 3, 2});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.items(), (std::vector<ItemId>{1, 2, 3}));
}

TEST(DataSetTest, InsertRemoveContains) {
  DataSet s;
  EXPECT_TRUE(s.empty());
  s.Insert(5);
  s.Insert(2);
  s.Insert(5);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains(5));
  s.Remove(5);
  EXPECT_FALSE(s.Contains(5));
  s.Remove(99);  // no-op
  EXPECT_EQ(s.size(), 1u);
}

TEST(DataSetTest, SetAlgebra) {
  DataSet a({1, 2, 3});
  DataSet b({3, 4});
  EXPECT_EQ(DataSet::Union(a, b), DataSet({1, 2, 3, 4}));
  EXPECT_EQ(DataSet::Intersect(a, b), DataSet({3}));
  EXPECT_EQ(DataSet::Minus(a, b), DataSet({1, 2}));
  EXPECT_EQ(DataSet::Minus(b, a), DataSet({4}));
}

TEST(DataSetTest, DisjointAndSubset) {
  EXPECT_TRUE(DataSet::Disjoint(DataSet({1, 2}), DataSet({3, 4})));
  EXPECT_FALSE(DataSet::Disjoint(DataSet({1, 2}), DataSet({2, 3})));
  EXPECT_TRUE(DataSet::Disjoint(DataSet(), DataSet({1})));
  EXPECT_TRUE(DataSet({1, 2}).IsSubsetOf(DataSet({1, 2, 3})));
  EXPECT_FALSE(DataSet({1, 4}).IsSubsetOf(DataSet({1, 2, 3})));
  EXPECT_TRUE(DataSet().IsSubsetOf(DataSet()));
}

TEST(DatabaseTest, AddAndFind) {
  Database db;
  auto a = db.AddItem("a", Domain::IntRange(0, 1));
  ASSERT_TRUE(a.ok());
  auto b = db.AddItem("b", Domain::Bool());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(db.num_items(), 2u);
  EXPECT_EQ(*db.Find("a"), *a);
  EXPECT_EQ(db.MustFind("b"), *b);
  EXPECT_EQ(db.NameOf(*a), "a");
  EXPECT_EQ(db.DomainOf(*b).value_type(), ValueType::kBool);
}

TEST(DatabaseTest, RejectsDuplicatesAndEmptyNames) {
  Database db;
  ASSERT_TRUE(db.AddItem("a", Domain()).ok());
  EXPECT_EQ(db.AddItem("a", Domain()).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.AddItem("", Domain()).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.Find("zzz").status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, AddIntItemsAndAllItems) {
  Database db;
  ASSERT_TRUE(db.AddIntItems({"x", "y", "z"}, -1, 1).ok());
  EXPECT_EQ(db.num_items(), 3u);
  EXPECT_EQ(db.AllItems().size(), 3u);
  EXPECT_TRUE(db.AllItems().Contains(db.MustFind("y")));
}

TEST(DatabaseTest, SetOfAndRendering) {
  Database db;
  ASSERT_TRUE(db.AddIntItems({"a", "b", "c"}, 0, 1).ok());
  DataSet s = db.SetOf({"c", "a"});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(db.DataSetToString(s), "{a, c}");
  EXPECT_EQ(db.DataSetToString(DataSet()), "{}");
}

}  // namespace
}  // namespace nse
