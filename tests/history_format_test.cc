// The history format's contracts: strict parsing (every malformed or
// protocol-violating text yields a typed Status, never a crash — the
// corpus runs under ASan/UBSan in CI), serialize→parse round-trips that
// reproduce the history event-for-event, the committed projection's
// position map, and the trace converters that let the sim double as a
// format producer.

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fuzz_env.h"
#include "history/batch_check.h"
#include "history/history.h"
#include "history/history_generator.h"
#include "history/history_io.h"
#include "history/trace_export.h"
#include "scheduler/sim.h"
#include "scheduler/two_phase_locking.h"
#include "scheduler/workload.h"

namespace nse {
namespace {

History ParseOrDie(const std::string& text) {
  Result<History> parsed = ParseHistory(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return std::move(parsed).value();
}

/// Round-trip equality: the parser assigns item ids by first appearance
/// in the log, so a reparsed history is the same history up to item
/// renaming (and unused catalog entries). Compare ops through the names.
void ExpectSameHistory(const History& a, const History& b) {
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    const HistoryEvent& x = a.events[i];
    const HistoryEvent& y = b.events[i];
    ASSERT_EQ(x.type, y.type) << "event " << i;
    EXPECT_EQ(x.txn, y.txn) << "event " << i;
    EXPECT_EQ(x.value, y.value) << "event " << i;
    EXPECT_EQ(x.read_from, y.read_from) << "event " << i;
    if (x.type == HistoryEventType::kRead ||
        x.type == HistoryEventType::kWrite) {
      EXPECT_EQ(a.db.NameOf(x.item), b.db.NameOf(y.item)) << "event " << i;
    }
  }
}

TEST(HistoryParserTest, ParsesTheDocumentedExample) {
  History h = ParseOrDie(
      "{\"type\":\"history\",\"v\":1}\n"
      "{\"type\":\"begin\",\"txn\":1}\n"
      "{\"type\":\"begin\",\"txn\":2}\n"
      "{\"type\":\"write\",\"txn\":1,\"item\":\"a\",\"value\":1}\n"
      "{\"type\":\"read\",\"txn\":2,\"item\":\"a\",\"value\":1,\"from\":1}\n"
      "{\"type\":\"commit\",\"txn\":1}\n"
      "{\"type\":\"abort\",\"txn\":2}\n");
  ASSERT_EQ(h.events.size(), 6u);
  EXPECT_EQ(h.db.num_items(), 1u);
  EXPECT_EQ(h.db.NameOf(0), "a");
  EXPECT_EQ(h.events[3].type, HistoryEventType::kRead);
  EXPECT_EQ(h.events[3].read_from, std::optional<TxnId>(1));
  EXPECT_EQ(h.events[3].value, Value(1));
}

TEST(HistoryParserTest, AllowsBlankLinesAndWhitespace) {
  History h = ParseOrDie(
      "  {\"type\":\"history\",\"v\":1}\n\n"
      "  {\"type\":\"begin\", \"txn\": 3}\n\n\n"
      "{\"type\":\"commit\",\"txn\":3}\n");
  EXPECT_EQ(h.events.size(), 2u);
  EXPECT_EQ(h.events[0].txn, 3u);
}

TEST(HistoryParserTest, StringAndBoolValuesRoundTrip) {
  History h = ParseOrDie(
      "{\"type\":\"history\",\"v\":1}\n"
      "{\"type\":\"begin\",\"txn\":1}\n"
      "{\"type\":\"write\",\"txn\":1,\"item\":\"s\",\"value\":\"Ji\\\"m\"}\n"
      "{\"type\":\"write\",\"txn\":1,\"item\":\"b\",\"value\":true}\n"
      "{\"type\":\"commit\",\"txn\":1}\n");
  EXPECT_EQ(h.events[1].value, Value(std::string("Ji\"m")));
  EXPECT_EQ(h.events[2].value, Value(true));
  History again = ParseOrDie(SerializeHistory(h));
  EXPECT_EQ(again.events, h.events);
}

TEST(HistoryParserTest, RejectsEveryMalformedCorpusEntry) {
  const std::vector<std::string> corpus = MalformedHistoryCorpus();
  ASSERT_FALSE(corpus.empty());
  for (size_t i = 0; i < corpus.size(); ++i) {
    Result<History> parsed = ParseHistory(corpus[i]);
    EXPECT_FALSE(parsed.ok()) << "corpus entry " << i << " parsed:\n"
                              << corpus[i];
    if (!parsed.ok()) {
      EXPECT_NE(parsed.status().code(), StatusCode::kOk);
      EXPECT_FALSE(parsed.status().message().empty());
    }
  }
}

TEST(HistoryParserTest, TypedErrorsForProtocolViolations) {
  const std::string header = "{\"type\":\"history\",\"v\":1}\n";
  // Out-of-order commit.
  Result<History> r = ParseHistory(header + "{\"type\":\"commit\",\"txn\":1}\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  // Duplicate transaction id (begin after commit).
  r = ParseHistory(header +
                   "{\"type\":\"begin\",\"txn\":1}\n"
                   "{\"type\":\"commit\",\"txn\":1}\n"
                   "{\"type\":\"begin\",\"txn\":1}\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  // Read of a never-written version.
  r = ParseHistory(header +
                   "{\"type\":\"begin\",\"txn\":1}\n"
                   "{\"type\":\"read\",\"txn\":1,\"item\":\"a\",\"from\":9}\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  // Malformed JSON.
  r = ParseHistory(header + "{\"type\":\"begin\",\"txn\":}\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // Unsupported version.
  r = ParseHistory("{\"type\":\"history\",\"v\":2}\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
}

TEST(HistoryRoundTripTest, GeneratedHistoriesSurviveSerializeParse) {
  for (uint64_t seed = 1; seed <= FuzzSeedCount(20); ++seed) {
    History h = DrawHistory(seed);
    ASSERT_TRUE(ValidateHistory(h).ok()) << "seed " << seed;
    History again = ParseOrDie(SerializeHistory(h));
    ExpectSameHistory(again, h);
    // Reparsing the reparse is a fixed point: ids are now canonical.
    History thrice = ParseOrDie(SerializeHistory(again));
    EXPECT_EQ(thrice.events, again.events) << "seed " << seed;
    EXPECT_LE(again.db.num_items(), h.db.num_items());
  }
}

TEST(HistoryRoundTripTest, IncrementalGeneratorMatchesGenerate) {
  HistoryGenOptions options;
  options.num_txns = 10;
  options.lost_update_fraction = 0.2;
  HistoryGenerator streaming(options, 77);
  HistoryGenerator batch(options, 77);
  History whole = batch.Generate();
  size_t i = 0;
  while (std::optional<HistoryEvent> event = streaming.Next()) {
    ASSERT_LT(i, whole.events.size());
    EXPECT_EQ(*event, whole.events[i]) << "at event " << i;
    ++i;
  }
  EXPECT_EQ(i, whole.events.size());
}

TEST(CommittedProjectionTest, DropsAbortedAndIncompleteTransactions) {
  History h = ParseOrDie(
      "{\"type\":\"history\",\"v\":1}\n"
      "{\"type\":\"begin\",\"txn\":1}\n"
      "{\"type\":\"begin\",\"txn\":2}\n"
      "{\"type\":\"begin\",\"txn\":3}\n"
      "{\"type\":\"write\",\"txn\":1,\"item\":\"a\",\"value\":1}\n"
      "{\"type\":\"write\",\"txn\":2,\"item\":\"a\",\"value\":2}\n"
      "{\"type\":\"write\",\"txn\":3,\"item\":\"a\",\"value\":3}\n"
      "{\"type\":\"commit\",\"txn\":1}\n"
      "{\"type\":\"abort\",\"txn\":2}\n");
  CommittedProjection proj = CommittedProjectionOf(h);
  ASSERT_EQ(proj.schedule.ops().size(), 1u);
  EXPECT_EQ(proj.schedule.ops()[0].txn, 1u);
  EXPECT_EQ(proj.source_events, std::vector<size_t>{3});
  EXPECT_EQ(proj.FateOf(1), TxnFate::kCommitted);
  EXPECT_EQ(proj.FateOf(2), TxnFate::kAborted);
  EXPECT_EQ(proj.FateOf(3), TxnFate::kIncomplete);
  EXPECT_EQ(proj.FateOf(9), TxnFate::kIncomplete);
}

TEST(TraceExportTest, SimTraceBecomesAValidHistoryAndRoundTrips) {
  PartitionedWorkloadConfig config;
  config.num_txns = 8;
  config.seed = 11;
  Result<Workload> workload = MakePartitionedWorkload(config);
  ASSERT_TRUE(workload.ok()) << workload.status();
  StrictTwoPhaseLocking policy;
  Result<SimResult> run = RunSimulation(policy, workload->scripts);
  ASSERT_TRUE(run.ok()) << run.status();
  History h = HistoryFromTrace(workload->db, run->schedule, run->read_sources);
  EXPECT_TRUE(ValidateHistory(h).ok());
  History again = ParseOrDie(SerializeHistory(h));
  ExpectSameHistory(again, h);
  // The committed projection reproduces the trace exactly.
  CommittedProjection proj = CommittedProjectionOf(h);
  ASSERT_EQ(proj.schedule.ops().size(), run->schedule.ops().size());
  EXPECT_TRUE(proj.schedule.ops() == run->schedule.ops());
}

TEST(BatchCheckTest, PlanesAsConstraintCoversThePartition) {
  Database db;
  ASSERT_TRUE(db.AddIntItems({"a", "b", "c"}, -8, 8).ok());
  auto ic = PlanesAsConstraint(db, {db.SetOf({"a", "b"}), db.SetOf({"c"})});
  ASSERT_TRUE(ic.ok()) << ic.status();
  EXPECT_EQ(ic->num_conjuncts(), 2u);
  EXPECT_EQ(ic->data_set(0), db.SetOf({"a", "b"}));
  EXPECT_EQ(ic->data_set(1), db.SetOf({"c"}));
  EXPECT_TRUE(ic->disjoint());
  // Empty planes are rejected.
  EXPECT_FALSE(PlanesAsConstraint(db, {DataSet()}).ok());
}

}  // namespace
}  // namespace nse
