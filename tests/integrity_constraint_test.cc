#include "constraints/integrity_constraint.h"

#include <gtest/gtest.h>

#include "constraints/parser.h"

namespace nse {
namespace {

class IcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.AddIntItems({"a", "b", "c", "d"}, -8, 8).ok());
  }
  Database db_;
};

TEST_F(IcTest, ParseSplitsTopLevelConjunction) {
  auto ic = IntegrityConstraint::Parse(db_, "(a > 0 -> b > 0) & c > 0");
  ASSERT_TRUE(ic.ok()) << ic.status();
  EXPECT_EQ(ic->num_conjuncts(), 2u);
  EXPECT_EQ(ic->data_set(0), db_.SetOf({"a", "b"}));
  EXPECT_EQ(ic->data_set(1), db_.SetOf({"c"}));
  EXPECT_TRUE(ic->disjoint());
  EXPECT_EQ(ic->constrained_items(), db_.SetOf({"a", "b", "c"}));
}

TEST_F(IcTest, ConjunctOfMapsItemsToConjuncts) {
  auto ic = IntegrityConstraint::Parse(db_, "a = b & c > 0");
  ASSERT_TRUE(ic.ok());
  EXPECT_EQ(ic->ConjunctOf(db_.MustFind("a")), 0u);
  EXPECT_EQ(ic->ConjunctOf(db_.MustFind("b")), 0u);
  EXPECT_EQ(ic->ConjunctOf(db_.MustFind("c")), 1u);
  EXPECT_EQ(ic->ConjunctOf(db_.MustFind("d")), std::nullopt);
}

TEST_F(IcTest, OverlapRejectedByDefault) {
  // Example 5's constraint: conjuncts share item a.
  auto ic = IntegrityConstraint::Parse(db_, "a > b & a = c & d > 0");
  EXPECT_FALSE(ic.ok());
  EXPECT_EQ(ic.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IcTest, OverlapAllowedOnOptIn) {
  auto ic = IntegrityConstraint::Parse(db_, "a > b & a = c & d > 0",
                                       ConjunctOverlap::kAllow);
  ASSERT_TRUE(ic.ok()) << ic.status();
  EXPECT_FALSE(ic->disjoint());
  EXPECT_EQ(ic->num_conjuncts(), 3u);
  // Lowest-index conjunct wins for shared items.
  EXPECT_EQ(ic->ConjunctOf(db_.MustFind("a")), 0u);
}

TEST_F(IcTest, RejectsVariableFreeConjunct) {
  auto f = ParseFormula(db_, "1 > 0 & a = 0");
  ASSERT_TRUE(f.ok());
  auto ic = IntegrityConstraint::FromFormula(db_, *f);
  EXPECT_FALSE(ic.ok());
}

TEST_F(IcTest, RejectsEmptyConjunctList) {
  auto ic = IntegrityConstraint::FromConjuncts(db_, {});
  EXPECT_FALSE(ic.ok());
}

TEST_F(IcTest, AsFormulaRebuildsConjunction) {
  auto ic = IntegrityConstraint::Parse(db_, "a = b & c > 0");
  ASSERT_TRUE(ic.ok());
  Formula all = ic->AsFormula();
  EXPECT_EQ(TopLevelConjuncts(all).size(), 2u);
}

TEST_F(IcTest, ToStringListsConjunctsWithDataSets) {
  auto ic = IntegrityConstraint::Parse(db_, "a = b & c > 0");
  ASSERT_TRUE(ic.ok());
  std::string text = ic->ToString(db_);
  EXPECT_NE(text.find("C1"), std::string::npos);
  EXPECT_NE(text.find("{a, b}"), std::string::npos);
  EXPECT_NE(text.find("C2"), std::string::npos);
}

TEST_F(IcTest, SingleConjunctOverWholeFormula) {
  // Example 4's constraint folded into one conjunct keeps disjointness.
  auto parsed = ParseFormula(db_, "a = b & b = c");
  ASSERT_TRUE(parsed.ok());
  auto ic = IntegrityConstraint::FromConjuncts(
      db_, {And(TopLevelConjuncts(*parsed))});
  ASSERT_TRUE(ic.ok()) << ic.status();
  EXPECT_EQ(ic->num_conjuncts(), 1u);
  EXPECT_TRUE(ic->disjoint());
  EXPECT_EQ(ic->data_set(0), db_.SetOf({"a", "b", "c"}));
}

}  // namespace
}  // namespace nse
