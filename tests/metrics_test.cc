#include "scheduler/metrics.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "analysis/analysis_context.h"
#include "txn/schedule.h"

namespace nse {
namespace {

TEST(ClassifyTraceTest, RecordsCycleClosingPositionForNonCsrTraces) {
  // r1(a) w2(a) r2(b) w1(b): not CSR; the incremental detection hands the
  // classification the position of the cycle-closing operation (3).
  OpSequence ops;
  ops.push_back(Operation::Read(1, 0, Value(0)));
  ops.push_back(Operation::Write(2, 0, Value(1)));
  ops.push_back(Operation::Read(2, 1, Value(0)));
  ops.push_back(Operation::Write(1, 1, Value(1)));
  Schedule schedule{std::move(ops)};
  AnalysisContext ctx(schedule);
  TraceClassification c = ClassifyTrace(ctx);
  EXPECT_FALSE(c.csr);
  ASSERT_TRUE(c.csr_cycle_op_pos.has_value());
  EXPECT_EQ(*c.csr_cycle_op_pos, 3u);
  EXPECT_NE(c.ToString().find("cycle closed at op 3"), std::string::npos)
      << c.ToString();
}

TEST(ClassifyTraceTest, NoCyclePositionForCsrTraces) {
  OpSequence ops;
  ops.push_back(Operation::Write(1, 0, Value(1)));
  ops.push_back(Operation::Read(2, 0, Value(1)));
  Schedule schedule{std::move(ops)};
  AnalysisContext ctx(schedule);
  TraceClassification c = ClassifyTrace(ctx);
  EXPECT_TRUE(c.csr);
  EXPECT_FALSE(c.csr_cycle_op_pos.has_value());
  EXPECT_EQ(c.ToString().find("cycle"), std::string::npos);
}

TEST(SeriesSummaryTest, EmptySummary) {
  SeriesSummary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(SeriesSummaryTest, AccumulatesStatistics) {
  SeriesSummary s;
  for (double x : {3.0, 1.0, 2.0}) s.Add(x);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.sum(), 6.0);
}

TEST(SeriesSummaryTest, NegativeValues) {
  SeriesSummary s;
  s.Add(-5.0);
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer-name", "23"});
  std::string out = table.Render();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinterTest, ToleratesShortRows) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only-one"});
  std::string out = table.Render();
  EXPECT_NE(out.find("only-one"), std::string::npos);
}

TEST(FormatDoubleTest, Digits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace nse
