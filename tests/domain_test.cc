#include "state/domain.h"

#include <gtest/gtest.h>

namespace nse {
namespace {

TEST(DomainTest, IntRangeContainsAndSize) {
  Domain d = Domain::IntRange(-2, 3);
  EXPECT_EQ(d.size(), 6u);
  EXPECT_TRUE(d.Contains(Value(-2)));
  EXPECT_TRUE(d.Contains(Value(3)));
  EXPECT_FALSE(d.Contains(Value(-3)));
  EXPECT_FALSE(d.Contains(Value(4)));
  EXPECT_FALSE(d.Contains(Value(true)));
  EXPECT_FALSE(d.Contains(Value("2")));
}

TEST(DomainTest, IntRangeAtEnumeratesAscending) {
  Domain d = Domain::IntRange(5, 7);
  EXPECT_EQ(d.At(0), Value(5));
  EXPECT_EQ(d.At(1), Value(6));
  EXPECT_EQ(d.At(2), Value(7));
}

TEST(DomainTest, IntSetDeduplicatesAndSorts) {
  Domain d = Domain::IntSet({5, 1, 5, 3});
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.At(0), Value(1));
  EXPECT_EQ(d.At(2), Value(5));
  EXPECT_TRUE(d.Contains(Value(3)));
  EXPECT_FALSE(d.Contains(Value(2)));
}

TEST(DomainTest, BoolDomain) {
  Domain d = Domain::Bool();
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.At(0), Value(false));
  EXPECT_EQ(d.At(1), Value(true));
  EXPECT_TRUE(d.Contains(Value(true)));
  EXPECT_FALSE(d.Contains(Value(1)));
  EXPECT_EQ(d.value_type(), ValueType::kBool);
}

TEST(DomainTest, StringSet) {
  Domain d = Domain::StringSet({"b", "a", "b"});
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.At(0), Value("a"));
  EXPECT_TRUE(d.Contains(Value("b")));
  EXPECT_FALSE(d.Contains(Value("c")));
  EXPECT_EQ(d.value_type(), ValueType::kString);
}

TEST(DomainTest, EnumerateRespectsLimit) {
  Domain d = Domain::IntRange(0, 999);
  auto small = d.Enumerate(/*limit=*/10);
  EXPECT_FALSE(small.ok());
  EXPECT_EQ(small.status().code(), StatusCode::kOutOfRange);
  auto all = d.Enumerate();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 1000u);
  EXPECT_EQ((*all)[0], Value(0));
  EXPECT_EQ((*all)[999], Value(999));
}

TEST(DomainTest, ToStringForms) {
  EXPECT_EQ(Domain::IntRange(-1, 2).ToString(), "int[-1..2]");
  EXPECT_EQ(Domain::IntSet({2, 1}).ToString(), "int{1,2}");
  EXPECT_EQ(Domain::Bool().ToString(), "bool");
}

TEST(DomainTest, DefaultDomainIsSmallIntRange) {
  Domain d;
  EXPECT_EQ(d.value_type(), ValueType::kInt);
  EXPECT_TRUE(d.Contains(Value(0)));
}

}  // namespace
}  // namespace nse
