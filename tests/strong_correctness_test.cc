#include "analysis/strong_correctness.h"

#include <gtest/gtest.h>

#include "paper/paper_examples.h"
#include "txn/interleaver.h"

namespace nse {
namespace {

TEST(StrongCorrectnessTest, PaperExample2ViolationReproduced) {
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  auto run = Interleave(ex.db, programs, ex.ds0, ex.choices);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->final_state, ex.ds2_expected);

  ConsistencyChecker checker(ex.db, *ex.ic);
  auto report = CheckExecution(checker, run->schedule, ex.ds0);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->strongly_correct);

  // Final state {(a,1), (b,-1), (c,-1)} violates both conjuncts, and both
  // transactions read inconsistent data (the paper's §3.1 discussion).
  bool final_violation = false;
  int read_violations = 0;
  for (const auto& violation : report->violations) {
    if (violation.kind == ViolationKind::kFinalStateInconsistent) {
      final_violation = true;
      EXPECT_EQ(violation.witness, ex.ds2_expected);
    } else {
      ++read_violations;
    }
    EXPECT_FALSE(violation.ToString(ex.db).empty());
  }
  EXPECT_TRUE(final_violation);
  EXPECT_EQ(read_violations, 2);  // both T1 and T2
}

TEST(StrongCorrectnessTest, SerialExecutionOfExample2IsStronglyCorrect) {
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  ConsistencyChecker checker(ex.db, *ex.ic);
  for (const std::vector<size_t>& order :
       {std::vector<size_t>{0, 1}, std::vector<size_t>{1, 0}}) {
    auto run = ExecuteSerially(ex.db, programs, ex.ds0, order);
    ASSERT_TRUE(run.ok());
    auto report = CheckExecution(checker, run->schedule, ex.ds0);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->strongly_correct) << "order " << order[0];
  }
}

TEST(StrongCorrectnessTest, RejectsNonExecutions) {
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  auto run = Interleave(ex.db, programs, ex.ds0, ex.choices);
  ASSERT_TRUE(run.ok());
  ConsistencyChecker checker(ex.db, *ex.ic);
  // A different initial state makes the recorded reads wrong.
  DbState other = DbState::OfNamed(
      ex.db, {{"a", Value(2)}, {"b", Value(2)}, {"c", Value(2)}});
  auto report = CheckExecution(checker, run->schedule, other);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

TEST(StrongCorrectnessTest, ScheduleLevelQuantifierFindsViolations) {
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  auto run = Interleave(ex.db, programs, ex.ds0, ex.choices);
  ASSERT_TRUE(run.ok());
  ConsistencyChecker checker(ex.db, *ex.ic);
  auto report =
      CheckScheduleOverInitialStates(checker, run->schedule, 100'000);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->strongly_correct);
  // The schedule pins a=?,b=-1,c=1 via first reads... (a is written first,
  // so a is free; b and c are pinned by reads). At least one consistent
  // initial state executes S.
  EXPECT_GE(report->initial_states_checked, 1u);
}

TEST(StrongCorrectnessTest, StronglyCorrectNonSerializableSchedule) {
  // §2.3's insight, in miniature: a schedule serializable per conjunct but
  // not globally, where every read and the final state stay consistent.
  Database db;
  ASSERT_TRUE(db.AddIntItems({"a", "b"}, 0, 8).ok());
  auto ic = IntegrityConstraint::Parse(db, "a >= 0 & b >= 0");
  ASSERT_TRUE(ic.ok());
  // T1: reads a, writes a; T2: reads b, writes b — interleaved so that the
  // conflict orders on a and b disagree... with disjoint items there is no
  // global cycle; force one with two items per txn but opposite orders:
  ScheduleBuilder sb(db);
  sb.R(1, "a", Value(1))
      .W(2, "a", Value(2))   // T1 -> T2 on a
      .R(2, "b", Value(1))
      .W(1, "b", Value(2));  // T2 -> T1 on b
  Schedule s = sb.Build();
  ConsistencyChecker checker(db, *ic);
  DbState initial = DbState::OfNamed(db, {{"a", Value(1)}, {"b", Value(1)}});
  auto report = CheckExecution(checker, s, initial);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->strongly_correct);
}

TEST(StrongCorrectnessTest, VacuouslyCorrectWhenUnexecutable) {
  // A schedule whose pinned reads are inconsistent can never run from a
  // consistent state; condition 1 is vacuous, condition 2 still applies.
  Database db;
  ASSERT_TRUE(db.AddIntItems({"a"}, 0, 8).ok());
  auto ic = IntegrityConstraint::Parse(db, "a > 0");
  ASSERT_TRUE(ic.ok());
  ConsistencyChecker checker(db, *ic);
  ScheduleBuilder sb(db);
  sb.R(1, "a", Value(0));  // a = 0 violates a > 0
  auto report =
      CheckScheduleOverInitialStates(checker, sb.Build(), 1'000);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->initial_states_checked, 0u);
  // read(T1) = {(a,0)} is inconsistent: condition 2 catches it.
  EXPECT_FALSE(report->strongly_correct);
}

}  // namespace
}  // namespace nse
