#include "constraints/evaluator.h"

#include <gtest/gtest.h>

#include "constraints/parser.h"

namespace nse {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.AddIntItems({"a", "b", "c"}, -100, 100).ok());
  }

  Formula F(std::string_view text) {
    auto f = ParseFormula(db_, text);
    EXPECT_TRUE(f.ok()) << f.status();
    return *f;
  }
  Term T(std::string_view text) {
    auto t = ParseTerm(db_, text);
    EXPECT_TRUE(t.ok()) << t.status();
    return *t;
  }

  Database db_;
};

TEST_F(EvaluatorTest, TermArithmetic) {
  DbState s = DbState::OfNamed(
      db_, {{"a", Value(3)}, {"b", Value(-4)}, {"c", Value(0)}});
  EXPECT_EQ(*EvalTerm(T("a + b"), s), Value(-1));
  EXPECT_EQ(*EvalTerm(T("a - b"), s), Value(7));
  EXPECT_EQ(*EvalTerm(T("a * b"), s), Value(-12));
  EXPECT_EQ(*EvalTerm(T("-a"), s), Value(-3));
  EXPECT_EQ(*EvalTerm(T("abs(b)"), s), Value(4));
  EXPECT_EQ(*EvalTerm(T("min(a, b)"), s), Value(-4));
  EXPECT_EQ(*EvalTerm(T("max(a, c)"), s), Value(3));
}

TEST_F(EvaluatorTest, StringConcatenationViaPlus) {
  Database db;
  ASSERT_TRUE(db.AddItem("s", Domain::StringSet({"ab"})).ok());
  DbState state;
  state.Set(db.MustFind("s"), Value("ab"));
  auto t = ParseTerm(db, "s + \"cd\"");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*EvalTerm(*t, state), Value("abcd"));
}

TEST_F(EvaluatorTest, UnassignedItemIsError) {
  DbState s = DbState::OfNamed(db_, {{"a", Value(1)}});
  auto result = EvalTerm(T("a + b"), s);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(EvalFormula(F("b > 0"), s).ok());
}

TEST_F(EvaluatorTest, TypeErrorsReported) {
  Database db;
  ASSERT_TRUE(db.AddItem("flag", Domain::Bool()).ok());
  DbState s;
  s.Set(db.MustFind("flag"), Value(true));
  auto plus = ParseTerm(db, "flag + 1");
  ASSERT_TRUE(plus.ok());
  EXPECT_FALSE(EvalTerm(*plus, s).ok());
  auto cmp = ParseFormula(db, "flag < true");
  ASSERT_TRUE(cmp.ok());
  EXPECT_FALSE(EvalFormula(*cmp, s).ok());  // ordered bool comparison
  auto eq = ParseFormula(db, "flag = true");
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*EvalFormula(*eq, s));
}

TEST_F(EvaluatorTest, FormulaConnectives) {
  DbState s = DbState::OfNamed(
      db_, {{"a", Value(1)}, {"b", Value(0)}, {"c", Value(-1)}});
  EXPECT_TRUE(*EvalFormula(F("a > 0 & b = 0"), s));
  EXPECT_FALSE(*EvalFormula(F("a > 0 & c > 0"), s));
  EXPECT_TRUE(*EvalFormula(F("c > 0 | a > 0"), s));
  EXPECT_TRUE(*EvalFormula(F("c > 0 -> a = 99"), s));
  EXPECT_TRUE(*EvalFormula(F("!(c > 0)"), s));
  EXPECT_TRUE(*EvalFormula(F("(a > 0) <-> (b = 0)"), s));
}

// ---- Three-valued (partial) evaluation ----

TEST_F(EvaluatorTest, PartialTermUnknownWhenItemMissing) {
  DbState s = DbState::OfNamed(db_, {{"a", Value(1)}});
  EXPECT_EQ(EvalTermPartial(T("a + 1"), s), Value(2));
  EXPECT_EQ(EvalTermPartial(T("b + 1"), s), std::nullopt);
}

TEST_F(EvaluatorTest, PartialKleeneAnd) {
  DbState s = DbState::OfNamed(db_, {{"a", Value(-1)}});
  // a > 0 is false, so the conjunction is false regardless of b.
  EXPECT_EQ(EvalFormulaPartial(F("a > 0 & b > 0"), s), Truth(false));
  // a < 0 is true but b unknown: unknown.
  EXPECT_EQ(EvalFormulaPartial(F("a < 0 & b > 0"), s), std::nullopt);
}

TEST_F(EvaluatorTest, PartialKleeneOr) {
  DbState s = DbState::OfNamed(db_, {{"a", Value(1)}});
  EXPECT_EQ(EvalFormulaPartial(F("a > 0 | b > 0"), s), Truth(true));
  EXPECT_EQ(EvalFormulaPartial(F("a < 0 | b > 0"), s), std::nullopt);
}

TEST_F(EvaluatorTest, PartialKleeneImplies) {
  DbState s = DbState::OfNamed(db_, {{"a", Value(-1)}});
  // False antecedent: true regardless of the consequent.
  EXPECT_EQ(EvalFormulaPartial(F("a > 0 -> b > 0"), s), Truth(true));
  // Unknown antecedent, true consequent: true.
  DbState s2 = DbState::OfNamed(db_, {{"b", Value(5)}});
  EXPECT_EQ(EvalFormulaPartial(F("a > 0 -> b > 0"), s2), Truth(true));
  // Unknown antecedent, false consequent: unknown.
  DbState s3 = DbState::OfNamed(db_, {{"b", Value(-5)}});
  EXPECT_EQ(EvalFormulaPartial(F("a > 0 -> b > 0"), s3), std::nullopt);
}

TEST_F(EvaluatorTest, PartialNotAndIff) {
  DbState s;
  EXPECT_EQ(EvalFormulaPartial(F("!(a > 0)"), s), std::nullopt);
  EXPECT_EQ(EvalFormulaPartial(F("a > 0 <-> b > 0"), s), std::nullopt);
  DbState s2 = DbState::OfNamed(db_, {{"a", Value(1)}, {"b", Value(1)}});
  EXPECT_EQ(EvalFormulaPartial(F("a > 0 <-> b > 0"), s2), Truth(true));
}

TEST_F(EvaluatorTest, PartialAgreesWithTotalOnTotalStates) {
  DbState s = DbState::OfNamed(
      db_, {{"a", Value(2)}, {"b", Value(-3)}, {"c", Value(0)}});
  for (const char* text :
       {"a > 0 & b < 0", "a + b > c", "a = 2 -> b = -3", "abs(b) = 3 | c = 9",
        "!(a = b)", "(a > 0 | b > 0) & c = 0"}) {
    auto total = EvalFormula(F(text), s);
    ASSERT_TRUE(total.ok()) << text;
    EXPECT_EQ(EvalFormulaPartial(F(text), s), Truth(*total)) << text;
  }
}

}  // namespace
}  // namespace nse
