#include "common/string_util.h"

#include <gtest/gtest.h>

namespace nse {
namespace {

TEST(StrCatTest, ConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("x=", 5, ", y=", 2.5), "x=5, y=2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StrJoinTest, JoinsWithSeparator) {
  std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(StrJoin(parts, ", "), "a, b, c");
  EXPECT_EQ(StrJoin(std::vector<int>{1, 2, 3}, "-"), "1-2-3");
  EXPECT_EQ(StrJoin(std::vector<int>{}, "-"), "");
}

TEST(StrSplitTest, SplitsKeepingEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_FALSE(StartsWith("xbc", "ab"));
}

}  // namespace
}  // namespace nse
