// RestartPolicy, admission control, starvation watchdog, stall-patience
// accounting, and the fault-injection wiring of RunSimulation — unit-level
// coverage with scriptable stub policies plus strict 2PL where a real
// protocol matters. The cross-policy safety sweep lives in
// chaos_differential_test.cc.

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/serializability.h"
#include "scheduler/fault_injection.h"
#include "scheduler/sim.h"
#include "scheduler/two_phase_locking.h"

namespace nse {
namespace {

TxnScript Script(std::initializer_list<AccessStep> steps,
                 uint64_t arrival = 0) {
  TxnScript s;
  s.steps = steps;
  s.arrival_tick = arrival;
  return s;
}

AccessStep R(ItemId item) { return AccessStep{OpAction::kRead, item}; }
AccessStep W(ItemId item) { return AccessStep{OpAction::kWrite, item}; }

/// Pass-through policy that force-aborts txn 1's first `aborts_left` step-0
/// attempts — a deterministic way to drive the restart machinery without a
/// real conflict.
class AbortNTimesPolicy : public SchedulerPolicy {
 public:
  explicit AbortNTimesPolicy(uint64_t aborts) : aborts_left_(aborts) {}
  std::string name() const override { return "abort-n-times"; }
  Result<AccessGrant> RequestAccess(TxnId txn, const TxnScript& script,
                                    size_t step) override {
    NSE_RETURN_IF_ERROR(CheckStep(script, step));
    if (txn == 1 && step == 0 && aborts_left_ > 0) {
      --aborts_left_;
      return AbortSelf();
    }
    return Granted();
  }
  std::vector<TxnId> Blockers(TxnId, const TxnScript&,
                              size_t) const override {
    return {};
  }

  std::vector<TxnId> aborted_;

 protected:
  void DoCommit(TxnId) override {}
  void DoAbort(TxnId txn) override { aborted_.push_back(txn); }

 private:
  uint64_t aborts_left_;
};

// The default RestartPolicy must reproduce the historical backoff
// min(2 + 4*n, 128) bit-for-bit: the exact-guarded bench counters depend
// on it. One deadlock, one victim, first restart => 6 ticks.
TEST(RestartPolicyTest, DefaultBackoffMatchesLegacyConstants) {
  StrictTwoPhaseLocking policy;
  auto result =
      RunSimulation(policy, {Script({W(0), W(1)}), Script({W(1), W(0)})});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->aborts, 1u);
  EXPECT_EQ(result->backoff_ticks, 6u);
  EXPECT_EQ(result->max_txn_restarts, 1u);
  EXPECT_EQ(result->boosts, 0u);
  EXPECT_EQ(result->shed, 0u);
}

TEST(RestartPolicyTest, FixedBackoffDelaysEachRestartByBase) {
  AbortNTimesPolicy policy(2);
  EngineConfig config;
  config.restart.backoff = RestartPolicy::Backoff::kFixed;
  config.restart.base = 10;
  auto result = RunSimulation(policy, {Script({W(0)})}, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, 1u);
  EXPECT_EQ(result->restarts, 2u);
  EXPECT_EQ(result->backoff_ticks, 20u);
  EXPECT_GE(result->makespan, 21u);
}

TEST(RestartPolicyTest, ImmediateBackoffReentersNextTick) {
  AbortNTimesPolicy policy(3);
  EngineConfig config;
  config.restart.backoff = RestartPolicy::Backoff::kImmediate;
  auto result = RunSimulation(policy, {Script({W(0)})}, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, 1u);
  EXPECT_EQ(result->backoff_ticks, 0u);
  // 3 aborted attempts on consecutive ticks, then the real one.
  EXPECT_EQ(result->makespan, 4u);
}

TEST(RestartPolicyTest, ExponentialBackoffDoublesUpToCap) {
  AbortNTimesPolicy policy(4);
  EngineConfig config;
  config.restart.backoff = RestartPolicy::Backoff::kExponential;
  config.restart.base = 2;
  config.restart.cap = 8;
  auto result = RunSimulation(policy, {Script({W(0)})}, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, 1u);
  // Delays 2, 4, 8, then capped at 8.
  EXPECT_EQ(result->backoff_ticks, 22u);
  EXPECT_EQ(result->max_txn_restarts, 4u);
}

TEST(RestartPolicyTest, JitterIsDeterministicPerSeed) {
  EngineConfig config;
  config.restart.backoff = RestartPolicy::Backoff::kFixed;
  config.restart.base = 4;
  config.restart.jitter = 5;
  config.restart.jitter_seed = 99;
  AbortNTimesPolicy a(3);
  auto first = RunSimulation(a, {Script({W(0)})}, config);
  AbortNTimesPolicy b(3);
  auto second = RunSimulation(b, {Script({W(0)})}, config);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->backoff_ticks, second->backoff_ticks);
  EXPECT_EQ(first->makespan, second->makespan);
  // Jitter only ever adds delay on top of the shape.
  EXPECT_GE(first->backoff_ticks, 12u);
  EXPECT_LE(first->backoff_ticks, 12u + 3 * 5u);
}

TEST(RestartPolicyTest, WatchdogBoostStopsBackoffAfterTheCap) {
  AbortNTimesPolicy policy(10);
  EngineConfig config;
  config.restart.backoff = RestartPolicy::Backoff::kFixed;
  config.restart.base = 7;
  config.restart.max_restarts_before_boost = 3;
  auto result = RunSimulation(policy, {Script({W(0)})}, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, 1u);
  EXPECT_EQ(result->boosts, 1u);
  EXPECT_EQ(result->max_txn_restarts, 10u);
  // Restarts 1..3 pay the fixed 7 ticks; from the boost on (restart 4+)
  // the transaction re-enters with zero backoff.
  EXPECT_EQ(result->backoff_ticks, 21u);
}

TEST(RestartPolicyTest, AdmissionGateQueuesOverflowUntilSlotsFree) {
  StrictTwoPhaseLocking policy;
  EngineConfig config;
  config.restart.max_live_txns = 1;
  // Four disjoint 3-op scripts: unlimited they overlap (makespan ~3);
  // gated to one live transaction they must run back to back.
  auto result = RunSimulation(
      policy,
      {Script({R(0), W(0), R(0)}), Script({R(1), W(1), R(1)}),
       Script({R(2), W(2), R(2)}), Script({R(3), W(3), R(3)})},
      config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, 4u);
  EXPECT_EQ(result->shed, 0u);
  EXPECT_GE(result->makespan, 12u);
  EXPECT_EQ(result->total_ops, 12u);
}

TEST(RestartPolicyTest, AdmissionGateShedsOverflowOnArrival) {
  StrictTwoPhaseLocking policy;
  EngineConfig config;
  config.restart.max_live_txns = 1;
  config.restart.overflow = RestartPolicy::Overflow::kShed;
  auto result = RunSimulation(
      policy, {Script({W(0), W(1)}), Script({W(2)}), Script({W(3)})},
      config);
  ASSERT_TRUE(result.ok()) << result.status();
  // All three arrive at tick 0; only the first (lowest id) is admitted,
  // the rest are dropped on the spot and never appear in the trace.
  EXPECT_EQ(result->completed, 1u);
  EXPECT_EQ(result->shed, 2u);
  EXPECT_EQ(result->total_ops, 2u);
  for (const Operation& op : result->schedule.ops()) {
    EXPECT_EQ(op.txn, 1u);
  }
  EXPECT_EQ(policy.held_locks(), 0u);
}

TEST(RestartPolicyTest, ShedArrivalsAdmittedWhenStaggered) {
  StrictTwoPhaseLocking policy;
  EngineConfig config;
  config.restart.max_live_txns = 1;
  config.restart.overflow = RestartPolicy::Overflow::kShed;
  // The second transaction arrives after the first has finished: the gate
  // has room, nothing is shed.
  auto result = RunSimulation(
      policy, {Script({W(0)}, 0), Script({W(1)}, 5)}, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, 2u);
  EXPECT_EQ(result->shed, 0u);
}

/// T1's first step-0 attempt aborts (building a long backoff); T2 blocks
/// on T1 until it completes. Exercises the pause-vs-stall distinction.
class AbortThenBlockPolicy : public SchedulerPolicy {
 public:
  std::string name() const override { return "abort-then-block"; }
  Result<AccessGrant> RequestAccess(TxnId txn, const TxnScript& script,
                                    size_t step) override {
    NSE_RETURN_IF_ERROR(CheckStep(script, step));
    WaitTicket ticket = MakeTicket();
    if (txn == 1 && step == 0 && !aborted_once_) {
      aborted_once_ = true;
      return AbortSelf();
    }
    if (txn == 2 && !t1_done_) return WaitOn(ticket);
    return Granted();
  }
  std::vector<TxnId> Blockers(TxnId txn, const TxnScript&,
                              size_t) const override {
    if (txn == 2 && !t1_done_) return {1};
    return {};
  }

 protected:
  void DoCommit(TxnId txn) override {
    if (txn == 1) t1_done_ = true;
  }
  void DoAbort(TxnId) override {}

 private:
  bool aborted_once_ = false;
  bool t1_done_ = false;
};

// Satellite fix: ticks where the only idle transactions sit in deliberate
// backoff are pauses, not stalls — a backoff far longer than
// stall_patience must not be misdiagnosed as a wedged run.
TEST(StallAccountingTest, BackoffLongerThanPatienceIsNotAWedge) {
  AbortThenBlockPolicy policy;
  EngineConfig config;
  config.stall_patience = 4;
  config.restart.backoff = RestartPolicy::Backoff::kFixed;
  config.restart.base = 50;  // an order of magnitude past the patience
  auto result =
      RunSimulation(policy, {Script({W(0)}), Script({W(1)})}, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, 2u);
  EXPECT_EQ(result->backoff_ticks, 50u);
}

/// Blocks forever while reporting no blockers: a genuinely wedged policy.
class WedgedPolicy : public SchedulerPolicy {
 public:
  std::string name() const override { return "wedged"; }
  Result<AccessGrant> RequestAccess(TxnId, const TxnScript&,
                                    size_t) override {
    return WaitOn(MakeTicket());
  }
  std::vector<TxnId> Blockers(TxnId, const TxnScript&,
                              size_t) const override {
    return {};
  }

 protected:
  void DoCommit(TxnId) override {}
  void DoAbort(TxnId) override {}
};

// The pause exemption must not swallow real wedges: with nothing backing
// off, a cycle-free permanent stall still fails after stall_patience.
TEST(StallAccountingTest, GenuineWedgeStillFails) {
  WedgedPolicy policy;
  EngineConfig config;
  config.stall_patience = 4;
  auto result = RunSimulation(policy, {Script({W(0)})}, config);
  EXPECT_FALSE(result.ok());
}

TEST(SimFaultTest, CertainClientAbortsRestartEveryTxnUpToTheCap) {
  FaultPlanConfig fc;
  fc.client_abort_probability = 1.0;
  fc.max_client_aborts_per_txn = 2;
  FaultPlan plan(fc);
  StrictTwoPhaseLocking policy;
  EngineConfig config;
  config.faults = &plan;
  auto result = RunSimulation(
      policy, {Script({W(0), R(1)}), Script({W(0), R(2)})}, config);
  ASSERT_TRUE(result.ok()) << result.status();
  // Forward progress: the cap guarantees injected aborts cannot starve
  // anyone — both transactions still commit, with exactly cap injected
  // aborts each (probability 1 fires every incarnation under the cap).
  EXPECT_EQ(result->completed, 2u);
  EXPECT_EQ(result->fault_aborts, 4u);
  EXPECT_EQ(result->crashes, 0u);
  EXPECT_EQ(result->total_ops, 4u);
  EXPECT_TRUE(IsConflictSerializable(result->schedule));
  EXPECT_EQ(policy.held_locks(), 0u);
}

TEST(SimFaultTest, CertainCrashRemovesEveryTxnFromTheTrace) {
  FaultPlanConfig fc;
  fc.crash_probability = 1.0;
  FaultPlan plan(fc);
  StrictTwoPhaseLocking policy;
  EngineConfig config;
  config.faults = &plan;
  auto result = RunSimulation(
      policy, {Script({W(0), W(1), W(2)}), Script({W(0), W(3), W(4)})},
      config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, 0u);
  EXPECT_EQ(result->crashes, 2u);
  // Crashed transactions' partial work is fully retracted: empty trace,
  // no residual locks.
  EXPECT_EQ(result->total_ops, 0u);
  EXPECT_EQ(result->schedule.size(), 0u);
  EXPECT_EQ(policy.held_locks(), 0u);
  EXPECT_EQ(result->avg_response_ticks, 0.0);
}

TEST(SimFaultTest, LatencySpikesDelayButNeverWedge) {
  FaultPlanConfig fc;
  fc.latency_spike_probability = 1.0;
  fc.max_latency_spike_ticks = 6;
  FaultPlan plan(fc);
  StrictTwoPhaseLocking policy;
  EngineConfig config;
  config.stall_patience = 2;  // spikes must not burn the patience budget
  config.faults = &plan;
  auto result = RunSimulation(
      policy, {Script({W(0), W(1)}), Script({W(0), W(2)})}, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, 2u);
  EXPECT_GT(result->latency_spike_ticks, 0u);
  EXPECT_GE(result->makespan, 4u);
}

TEST(SimFaultTest, ArrivalPerturbationKeepsRunsDeterministic) {
  FaultPlanConfig fc;
  fc.max_arrival_delay = 9;
  FaultPlan plan(fc);
  EngineConfig config;
  config.faults = &plan;
  StrictTwoPhaseLocking a;
  auto first = RunSimulation(
      a, {Script({W(0), W(1)}), Script({W(1), W(0)}), Script({R(2)})},
      config);
  StrictTwoPhaseLocking b;
  auto second = RunSimulation(
      b, {Script({W(0), W(1)}), Script({W(1), W(0)}), Script({R(2)})},
      config);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(first->completed, 3u);
  EXPECT_EQ(first->makespan, second->makespan);
  EXPECT_TRUE(first->schedule.ops() == second->schedule.ops());
}

TEST(SimFaultTest, FaultFreePlanPointerChangesNothing) {
  FaultPlan plan{FaultPlanConfig{}};  // empty(): every class disabled
  EngineConfig with;
  with.faults = &plan;
  StrictTwoPhaseLocking a;
  auto faulted = RunSimulation(
      a, {Script({W(0), W(1)}), Script({W(1), W(0)})}, with);
  StrictTwoPhaseLocking b;
  auto plain =
      RunSimulation(b, {Script({W(0), W(1)}), Script({W(1), W(0)})});
  ASSERT_TRUE(faulted.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(faulted->makespan, plain->makespan);
  EXPECT_EQ(faulted->aborts, plain->aborts);
  EXPECT_TRUE(faulted->schedule.ops() == plain->schedule.ops());
}

}  // namespace
}  // namespace nse
