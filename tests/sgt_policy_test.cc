// SGT policy: the optimistic cycle-vetoing scheduler. Unit tests drive the
// veto / abort-restart protocol by hand on the classic crossing pair;
// end-to-end tests assert the CSR-by-construction guarantee on generated
// contended workloads, and that the policy's live serialization graph at
// quiescence equals the conflict graph of the committed trace (restarted
// transactions leave no residual edges).

#include <algorithm>

#include <gtest/gtest.h>

#include "analysis/analysis_context.h"
#include "analysis/serializability.h"
#include "scheduler/fault_injection.h"
#include "scheduler/metrics.h"
#include "scheduler/sgt_policy.h"
#include "scheduler/sim.h"
#include "scheduler/two_phase_locking.h"
#include "scheduler/workload.h"

namespace nse {
namespace {

TxnScript Script(std::vector<AccessStep> steps) {
  TxnScript script;
  script.steps = std::move(steps);
  return script;
}

TEST(SgtPolicyTest, AdmitsConflictFreeAccessesWithoutWaiting) {
  SgtPolicy policy(2);
  TxnScript t1 = Script({{OpAction::kWrite, 0}, {OpAction::kWrite, 1}});
  TxnScript t2 = Script({{OpAction::kWrite, 2}, {OpAction::kWrite, 3}});
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 2, t2, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 1, t1, 1), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 2, t2, 1), AccessVerdict::kGranted);
  EXPECT_EQ(policy.veto_events(), 0u);
  EXPECT_EQ(policy.graph().num_edges(), 0u);
}

TEST(SgtPolicyTest, AdmitsOrderedConflictsAndRecordsEdges) {
  // w1(a) then w2(a): a plain conflict edge T1 -> T2, no cycle, no veto.
  SgtPolicy policy(2);
  TxnScript t1 = Script({{OpAction::kWrite, 0}});
  TxnScript t2 = Script({{OpAction::kWrite, 0}});
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 2, t2, 0), AccessVerdict::kGranted);
  EXPECT_TRUE(policy.graph().HasEdge(1, 2));
  EXPECT_FALSE(policy.graph().has_cycle());
  EXPECT_EQ(policy.veto_events(), 0u);
}

TEST(SgtPolicyTest, VetoesCycleClosingAccessThenEscalates) {
  // Crossing pair: w1(a) w2(b) r1(b) r2(a). The last read would close
  // T1 -> T2 -> T1; SGT vetoes it (kWait, blockers = {T1}) and escalates
  // to kAbortRestart at the veto threshold.
  SgtPolicy::Options options;
  options.max_consecutive_vetoes = 2;
  SgtPolicy policy(2, options);
  TxnScript t1 = Script({{OpAction::kWrite, 0}, {OpAction::kRead, 1}});
  TxnScript t2 = Script({{OpAction::kWrite, 1}, {OpAction::kRead, 0}});

  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 2, t2, 0), AccessVerdict::kGranted);
  // r1(b) conflicts with w2(b): edge T2 -> T1, admissible.
  EXPECT_EQ(Access(policy, 1, t1, 1), AccessVerdict::kGranted);
  EXPECT_TRUE(policy.graph().HasEdge(2, 1));

  // r2(a) would add T1 -> T2 and close the cycle: vetoed.
  EXPECT_EQ(Access(policy, 2, t2, 1), AccessVerdict::kWait);
  EXPECT_EQ(policy.veto_events(), 1u);
  EXPECT_EQ(policy.Blockers(2, t2, 1), std::vector<TxnId>{1});
  EXPECT_FALSE(policy.graph().has_cycle());

  // Second straight veto trips the livelock guard.
  EXPECT_EQ(Access(policy, 2, t2, 1), AccessVerdict::kAbortSelf);
  EXPECT_EQ(policy.restarts_requested(), 1u);
  policy.Abort(2);
  EXPECT_EQ(policy.graph().num_edges(), 0u);

  // The restarted T2 replays after T1: every conflict now points T1 -> T2
  // and both steps are admissible.
  policy.Commit(1);
  EXPECT_EQ(Access(policy, 2, t2, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 2, t2, 1), AccessVerdict::kGranted);
  policy.Commit(2);
  EXPECT_FALSE(policy.graph().has_cycle());
  EXPECT_TRUE(policy.graph().HasEdge(1, 2));
}

TEST(SgtPolicyTest, CommittedOnlyVetoRestartsImmediately) {
  // A veto whose cycle runs through committed predecessors only is
  // provably hopeless (committed edges never retract): no kWait round
  // trips, the very first OnAccess answers kAbortRestart — regardless of
  // any veto threshold or the simulator's stall patience.
  SgtPolicy::Options options;
  options.max_consecutive_vetoes = 100;  // would outlast any stall patience
  SgtPolicy policy(3, options);
  TxnScript t1 = Script({{OpAction::kWrite, 0}, {OpAction::kRead, 1}});
  TxnScript t2 = Script({{OpAction::kWrite, 1}, {OpAction::kRead, 0}});
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 2, t2, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 1, t1, 1), AccessVerdict::kGranted);
  policy.Commit(1);
  EXPECT_TRUE(policy.Blockers(2, t2, 1).empty());
  EXPECT_EQ(Access(policy, 2, t2, 1), AccessVerdict::kAbortSelf);
  EXPECT_EQ(policy.veto_events(), 1u);
  EXPECT_EQ(policy.restarts_requested(), 1u);
}

TEST(SgtPolicyTest, HighVetoThresholdStillCompletesUnderSim) {
  // Regression guard for the stall_patience interplay: even a veto
  // threshold far above EngineConfig::stall_patience cannot wedge the run,
  // because committed-only vetoes bypass the threshold entirely.
  SgtPolicy::Options options;
  options.max_consecutive_vetoes = 1000;
  SgtPolicy policy(2, options);
  TxnScript t1 = Script({{OpAction::kWrite, 0}, {OpAction::kRead, 1}});
  TxnScript t2 = Script({{OpAction::kWrite, 1}, {OpAction::kRead, 0}});
  auto result = RunSimulation(policy, {t1, t2});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, 2u);
  EXPECT_TRUE(IsConflictSerializable(result->schedule));
}

TEST(SgtPolicyTest, SimResolvesCrossingPairViaRestart) {
  // End to end: the crossing pair completes under the simulator through the
  // kAbortRestart path (no waits-for cycle ever forms — both vetoed waits
  // point the same way), and the committed trace is CSR.
  SgtPolicy policy(2);
  TxnScript t1 = Script({{OpAction::kWrite, 0}, {OpAction::kRead, 1}});
  TxnScript t2 = Script({{OpAction::kWrite, 1}, {OpAction::kRead, 0}});
  auto result = RunSimulation(policy, {t1, t2});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, 2u);
  EXPECT_GE(result->restarts, 1u);
  EXPECT_GE(result->vetoes, 1u);
  EXPECT_EQ(result->vetoes, policy.veto_events());
  EXPECT_TRUE(IsConflictSerializable(result->schedule));
  // The summary line surfaces the optimistic-policy counters.
  std::string summary = SimSummary(*result);
  EXPECT_NE(summary.find("restarts "), std::string::npos);
  EXPECT_NE(summary.find("vetoes "), std::string::npos);
}

TEST(SgtPolicyTest, RepeatedOnAbortIsIdempotent) {
  // A crash-at-op fault can abort a transaction that already aborted and
  // never ran again: the second (and third) OnAbort must be a no-op that
  // leaves the survivors' footprint intact.
  SgtPolicy policy(2);
  TxnScript t1 = Script({{OpAction::kWrite, 0}});
  TxnScript t2 = Script({{OpAction::kWrite, 0}});
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 2, t2, 0), AccessVerdict::kGranted);
  EXPECT_TRUE(policy.graph().HasEdge(1, 2));

  policy.Abort(1);
  EXPECT_EQ(policy.graph().num_edges(), 0u);
  policy.Abort(1);  // already retracted
  policy.Abort(1);
  EXPECT_EQ(policy.graph().num_edges(), 0u);

  // T2's history entry survived the repeated erasure of T1: a new writer
  // still conflicts with it.
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);
  EXPECT_TRUE(policy.graph().HasEdge(2, 1));
  policy.Commit(2);
  policy.Commit(1);
}

TEST(SgtPolicyTest, InjectedFaultsLeaveNoResidualGraphFootprint) {
  // Client aborts and terminal crashes, injected mid-script on a hotspot
  // workload, must exercise RemoveEdgesOf / index Erase without leaving
  // residual edges: at quiescence the live graph equals the committed
  // trace's conflict graph (crashed transactions appear in neither).
  PartitionedWorkloadConfig config;
  config.num_partitions = 3;
  config.items_per_partition = 2;
  config.num_txns = 8;
  config.partitions_per_txn = 2;
  config.hotspot_probability = 0.7;
  config.seed = 17;
  auto workload = MakePartitionedWorkload(config);
  ASSERT_TRUE(workload.ok()) << workload.status();

  FaultPlanConfig fc;
  fc.seed = 23;
  fc.client_abort_probability = 0.7;
  fc.crash_probability = 0.3;
  FaultPlan plan(fc);
  EngineConfig sim_config;
  sim_config.faults = &plan;

  SgtPolicy policy(workload->scripts.size());
  auto result = RunSimulation(policy, workload->scripts, sim_config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->fault_aborts + result->crashes, 0u);
  EXPECT_EQ(result->completed + result->crashes, workload->scripts.size());
  EXPECT_TRUE(IsConflictSerializable(result->schedule));
  EXPECT_FALSE(policy.graph().has_cycle());
  EXPECT_EQ(policy.graph().Edges(),
            ConflictGraph::Build(result->schedule).Edges());
}

class SgtWorkloadTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SgtWorkloadTest, ContendedWorkloadsCommitCsrByConstruction) {
  PartitionedWorkloadConfig config;
  config.num_partitions = 4;
  config.items_per_partition = 2;
  config.num_txns = 8;
  config.partitions_per_txn = 3;
  config.cross_read_probability = 0.4;
  config.hotspot_probability = 0.6;  // contention: most txns cross p0
  config.seed = GetParam();
  auto workload = MakePartitionedWorkload(config);
  ASSERT_TRUE(workload.ok()) << workload.status();

  SgtPolicy policy(workload->scripts.size());
  auto result = RunSimulation(policy, workload->scripts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, workload->scripts.size());
  EXPECT_TRUE(IsConflictSerializable(result->schedule))
      << result->schedule.ToString(workload->db);

  // Quiescence: the live serialization graph is acyclic and equals the
  // committed trace's conflict graph — aborted runs left no residual
  // edges in either the graph or the access index.
  EXPECT_FALSE(policy.graph().has_cycle());
  ConflictGraph reference = ConflictGraph::Build(result->schedule);
  EXPECT_EQ(policy.graph().Edges(), reference.Edges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SgtWorkloadTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(SgtGcTest, TrimsCommittedSourcesImmediately) {
  SgtPolicy::Options options;
  options.gc_committed = true;
  SgtPolicy policy(3, options);
  TxnScript t1 = Script({{OpAction::kWrite, 0}});
  TxnScript t2 = Script({{OpAction::kWrite, 0}, {OpAction::kWrite, 1}});
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 2, t2, 0), AccessVerdict::kGranted);
  EXPECT_TRUE(policy.graph().HasEdge(1, 2));
  // T1 commits with an in-degree of zero: a committed source can never
  // rejoin a cycle, so the GC trims its node and item histories at once.
  policy.Commit(1);
  EXPECT_EQ(policy.gc_trimmed(), 1u);
  EXPECT_EQ(policy.live_committed_nodes(), 0u);
  EXPECT_FALSE(policy.graph().HasEdge(1, 2));
  // T2 still has work and (retracted) history: it commits and trims too.
  EXPECT_EQ(Access(policy, 2, t2, 1), AccessVerdict::kGranted);
  policy.Commit(2);
  EXPECT_EQ(policy.gc_trimmed(), 2u);
  EXPECT_EQ(policy.graph().num_edges(), 0u);
}

TEST(SgtGcTest, KeepsCommittedNodesWithActivePredecessors) {
  SgtPolicy::Options options;
  options.gc_committed = true;
  SgtPolicy policy(3, options);
  TxnScript t1 = Script({{OpAction::kWrite, 0}});
  TxnScript t2 = Script({{OpAction::kWrite, 0}});
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 2, t2, 0), AccessVerdict::kGranted);
  // T2 commits but T1 (its predecessor) is still active: T2 could yet sit
  // on a cycle through T1, so it must stay.
  policy.Commit(2);
  EXPECT_EQ(policy.gc_trimmed(), 0u);
  EXPECT_EQ(policy.live_committed_nodes(), 1u);
  EXPECT_TRUE(policy.graph().HasEdge(1, 2));
  // Once T1 commits the whole chain unwinds: T1 trims as a source, which
  // makes T2 a source, which trims in the same fixpoint pass.
  policy.Commit(1);
  EXPECT_EQ(policy.gc_trimmed(), 2u);
  EXPECT_EQ(policy.live_committed_nodes(), 0u);
  EXPECT_EQ(policy.graph().num_edges(), 0u);
}

TEST(SgtGcTest, LongStreamStaysBoundedAndDecisionInvariant) {
  // A long, staggered transaction stream: without GC every committed
  // transaction's footprint accumulates for the whole run; with GC the
  // live committed set tracks the active window. The GC only ever trims
  // nodes that cannot rejoin a cycle, so the two runs must emit the
  // *identical* committed trace — classification unchanged for free.
  PartitionedWorkloadConfig config;
  config.num_partitions = 6;
  config.items_per_partition = 2;
  config.num_txns = 48;
  config.partitions_per_txn = 2;
  config.cross_read_probability = 0.4;
  config.hotspot_probability = 0.3;
  config.arrival_spread = 400;  // sparse arrivals: a stream, not a burst
  config.seed = 11;
  auto workload = MakePartitionedWorkload(config);
  ASSERT_TRUE(workload.ok()) << workload.status();

  SgtPolicy plain(workload->scripts.size());
  auto plain_result = RunSimulation(plain, workload->scripts);
  ASSERT_TRUE(plain_result.ok()) << plain_result.status();

  SgtPolicy::Options options;
  options.gc_committed = true;
  SgtPolicy gc(workload->scripts.size(), options);
  auto gc_result = RunSimulation(gc, workload->scripts);
  ASSERT_TRUE(gc_result.ok()) << gc_result.status();

  // Decision invariance: identical committed traces (hence identical
  // classification) and identical restart economics.
  EXPECT_EQ(gc_result->schedule.ops(), plain_result->schedule.ops());
  EXPECT_EQ(gc_result->restarts, plain_result->restarts);
  EXPECT_EQ(gc_result->vetoes, plain_result->vetoes);
  EXPECT_TRUE(IsConflictSerializable(gc_result->schedule));

  // Without GC the committed footprint grows with the whole stream; with
  // GC it stays bounded by the active window.
  EXPECT_EQ(plain.live_committed_nodes(), workload->scripts.size());
  EXPECT_EQ(plain.max_live_committed_nodes(), workload->scripts.size());
  EXPECT_EQ(gc.live_committed_nodes(), 0u);
  EXPECT_EQ(gc.gc_trimmed(), workload->scripts.size());
  EXPECT_LT(gc.max_live_committed_nodes(), workload->scripts.size() / 4);
}

TEST(SgtPolicyBehaviorTest, RelaxesLockWaitsOnContendedWork) {
  // The optimistic claim: on hot-spot workloads SGT waits less than strict
  // 2PL in aggregate (it only ever pauses on an actual would-be cycle).
  SeriesSummary wait_delta;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    PartitionedWorkloadConfig config;
    config.num_partitions = 4;
    config.items_per_partition = 2;
    config.num_txns = 8;
    config.partitions_per_txn = 2;
    config.cross_read_probability = 0.3;
    config.hotspot_probability = 0.8;
    config.seed = seed;
    auto workload = MakePartitionedWorkload(config);
    ASSERT_TRUE(workload.ok());
    StrictTwoPhaseLocking strict;
    auto strict_result = RunSimulation(strict, workload->scripts);
    ASSERT_TRUE(strict_result.ok());
    SgtPolicy sgt(workload->scripts.size());
    auto sgt_result = RunSimulation(sgt, workload->scripts);
    ASSERT_TRUE(sgt_result.ok());
    wait_delta.Add(static_cast<double>(sgt_result->total_wait_ticks) -
                   static_cast<double>(strict_result->total_wait_ticks));
  }
  EXPECT_LE(wait_delta.mean(), 0.0);
}

}  // namespace
}  // namespace nse
