#include "scheduler/fault_injection.h"

#include <gtest/gtest.h>

namespace nse {
namespace {

TEST(FaultPlanTest, DefaultPlanIsEmptyAndInert) {
  FaultPlan plan{FaultPlanConfig{}};
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.PerturbedArrival(1, 7), 7u);
  EXPECT_FALSE(plan.CrashStep(1, 10).has_value());
  for (size_t step = 0; step < 10; ++step) {
    EXPECT_FALSE(plan.ClientAbortsAt(1, 0, step, 10, 0));
    EXPECT_EQ(plan.LatencySpikeAt(1, 0, step), 0u);
  }
}

TEST(FaultPlanTest, QueriesArePureFunctionsOfTheSeed) {
  FaultPlanConfig config;
  config.seed = 42;
  config.client_abort_probability = 0.5;
  config.crash_probability = 0.5;
  config.latency_spike_probability = 0.5;
  config.max_arrival_delay = 9;
  FaultPlan a(config);
  FaultPlan b(config);
  for (TxnId txn = 1; txn <= 8; ++txn) {
    EXPECT_EQ(a.PerturbedArrival(txn, 3), b.PerturbedArrival(txn, 3));
    EXPECT_EQ(a.CrashStep(txn, 6), b.CrashStep(txn, 6));
    for (uint64_t inc = 0; inc < 3; ++inc) {
      for (size_t step = 0; step < 6; ++step) {
        EXPECT_EQ(a.ClientAbortsAt(txn, inc, step, 6, 0),
                  b.ClientAbortsAt(txn, inc, step, 6, 0));
        EXPECT_EQ(a.LatencySpikeAt(txn, inc, step),
                  b.LatencySpikeAt(txn, inc, step));
      }
    }
    // Repeating a query on the same plan never changes its answer (the
    // plan carries no mutable state).
    EXPECT_EQ(a.CrashStep(txn, 6), a.CrashStep(txn, 6));
  }
}

TEST(FaultPlanTest, CertainClientAbortFiresAtExactlyOneStepPerIncarnation) {
  FaultPlanConfig config;
  config.client_abort_probability = 1.0;
  config.max_client_aborts_per_txn = 100;  // cap out of the way
  FaultPlan plan(config);
  const size_t len = 7;
  for (TxnId txn = 1; txn <= 8; ++txn) {
    for (uint64_t inc = 0; inc < 4; ++inc) {
      size_t fired = 0;
      for (size_t step = 0; step < len; ++step) {
        if (plan.ClientAbortsAt(txn, inc, step, len, 0)) ++fired;
      }
      EXPECT_EQ(fired, 1u) << "txn " << txn << " incarnation " << inc;
    }
  }
}

TEST(FaultPlanTest, ClientAbortCapSilencesFurtherAborts) {
  FaultPlanConfig config;
  config.client_abort_probability = 1.0;
  config.max_client_aborts_per_txn = 2;
  FaultPlan plan(config);
  const size_t len = 5;
  for (size_t step = 0; step < len; ++step) {
    EXPECT_FALSE(plan.ClientAbortsAt(1, 0, step, len, /*aborts_so_far=*/2));
    EXPECT_FALSE(plan.ClientAbortsAt(1, 0, step, len, /*aborts_so_far=*/3));
  }
}

TEST(FaultPlanTest, CrashStepIsInRangeAndEmptyScriptsNeverCrash) {
  FaultPlanConfig config;
  config.crash_probability = 1.0;
  FaultPlan plan(config);
  for (TxnId txn = 1; txn <= 16; ++txn) {
    auto step = plan.CrashStep(txn, 6);
    ASSERT_TRUE(step.has_value());
    EXPECT_LT(*step, 6u);
    EXPECT_FALSE(plan.CrashStep(txn, 0).has_value());
  }
}

TEST(FaultPlanTest, LatencySpikeLengthWithinConfiguredBound) {
  FaultPlanConfig config;
  config.latency_spike_probability = 1.0;
  config.max_latency_spike_ticks = 4;
  FaultPlan plan(config);
  for (TxnId txn = 1; txn <= 8; ++txn) {
    for (size_t step = 0; step < 6; ++step) {
      uint64_t spike = plan.LatencySpikeAt(txn, 0, step);
      EXPECT_GE(spike, 1u);
      EXPECT_LE(spike, 4u);
    }
  }
}

TEST(FaultPlanTest, PerturbedArrivalNeverEarlyAndWithinBound) {
  FaultPlanConfig config;
  config.max_arrival_delay = 5;
  FaultPlan plan(config);
  for (TxnId txn = 1; txn <= 16; ++txn) {
    uint64_t arrival = plan.PerturbedArrival(txn, 10);
    EXPECT_GE(arrival, 10u);
    EXPECT_LE(arrival, 15u);
  }
}

// Tweaking one fault class's knob must not shift another class's
// decisions: each class draws from its own Rng::Split stream family.
TEST(FaultPlanTest, FaultClassesDrawFromIndependentStreams) {
  FaultPlanConfig just_aborts;
  just_aborts.client_abort_probability = 1.0;
  FaultPlanConfig everything = just_aborts;
  everything.crash_probability = 1.0;
  everything.latency_spike_probability = 1.0;
  everything.max_arrival_delay = 7;
  FaultPlan a(just_aborts);
  FaultPlan b(everything);
  const size_t len = 9;
  for (TxnId txn = 1; txn <= 8; ++txn) {
    for (uint64_t inc = 0; inc < 3; ++inc) {
      for (size_t step = 0; step < len; ++step) {
        EXPECT_EQ(a.ClientAbortsAt(txn, inc, step, len, 0),
                  b.ClientAbortsAt(txn, inc, step, len, 0))
            << "enabling crashes/latency/arrival moved a client abort";
      }
    }
  }
}

}  // namespace
}  // namespace nse
