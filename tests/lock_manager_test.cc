#include "scheduler/lock_manager.h"

#include <gtest/gtest.h>

namespace nse {
namespace {

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.TryAcquire(1, 10, LockMode::kShared));
  EXPECT_TRUE(lm.TryAcquire(2, 10, LockMode::kShared));
  EXPECT_TRUE(lm.Holds(1, 10, LockMode::kShared));
  EXPECT_TRUE(lm.Holds(2, 10, LockMode::kShared));
  EXPECT_EQ(lm.num_locks(), 2u);
}

TEST(LockManagerTest, ExclusiveExcludes) {
  LockManager lm;
  EXPECT_TRUE(lm.TryAcquire(1, 10, LockMode::kExclusive));
  EXPECT_FALSE(lm.TryAcquire(2, 10, LockMode::kShared));
  EXPECT_FALSE(lm.TryAcquire(2, 10, LockMode::kExclusive));
  EXPECT_EQ(lm.Blockers(2, 10, LockMode::kShared),
            (std::vector<TxnId>{1}));
}

TEST(LockManagerTest, SharedBlocksExclusive) {
  LockManager lm;
  EXPECT_TRUE(lm.TryAcquire(1, 10, LockMode::kShared));
  EXPECT_TRUE(lm.TryAcquire(2, 10, LockMode::kShared));
  EXPECT_FALSE(lm.TryAcquire(3, 10, LockMode::kExclusive));
  auto blockers = lm.Blockers(3, 10, LockMode::kExclusive);
  EXPECT_EQ(blockers.size(), 2u);
}

TEST(LockManagerTest, ReentrantAcquisition) {
  LockManager lm;
  EXPECT_TRUE(lm.TryAcquire(1, 10, LockMode::kExclusive));
  EXPECT_TRUE(lm.TryAcquire(1, 10, LockMode::kExclusive));
  EXPECT_TRUE(lm.TryAcquire(1, 10, LockMode::kShared));  // X covers S
}

TEST(LockManagerTest, UpgradeWhenSoleHolder) {
  LockManager lm;
  EXPECT_TRUE(lm.TryAcquire(1, 10, LockMode::kShared));
  EXPECT_TRUE(lm.TryAcquire(1, 10, LockMode::kExclusive));
  EXPECT_TRUE(lm.Holds(1, 10, LockMode::kExclusive));
  // Upgrade denied when another reader exists.
  LockManager lm2;
  EXPECT_TRUE(lm2.TryAcquire(1, 10, LockMode::kShared));
  EXPECT_TRUE(lm2.TryAcquire(2, 10, LockMode::kShared));
  EXPECT_FALSE(lm2.TryAcquire(1, 10, LockMode::kExclusive));
}

TEST(LockManagerTest, ReleaseAndReleaseAll) {
  LockManager lm;
  ASSERT_TRUE(lm.TryAcquire(1, 10, LockMode::kExclusive));
  ASSERT_TRUE(lm.TryAcquire(1, 11, LockMode::kShared));
  lm.Release(1, 10);
  EXPECT_FALSE(lm.Holds(1, 10, LockMode::kShared));
  EXPECT_TRUE(lm.TryAcquire(2, 10, LockMode::kExclusive));
  lm.ReleaseAll(1);
  EXPECT_FALSE(lm.Holds(1, 11, LockMode::kShared));
  EXPECT_EQ(lm.num_locks(), 1u);  // only T2's lock remains
}

TEST(LockManagerTest, ReleaseAllInScopesToDataSet) {
  LockManager lm;
  ASSERT_TRUE(lm.TryAcquire(1, 10, LockMode::kShared));
  ASSERT_TRUE(lm.TryAcquire(1, 20, LockMode::kShared));
  lm.ReleaseAllIn(1, DataSet({10}));
  EXPECT_FALSE(lm.Holds(1, 10, LockMode::kShared));
  EXPECT_TRUE(lm.Holds(1, 20, LockMode::kShared));
}

// Double-release hardening: a crash-at-op fault can trigger OnAbort for a
// transaction whose locks were already released by an earlier abort, so
// repeated Release/ReleaseAll of the same (possibly never-held) lock must
// be a harmless no-op that disturbs nobody else's grants.
TEST(LockManagerTest, ReleaseIsIdempotent) {
  LockManager lm;
  ASSERT_TRUE(lm.TryAcquire(1, 10, LockMode::kExclusive));
  ASSERT_TRUE(lm.TryAcquire(2, 11, LockMode::kShared));
  lm.Release(1, 10);
  lm.Release(1, 10);               // already released
  lm.Release(1, 99);               // never held, item unknown
  lm.Release(3, 11);               // held by someone else
  EXPECT_EQ(lm.num_locks(), 1u);   // T2's grant untouched
  EXPECT_TRUE(lm.Holds(2, 11, LockMode::kShared));
  EXPECT_TRUE(lm.TryAcquire(3, 10, LockMode::kExclusive));
}

TEST(LockManagerTest, ReleaseAllIsIdempotent) {
  LockManager lm;
  ASSERT_TRUE(lm.TryAcquire(1, 10, LockMode::kExclusive));
  ASSERT_TRUE(lm.TryAcquire(1, 11, LockMode::kShared));
  ASSERT_TRUE(lm.TryAcquire(2, 11, LockMode::kShared));
  lm.ReleaseAll(1);
  lm.ReleaseAll(1);  // second abort of the same quiescent txn
  lm.ReleaseAll(3);  // txn that never acquired anything
  EXPECT_EQ(lm.num_locks(), 1u);
  EXPECT_TRUE(lm.Holds(2, 11, LockMode::kShared));
  // Re-acquisition after double release works from a clean slate.
  EXPECT_TRUE(lm.TryAcquire(1, 10, LockMode::kExclusive));
}

TEST(LockManagerTest, BlockersEmptyWhenGrantable) {
  LockManager lm;
  EXPECT_TRUE(lm.Blockers(1, 10, LockMode::kExclusive).empty());
  ASSERT_TRUE(lm.TryAcquire(1, 10, LockMode::kShared));
  EXPECT_TRUE(lm.Blockers(2, 10, LockMode::kShared).empty());
  EXPECT_TRUE(lm.Blockers(1, 10, LockMode::kExclusive).empty());  // upgrade
}

}  // namespace
}  // namespace nse
