// Randomized theorem validation (experiments T1–T3 of DESIGN.md):
// executions satisfying a theorem's hypotheses must never violate strong
// correctness, across seeds, workload shapes, and interleavings; dropping
// the hypothesis re-exposes violations (the Example 2 regime).

#include <gtest/gtest.h>

#include "analysis/violation_search.h"
#include "paper/paper_examples.h"
#include "scheduler/workload.h"

namespace nse {
namespace {

struct TheoremSweepParam {
  uint64_t seed;
  size_t partitions;
  size_t txns;
};

class TheoremSweepTest : public ::testing::TestWithParam<TheoremSweepParam> {
 protected:
  Workload MakeWorkload(double branch_probability,
                        bool acyclic_cross_reads) const {
    const auto& p = GetParam();
    PartitionedWorkloadConfig config;
    config.num_partitions = p.partitions;
    config.items_per_partition = 2;
    config.num_txns = p.txns;
    config.partitions_per_txn = 2;
    config.cross_read_probability = 0.6;
    config.acyclic_cross_reads = acyclic_cross_reads;
    config.branch_probability = branch_probability;
    config.seed = p.seed;
    auto workload = MakePartitionedWorkload(config);
    EXPECT_TRUE(workload.ok()) << workload.status();
    return std::move(workload).value();
  }
};

TEST_P(TheoremSweepTest, Theorem1NoViolationsUnderFixedStructureAndPwsr) {
  Workload workload = MakeWorkload(/*branch_probability=*/0.0,
                                   /*acyclic_cross_reads=*/false);
  HypothesisFilter filter;
  filter.require_pwsr = true;
  filter.require_fixed_structure = true;
  Rng rng(GetParam().seed * 31 + 1);
  auto outcome = SearchForViolations(workload.db, *workload.ic,
                                     workload.ProgramPtrs(), filter, rng,
                                     /*trials=*/120);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_GT(outcome->checked, 0u);
  EXPECT_EQ(outcome->violations, 0u);
}

TEST_P(TheoremSweepTest, Theorem2NoViolationsUnderPwsrAndDr) {
  // Branching (non-fixed-structure) programs are allowed by Theorem 2.
  Workload workload = MakeWorkload(/*branch_probability=*/0.4,
                                   /*acyclic_cross_reads=*/false);
  HypothesisFilter filter;
  filter.require_pwsr = true;
  filter.require_delayed_read = true;
  Rng rng(GetParam().seed * 31 + 2);
  auto outcome = SearchForViolations(workload.db, *workload.ic,
                                     workload.ProgramPtrs(), filter, rng,
                                     /*trials=*/120);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_GT(outcome->checked, 0u);
  EXPECT_EQ(outcome->violations, 0u);
}

TEST_P(TheoremSweepTest, Theorem3NoViolationsUnderPwsrAndAcyclicDag) {
  Workload workload = MakeWorkload(/*branch_probability=*/0.4,
                                   /*acyclic_cross_reads=*/true);
  HypothesisFilter filter;
  filter.require_pwsr = true;
  filter.require_dag_acyclic = true;
  Rng rng(GetParam().seed * 31 + 3);
  auto outcome = SearchForViolations(workload.db, *workload.ic,
                                     workload.ProgramPtrs(), filter, rng,
                                     /*trials=*/120);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_GT(outcome->checked, 0u);
  EXPECT_EQ(outcome->violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TheoremSweepTest,
    ::testing::Values(TheoremSweepParam{1, 3, 3},
                      TheoremSweepParam{2, 4, 4},
                      TheoremSweepParam{3, 2, 4},
                      TheoremSweepParam{4, 5, 3},
                      TheoremSweepParam{5, 3, 5}));

TEST(TheoremNegativeTest, DroppingEveryHypothesisExposesExample2) {
  // Exhaustive search over all interleavings of Example 2's programs from
  // its initial state, filtered only by PWSR: the anomaly must appear.
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  HypothesisFilter pwsr_only;
  pwsr_only.require_pwsr = true;
  auto outcome = ExhaustiveViolationSearch(ex.db, *ex.ic, programs, {ex.ds0},
                                           pwsr_only, 100'000);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_GT(outcome->violations, 0u);

  // Each theorem hypothesis individually eliminates every violation on the
  // same scenario:
  // TP2 is not fixed-structure either (its branch guards the c-write); the
  // Theorem 1 case repairs both programs, as §3.1 prescribes. The repair
  // must give both branches the same access structure: each reads b then c
  // and writes c (then-branch computes b, else-branch computes c).
  TransactionProgram tp2_fixed(
      "TP2'",
      {MustIf(ex.db, "a > 0", {MustAssign(ex.db, "c", "b + (c - c)")},
              {MustAssign(ex.db, "c", "b - b + c")})});
  for (int hypothesis = 0; hypothesis < 3; ++hypothesis) {
    HypothesisFilter filter = pwsr_only;
    std::vector<const TransactionProgram*> checked_programs = programs;
    switch (hypothesis) {
      case 0:  // Theorem 1: replace both programs with their repairs.
        checked_programs = {&ex.tp1_fixed, &tp2_fixed};
        filter.require_fixed_structure = true;
        break;
      case 1:  // Theorem 2: require DR.
        filter.require_delayed_read = true;
        break;
      case 2:  // Theorem 3: require an acyclic access graph.
        filter.require_dag_acyclic = true;
        break;
    }
    auto guarded = ExhaustiveViolationSearch(ex.db, *ex.ic, checked_programs,
                                             {ex.ds0}, filter, 100'000);
    ASSERT_TRUE(guarded.ok()) << guarded.status();
    EXPECT_EQ(guarded->violations, 0u) << "hypothesis " << hypothesis;
    EXPECT_GT(guarded->trials, 0u);
  }
}

TEST(TheoremNegativeTest, Example5OverlapViolatesDespiteAllHypotheses) {
  // With overlapping conjuncts, even requiring PWSR ∧ DR ∧ acyclic DAG ∧
  // fixed structure does not save consistency (Example 5).
  auto ex = paper::Example5::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2, &ex.tp3};
  HypothesisFilter all;
  all.require_pwsr = true;
  all.require_delayed_read = true;
  all.require_dag_acyclic = true;
  all.require_fixed_structure = true;
  auto outcome = ExhaustiveViolationSearch(ex.db, *ex.ic, programs, {ex.ds0},
                                           all, 100'000);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_GT(outcome->violations, 0u);
}

}  // namespace
}  // namespace nse
