#include "analysis/multiversion.h"

#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/robustness.h"
#include "txn/schedule.h"

namespace nse {
namespace {

class MultiversionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.AddIntItems({"a", "b", "c", "d"}, -8, 8).ok());
  }
  Database db_;
};

TEST_F(MultiversionTest, MonoversionAnnotationsResolvePositionally) {
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0)).W(1, "a", Value(1)).R(2, "a", Value(1));
  VersionAnnotations versions = MonoversionAnnotations(sb.Build());
  ASSERT_EQ(versions.read_from.size(), 3u);
  EXPECT_EQ(versions.read_from[0], TxnId{0});       // before any write
  EXPECT_FALSE(versions.read_from[1].has_value());  // writes carry nothing
  EXPECT_EQ(versions.read_from[2], TxnId{1});       // latest preceding write
}

TEST_F(MultiversionTest, SerialTraceIsMvsrViaFastPath) {
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0)).W(1, "b", Value(1)).R(2, "b", Value(1)).W(
      2, "c", Value(2));
  MultiversionReport report = CheckMvsr(sb.Build(), VersionAnnotations{});
  EXPECT_TRUE(report.decided);
  EXPECT_TRUE(report.satisfied);
  EXPECT_TRUE(report.fast_path);
  ASSERT_TRUE(report.order.has_value());
  EXPECT_EQ(*report.order, (std::vector<TxnId>{1, 2}));
}

TEST_F(MultiversionTest, AnnotationOverridesPositionalReadsFrom) {
  // Trace: w1(a) w2(a) r3(a). Positionally r3 observes T2; the annotation
  // pins it to T1's *older* version instead — a multiversion read the
  // positional rule cannot express. Both are MVSR, with different orders.
  ScheduleBuilder sb(db_);
  sb.W(1, "a", Value(1)).W(2, "a", Value(2)).R(3, "a", Value(1));
  const Schedule schedule = sb.Build();

  MultiversionReport positional = CheckMvsr(schedule, VersionAnnotations{});
  EXPECT_TRUE(positional.satisfied);
  ASSERT_TRUE(positional.order.has_value());
  EXPECT_EQ(*positional.order, (std::vector<TxnId>{1, 2, 3}));

  VersionAnnotations versions;
  versions.read_from = {std::nullopt, std::nullopt, TxnId{1}};
  MultiversionReport annotated = CheckMvsr(schedule, versions);
  EXPECT_TRUE(annotated.decided);
  EXPECT_TRUE(annotated.satisfied);
  EXPECT_TRUE(annotated.fast_path);
  ASSERT_TRUE(annotated.order.has_value());
  // T3 must now land after T1 but before T2's overwrite.
  EXPECT_EQ(*annotated.order, (std::vector<TxnId>{1, 3, 2}));
}

TEST_F(MultiversionTest, AnnotationNamingANonWriterIsMalformed) {
  ScheduleBuilder sb(db_);
  sb.W(1, "a", Value(1)).R(2, "a", Value(1));
  VersionAnnotations versions;
  versions.read_from = {std::nullopt, TxnId{7}};  // T7 never writes a
  MultiversionReport report = CheckMvsr(sb.Build(), versions);
  EXPECT_TRUE(report.decided);
  EXPECT_FALSE(report.satisfied);
  EXPECT_NE(report.detail.find("malformed"), std::string::npos);
}

TEST_F(MultiversionTest, MutualReadsFromIsRefutedByExhaustedSearch) {
  // T1 reads T2's write and T2 reads T1's write: whichever runs first in a
  // serial monoversion execution cannot observe the other. The MVSG is
  // cyclic under every version order, so this lands in the search tier.
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(2)).R(2, "b", Value(1)).W(1, "b", Value(1)).W(
      2, "a", Value(2));
  VersionAnnotations versions;
  versions.read_from = {TxnId{2}, TxnId{1}, std::nullopt, std::nullopt};
  MultiversionReport report = CheckMvsr(sb.Build(), versions);
  EXPECT_TRUE(report.decided);
  EXPECT_FALSE(report.satisfied);
  EXPECT_FALSE(report.fast_path);
  EXPECT_GT(report.nodes_visited, 0u);
}

TEST_F(MultiversionTest, NodeCapLeavesTheVerdictUndecided) {
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(2)).R(2, "b", Value(1)).W(1, "b", Value(1)).W(
      2, "a", Value(2));
  VersionAnnotations versions;
  versions.read_from = {TxnId{2}, TxnId{1}, std::nullopt, std::nullopt};
  MultiversionReport report = CheckMvsr(sb.Build(), versions,
                                        /*node_limit=*/1);
  EXPECT_FALSE(report.decided);
  EXPECT_FALSE(report.satisfied);
}

TEST_F(MultiversionTest, ViewSerializabilityPinsFinalWrites) {
  // w2(a) w1(a): no reads, so every order reproduces the (empty)
  // reads-from — but view equivalence also pins a's final writer to T1,
  // which only the order T2 T1 lands. The MVSG fast path proposes T1 T2
  // and fails the final-write check, forcing the search tier.
  ScheduleBuilder sb(db_);
  sb.W(2, "a", Value(2)).W(1, "a", Value(1));
  MultiversionReport report = CheckViewSerializability(sb.Build());
  EXPECT_TRUE(report.decided);
  EXPECT_TRUE(report.satisfied);
  EXPECT_FALSE(report.fast_path);
  ASSERT_TRUE(report.order.has_value());
  EXPECT_EQ(*report.order, (std::vector<TxnId>{2, 1}));
}

TEST_F(MultiversionTest, WriteSkewTraceIsNotMvsr) {
  // The SI anomaly: both transactions read both items from the initial
  // state, then each writes one. No serial order lets both still see the
  // initial state of the item the other wrote.
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0))
      .R(1, "b", Value(0))
      .R(2, "a", Value(0))
      .R(2, "b", Value(0))
      .W(1, "a", Value(1))
      .W(2, "b", Value(2));
  VersionAnnotations versions;
  versions.read_from = {TxnId{0}, TxnId{0}, TxnId{0}, TxnId{0}, std::nullopt,
                        std::nullopt};
  MultiversionReport report = CheckMvsr(sb.Build(), versions);
  EXPECT_TRUE(report.decided);
  EXPECT_FALSE(report.satisfied);
}

// ---- static SI robustness ---------------------------------------------------

TEST_F(MultiversionTest, DisjointWorkloadIsRobust) {
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0)).W(1, "b", Value(1)).R(2, "c", Value(0)).W(
      2, "d", Value(2));
  RobustnessReport report = CheckSiRobustness(sb.Build());
  EXPECT_TRUE(report.robust);
  EXPECT_EQ(report.vulnerable_edges, 0u);
  EXPECT_FALSE(report.pivot.has_value());
  EXPECT_NE(RobustnessWitness(report).find("no dangerous structure"),
            std::string::npos);
}

TEST_F(MultiversionTest, SingleVulnerableEdgeWithoutACycleIsRobust) {
  // T1 reads what T2 writes: one rw edge, but no path back — no pivot.
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0)).W(2, "a", Value(1));
  RobustnessReport report = CheckSiRobustness(sb.Build());
  EXPECT_TRUE(report.robust);
  EXPECT_EQ(report.vulnerable_edges, 1u);
}

TEST_F(MultiversionTest, WriteSkewWorkloadHasADangerousStructure) {
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0))
      .R(1, "b", Value(0))
      .W(1, "a", Value(1))
      .R(2, "a", Value(0))
      .R(2, "b", Value(0))
      .W(2, "b", Value(2));
  RobustnessReport report = CheckSiRobustness(sb.Build());
  EXPECT_FALSE(report.robust);
  ASSERT_TRUE(report.pivot.has_value());
  ASSERT_TRUE(report.in_rw_from.has_value());
  ASSERT_TRUE(report.out_rw_to.has_value());
  EXPECT_NE(RobustnessWitness(report).find("dangerous structure"),
            std::string::npos);
}

}  // namespace
}  // namespace nse
