#include "txn/transaction.h"

#include <gtest/gtest.h>

#include "txn/operation.h"

namespace nse {
namespace {

class TransactionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.AddIntItems({"a", "b", "c", "d"}, -32, 32).ok());
    a_ = db_.MustFind("a");
    b_ = db_.MustFind("b");
    c_ = db_.MustFind("c");
    d_ = db_.MustFind("d");
  }
  Database db_;
  ItemId a_, b_, c_, d_;
};

TEST_F(TransactionTest, OperationBasics) {
  Operation r = Operation::Read(1, a_, Value(0));
  Operation w = Operation::Write(2, d_, Value(0));
  EXPECT_TRUE(r.is_read());
  EXPECT_TRUE(w.is_write());
  EXPECT_EQ(r.ToString(db_), "r1(a, 0)");
  EXPECT_EQ(w.ToString(db_), "w2(d, 0)");
  EXPECT_EQ(StructOf(r), (OpStruct{OpAction::kRead, a_}));
}

TEST_F(TransactionTest, ConflictRules) {
  Operation r1a = Operation::Read(1, a_, Value(0));
  Operation r2a = Operation::Read(2, a_, Value(0));
  Operation w2a = Operation::Write(2, a_, Value(1));
  Operation w1a = Operation::Write(1, a_, Value(1));
  Operation w2b = Operation::Write(2, b_, Value(1));
  EXPECT_FALSE(Conflicts(r1a, r2a));  // read-read
  EXPECT_TRUE(Conflicts(r1a, w2a));   // read-write
  EXPECT_TRUE(Conflicts(w1a, w2a));   // write-write
  EXPECT_FALSE(Conflicts(r1a, w1a));  // same transaction
  EXPECT_FALSE(Conflicts(r1a, w2b));  // different item
}

TEST_F(TransactionTest, PaperExample1Notation) {
  // T1: r1(a,0), r1(c,5), w1(b,5) — the paper's worked notation example.
  Transaction t1(1, {Operation::Read(1, a_, Value(0)),
                     Operation::Read(1, c_, Value(5)),
                     Operation::Write(1, b_, Value(5))});
  EXPECT_EQ(t1.ReadSet(), db_.SetOf({"a", "c"}));
  EXPECT_EQ(t1.WriteSet(), db_.SetOf({"b"}));
  EXPECT_EQ(t1.ReadMap(),
            DbState::OfNamed(db_, {{"a", Value(0)}, {"c", Value(5)}}));
  EXPECT_EQ(t1.WriteMap(), DbState::OfNamed(db_, {{"b", Value(5)}}));
  // T1^{b} = w1(b,5).
  Transaction t1b = t1.Project(db_.SetOf({"b"}));
  ASSERT_EQ(t1b.size(), 1u);
  EXPECT_EQ(t1b.ops()[0].ToString(db_), "w1(b, 5)");
  // struct(T1) = r(a), r(c), w(b).
  EXPECT_EQ(StructToString(db_, t1.Struct()), "r(a), r(c), w(b)");
  EXPECT_EQ(t1.ToString(db_), "T1: r1(a, 0), r1(c, 5), w1(b, 5)");
}

TEST_F(TransactionTest, AccessDisciplineValid) {
  Transaction t(1, {Operation::Read(1, a_, Value(0)),
                    Operation::Write(1, a_, Value(1)),
                    Operation::Read(1, b_, Value(2)),
                    Operation::Write(1, c_, Value(3))});
  EXPECT_TRUE(t.ValidateAccessDiscipline().ok());
  EXPECT_EQ(t.AccessSet(), db_.SetOf({"a", "b", "c"}));
}

TEST_F(TransactionTest, AccessDisciplineViolations) {
  // Double read.
  Transaction double_read(1, {Operation::Read(1, a_, Value(0)),
                              Operation::Read(1, a_, Value(0))});
  EXPECT_FALSE(double_read.ValidateAccessDiscipline().ok());
  // Read after write.
  Transaction raw(1, {Operation::Write(1, a_, Value(1)),
                      Operation::Read(1, a_, Value(1))});
  EXPECT_FALSE(raw.ValidateAccessDiscipline().ok());
  // Double write.
  Transaction double_write(1, {Operation::Write(1, a_, Value(1)),
                               Operation::Write(1, a_, Value(2))});
  EXPECT_FALSE(double_write.ValidateAccessDiscipline().ok());
}

TEST_F(TransactionTest, SequenceHelpersOnMixedOps) {
  OpSequence seq{Operation::Read(2, a_, Value(0)),
                 Operation::Read(1, a_, Value(0)),
                 Operation::Write(2, d_, Value(0)),
                 Operation::Read(1, c_, Value(5))};
  EXPECT_EQ(ReadSetOf(seq), db_.SetOf({"a", "c"}));
  EXPECT_EQ(WriteSetOf(seq), db_.SetOf({"d"}));
  EXPECT_EQ(OpsOfTxn(seq, 1).size(), 2u);
  EXPECT_EQ(OpsOfTxn(seq, 3).size(), 0u);
  // S^{a,c} keeps three operations, in order.
  OpSequence proj = ProjectOps(seq, db_.SetOf({"a", "c"}));
  ASSERT_EQ(proj.size(), 3u);
  EXPECT_EQ(OpsToString(db_, proj), "r2(a, 0), r1(a, 0), r1(c, 5)");
}

TEST_F(TransactionTest, ReadMapFirstReadWinsWriteMapLastWriteWins) {
  OpSequence seq{Operation::Read(1, a_, Value(1)),
                 Operation::Read(2, a_, Value(2)),
                 Operation::Write(1, b_, Value(3)),
                 Operation::Write(2, b_, Value(4))};
  EXPECT_EQ(ReadMapOf(seq).MustGet(a_), Value(1));
  EXPECT_EQ(WriteMapOf(seq).MustGet(b_), Value(4));
}

TEST_F(TransactionTest, EmptyTransaction) {
  Transaction t(7, {});
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.ValidateAccessDiscipline().ok());
  EXPECT_TRUE(t.ReadSet().empty());
  EXPECT_TRUE(t.ReadMap().empty());
}

}  // namespace
}  // namespace nse
