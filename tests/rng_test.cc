#include "common/rng.h"

#include <algorithm>
#include <gtest/gtest.h>
#include <set>

namespace nse {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBelow(bound), bound);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SplitIsStableAndPure) {
  // Same parent state + same stream id => identical sub-stream, and
  // deriving a sub-stream must not advance the parent.
  Rng parent(99);
  uint64_t before = Rng(99).Next();
  Rng s1 = parent.Split(3);
  Rng s2 = parent.Split(3);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(s1.Next(), s2.Next());
  EXPECT_EQ(parent.Next(), before);  // parent untouched by Split
}

TEST(RngTest, SplitDependsOnParentState) {
  // Advancing the parent changes the derived streams (Split is keyed on the
  // full state, not the original seed).
  Rng a(5), b(5);
  b.Next();
  EXPECT_NE(a.Split(0).Next(), b.Split(0).Next());
}

TEST(RngTest, SplitStreamsDoNotOverlapForManyDraws) {
  // Non-overlap proof for the violation-search use: the first 1e5 draws of
  // several sibling streams are pairwise distinct values. Overlapping
  // xoshiro sequences would collide massively; independent streams of
  // 64-bit values collide with probability ~ (3e5)^2 / 2^64 < 1e-8.
  constexpr uint64_t kDraws = 100'000;
  constexpr uint64_t kStreams = 3;
  Rng parent(2026);
  std::set<uint64_t> seen;
  for (uint64_t k = 0; k < kStreams; ++k) {
    Rng stream = parent.Split(k);
    for (uint64_t i = 0; i < kDraws; ++i) seen.insert(stream.Next());
  }
  EXPECT_EQ(seen.size(), kDraws * kStreams);
}

TEST(RngTest, SplitAdjacentIdsDecorrelated) {
  Rng parent(77);
  Rng a = parent.Split(41), b = parent.Split(42);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng b = a.Fork();
  // The fork must not mirror the parent.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

class RngSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSweepTest, RoughlyUniformOverSmallRange) {
  Rng rng(GetParam());
  constexpr int kBuckets = 8;
  constexpr int kDraws = 8000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) {
    counts[rng.NextBelow(kBuckets)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets / 2);
    EXPECT_LT(c, kDraws / kBuckets * 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSweepTest,
                         ::testing::Values(1, 42, 1234, 99999));

}  // namespace
}  // namespace nse
