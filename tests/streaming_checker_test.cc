// Scenario tests of the streaming windowed checker: online detection at
// the completing commit, abort retraction dissolving cycles, PWSR-style
// projected planes, dirty-read tracking, window eviction (bounded
// retention without verdict changes), and the frozen-snapshot witness
// path that keeps streaming witnesses bit-identical to the batch plane
// even when the log-order-first cycle commits last.

#include <gtest/gtest.h>

#include "analysis/streaming_checker.h"
#include "history/batch_check.h"
#include "history/history.h"
#include "history/history_generator.h"
#include "history/history_io.h"

namespace nse {
namespace {

History FromText(const std::string& body) {
  Result<History> parsed =
      ParseHistory("{\"type\":\"history\",\"v\":1}\n" + body);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return std::move(parsed).value();
}

/// Streams `history` and checks the report agrees with the batch plane.
StreamingReport CheckAgainstBatch(const History& history,
                                  StreamingOptions options = {}) {
  std::vector<DataSet> planes = options.planes;
  StreamingReport streaming = CheckHistoryStreaming(history, options);
  BatchReport batch = CheckHistoryBatch(history, planes);
  EXPECT_EQ(streaming.full.ok, batch.full.ok);
  if (!streaming.full.ok && streaming.full.violation.has_value() &&
      batch.full.violation.has_value()) {
    EXPECT_EQ(streaming.full.violation->edge, batch.full.violation->edge);
    EXPECT_EQ(streaming.full.violation->event, batch.full.violation->event);
    EXPECT_EQ(streaming.full.violation->cycle, batch.full.violation->cycle);
  }
  EXPECT_EQ(streaming.planes.size(), batch.planes.size());
  for (size_t p = 0; p < streaming.planes.size(); ++p) {
    EXPECT_EQ(streaming.planes[p].ok, batch.planes[p].ok) << "plane " << p;
    if (!streaming.planes[p].ok &&
        streaming.planes[p].violation.has_value() &&
        batch.planes[p].violation.has_value()) {
      EXPECT_EQ(streaming.planes[p].violation->edge,
                batch.planes[p].violation->edge);
      EXPECT_EQ(streaming.planes[p].violation->event,
                batch.planes[p].violation->event);
      EXPECT_EQ(streaming.planes[p].violation->cycle,
                batch.planes[p].violation->cycle);
    }
  }
  EXPECT_EQ(streaming.aborted_reads, batch.aborted_reads);
  EXPECT_EQ(streaming.aborted_reads, AbortedReadEvents(history));
  return streaming;
}

TEST(StreamingCheckerTest, CleanSerialHistoryIsOk) {
  History h = FromText(
      "{\"type\":\"begin\",\"txn\":1}\n"
      "{\"type\":\"write\",\"txn\":1,\"item\":\"a\",\"value\":1}\n"
      "{\"type\":\"commit\",\"txn\":1}\n"
      "{\"type\":\"begin\",\"txn\":2}\n"
      "{\"type\":\"read\",\"txn\":2,\"item\":\"a\",\"value\":1,\"from\":1}\n"
      "{\"type\":\"commit\",\"txn\":2}\n");
  StreamingReport report = CheckAgainstBatch(h);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.full.ok);
  EXPECT_TRUE(report.aborted_reads.empty());
}

TEST(StreamingCheckerTest, LostUpdateCycleFiresAtTheCompletingCommit) {
  History h = FromText(
      "{\"type\":\"begin\",\"txn\":1}\n"
      "{\"type\":\"begin\",\"txn\":2}\n"
      "{\"type\":\"read\",\"txn\":1,\"item\":\"x\",\"value\":0}\n"
      "{\"type\":\"read\",\"txn\":2,\"item\":\"x\",\"value\":0}\n"
      "{\"type\":\"write\",\"txn\":1,\"item\":\"x\",\"value\":1}\n"
      "{\"type\":\"write\",\"txn\":2,\"item\":\"x\",\"value\":2}\n"
      "{\"type\":\"commit\",\"txn\":1}\n"
      "{\"type\":\"commit\",\"txn\":2}\n");
  StreamingChecker checker(h.db);
  for (size_t i = 0; i < h.events.size(); ++i) {
    ASSERT_TRUE(checker.Feed(h.events[i]).ok());
    // Online: the violation is seen exactly at the second commit (event
    // index 7), not before.
    EXPECT_EQ(checker.violation_seen(), i >= 7) << "event " << i;
  }
  StreamingReport report = checker.Finish();
  ASSERT_FALSE(report.full.ok);
  EXPECT_EQ(report.full.detected_at, std::optional<size_t>(7));
  CheckAgainstBatch(h);
}

TEST(StreamingCheckerTest, AbortDissolvesTheCycle) {
  History h = FromText(
      "{\"type\":\"begin\",\"txn\":1}\n"
      "{\"type\":\"begin\",\"txn\":2}\n"
      "{\"type\":\"read\",\"txn\":1,\"item\":\"x\",\"value\":0}\n"
      "{\"type\":\"read\",\"txn\":2,\"item\":\"x\",\"value\":0}\n"
      "{\"type\":\"write\",\"txn\":1,\"item\":\"x\",\"value\":1}\n"
      "{\"type\":\"write\",\"txn\":2,\"item\":\"x\",\"value\":2}\n"
      "{\"type\":\"commit\",\"txn\":1}\n"
      "{\"type\":\"abort\",\"txn\":2}\n");
  StreamingReport report = CheckAgainstBatch(h);
  EXPECT_TRUE(report.full.ok);
  EXPECT_TRUE(report.ok());
}

TEST(StreamingCheckerTest, WriteSkewViolatesFullPlaneButNotProjections) {
  History h = FromText(
      "{\"type\":\"begin\",\"txn\":1}\n"
      "{\"type\":\"begin\",\"txn\":2}\n"
      "{\"type\":\"read\",\"txn\":1,\"item\":\"a\",\"value\":0}\n"
      "{\"type\":\"read\",\"txn\":2,\"item\":\"b\",\"value\":0}\n"
      "{\"type\":\"write\",\"txn\":1,\"item\":\"b\",\"value\":1}\n"
      "{\"type\":\"write\",\"txn\":2,\"item\":\"a\",\"value\":1}\n"
      "{\"type\":\"commit\",\"txn\":1}\n"
      "{\"type\":\"commit\",\"txn\":2}\n");
  StreamingOptions options;
  options.planes = {h.db.SetOf({"a"}), h.db.SetOf({"b"})};
  StreamingReport report = CheckAgainstBatch(h, options);
  // The full schedule has the T1 -> T2 -> T1 cycle; each single-item
  // projection is serializable — the PWSR-vs-CSR gap of Definition 2.
  EXPECT_FALSE(report.full.ok);
  ASSERT_EQ(report.planes.size(), 2u);
  EXPECT_TRUE(report.planes[0].ok);
  EXPECT_TRUE(report.planes[1].ok);
}

TEST(StreamingCheckerTest, CommittedDirtyReadIsReported) {
  History h = FromText(
      "{\"type\":\"begin\",\"txn\":1}\n"
      "{\"type\":\"begin\",\"txn\":2}\n"
      "{\"type\":\"write\",\"txn\":1,\"item\":\"x\",\"value\":7}\n"
      "{\"type\":\"read\",\"txn\":2,\"item\":\"x\",\"value\":7,\"from\":1}\n"
      "{\"type\":\"commit\",\"txn\":2}\n"
      "{\"type\":\"abort\",\"txn\":1}\n");
  StreamingReport report = CheckAgainstBatch(h);
  EXPECT_TRUE(report.full.ok);  // CSR: the aborted write is projected away
  EXPECT_EQ(report.aborted_reads, std::vector<size_t>{3});
  EXPECT_FALSE(report.ok());
}

TEST(StreamingCheckerTest, ReadFromAlreadyAbortedWriterIsReported) {
  History h = FromText(
      "{\"type\":\"begin\",\"txn\":1}\n"
      "{\"type\":\"write\",\"txn\":1,\"item\":\"x\",\"value\":7}\n"
      "{\"type\":\"abort\",\"txn\":1}\n"
      "{\"type\":\"begin\",\"txn\":2}\n"
      "{\"type\":\"read\",\"txn\":2,\"item\":\"x\",\"value\":7,\"from\":1}\n"
      "{\"type\":\"commit\",\"txn\":2}\n");
  StreamingReport report = CheckAgainstBatch(h);
  EXPECT_EQ(report.aborted_reads, std::vector<size_t>{4});
}

TEST(StreamingCheckerTest, UncommittedReaderIsNotADirtyRead) {
  History h = FromText(
      "{\"type\":\"begin\",\"txn\":1}\n"
      "{\"type\":\"begin\",\"txn\":2}\n"
      "{\"type\":\"write\",\"txn\":1,\"item\":\"x\",\"value\":7}\n"
      "{\"type\":\"read\",\"txn\":2,\"item\":\"x\",\"value\":7,\"from\":1}\n"
      "{\"type\":\"abort\",\"txn\":1}\n"
      "{\"type\":\"abort\",\"txn\":2}\n");
  StreamingReport report = CheckAgainstBatch(h);
  EXPECT_TRUE(report.aborted_reads.empty());
  EXPECT_TRUE(report.ok());
}

TEST(StreamingCheckerTest, EvictionKeepsDetectionWithTinyWindow) {
  // 40 serial committed transactions (all evictable), then a lost-update
  // cycle: a window of 2 must still catch it, and must actually evict.
  History h;
  {
    Database db;
    ASSERT_TRUE(db.AddIntItems({"x", "y"}, -8, 8).ok());
    h.db = std::move(db);
  }
  TxnId next = 1;
  for (int i = 0; i < 40; ++i) {
    TxnId t = next++;
    h.events.push_back(HistoryEvent::Begin(t));
    h.events.push_back(HistoryEvent::Write(t, 0, Value(i)));
    h.events.push_back(HistoryEvent::Commit(t));
  }
  TxnId t1 = next++;
  TxnId t2 = next++;
  h.events.push_back(HistoryEvent::Begin(t1));
  h.events.push_back(HistoryEvent::Begin(t2));
  h.events.push_back(HistoryEvent::Read(t1, 1, Value(0)));
  h.events.push_back(HistoryEvent::Read(t2, 1, Value(0)));
  h.events.push_back(HistoryEvent::Write(t1, 1, Value(1)));
  h.events.push_back(HistoryEvent::Write(t2, 1, Value(2)));
  h.events.push_back(HistoryEvent::Commit(t1));
  h.events.push_back(HistoryEvent::Commit(t2));
  ASSERT_TRUE(ValidateHistory(h).ok());

  StreamingOptions options;
  options.window = 2;
  StreamingReport report = CheckAgainstBatch(h, options);
  EXPECT_FALSE(report.full.ok);
  EXPECT_GT(report.stats.evictions, 30u);
  // Retention stays near the window + the two concurrent transactions,
  // nowhere near the 42 transactions of the log.
  EXPECT_LE(report.stats.peak_retained, 8u);
}

TEST(StreamingCheckerTest, WitnessMatchesBatchWhenEarlierCycleCommitsLast) {
  // T1/T2 build the log-order-first cycle on x but commit LAST; T3/T4
  // cycle on y and commit first. Streaming latches at T4's commit, but
  // the final witness must be the batch one: the T1/T2 edge created at
  // event 7 — the frozen-snapshot replay contract.
  History h = FromText(
      "{\"type\":\"begin\",\"txn\":1}\n"
      "{\"type\":\"begin\",\"txn\":2}\n"
      "{\"type\":\"read\",\"txn\":1,\"item\":\"x\",\"value\":0}\n"
      "{\"type\":\"read\",\"txn\":2,\"item\":\"x\",\"value\":0}\n"
      "{\"type\":\"write\",\"txn\":1,\"item\":\"x\",\"value\":1}\n"
      "{\"type\":\"write\",\"txn\":2,\"item\":\"x\",\"value\":2}\n"
      "{\"type\":\"begin\",\"txn\":3}\n"
      "{\"type\":\"begin\",\"txn\":4}\n"
      "{\"type\":\"read\",\"txn\":3,\"item\":\"y\",\"value\":0}\n"
      "{\"type\":\"read\",\"txn\":4,\"item\":\"y\",\"value\":0}\n"
      "{\"type\":\"write\",\"txn\":3,\"item\":\"y\",\"value\":1}\n"
      "{\"type\":\"write\",\"txn\":4,\"item\":\"y\",\"value\":2}\n"
      "{\"type\":\"commit\",\"txn\":3}\n"
      "{\"type\":\"commit\",\"txn\":4}\n"
      "{\"type\":\"commit\",\"txn\":1}\n"
      "{\"type\":\"commit\",\"txn\":2}\n");
  StreamingReport streaming = CheckHistoryStreaming(h);
  BatchReport batch = CheckHistoryBatch(h);
  ASSERT_FALSE(streaming.full.ok);
  ASSERT_FALSE(batch.full.ok);
  // Latched online at T4's commit (event 13)...
  EXPECT_EQ(streaming.full.detected_at, std::optional<size_t>(13));
  // ...but the authoritative witness is the batch one.
  ASSERT_TRUE(streaming.full.violation.has_value());
  ASSERT_TRUE(batch.full.violation.has_value());
  EXPECT_EQ(streaming.full.violation->edge, batch.full.violation->edge);
  EXPECT_EQ(streaming.full.violation->event, batch.full.violation->event);
  EXPECT_EQ(streaming.full.violation->cycle, batch.full.violation->cycle);
}

TEST(StreamingCheckerTest, FeedRejectsProtocolViolations) {
  Database db;
  ASSERT_TRUE(db.AddIntItems({"x"}, -8, 8).ok());
  StreamingChecker checker(db);
  EXPECT_EQ(checker.Feed(HistoryEvent::Begin(0)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(checker.Feed(HistoryEvent::Write(1, 0, Value(1))).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(checker.Feed(HistoryEvent::Commit(1)).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(checker.Feed(HistoryEvent::Begin(1)).ok());
  EXPECT_EQ(checker.Feed(HistoryEvent::Begin(1)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(checker.Feed(HistoryEvent::Write(1, 9, Value(1))).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(checker.Feed(HistoryEvent::Abort(1)).ok());
  EXPECT_EQ(checker.Feed(HistoryEvent::Begin(1)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(StreamingCheckerTest, SlotCapacityGrowsPastInitialSize) {
  // More than 64 concurrently live transactions force a graph rebuild.
  History h;
  {
    Database db;
    ASSERT_TRUE(db.AddIntItems({"x"}, -8, 8).ok());
    h.db = std::move(db);
  }
  const int kTxns = 100;
  for (TxnId t = 1; t <= kTxns; ++t) {
    h.events.push_back(HistoryEvent::Begin(t));
    h.events.push_back(HistoryEvent::Write(t, 0, Value(int64_t{t})));
  }
  for (TxnId t = 1; t <= kTxns; ++t) {
    h.events.push_back(HistoryEvent::Commit(t));
  }
  ASSERT_TRUE(ValidateHistory(h).ok());
  StreamingReport report = CheckAgainstBatch(h);
  EXPECT_TRUE(report.full.ok);  // writes in txn order: a chain, no cycle
  EXPECT_GE(report.stats.rebuilds, 1u);
  EXPECT_GE(report.stats.peak_retained, 100u);
}

}  // namespace
}  // namespace nse
