#include "common/status.h"

#include <gtest/gtest.h>

namespace nse {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("missing").message(), "missing");
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("item z").ToString(), "NotFound: item z");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  NSE_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseHalf(3, &out).code(), StatusCode::kInvalidArgument);
}

Status ReturnIfError(bool fail) {
  NSE_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::Ok());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(ReturnIfError(false).ok());
  EXPECT_EQ(ReturnIfError(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace nse
