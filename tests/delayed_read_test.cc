#include "analysis/delayed_read.h"

#include <gtest/gtest.h>

#include "analysis/reads_from.h"
#include "common/rng.h"

namespace nse {
namespace {

class DelayedReadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.AddIntItems({"a", "b", "c"}, -8, 8).ok());
  }
  Database db_;
};

TEST_F(DelayedReadTest, ReadsFromPairsAndInitialReads) {
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0))   // 0: from initial
      .W(1, "a", Value(1)) // 1
      .W(2, "b", Value(2)) // 2
      .R(3, "a", Value(1)) // 3: reads from 1
      .R(3, "b", Value(2)); // 4: reads from 2
  Schedule s = sb.Build();
  auto pairs = ReadsFromPairs(s);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].reader_pos, 3u);
  EXPECT_EQ(pairs[0].writer_pos, 1u);
  EXPECT_EQ(pairs[1].reader_pos, 4u);
  EXPECT_EQ(pairs[1].writer_pos, 2u);
  EXPECT_EQ(ReadsFromInitial(s), (std::vector<size_t>{0}));
  EXPECT_EQ(SourceOfRead(s, 0), std::nullopt);
  EXPECT_EQ(SourceOfRead(s, 3), 1u);
}

TEST_F(DelayedReadTest, ReadsFromTakesLastPrecedingWrite) {
  ScheduleBuilder sb(db_);
  sb.W(1, "a", Value(1)).W(2, "a", Value(2)).R(3, "a", Value(2));
  auto pairs = ReadsFromPairs(sb.Build());
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].writer_pos, 1u);  // T2's write, not T1's
}

TEST_F(DelayedReadTest, DrHoldsWhenWriterCompleted) {
  // T1 writes a and completes, then T2 reads a: DR.
  ScheduleBuilder sb(db_);
  sb.W(1, "a", Value(1)).R(1, "b", Value(0)).R(2, "a", Value(1));
  EXPECT_TRUE(IsDelayedRead(sb.Build()));
  EXPECT_TRUE(IsAvoidsCascadingAborts(sb.Build()));
}

TEST_F(DelayedReadTest, DrViolatedByEarlyRead) {
  // T2 reads T1's write while T1 still has an operation left.
  ScheduleBuilder sb(db_);
  sb.W(1, "a", Value(1)).R(2, "a", Value(1)).R(1, "b", Value(0));
  Schedule s = sb.Build();
  EXPECT_FALSE(IsDelayedRead(s));
  auto violation = FindDrViolation(s);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->reader_pos, 1u);
  EXPECT_EQ(violation->writer_pos, 0u);
  EXPECT_EQ(violation->writer_txn, 1u);
  EXPECT_FALSE(violation->ToString(db_, s).empty());
}

TEST_F(DelayedReadTest, OverwriteByCompletedTxnRestoresReadability) {
  // T1 writes a (incomplete); T2 overwrites a and completes; T3 reads a
  // from T2 — legal in DR (the paper's remark after Definition 5).
  ScheduleBuilder sb(db_);
  sb.W(1, "a", Value(1))
      .W(2, "a", Value(2))
      .R(3, "a", Value(2))
      .R(1, "b", Value(0));  // T1 completes only here
  EXPECT_TRUE(IsDelayedRead(sb.Build()));
  // ... but it is not strict: T2 overwrote uncommitted data.
  EXPECT_FALSE(IsStrict(sb.Build()));
}

TEST_F(DelayedReadTest, StrictViolationWitness) {
  ScheduleBuilder sb(db_);
  sb.W(1, "a", Value(1)).W(2, "a", Value(2)).R(1, "b", Value(0));
  auto violation = FindStrictViolation(sb.Build());
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->reader_pos, 1u);
  EXPECT_EQ(violation->writer_txn, 1u);
}

TEST_F(DelayedReadTest, StrictSchedulePasses) {
  ScheduleBuilder sb(db_);
  sb.W(1, "a", Value(1))
      .R(1, "b", Value(0))
      .R(2, "a", Value(1))
      .W(2, "a", Value(3));
  EXPECT_TRUE(IsStrict(sb.Build()));
  EXPECT_TRUE(IsDelayedRead(sb.Build()));
}

TEST_F(DelayedReadTest, EmptyAndSingleOpSchedules) {
  EXPECT_TRUE(IsDelayedRead(Schedule()));
  EXPECT_TRUE(IsStrict(Schedule()));
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0));
  EXPECT_TRUE(IsDelayedRead(sb.Build()));
}

class DrHierarchyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DrHierarchyPropertyTest, StrictImpliesDrOnRandomSchedules) {
  Database db;
  ASSERT_TRUE(db.AddIntItems({"x", "y", "z"}, -8, 8).ok());
  Rng rng(GetParam());
  int strict_count = 0;
  for (int trial = 0; trial < 500; ++trial) {
    OpSequence ops;
    for (int step = 0; step < 8; ++step) {
      TxnId txn = static_cast<TxnId>(rng.NextBelow(3) + 1);
      ItemId item = static_cast<ItemId>(rng.NextBelow(3));
      if (rng.NextBool(0.5)) {
        ops.push_back(Operation::Write(txn, item, Value(step)));
      } else {
        ops.push_back(Operation::Read(txn, item, Value(0)));
      }
    }
    Schedule s(std::move(ops));
    if (IsStrict(s)) {
      ++strict_count;
      EXPECT_TRUE(IsDelayedRead(s)) << s.ToString(db);
    }
  }
  EXPECT_GT(strict_count, 5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DrHierarchyPropertyTest,
                         ::testing::Values(3, 5, 7, 9));

}  // namespace
}  // namespace nse
