#include "analysis/txn_state.h"

#include <gtest/gtest.h>

#include "analysis/serializability.h"
#include "common/rng.h"
#include "paper/paper_examples.h"
#include "txn/interleaver.h"

namespace nse {
namespace {

class TxnStateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = paper::Example1::Make();
    std::vector<const TransactionProgram*> programs{&ex_.tp1, &ex_.tp2};
    auto run = Interleave(ex_.db, programs, ex_.ds1, ex_.choices);
    ASSERT_TRUE(run.ok()) << run.status();
    schedule_ = run->schedule;
    final_ = run->final_state;
  }

  paper::Example1 ex_;
  Schedule schedule_;
  DbState final_;
};

TEST_F(TxnStateTest, PaperExample1StatesForBothOrders) {
  // Definition 4's worked example: d = {a, b, c}, S from Example 1.
  DataSet d = ex_.db.SetOf({"a", "b", "c"});
  // Order T1, T2: state(T2) = {(a,0), (b,5), (c,5)}.
  auto states12 = ComputeTxnStates(schedule_, d, {1, 2}, ex_.ds1);
  ASSERT_EQ(states12.size(), 2u);
  EXPECT_EQ(states12[0], ex_.ds1.Restrict(d));
  EXPECT_EQ(states12[1], DbState::OfNamed(ex_.db, {{"a", Value(0)},
                                                   {"b", Value(5)},
                                                   {"c", Value(5)}}));
  // Order T2, T1: state(T2)... the paper reports the state of the *second*
  // transaction in the order, here T1's predecessor state for T2 first:
  // state(T2) with order T2, T1 is DS1^d = {(a,0), (b,10), (c,5)}.
  auto states21 = ComputeTxnStates(schedule_, d, {2, 1}, ex_.ds1);
  EXPECT_EQ(states21[0], DbState::OfNamed(ex_.db, {{"a", Value(0)},
                                                   {"b", Value(10)},
                                                   {"c", Value(5)}}));
}

TEST_F(TxnStateTest, ReadsContainedInStates) {
  // Definition 4 consequence (a): read(T^d_i) ⊆ state(T_i, d, S, DS1) for a
  // serialization order of S^d.
  DataSet d = ex_.db.SetOf({"a", "b", "c", "d"});
  auto csr = CheckConflictSerializability(schedule_.Project(d));
  ASSERT_TRUE(csr.serializable);
  EXPECT_EQ(FindReadOutsideState(schedule_, d, *csr.order, ex_.ds1),
            std::nullopt);
}

TEST_F(TxnStateTest, FinalStateIdentity) {
  // Definition 4 consequence (b): applying T_n's d-writes to state(T_n)
  // yields DS2^d.
  DataSet d = ex_.db.SetOf({"a", "b", "c", "d"});
  auto csr = CheckConflictSerializability(schedule_.Project(d));
  ASSERT_TRUE(csr.serializable);
  EXPECT_TRUE(
      FinalStateMatches(schedule_, d, *csr.order, ex_.ds1, final_));
}

TEST_F(TxnStateTest, EmptyOrderMatchesInitialRestriction) {
  DataSet d = ex_.db.SetOf({"a"});
  EXPECT_TRUE(FinalStateMatches(Schedule(), d, {}, ex_.ds1, ex_.ds1));
}

class TxnStatePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TxnStatePropertyTest, ConsequencesHoldOnRandomExecutions) {
  // Generate random executions of simple straight-line programs and verify
  // both Definition 4 consequences for every serializable projection.
  Database db;
  ASSERT_TRUE(db.AddIntItems({"x", "y", "z"}, -64, 64).ok());
  std::vector<TransactionProgram> programs_store;
  programs_store.emplace_back(
      "A", StmtBlock{MustAssign(db, "x", "y + 1")});
  programs_store.emplace_back(
      "B", StmtBlock{MustAssign(db, "y", "z - 1"),
                     MustAssign(db, "z", "z + 1")});
  programs_store.emplace_back(
      "C", StmtBlock{MustAssign(db, "z", "x + y")});
  std::vector<const TransactionProgram*> programs;
  for (const auto& p : programs_store) programs.push_back(&p);

  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    DbState initial;
    for (ItemId item = 0; item < db.num_items(); ++item) {
      initial.Set(item, Value(rng.NextInt(-10, 10)));
    }
    auto choices = RandomChoices(db, programs, initial, rng);
    ASSERT_TRUE(choices.ok());
    auto run = Interleave(db, programs, initial, *choices);
    ASSERT_TRUE(run.ok());
    for (const char* d_name : {"x", "y", "z"}) {
      DataSet d = db.SetOf({d_name, "x"});  // pairs including x
      auto csr = CheckConflictSerializability(run->schedule.Project(d));
      if (!csr.serializable) continue;
      EXPECT_EQ(FindReadOutsideState(run->schedule, d, *csr.order, initial),
                std::nullopt)
          << run->schedule.ToString(db);
      EXPECT_TRUE(FinalStateMatches(run->schedule, d, *csr.order, initial,
                                    run->final_state))
          << run->schedule.ToString(db);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnStatePropertyTest,
                         ::testing::Values(71, 72, 73, 74, 75));

}  // namespace
}  // namespace nse
