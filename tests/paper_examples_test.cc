// End-to-end ground truth: every example of the paper, executed through the
// full pipeline (programs → interleaver → checkers), must reproduce the
// paper's printed schedules, states, and verdicts bit-exactly.

#include "paper/paper_examples.h"

#include <gtest/gtest.h>

#include "analysis/access_graph.h"
#include "analysis/delayed_read.h"
#include "analysis/fixed_structure.h"
#include "analysis/pwsr.h"
#include "analysis/serializability.h"
#include "analysis/strong_correctness.h"
#include "analysis/txn_state.h"
#include "txn/interleaver.h"

namespace nse {
namespace {

TEST(PaperExample1, NotationAndProjections) {
  auto ex = paper::Example1::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  auto run = Interleave(ex.db, programs, ex.ds1, ex.choices);
  ASSERT_TRUE(run.ok()) << run.status();

  // [DS1] S [DS2] with DS2 = {(a,0), (b,5), (c,5), (d,0)}.
  EXPECT_EQ(run->final_state, ex.ds2_expected);

  Transaction t1 = run->schedule.TransactionOf(1);
  Transaction t2 = run->schedule.TransactionOf(2);
  EXPECT_EQ(t1.ToString(ex.db), "T1: r1(a, 0), r1(c, 5), w1(b, 5)");
  EXPECT_EQ(t2.ToString(ex.db), "T2: r2(a, 0), w2(d, 0)");

  // The example's assertion list.
  EXPECT_EQ(t1.ReadSet(), ex.db.SetOf({"a", "c"}));
  EXPECT_EQ(t1.ReadMap(),
            DbState::OfNamed(ex.db, {{"a", Value(0)}, {"c", Value(5)}}));
  EXPECT_EQ(t1.WriteSet(), ex.db.SetOf({"b"}));
  EXPECT_EQ(t1.WriteMap(), DbState::OfNamed(ex.db, {{"b", Value(5)}}));
  EXPECT_EQ(OpsToString(ex.db, t1.Project(ex.db.SetOf({"b"})).ops()),
            "w1(b, 5)");
  EXPECT_EQ(
      run->schedule.Project(ex.db.SetOf({"a", "c"})).ToString(ex.db),
      "r1(a, 0), r2(a, 0), r1(c, 5)");

  // §3.1 notation: struct, before, after at p = w2(d, 0) (position 2).
  EXPECT_EQ(StructToString(ex.db, t1.Struct()), "r(a), r(c), w(b)");
  EXPECT_EQ(OpsToString(ex.db, run->schedule.BeforeOfTxn(2, 2)),
            "r2(a, 0), w2(d, 0)");
  EXPECT_EQ(OpsToString(ex.db, run->schedule.AfterOfTxn(1, 2)),
            "r1(c, 5), w1(b, 5)");
  // depth(p, S) = 2 for p = w2(d, 0).
  EXPECT_EQ(run->schedule.depth(2), 2u);

  // Definition 4's two states for the two serialization orders.
  DataSet abc = ex.db.SetOf({"a", "b", "c"});
  EXPECT_EQ(ComputeTxnStates(run->schedule, abc, {1, 2}, ex.ds1)[1],
            DbState::OfNamed(ex.db, {{"a", Value(0)},
                                     {"b", Value(5)},
                                     {"c", Value(5)}}));
  EXPECT_EQ(ComputeTxnStates(run->schedule, abc, {2, 1}, ex.ds1)[1],
            DbState::OfNamed(ex.db, {{"a", Value(0)},
                                     {"b", Value(10)},
                                     {"c", Value(5)}}));
}

TEST(PaperExample2, PwsrButNotStronglyCorrect) {
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  auto run = Interleave(ex.db, programs, ex.ds0, ex.choices);
  ASSERT_TRUE(run.ok()) << run.status();

  EXPECT_EQ(run->schedule.ToString(ex.db),
            "w1(a, 1), r2(a, 1), r2(b, -1), w2(c, -1), r1(c, -1)");
  EXPECT_EQ(run->final_state, ex.ds2_expected);

  EXPECT_TRUE(CheckPwsr(run->schedule, *ex.ic).is_pwsr);
  EXPECT_FALSE(IsConflictSerializable(run->schedule));

  ConsistencyChecker checker(ex.db, *ex.ic);
  auto consistent = checker.IsConsistent(run->final_state);
  ASSERT_TRUE(consistent.ok());
  EXPECT_FALSE(*consistent);

  auto report = CheckExecution(checker, run->schedule, ex.ds0);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->strongly_correct);
}

TEST(PaperExample3, Lemma3FailsWithoutFixedStructure) {
  // Same execution as Example 2; examine p = w1(a,1) (position 0).
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  auto run = Interleave(ex.db, programs, ex.ds0, ex.choices);
  ASSERT_TRUE(run.ok());
  const Schedule& s = run->schedule;
  size_t p = 0;
  ASSERT_EQ(s.at(p).ToString(ex.db), "w1(a, 1)");

  // d = d1 = {a, b}. after(T1, p, S) = r1(c,-1): no writes, so
  // WS(after(T1, p, S)) = ∅ and d − WS(...) = {a, b}.
  DataSet d = ex.db.SetOf({"a", "b"});
  DataSet written_after = WriteSetOf(s.AfterOfTxn(1, p));
  EXPECT_TRUE(written_after.empty());

  // DS1^d ∪ read(before(T1, p, S)) = {(a,-1),(b,-1)} ∪ ∅ is consistent...
  ConsistencyChecker checker(ex.db, *ex.ic);
  DbState premise = ex.ds0.Restrict(d);
  EXPECT_TRUE(*checker.IsConsistent(premise));
  // ...but DS2^{d − WS(after(T1,p,S))} = {(a,1),(b,-1)} is NOT consistent:
  // Lemma 3's conclusion fails because TP1 is not fixed-structure.
  DbState conclusion = run->final_state.Restrict(DataSet::Minus(d, written_after));
  EXPECT_EQ(conclusion,
            DbState::OfNamed(ex.db, {{"a", Value(1)}, {"b", Value(-1)}}));
  EXPECT_FALSE(*checker.IsConsistent(conclusion));
  // The culprit, per the paper: TP1 does not have fixed structure.
  EXPECT_FALSE(AnalyzeStructure(ex.db, ex.tp1).fixed);
}

TEST(PaperExample4, JointConsistencyPreconditionOfLemma7) {
  auto ex = paper::Example4::Make();
  auto run = RunInIsolation(ex.db, ex.tp1, 1, ex.ds1);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->txn.ToString(ex.db), "T1: r1(c, 1), w1(a, 1)");
  EXPECT_EQ(run->final_state, ex.ds2_expected);

  ConsistencyChecker checker(ex.db, *ex.ic);
  // DS1^d = {(a,-1),(b,-1)} is consistent (extend with c = -1).
  EXPECT_TRUE(*checker.IsConsistent(ex.ds1.Restrict(ex.d)));
  // read(T1) = {(c,1)} is consistent.
  EXPECT_TRUE(*checker.IsConsistent(run->txn.ReadMap()));
  // Their union {(a,-1),(b,-1),(c,1)} is NOT consistent...
  auto joint = DbState::Union(ex.ds1.Restrict(ex.d), run->txn.ReadMap());
  ASSERT_TRUE(joint.ok());
  EXPECT_FALSE(*checker.IsConsistent(*joint));
  // ...and accordingly DS2^{d ∪ WS(T1)} = {(a,1),(b,-1)} is inconsistent.
  DataSet d_ws = DataSet::Union(ex.d, run->txn.WriteSet());
  EXPECT_FALSE(*checker.IsConsistent(run->final_state.Restrict(d_ws)));
}

TEST(PaperExample5, OverlappingConjunctsDefeatEverything) {
  auto ex = paper::Example5::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2, &ex.tp3};
  auto run = Interleave(ex.db, programs, ex.ds0, ex.choices);
  ASSERT_TRUE(run.ok()) << run.status();

  EXPECT_EQ(run->schedule.ToString(ex.db),
            "r3(a, 10), r2(c, 10), w2(a, 30), w2(c, 30), r1(c, 30), "
            "w1(b, 25), r3(b, 25), w3(d, -15)");
  EXPECT_EQ(run->final_state, ex.ds2_expected);

  // Every single-theorem hypothesis holds...
  EXPECT_TRUE(CheckPwsr(run->schedule, *ex.ic).is_pwsr);
  EXPECT_TRUE(IsDelayedRead(run->schedule));
  EXPECT_TRUE(DataAccessGraph::Build(run->schedule, *ex.ic).IsAcyclic());
  for (const auto* tp : programs) {
    EXPECT_TRUE(AnalyzeStructure(ex.db, *tp).fixed);
  }
  // ...except disjointness:
  EXPECT_FALSE(ex.ic->disjoint());

  // And the final state is inconsistent (d = -15 violates d > 0).
  ConsistencyChecker checker(ex.db, *ex.ic);
  auto consistent = checker.IsConsistent(run->final_state);
  ASSERT_TRUE(consistent.ok());
  EXPECT_FALSE(*consistent);
}

TEST(PaperExample5, ProgramsAreCorrectInIsolation) {
  // The paper's standing assumption — each program alone preserves IC —
  // holds for the Example 5 programs from the printed initial state.
  auto ex = paper::Example5::Make();
  ConsistencyChecker checker(ex.db, *ex.ic);
  ASSERT_TRUE(*checker.IsConsistent(ex.ds0));
  for (const TransactionProgram* tp : {&ex.tp1, &ex.tp2, &ex.tp3}) {
    auto run = RunInIsolation(ex.db, *tp, 1, ex.ds0);
    ASSERT_TRUE(run.ok()) << tp->name();
    auto consistent = checker.IsConsistent(run->final_state);
    ASSERT_TRUE(consistent.ok());
    EXPECT_TRUE(*consistent) << tp->name();
  }
}

}  // namespace
}  // namespace nse
