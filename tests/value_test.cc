#include "state/value.h"

#include <gtest/gtest.h>

namespace nse {
namespace {

TEST(ValueTest, DefaultIsIntZero) {
  Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 0);
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value(5).type(), ValueType::kInt);
  EXPECT_EQ(Value(true).type(), ValueType::kBool);
  EXPECT_EQ(Value("Jim").type(), ValueType::kString);
  EXPECT_EQ(Value(int64_t{1} << 40).AsInt(), int64_t{1} << 40);
  EXPECT_TRUE(Value(true).AsBool());
  EXPECT_EQ(Value(std::string("x")).AsString(), "x");
}

TEST(ValueTest, EqualityWithinType) {
  EXPECT_EQ(Value(5), Value(5));
  EXPECT_NE(Value(5), Value(6));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value("a"), Value("b"));
  EXPECT_EQ(Value(true), Value(true));
}

TEST(ValueTest, CrossTypeNeverEqual) {
  EXPECT_NE(Value(1), Value(true));
  EXPECT_NE(Value(0), Value("0"));
  EXPECT_NE(Value(false), Value("false"));
}

TEST(ValueTest, OrderingWithinType) {
  EXPECT_LT(Value(-1), Value(3));
  EXPECT_LT(Value("apple"), Value("banana"));
  EXPECT_LT(Value(false), Value(true));
}

TEST(ValueTest, CrossTypeOrderIsTotal) {
  // int < bool < string; whatever the order, it must be consistent.
  EXPECT_TRUE(Value(100) < Value(false));
  EXPECT_TRUE(Value(true) < Value(""));
  EXPECT_FALSE(Value("") < Value(0));
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value(-7).ToString(), "-7");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(false).ToString(), "false");
  EXPECT_EQ(Value("Jim").ToString(), "\"Jim\"");
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(ValueTypeName(ValueType::kInt), "int");
  EXPECT_STREQ(ValueTypeName(ValueType::kBool), "bool");
  EXPECT_STREQ(ValueTypeName(ValueType::kString), "string");
}

}  // namespace
}  // namespace nse
