#include "analysis/witness_mapping.h"

#include <gtest/gtest.h>

#include "analysis/analysis_context.h"
#include "analysis/checker.h"
#include "paper/paper_examples.h"
#include "txn/interleaver.h"

namespace nse {
namespace {

// On Example 2's catalog (IC = (a > 0 -> b > 0) ∧ (c > 0), d_1 = {a, b},
// d_2 = {c}), build a schedule whose d_1-projection has a conflict cycle:
//
//   position: 0        1        2        3        4
//   S       = r1(c,1), w1(a,1), r2(a,1), w2(b,5), r1(b,5)
//
// S^{d_1} drops position 0, so projected positions are shifted by one —
// exactly the off-by-one the source_positions mapping must undo.
class WitnessMappingTest : public ::testing::Test {
 protected:
  WitnessMappingTest() : ex_(paper::Example2::Make()) {
    ScheduleBuilder b(ex_.db);
    b.R(1, "c", 1).W(1, "a", 1).R(2, "a", 1).W(2, "b", 5).R(1, "b", 5);
    schedule_ = b.Build();
  }

  paper::Example2 ex_;
  Schedule schedule_;
};

TEST_F(WitnessMappingTest, MapsCycleEdgesToFullSchedulePositions) {
  AnalysisContext ctx(ex_.db, *ex_.ic, schedule_);
  const PwsrReport& pwsr = ctx.pwsr_report();
  ASSERT_FALSE(pwsr.is_pwsr);
  const ConjunctSerializability& entry = pwsr.per_conjunct[0];
  ASSERT_FALSE(entry.csr.serializable);
  ASSERT_TRUE(entry.csr.cycle.has_value());

  std::vector<MappedConflictEdge> mapped =
      MapConjunctCycle(ctx, 0, *entry.csr.cycle);
  ASSERT_EQ(mapped.size(), 2u);
  bool saw_t1_t2 = false, saw_t2_t1 = false;
  for (const MappedConflictEdge& edge : mapped) {
    if (edge.from == 1 && edge.to == 2) {
      saw_t1_t2 = true;
      EXPECT_EQ(edge.from_pos, 1u);  // w1(a) — position 0 in S^{d_1}
      EXPECT_EQ(edge.to_pos, 2u);    // r2(a)
    }
    if (edge.from == 2 && edge.to == 1) {
      saw_t2_t1 = true;
      EXPECT_EQ(edge.from_pos, 3u);  // w2(b)
      EXPECT_EQ(edge.to_pos, 4u);    // r1(b)
    }
  }
  EXPECT_TRUE(saw_t1_t2);
  EXPECT_TRUE(saw_t2_t1);
}

TEST_F(WitnessMappingTest, PwsrCheckerRendersMappedPositions) {
  AnalysisContext ctx(ex_.db, *ex_.ic, schedule_);
  auto result = CheckerRegistry::BuiltIn().Run("pwsr", ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->verdict, Verdict::kViolated);
  // The verdict must locate the conflicts in S, not in S^{d_1}.
  EXPECT_NE(result->witness.find("conflicts at"), std::string::npos)
      << result->witness;
  EXPECT_NE(result->witness.find("(ops 1 -> 2)"), std::string::npos)
      << result->witness;
  EXPECT_NE(result->witness.find("(ops 3 -> 4)"), std::string::npos)
      << result->witness;
}

TEST_F(WitnessMappingTest, ProjectedDrViolationMapsPositions) {
  AnalysisContext ctx(ex_.db, *ex_.ic, schedule_);
  // In S^{d_1}, r2(a) at projected position 1 reads from w1(a) at projected
  // position 0 while T1 still has r1(b) pending — a DR violation of the
  // projection, reported at full-schedule positions 2 and 1.
  std::optional<DrViolation> violation = ProjectedDrViolation(ctx, 0);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->reader_pos, 2u);
  EXPECT_EQ(violation->writer_pos, 1u);
  EXPECT_EQ(violation->writer_txn, 1u);
}

TEST_F(WitnessMappingTest, DrProjectionOfPaperScheduleIsClean) {
  // The paper's own Example 2 schedule: its d_2 = {c} projection is
  // w2(c,-1), r1(c,-1) — T2's c-write is its last d_2 operation, so the
  // projection is DR and the helper reports no violation.
  auto run = Interleave(ex_.db, {&ex_.tp1, &ex_.tp2}, ex_.ds0, ex_.choices);
  ASSERT_TRUE(run.ok()) << run.status();
  AnalysisContext ctx(ex_.db, *ex_.ic, run->schedule);
  EXPECT_FALSE(ProjectedDrViolation(ctx, 1).has_value());
}

TEST_F(WitnessMappingTest, EmptyAndForeignCyclesAreHandled) {
  AnalysisContext ctx(ex_.db, *ex_.ic, schedule_);
  EXPECT_TRUE(MapConjunctCycle(ctx, 0, {}).empty());
  EXPECT_TRUE(MapConjunctCycle(ctx, 0, {7}).empty());
  // A "cycle" over transactions with no conflict in this conjunct maps to
  // no edges rather than fabricating positions.
  EXPECT_TRUE(MapConjunctCycle(ctx, 1, {1, 1}).empty());
}

}  // namespace
}  // namespace nse
