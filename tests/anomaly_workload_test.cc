// The anomaly workload: Example 2 scaled to N independent pairs. The
// negative side of the theorem experiments must scale with it — PWSR
// executions of the original programs violate strong correctness, and the
// §3.1 fixed-structure repairs restore Theorem 1.

#include <gtest/gtest.h>

#include "analysis/violation_search.h"
#include "scheduler/workload.h"
#include "txn/interleaver.h"

namespace nse {
namespace {

TEST(AnomalyWorkloadTest, ShapeAndStructureVerdicts) {
  for (bool fixed : {false, true}) {
    auto workload = MakeAnomalyWorkload(/*pairs=*/2, fixed);
    ASSERT_TRUE(workload.ok()) << workload.status();
    EXPECT_EQ(workload->db.num_items(), 6u);
    EXPECT_EQ(workload->ic->num_conjuncts(), 4u);
    EXPECT_TRUE(workload->ic->disjoint());
    EXPECT_EQ(workload->programs.size(), 4u);
    for (const auto& program : workload->programs) {
      StructureAnalysis analysis = AnalyzeStructure(workload->db, program);
      EXPECT_TRUE(analysis.valid);
      EXPECT_EQ(analysis.fixed, fixed) << program.name();
    }
  }
  EXPECT_FALSE(MakeAnomalyWorkload(0, false).ok());
}

TEST(AnomalyWorkloadTest, ProgramsAreCorrectInIsolation) {
  // The standing assumption of the paper holds for both variants: each
  // program alone maps consistent states to consistent states.
  for (bool fixed : {false, true}) {
    auto workload = MakeAnomalyWorkload(2, fixed);
    ASSERT_TRUE(workload.ok());
    ConsistencyChecker checker(workload->db, *workload->ic);
    Rng rng(fixed ? 11u : 12u);
    for (const auto& program : workload->programs) {
      for (int trial = 0; trial < 8; ++trial) {
        auto initial = checker.SampleConsistentState(rng);
        ASSERT_TRUE(initial.ok());
        auto run = RunInIsolation(workload->db, program, 1, *initial);
        ASSERT_TRUE(run.ok()) << program.name() << ": " << run.status();
        auto consistent = checker.IsConsistent(run->final_state);
        ASSERT_TRUE(consistent.ok());
        EXPECT_TRUE(*consistent)
            << program.name() << " from " << initial->ToString(workload->db);
      }
    }
  }
}

TEST(AnomalyWorkloadTest, OriginalProgramsViolateUnderPwsrOnly) {
  auto workload = MakeAnomalyWorkload(/*pairs=*/1, /*fixed_structure=*/false);
  ASSERT_TRUE(workload.ok());
  HypothesisFilter filter;
  filter.require_pwsr = true;
  Rng rng(99);
  auto outcome =
      SearchForViolations(workload->db, *workload->ic,
                          workload->ProgramPtrs(), filter, rng, 600);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_GT(outcome->violations, 0u);
}

TEST(AnomalyWorkloadTest, RepairedProgramsSatisfyTheorem1) {
  auto workload = MakeAnomalyWorkload(/*pairs=*/2, /*fixed_structure=*/true);
  ASSERT_TRUE(workload.ok());
  HypothesisFilter filter;
  filter.require_pwsr = true;
  filter.require_fixed_structure = true;
  Rng rng(101);
  auto outcome =
      SearchForViolations(workload->db, *workload->ic,
                          workload->ProgramPtrs(), filter, rng, 300);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_GT(outcome->checked, 0u);
  EXPECT_EQ(outcome->violations, 0u);
}

TEST(AnomalyWorkloadTest, ViolationsScaleAcrossPairs) {
  // With two independent pairs, the Example 2 interleaving of either pair
  // alone produces a violation; an exhaustive search over a crafted initial
  // state must find some.
  auto workload = MakeAnomalyWorkload(2, false);
  ASSERT_TRUE(workload.ok());
  const Database& db = workload->db;
  DbState initial = DbState::OfNamed(db, {{"a0", Value(-1)},
                                          {"b0", Value(-1)},
                                          {"c0", Value(1)},
                                          {"a1", Value(-1)},
                                          {"b1", Value(-1)},
                                          {"c1", Value(1)}});
  ConsistencyChecker checker(db, *workload->ic);
  auto consistent = checker.IsConsistent(initial);
  ASSERT_TRUE(consistent.ok());
  ASSERT_TRUE(*consistent);

  // Drive pair 0 through the paper's bad interleaving while pair 1 runs
  // serially afterwards: programs are [TP1_0, TP2_0, TP1_1, TP2_1].
  // TP1_1 emits w(a1), r(c1), r(b1), w(b1) (c1 = 1 > 0): 4 ops; TP2_1
  // emits r(a1), r(b1), w(c1): 3 ops.
  std::vector<size_t> choices{0, 1, 1, 1, 0,        // Example 2 on pair 0
                              2, 2, 2, 2, 3, 3, 3}; // pair 1, serial
  auto run = Interleave(db, workload->ProgramPtrs(), initial, choices);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(CheckPwsr(run->schedule, *workload->ic).is_pwsr);
  auto report = CheckExecution(checker, run->schedule, initial);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->strongly_correct);
}

}  // namespace
}  // namespace nse
