#include "analysis/theorems.h"

#include <gtest/gtest.h>

#include "paper/paper_examples.h"
#include "txn/interleaver.h"

namespace nse {
namespace {

TEST(TheoremsTest, Example2CertificateDeniesAllTheorems) {
  // The paper's central counterexample: PWSR holds, but no theorem applies
  // (TP1 not fixed-structure, schedule not DR, DAG cyclic) — and indeed the
  // execution is not strongly correct.
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  auto run = Interleave(ex.db, programs, ex.ds0, ex.choices);
  ASSERT_TRUE(run.ok());
  TheoremCertificate cert = Certify(ex.db, *ex.ic, run->schedule, &programs);
  EXPECT_TRUE(cert.pwsr.is_pwsr);
  EXPECT_TRUE(cert.conjuncts_disjoint);
  ASSERT_TRUE(cert.all_programs_fixed_structure.has_value());
  EXPECT_FALSE(*cert.all_programs_fixed_structure);
  EXPECT_FALSE(cert.delayed_read);
  EXPECT_FALSE(cert.dag_acyclic);
  EXPECT_FALSE(cert.theorem1_applies);
  EXPECT_FALSE(cert.theorem2_applies);
  EXPECT_FALSE(cert.theorem3_applies);
  EXPECT_FALSE(cert.guaranteed_strongly_correct());
  EXPECT_NE(cert.Summary().find("not proven"), std::string::npos);
}

TEST(TheoremsTest, SerialExecutionEarnsTheorem2) {
  // A serial execution is trivially DR; with PWSR it is certified by Thm 2.
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  auto run = ExecuteSerially(ex.db, programs, ex.ds0, {0, 1});
  ASSERT_TRUE(run.ok());
  TheoremCertificate cert = Certify(ex.db, *ex.ic, run->schedule, &programs);
  EXPECT_TRUE(cert.delayed_read);
  EXPECT_TRUE(cert.theorem2_applies);
  EXPECT_TRUE(cert.guaranteed_strongly_correct());
}

TEST(TheoremsTest, FixedStructureProgramsEarnTheorem1) {
  // Straight-line programs + a PWSR interleaving.
  Database db;
  ASSERT_TRUE(db.AddIntItems({"a", "b"}, -8, 8).ok());
  auto ic = IntegrityConstraint::Parse(db, "a >= -8 & b >= -8");
  ASSERT_TRUE(ic.ok());
  TransactionProgram tp1("TP1", {MustAssign(db, "a", "a + 1")});
  TransactionProgram tp2("TP2", {MustAssign(db, "b", "b + 1")});
  std::vector<const TransactionProgram*> programs{&tp1, &tp2};
  DbState initial = DbState::OfNamed(db, {{"a", Value(0)}, {"b", Value(0)}});
  auto run = Interleave(db, programs, initial, {0, 1, 0, 1});
  ASSERT_TRUE(run.ok());
  TheoremCertificate cert = Certify(db, *ic, run->schedule, &programs);
  ASSERT_TRUE(cert.all_programs_fixed_structure.has_value());
  EXPECT_TRUE(*cert.all_programs_fixed_structure);
  EXPECT_TRUE(cert.theorem1_applies);
}

TEST(TheoremsTest, Example5OverlapDisablesCertification) {
  // Example 5: every per-theorem hypothesis holds, but the conjuncts
  // overlap, so no theorem may be applied — and consistency is indeed lost.
  auto ex = paper::Example5::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2, &ex.tp3};
  auto run = Interleave(ex.db, programs, ex.ds0, ex.choices);
  ASSERT_TRUE(run.ok()) << run.status();
  TheoremCertificate cert = Certify(ex.db, *ex.ic, run->schedule, &programs);
  EXPECT_TRUE(cert.pwsr.is_pwsr);
  EXPECT_FALSE(cert.conjuncts_disjoint);
  ASSERT_TRUE(cert.all_programs_fixed_structure.has_value());
  EXPECT_TRUE(*cert.all_programs_fixed_structure);
  EXPECT_TRUE(cert.delayed_read);
  EXPECT_TRUE(cert.dag_acyclic);
  EXPECT_FALSE(cert.theorem1_applies);
  EXPECT_FALSE(cert.theorem2_applies);
  EXPECT_FALSE(cert.theorem3_applies);
  EXPECT_NE(cert.Summary().find("Example 5"), std::string::npos);
}

TEST(TheoremsTest, WithoutProgramsFixedStructureUnknown) {
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  auto run = Interleave(ex.db, programs, ex.ds0, ex.choices);
  ASSERT_TRUE(run.ok());
  TheoremCertificate cert = Certify(ex.db, *ex.ic, run->schedule, nullptr);
  EXPECT_FALSE(cert.all_programs_fixed_structure.has_value());
  EXPECT_FALSE(cert.theorem1_applies);
  EXPECT_NE(cert.Summary().find("unknown"), std::string::npos);
}

}  // namespace
}  // namespace nse
