#include "txn/program.h"

#include <gtest/gtest.h>

#include "constraints/parser.h"
#include "paper/paper_examples.h"

namespace nse {
namespace {

class ProgramTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.AddIntItems({"a", "b", "c", "d"}, -32, 32).ok());
  }

  Term ParseTermOrDie(std::string_view text) {
    auto t = ParseTerm(db_, text);
    EXPECT_TRUE(t.ok()) << t.status();
    return *t;
  }

  Database db_;
};

TEST_F(ProgramTest, StatementConstruction) {
  auto assign = MakeAssign(db_, "a", "b + 1");
  ASSERT_TRUE(assign.ok());
  EXPECT_EQ((*assign)->kind(), StmtKind::kAssign);
  EXPECT_EQ((*assign)->target(), db_.MustFind("a"));

  auto iff = MakeIf(db_, "c > 0", {*assign});
  ASSERT_TRUE(iff.ok());
  EXPECT_EQ((*iff)->kind(), StmtKind::kIf);
  EXPECT_EQ((*iff)->then_block().size(), 1u);
  EXPECT_TRUE((*iff)->else_block().empty());

  EXPECT_FALSE(MakeAssign(db_, "zzz", "1").ok());
  EXPECT_FALSE(MakeAssign(db_, "a", "1 +").ok());
  EXPECT_FALSE(MakeIf(db_, "c >", {}).ok());
}

TEST_F(ProgramTest, PrettyPrinting) {
  TransactionProgram tp(
      "TP1", {MustAssign(db_, "a", "1"),
              MustIf(db_, "c > 0", {MustAssign(db_, "b", "abs(b) + 1")},
                     {MustAssign(db_, "b", "b")})});
  std::string text = tp.ToString(db_);
  EXPECT_NE(text.find("TP1:"), std::string::npos);
  EXPECT_NE(text.find("a := 1;"), std::string::npos);
  EXPECT_NE(text.find("if (c > 0)"), std::string::npos);
  EXPECT_NE(text.find("else"), std::string::npos);
}

TEST_F(ProgramTest, BlockItemHelpers) {
  StmtBlock body{MustAssign(db_, "a", "1"),
                 MustIf(db_, "c > 0", {MustAssign(db_, "b", "d + 1")})};
  EXPECT_EQ(ItemsOfBlock(body), db_.SetOf({"a", "b", "c", "d"}));
  EXPECT_EQ(WriteItemsOfBlock(body), db_.SetOf({"a", "b"}));
}

TEST_F(ProgramTest, CollectVarsInOrderIsDfsFirstOccurrence) {
  auto term = ParseTermOrDie("b + a * b + c");
  std::vector<ItemId> vars;
  CollectVarsInOrder(term, vars);
  EXPECT_EQ(vars, (std::vector<ItemId>{db_.MustFind("b"), db_.MustFind("a"),
                                       db_.MustFind("c")}));
}

TEST_F(ProgramTest, IsolatedRunReadsOncePerItem) {
  // b := b + b reads b once; the second occurrence is served from cache.
  TransactionProgram tp("TP", {MustAssign(db_, "b", "b + b")});
  DbState initial = DbState::OfNamed(db_, {{"a", Value(0)},
                                           {"b", Value(3)},
                                           {"c", Value(0)},
                                           {"d", Value(0)}});
  auto run = RunInIsolation(db_, tp, 1, initial);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->txn.ToString(db_), "T1: r1(b, 3), w1(b, 6)");
  EXPECT_EQ(run->final_state.MustGet(db_.MustFind("b")), Value(6));
}

TEST_F(ProgramTest, TransactionSeesItsOwnWrites) {
  // After a := 5, reading a yields 5 without emitting a read operation.
  TransactionProgram tp("TP", {MustAssign(db_, "a", "5"),
                               MustAssign(db_, "b", "a + 1")});
  DbState initial = DbState::OfNamed(db_, {{"a", Value(0)},
                                           {"b", Value(0)},
                                           {"c", Value(0)},
                                           {"d", Value(0)}});
  auto run = RunInIsolation(db_, tp, 1, initial);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->txn.ToString(db_), "T1: w1(a, 5), w1(b, 6)");
}

TEST_F(ProgramTest, BranchConditionEmitsReads) {
  TransactionProgram tp(
      "TP", {MustIf(db_, "c > 0", {MustAssign(db_, "a", "1")},
                    {MustAssign(db_, "b", "1")})});
  DbState pos = DbState::OfNamed(db_, {{"a", Value(0)},
                                       {"b", Value(0)},
                                       {"c", Value(7)},
                                       {"d", Value(0)}});
  auto run_pos = RunInIsolation(db_, tp, 1, pos);
  ASSERT_TRUE(run_pos.ok());
  EXPECT_EQ(run_pos->txn.ToString(db_), "T1: r1(c, 7), w1(a, 1)");

  DbState neg = pos;
  neg.Set(db_.MustFind("c"), Value(-7));
  auto run_neg = RunInIsolation(db_, tp, 1, neg);
  ASSERT_TRUE(run_neg.ok());
  EXPECT_EQ(run_neg->txn.ToString(db_), "T1: r1(c, -7), w1(b, 1)");
}

TEST_F(ProgramTest, DoubleWriteRejected) {
  TransactionProgram tp("TP", {MustAssign(db_, "a", "1"),
                               MustAssign(db_, "a", "2")});
  DbState initial = DbState::OfNamed(db_, {{"a", Value(0)},
                                           {"b", Value(0)},
                                           {"c", Value(0)},
                                           {"d", Value(0)}});
  auto run = RunInIsolation(db_, tp, 1, initial);
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ProgramTest, StepwiseExecutionMatchesIsolatedRun) {
  TransactionProgram tp(
      "TP", {MustAssign(db_, "a", "c + 1"),
             MustIf(db_, "a > 0", {MustAssign(db_, "b", "a + d")})});
  DbState state = DbState::OfNamed(db_, {{"a", Value(0)},
                                         {"b", Value(0)},
                                         {"c", Value(4)},
                                         {"d", Value(10)}});
  ProgramExecution exec(&db_, &tp, 1);
  ReadEnv env = [&state](ItemId item) -> Result<Value> {
    return state.MustGet(item);
  };
  OpSequence seen;
  while (true) {
    auto op = exec.Step(env);
    ASSERT_TRUE(op.ok()) << op.status();
    if (!op->has_value()) break;
    if ((*op)->is_write()) state.Set((*op)->entity, (*op)->value);
    seen.push_back(**op);
  }
  EXPECT_TRUE(exec.finished());
  // r(c,4), w(a,5), (a cached: no read), w(b, 5 + 10 = 15) with r(d,10).
  EXPECT_EQ(OpsToString(db_, seen),
            "r1(c, 4), w1(a, 5), r1(d, 10), w1(b, 15)");
  auto txn = exec.Finish();
  ASSERT_TRUE(txn.ok());
  EXPECT_TRUE(txn->ValidateAccessDiscipline().ok());
}

TEST_F(ProgramTest, ProbeFinishedLatchesWithoutPerformingOps) {
  TransactionProgram tp("TP", {MustAssign(db_, "a", "1")});
  ProgramExecution exec(&db_, &tp, 1);
  auto not_done = exec.ProbeFinished();
  ASSERT_TRUE(not_done.ok());
  EXPECT_FALSE(*not_done);
  EXPECT_TRUE(exec.history().empty());

  ReadEnv env = [](ItemId) -> Result<Value> { return Value(0); };
  ASSERT_TRUE(exec.Step(env).ok());  // performs w(a,1)
  auto done = exec.ProbeFinished();
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(*done);
  EXPECT_TRUE(exec.finished());
}

TEST_F(ProgramTest, FinishBeforeCompletionFails) {
  TransactionProgram tp("TP", {MustAssign(db_, "a", "1")});
  ProgramExecution exec(&db_, &tp, 1);
  EXPECT_FALSE(exec.Finish().ok());
}

TEST_F(ProgramTest, EmptyProgramFinishesImmediately) {
  TransactionProgram tp("TP", {});
  ProgramExecution exec(&db_, &tp, 1);
  ReadEnv env = [](ItemId) -> Result<Value> { return Value(0); };
  auto op = exec.Step(env);
  ASSERT_TRUE(op.ok());
  EXPECT_FALSE(op->has_value());
  EXPECT_TRUE(exec.finished());
}

TEST_F(ProgramTest, PaperExample1ProgramsProduceExactTransactions) {
  auto ex = paper::Example1::Make();
  auto run1 = RunInIsolation(ex.db, ex.tp1, 1, ex.ds1);
  ASSERT_TRUE(run1.ok()) << run1.status();
  EXPECT_EQ(run1->txn.ToString(ex.db), "T1: r1(a, 0), r1(c, 5), w1(b, 5)");
  auto run2 = RunInIsolation(ex.db, ex.tp2, 2, ex.ds1);
  ASSERT_TRUE(run2.ok());
  EXPECT_EQ(run2->txn.ToString(ex.db), "T2: r2(a, 0), w2(d, 0)");
}

}  // namespace
}  // namespace nse
