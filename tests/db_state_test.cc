#include "state/db_state.h"

#include <gtest/gtest.h>

namespace nse {
namespace {

class DbStateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.AddIntItems({"a", "b", "c", "d"}, -16, 16).ok());
  }
  Database db_;
};

TEST_F(DbStateTest, SetGetUnset) {
  DbState s;
  EXPECT_TRUE(s.empty());
  s.Set(db_.MustFind("a"), Value(5));
  EXPECT_EQ(s.Get(db_.MustFind("a")), Value(5));
  EXPECT_EQ(s.Get(db_.MustFind("b")), std::nullopt);
  s.Set(db_.MustFind("a"), Value(6));  // overwrite
  EXPECT_EQ(s.MustGet(db_.MustFind("a")), Value(6));
  s.Unset(db_.MustFind("a"));
  EXPECT_TRUE(s.empty());
}

TEST_F(DbStateTest, OfNamedAndToString) {
  DbState s = DbState::OfNamed(db_, {{"a", Value(5)}, {"b", Value(6)}});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.ToString(db_), "{(a, 5), (b, 6)}");
}

TEST_F(DbStateTest, RestrictIsPaperProjection) {
  // DS^d keeps exactly the items of d.
  DbState s = DbState::OfNamed(
      db_, {{"a", Value(0)}, {"b", Value(10)}, {"c", Value(5)}});
  DbState r = s.Restrict(db_.SetOf({"a", "c", "d"}));
  EXPECT_EQ(r, DbState::OfNamed(db_, {{"a", Value(0)}, {"c", Value(5)}}));
}

TEST_F(DbStateTest, UnionMergesDisjoint) {
  DbState x = DbState::OfNamed(db_, {{"a", Value(1)}});
  DbState y = DbState::OfNamed(db_, {{"b", Value(2)}});
  auto u = DbState::Union(x, y);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(*u, DbState::OfNamed(db_, {{"a", Value(1)}, {"b", Value(2)}}));
}

TEST_F(DbStateTest, UnionAgreesOnOverlap) {
  DbState x = DbState::OfNamed(db_, {{"a", Value(1)}, {"b", Value(2)}});
  DbState y = DbState::OfNamed(db_, {{"b", Value(2)}, {"c", Value(3)}});
  ASSERT_TRUE(DbState::Union(x, y).ok());
}

TEST_F(DbStateTest, UnionUndefinedOnConflict) {
  // The paper's ⊔ is undefined when the operands disagree.
  DbState x = DbState::OfNamed(db_, {{"a", Value(1)}});
  DbState y = DbState::OfNamed(db_, {{"a", Value(2)}});
  auto u = DbState::Union(x, y);
  EXPECT_FALSE(u.ok());
  EXPECT_EQ(u.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(DbStateTest, OverrideFavorsUpdate) {
  DbState base = DbState::OfNamed(db_, {{"a", Value(1)}, {"b", Value(2)}});
  DbState update = DbState::OfNamed(db_, {{"b", Value(9)}, {"c", Value(3)}});
  DbState merged = DbState::Override(base, update);
  EXPECT_EQ(merged, DbState::OfNamed(db_, {{"a", Value(1)},
                                           {"b", Value(9)},
                                           {"c", Value(3)}}));
}

TEST_F(DbStateTest, SubstateAndCompatibility) {
  DbState small = DbState::OfNamed(db_, {{"a", Value(1)}});
  DbState big = DbState::OfNamed(db_, {{"a", Value(1)}, {"b", Value(2)}});
  DbState other = DbState::OfNamed(db_, {{"a", Value(3)}});
  EXPECT_TRUE(small.IsSubstateOf(big));
  EXPECT_FALSE(big.IsSubstateOf(small));
  EXPECT_TRUE(DbState::Compatible(small, big));
  EXPECT_FALSE(DbState::Compatible(small, other));
  EXPECT_TRUE(DbState::Compatible(DbState(), big));
}

TEST_F(DbStateTest, TotalityAndDomains) {
  DbState s = DbState::OfNamed(db_, {{"a", Value(0)},
                                     {"b", Value(0)},
                                     {"c", Value(0)},
                                     {"d", Value(0)}});
  EXPECT_TRUE(s.IsTotalOver(db_));
  EXPECT_TRUE(s.RespectsDomains(db_));
  s.Unset(db_.MustFind("d"));
  EXPECT_FALSE(s.IsTotalOver(db_));
  s.Set(db_.MustFind("a"), Value(100));  // outside [-16, 16]
  EXPECT_FALSE(s.RespectsDomains(db_));
}

TEST_F(DbStateTest, AssignedItemsAndDisagreements) {
  DbState x = DbState::OfNamed(db_, {{"a", Value(1)}, {"b", Value(2)}});
  DbState y = DbState::OfNamed(db_, {{"a", Value(1)}, {"b", Value(5)}});
  EXPECT_EQ(x.AssignedItems(), db_.SetOf({"a", "b"}));
  EXPECT_EQ(x.DisagreementItems(y), db_.SetOf({"b"}));
  EXPECT_EQ(x.DisagreementItems(x), DataSet());
}

}  // namespace
}  // namespace nse
