#include "txn/interleaver.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "constraints/solver.h"
#include "fuzz_env.h"
#include "paper/paper_examples.h"
#include "scheduler/workload.h"

namespace nse {
namespace {

class InterleaverTest : public ::testing::Test {
 protected:
  void SetUp() override { ex_ = paper::Example1::Make(); }
  paper::Example1 ex_;
};

TEST_F(InterleaverTest, ReproducesPaperExample1Schedule) {
  std::vector<const TransactionProgram*> programs{&ex_.tp1, &ex_.tp2};
  auto run = Interleave(ex_.db, programs, ex_.ds1, ex_.choices);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->complete);
  EXPECT_EQ(run->schedule.ToString(ex_.db),
            "r1(a, 0), r2(a, 0), w2(d, 0), r1(c, 5), w1(b, 5)");
  EXPECT_EQ(run->final_state, ex_.ds2_expected);
}

TEST_F(InterleaverTest, SerialExecutionBothOrders) {
  std::vector<const TransactionProgram*> programs{&ex_.tp1, &ex_.tp2};
  auto t1_first = ExecuteSerially(ex_.db, programs, ex_.ds1, {0, 1});
  ASSERT_TRUE(t1_first.ok());
  EXPECT_EQ(t1_first->schedule.ToString(ex_.db),
            "r1(a, 0), r1(c, 5), w1(b, 5), r2(a, 0), w2(d, 0)");
  auto t2_first = ExecuteSerially(ex_.db, programs, ex_.ds1, {1, 0});
  ASSERT_TRUE(t2_first.ok());
  // Example 1's programs commute on this state: same final state.
  EXPECT_EQ(t1_first->final_state, t2_first->final_state);
}

TEST_F(InterleaverTest, RejectsBadChoices) {
  std::vector<const TransactionProgram*> programs{&ex_.tp1, &ex_.tp2};
  // Program index out of range.
  EXPECT_FALSE(Interleave(ex_.db, programs, ex_.ds1, {0, 7}).ok());
  // Stepping a finished program: TP2 has 2 ops.
  EXPECT_FALSE(Interleave(ex_.db, programs, ex_.ds1, {1, 1, 1}).ok());
  // Incomplete choice sequence with require_complete.
  EXPECT_FALSE(Interleave(ex_.db, programs, ex_.ds1, {0}).ok());
  // ... but allowed as a prefix when requested.
  auto prefix = Interleave(ex_.db, programs, ex_.ds1, {0},
                           /*require_complete=*/false);
  ASSERT_TRUE(prefix.ok());
  EXPECT_FALSE(prefix->complete);
  EXPECT_EQ(prefix->schedule.size(), 1u);
}

TEST_F(InterleaverTest, RandomChoicesAlwaysCompete) {
  std::vector<const TransactionProgram*> programs{&ex_.tp1, &ex_.tp2};
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    auto choices = RandomChoices(ex_.db, programs, ex_.ds1, rng);
    ASSERT_TRUE(choices.ok());
    // T1 emits 3 ops, T2 emits 2 ops from this initial state.
    EXPECT_EQ(choices->size(), 5u);
    auto run = Interleave(ex_.db, programs, ex_.ds1, *choices);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_TRUE(run->complete);
  }
}

TEST_F(InterleaverTest, EnumerateInterleavingsCountsMultinomial) {
  // T1 has 3 operations, T2 has 2: C(5,2) = 10 interleavings.
  std::vector<const TransactionProgram*> programs{&ex_.tp1, &ex_.tp2};
  uint64_t count = 0;
  auto visited = EnumerateInterleavings(
      ex_.db, programs, ex_.ds1, 1'000,
      [&count](const InterleaveResult& run, const std::vector<size_t>&) {
        EXPECT_TRUE(run.complete);
        ++count;
        return true;
      });
  ASSERT_TRUE(visited.ok()) << visited.status();
  EXPECT_EQ(visited->visited, 10u);
  EXPECT_TRUE(visited->exhausted);
  EXPECT_EQ(count, 10u);
}

TEST_F(InterleaverTest, EnumerateStopsOnVisitorFalseAndLimit) {
  std::vector<const TransactionProgram*> programs{&ex_.tp1, &ex_.tp2};
  uint64_t count = 0;
  auto stopped = EnumerateInterleavings(
      ex_.db, programs, ex_.ds1, 1'000,
      [&count](const InterleaveResult&, const std::vector<size_t>&) {
        return ++count < 3;
      });
  ASSERT_TRUE(stopped.ok());
  EXPECT_EQ(stopped->visited, 3u);
  // The visitor stopped the search; the limit did not cut it off.
  EXPECT_TRUE(stopped->exhausted);

  auto limited = EnumerateInterleavings(
      ex_.db, programs, ex_.ds1, 4,
      [](const InterleaveResult&, const std::vector<size_t>&) {
        return true;
      });
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->visited, 4u);
  // 10 interleavings exist, only 4 visited: truncated by the limit.
  EXPECT_FALSE(limited->exhausted);
}

TEST_F(InterleaverTest, EnumerationExactlyAtLimitIsExhaustive) {
  // Limit == number of interleavings: everything visited, no truncation.
  std::vector<const TransactionProgram*> programs{&ex_.tp1, &ex_.tp2};
  auto exact = EnumerateInterleavings(
      ex_.db, programs, ex_.ds1, 10,
      [](const InterleaveResult&, const std::vector<size_t>&) {
        return true;
      });
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->visited, 10u);
  EXPECT_TRUE(exact->exhausted);
}

TEST_F(InterleaverTest, InterleavingSchedulesAreValidExecutions) {
  // Every enumerated interleaving, re-executed from the initial state, must
  // be read-consistent and reach its own recorded final state.
  std::vector<const TransactionProgram*> programs{&ex_.tp1, &ex_.tp2};
  auto visited = EnumerateInterleavings(
      ex_.db, programs, ex_.ds1, 1'000,
      [this](const InterleaveResult& run, const std::vector<size_t>&) {
        auto exec = run.schedule.Execute(ex_.ds1);
        EXPECT_TRUE(exec.ok());
        EXPECT_TRUE(exec->reads_consistent());
        EXPECT_EQ(exec->final_state, run.final_state);
        return true;
      });
  ASSERT_TRUE(visited.ok());
}

// One visited interleaving, flattened for sequence comparison.
struct VisitRecord {
  std::vector<size_t> choices;
  std::string schedule;
  DbState final_state;
  bool complete = false;

  bool operator==(const VisitRecord& other) const {
    return choices == other.choices && schedule == other.schedule &&
           final_state == other.final_state && complete == other.complete;
  }
};

// The incremental step/undo enumerator must reproduce the replay-per-node
// reference exactly: same visit sequence (choices, schedules with value
// attributes, final states), same visited count, same truncation flag —
// across random workloads (including branching programs whose lengths are
// state-dependent), random subtree prefixes, tight limits, and early-stop
// visitors. This is the contract that makes the reference a valid
// sequential baseline in bench_violation_search.
TEST(InterleaverEnumeratorFuzz, IncrementalMatchesReferenceEnumerator) {
  const size_t seeds = FuzzSeedCount(10);
  size_t truncated_runs = 0;
  size_t branchy_runs = 0;
  for (size_t seed = 0; seed < seeds; ++seed) {
    Rng rng(seed * 2713 + 17);
    PartitionedWorkloadConfig config;
    config.num_partitions = 2 + rng.NextBelow(2);
    config.items_per_partition = 1 + rng.NextBelow(2);
    config.num_txns = 2 + rng.NextBelow(2);
    config.partitions_per_txn = 1 + rng.NextBelow(2);
    config.cross_read_probability = 0.5;
    config.branch_probability = (seed % 2 == 0) ? 0.6 : 0.0;
    config.domain_lo = -4;
    config.domain_hi = 4;
    config.seed = seed + 1;
    if (config.branch_probability > 0) ++branchy_runs;
    auto workload = MakePartitionedWorkload(config);
    ASSERT_TRUE(workload.ok()) << workload.status();
    auto programs = workload->ProgramPtrs();

    ConsistencyChecker checker(workload->db, *workload->ic);
    auto initial = checker.SampleConsistentState(rng);
    ASSERT_TRUE(initial.ok()) << initial.status();

    // A random valid subtree prefix: empty, or one live first choice.
    std::vector<size_t> prefix;
    if (rng.NextBool(0.5)) {
      auto live = LiveFirstChoices(workload->db, programs, *initial);
      ASSERT_TRUE(live.ok()) << live.status();
      if (!live->empty()) prefix.push_back((*live)[rng.NextBelow(live->size())]);
    }

    const uint64_t limits[] = {1, 3, 1 + rng.NextBelow(40), 10'000};
    for (uint64_t limit : limits) {
      // stop_after == 0 means "never stop early".
      for (uint64_t stop_after : {uint64_t{0}, uint64_t{2}}) {
        auto run_one = [&](bool reference, std::vector<VisitRecord>& out)
            -> Result<EnumerationOutcome> {
          auto visit = [&](const InterleaveResult& run,
                           const std::vector<size_t>& choices) {
            out.push_back(VisitRecord{choices,
                                      run.schedule.ToString(workload->db),
                                      run.final_state, run.complete});
            return stop_after == 0 || out.size() < stop_after;
          };
          return reference
                     ? EnumerateInterleavingsFromReference(
                           workload->db, programs, *initial, prefix, limit,
                           visit)
                     : EnumerateInterleavingsFrom(workload->db, programs,
                                                  *initial, prefix, limit,
                                                  visit);
        };
        std::vector<VisitRecord> got, want;
        auto got_outcome = run_one(false, got);
        auto want_outcome = run_one(true, want);
        ASSERT_TRUE(got_outcome.ok()) << got_outcome.status();
        ASSERT_TRUE(want_outcome.ok()) << want_outcome.status();
        EXPECT_EQ(got_outcome->visited, want_outcome->visited)
            << "seed " << seed << " limit " << limit;
        EXPECT_EQ(got_outcome->exhausted, want_outcome->exhausted)
            << "seed " << seed << " limit " << limit;
        ASSERT_EQ(got.size(), want.size())
            << "seed " << seed << " limit " << limit;
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_TRUE(got[i] == want[i])
              << "seed " << seed << " limit " << limit << " visit " << i
              << ": " << got[i].schedule << " vs " << want[i].schedule;
        }
        if (!got_outcome->exhausted) ++truncated_runs;
      }
    }
  }
  // The sweep must exercise both regimes.
  EXPECT_GT(truncated_runs, 0u);
  EXPECT_GT(branchy_runs, 0u);
}

TEST_F(InterleaverTest, StateDependentProgramLengths) {
  // Example 2's TP2 emits 1 op (r a) when a <= 0 and 3 ops when a > 0;
  // the interleaver must follow actual execution.
  auto ex2 = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex2.tp2};
  DbState neg = ex2.ds0;  // a = -1: branch not taken
  auto run = ExecuteSerially(ex2.db, programs, neg, {0});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->schedule.ToString(ex2.db), "r1(a, -1)");
}

}  // namespace
}  // namespace nse
