#include "analysis/analysis_context.h"

#include <gtest/gtest.h>

#include "analysis/checker.h"
#include "analysis/theorems.h"
#include "common/rng.h"
#include "constraints/ast.h"
#include "fuzz_env.h"
#include "txn/program.h"

namespace nse {
namespace {

class AnalysisContextTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.AddIntItems({"a", "b", "c", "d"}, -8, 8).ok());
    // Two disjoint conjuncts: a == b over {a, b}, c == d over {c, d}.
    auto ic = IntegrityConstraint::FromConjuncts(
        db_, {Eq(Var(db_.MustFind("a")), Var(db_.MustFind("b"))),
              Eq(Var(db_.MustFind("c")), Var(db_.MustFind("d")))});
    ASSERT_TRUE(ic.ok()) << ic.status();
    ic_.emplace(std::move(ic).value());
  }

  /// T1 copies a into b and c into d serially — strongly correct.
  Schedule SerialCopySchedule() {
    ScheduleBuilder sb(db_);
    sb.R(1, "a", Value(0)).W(1, "b", Value(0));
    sb.R(2, "c", Value(0)).W(2, "d", Value(0));
    return sb.Build();
  }

  /// Classic conflict cycle inside conjunct {a, b}.
  Schedule CyclicSchedule() {
    ScheduleBuilder sb(db_);
    sb.R(1, "a", Value(0))
        .W(2, "a", Value(1))
        .R(2, "b", Value(0))
        .W(1, "b", Value(1));
    return sb.Build();
  }

  Database db_;
  std::optional<IntegrityConstraint> ic_;
};

TEST_F(AnalysisContextTest, ArtifactsAreBuiltOnceAndCached) {
  Schedule s = CyclicSchedule();
  AnalysisContext ctx(db_, *ic_, s);

  const ConflictGraph& g1 = ctx.conflict_graph();
  const ConflictGraph& g2 = ctx.conflict_graph();
  EXPECT_EQ(&g1, &g2);
  EXPECT_EQ(ctx.cache_stats().conflict_graph_builds, 1u);

  ctx.csr_report();
  ctx.csr_report();
  EXPECT_EQ(ctx.cache_stats().csr_builds, 1u);
  EXPECT_EQ(ctx.cache_stats().conflict_graph_builds, 1u);

  ctx.pwsr_report();
  ctx.pwsr_report();
  EXPECT_EQ(ctx.cache_stats().pwsr_builds, 1u);
  // Disjoint conjuncts: all projected graphs come from one shared sweep,
  // with no projected schedules materialized at all.
  EXPECT_EQ(ctx.cache_stats().projection_builds, 0u);
  EXPECT_EQ(ctx.cache_stats().projection_graph_builds, 2u);

  ctx.dr_violation();
  ctx.delayed_read();
  EXPECT_EQ(ctx.cache_stats().reads_from_builds, 1u);
  EXPECT_EQ(ctx.cache_stats().dr_builds, 1u);

  ctx.access_graph();
  ctx.access_graph();
  EXPECT_EQ(ctx.cache_stats().access_graph_builds, 1u);

  // A full theorem certification on the already-warmed context must not
  // rebuild anything.
  AnalysisCacheStats before = ctx.cache_stats();
  Certify(ctx);
  EXPECT_EQ(ctx.cache_stats().pwsr_builds, before.pwsr_builds);
  EXPECT_EQ(ctx.cache_stats().dr_builds, before.dr_builds);
  EXPECT_EQ(ctx.cache_stats().access_graph_builds,
            before.access_graph_builds);
}

TEST_F(AnalysisContextTest, ContextReportsMatchFreeFunctions) {
  for (const Schedule& s : {SerialCopySchedule(), CyclicSchedule()}) {
    AnalysisContext ctx(db_, *ic_, s);
    CsrReport direct = CheckConflictSerializability(s);
    EXPECT_EQ(ctx.csr_report().serializable, direct.serializable);
    EXPECT_EQ(ctx.csr_report().order, direct.order);

    PwsrReport pwsr = CheckPwsr(s, *ic_);
    EXPECT_EQ(ctx.pwsr_report().is_pwsr, pwsr.is_pwsr);
    ASSERT_EQ(ctx.pwsr_report().per_conjunct.size(),
              pwsr.per_conjunct.size());
    for (size_t e = 0; e < pwsr.per_conjunct.size(); ++e) {
      EXPECT_EQ(ctx.pwsr_report().per_conjunct[e].csr.serializable,
                pwsr.per_conjunct[e].csr.serializable);
    }

    EXPECT_EQ(ctx.delayed_read(), IsDelayedRead(s));
    EXPECT_EQ(ctx.strict(), IsStrict(s));
  }
}

TEST_F(AnalysisContextTest, ProjectionHandleMapsBackToSourcePositions) {
  Schedule s = SerialCopySchedule();  // ops 0,1 on {a,b}; ops 2,3 on {c,d}
  AnalysisContext ctx(db_, *ic_, s);
  const ScheduleProjection& p0 = ctx.projection(0);
  EXPECT_EQ(p0.schedule.size(), 2u);
  EXPECT_EQ(p0.source_positions, (std::vector<size_t>{0, 1}));
  const ScheduleProjection& p1 = ctx.projection(1);
  EXPECT_EQ(p1.source_positions, (std::vector<size_t>{2, 3}));
}

TEST_F(AnalysisContextTest, OwningContextKeepsScheduleAlive) {
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0)).W(1, "b", Value(0));
  AnalysisContext ctx(db_, *ic_, sb.Build());
  EXPECT_EQ(ctx.schedule().size(), 2u);
  EXPECT_TRUE(ctx.csr_report().serializable);
}

TEST_F(AnalysisContextTest, BuiltInRegistryHasTheNineCriteria) {
  const CheckerRegistry& registry = CheckerRegistry::BuiltIn();
  std::vector<std::string_view> names = registry.Names();
  ASSERT_EQ(names.size(), 9u);
  EXPECT_EQ(names[0], "csr");
  EXPECT_EQ(names[1], "pwsr");
  EXPECT_EQ(names[2], "delayed-read");
  EXPECT_EQ(names[3], "view-set");
  EXPECT_EQ(names[4], "strong-correctness");
  EXPECT_EQ(names[5], "theorems");
  EXPECT_EQ(names[6], "view-serializability");
  EXPECT_EQ(names[7], "mvsr");
  EXPECT_EQ(names[8], "mv-robustness");
  EXPECT_NE(registry.Find("pwsr"), nullptr);
  EXPECT_EQ(registry.Find("no-such-checker"), nullptr);
}

TEST_F(AnalysisContextTest, RunAllOnStronglyCorrectSchedule) {
  Schedule s = SerialCopySchedule();
  AnalysisContext ctx(db_, *ic_, s);
  std::vector<CheckResult> results = CheckerRegistry::BuiltIn().RunAll(ctx);
  ASSERT_EQ(results.size(), 9u);
  for (const CheckResult& result : results) {
    EXPECT_EQ(result.verdict, Verdict::kSatisfied) << result.ToString();
  }
}

TEST_F(AnalysisContextTest, RunAllOnCyclicSchedule) {
  Schedule s = CyclicSchedule();
  AnalysisContext ctx(db_, *ic_, s);
  const CheckerRegistry& registry = CheckerRegistry::BuiltIn();

  auto csr = registry.Run("csr", ctx);
  ASSERT_TRUE(csr.ok());
  EXPECT_EQ(csr->verdict, Verdict::kViolated);
  EXPECT_NE(csr->witness.find("cycle"), std::string::npos);

  auto pwsr = registry.Run("pwsr", ctx);
  ASSERT_TRUE(pwsr.ok());
  EXPECT_EQ(pwsr->verdict, Verdict::kViolated);

  // The theorems cannot certify a non-PWSR schedule, but that leaves strong
  // correctness open rather than refuted.
  auto theorems = registry.Run("theorems", ctx);
  ASSERT_TRUE(theorems.ok());
  EXPECT_EQ(theorems->verdict, Verdict::kUnknown);

  EXPECT_FALSE(registry.Run("no-such-checker", ctx).ok());
}

TEST_F(AnalysisContextTest, ScheduleOnlyContextLeavesIcCheckersUnknown) {
  Schedule s = CyclicSchedule();
  AnalysisContext ctx(s);
  EXPECT_FALSE(ctx.has_db());
  EXPECT_FALSE(ctx.has_ic());
  std::vector<CheckResult> results = CheckerRegistry::BuiltIn().RunAll(ctx);
  ASSERT_EQ(results.size(), 9u);
  EXPECT_EQ(results[0].verdict, Verdict::kViolated);   // csr
  EXPECT_EQ(results[1].verdict, Verdict::kUnknown);    // pwsr: no IC
  EXPECT_EQ(results[2].verdict, Verdict::kSatisfied);  // delayed-read
  EXPECT_EQ(results[4].verdict, Verdict::kUnknown);    // strong-correctness
  // The multiversion criteria need no IC: the conflict cycle here is also
  // a view-serializability violation, and the r/w pattern is the textbook
  // dangerous structure.
  EXPECT_EQ(results[6].verdict, Verdict::kViolated);   // view-serializability
  EXPECT_EQ(results[7].verdict, Verdict::kViolated);   // mvsr
  EXPECT_EQ(results[8].verdict, Verdict::kViolated);   // mv-robustness
}

TEST_F(AnalysisContextTest, CertifyOnDbLessContextLeavesFixedStructureUnknown) {
  // A context without a database cannot run the fixed-structure analysis,
  // even when options carry programs: the Theorem 1 hypothesis must stay
  // unknown instead of aborting on the missing catalog.
  Schedule s = SerialCopySchedule();
  TransactionProgram noop("noop", {});
  std::vector<const TransactionProgram*> programs{&noop};
  AnalysisOptions options;
  options.programs = &programs;
  AnalysisContext ctx(*ic_, s, options);
  TheoremCertificate cert = Certify(ctx);
  EXPECT_FALSE(cert.all_programs_fixed_structure.has_value());
  EXPECT_FALSE(cert.theorem1_applies);
  // The registry path must not abort either.
  auto result = CheckerRegistry::BuiltIn().Run("theorems", ctx);
  ASSERT_TRUE(result.ok());
}

TEST_F(AnalysisContextTest, RegistryRejectsDuplicateNames) {
  class Dummy : public Checker {
   public:
    std::string_view name() const override { return "dummy"; }
    CheckResult Check(AnalysisContext&) const override {
      return CheckResult{"dummy", Verdict::kSatisfied, ""};
    }
  };
  CheckerRegistry registry;
  EXPECT_TRUE(registry.Register(std::make_unique<Dummy>()).ok());
  EXPECT_FALSE(registry.Register(std::make_unique<Dummy>()).ok());
  EXPECT_FALSE(registry.Register(nullptr).ok());
}

TEST_F(AnalysisContextTest, OrderForOutOfRangeIsEmptyNotUb) {
  Schedule s = SerialCopySchedule();
  PwsrReport report = CheckPwsr(s, *ic_);
  ASSERT_EQ(report.per_conjunct.size(), 2u);
  EXPECT_TRUE(report.OrderFor(0).has_value());
  EXPECT_FALSE(report.OrderFor(2).has_value());
  EXPECT_FALSE(report.OrderFor(999).has_value());
  EXPECT_FALSE(PwsrReport().OrderFor(0).has_value());
}

TEST_F(AnalysisContextTest, IncrementalConflictGraphEdgesAndTopoCache) {
  ConflictGraph graph(std::vector<TxnId>{1, 2, 3});
  EXPECT_TRUE(graph.IsAcyclic());
  EXPECT_EQ(graph.num_edges(), 0u);

  EXPECT_TRUE(graph.AddEdge(1, 2));
  EXPECT_FALSE(graph.AddEdge(1, 2));  // duplicate
  EXPECT_TRUE(graph.AddEdge(2, 3));
  EXPECT_EQ(graph.num_edges(), 2u);
  EXPECT_TRUE(graph.HasEdge(1, 2));
  EXPECT_FALSE(graph.HasEdge(2, 1));
  ASSERT_TRUE(graph.TopologicalOrder().has_value());
  EXPECT_EQ(*graph.TopologicalOrder(), (std::vector<TxnId>{1, 2, 3}));

  // Closing the cycle invalidates the cached topological state.
  EXPECT_TRUE(graph.AddEdge(3, 1));
  EXPECT_FALSE(graph.IsAcyclic());
  auto cycle = graph.FindCycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->front(), cycle->back());
  EXPECT_EQ(cycle->size(), 4u);
}

TEST_F(AnalysisContextTest, CsrFastPathRecordsCycleClosingOperation) {
  // r1(a) w2(a) r2(b) w1(b): the edge T2 -> T1 created by w1(b) at trace
  // position 3 closes the conflict cycle. Both context paths — the fused
  // disjoint-conjunct sweep and the schedule-only build — must record it.
  Schedule s = CyclicSchedule();

  AnalysisContext fused(db_, *ic_, s);  // disjoint IC: fused core build
  const CsrReport& fused_csr = fused.csr_report();
  EXPECT_FALSE(fused_csr.serializable);
  ASSERT_TRUE(fused_csr.cycle_edge.has_value());
  EXPECT_EQ(*fused_csr.cycle_edge, std::make_pair(TxnId{2}, TxnId{1}));
  ASSERT_TRUE(fused_csr.cycle_op_pos.has_value());
  EXPECT_EQ(*fused_csr.cycle_op_pos, 3u);
  ASSERT_TRUE(fused_csr.cycle.has_value());
  EXPECT_EQ(fused_csr.cycle->front(), fused_csr.cycle->back());

  AnalysisContext plain(s);  // schedule-only: direct incremental build
  const CsrReport& plain_csr = plain.csr_report();
  EXPECT_FALSE(plain_csr.serializable);
  EXPECT_EQ(plain_csr.cycle_edge, fused_csr.cycle_edge);
  EXPECT_EQ(plain_csr.cycle_op_pos, fused_csr.cycle_op_pos);
}

TEST_F(AnalysisContextTest, PwsrConjunctCycleRendersAtFullSchedulePosition) {
  // The cycle lives in conjunct {a, b}; its closing operation w1(b) sits at
  // full-schedule position 3 even though the conjunct projection would
  // place it earlier — the witness must point into S.
  Schedule s = CyclicSchedule();
  AnalysisContext ctx(db_, *ic_, s);
  const PwsrReport& pwsr = ctx.pwsr_report();
  EXPECT_FALSE(pwsr.is_pwsr);
  ASSERT_EQ(pwsr.per_conjunct.size(), 2u);
  const CsrReport& conjunct_csr = pwsr.per_conjunct[0].csr;
  EXPECT_FALSE(conjunct_csr.serializable);
  ASSERT_TRUE(conjunct_csr.cycle_op_pos.has_value());
  EXPECT_EQ(*conjunct_csr.cycle_op_pos, 3u);
  // Conjunct {c, d} saw no operation conflicts at all.
  EXPECT_TRUE(pwsr.per_conjunct[1].csr.serializable);
}

TEST_F(AnalysisContextTest, ContextAgreesWithCheckersOnRandomSchedules) {
  Rng rng(2026);
  for (int trial = 0; trial < 50; ++trial) {
    OpSequence ops;
    size_t num_ops = 4 + rng.NextBelow(12);
    for (size_t i = 0; i < num_ops; ++i) {
      TxnId txn = static_cast<TxnId>(rng.NextBelow(3) + 1);
      ItemId item = static_cast<ItemId>(rng.NextBelow(db_.num_items()));
      if (rng.NextBool(0.5)) {
        ops.push_back(Operation::Write(txn, item, Value(0)));
      } else {
        ops.push_back(Operation::Read(txn, item, Value(0)));
      }
    }
    Schedule s(std::move(ops));
    AnalysisContext ctx(db_, *ic_, s);
    EXPECT_EQ(ctx.csr_report().serializable, IsConflictSerializable(s));
    EXPECT_EQ(ctx.pwsr_report().is_pwsr, CheckPwsr(s, *ic_).is_pwsr);
    EXPECT_EQ(ctx.delayed_read(), IsDelayedRead(s));
    // The one-sweep projected graphs must match graphs built directly from
    // materialized projections.
    for (size_t e = 0; e < ic_->num_conjuncts(); ++e) {
      ConflictGraph direct = ConflictGraph::Build(s.Project(ic_->data_set(e)));
      EXPECT_EQ(ctx.projection_graph(e).nodes(), direct.nodes());
      EXPECT_EQ(ctx.projection_graph(e).Edges(), direct.Edges());
    }
  }
}

// Fused-sweep differential, fuzz-scaled: the arena-backed multi-plane
// bitset pass behind BuildCoreGraphs (full graph + every conjunct graph +
// reads-from in one walk of the schedule) against artifacts built one at a
// time from materialized projections by the reference vector sweep.
TEST(AnalysisContextFusedSweepFuzz, FusedPlanesMatchMaterializedReference) {
  Database db;
  ASSERT_TRUE(db.AddIntItems({"a", "b", "c", "d", "e", "f"}, -4, 4).ok());
  // Three disjoint conjuncts, so the fused pass drives real extra planes.
  auto ic = IntegrityConstraint::FromConjuncts(
      db, {Eq(Var(db.MustFind("a")), Var(db.MustFind("b"))),
           Eq(Var(db.MustFind("c")), Var(db.MustFind("d"))),
           Eq(Var(db.MustFind("e")), Var(db.MustFind("f")))});
  ASSERT_TRUE(ic.ok()) << ic.status();

  const size_t seeds = FuzzSeedCount(10);
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    Rng rng(seed * 6151 + 7);
    const size_t num_txns = 2 + rng.NextBelow(10);
    const size_t num_ops = 6 + rng.NextBelow(50);
    OpSequence ops;
    for (size_t i = 0; i < num_ops; ++i) {
      TxnId txn = static_cast<TxnId>(1 + rng.NextBelow(num_txns));
      ItemId item = static_cast<ItemId>(rng.NextBelow(db.num_items()));
      if (rng.NextBool(0.5)) {
        ops.push_back(Operation::Write(txn, item, Value(0)));
      } else {
        ops.push_back(Operation::Read(txn, item, Value(0)));
      }
    }
    Schedule s(std::move(ops));
    AnalysisContext ctx(db, *ic, s);

    ConflictGraph full = ConflictGraph::BuildReference(s);
    EXPECT_EQ(ctx.conflict_graph().Edges(), full.Edges()) << "seed " << seed;
    EXPECT_EQ(ctx.conflict_graph().ToString(), full.ToString());

    for (size_t e = 0; e < ic->num_conjuncts(); ++e) {
      ConflictGraph direct =
          ConflictGraph::BuildReference(s.Project(ic->data_set(e)));
      EXPECT_EQ(ctx.projection_graph(e).nodes(), direct.nodes())
          << "seed " << seed << " conjunct " << e;
      EXPECT_EQ(ctx.projection_graph(e).Edges(), direct.Edges())
          << "seed " << seed << " conjunct " << e;
      EXPECT_EQ(ctx.projection_graph(e).IsAcyclic(), direct.IsAcyclic());
    }

    const auto& fused_rf = ctx.reads_from();
    const auto direct_rf = ReadsFromPairs(s);
    ASSERT_EQ(fused_rf.size(), direct_rf.size()) << "seed " << seed;
    for (size_t i = 0; i < fused_rf.size(); ++i) {
      EXPECT_EQ(fused_rf[i].reader_pos, direct_rf[i].reader_pos);
      EXPECT_EQ(fused_rf[i].writer_pos, direct_rf[i].writer_pos);
    }
  }
}

}  // namespace
}  // namespace nse
