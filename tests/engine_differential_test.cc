// Engine differential harness: the multithreaded counterpart of the chaos
// and policy differential sweeps. For K seeds, a randomized workload is
// run under every scheduler policy × worker-thread counts {1, 2, 4, 8},
// and three contracts are pinned on every run:
//
//   1. class safety — the trace the engine linearized by policy trace_seq
//      still verifies against the policy's promised class via the
//      independent CheckerRegistry checkers (CSR / strict / PWSR / DR),
//      races, wounds and deadlock victims notwithstanding;
//   2. forward progress — every transaction commits (the engine has no
//      crash/shed notions): completed == n, and the trace holds committed
//      transactions' operations only;
//   3. no residual state — at quiescence the policy leaked nothing: zero
//      held locks, zero active stamp entries, zero dirty-writer marks,
//      and the SGT live graph equals the committed trace's conflict graph
//      (or drained to empty with the incremental GC on).
//
// Event counters (wounds, deadlock aborts, wait events) are inherently
// nondeterministic under real threads, so unlike the tick-simulator
// sweeps nothing here pins their exact values — the simulator remains the
// bit-for-bit oracle; this harness is the one that exercises the same
// policy code under genuine concurrency (the TSan CI job runs it
// unfiltered).

#include <algorithm>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analysis_context.h"
#include "analysis/checker.h"
#include "analysis/conflict_graph.h"
#include "analysis/serializability.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "engine/sharded_store.h"
#include "fuzz_env.h"
#include "scheduler/dr_scheduler.h"
#include "scheduler/fault_injection.h"
#include "scheduler/priority_locking.h"
#include "scheduler/pw_two_phase_locking.h"
#include "scheduler/sgt_policy.h"
#include "scheduler/sgt_victim_policy.h"
#include "scheduler/timestamp_ordering.h"
#include "scheduler/two_phase_locking.h"
#include "scheduler/workload.h"

namespace nse {
namespace {

const size_t kThreadCounts[] = {1, 2, 4, 8};

std::vector<uint64_t> FuzzSeeds() {
  std::vector<uint64_t> seeds;
  for (uint64_t s = 1; s <= FuzzSeedCount(3); ++s) seeds.push_back(s);
  return seeds;
}

/// Same workload family as the other differential harnesses. Arrival
/// ticks are a simulator notion the engine ignores; the draw keeps them
/// zero-spread so the two drivers see the same scripts.
Workload DrawWorkload(uint64_t seed) {
  Rng knobs = Rng(seed).Split(0);
  PartitionedWorkloadConfig config;
  config.num_partitions = 2 + knobs.NextBelow(4);       // 2..5
  config.items_per_partition = 1 + knobs.NextBelow(3);  // 1..3
  config.num_txns = 4 + knobs.NextBelow(7);             // 4..10
  config.partitions_per_txn = 1 + knobs.NextBelow(config.num_partitions);
  config.cross_read_probability = knobs.NextDouble();
  config.hotspot_probability = 0.3 * knobs.NextBelow(4);  // 0, .3, .6, .9
  config.arrival_spread = 0;
  config.seed = seed;
  auto workload = MakePartitionedWorkload(config);
  EXPECT_TRUE(workload.ok()) << workload.status();
  return std::move(workload).value();
}

EngineConfig FastEngineConfig(size_t threads) {
  EngineConfig config;
  config.threads = threads;
  config.wait_timeout_micros = 100;  // brisk deadlock-detector cadence
  config.backoff_unit_micros = 5;    // tiny workloads: short real sleeps
  return config;
}

/// Runs `checker_name` against the committed schedule and asserts it is
/// satisfied.
void ExpectClass(const Workload& workload, const Schedule& schedule,
                 std::string_view checker_name, std::string_view policy,
                 size_t threads) {
  AnalysisContext ctx(*workload.ic, schedule);
  auto result = CheckerRegistry::BuiltIn().Run(checker_name, ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->verdict, Verdict::kSatisfied)
      << policy << " at " << threads << " threads broke its "
      << checker_name << " promise: " << result->ToString()
      << "\nschedule:\n"
      << schedule.ToString(workload.db);
}

/// Forward-progress ledger plus trace hygiene: everything committed and
/// the trace mentions committed transactions only.
void ExpectForwardProgress(const EngineResult& result, size_t num_txns,
                           size_t threads) {
  EXPECT_EQ(result.completed, num_txns)
      << "a transaction never committed at " << threads << " threads";
  std::set<TxnId> in_trace;
  for (const Operation& op : result.schedule.ops()) in_trace.insert(op.txn);
  EXPECT_LE(in_trace.size(), result.completed)
      << "trace holds operations of uncommitted transactions";
  // The trace is seq-linearized: strictly increasing per-txn step order is
  // implied by strictly increasing seqs, which Schedule preserves.
  EXPECT_EQ(result.threads, threads);
}

/// Runs the workload under a fresh policy per thread count and applies the
/// shared contracts; per-policy residual checks happen at the call sites.
template <typename MakePolicy,
          typename Policy =
              std::decay_t<decltype(*std::declval<MakePolicy>()())>>
void SweepThreads(
    const Workload& workload, MakePolicy make,
    const std::vector<std::string>& checkers,
    const std::function<void(const Policy&, const EngineResult&)>& residual) {
  for (size_t threads : kThreadCounts) {
    auto policy = make();
    auto result =
        RunEngine(*policy, workload.scripts, FastEngineConfig(threads));
    ASSERT_TRUE(result.ok())
        << policy->name() << " at " << threads
        << " threads: " << result.status();
    ExpectForwardProgress(*result, workload.scripts.size(), threads);
    for (const std::string& checker : checkers) {
      ExpectClass(workload, result->schedule, checker, policy->name(),
                  threads);
    }
    residual(*policy, *result);
  }
}

class EngineDifferentialFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineDifferentialFuzz, Strict2plKeepsPromisesAcrossThreads) {
  Workload workload = DrawWorkload(GetParam());
  SweepThreads<std::function<std::unique_ptr<StrictTwoPhaseLocking>()>,
               StrictTwoPhaseLocking>(
      workload, [] { return std::make_unique<StrictTwoPhaseLocking>(); },
      {"csr", "delayed-read"},
      [&](const StrictTwoPhaseLocking& policy, const EngineResult& result) {
        AnalysisContext ctx(*workload.ic, result.schedule);
        EXPECT_TRUE(ctx.strict());
        EXPECT_EQ(policy.held_locks(), 0u);
      });
}

TEST_P(EngineDifferentialFuzz, WoundWaitKeepsPromisesAcrossThreads) {
  Workload workload = DrawWorkload(GetParam());
  const size_t n = workload.scripts.size();
  SweepThreads<std::function<std::unique_ptr<WoundWaitPolicy>()>,
               WoundWaitPolicy>(
      workload, [n] { return std::make_unique<WoundWaitPolicy>(n); },
      {"csr"},
      [&](const WoundWaitPolicy& policy, const EngineResult& result) {
        AnalysisContext ctx(*workload.ic, result.schedule);
        EXPECT_TRUE(ctx.strict());
        EXPECT_EQ(policy.held_locks(), 0u);
      });
}

TEST_P(EngineDifferentialFuzz, WaitDieKeepsPromisesAcrossThreads) {
  Workload workload = DrawWorkload(GetParam());
  const size_t n = workload.scripts.size();
  SweepThreads<std::function<std::unique_ptr<WaitDiePolicy>()>,
               WaitDiePolicy>(
      workload, [n] { return std::make_unique<WaitDiePolicy>(n); }, {"csr"},
      [&](const WaitDiePolicy& policy, const EngineResult& result) {
        AnalysisContext ctx(*workload.ic, result.schedule);
        EXPECT_TRUE(ctx.strict());
        EXPECT_EQ(policy.held_locks(), 0u);
        // Wait-die never wounds: its only condemnations are self-aborts.
        EXPECT_EQ(result.wounds, 0u);
      });
}

TEST_P(EngineDifferentialFuzz, SgtKeepsPromisesAcrossThreads) {
  Workload workload = DrawWorkload(GetParam());
  const size_t n = workload.scripts.size();
  SweepThreads<std::function<std::unique_ptr<SgtPolicy>()>, SgtPolicy>(
      workload, [n] { return std::make_unique<SgtPolicy>(n); }, {"csr"},
      [&](const SgtPolicy& policy, const EngineResult& result) {
        // Residual hygiene: the live graph at quiescence is exactly the
        // committed trace's conflict graph (GC off), cycle-free.
        EXPECT_FALSE(policy.graph().has_cycle());
        EXPECT_EQ(policy.graph().Edges(),
                  ConflictGraph::Build(result.schedule).Edges());
      });
}

TEST_P(EngineDifferentialFuzz, SgtWithGcDrainsGraphAcrossThreads) {
  Workload workload = DrawWorkload(GetParam());
  const size_t n = workload.scripts.size();
  SweepThreads<std::function<std::unique_ptr<SgtPolicy>()>, SgtPolicy>(
      workload,
      [n] {
        SgtPolicy::Options options;
        options.gc_committed = true;
        return std::make_unique<SgtPolicy>(n, options);
      },
      {"csr"},
      [&](const SgtPolicy& policy, const EngineResult& result) {
        // With the incremental online trim, every committed node cascades
        // out at quiescence: the live graph drains to empty.
        EXPECT_TRUE(policy.graph().Edges().empty());
        EXPECT_EQ(policy.gc_trimmed(), result.completed);
      });
}

TEST_P(EngineDifferentialFuzz, SgtVictimKeepsPromisesAcrossThreads) {
  Workload workload = DrawWorkload(GetParam());
  const size_t n = workload.scripts.size();
  SweepThreads<std::function<std::unique_ptr<SgtVictimPolicy>()>,
               SgtVictimPolicy>(
      workload, [n] { return std::make_unique<SgtVictimPolicy>(n); },
      {"csr"},
      [&](const SgtVictimPolicy& policy, const EngineResult&) {
        EXPECT_FALSE(policy.graph().has_cycle());
      });
}

TEST_P(EngineDifferentialFuzz, ToKeepsPromisesAcrossThreads) {
  Workload workload = DrawWorkload(GetParam());
  const size_t n = workload.scripts.size();
  for (bool thomas : {false, true}) {
    SweepThreads<std::function<std::unique_ptr<TimestampOrderingPolicy>()>,
                 TimestampOrderingPolicy>(
        workload,
        [n, thomas] {
          TimestampOrderingPolicy::Options options;
          options.thomas_write_rule = thomas;
          return std::make_unique<TimestampOrderingPolicy>(n, options);
        },
        {"csr"},
        [&](const TimestampOrderingPolicy& policy, const EngineResult&) {
          // TO never blocks; stamp hygiene at quiescence.
          EXPECT_EQ(policy.active_stamp_entries(), 0u);
        });
  }
}

TEST_P(EngineDifferentialFuzz, ThomasSkipLedgerAcrossThreads) {
  // The Thomas write rule under real threads: skipped writes are elided
  // from the committed trace, never silently committed — pinned by the
  // ledger identity total_ops + committed_skipped_ops == sum of script
  // lengths (every script op either reached the trace or was a skip of a
  // committed incarnation; aborted incarnations' ops are neither).
  Workload workload = DrawWorkload(GetParam());
  const size_t n = workload.scripts.size();
  uint64_t script_ops = 0;
  for (const TxnScript& s : workload.scripts) script_ops += s.steps.size();
  SweepThreads<std::function<std::unique_ptr<TimestampOrderingPolicy>()>,
               TimestampOrderingPolicy>(
      workload,
      [n] {
        TimestampOrderingPolicy::Options options;
        options.thomas_write_rule = true;
        return std::make_unique<TimestampOrderingPolicy>(n, options);
      },
      {"csr"},
      [&](const TimestampOrderingPolicy& policy, const EngineResult& result) {
        EXPECT_EQ(result.total_ops + result.committed_skipped_ops,
                  script_ops)
            << "skip ledger does not balance at " << result.threads
            << " threads";
        EXPECT_EQ(result.schedule.size(), result.total_ops);
        // Skips of aborted incarnations count in skipped_ops but not in
        // the committed ledger.
        EXPECT_GE(result.skipped_ops, result.committed_skipped_ops);
        // A skipped write never reaches the trace: no transaction can
        // contribute more trace ops than its script has.
        std::vector<uint64_t> per_txn(n + 1, 0);
        for (const Operation& op : result.schedule.ops()) ++per_txn[op.txn];
        for (size_t i = 1; i <= n; ++i) {
          EXPECT_LE(per_txn[i], workload.scripts[i - 1].steps.size())
              << "T" << i << " has more trace ops than script steps";
        }
        EXPECT_EQ(policy.active_stamp_entries(), 0u);
      });
}

TEST_P(EngineDifferentialFuzz, Pw2plKeepsPromisesAcrossThreads) {
  Workload workload = DrawWorkload(GetParam());
  SweepThreads<std::function<std::unique_ptr<PredicatewiseTwoPhaseLocking>()>,
               PredicatewiseTwoPhaseLocking>(
      workload,
      [&workload] {
        return std::make_unique<PredicatewiseTwoPhaseLocking>(&*workload.ic);
      },
      {"pwsr"},
      [&](const PredicatewiseTwoPhaseLocking& policy, const EngineResult&) {
        EXPECT_EQ(policy.held_locks(), 0u);
      });
}

TEST_P(EngineDifferentialFuzz, DrSchedulerKeepsPromisesAcrossThreads) {
  Workload workload = DrawWorkload(GetParam());
  SweepThreads<std::function<std::unique_ptr<DelayedReadScheduler>()>,
               DelayedReadScheduler>(
      workload,
      [&workload] {
        return std::make_unique<DelayedReadScheduler>(&*workload.ic);
      },
      {"pwsr", "delayed-read"},
      [&](const DelayedReadScheduler& policy, const EngineResult&) {
        EXPECT_EQ(policy.held_locks(), 0u);
        EXPECT_EQ(policy.dirty_writers(), 0u);
      });
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDifferentialFuzz,
                         ::testing::ValuesIn(FuzzSeeds()));

// ---- engine unit coverage ---------------------------------------------------

TxnScript Script(std::initializer_list<AccessStep> steps) {
  TxnScript s;
  s.steps = steps;
  return s;
}

AccessStep R(ItemId item) { return AccessStep{OpAction::kRead, item}; }
AccessStep W(ItemId item) { return AccessStep{OpAction::kWrite, item}; }

TEST(EngineTest, SingleThreadCommitsEverythingInOrder) {
  StrictTwoPhaseLocking policy;
  auto result = RunEngine(
      policy, {Script({W(0), W(1)}), Script({W(0), W(2)}), Script({R(3)})},
      FastEngineConfig(1));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, 3u);
  EXPECT_EQ(result->total_ops, 5u);
  EXPECT_EQ(result->schedule.size(), 5u);
  // One worker runs the scripts one after another: no waits, no aborts.
  EXPECT_EQ(result->wait_events, 0u);
  EXPECT_EQ(result->aborts, 0u);
  EXPECT_EQ(result->wounds, 0u);
  EXPECT_TRUE(result->throughput_tps > 0.0);
  EXPECT_EQ(policy.held_locks(), 0u);
}

TEST(EngineTest, ResolvesARealDeadlockUnderTwoThreads) {
  // The classic crossed pair under strict 2PL: with two workers the writes
  // interleave into a waits-for cycle eventually; the timed-out waiter
  // detects it and condemns the largest id, and both still commit.
  for (int round = 0; round < 8; ++round) {
    StrictTwoPhaseLocking policy;
    auto result = RunEngine(
        policy, {Script({W(0), W(1)}), Script({W(1), W(0)})},
        FastEngineConfig(2));
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->completed, 2u);
    EXPECT_TRUE(IsConflictSerializable(result->schedule));
    EXPECT_EQ(policy.held_locks(), 0u);
  }
}

TEST(EngineTest, ExceedingWallDeadlineFails) {
  StrictTwoPhaseLocking policy;
  EngineConfig config = FastEngineConfig(1);
  config.op_latency_micros = 5000;
  config.max_wall_micros = 1000;  // one op overshoots the whole budget
  auto result = RunEngine(policy, {Script({W(0), W(1)})}, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(EngineTest, RejectsSimulatorOnlyKnobs) {
  StrictTwoPhaseLocking policy;
  std::vector<TxnScript> scripts = {Script({W(0)})};

  FaultPlanConfig fc;
  fc.client_abort_probability = 0.5;
  FaultPlan plan(fc);
  EngineConfig with_faults;
  with_faults.faults = &plan;
  EXPECT_EQ(RunEngine(policy, scripts, with_faults).status().code(),
            StatusCode::kUnimplemented);

  EngineConfig with_boost;
  with_boost.restart.max_restarts_before_boost = 3;
  EXPECT_EQ(RunEngine(policy, scripts, with_boost).status().code(),
            StatusCode::kUnimplemented);

  EngineConfig with_gate;
  with_gate.restart.max_live_txns = 2;
  EXPECT_EQ(RunEngine(policy, scripts, with_gate).status().code(),
            StatusCode::kUnimplemented);
}

TEST(EngineConfigTest, BuilderAcceptsConsistentKnobs) {
  auto config = EngineConfig::Builder()
                    .Threads(4)
                    .OpLatencyMicros(50)
                    .WaitTimeoutMicros(100)
                    .Build();
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_EQ(config->threads, 4u);
  EXPECT_EQ(config->op_latency_micros, 50u);
}

TEST(EngineConfigTest, BuilderRejectsInconsistentKnobs) {
  EXPECT_EQ(EngineConfig::Builder().Threads(0).Build().status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(EngineConfig::Builder().MaxTicks(0).Build().status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      EngineConfig::Builder().WaitTimeoutMicros(0).Build().status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      EngineConfig::Builder().MaxWallMicros(0).Build().status().code(),
      StatusCode::kInvalidArgument);

  RestartPolicy capped_below_base;
  capped_below_base.base = 16;
  capped_below_base.cap = 2;
  EXPECT_EQ(EngineConfig::Builder()
                .Restart(capped_below_base)
                .Build()
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  RestartPolicy zero_exponential;
  zero_exponential.backoff = RestartPolicy::Backoff::kExponential;
  zero_exponential.base = 0;
  zero_exponential.cap = 0;
  EXPECT_EQ(EngineConfig::Builder()
                .Restart(zero_exponential)
                .Build()
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  RestartPolicy unseeded_jitter;
  unseeded_jitter.jitter = 4;
  unseeded_jitter.jitter_seed = 0;
  EXPECT_EQ(EngineConfig::Builder()
                .Restart(unseeded_jitter)
                .Build()
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  RestartPolicy shed_without_gate;
  shed_without_gate.overflow = RestartPolicy::Overflow::kShed;
  shed_without_gate.max_live_txns = 0;
  EXPECT_EQ(EngineConfig::Builder()
                .Restart(shed_without_gate)
                .Build()
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineConfigTest, DefaultConfigValidatesAndMatchesLegacyKnobs) {
  EngineConfig config;
  EXPECT_TRUE(config.Validate().ok());
  EXPECT_EQ(config.max_ticks, 1'000'000u);
  EXPECT_EQ(config.stall_patience, 64u);
  EXPECT_EQ(config.restart.base, 2u);
  EXPECT_EQ(config.restart.step, 4u);
  EXPECT_EQ(config.restart.cap, 128u);
  EXPECT_EQ(config.threads, 1u);
}

TEST(EngineShardedStoreTest, ReadsBackWritesAndRejectsOutOfRange) {
  ShardedValueStore store(4);
  for (ItemId item = 0; item < 4; ++item) {
    auto zero = store.Read(item);
    ASSERT_TRUE(zero.ok());
    EXPECT_EQ(*zero, 0);
  }
  ASSERT_TRUE(store.Write(2, 41).ok());
  auto value = store.Read(2);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 41);

  EXPECT_EQ(store.Read(4).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(store.Write(4, 1).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace nse
