#include "common/thread_pool.h"

#include <atomic>
#include <gtest/gtest.h>

namespace nse {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, WaitIsReusableBetweenBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }  // ~ThreadPool must finish all queued work before joining
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, DefaultNumThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1u);
}

TEST(ThreadPoolTest, TasksRunConcurrentlyAcrossWorkers) {
  // Two tasks that must overlap in time: each waits for the other to start.
  ThreadPool pool(2);
  std::atomic<int> started{0};
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&started] {
      started.fetch_add(1);
      while (started.load() < 2) std::this_thread::yield();
    });
  }
  pool.Wait();
  EXPECT_EQ(started.load(), 2);
}

}  // namespace
}  // namespace nse
