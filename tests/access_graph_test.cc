#include "analysis/access_graph.h"

#include <gtest/gtest.h>

#include "paper/paper_examples.h"
#include "txn/interleaver.h"

namespace nse {
namespace {

TEST(AccessGraphTest, PaperExample2GraphIsCyclic) {
  // T1 reads c ∈ d2 and writes a,b ∈ d1; T2 reads a,b ∈ d1 and writes
  // c ∈ d2 — the cyclic access pattern the paper blames for Example 2.
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  auto run = Interleave(ex.db, programs, ex.ds0, ex.choices);
  ASSERT_TRUE(run.ok());
  DataAccessGraph g = DataAccessGraph::Build(run->schedule, *ex.ic);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_TRUE(g.HasEdge(1, 0));  // C2 -> C1 via T1
  EXPECT_TRUE(g.HasEdge(0, 1));  // C1 -> C2 via T2
  EXPECT_FALSE(g.IsAcyclic());
  EXPECT_EQ(g.TopologicalOrder(), std::nullopt);
}

TEST(AccessGraphTest, PaperExample5GraphIsAcyclic) {
  // Example 5's point: every single-theorem hypothesis holds (including an
  // acyclic DAG) — only conjunct disjointness fails.
  auto ex = paper::Example5::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2, &ex.tp3};
  auto run = Interleave(ex.db, programs, ex.ds0, ex.choices);
  ASSERT_TRUE(run.ok()) << run.status();
  DataAccessGraph g = DataAccessGraph::Build(run->schedule, *ex.ic);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_TRUE(g.IsAcyclic());
  auto order = g.TopologicalOrder();
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->size(), 3u);
}

TEST(AccessGraphTest, NoSelfEdges) {
  Database db;
  ASSERT_TRUE(db.AddIntItems({"a", "b"}, -8, 8).ok());
  auto ic = IntegrityConstraint::Parse(db, "a = b");
  ASSERT_TRUE(ic.ok());
  // One txn reads and writes within the single conjunct.
  ScheduleBuilder sb(db);
  sb.R(1, "a", Value(0)).W(1, "b", Value(0));
  DataAccessGraph g = DataAccessGraph::Build(sb.Build(), *ic);
  EXPECT_TRUE(g.Edges().empty());
  EXPECT_TRUE(g.IsAcyclic());
}

TEST(AccessGraphTest, EdgeRequiresReadAndWriteByOneTxn) {
  Database db;
  ASSERT_TRUE(db.AddIntItems({"a", "b"}, -8, 8).ok());
  auto ic = IntegrityConstraint::Parse(db, "a > 0 & b > 0");
  ASSERT_TRUE(ic.ok());
  // T1 reads a; T2 writes b: no single transaction spans the conjuncts.
  ScheduleBuilder sb(db);
  sb.R(1, "a", Value(1)).W(2, "b", Value(1));
  EXPECT_TRUE(
      DataAccessGraph::Build(sb.Build(), *ic).Edges().empty());
  // T3 reads a and writes b: edge C1 -> C2.
  ScheduleBuilder sb2(db);
  sb2.R(3, "a", Value(1)).W(3, "b", Value(1));
  DataAccessGraph g = DataAccessGraph::Build(sb2.Build(), *ic);
  ASSERT_EQ(g.Edges().size(), 1u);
  EXPECT_EQ(g.Edges()[0], (std::pair<size_t, size_t>{0, 1}));
  EXPECT_EQ(g.ToString(), "C1 -> C2");
}

TEST(AccessGraphTest, TopologicalOrderGivesInductionOrder) {
  Database db;
  ASSERT_TRUE(db.AddIntItems({"a", "b", "c"}, -8, 8).ok());
  auto ic = IntegrityConstraint::Parse(db, "a > 0 & b > 0 & c > 0");
  ASSERT_TRUE(ic.ok());
  // Chain: read a write b; read b write c.
  ScheduleBuilder sb(db);
  sb.R(1, "a", Value(1))
      .W(1, "b", Value(1))
      .R(2, "b", Value(1))
      .W(2, "c", Value(1));
  DataAccessGraph g = DataAccessGraph::Build(sb.Build(), *ic);
  auto order = g.TopologicalOrder();
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<size_t>{0, 1, 2}));
}

}  // namespace
}  // namespace nse
