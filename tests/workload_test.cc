#include "scheduler/workload.h"

#include <gtest/gtest.h>

#include "analysis/access_graph.h"
#include "analysis/fixed_structure.h"
#include "constraints/solver.h"
#include "txn/interleaver.h"

namespace nse {
namespace {

TEST(WorkloadTest, GeneratorInvariants) {
  PartitionedWorkloadConfig config;
  config.num_partitions = 4;
  config.items_per_partition = 3;
  config.num_txns = 6;
  config.partitions_per_txn = 2;
  config.seed = 11;
  auto workload = MakePartitionedWorkload(config);
  ASSERT_TRUE(workload.ok()) << workload.status();
  EXPECT_EQ(workload->db.num_items(), 12u);
  EXPECT_EQ(workload->ic->num_conjuncts(), 4u);
  EXPECT_TRUE(workload->ic->disjoint());
  EXPECT_EQ(workload->programs.size(), 6u);
  EXPECT_EQ(workload->scripts.size(), 6u);
  EXPECT_EQ(workload->ProgramPtrs().size(), 6u);
}

TEST(WorkloadTest, StraightLineProgramsAreFixedStructure) {
  PartitionedWorkloadConfig config;
  config.branch_probability = 0.0;
  config.seed = 3;
  auto workload = MakePartitionedWorkload(config);
  ASSERT_TRUE(workload.ok());
  for (const auto& program : workload->programs) {
    EXPECT_TRUE(IsStraightLine(program)) << program.name();
    StructureAnalysis analysis = AnalyzeStructure(workload->db, program);
    EXPECT_TRUE(analysis.valid);
    EXPECT_TRUE(analysis.fixed);
  }
}

TEST(WorkloadTest, BranchProbabilityBreaksFixedStructure) {
  PartitionedWorkloadConfig config;
  config.branch_probability = 1.0;
  config.cross_read_probability = 1.0;
  config.num_txns = 6;
  config.seed = 3;
  auto workload = MakePartitionedWorkload(config);
  ASSERT_TRUE(workload.ok());
  bool any_branching = false;
  for (const auto& program : workload->programs) {
    if (!AnalyzeStructure(workload->db, program).fixed) any_branching = true;
  }
  EXPECT_TRUE(any_branching);
}

TEST(WorkloadTest, GeneratedProgramsAreCorrectInIsolation) {
  // The standing assumption of every theorem: programs map consistent
  // states to consistent states. Verified over sampled states.
  PartitionedWorkloadConfig config;
  config.num_partitions = 3;
  config.items_per_partition = 2;
  config.num_txns = 5;
  config.partitions_per_txn = 2;
  config.cross_read_probability = 0.7;
  config.branch_probability = 0.3;  // correctness must hold on all paths
  config.seed = 17;
  auto workload = MakePartitionedWorkload(config);
  ASSERT_TRUE(workload.ok());
  ConsistencyChecker checker(workload->db, *workload->ic);
  Rng rng(17);
  for (const auto& program : workload->programs) {
    for (int trial = 0; trial < 10; ++trial) {
      auto initial = checker.SampleConsistentState(rng);
      ASSERT_TRUE(initial.ok());
      auto run = RunInIsolation(workload->db, program, 1, *initial);
      ASSERT_TRUE(run.ok()) << program.name() << ": " << run.status();
      auto consistent = checker.IsConsistent(run->final_state);
      ASSERT_TRUE(consistent.ok());
      EXPECT_TRUE(*consistent)
          << program.name() << " broke the IC from "
          << initial->ToString(workload->db);
    }
  }
}

TEST(WorkloadTest, AcyclicCrossReadsYieldAcyclicDag) {
  PartitionedWorkloadConfig config;
  config.num_partitions = 4;
  config.num_txns = 6;
  config.partitions_per_txn = 3;
  config.cross_read_probability = 1.0;
  config.acyclic_cross_reads = true;
  config.seed = 23;
  auto workload = MakePartitionedWorkload(config);
  ASSERT_TRUE(workload.ok());
  ConsistencyChecker checker(workload->db, *workload->ic);
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    auto initial = checker.SampleConsistentState(rng);
    ASSERT_TRUE(initial.ok());
    auto choices =
        RandomChoices(workload->db, workload->ProgramPtrs(), *initial, rng);
    ASSERT_TRUE(choices.ok());
    auto run =
        Interleave(workload->db, workload->ProgramPtrs(), *initial, *choices);
    ASSERT_TRUE(run.ok());
    EXPECT_TRUE(
        DataAccessGraph::Build(run->schedule, *workload->ic).IsAcyclic());
  }
}

TEST(WorkloadTest, ScriptsMatchProgramSignatures) {
  PartitionedWorkloadConfig config;
  config.seed = 29;
  auto workload = MakePartitionedWorkload(config);
  ASSERT_TRUE(workload.ok());
  for (size_t i = 0; i < workload->programs.size(); ++i) {
    StructureAnalysis analysis =
        AnalyzeStructure(workload->db, workload->programs[i]);
    ASSERT_EQ(workload->scripts[i].steps.size(), analysis.signature.size());
    for (size_t k = 0; k < analysis.signature.size(); ++k) {
      EXPECT_EQ(workload->scripts[i].steps[k].action,
                analysis.signature[k].action);
      EXPECT_EQ(workload->scripts[i].steps[k].item,
                analysis.signature[k].entity);
    }
  }
}

TEST(WorkloadTest, PresetsProduceRunnableWorkloads) {
  auto cad = MakeCadWorkload(4, 16, 6, 1);
  ASSERT_TRUE(cad.ok());
  EXPECT_EQ(cad->scripts.size(), 4u);
  EXPECT_GE(cad->scripts[0].steps.size(), 4u);

  auto mdbs = MakeMdbsWorkload(/*num_sites=*/4, /*global_txns=*/2,
                               /*local_txns=*/4, /*sites_per_global=*/3, 1);
  ASSERT_TRUE(mdbs.ok());
  EXPECT_EQ(mdbs->scripts.size(), 6u);
  EXPECT_EQ(mdbs->ic->num_conjuncts(), 4u);
}

TEST(WorkloadTest, InvalidConfigsRejected) {
  PartitionedWorkloadConfig config;
  config.num_partitions = 0;
  EXPECT_FALSE(MakePartitionedWorkload(config).ok());
  config.num_partitions = 2;
  config.partitions_per_txn = 5;  // > num_partitions
  EXPECT_FALSE(MakePartitionedWorkload(config).ok());
}

TEST(WorkloadTest, TxnScriptLastStepTouching) {
  TxnScript script;
  script.steps = {AccessStep{OpAction::kRead, 0},
                  AccessStep{OpAction::kWrite, 3},
                  AccessStep{OpAction::kWrite, 0}};
  EXPECT_EQ(script.LastStepTouching(DataSet({0})), 2u);
  EXPECT_EQ(script.LastStepTouching(DataSet({3})), 1u);
  EXPECT_EQ(script.LastStepTouching(DataSet({9})), SIZE_MAX);
}

}  // namespace
}  // namespace nse
