#include "constraints/solver.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "constraints/evaluator.h"

namespace nse {
namespace {

class SolverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.AddIntItems({"a", "b", "c"}, -8, 8).ok());
  }

  IntegrityConstraint Ic(std::string_view text,
                         ConjunctOverlap overlap = ConjunctOverlap::kReject) {
    auto ic = IntegrityConstraint::Parse(db_, text, overlap);
    EXPECT_TRUE(ic.ok()) << ic.status();
    return std::move(ic).value();
  }

  Database db_;
};

TEST_F(SolverTest, SatisfiesTotalStates) {
  IntegrityConstraint ic = Ic("(a > 0 -> b > 0) & c > 0");
  ConsistencyChecker checker(db_, ic);
  DbState good = DbState::OfNamed(
      db_, {{"a", Value(1)}, {"b", Value(2)}, {"c", Value(1)}});
  DbState bad = DbState::OfNamed(
      db_, {{"a", Value(1)}, {"b", Value(-1)}, {"c", Value(1)}});
  EXPECT_TRUE(*checker.Satisfies(good));
  EXPECT_FALSE(*checker.Satisfies(bad));
}

TEST_F(SolverTest, SatisfiesRequiresTotality) {
  IntegrityConstraint ic = Ic("a = b & c > 0");
  ConsistencyChecker checker(db_, ic);
  DbState partial = DbState::OfNamed(db_, {{"a", Value(1)}});
  auto result = checker.Satisfies(partial);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SolverTest, PaperSection21Example) {
  // §2.1: IC = (a = b); DS1 = {(a,5),(b,5)} consistent,
  // DS2 = {(a,5),(b,6)} not; but both restrictions of DS2 are consistent.
  IntegrityConstraint ic = Ic("a = b");
  ConsistencyChecker checker(db_, ic);
  DbState ds1 = DbState::OfNamed(db_, {{"a", Value(5)}, {"b", Value(5)}});
  DbState ds2 = DbState::OfNamed(db_, {{"a", Value(5)}, {"b", Value(6)}});
  EXPECT_TRUE(*checker.IsConsistent(ds1));
  EXPECT_FALSE(*checker.IsConsistent(ds2));
  EXPECT_TRUE(*checker.IsConsistent(ds2.Restrict(db_.SetOf({"a"}))));
  EXPECT_TRUE(*checker.IsConsistent(ds2.Restrict(db_.SetOf({"b"}))));
}

TEST_F(SolverTest, RestrictionConsistencyIsExtensibility) {
  IntegrityConstraint ic = Ic("a = b & c > 0");
  ConsistencyChecker checker(db_, ic);
  // {a: 5} extends (b := 5, c := 1).
  EXPECT_TRUE(*checker.IsConsistent(
      DbState::OfNamed(db_, {{"a", Value(5)}})));
  // {c: -1} cannot extend: conjunct c > 0 already false.
  EXPECT_FALSE(*checker.IsConsistent(
      DbState::OfNamed(db_, {{"c", Value(-1)}})));
  // The empty state is consistent iff the IC is satisfiable.
  EXPECT_TRUE(*checker.IsConsistent(DbState()));
}

TEST_F(SolverTest, ValueOutsideDomainIsInconsistent) {
  IntegrityConstraint ic = Ic("a = b");
  ConsistencyChecker checker(db_, ic);
  DbState s = DbState::OfNamed(db_, {{"a", Value(100)}});  // domain is ±8
  EXPECT_FALSE(*checker.IsConsistent(s));
}

TEST_F(SolverTest, UnsatisfiableOverDomains) {
  // a > 8 is unsatisfiable over [-8, 8].
  IntegrityConstraint ic = Ic("a > 8");
  ConsistencyChecker checker(db_, ic);
  EXPECT_FALSE(*checker.IsSatisfiable());
  EXPECT_FALSE(*checker.IsConsistent(DbState()));
  Rng rng(1);
  EXPECT_FALSE(checker.SampleConsistentState(rng).ok());
}

TEST_F(SolverTest, Lemma1DisjointDecompositionAgreesWithGlobal) {
  // Lemma 1: with disjoint conjuncts, per-conjunct extensibility equals
  // global extensibility. Cross-check on a sweep of partial states.
  IntegrityConstraint ic = Ic("(a > 0 -> b > 0) & c > 0");
  ConsistencyChecker checker(db_, ic);
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    DbState s;
    for (const char* name : {"a", "b", "c"}) {
      if (rng.NextBool(0.6)) {
        s.Set(db_.MustFind(name), Value(rng.NextInt(-8, 8)));
      }
    }
    auto fast = checker.IsConsistent(s);
    auto slow = checker.IsConsistentGlobal(s);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    EXPECT_EQ(*fast, *slow) << s.ToString(db_);
  }
}

TEST_F(SolverTest, Lemma1FailsWithoutDisjointness) {
  // The paper's non-disjoint example after Lemma 1:
  // IC = (a=5 <-> b=5) ∧ (c=5 <-> b=6). Restrictions {a:5} and {c:5} are
  // individually consistent, but their union is not.
  IntegrityConstraint ic =
      Ic("(a = 5 <-> b = 5) & (c = 5 <-> b = 6)", ConjunctOverlap::kAllow);
  ConsistencyChecker checker(db_, ic);
  DbState da = DbState::OfNamed(db_, {{"a", Value(5)}});
  DbState dc = DbState::OfNamed(db_, {{"c", Value(5)}});
  EXPECT_TRUE(*checker.IsConsistent(da));
  EXPECT_TRUE(*checker.IsConsistent(dc));
  auto both = DbState::Union(da, dc);
  ASSERT_TRUE(both.ok());
  EXPECT_FALSE(*checker.IsConsistent(*both));
}

TEST_F(SolverTest, FindConsistentExtensionProducesWitness) {
  IntegrityConstraint ic = Ic("a = b & c > 0");
  ConsistencyChecker checker(db_, ic);
  DbState partial = DbState::OfNamed(db_, {{"b", Value(3)}});
  auto witness = checker.FindConsistentExtension(partial);
  ASSERT_TRUE(witness.ok());
  ASSERT_TRUE(witness->has_value());
  EXPECT_TRUE((*witness)->IsTotalOver(db_));
  EXPECT_TRUE(partial.IsSubstateOf(**witness));
  EXPECT_TRUE(*checker.Satisfies(**witness));

  DbState impossible = DbState::OfNamed(db_, {{"c", Value(-2)}});
  auto none = checker.FindConsistentExtension(impossible);
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());
}

TEST_F(SolverTest, SampleConsistentStateIsConsistentAndVaried) {
  IntegrityConstraint ic = Ic("a = b & c > 0");
  ConsistencyChecker checker(db_, ic);
  Rng rng(42);
  DbState first;
  bool varied = false;
  for (int i = 0; i < 20; ++i) {
    auto s = checker.SampleConsistentState(rng);
    ASSERT_TRUE(s.ok()) << s.status();
    EXPECT_TRUE(s->IsTotalOver(db_));
    EXPECT_TRUE(*checker.Satisfies(*s));
    if (i == 0) {
      first = *s;
    } else if (*s != first) {
      varied = true;
    }
  }
  EXPECT_TRUE(varied);
}

TEST_F(SolverTest, EnumerateConsistentStatesExactCount) {
  // Over a single item with a = b and domain [-8, 8] (17 values) plus the
  // free item c > 0 (8 values): 17 * 8 = 136 consistent total states.
  IntegrityConstraint ic = Ic("a = b & c > 0");
  ConsistencyChecker checker(db_, ic);
  auto states = checker.EnumerateConsistentStates(10'000);
  ASSERT_TRUE(states.ok());
  EXPECT_EQ(states->size(), 17u * 8u);
  for (const DbState& s : *states) {
    EXPECT_TRUE(*checker.Satisfies(s));
  }
}

TEST_F(SolverTest, EnumerateRespectsLimit) {
  IntegrityConstraint ic = Ic("a = b & c > 0");
  ConsistencyChecker checker(db_, ic);
  auto states = checker.EnumerateConsistentStates(5);
  ASSERT_TRUE(states.ok());
  EXPECT_EQ(states->size(), 5u);
}

TEST_F(SolverTest, EnumerateCoversUnconstrainedItems) {
  Database db;
  ASSERT_TRUE(db.AddIntItems({"x", "free"}, 0, 1).ok());
  auto ic = IntegrityConstraint::Parse(db, "x = 1");
  ASSERT_TRUE(ic.ok());
  ConsistencyChecker checker(db, *ic);
  auto states = checker.EnumerateConsistentStates(100);
  ASSERT_TRUE(states.ok());
  // x pinned to 1, free ranges over {0, 1}: 2 states, each total.
  EXPECT_EQ(states->size(), 2u);
  for (const DbState& s : *states) EXPECT_TRUE(s.IsTotalOver(db));
}

TEST_F(SolverTest, StatsAccumulateAndReset) {
  IntegrityConstraint ic = Ic("a = b & c > 0");
  ConsistencyChecker checker(db_, ic);
  ASSERT_TRUE(checker.IsConsistent(DbState()).ok());
  EXPECT_GT(checker.stats().nodes, 0u);
  checker.ResetStats();
  EXPECT_EQ(checker.stats().nodes, 0u);
}

TEST_F(SolverTest, CachedVerdictsMatchUncached) {
  // Every consistency verdict must be identical with and without a cache,
  // on first (miss) and second (hit) query alike.
  IntegrityConstraint ic = Ic("(a > 0 -> b > 0) & c > 0");
  ConsistencyChecker plain(db_, ic);
  SolverCache cache;
  ConsistencyChecker cached(db_, ic, &cache);
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    DbState partial;
    for (const char* name : {"a", "b", "c"}) {
      if (rng.NextBool(0.6)) {
        partial.Set(db_.MustFind(name), Value(rng.NextInt(-8, 8)));
      }
    }
    auto want = plain.IsConsistent(partial);
    auto got = cached.IsConsistent(partial);
    auto again = cached.IsConsistent(partial);
    ASSERT_TRUE(want.ok() && got.ok() && again.ok());
    EXPECT_EQ(*got, *want) << partial.ToString(db_);
    EXPECT_EQ(*again, *want);
  }
  SolverCache::Stats stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  // Small per-conjunct key space + repeated queries => mostly hits.
  EXPECT_GT(stats.hit_rate(), 0.5);
}

TEST_F(SolverTest, CachedEnumerationMatchesUncached) {
  IntegrityConstraint ic = Ic("a = b & c > 0");
  ConsistencyChecker plain(db_, ic);
  SolverCache cache;
  ConsistencyChecker cached(db_, ic, &cache);
  DbState pinned = DbState::OfNamed(db_, {{"a", Value(3)}});
  auto want = plain.EnumerateConsistentExtensions(pinned, 50);
  auto got = cached.EnumerateConsistentExtensions(pinned, 50);
  auto again = cached.EnumerateConsistentExtensions(pinned, 50);
  ASSERT_TRUE(want.ok() && got.ok() && again.ok());
  EXPECT_EQ(*got, *want);
  EXPECT_EQ(*again, *want);
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST_F(SolverTest, CachedEnumerationKeyedByLimit) {
  // A truncated enumeration must not be served for a larger limit.
  IntegrityConstraint ic = Ic("a = b & c > 0");
  SolverCache cache;
  ConsistencyChecker cached(db_, ic, &cache);
  auto small = cached.EnumerateConsistentExtensions(DbState(), 3);
  auto large = cached.EnumerateConsistentExtensions(DbState(), 40);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_EQ(small->size(), 3u);
  EXPECT_EQ(large->size(), 40u);
}

TEST_F(SolverTest, CachedSamplingProducesConsistentStates) {
  IntegrityConstraint ic = Ic("(a > 0 -> b > 0) & c > 0");
  SolverCache cache;
  ConsistencyChecker cached(db_, ic, &cache);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    auto state = cached.SampleConsistentState(rng);
    ASSERT_TRUE(state.ok()) << state.status();
    EXPECT_TRUE(state->IsTotalOver(db_));
    EXPECT_TRUE(*cached.Satisfies(*state));
  }
  // One enumeration per conjunct; the 49 later samples all hit.
  EXPECT_GT(cache.stats().hit_rate(), 0.9);
}

TEST_F(SolverTest, CachedSamplingUnsatisfiableConjunctFails) {
  IntegrityConstraint ic = Ic("a > 100 & c > 0");
  SolverCache cache;
  ConsistencyChecker cached(db_, ic, &cache);
  Rng rng(7);
  auto state = cached.SampleConsistentState(rng);
  EXPECT_FALSE(state.ok());
  EXPECT_EQ(state.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SolverTest, CacheClearResetsEntriesAndStats) {
  IntegrityConstraint ic = Ic("a = b & c > 0");
  SolverCache cache;
  ConsistencyChecker cached(db_, ic, &cache);
  ASSERT_TRUE(cached.IsConsistent(DbState()).ok());
  ASSERT_TRUE(cached.IsConsistent(DbState()).ok());
  EXPECT_GT(cache.stats().hits, 0u);
  cache.Clear();
  SolverCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST_F(SolverTest, CacheCapsEntriesAndCountsEvictions) {
  // Entry-bounded cache (ROADMAP: eviction before a long-lived service
  // holds one): the resident entry count never exceeds the cap, evictions
  // are surfaced in the stats, and evicted keys simply recompute — answers
  // never change, only their cost.
  IntegrityConstraint ic = Ic("a = b & c > 0");
  SolverCache cache(/*num_shards=*/1, /*max_entries=*/4);
  EXPECT_EQ(cache.max_entries(), 4u);
  ConsistencyChecker checker(db_, ic, &cache);
  for (int64_t v = -8; v <= 8; ++v) {
    // Each pinned value of `a` is a distinct per-conjunct cache key.
    DbState state = DbState::OfNamed(db_, {{"a", Value(v)}});
    auto verdict = checker.IsConsistent(state);
    ASSERT_TRUE(verdict.ok());
    EXPECT_TRUE(*verdict);
    EXPECT_LE(cache.stats().entries, 4u) << "cap breached at a=" << v;
  }
  SolverCache::Stats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.entries, 0u);

  // A key that was evicted early still answers correctly on re-query.
  DbState state = DbState::OfNamed(db_, {{"a", Value(-8)}});
  EXPECT_TRUE(*checker.IsConsistent(state));
  EXPECT_LE(cache.stats().entries, 4u);
}

TEST_F(SolverTest, CacheCapAppliesToSolutionSets) {
  // Enumeration subtrees (the expensive entries) respect the same cap.
  IntegrityConstraint ic = Ic("a = b & c > 0");
  SolverCache cache(/*num_shards=*/1, /*max_entries=*/2);
  ConsistencyChecker checker(db_, ic, &cache);
  for (int64_t v = 1; v <= 6; ++v) {
    DbState pinned = DbState::OfNamed(db_, {{"a", Value(v)}});
    auto states = checker.EnumerateConsistentExtensions(pinned, 4);
    ASSERT_TRUE(states.ok()) << states.status();
    EXPECT_FALSE(states->empty());
    EXPECT_LE(cache.stats().entries, 2u);
  }
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST_F(SolverTest, DefaultCacheCapIsGenerous) {
  SolverCache cache;
  EXPECT_EQ(cache.max_entries(), SolverCache::kDefaultMaxEntries);
}

TEST_F(SolverTest, ConcurrentColdWorkersComputeEachConjunctOnce) {
  // The per-key once-cell: N workers warming the sampling domains of a cold
  // cache concurrently must run exactly one enumeration per conjunct — the
  // others coalesce onto the in-flight computation (ROADMAP: compute-once
  // guard for block enumerations).
  IntegrityConstraint ic = Ic("a = b & c > 0");
  constexpr size_t kThreads = 8;
  SolverCache cache;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      ConsistencyChecker checker(db_, ic, &cache);
      checker.WarmSamplingDomains();
    });
  }
  for (std::thread& worker : workers) worker.join();
  SolverCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.computes, ic.num_conjuncts());
  EXPECT_EQ(stats.misses, ic.num_conjuncts());
  // Every other request was served from the cache or the once-cell.
  EXPECT_EQ(stats.hits + stats.coalesced,
            kThreads * ic.num_conjuncts() - ic.num_conjuncts());
}

TEST_F(SolverTest, ConcurrentEnumerationsShareOneSubtreePerBlock) {
  // Same guard on the extension-enumeration path: identical pinned queries
  // from concurrent cold workers compute each block subtree once and all
  // receive the same answer.
  IntegrityConstraint ic = Ic("a = b & c > 0");
  ConsistencyChecker plain(db_, ic);
  DbState pinned = DbState::OfNamed(db_, {{"a", Value(3)}});
  auto want = plain.EnumerateConsistentExtensions(pinned, 50);
  ASSERT_TRUE(want.ok());

  constexpr size_t kThreads = 8;
  SolverCache cache;
  std::vector<std::vector<DbState>> results(kThreads);
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      ConsistencyChecker checker(db_, ic, &cache);
      auto got = checker.EnumerateConsistentExtensions(pinned, 50);
      ASSERT_TRUE(got.ok()) << got.status();
      results[t] = std::move(got).value();
    });
  }
  for (std::thread& worker : workers) worker.join();
  // One 'B' subtree per block (two disjoint conjuncts, no unconstrained
  // items), regardless of the thread count.
  EXPECT_EQ(cache.stats().computes, 2u);
  for (const std::vector<DbState>& result : results) {
    EXPECT_EQ(result, *want);
  }
}

class SolverPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverPropertyTest, ExtensionExistsIffEnumerationNonEmpty) {
  // Cross-validate IsConsistent against brute-force enumeration on a tiny
  // domain, for random partial states and a random-ish constraint family.
  Database db;
  ASSERT_TRUE(db.AddIntItems({"x", "y", "z"}, 0, 3).ok());
  const char* constraints[] = {
      "x = y & z > 0",
      "(x > 1 -> y > 1) & z < 3",
      "x + y > 2 & z != 1",
      "max(x, y) = 3 & z >= 0",
  };
  Rng rng(GetParam());
  for (const char* text : constraints) {
    auto ic = IntegrityConstraint::Parse(db, text);
    ASSERT_TRUE(ic.ok()) << ic.status();
    ConsistencyChecker checker(db, *ic);
    auto all = checker.EnumerateConsistentStates(100'000);
    ASSERT_TRUE(all.ok());
    for (int trial = 0; trial < 60; ++trial) {
      DbState partial;
      for (const char* name : {"x", "y", "z"}) {
        if (rng.NextBool(0.5)) {
          partial.Set(db.MustFind(name), Value(rng.NextInt(0, 3)));
        }
      }
      bool brute = false;
      for (const DbState& s : *all) {
        if (partial.IsSubstateOf(s)) {
          brute = true;
          break;
        }
      }
      auto fast = checker.IsConsistent(partial);
      ASSERT_TRUE(fast.ok());
      EXPECT_EQ(*fast, brute)
          << text << " at " << partial.ToString(db);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace nse
