#include "state/version_store.h"

#include <gtest/gtest.h>

namespace nse {
namespace {

TEST(VersionStoreTest, InitialVersionServesAnyTimestamp) {
  VersionStore store(2);
  for (uint64_t ts : {0u, 1u, 1000u}) {
    auto view = store.Peek(0, ts);
    ASSERT_TRUE(view.ok()) << view.status();
    EXPECT_EQ(view->writer_ts, 0u);
    EXPECT_EQ(view->writer, 0u);
    EXPECT_EQ(view->value, 0);
    EXPECT_TRUE(view->committed);
  }
  // Items past the constructed range materialize on demand.
  auto beyond = store.Peek(7, 3);
  ASSERT_TRUE(beyond.ok());
  EXPECT_EQ(beyond->writer_ts, 0u);
}

TEST(VersionStoreTest, ReadsServeNewestVersionAtOrBelow) {
  VersionStore store(1);
  ASSERT_TRUE(store.InstallVersion(0, 5, 1, 50, /*committed=*/true).ok());
  ASSERT_TRUE(store.InstallVersion(0, 10, 2, 100, /*committed=*/true).ok());

  auto below = store.ReadAtTimestamp(0, 3);
  ASSERT_TRUE(below.ok());
  EXPECT_EQ(below->writer_ts, 0u);  // initial

  auto middle = store.ReadAtTimestamp(0, 7);
  ASSERT_TRUE(middle.ok());
  EXPECT_EQ(middle->writer_ts, 5u);
  EXPECT_EQ(middle->writer, 1u);
  EXPECT_EQ(middle->value, 50);

  auto top = store.ReadAtTimestamp(0, 12);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->writer_ts, 10u);
  EXPECT_EQ(top->value, 100);
}

TEST(VersionStoreTest, OutOfOrderInstallKeepsChainStampSorted) {
  VersionStore store(1);
  // A Thomas-rule stale write: the newer stamp lands first, the older one
  // second — the chain must still serve stamp order.
  ASSERT_TRUE(store.InstallVersion(0, 10, 2, 100, /*committed=*/true).ok());
  ASSERT_TRUE(store.InstallVersion(0, 5, 1, 50, /*committed=*/true).ok());
  auto middle = store.ReadAtTimestamp(0, 7);
  ASSERT_TRUE(middle.ok());
  EXPECT_EQ(middle->writer_ts, 5u);
  auto top = store.ReadAtTimestamp(0, 11);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->writer_ts, 10u);
}

TEST(VersionStoreTest, SameWriterReplacesOwnStampOtherWriterRejected) {
  VersionStore store(1);
  ASSERT_TRUE(store.InstallVersion(0, 5, 1, 50, /*committed=*/false).ok());
  // A transaction overwriting its own write replaces the value in place.
  ASSERT_TRUE(store.InstallVersion(0, 5, 1, 51, /*committed=*/false).ok());
  EXPECT_EQ(store.total_versions(), 2u);  // initial + the one stamp
  auto view = store.Peek(0, 5);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->value, 51);
  // A different writer colliding on the stamp is a policy bug.
  EXPECT_EQ(store.InstallVersion(0, 5, 2, 99, false).code(),
            StatusCode::kInvalidArgument);
  // Stamp 0 is reserved for the initial version.
  EXPECT_EQ(store.InstallVersion(0, 0, 1, 1, true).code(),
            StatusCode::kInvalidArgument);
}

TEST(VersionStoreTest, ReadBarrierTracksReadStamps) {
  VersionStore store(1);
  ASSERT_TRUE(store.InstallVersion(0, 5, 1, 50, /*committed=*/true).ok());
  ASSERT_TRUE(store.ReadAtTimestamp(0, 7).ok());  // rts(v5) = 7

  // A write at 6 would invalidate the read at 7 served version 5.
  auto blocked = store.HasReadBarrier(0, 6);
  ASSERT_TRUE(blocked.ok());
  EXPECT_TRUE(*blocked);
  // A write at 8 sits above that read: nothing is invalidated.
  auto clear = store.HasReadBarrier(0, 8);
  ASSERT_TRUE(clear.ok());
  EXPECT_FALSE(*clear);
  // Peek records no read stamp: peeking at 9 must not block a write at 8.
  ASSERT_TRUE(store.Peek(0, 9).ok());
  auto still_clear = store.HasReadBarrier(0, 8);
  ASSERT_TRUE(still_clear.ok());
  EXPECT_FALSE(*still_clear);
}

TEST(VersionStoreTest, ReadCommittedAtSkipsUncommittedVersions) {
  VersionStore store(1);
  ASSERT_TRUE(store.InstallVersion(0, 5, 1, 50, /*committed=*/true).ok());
  ASSERT_TRUE(store.InstallVersion(0, 10, 2, 100, /*committed=*/false).ok());

  auto committed = store.ReadCommittedAt(0, 12);
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(committed->writer_ts, 5u);  // v10 is still in flight

  auto peeked = store.Peek(0, 12);
  ASSERT_TRUE(peeked.ok());
  EXPECT_EQ(peeked->writer_ts, 10u);
  EXPECT_FALSE(peeked->committed);

  ASSERT_TRUE(store.CommitVersion(0, 10).ok());
  auto now_visible = store.ReadCommittedAt(0, 12);
  ASSERT_TRUE(now_visible.ok());
  EXPECT_EQ(now_visible->writer_ts, 10u);
  EXPECT_EQ(store.uncommitted_versions(), 0u);
}

TEST(VersionStoreTest, CommitOfMissingVersionIsNotFound) {
  VersionStore store(1);
  EXPECT_EQ(store.CommitVersion(0, 5).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.CommitVersion(3, 5).code(), StatusCode::kNotFound);
}

TEST(VersionStoreTest, RemoveVersionIsIdempotent) {
  VersionStore store(1);
  ASSERT_TRUE(store.InstallVersion(0, 5, 1, 50, /*committed=*/false).ok());
  ASSERT_TRUE(store.RemoveVersion(0, 5).ok());
  EXPECT_EQ(store.total_versions(), 1u);  // initial only
  // Chaos re-aborts retracted transactions: the second retraction is a
  // no-op, not an error.
  ASSERT_TRUE(store.RemoveVersion(0, 5).ok());
  ASSERT_TRUE(store.RemoveVersion(9, 5).ok());  // untouched item
  // The initial version is not removable.
  EXPECT_EQ(store.RemoveVersion(0, 0).code(), StatusCode::kInvalidArgument);
}

TEST(VersionStoreTest, TruncateBelowKeepsFloorAndFoldsReadStamps) {
  VersionStore store(1);
  ASSERT_TRUE(store.InstallVersion(0, 5, 1, 50, /*committed=*/true).ok());
  // A reader at 12 is served v5 and stamps rts(v5) = 12 ...
  auto read = store.ReadAtTimestamp(0, 12);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->writer_ts, 5u);
  // ... then a write with the older stamp 10 lands (Thomas-style).
  ASSERT_TRUE(store.InstallVersion(0, 10, 2, 100, /*committed=*/true).ok());

  // Watermark 12: the floor is v10, so the initial version and v5 fold —
  // and v5's read stamp (12) must survive on the floor.
  EXPECT_EQ(store.TruncateBelow(12), 2u);
  EXPECT_EQ(store.total_versions(), 1u);
  EXPECT_EQ(store.max_chain_length(), 1u);
  EXPECT_EQ(store.truncated_versions(), 2u);
  // A write at 11 still sees the barrier the read at 12 erected: the fold
  // kept rts 12 visible on the surviving version (stamp 10 < 11 < rts 12).
  auto barrier = store.HasReadBarrier(0, 11);
  ASSERT_TRUE(barrier.ok());
  EXPECT_TRUE(*barrier);
}

TEST(VersionStoreTest, TruncateBelowNeverDropsUncommittedVersions) {
  VersionStore store(1);
  ASSERT_TRUE(store.InstallVersion(0, 5, 1, 50, /*committed=*/false).ok());
  ASSERT_TRUE(store.InstallVersion(0, 10, 2, 100, /*committed=*/true).ok());
  // The floor is v10; v5 is uncommitted and must survive, only the initial
  // version folds.
  EXPECT_EQ(store.TruncateBelow(12), 1u);
  EXPECT_EQ(store.uncommitted_versions(), 1u);
  auto in_flight = store.Peek(0, 5);
  ASSERT_TRUE(in_flight.ok());
  EXPECT_EQ(in_flight->writer_ts, 5u);
  EXPECT_FALSE(in_flight->committed);
}

TEST(VersionStoreTest, TruncateBelowWatermarkUnderEverythingIsANoOp) {
  VersionStore store(1);
  ASSERT_TRUE(store.InstallVersion(0, 5, 1, 50, /*committed=*/true).ok());
  // Watermark 3: the floor is the initial version (index 0) — nothing to
  // reclaim.
  EXPECT_EQ(store.TruncateBelow(3), 0u);
  EXPECT_EQ(store.total_versions(), 2u);
}

}  // namespace
}  // namespace nse
