#include "constraints/parser.h"

#include <gtest/gtest.h>

#include "constraints/evaluator.h"
#include "state/db_state.h"

namespace nse {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.AddIntItems({"a", "b", "c"}, -100, 100).ok());
  }

  Formula MustParse(std::string_view text) {
    auto f = ParseFormula(db_, text);
    EXPECT_TRUE(f.ok()) << f.status();
    return *f;
  }

  bool EvalAt(std::string_view text, int64_t a, int64_t b, int64_t c) {
    DbState s = DbState::OfNamed(
        db_, {{"a", Value(a)}, {"b", Value(b)}, {"c", Value(c)}});
    auto result = EvalFormula(MustParse(text), s);
    EXPECT_TRUE(result.ok()) << result.status();
    return *result;
  }

  Database db_;
};

TEST_F(ParserTest, Comparisons) {
  EXPECT_TRUE(EvalAt("a = 1", 1, 0, 0));
  EXPECT_TRUE(EvalAt("a == 1", 1, 0, 0));
  EXPECT_TRUE(EvalAt("a != 2", 1, 0, 0));
  EXPECT_TRUE(EvalAt("a < b", 1, 2, 0));
  EXPECT_TRUE(EvalAt("a <= 1", 1, 0, 0));
  EXPECT_TRUE(EvalAt("a > -1", 0, 0, 0));
  EXPECT_TRUE(EvalAt("a >= 0", 0, 0, 0));
  EXPECT_FALSE(EvalAt("a > 0", 0, 0, 0));
}

TEST_F(ParserTest, ArithmeticPrecedence) {
  EXPECT_TRUE(EvalAt("a + b * c = 7", 1, 2, 3));     // 1 + 6
  EXPECT_TRUE(EvalAt("(a + b) * c = 9", 1, 2, 3));   // 3 * 3
  EXPECT_TRUE(EvalAt("a - b - c = -4", 1, 2, 3));    // left assoc
  EXPECT_TRUE(EvalAt("-a + b = 1", 1, 2, 0));
  EXPECT_TRUE(EvalAt("- (a + b) = -3", 1, 2, 0));
}

TEST_F(ParserTest, Functions) {
  EXPECT_TRUE(EvalAt("abs(a) = 5", -5, 0, 0));
  EXPECT_TRUE(EvalAt("min(a, b) = 1", 1, 2, 0));
  EXPECT_TRUE(EvalAt("max(a, b) = 2", 1, 2, 0));
  EXPECT_TRUE(EvalAt("min(max(a, 0), 10) = 0", -5, 0, 0));
}

TEST_F(ParserTest, ConnectivePrecedence) {
  // & binds tighter than |, which binds tighter than ->, then <->.
  EXPECT_TRUE(EvalAt("a = 1 | b = 1 & c = 1", 1, 0, 0));
  EXPECT_FALSE(EvalAt("(a = 1 | b = 1) & c = 1", 1, 0, 0));
  EXPECT_TRUE(EvalAt("a = 0 -> b = 1", 1, 0, 0));   // antecedent false
  EXPECT_TRUE(EvalAt("a = 1 -> b = 0", 1, 0, 0));
  EXPECT_TRUE(EvalAt("a = 1 <-> b = 0", 1, 0, 0));
  EXPECT_FALSE(EvalAt("a = 1 <-> b = 1", 1, 0, 0));
}

TEST_F(ParserTest, RightAssociativeImplication) {
  // a -> b -> c parses as a -> (b -> c).
  EXPECT_TRUE(EvalAt("a = 1 -> b = 1 -> c = 1", 1, 1, 1));
  EXPECT_TRUE(EvalAt("a = 1 -> b = 1 -> c = 1", 1, 0, 0));
  EXPECT_FALSE(EvalAt("a = 1 -> b = 1 -> c = 1", 1, 1, 0));
}

TEST_F(ParserTest, NotAndKeywords) {
  EXPECT_TRUE(EvalAt("!(a = 1)", 0, 0, 0));
  EXPECT_TRUE(EvalAt("not a = 1", 0, 0, 0));
  EXPECT_TRUE(EvalAt("a = 1 and b = 2", 1, 2, 0));
  EXPECT_TRUE(EvalAt("a = 9 or b = 2", 1, 2, 0));
  EXPECT_TRUE(EvalAt("a = 1 && b = 2", 1, 2, 0));
  EXPECT_TRUE(EvalAt("a = 9 || b = 2", 1, 2, 0));
  EXPECT_TRUE(EvalAt("true", 0, 0, 0));
  EXPECT_FALSE(EvalAt("false", 0, 0, 0));
}

TEST_F(ParserTest, ParenthesizedFormulaVsTerm) {
  // '(' may open either a formula or a term; both must parse.
  EXPECT_TRUE(EvalAt("(a > 0) -> (b > 0)", 1, 1, 0));
  EXPECT_TRUE(EvalAt("(a + 1) > 0", 0, 0, 0));
  EXPECT_TRUE(EvalAt("((a = 1))", 1, 0, 0));
}

TEST_F(ParserTest, PaperExample2Constraint) {
  Formula f = MustParse("(a > 0 -> b > 0) & c > 0");
  DbState bad = DbState::OfNamed(
      db_, {{"a", Value(1)}, {"b", Value(-1)}, {"c", Value(-1)}});
  auto result = EvalFormula(f, bad);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(*result);
}

TEST_F(ParserTest, StringLiterals) {
  Database db;
  ASSERT_TRUE(
      db.AddItem("name", Domain::StringSet({"Jim", "Ann"})).ok());
  auto f = ParseFormula(db, "name = \"Jim\"");
  ASSERT_TRUE(f.ok()) << f.status();
  DbState s;
  s.Set(db.MustFind("name"), Value("Jim"));
  auto result = EvalFormula(*f, s);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(*result);
}

TEST_F(ParserTest, ErrorsCarryPosition) {
  EXPECT_FALSE(ParseFormula(db_, "a >").ok());
  EXPECT_FALSE(ParseFormula(db_, "zzz = 1").ok());
  EXPECT_FALSE(ParseFormula(db_, "a = 1 )").ok());
  EXPECT_FALSE(ParseFormula(db_, "(a = 1").ok());
  EXPECT_FALSE(ParseFormula(db_, "a = \"unterminated").ok());
  EXPECT_FALSE(ParseFormula(db_, "a # 1").ok());
  EXPECT_FALSE(ParseFormula(db_, "min(a) = 1").ok());
  EXPECT_FALSE(ParseFormula(db_, "").ok());
}

TEST_F(ParserTest, TermParsing) {
  auto t = ParseTerm(db_, "abs(a) + max(b, c) * 2");
  ASSERT_TRUE(t.ok()) << t.status();
  DbState s = DbState::OfNamed(
      db_, {{"a", Value(-3)}, {"b", Value(1)}, {"c", Value(4)}});
  auto v = EvalTerm(*t, s);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value(11));
  EXPECT_FALSE(ParseTerm(db_, "a = b").ok());  // comparison is not a term
}

TEST_F(ParserTest, RoundTripThroughPrinter) {
  for (const char* text :
       {"(a > 0 -> b > 0) & c > 0", "abs(a) + 1 = min(b, c)",
        "a = 1 | b = 2 | c = 3", "!(a >= b) <-> c != 0"}) {
    Formula f1 = MustParse(text);
    Formula f2 = MustParse(FormulaToString(db_, f1));
    EXPECT_TRUE(FormulaEquals(f1, f2)) << text;
  }
}

}  // namespace
}  // namespace nse
