// Chaos differential harness: the safety-under-faults counterpart of
// policy_differential_test.cc. For K seeds, a randomized workload is run
// under every scheduler policy × a set of fault plans (injected client
// aborts, terminal crash-at-op, latency spikes, arrival perturbation)
// combined with adversarial restart governance (exponential backoff with
// jitter, starvation watchdog, admission gate), and four contracts are
// pinned:
//
//   1. class safety  — the committed trace still verifies against the
//      policy's promised class via the independent CheckerRegistry
//      checkers (CSR / strict / PWSR / DR), faults notwithstanding;
//   2. forward progress — every transaction the faults did not crash (and
//      the gate did not shed) commits: completed + crashes + shed == n;
//   3. no residual state — at quiescence the policy leaked nothing: zero
//      held locks, zero active stamp entries, live SGT graph == the
//      committed trace's conflict graph;
//   4. determinism — the same seed and plan replayed against a fresh
//      policy instance produces a bit-identical committed schedule and
//      identical counters.
//
// Faults reach the policies only through the simulator's shared
// OnAbort/restart machinery, so this sweep is precisely what exercises
// every policy's retraction path (lock release, ConflictAccessIndex::Erase,
// RemoveEdgesOf, stamp erasure) under fire.

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analysis_context.h"
#include "analysis/checker.h"
#include "analysis/conflict_graph.h"
#include "analysis/multiversion.h"
#include "analysis/robustness.h"
#include "common/rng.h"
#include "fuzz_env.h"
#include "scheduler/dr_scheduler.h"
#include "scheduler/fault_injection.h"
#include "scheduler/mvto_policy.h"
#include "scheduler/priority_locking.h"
#include "scheduler/pw_two_phase_locking.h"
#include "scheduler/sgt_policy.h"
#include "scheduler/sgt_victim_policy.h"
#include "scheduler/sim.h"
#include "scheduler/snapshot_isolation.h"
#include "scheduler/timestamp_ordering.h"
#include "scheduler/two_phase_locking.h"
#include "scheduler/workload.h"

namespace nse {
namespace {

std::vector<uint64_t> FuzzSeeds() {
  std::vector<uint64_t> seeds;
  for (uint64_t s = 1; s <= FuzzSeedCount(4); ++s) seeds.push_back(s);
  return seeds;
}

/// Same workload sweep as the fault-free differential harness.
Workload DrawWorkload(uint64_t seed) {
  Rng knobs = Rng(seed).Split(0);
  PartitionedWorkloadConfig config;
  config.num_partitions = 2 + knobs.NextBelow(4);           // 2..5
  config.items_per_partition = 1 + knobs.NextBelow(3);      // 1..3
  config.num_txns = 4 + knobs.NextBelow(7);                 // 4..10
  config.partitions_per_txn =
      1 + knobs.NextBelow(config.num_partitions);           // script length
  config.cross_read_probability = knobs.NextDouble();
  config.hotspot_probability = 0.3 * knobs.NextBelow(4);    // 0, .3, .6, .9
  config.arrival_spread = knobs.NextBelow(3) * 4;           // 0, 4, 8
  config.seed = seed;
  auto workload = MakePartitionedWorkload(config);
  EXPECT_TRUE(workload.ok()) << workload.status();
  return std::move(workload).value();
}

/// One fault plan × restart-governance combination of the sweep.
struct ChaosSetup {
  const char* label;
  FaultPlanConfig faults;
  RestartPolicy restart;
};

/// Three adversity profiles per seed, each plan keyed off the sweep seed
/// so every seed sees different fault placements.
std::vector<ChaosSetup> ChaosSetups(uint64_t seed) {
  ChaosSetup aborts;
  aborts.label = "client-aborts+exp-backoff";
  aborts.faults.seed = seed * 3 + 1;
  aborts.faults.client_abort_probability = 0.6;
  aborts.faults.max_client_aborts_per_txn = 2;
  aborts.restart.backoff = RestartPolicy::Backoff::kExponential;
  aborts.restart.base = 2;
  aborts.restart.cap = 32;
  aborts.restart.jitter = 3;
  aborts.restart.jitter_seed = seed + 7;

  ChaosSetup crashes;
  crashes.label = "crashes+latency+arrival";
  crashes.faults.seed = seed * 3 + 2;
  crashes.faults.crash_probability = 0.3;
  crashes.faults.latency_spike_probability = 0.35;
  crashes.faults.max_latency_spike_ticks = 5;
  crashes.faults.max_arrival_delay = 5;

  ChaosSetup full;
  full.label = "full-chaos+watchdog+gate";
  full.faults.seed = seed * 3 + 3;
  full.faults.client_abort_probability = 0.4;
  full.faults.max_client_aborts_per_txn = 2;
  full.faults.crash_probability = 0.2;
  full.faults.latency_spike_probability = 0.25;
  full.faults.max_latency_spike_ticks = 4;
  full.faults.max_arrival_delay = 4;
  full.restart.backoff = RestartPolicy::Backoff::kFixed;
  full.restart.base = 3;
  full.restart.max_restarts_before_boost = 6;
  full.restart.max_live_txns = 3;  // kQueue: nothing is shed

  return {aborts, crashes, full};
}

/// Runs `checker_name` against the committed schedule and asserts it is
/// satisfied.
void ExpectClass(const Workload& workload, const Schedule& schedule,
                 std::string_view checker_name, std::string_view policy,
                 const char* setup) {
  AnalysisContext ctx(*workload.ic, schedule);
  auto result = CheckerRegistry::BuiltIn().Run(checker_name, ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->verdict, Verdict::kSatisfied)
      << policy << " under " << setup << " broke its " << checker_name
      << " promise: " << result->ToString() << "\nschedule:\n"
      << schedule.ToString(workload.db);
}

/// Forward progress: every non-crashed, non-shed transaction committed,
/// and the trace holds operations of committed transactions only.
void ExpectForwardProgress(const SimResult& result, size_t num_txns,
                           const char* setup) {
  EXPECT_EQ(result.completed + result.crashes + result.shed, num_txns)
      << "a transaction neither committed nor crashed nor was shed under "
      << setup;
  std::set<TxnId> in_trace;
  for (const Operation& op : result.schedule.ops()) in_trace.insert(op.txn);
  EXPECT_LE(in_trace.size(), result.completed)
      << "trace holds operations of uncommitted transactions under "
      << setup;
}

/// Bit-identical replay: every counter equal and the committed schedules
/// operation-for-operation identical.
void ExpectBitIdentical(const SimResult& a, const SimResult& b,
                        const char* setup) {
  EXPECT_EQ(a.makespan, b.makespan) << setup;
  EXPECT_EQ(a.completed, b.completed) << setup;
  EXPECT_EQ(a.aborts, b.aborts) << setup;
  EXPECT_EQ(a.restarts, b.restarts) << setup;
  EXPECT_EQ(a.wounds, b.wounds) << setup;
  EXPECT_EQ(a.vetoes, b.vetoes) << setup;
  EXPECT_EQ(a.skipped_ops, b.skipped_ops) << setup;
  EXPECT_EQ(a.committed_skipped_ops, b.committed_skipped_ops) << setup;
  EXPECT_EQ(a.fault_aborts, b.fault_aborts) << setup;
  EXPECT_EQ(a.crashes, b.crashes) << setup;
  EXPECT_EQ(a.shed, b.shed) << setup;
  EXPECT_EQ(a.boosts, b.boosts) << setup;
  EXPECT_EQ(a.backoff_ticks, b.backoff_ticks) << setup;
  EXPECT_EQ(a.latency_spike_ticks, b.latency_spike_ticks) << setup;
  EXPECT_EQ(a.max_txn_restarts, b.max_txn_restarts) << setup;
  EXPECT_EQ(a.total_wait_ticks, b.total_wait_ticks) << setup;
  EXPECT_EQ(a.total_ops, b.total_ops) << setup;
  EXPECT_TRUE(a.schedule.ops() == b.schedule.ops())
      << "same seed, different committed schedule under " << setup;
  EXPECT_EQ(a.read_sources, b.read_sources)
      << "same seed, different version annotations under " << setup;
  EXPECT_EQ(a.txn_restarts, b.txn_restarts) << setup;
}

/// Runs the workload under `setup` twice (fresh policy per run via
/// `make`), asserts determinism and forward progress, and returns the
/// first run's result with the first policy left at quiescence in
/// `*policy_out` for residual-state checks.
template <typename MakePolicy,
          typename Policy = std::decay_t<decltype(*std::declval<MakePolicy>()())>>
SimResult RunChaos(const Workload& workload, const ChaosSetup& setup,
                   MakePolicy make, std::unique_ptr<Policy>* policy_out) {
  FaultPlan plan(setup.faults);
  EngineConfig config;
  config.restart = setup.restart;
  config.faults = &plan;

  auto policy = make();
  auto result = RunSimulation(*policy, workload.scripts, config);
  EXPECT_TRUE(result.ok()) << setup.label << ": " << result.status();
  if (!result.ok()) {
    // Hand the (quiescent-ish) policy back anyway so the caller's residual
    // checks don't dereference null; the EXPECT above already failed.
    *policy_out = std::move(policy);
    return SimResult{};
  }

  auto replay_policy = make();
  auto replay = RunSimulation(*replay_policy, workload.scripts, config);
  EXPECT_TRUE(replay.ok()) << setup.label << ": " << replay.status();
  if (replay.ok()) ExpectBitIdentical(*result, *replay, setup.label);

  ExpectForwardProgress(*result, workload.scripts.size(), setup.label);
  *policy_out = std::move(policy);
  return *std::move(result);
}

class ChaosDifferentialFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosDifferentialFuzz, Strict2plSafeUnderFaults) {
  Workload workload = DrawWorkload(GetParam());
  for (const ChaosSetup& setup : ChaosSetups(GetParam())) {
    std::unique_ptr<StrictTwoPhaseLocking> policy;
    SimResult result = RunChaos(
        workload, setup,
        [] { return std::make_unique<StrictTwoPhaseLocking>(); }, &policy);
    ExpectClass(workload, result.schedule, "csr", "strict-2pl", setup.label);
    ExpectClass(workload, result.schedule, "delayed-read", "strict-2pl",
                setup.label);
    AnalysisContext strict_ctx(*workload.ic, result.schedule);
    EXPECT_TRUE(strict_ctx.strict()) << setup.label;
    EXPECT_EQ(policy->held_locks(), 0u) << setup.label;
  }
}

TEST_P(ChaosDifferentialFuzz, SgtSafeUnderFaults) {
  Workload workload = DrawWorkload(GetParam());
  const size_t n = workload.scripts.size();
  for (const ChaosSetup& setup : ChaosSetups(GetParam())) {
    std::unique_ptr<SgtPolicy> policy;
    SimResult result = RunChaos(
        workload, setup, [n] { return std::make_unique<SgtPolicy>(n); },
        &policy);
    ExpectClass(workload, result.schedule, "csr", "sgt", setup.label);
    // Crash/abort hygiene: whatever the faults retracted left no residual
    // edges — the live graph equals the committed trace's conflict graph.
    EXPECT_FALSE(policy->graph().has_cycle()) << setup.label;
    EXPECT_EQ(policy->graph().Edges(),
              ConflictGraph::Build(result.schedule).Edges())
        << setup.label;
  }
}

TEST_P(ChaosDifferentialFuzz, SgtVictimSafeUnderFaults) {
  Workload workload = DrawWorkload(GetParam());
  const size_t n = workload.scripts.size();
  for (const ChaosSetup& setup : ChaosSetups(GetParam())) {
    std::unique_ptr<SgtVictimPolicy> policy;
    SimResult result = RunChaos(
        workload, setup,
        [n] { return std::make_unique<SgtVictimPolicy>(n); }, &policy);
    ExpectClass(workload, result.schedule, "csr", "sgt-victim", setup.label);
    EXPECT_FALSE(policy->graph().has_cycle()) << setup.label;
    EXPECT_EQ(policy->graph().Edges(),
              ConflictGraph::Build(result.schedule).Edges())
        << setup.label;
  }
}

TEST_P(ChaosDifferentialFuzz, WoundWaitSafeUnderFaults) {
  Workload workload = DrawWorkload(GetParam());
  const size_t n = workload.scripts.size();
  for (const ChaosSetup& setup : ChaosSetups(GetParam())) {
    std::unique_ptr<WoundWaitPolicy> policy;
    SimResult result = RunChaos(
        workload, setup,
        [n] { return std::make_unique<WoundWaitPolicy>(n); }, &policy);
    ExpectClass(workload, result.schedule, "csr", "wound-wait", setup.label);
    AnalysisContext strict_ctx(*workload.ic, result.schedule);
    EXPECT_TRUE(strict_ctx.strict()) << setup.label;
    // Deadlock freedom survives faults: waits still only point young->old.
    EXPECT_EQ(result.aborts, 0u) << setup.label;
    EXPECT_EQ(result.restarts, 0u) << setup.label;
    EXPECT_EQ(policy->held_locks(), 0u) << setup.label;
  }
}

TEST_P(ChaosDifferentialFuzz, WaitDieSafeUnderFaults) {
  Workload workload = DrawWorkload(GetParam());
  const size_t n = workload.scripts.size();
  for (const ChaosSetup& setup : ChaosSetups(GetParam())) {
    std::unique_ptr<WaitDiePolicy> policy;
    SimResult result = RunChaos(
        workload, setup, [n] { return std::make_unique<WaitDiePolicy>(n); },
        &policy);
    ExpectClass(workload, result.schedule, "csr", "wait-die", setup.label);
    AnalysisContext strict_ctx(*workload.ic, result.schedule);
    EXPECT_TRUE(strict_ctx.strict()) << setup.label;
    EXPECT_EQ(result.aborts, 0u) << setup.label;
    EXPECT_EQ(result.wounds, 0u) << setup.label;
    EXPECT_EQ(policy->held_locks(), 0u) << setup.label;
  }
}

TEST_P(ChaosDifferentialFuzz, ToSafeUnderFaults) {
  Workload workload = DrawWorkload(GetParam());
  const size_t n = workload.scripts.size();
  for (bool thomas : {false, true}) {
    for (const ChaosSetup& setup : ChaosSetups(GetParam())) {
      std::unique_ptr<TimestampOrderingPolicy> policy;
      SimResult result = RunChaos(
          workload, setup,
          [n, thomas] {
            TimestampOrderingPolicy::Options options;
            options.thomas_write_rule = thomas;
            return std::make_unique<TimestampOrderingPolicy>(n, options);
          },
          &policy);
      ExpectClass(workload, result.schedule, "csr", policy->name(),
                  setup.label);
      // TO never blocks, faults or not.
      EXPECT_EQ(result.aborts, 0u) << setup.label;
      EXPECT_EQ(result.total_wait_ticks, 0u) << setup.label;
      // Stamp hygiene: every active-incarnation entry was folded at commit
      // or erased by an abort/crash.
      EXPECT_EQ(policy->active_stamp_entries(), 0u) << setup.label;
      // The committed conflict graph still embeds in timestamp order.
      ConflictGraph graph = ConflictGraph::Build(result.schedule);
      for (const auto& [from, to] : graph.Edges()) {
        ASSERT_TRUE(policy->timestamp(from).has_value());
        ASSERT_TRUE(policy->timestamp(to).has_value());
        EXPECT_LT(*policy->timestamp(from), *policy->timestamp(to))
            << policy->name() << " conflict edge T" << from << " -> T" << to
            << " against timestamp order under " << setup.label;
      }
    }
  }
}

TEST_P(ChaosDifferentialFuzz, Pw2plSafeUnderFaults) {
  Workload workload = DrawWorkload(GetParam());
  for (const ChaosSetup& setup : ChaosSetups(GetParam())) {
    std::unique_ptr<PredicatewiseTwoPhaseLocking> policy;
    SimResult result = RunChaos(
        workload, setup,
        [&workload] {
          return std::make_unique<PredicatewiseTwoPhaseLocking>(
              &*workload.ic);
        },
        &policy);
    ExpectClass(workload, result.schedule, "pwsr", "pw-2pl", setup.label);
    EXPECT_EQ(policy->held_locks(), 0u) << setup.label;
  }
}

TEST_P(ChaosDifferentialFuzz, DrSchedulerSafeUnderFaults) {
  Workload workload = DrawWorkload(GetParam());
  for (const ChaosSetup& setup : ChaosSetups(GetParam())) {
    std::unique_ptr<DelayedReadScheduler> policy;
    SimResult result = RunChaos(
        workload, setup,
        [&workload] {
          return std::make_unique<DelayedReadScheduler>(&*workload.ic);
        },
        &policy);
    ExpectClass(workload, result.schedule, "pwsr", "pw-2pl+dr", setup.label);
    ExpectClass(workload, result.schedule, "delayed-read", "pw-2pl+dr",
                setup.label);
    EXPECT_EQ(policy->held_locks(), 0u) << setup.label;
    EXPECT_EQ(policy->dirty_writers(), 0u) << setup.label;
  }
}

/// MVSR under faults: the committed trace with its version annotations
/// verifies against the mvsr checker (the multiversion promised class).
void ExpectMvsrClass(const Workload& workload, const SimResult& result,
                     std::string_view policy, const char* setup) {
  VersionAnnotations versions;
  versions.read_from = result.read_sources;
  AnalysisOptions options;
  options.versions = &versions;
  AnalysisContext ctx(result.schedule, options);
  auto check = CheckerRegistry::BuiltIn().Run("mvsr", ctx);
  ASSERT_TRUE(check.ok()) << check.status();
  EXPECT_EQ(check->verdict, Verdict::kSatisfied)
      << policy << " under " << setup
      << " broke its mvsr promise: " << check->ToString() << "\nschedule:\n"
      << result.schedule.ToString(workload.db);
}

TEST_P(ChaosDifferentialFuzz, MvtoSafeUnderFaults) {
  Workload workload = DrawWorkload(GetParam());
  const size_t n = workload.scripts.size();
  for (const ChaosSetup& setup : ChaosSetups(GetParam())) {
    std::unique_ptr<MvtoPolicy> policy;
    SimResult result = RunChaos(
        workload, setup, [n] { return std::make_unique<MvtoPolicy>(n); },
        &policy);
    ExpectMvsrClass(workload, result, "mvto", setup.label);
    // MVTO is deadlock-free (waits only point reader -> writer), faults
    // or not: no deadlock victims, ever.
    EXPECT_EQ(result.aborts, 0u) << setup.label;
    // Retraction hygiene: crashed and aborted incarnations removed their
    // versions and stamps; nothing uncommitted survives quiescence.
    EXPECT_EQ(policy->active_stamp_entries(), 0u) << setup.label;
    EXPECT_EQ(policy->store().uncommitted_versions(), 0u) << setup.label;
  }
}

TEST_P(ChaosDifferentialFuzz, SnapshotIsolationSafeUnderFaults) {
  Workload workload = DrawWorkload(GetParam());
  const size_t n = workload.scripts.size();
  for (const ChaosSetup& setup : ChaosSetups(GetParam())) {
    std::unique_ptr<SnapshotIsolationPolicy> policy;
    SimResult result = RunChaos(
        workload, setup,
        [n] { return std::make_unique<SnapshotIsolationPolicy>(n); },
        &policy);
    // SI promises MVSR only on robustness-certified committed sets; the
    // structural contracts below are unconditional.
    if (CheckSiRobustness(result.schedule).robust) {
      ExpectMvsrClass(workload, result, "snapshot-isolation", setup.label);
    }
    EXPECT_EQ(policy->active_snapshots(), 0u) << setup.label;
    EXPECT_EQ(policy->pending_writes(), 0u) << setup.label;
    EXPECT_EQ(policy->held_write_claims(), 0u) << setup.label;
    EXPECT_EQ(policy->store().uncommitted_versions(), 0u) << setup.label;
  }
}

// Shedding profile: drive every policy through an admission gate that
// drops overflow, and pin the forward-progress ledger (completed + crashes
// + shed == n) plus shed determinism. Class checks still apply — a shed
// transaction never ran, so it cannot endanger the committed trace.
TEST_P(ChaosDifferentialFuzz, SheddingGateKeepsLedgerAndSafety) {
  Workload workload = DrawWorkload(GetParam());
  ChaosSetup setup;
  setup.label = "shedding-gate";
  setup.faults.seed = GetParam() * 5 + 4;
  setup.faults.client_abort_probability = 0.3;
  setup.faults.crash_probability = 0.15;
  setup.restart.max_live_txns = 2;
  setup.restart.overflow = RestartPolicy::Overflow::kShed;
  std::unique_ptr<StrictTwoPhaseLocking> policy;
  SimResult result = RunChaos(
      workload, setup,
      [] { return std::make_unique<StrictTwoPhaseLocking>(); }, &policy);
  ExpectClass(workload, result.schedule, "csr", "strict-2pl", setup.label);
  EXPECT_EQ(policy->held_locks(), 0u);
  // The gate actually bites when more transactions arrive on one tick than
  // it has slots (scripts are non-empty, so slots cannot free same-tick).
  std::map<uint64_t, size_t> arrivals_at;
  size_t peak = 0;
  for (const TxnScript& s : workload.scripts) {
    peak = std::max(peak, ++arrivals_at[s.arrival_tick]);
  }
  if (peak > 2) EXPECT_GT(result.shed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosDifferentialFuzz,
                         ::testing::ValuesIn(FuzzSeeds()));

}  // namespace
}  // namespace nse
