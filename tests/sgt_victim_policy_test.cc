// Victim-choice SGT: unit tests drive the witness-path tracing and the
// cheapest-active-participant choice by hand; end-to-end runs pin CSR by
// construction, quiescence edge-set equality, and the policy's reason to
// exist — total rollbacks never exceeding baseline SGT's on identical
// workloads.

#include <gtest/gtest.h>

#include "analysis/serializability.h"
#include "scheduler/sgt_victim_policy.h"
#include "scheduler/sim.h"
#include "scheduler/workload.h"

namespace nse {
namespace {

TxnScript Script(std::vector<AccessStep> steps) {
  TxnScript script;
  script.steps = std::move(steps);
  return script;
}

/// Threshold 1: the first veto of a step escalates immediately, putting
/// the victim choice (not the baseline wait) under the microscope.
SgtVictimPolicy EscalateAtOnce(size_t num_txns) {
  SgtPolicy::Options options;
  options.max_consecutive_vetoes = 1;
  return SgtVictimPolicy(num_txns, options);
}

TEST(SgtVictimPolicyTest, CheapRequesterRestartsItselfLikeBaseline) {
  SgtVictimPolicy policy = EscalateAtOnce(2);
  // T2 records three steps (expensive); T1 records one, then requests the
  // cycle-closing access. The cheapest active participant on the cycle
  // path is the requester itself, so the verdict is a baseline-style
  // self-restart — no wound.
  TxnScript t1 = Script({{OpAction::kWrite, 1}, {OpAction::kRead, 2}});
  TxnScript t2 = Script({{OpAction::kWrite, 2},
                         {OpAction::kWrite, 3},
                         {OpAction::kWrite, 1},
                         {OpAction::kWrite, 0}});
  EXPECT_EQ(Access(policy, 2, t2, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 2, t2, 1), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);
  // w2(1) after w1(1): edge T1 -> T2.
  EXPECT_EQ(Access(policy, 2, t2, 2), AccessVerdict::kGranted);
  EXPECT_TRUE(policy.graph().HasEdge(1, 2));
  // r1(2) after w2(2) would add T2 -> T1 and close the cycle. T1 recorded
  // 1 step, T2 recorded 3: the requester is the cheaper loss.
  EXPECT_EQ(Access(policy, 1, t1, 1), AccessVerdict::kAbortSelf);
  EXPECT_EQ(policy.wounds_requested(), 0u);
  EXPECT_EQ(policy.restarts_requested(), 1u);
}

TEST(SgtVictimPolicyTest, WoundsOtherParticipantWhenRequesterIsExpensive) {
  SgtVictimPolicy policy = EscalateAtOnce(2);
  TxnScript t1 = Script({{OpAction::kWrite, 0}, {OpAction::kRead, 1}});
  TxnScript t2 = Script({{OpAction::kWrite, 1},
                         {OpAction::kWrite, 2},
                         {OpAction::kWrite, 3},
                         {OpAction::kRead, 0}});
  EXPECT_EQ(Access(policy, 2, t2, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 2, t2, 1), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 2, t2, 2), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);
  // r1(1) after w2(1): edge T2 -> T1.
  EXPECT_EQ(Access(policy, 1, t1, 1), AccessVerdict::kGranted);
  EXPECT_TRUE(policy.graph().HasEdge(2, 1));
  // T2's read of item 0 (T1 wrote it) would add T1 -> T2 and close the
  // cycle. Requester T2 recorded 3 steps, T1 only 2: the cheaper active
  // participant is T1 — wound it and wait for the retraction.
  EXPECT_EQ(Access(policy, 2, t2, 3), AccessVerdict::kWait);
  EXPECT_EQ(policy.wounds_requested(), 1u);
  EXPECT_EQ(policy.veto_events(), 1u);
  EXPECT_EQ(policy.DrainCondemned(), std::vector<TxnId>{1});
  EXPECT_TRUE(policy.DrainCondemned().empty());  // drained exactly once
  policy.Abort(1);
  // With T1's footprint retracted the access is admissible.
  EXPECT_EQ(Access(policy, 2, t2, 3), AccessVerdict::kGranted);
}

TEST(SgtVictimPolicyTest, KeepsBaselineEscalationTiming) {
  // Default threshold: the first veto against an active source waits,
  // exactly like baseline SGT — victim choice happens only at escalation.
  SgtVictimPolicy policy(2);
  TxnScript t1 = Script({{OpAction::kWrite, 0}, {OpAction::kRead, 1}});
  TxnScript t2 = Script({{OpAction::kWrite, 1}, {OpAction::kRead, 0}});
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 2, t2, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 1, t1, 1), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 2, t2, 1), AccessVerdict::kWait);
  EXPECT_EQ(policy.veto_events(), 1u);
  EXPECT_TRUE(policy.DrainCondemned().empty());
  EXPECT_EQ(policy.Blockers(2, t2, 1), std::vector<TxnId>{1});
}

TEST(SgtVictimPolicyTest, CommittedParticipantsAreNeverWounded) {
  SgtVictimPolicy policy(3);
  TxnScript t1 = Script({{OpAction::kWrite, 0}, {OpAction::kRead, 1}});
  TxnScript t2 = Script({{OpAction::kWrite, 1}, {OpAction::kRead, 0}});
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 2, t2, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 1, t1, 1), AccessVerdict::kGranted);
  policy.Commit(1);
  // T2's read would close the cycle and the only other participant (T1)
  // is committed: the requester restarts itself, exactly like baseline.
  EXPECT_EQ(Access(policy, 2, t2, 1), AccessVerdict::kAbortSelf);
  EXPECT_TRUE(policy.DrainCondemned().empty());
  EXPECT_EQ(policy.restarts_requested(), 1u);
}

/// Predictive scoring at threshold 1 (escalate on the first veto).
SgtVictimPolicy PredictiveAtOnce(size_t num_txns) {
  SgtPolicy::Options options;
  options.max_consecutive_vetoes = 1;
  options.victim_cost = SgtPolicy::Options::VictimCost::kPredictive;
  return SgtVictimPolicy(num_txns, options);
}

TEST(SgtVictimPolicyTest, PredictiveWoundsQuickToReplayParticipant) {
  SgtVictimPolicy policy = PredictiveAtOnce(2);
  // T1 is one step from done (remaining 1, never restarted: score 1); the
  // requester T2 still has two steps to go (score 2). The forward-looking
  // rule condemns the participant that is cheapest to replay to completion.
  TxnScript t1 = Script({{OpAction::kWrite, 0},
                         {OpAction::kRead, 1},
                         {OpAction::kWrite, 4}});
  TxnScript t2 = Script({{OpAction::kWrite, 1},
                         {OpAction::kWrite, 2},
                         {OpAction::kWrite, 3},
                         {OpAction::kRead, 0},
                         {OpAction::kWrite, 5}});
  EXPECT_EQ(Access(policy, 2, t2, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 2, t2, 1), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 2, t2, 2), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);
  // r1(1) after w2(1): edge T2 -> T1.
  EXPECT_EQ(Access(policy, 1, t1, 1), AccessVerdict::kGranted);
  // T2's read of item 0 would close the cycle. Scores: T1 = 1 remaining,
  // T2 = 2 remaining; wound T1 and record the margin.
  EXPECT_EQ(Access(policy, 2, t2, 3), AccessVerdict::kWait);
  EXPECT_EQ(policy.wounds_requested(), 1u);
  EXPECT_EQ(policy.DrainCondemned(), std::vector<TxnId>{1});
  EXPECT_EQ(policy.wound_savings(), 1u);  // score margin 2 - 1
}

TEST(SgtVictimPolicyTest, PredictiveBackoffSparesRepeatVictims) {
  SgtVictimPolicy policy = PredictiveAtOnce(2);
  TxnScript t1 = Script({{OpAction::kWrite, 0}, {OpAction::kRead, 1}});
  TxnScript t2 = Script({{OpAction::kWrite, 1},
                         {OpAction::kWrite, 2},
                         {OpAction::kWrite, 3},
                         {OpAction::kRead, 0}});
  EXPECT_EQ(Access(policy, 2, t2, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 2, t2, 1), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 2, t2, 2), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 1, t1, 1), AccessVerdict::kGranted);
  // First escalation: T1 has finished its recorded script (remaining 0,
  // no restarts: score 0), requester T2 has one step left (score 1) —
  // wound T1.
  EXPECT_EQ(Access(policy, 2, t2, 3), AccessVerdict::kWait);
  EXPECT_EQ(policy.DrainCondemned(), std::vector<TxnId>{1});
  policy.Abort(1);
  // T1 replays into the same conflicts...
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 1, t1, 1), AccessVerdict::kGranted);
  // ...and the same cycle re-forms. The sunk-cost rule would condemn T1
  // again (its sunk work, 2, is still below the requester's 3 — the
  // hotspot loop). Predictively T1 now scores 0 + backoff*1 = 4 against
  // the requester's 1: the requester restarts itself instead.
  EXPECT_EQ(Access(policy, 2, t2, 3), AccessVerdict::kAbortSelf);
  EXPECT_EQ(policy.wounds_requested(), 1u);
  EXPECT_EQ(policy.restarts_requested(), 1u);
  EXPECT_TRUE(policy.DrainCondemned().empty());
}

TEST(SgtVictimWorkloadTest, PredictiveModeStaysCsrOnExtremeHotspot) {
  // The predictive rule changes only victim choice, never admission
  // clearance: on a near-total hotspot every committed trace must still be
  // CSR with clean quiescence, and every transaction must finish.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    PartitionedWorkloadConfig config;
    config.num_partitions = 2;
    config.items_per_partition = 2;
    config.num_txns = 8;
    config.partitions_per_txn = 2;
    config.cross_read_probability = 0.5;
    config.hotspot_probability = 1.0;
    config.seed = seed;
    auto workload = MakePartitionedWorkload(config);
    ASSERT_TRUE(workload.ok()) << workload.status();

    SgtPolicy::Options options;
    options.victim_cost = SgtPolicy::Options::VictimCost::kPredictive;
    SgtVictimPolicy policy(workload->scripts.size(), options);
    auto result = RunSimulation(policy, workload->scripts);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->completed, workload->scripts.size());
    EXPECT_TRUE(IsConflictSerializable(result->schedule))
        << result->schedule.ToString(workload->db);
    EXPECT_FALSE(policy.graph().has_cycle());
    EXPECT_EQ(policy.graph().Edges(),
              ConflictGraph::Build(result->schedule).Edges());
  }
}

TEST(SgtVictimWorkloadTest, CsrByConstructionAndCheaperThanBaseline) {
  // Per seed: promise class + quiescence + the per-decision wound
  // contract. Across the sweep: the restart-economics bet — aggregate
  // rollbacks and aggregate self-restarts at or below baseline SGT's.
  uint64_t victim_rollbacks = 0, baseline_rollbacks = 0;
  uint64_t victim_restarts = 0, baseline_restarts = 0;
  uint64_t total_wounds = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    PartitionedWorkloadConfig config;
    config.num_partitions = 4;
    config.items_per_partition = 2;
    config.num_txns = 8;
    config.partitions_per_txn = 3;
    config.cross_read_probability = 0.4;
    config.hotspot_probability = 0.6;
    config.seed = seed;
    auto workload = MakePartitionedWorkload(config);
    ASSERT_TRUE(workload.ok()) << workload.status();

    SgtPolicy baseline(workload->scripts.size());
    auto base = RunSimulation(baseline, workload->scripts);
    ASSERT_TRUE(base.ok()) << base.status();

    SgtVictimPolicy policy(workload->scripts.size());
    auto result = RunSimulation(policy, workload->scripts);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->completed, workload->scripts.size());
    EXPECT_TRUE(IsConflictSerializable(result->schedule))
        << result->schedule.ToString(workload->db);

    // Quiescence: no residual edges, same contract as baseline SGT.
    EXPECT_FALSE(policy.graph().has_cycle());
    EXPECT_EQ(policy.graph().Edges(),
              ConflictGraph::Build(result->schedule).Edges());

    // Every wound strictly saved work at its decision point.
    EXPECT_EQ(result->wounds, policy.wounds_requested());
    EXPECT_GE(policy.wound_savings(), policy.wounds_requested());

    victim_rollbacks += result->restarts + result->wounds + result->aborts;
    baseline_rollbacks += base->restarts + base->aborts;
    victim_restarts += result->restarts;
    baseline_restarts += base->restarts;
    total_wounds += result->wounds;
  }
  // The sweep must actually exercise the wound path.
  EXPECT_GT(total_wounds, 0u);
  EXPECT_LE(victim_rollbacks, baseline_rollbacks);
  EXPECT_LE(victim_restarts, baseline_restarts);
}

}  // namespace
}  // namespace nse
