#include "analysis/pwsr.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "constraints/ast.h"
#include "paper/paper_examples.h"
#include "txn/interleaver.h"

namespace nse {
namespace {

TEST(PwsrTest, PaperExample2IsPwsrButNotSerializable) {
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  auto run = Interleave(ex.db, programs, ex.ds0, ex.choices);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->schedule.ToString(ex.db),
            "w1(a, 1), r2(a, 1), r2(b, -1), w2(c, -1), r1(c, -1)");

  // Not serializable as a whole: T1 -> T2 on a, T2 -> T1 on c.
  EXPECT_FALSE(IsConflictSerializable(run->schedule));

  // But PWSR: S^{a,b} serializes T1 T2; S^{c} serializes T2 T1.
  PwsrReport report = CheckPwsr(run->schedule, *ex.ic);
  EXPECT_TRUE(report.is_pwsr);
  EXPECT_TRUE(report.conjuncts_disjoint);
  ASSERT_EQ(report.per_conjunct.size(), 2u);
  EXPECT_EQ(*report.OrderFor(0), (std::vector<TxnId>{1, 2}));
  EXPECT_EQ(*report.OrderFor(1), (std::vector<TxnId>{2, 1}));
}

TEST(PwsrTest, FixedStructureRepairDestroysPwsrOfExample2Schedule) {
  // With TP1' (else-branch b := b), the same interleaving adds w1(b,...)
  // after r2(b,...): S^{a,b} then has T1 -> T2 (a) and T2 -> T1 (b).
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1_fixed, &ex.tp2};
  // TP1' emits two more operations (r1(b), w1(b)); extend the interleaving
  // with T1's tail.
  std::vector<size_t> choices = ex.choices;
  choices.push_back(0);
  choices.push_back(0);
  auto run = Interleave(ex.db, programs, ex.ds0, choices);
  ASSERT_TRUE(run.ok()) << run.status();
  PwsrReport report = CheckPwsr(run->schedule, *ex.ic);
  EXPECT_FALSE(report.is_pwsr);
  EXPECT_FALSE(report.per_conjunct[0].csr.serializable);
  EXPECT_TRUE(report.per_conjunct[1].csr.serializable);
}

TEST(PwsrTest, SerializableImpliesPwsr) {
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  auto serial = ExecuteSerially(ex.db, programs, ex.ds0, {0, 1});
  ASSERT_TRUE(serial.ok());
  EXPECT_TRUE(IsConflictSerializable(serial->schedule));
  EXPECT_TRUE(CheckPwsr(serial->schedule, *ex.ic).is_pwsr);
}

TEST(PwsrTest, ReportRendering) {
  auto ex = paper::Example2::Make();
  std::vector<const TransactionProgram*> programs{&ex.tp1, &ex.tp2};
  auto run = Interleave(ex.db, programs, ex.ds0, ex.choices);
  ASSERT_TRUE(run.ok());
  PwsrReport report = CheckPwsr(run->schedule, *ex.ic);
  std::string text = PwsrReportToString(ex.db, *ex.ic, report);
  EXPECT_NE(text.find("PWSR: yes"), std::string::npos);
  EXPECT_NE(text.find("{a, b}"), std::string::npos);
  EXPECT_NE(text.find("T2 T1"), std::string::npos);
}

TEST(PwsrTest, EmptyScheduleIsPwsr) {
  auto ex = paper::Example2::Make();
  EXPECT_TRUE(CheckPwsr(Schedule(), *ex.ic).is_pwsr);
}

TEST(PwsrTest, SingleConjunctPwsrEquivalentToPlainCsr) {
  // Definition 2 with a single conjunct whose data set covers every item
  // degenerates to plain conflict serializability: S^{d_1} = S. The two
  // checkers must agree verdict-for-verdict on arbitrary schedules.
  Database db;
  ASSERT_TRUE(db.AddIntItems({"x", "y"}, -8, 8).ok());
  auto ic = IntegrityConstraint::FromConjuncts(
      db, {Eq(Var(db.MustFind("x")), Var(db.MustFind("y")))});
  ASSERT_TRUE(ic.ok()) << ic.status();

  Rng rng(93);
  int serializable_seen = 0, cyclic_seen = 0;
  for (int trial = 0; trial < 300; ++trial) {
    OpSequence ops;
    size_t num_ops = 2 + rng.NextBelow(14);
    for (size_t i = 0; i < num_ops; ++i) {
      TxnId txn = static_cast<TxnId>(rng.NextBelow(4) + 1);
      ItemId item = static_cast<ItemId>(rng.NextBelow(2));
      if (rng.NextBool(0.5)) {
        ops.push_back(Operation::Write(txn, item, Value(0)));
      } else {
        ops.push_back(Operation::Read(txn, item, Value(0)));
      }
    }
    Schedule s(std::move(ops));

    CsrReport csr = CheckConflictSerializability(s);
    PwsrReport pwsr = CheckPwsr(s, *ic);
    ASSERT_EQ(pwsr.per_conjunct.size(), 1u);
    EXPECT_EQ(pwsr.is_pwsr, csr.serializable);
    EXPECT_EQ(pwsr.per_conjunct[0].csr.serializable, csr.serializable);
    // The canonical serialization orders coincide as well.
    EXPECT_EQ(pwsr.OrderFor(0), csr.order);
    csr.serializable ? ++serializable_seen : ++cyclic_seen;
  }
  // The sweep must actually exercise both verdicts.
  EXPECT_GT(serializable_seen, 0);
  EXPECT_GT(cyclic_seen, 0);
}

}  // namespace
}  // namespace nse
