#include "analysis/conflict_graph.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fuzz_env.h"

namespace nse {
namespace {

class ConflictGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.AddIntItems({"a", "b", "c"}, -8, 8).ok());
  }
  Database db_;
};

TEST_F(ConflictGraphTest, EdgesFollowConflictOrder) {
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0)).W(2, "a", Value(1)).W(1, "b", Value(2));
  ConflictGraph g = ConflictGraph::Build(sb.Build());
  EXPECT_TRUE(g.HasEdge(1, 2));   // r1(a) before w2(a)
  EXPECT_FALSE(g.HasEdge(2, 1));
  EXPECT_EQ(g.Edges().size(), 1u);
  EXPECT_TRUE(g.IsAcyclic());
  EXPECT_EQ(g.ToString(), "T1 -> T2");
}

TEST_F(ConflictGraphTest, ReadsDoNotConflict) {
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0)).R(2, "a", Value(0));
  ConflictGraph g = ConflictGraph::Build(sb.Build());
  EXPECT_TRUE(g.Edges().empty());
}

TEST_F(ConflictGraphTest, ClassicNonSerializableCycle) {
  // r1(a) w2(a) r2(b) w1(b): T1 -> T2 (on a), T2 -> T1 (on b).
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0))
      .W(2, "a", Value(1))
      .R(2, "b", Value(0))
      .W(1, "b", Value(1));
  ConflictGraph g = ConflictGraph::Build(sb.Build());
  EXPECT_FALSE(g.IsAcyclic());
  EXPECT_EQ(g.TopologicalOrder(), std::nullopt);
  auto cycle = g.FindCycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_GE(cycle->size(), 3u);
  EXPECT_EQ(cycle->front(), cycle->back());
  EXPECT_TRUE(g.AllTopologicalOrders(10).empty());
}

TEST_F(ConflictGraphTest, TopologicalOrderRespectsEdges) {
  ScheduleBuilder sb(db_);
  sb.W(1, "a", Value(1))
      .R(2, "a", Value(1))
      .W(2, "b", Value(2))
      .R(3, "b", Value(2));
  ConflictGraph g = ConflictGraph::Build(sb.Build());
  auto order = g.TopologicalOrder();
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<TxnId>{1, 2, 3}));
}

TEST_F(ConflictGraphTest, AllTopologicalOrdersOfIndependentTxns) {
  // No conflicts: both orders of two transactions are serialization orders.
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0)).R(2, "b", Value(0));
  ConflictGraph g = ConflictGraph::Build(sb.Build());
  auto orders = g.AllTopologicalOrders(10);
  EXPECT_EQ(orders.size(), 2u);
  auto limited = g.AllTopologicalOrders(1);
  EXPECT_EQ(limited.size(), 1u);
}

TEST_F(ConflictGraphTest, SingleAndEmptySchedules) {
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0));
  ConflictGraph g = ConflictGraph::Build(sb.Build());
  EXPECT_TRUE(g.IsAcyclic());
  EXPECT_EQ(*g.TopologicalOrder(), (std::vector<TxnId>{1}));

  ConflictGraph empty = ConflictGraph::Build(Schedule());
  EXPECT_TRUE(empty.IsAcyclic());
  EXPECT_TRUE(empty.TopologicalOrder()->empty());
  EXPECT_FALSE(empty.FindCycle().has_value());
}

TEST_F(ConflictGraphTest, AllTopologicalOrdersExactlyAtTheLimitBoundary) {
  // Three independent transactions: exactly 3! = 6 serialization orders.
  // Pin the contract at the boundary: below the limit the enumeration is
  // complete, exactly at the limit it returns exactly `limit` (and may be
  // incomplete), above the limit it returns the true count.
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0)).R(2, "b", Value(0)).R(3, "c", Value(0));
  ConflictGraph g = ConflictGraph::Build(sb.Build());

  EXPECT_EQ(g.AllTopologicalOrders(5).size(), 5u);
  EXPECT_EQ(g.AllTopologicalOrders(6).size(), 6u);
  EXPECT_EQ(g.AllTopologicalOrders(7).size(), 6u);
  EXPECT_EQ(g.AllTopologicalOrders(1000).size(), 6u);
  EXPECT_EQ(g.AllTopologicalOrders(1).size(), 1u);
  EXPECT_TRUE(g.AllTopologicalOrders(0).empty());

  // All six orders are distinct permutations of {1, 2, 3}.
  auto orders = g.AllTopologicalOrders(6);
  std::sort(orders.begin(), orders.end());
  EXPECT_EQ(std::unique(orders.begin(), orders.end()), orders.end());
}

TEST_F(ConflictGraphTest, ThreeTxnCycleFound) {
  // T1 -> T2 -> T3 -> T1.
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0))
      .W(2, "a", Value(1))   // T1 -> T2
      .R(2, "b", Value(0))
      .W(3, "b", Value(1))   // T2 -> T3
      .R(3, "c", Value(0))
      .W(1, "c", Value(1));  // T3 -> T1
  ConflictGraph g = ConflictGraph::Build(sb.Build());
  EXPECT_FALSE(g.IsAcyclic());
  auto cycle = g.FindCycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 4u);  // 3 nodes + repeated head
}

// Double-release hardening: a crash-at-op fault can re-run the abort
// retraction for an accessor whose footprint is already gone, so repeated
// Erase of the same (or a never-recorded) accessor must be a no-op that
// leaves every other accessor's history — and conflict emission order —
// untouched.
TEST(ConflictAccessIndexTest, EraseIsIdempotent) {
  auto conflicts_for = [](const ConflictAccessIndex& index, uint32_t who) {
    std::vector<uint32_t> out;
    index.ForEachConflict(who, /*is_write=*/true, /*item=*/0,
                          [&](uint32_t prior) { out.push_back(prior); });
    return out;
  };
  ConflictAccessIndex index;
  index.Record(1, /*is_write=*/true, 0);
  index.Record(2, /*is_write=*/false, 0);
  index.Record(3, /*is_write=*/true, 0);
  EXPECT_EQ(conflicts_for(index, 9), (std::vector<uint32_t>{1, 3, 2}));

  index.Erase(1);
  index.Erase(1);   // second abort of the same quiescent accessor
  index.Erase(7);   // accessor that never recorded anything
  index.Erase(64);  // beyond every grown bitset word
  EXPECT_EQ(conflicts_for(index, 9), (std::vector<uint32_t>{3, 2}));

  // Re-recording after a double erase starts from a clean slate and lands
  // at the back of the history again.
  index.Record(1, /*is_write=*/true, 0);
  EXPECT_EQ(conflicts_for(index, 9), (std::vector<uint32_t>{3, 1, 2}));
}

// Dense-sweep differential: the bitset fast path behind Build must be
// bit-identical to the reference vector sweep — same edges inserted in the
// same order, hence the same first cycle edge, witnesses, topological
// orders, and render. Swept over both shapes: a few txns on a few items
// (contended histories) and many txns hammering one or two items (the
// dense rows the bitsets target).
TEST(ConflictGraphDenseSweepFuzz, DenseBuildMatchesReferenceOnRandomSchedules) {
  const size_t seeds = FuzzSeedCount(12);
  size_t cyclic = 0;
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    Rng rng(seed * 7919 + 3);
    const size_t num_txns = 2 + rng.NextBelow(18);
    const size_t num_items = 1 + rng.NextBelow(5);
    const size_t num_ops = 4 + rng.NextBelow(60);
    OpSequence ops;
    for (size_t i = 0; i < num_ops; ++i) {
      TxnId txn = static_cast<TxnId>(1 + rng.NextBelow(num_txns));
      ItemId item = static_cast<ItemId>(rng.NextBelow(num_items));
      if (rng.NextBool(0.5)) {
        ops.push_back(Operation::Write(txn, item, Value(0)));
      } else {
        ops.push_back(Operation::Read(txn, item, Value(0)));
      }
    }
    Schedule s(std::move(ops));
    for (CycleMode mode : {CycleMode::kBatch, CycleMode::kIncremental}) {
      ConflictGraph dense = ConflictGraph::Build(s, mode);
      ConflictGraph reference = ConflictGraph::BuildReference(s, mode);
      ASSERT_EQ(dense.nodes(), reference.nodes()) << "seed " << seed;
      ASSERT_EQ(dense.Edges(), reference.Edges()) << "seed " << seed;
      ASSERT_EQ(dense.num_edges(), reference.num_edges());
      ASSERT_EQ(dense.IsAcyclic(), reference.IsAcyclic()) << "seed " << seed;
      ASSERT_EQ(dense.cycle_edge(), reference.cycle_edge()) << "seed " << seed;
      ASSERT_EQ(dense.cycle_op_pos(), reference.cycle_op_pos());
      ASSERT_EQ(dense.cycle(), reference.cycle());
      ASSERT_EQ(dense.FindCycle(), reference.FindCycle());
      ASSERT_EQ(dense.TopologicalOrder(), reference.TopologicalOrder());
      ASSERT_EQ(dense.ToString(), reference.ToString());
      if (!dense.IsAcyclic()) ++cyclic;
    }
  }
  // The sweep must actually have produced cyclic graphs, or the witness
  // comparisons above were vacuous.
  EXPECT_GT(cyclic, 0u);
}

// Flat-CSR adjacency differential: randomized insert/erase/clear streams
// against a sorted-set model. Every region must stay sorted and equal to
// its model set after every step — the graph's deterministic iteration
// order (Edges() order, cycle witnesses, veto enumeration) rides on
// exactly this.
TEST(ConflictGraphDenseSweepFuzz, FlatAdjacencyMatchesSetModel) {
  const size_t seeds = FuzzSeedCount(12);
  size_t compactions = 0;
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    Rng rng(seed * 104729 + 11);
    const size_t n = 1 + rng.NextBelow(12);
    internal::FlatAdjacency flat(n);
    std::vector<std::set<uint32_t>> model(n);
    for (size_t step = 0; step < 40 * n; ++step) {
      const size_t node = rng.NextBelow(n);
      const uint32_t value = static_cast<uint32_t>(rng.NextBelow(n + 4));
      const double flavour = rng.NextDouble();
      if (flavour < 0.55) {
        ASSERT_EQ(flat.Insert(node, value), model[node].insert(value).second)
            << "seed " << seed << " step " << step;
      } else if (flavour < 0.85) {
        ASSERT_EQ(flat.Erase(node, value), model[node].erase(value) > 0)
            << "seed " << seed << " step " << step;
      } else if (flavour < 0.95) {
        ASSERT_EQ(flat.Contains(node, value), model[node].count(value) > 0)
            << "seed " << seed << " step " << step;
      } else {
        flat.Clear(node);
        model[node].clear();
      }
      for (size_t v = 0; v < n; ++v) {
        ASSERT_EQ(flat.size(v), model[v].size()) << "seed " << seed;
        std::vector<uint32_t> got(flat[v].begin(), flat[v].end());
        std::vector<uint32_t> want(model[v].begin(), model[v].end());
        ASSERT_EQ(got, want) << "seed " << seed << " step " << step;
      }
    }
    compactions += flat.compactions();
  }
  // The streams must have overflowed regions, or the slab-compaction path
  // (the interesting one) went unexercised.
  EXPECT_GT(compactions, 0u);
}

}  // namespace
}  // namespace nse
