#include "analysis/conflict_graph.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace nse {
namespace {

class ConflictGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.AddIntItems({"a", "b", "c"}, -8, 8).ok());
  }
  Database db_;
};

TEST_F(ConflictGraphTest, EdgesFollowConflictOrder) {
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0)).W(2, "a", Value(1)).W(1, "b", Value(2));
  ConflictGraph g = ConflictGraph::Build(sb.Build());
  EXPECT_TRUE(g.HasEdge(1, 2));   // r1(a) before w2(a)
  EXPECT_FALSE(g.HasEdge(2, 1));
  EXPECT_EQ(g.Edges().size(), 1u);
  EXPECT_TRUE(g.IsAcyclic());
  EXPECT_EQ(g.ToString(), "T1 -> T2");
}

TEST_F(ConflictGraphTest, ReadsDoNotConflict) {
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0)).R(2, "a", Value(0));
  ConflictGraph g = ConflictGraph::Build(sb.Build());
  EXPECT_TRUE(g.Edges().empty());
}

TEST_F(ConflictGraphTest, ClassicNonSerializableCycle) {
  // r1(a) w2(a) r2(b) w1(b): T1 -> T2 (on a), T2 -> T1 (on b).
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0))
      .W(2, "a", Value(1))
      .R(2, "b", Value(0))
      .W(1, "b", Value(1));
  ConflictGraph g = ConflictGraph::Build(sb.Build());
  EXPECT_FALSE(g.IsAcyclic());
  EXPECT_EQ(g.TopologicalOrder(), std::nullopt);
  auto cycle = g.FindCycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_GE(cycle->size(), 3u);
  EXPECT_EQ(cycle->front(), cycle->back());
  EXPECT_TRUE(g.AllTopologicalOrders(10).empty());
}

TEST_F(ConflictGraphTest, TopologicalOrderRespectsEdges) {
  ScheduleBuilder sb(db_);
  sb.W(1, "a", Value(1))
      .R(2, "a", Value(1))
      .W(2, "b", Value(2))
      .R(3, "b", Value(2));
  ConflictGraph g = ConflictGraph::Build(sb.Build());
  auto order = g.TopologicalOrder();
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<TxnId>{1, 2, 3}));
}

TEST_F(ConflictGraphTest, AllTopologicalOrdersOfIndependentTxns) {
  // No conflicts: both orders of two transactions are serialization orders.
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0)).R(2, "b", Value(0));
  ConflictGraph g = ConflictGraph::Build(sb.Build());
  auto orders = g.AllTopologicalOrders(10);
  EXPECT_EQ(orders.size(), 2u);
  auto limited = g.AllTopologicalOrders(1);
  EXPECT_EQ(limited.size(), 1u);
}

TEST_F(ConflictGraphTest, SingleAndEmptySchedules) {
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0));
  ConflictGraph g = ConflictGraph::Build(sb.Build());
  EXPECT_TRUE(g.IsAcyclic());
  EXPECT_EQ(*g.TopologicalOrder(), (std::vector<TxnId>{1}));

  ConflictGraph empty = ConflictGraph::Build(Schedule());
  EXPECT_TRUE(empty.IsAcyclic());
  EXPECT_TRUE(empty.TopologicalOrder()->empty());
  EXPECT_FALSE(empty.FindCycle().has_value());
}

TEST_F(ConflictGraphTest, AllTopologicalOrdersExactlyAtTheLimitBoundary) {
  // Three independent transactions: exactly 3! = 6 serialization orders.
  // Pin the contract at the boundary: below the limit the enumeration is
  // complete, exactly at the limit it returns exactly `limit` (and may be
  // incomplete), above the limit it returns the true count.
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0)).R(2, "b", Value(0)).R(3, "c", Value(0));
  ConflictGraph g = ConflictGraph::Build(sb.Build());

  EXPECT_EQ(g.AllTopologicalOrders(5).size(), 5u);
  EXPECT_EQ(g.AllTopologicalOrders(6).size(), 6u);
  EXPECT_EQ(g.AllTopologicalOrders(7).size(), 6u);
  EXPECT_EQ(g.AllTopologicalOrders(1000).size(), 6u);
  EXPECT_EQ(g.AllTopologicalOrders(1).size(), 1u);
  EXPECT_TRUE(g.AllTopologicalOrders(0).empty());

  // All six orders are distinct permutations of {1, 2, 3}.
  auto orders = g.AllTopologicalOrders(6);
  std::sort(orders.begin(), orders.end());
  EXPECT_EQ(std::unique(orders.begin(), orders.end()), orders.end());
}

TEST_F(ConflictGraphTest, ThreeTxnCycleFound) {
  // T1 -> T2 -> T3 -> T1.
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0))
      .W(2, "a", Value(1))   // T1 -> T2
      .R(2, "b", Value(0))
      .W(3, "b", Value(1))   // T2 -> T3
      .R(3, "c", Value(0))
      .W(1, "c", Value(1));  // T3 -> T1
  ConflictGraph g = ConflictGraph::Build(sb.Build());
  EXPECT_FALSE(g.IsAcyclic());
  auto cycle = g.FindCycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 4u);  // 3 nodes + repeated head
}

}  // namespace
}  // namespace nse
