// The black-box plane's differential fuzz harness: for K seeds the
// adversarial generator draws a history (anomaly gadgets seeded at random
// rates), and the streaming windowed checker must agree with the batch
// plane (CommittedProjection → AnalysisContext) field for field — verdict,
// witness edge, witness cycle, witness event position, dirty-read events —
// at every window size, including windows far smaller than the history.
// A prefix sweep separately pins the eviction-soundness property: a
// tiny-window streaming pass over any prefix equals batch re-analysis of
// that prefix, so eviction can never flip a verdict. Golden logs under
// tests/data/ (the paper's §2 examples among them) pin absolute verdicts
// rather than mere agreement, and the trace converters close the loop by
// feeding sim/engine output (ground truth: strict 2PL ⇒ CSR) through the
// serialized format into both checkers.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/streaming_checker.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "fuzz_env.h"
#include "history/batch_check.h"
#include "history/history.h"
#include "history/history_generator.h"
#include "history/history_io.h"
#include "history/trace_export.h"
#include "scheduler/sim.h"
#include "scheduler/two_phase_locking.h"
#include "scheduler/workload.h"

namespace nse {
namespace {

std::vector<uint64_t> FuzzSeeds() {
  std::vector<uint64_t> seeds;
  for (uint64_t s = 1; s <= FuzzSeedCount(10); ++s) seeds.push_back(s);
  return seeds;
}

/// Field-for-field agreement between the two planes' reports.
void ExpectAgreement(const StreamingReport& streaming, const BatchReport& batch,
                     const std::string& context) {
  EXPECT_EQ(streaming.full.ok, batch.full.ok) << context;
  ASSERT_EQ(streaming.full.violation.has_value(),
            batch.full.violation.has_value())
      << context;
  if (streaming.full.violation.has_value()) {
    EXPECT_EQ(streaming.full.violation->edge, batch.full.violation->edge)
        << context;
    EXPECT_EQ(streaming.full.violation->event, batch.full.violation->event)
        << context;
    EXPECT_EQ(streaming.full.violation->cycle, batch.full.violation->cycle)
        << context;
  }
  ASSERT_EQ(streaming.planes.size(), batch.planes.size()) << context;
  for (size_t p = 0; p < streaming.planes.size(); ++p) {
    const std::string plane_context = context + " plane " + std::to_string(p);
    EXPECT_EQ(streaming.planes[p].ok, batch.planes[p].ok) << plane_context;
    ASSERT_EQ(streaming.planes[p].violation.has_value(),
              batch.planes[p].violation.has_value())
        << plane_context;
    if (streaming.planes[p].violation.has_value()) {
      EXPECT_EQ(streaming.planes[p].violation->edge,
                batch.planes[p].violation->edge)
          << plane_context;
      EXPECT_EQ(streaming.planes[p].violation->event,
                batch.planes[p].violation->event)
          << plane_context;
      EXPECT_EQ(streaming.planes[p].violation->cycle,
                batch.planes[p].violation->cycle)
          << plane_context;
    }
  }
  EXPECT_EQ(streaming.aborted_reads, batch.aborted_reads) << context;
  EXPECT_EQ(streaming.ok(), batch.ok()) << context;
}

/// Splits the catalog into two planes (odd/even items) — overlap-free, so
/// the projected planes exercise the PWSR-style per-conjunct machinery.
std::vector<DataSet> HalvePlanes(const Database& db) {
  DataSet evens;
  DataSet odds;
  for (ItemId item = 0; item < db.num_items(); ++item) {
    if (item % 2 == 0) {
      evens.Insert(item);
    } else {
      odds.Insert(item);
    }
  }
  std::vector<DataSet> planes;
  if (!evens.empty()) planes.push_back(evens);
  if (!odds.empty()) planes.push_back(odds);
  return planes;
}

class HistoryDifferentialFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistoryDifferentialFuzz, StreamingAgreesWithBatchAtEveryWindow) {
  const uint64_t seed = GetParam();
  History h = DrawHistory(seed);
  ASSERT_TRUE(ValidateHistory(h).ok()) << "seed " << seed;
  const std::vector<DataSet> planes = HalvePlanes(h.db);
  for (size_t window : {size_t{2}, size_t{8}, size_t{0}}) {
    const std::string context =
        "seed " + std::to_string(seed) + " window " + std::to_string(window);
    // Full plane only.
    StreamingOptions options;
    options.window = window;
    ExpectAgreement(CheckHistoryStreaming(h, options), CheckHistoryBatch(h),
                    context);
    // With projected planes.
    options.planes = planes;
    ExpectAgreement(CheckHistoryStreaming(h, options),
                    CheckHistoryBatch(h, planes), context + " planes");
  }
}

TEST_P(HistoryDifferentialFuzz, SerializedFormRoundTripsTheVerdict) {
  const uint64_t seed = GetParam();
  History h = DrawHistory(seed);
  Result<History> reparsed = ParseHistory(SerializeHistory(h));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  // Same verdict and witnesses whether checked in memory or after a trip
  // through the wire format (item ids may be renumbered; txn ids are not).
  ExpectAgreement(CheckHistoryStreaming(*reparsed), CheckHistoryBatch(h),
                  "seed " + std::to_string(seed));
}

// Eviction soundness: streaming with the tiniest useful window over any
// prefix of the log equals batch re-analysis of that prefix. In
// particular an eviction can never convert a violation into an ok.
TEST_P(HistoryDifferentialFuzz, TinyWindowPrefixesEqualBatchReanalysis) {
  const uint64_t seed = GetParam();
  History h = DrawHistory(seed);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  // Sample a handful of prefix boundaries (always including the full log).
  std::vector<size_t> cuts;
  for (int i = 0; i < 6; ++i) {
    cuts.push_back(rng.NextBelow(h.events.size() + 1));
  }
  cuts.push_back(h.events.size());
  for (size_t cut : cuts) {
    History prefix;
    prefix.db = h.db;
    prefix.events.assign(h.events.begin(), h.events.begin() + cut);
    StreamingOptions options;
    options.window = 2;
    ExpectAgreement(
        CheckHistoryStreaming(prefix, options), CheckHistoryBatch(prefix),
        "seed " + std::to_string(seed) + " cut " + std::to_string(cut));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistoryDifferentialFuzz,
                         ::testing::ValuesIn(FuzzSeeds()));

// The online verdict never lags: violation_seen() flips exactly when the
// batch verdict over the fed prefix first becomes a violation (cycle or
// committed dirty read).
TEST(HistoryDifferentialTest, OnlineVerdictMatchesBatchPrefixTransition) {
  HistoryGenOptions options;
  options.num_txns = 16;
  options.lost_update_fraction = 0.3;
  options.dirty_read_fraction = 0.2;
  History h = HistoryGenerator(options, 5).Generate();
  StreamingChecker checker(h.db);
  History prefix;
  prefix.db = h.db;
  for (size_t i = 0; i < h.events.size(); ++i) {
    ASSERT_TRUE(checker.Feed(h.events[i]).ok());
    prefix.events.push_back(h.events[i]);
    BatchReport batch = CheckHistoryBatch(prefix);
    EXPECT_EQ(checker.violation_seen(), !batch.ok()) << "event " << i;
  }
}

TEST(TraceDifferentialTest, SimTracesAgreeAndStrict2plStaysSerializable) {
  for (uint64_t seed = 1; seed <= FuzzSeedCount(4); ++seed) {
    PartitionedWorkloadConfig config;
    config.num_txns = 10;
    config.hotspot_probability = 0.4;
    config.seed = seed;
    Result<Workload> workload = MakePartitionedWorkload(config);
    ASSERT_TRUE(workload.ok()) << workload.status();
    StrictTwoPhaseLocking policy;
    Result<SimResult> run = RunSimulation(policy, workload->scripts);
    ASSERT_TRUE(run.ok()) << run.status();
    History h = HistoryFromSim(workload->db, *run);
    ASSERT_TRUE(ValidateHistory(h).ok());
    StreamingReport streaming = CheckHistoryStreaming(h);
    ExpectAgreement(streaming, CheckHistoryBatch(h),
                    "sim seed " + std::to_string(seed));
    // Ground truth: strict 2PL commits are conflict serializable and never
    // read aborted data.
    EXPECT_TRUE(streaming.ok()) << "sim seed " << seed;
  }
}

TEST(TraceDifferentialTest, EngineTracesAgreeAndStaySerializable) {
  for (uint64_t seed = 1; seed <= FuzzSeedCount(3); ++seed) {
    PartitionedWorkloadConfig config;
    config.num_txns = 8;
    config.seed = seed;
    Result<Workload> workload = MakePartitionedWorkload(config);
    ASSERT_TRUE(workload.ok()) << workload.status();
    StrictTwoPhaseLocking policy;
    Result<EngineResult> run = RunEngine(policy, workload->scripts);
    ASSERT_TRUE(run.ok()) << run.status();
    History h = HistoryFromEngine(workload->db, *run);
    ASSERT_TRUE(ValidateHistory(h).ok());
    StreamingReport streaming = CheckHistoryStreaming(h);
    ExpectAgreement(streaming, CheckHistoryBatch(h),
                    "engine seed " + std::to_string(seed));
    EXPECT_TRUE(streaming.ok()) << "engine seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Golden logs: absolute pinned verdicts for checked-in files.

History LoadGolden(const std::string& name) {
  Result<History> h = ReadHistoryFile(std::string(NSE_TEST_DATA_DIR) + "/" +
                                      name);
  EXPECT_TRUE(h.ok()) << h.status();
  return std::move(h).value();
}

TEST(HistoryGoldenTest, PaperExample1IsSerializable) {
  // §2 Example 1: S = r1(a) r2(a) w2(d) r1(c) w1(b) — no conflicting pair,
  // hence trivially CSR.
  History h = LoadGolden("paper_example1.jsonl");
  StreamingReport report = CheckHistoryStreaming(h);
  ExpectAgreement(report, CheckHistoryBatch(h), "example1");
  EXPECT_TRUE(report.ok());
}

TEST(HistoryGoldenTest, PaperExample2ViolatesCsrButEveryPlaneIsOk) {
  // §2 Example 2: S = w1(a) r2(a) r2(b) w2(c) r1(c) — the w1→r2 and w2→r1
  // edges close a two-cycle, so S is not CSR; but projected onto the
  // conjunct planes {a,b} and {c} each projection is serializable (the
  // PWSR gap the paper's Definition 2 exploits).
  History h = LoadGolden("paper_example2.jsonl");
  StreamingOptions options;
  options.planes = {h.db.SetOf({"a", "b"}), h.db.SetOf({"c"})};
  StreamingReport report = CheckHistoryStreaming(h, options);
  ExpectAgreement(report, CheckHistoryBatch(h, options.planes), "example2");
  ASSERT_FALSE(report.full.ok);
  EXPECT_EQ(report.full.violation->edge, (std::pair<TxnId, TxnId>(2, 1)));
  EXPECT_EQ(report.full.violation->event, 6u);
  ASSERT_EQ(report.planes.size(), 2u);
  EXPECT_TRUE(report.planes[0].ok);
  EXPECT_TRUE(report.planes[1].ok);
  EXPECT_TRUE(report.aborted_reads.empty());
}

TEST(HistoryGoldenTest, LostUpdateWitnessIsPinned) {
  History h = LoadGolden("lost_update.jsonl");
  StreamingReport report = CheckHistoryStreaming(h);
  ExpectAgreement(report, CheckHistoryBatch(h), "lost_update");
  ASSERT_FALSE(report.full.ok);
  EXPECT_EQ(report.full.violation->edge, (std::pair<TxnId, TxnId>(1, 2)));
  EXPECT_EQ(report.full.violation->event, 5u);
}

TEST(HistoryGoldenTest, DirtyReadIsPinned) {
  History h = LoadGolden("dirty_read.jsonl");
  StreamingReport report = CheckHistoryStreaming(h);
  ExpectAgreement(report, CheckHistoryBatch(h), "dirty_read");
  EXPECT_TRUE(report.full.ok);
  EXPECT_EQ(report.aborted_reads, std::vector<size_t>{3});
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace nse
