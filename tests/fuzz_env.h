// Shared seed-count plumbing for the randomized/differential suites: each
// fuzz-labeled ctest entry re-runs its suite with NSE_FUZZ_SEEDS set (see
// CMakeLists.txt); without the variable the suites use their small tier-1
// defaults.

#ifndef NSE_TESTS_FUZZ_ENV_H_
#define NSE_TESTS_FUZZ_ENV_H_

#include <cstdlib>

namespace nse {

/// Seeds to sweep: NSE_FUZZ_SEEDS when set and positive, else the suite's
/// tier-1 default.
inline size_t FuzzSeedCount(size_t default_count) {
  const char* env = std::getenv("NSE_FUZZ_SEEDS");
  if (env == nullptr) return default_count;
  int parsed = std::atoi(env);
  return parsed > 0 ? static_cast<size_t>(parsed) : default_count;
}

}  // namespace nse

#endif  // NSE_TESTS_FUZZ_ENV_H_
