// MVCC differential harness: the multiversion counterpart of the engine
// and chaos differential sweeps. For K seeds, a randomized workload is run
// under the two version-store policies (MVTO, snapshot isolation) on both
// drivers — the deterministic tick simulator and the real multithreaded
// engine across worker counts {1, 2, 4, 8} — and the multiversion
// contracts are pinned:
//
//   1. class safety — the committed trace, with its reads-from pinned by
//      the drivers' version annotations (read_sources), verifies MVSR via
//      the independent mvsr checker. For MVTO that is unconditional; for
//      SI it is gated on the VKN robustness certificate (write skew is
//      admitted by design on uncertified workloads);
//   2. readers never pay — read-only transactions never restart
//      (txn_restarts pinned to 0), under either policy and driver;
//   3. no residual state — at quiescence the policies leaked nothing:
//      zero active stamps/snapshots, zero buffered writes, zero held
//      claims, zero uncommitted versions, and every chain truncated down
//      to its single survivor;
//   4. determinism — the simulator replays bit-identically, version
//      annotations and per-transaction restart ledgers included.

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analysis_context.h"
#include "analysis/checker.h"
#include "analysis/multiversion.h"
#include "analysis/robustness.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "fuzz_env.h"
#include "scheduler/mvto_policy.h"
#include "scheduler/sim.h"
#include "scheduler/snapshot_isolation.h"
#include "scheduler/timestamp_ordering.h"
#include "scheduler/workload.h"
#include "state/version_store.h"

namespace nse {
namespace {

const size_t kThreadCounts[] = {1, 2, 4, 8};

std::vector<uint64_t> FuzzSeeds() {
  std::vector<uint64_t> seeds;
  for (uint64_t s = 1; s <= FuzzSeedCount(3); ++s) seeds.push_back(s);
  return seeds;
}

/// Same workload family as the other differential harnesses (zero arrival
/// spread so both drivers see identical scripts).
Workload DrawWorkload(uint64_t seed) {
  Rng knobs = Rng(seed).Split(0);
  PartitionedWorkloadConfig config;
  config.num_partitions = 2 + knobs.NextBelow(4);       // 2..5
  config.items_per_partition = 1 + knobs.NextBelow(3);  // 1..3
  config.num_txns = 4 + knobs.NextBelow(7);             // 4..10
  config.partitions_per_txn = 1 + knobs.NextBelow(config.num_partitions);
  config.cross_read_probability = knobs.NextDouble();
  config.hotspot_probability = 0.3 * knobs.NextBelow(4);  // 0, .3, .6, .9
  config.arrival_spread = 0;
  config.seed = seed;
  auto workload = MakePartitionedWorkload(config);
  EXPECT_TRUE(workload.ok()) << workload.status();
  return std::move(workload).value();
}

EngineConfig FastEngineConfig(size_t threads) {
  EngineConfig config;
  config.threads = threads;
  config.wait_timeout_micros = 100;  // brisk deadlock-detector cadence
  config.backoff_unit_micros = 5;    // tiny workloads: short real sleeps
  return config;
}

bool ReadOnly(const TxnScript& script) {
  for (const AccessStep& step : script.steps) {
    if (step.action == OpAction::kWrite) return false;
  }
  return true;
}

uint64_t ScriptOps(const Workload& workload) {
  uint64_t total = 0;
  for (const TxnScript& script : workload.scripts) {
    total += script.steps.size();
  }
  return total;
}

/// Runs the mvsr checker with the driver's version annotations threaded
/// through AnalysisOptions and asserts the verdict.
void ExpectAnnotatedMvsr(const Workload& workload, const Schedule& schedule,
                         const std::vector<std::optional<TxnId>>& read_sources,
                         Verdict expected, std::string_view policy,
                         const std::string& where) {
  VersionAnnotations versions;
  versions.read_from = read_sources;
  AnalysisOptions options;
  options.versions = &versions;
  AnalysisContext ctx(schedule, options);
  auto result = CheckerRegistry::BuiltIn().Run("mvsr", ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->verdict, expected)
      << policy << " (" << where << "): " << result->ToString()
      << "\nschedule:\n"
      << schedule.ToString(workload.db);
}

/// Read-only transactions never restart under a multiversion policy.
void ExpectReadOnlyNeverRestarts(const Workload& workload,
                                 const std::vector<uint64_t>& txn_restarts,
                                 std::string_view policy,
                                 const std::string& where) {
  ASSERT_EQ(txn_restarts.size(), workload.scripts.size());
  for (size_t i = 0; i < workload.scripts.size(); ++i) {
    if (!ReadOnly(workload.scripts[i])) continue;
    EXPECT_EQ(txn_restarts[i], 0u)
        << policy << " (" << where << ") restarted read-only T" << i + 1;
  }
}

/// The version plane at quiescence: nothing uncommitted, every chain
/// truncated down to its single survivor.
void ExpectVersionPlaneQuiescent(const VersionStore& store,
                                 std::string_view policy,
                                 const std::string& where) {
  EXPECT_EQ(store.uncommitted_versions(), 0u)
      << policy << " (" << where << ") leaked uncommitted versions";
  EXPECT_LE(store.max_chain_length(), 1u)
      << policy << " (" << where << ") left untruncated chains";
}

/// Forward-progress ledger plus trace hygiene (engine runs).
void ExpectForwardProgress(const EngineResult& result, size_t num_txns,
                           size_t threads) {
  EXPECT_EQ(result.completed, num_txns)
      << "a transaction never committed at " << threads << " threads";
  std::set<TxnId> in_trace;
  for (const Operation& op : result.schedule.ops()) in_trace.insert(op.txn);
  EXPECT_LE(in_trace.size(), result.completed)
      << "trace holds operations of uncommitted transactions";
  EXPECT_EQ(result.threads, threads);
}

/// Runs the workload under a fresh policy per thread count and applies the
/// shared multiversion contracts; policy-specific checks at the call site.
template <typename MakePolicy,
          typename Policy =
              std::decay_t<decltype(*std::declval<MakePolicy>()())>>
void SweepThreads(
    const Workload& workload, MakePolicy make,
    const std::function<void(const Policy&, const EngineResult&,
                             const std::string&)>& checks) {
  for (size_t threads : kThreadCounts) {
    auto policy = make();
    auto result =
        RunEngine(*policy, workload.scripts, FastEngineConfig(threads));
    ASSERT_TRUE(result.ok()) << policy->name() << " at " << threads
                             << " threads: " << result.status();
    ExpectForwardProgress(*result, workload.scripts.size(), threads);
    const std::string where =
        "engine, " + std::to_string(threads) + " threads";
    // Multiversion policies never skip: the trace holds every scripted op.
    EXPECT_EQ(result->skipped_ops, 0u) << policy->name() << " " << where;
    EXPECT_EQ(result->total_ops, ScriptOps(workload))
        << policy->name() << " " << where;
    ExpectReadOnlyNeverRestarts(workload, result->txn_restarts,
                                policy->name(), where);
    checks(*policy, *result, where);
  }
}

class MvccDifferentialFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MvccDifferentialFuzz, MvtoKeepsPromisesAcrossThreads) {
  Workload workload = DrawWorkload(GetParam());
  const size_t n = workload.scripts.size();
  SweepThreads<std::function<std::unique_ptr<MvtoPolicy>()>, MvtoPolicy>(
      workload, [n] { return std::make_unique<MvtoPolicy>(n); },
      [&](const MvtoPolicy& policy, const EngineResult& result,
          const std::string& where) {
        // The promised class: MVSR, verified through the trace's version
        // annotations (not assumed from the policy's construction).
        ExpectAnnotatedMvsr(workload, result.schedule, result.read_sources,
                            Verdict::kSatisfied, policy.name(), where);
        EXPECT_EQ(policy.active_stamp_entries(), 0u) << where;
        ExpectVersionPlaneQuiescent(policy.store(), policy.name(), where);
      });
}

TEST_P(MvccDifferentialFuzz, SnapshotIsolationKeepsPromisesAcrossThreads) {
  Workload workload = DrawWorkload(GetParam());
  const size_t n = workload.scripts.size();
  SweepThreads<std::function<std::unique_ptr<SnapshotIsolationPolicy>()>,
               SnapshotIsolationPolicy>(
      workload,
      [n] { return std::make_unique<SnapshotIsolationPolicy>(n); },
      [&](const SnapshotIsolationPolicy& policy, const EngineResult& result,
          const std::string& where) {
        // SI's class promise is conditional: MVSR exactly when the VKN
        // robustness certificate holds for the committed transactions.
        if (CheckSiRobustness(result.schedule).robust) {
          ExpectAnnotatedMvsr(workload, result.schedule, result.read_sources,
                              Verdict::kSatisfied, policy.name(), where);
        }
        EXPECT_EQ(policy.active_snapshots(), 0u) << where;
        EXPECT_EQ(policy.pending_writes(), 0u) << where;
        EXPECT_EQ(policy.held_write_claims(), 0u) << where;
        ExpectVersionPlaneQuiescent(policy.store(), policy.name(), where);
      });
}

/// Bit-identical simulator replay, the multiversion fields included.
void ExpectBitIdenticalSim(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.aborts, b.aborts);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.skipped_ops, b.skipped_ops);
  EXPECT_EQ(a.committed_skipped_ops, b.committed_skipped_ops);
  EXPECT_EQ(a.total_wait_ticks, b.total_wait_ticks);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_TRUE(a.schedule.ops() == b.schedule.ops())
      << "same seed, different committed schedule";
  EXPECT_EQ(a.read_sources, b.read_sources);
  EXPECT_EQ(a.txn_restarts, b.txn_restarts);
}

TEST_P(MvccDifferentialFuzz, MvtoSimIsDeterministicAndMvsr) {
  Workload workload = DrawWorkload(GetParam());
  const size_t n = workload.scripts.size();

  MvtoPolicy policy(n);
  auto result = RunSimulation(policy, workload.scripts);
  ASSERT_TRUE(result.ok()) << result.status();
  MvtoPolicy replay_policy(n);
  auto replay = RunSimulation(replay_policy, workload.scripts);
  ASSERT_TRUE(replay.ok()) << replay.status();
  ExpectBitIdenticalSim(*result, *replay);

  EXPECT_EQ(result->completed, n);
  EXPECT_EQ(result->skipped_ops, 0u);  // the chain absorbs stale writes
  ExpectAnnotatedMvsr(workload, result->schedule, result->read_sources,
                      Verdict::kSatisfied, policy.name(), "sim");
  ExpectReadOnlyNeverRestarts(workload, result->txn_restarts, policy.name(),
                              "sim");
  EXPECT_EQ(policy.active_stamp_entries(), 0u);
  ExpectVersionPlaneQuiescent(policy.store(), policy.name(), "sim");
}

TEST_P(MvccDifferentialFuzz, SnapshotIsolationSimIsDeterministicAndGated) {
  Workload workload = DrawWorkload(GetParam());
  const size_t n = workload.scripts.size();

  SnapshotIsolationPolicy policy(n);
  auto result = RunSimulation(policy, workload.scripts);
  ASSERT_TRUE(result.ok()) << result.status();
  SnapshotIsolationPolicy replay_policy(n);
  auto replay = RunSimulation(replay_policy, workload.scripts);
  ASSERT_TRUE(replay.ok()) << replay.status();
  ExpectBitIdenticalSim(*result, *replay);

  EXPECT_EQ(result->completed, n);
  if (CheckSiRobustness(result->schedule).robust) {
    ExpectAnnotatedMvsr(workload, result->schedule, result->read_sources,
                        Verdict::kSatisfied, policy.name(), "sim");
  }
  ExpectReadOnlyNeverRestarts(workload, result->txn_restarts, policy.name(),
                              "sim");
  EXPECT_EQ(policy.active_snapshots(), 0u);
  EXPECT_EQ(policy.pending_writes(), 0u);
  EXPECT_EQ(policy.held_write_claims(), 0u);
  ExpectVersionPlaneQuiescent(policy.store(), policy.name(), "sim");
}

INSTANTIATE_TEST_SUITE_P(Seeds, MvccDifferentialFuzz,
                         ::testing::ValuesIn(FuzzSeeds()));

// ---- deterministic scenarios ------------------------------------------------

TxnScript Script(std::initializer_list<AccessStep> steps) {
  TxnScript s;
  s.steps = steps;
  return s;
}

AccessStep R(ItemId item) { return AccessStep{OpAction::kRead, item}; }
AccessStep W(ItemId item) { return AccessStep{OpAction::kWrite, item}; }

TEST(MvccScenarioTest, MvtoServesStaleReadsWhereToRestarts) {
  // T1 reads item 0 twice around T2's committed write. Single-version TO
  // must reject the second read (a younger write happened); MVTO serves
  // the old version from the chain and nobody restarts.
  const std::vector<TxnScript> scripts = {Script({R(0), R(0)}),
                                          Script({W(0)})};

  MvtoPolicy mvto(2);
  auto mv = RunSimulation(mvto, scripts);
  ASSERT_TRUE(mv.ok()) << mv.status();
  EXPECT_EQ(mv->completed, 2u);
  EXPECT_EQ(mv->restarts, 0u);
  EXPECT_EQ(mvto.rejections(), 0u);
  // Both reads observed the initial version, behind T2's newer write.
  for (size_t p = 0; p < mv->schedule.size(); ++p) {
    if (mv->schedule.at(p).is_read()) {
      ASSERT_TRUE(mv->read_sources[p].has_value());
      EXPECT_EQ(*mv->read_sources[p], 0u);
    }
  }

  TimestampOrderingPolicy to(2);
  auto sv = RunSimulation(to, scripts);
  ASSERT_TRUE(sv.ok()) << sv.status();
  EXPECT_EQ(sv->completed, 2u);
  EXPECT_GE(sv->restarts, 1u);  // the late read is fatal without versions
}

TEST(MvccScenarioTest, SnapshotIsolationAdmitsWriteSkewMvtoDoesNot) {
  // The canonical skew: both read {0, 1}, then T1 writes 0 and T2 writes
  // 1. Under SI both commit against the same snapshot — the trace is not
  // MVSR and the workload is exactly what the robustness test flags.
  const std::vector<TxnScript> scripts = {Script({R(0), R(1), W(0)}),
                                          Script({R(0), R(1), W(1)})};

  SnapshotIsolationPolicy si(2);
  auto si_result = RunSimulation(si, scripts);
  ASSERT_TRUE(si_result.ok()) << si_result.status();
  EXPECT_EQ(si_result->completed, 2u);
  EXPECT_EQ(si_result->restarts, 0u);  // disjoint write sets: no validation
  VersionAnnotations si_versions;
  si_versions.read_from = si_result->read_sources;
  MultiversionReport skew = CheckMvsr(si_result->schedule, si_versions);
  EXPECT_TRUE(skew.decided);
  EXPECT_FALSE(skew.satisfied);
  RobustnessReport robustness = CheckSiRobustness(si_result->schedule);
  EXPECT_FALSE(robustness.robust);
  ASSERT_TRUE(robustness.pivot.has_value());

  // MVTO pays a restart on the same scripts but stays serializable.
  MvtoPolicy mvto(2);
  auto mv_result = RunSimulation(mvto, scripts);
  ASSERT_TRUE(mv_result.ok()) << mv_result.status();
  EXPECT_EQ(mv_result->completed, 2u);
  EXPECT_GE(mv_result->restarts, 1u);
  VersionAnnotations mv_versions;
  mv_versions.read_from = mv_result->read_sources;
  MultiversionReport serializable =
      CheckMvsr(mv_result->schedule, mv_versions);
  EXPECT_TRUE(serializable.decided);
  EXPECT_TRUE(serializable.satisfied);
}

TEST(MvccScenarioTest, SnapshotIsolationFirstUpdaterWins) {
  // T2's write finds T1's claim, waits it out, then fails first-committer
  // validation against T1's committed version and restarts with a fresh
  // snapshot. The lost update is ruled out; both commit.
  const std::vector<TxnScript> scripts = {Script({W(0), W(1)}),
                                          Script({W(0)})};
  SnapshotIsolationPolicy si(2);
  auto result = RunSimulation(si, scripts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, 2u);
  EXPECT_GE(si.write_write_waits(), 1u);
  EXPECT_EQ(si.validation_aborts(), 1u);
  EXPECT_EQ(result->restarts, 1u);
  ExpectVersionPlaneQuiescent(si.store(), si.name(), "sim");
}

TEST(MvccScenarioTest, SnapshotIsolationReadersNeverWaitOrAbort) {
  // A write-storm on items {0, 1} concurrent with a read-only scan: the
  // scan reads its snapshot, never waits, never restarts.
  const std::vector<TxnScript> scripts = {Script({W(0), W(1), W(0)}),
                                          Script({R(0), R(1)})};
  SnapshotIsolationPolicy si(2);
  auto result = RunSimulation(si, scripts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, 2u);
  EXPECT_EQ(result->total_wait_ticks, 0u);  // nobody waits: disjoint claims
  ASSERT_EQ(result->txn_restarts.size(), 2u);
  EXPECT_EQ(result->txn_restarts[1], 0u);
  // The scan saw the pre-storm snapshot: both reads from the initial state.
  for (size_t p = 0; p < result->schedule.size(); ++p) {
    if (result->schedule.at(p).is_read()) {
      ASSERT_TRUE(result->read_sources[p].has_value());
      EXPECT_EQ(*result->read_sources[p], 0u);
    }
  }
}

TEST(MvccScenarioTest, MvtoReadOnlyScanWaitsOutWritersButNeverRestarts) {
  // The scan's stamp falls between the writers'; its reads must wait out
  // the in-flight version they are served (recoverability), but waiting is
  // the whole price: no read-only restart, and the trace is still MVSR.
  const std::vector<TxnScript> scripts = {Script({W(0), W(1)}),
                                          Script({R(0), R(1)}),
                                          Script({W(0), W(1)})};
  MvtoPolicy mvto(3);
  auto result = RunSimulation(mvto, scripts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, 3u);
  ASSERT_EQ(result->txn_restarts.size(), 3u);
  EXPECT_EQ(result->txn_restarts[1], 0u);
  EXPECT_GE(mvto.read_waits(), 1u);
  VersionAnnotations versions;
  versions.read_from = result->read_sources;
  MultiversionReport report = CheckMvsr(result->schedule, versions);
  EXPECT_TRUE(report.decided);
  EXPECT_TRUE(report.satisfied);
  ExpectVersionPlaneQuiescent(mvto.store(), mvto.name(), "sim");
}

}  // namespace
}  // namespace nse
