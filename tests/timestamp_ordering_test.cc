// Basic timestamp ordering: protocol-level unit tests (late reads / late
// writes rejected, Thomas write rule elides obsolete writes, restarts draw
// fresh stamps) and end-to-end runs pinning the structural invariants —
// TO never waits, never deadlocks, and the committed trace's conflict
// graph embeds in the final timestamp order (CSR by construction, the
// timestamp order a serialization order).

#include <gtest/gtest.h>

#include "analysis/conflict_graph.h"
#include "analysis/serializability.h"
#include "scheduler/fault_injection.h"
#include "scheduler/sim.h"
#include "scheduler/timestamp_ordering.h"
#include "scheduler/workload.h"

namespace nse {
namespace {

TxnScript Script(std::vector<AccessStep> steps) {
  TxnScript script;
  script.steps = std::move(steps);
  return script;
}

TEST(TimestampOrderingTest, AssignsStampsInFirstAccessOrder) {
  TimestampOrderingPolicy policy(2);
  TxnScript t1 = Script({{OpAction::kWrite, 0}});
  TxnScript t2 = Script({{OpAction::kWrite, 1}});
  EXPECT_FALSE(policy.timestamp(1).has_value());
  EXPECT_EQ(Access(policy, 2, t2, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);
  EXPECT_EQ(policy.timestamp(2), 1u);  // first to run is oldest
  EXPECT_EQ(policy.timestamp(1), 2u);
}

TEST(TimestampOrderingTest, RejectsLateReadAgainstYoungerWrite) {
  // T1 starts (older), T2 writes x, then T1 reads x: the read arrives too
  // late — a younger transaction already wrote the item.
  TimestampOrderingPolicy policy(2);
  TxnScript t1 = Script({{OpAction::kWrite, 5}, {OpAction::kRead, 0}});
  TxnScript t2 = Script({{OpAction::kWrite, 0}});
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 2, t2, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 1, t1, 1), AccessVerdict::kAbortSelf);
  EXPECT_EQ(policy.rejections(), 1u);
  // The restarted incarnation draws a fresh, larger stamp and passes.
  policy.Abort(1);
  EXPECT_FALSE(policy.timestamp(1).has_value());
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);
  EXPECT_GT(*policy.timestamp(1), *policy.timestamp(2));
  EXPECT_EQ(Access(policy, 1, t1, 1), AccessVerdict::kGranted);
}

TEST(TimestampOrderingTest, CommittedStampsStillRejectStragglers) {
  // Commit folds per-entry stamps into the item's committed maxima; the
  // checks against a committed younger writer/reader must be unchanged.
  TimestampOrderingPolicy policy(3);
  TxnScript t1 = Script({{OpAction::kWrite, 5}, {OpAction::kRead, 0},
                         {OpAction::kWrite, 1}});
  TxnScript t2 = Script({{OpAction::kWrite, 0}, {OpAction::kRead, 1}});
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);  // ts 1
  EXPECT_EQ(Access(policy, 2, t2, 0), AccessVerdict::kGranted);  // ts 2
  EXPECT_EQ(Access(policy, 2, t2, 1), AccessVerdict::kGranted);
  policy.Commit(2);
  // Old T1 reads the item committed-younger-written, and writes the item
  // committed-younger-read: both still fatal after the fold.
  EXPECT_EQ(Access(policy, 1, t1, 1), AccessVerdict::kAbortSelf);
  policy.Abort(1);
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);  // ts 3
  EXPECT_EQ(Access(policy, 1, t1, 1), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 1, t1, 2), AccessVerdict::kGranted);
  EXPECT_EQ(policy.rejections(), 1u);
}

TEST(TimestampOrderingTest, RejectsLateWriteAgainstYoungerRead) {
  TimestampOrderingPolicy policy(2);
  TxnScript t1 = Script({{OpAction::kWrite, 5}, {OpAction::kWrite, 0}});
  TxnScript t2 = Script({{OpAction::kRead, 0}});
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 2, t2, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 1, t1, 1), AccessVerdict::kAbortSelf);
  EXPECT_EQ(policy.rejections(), 1u);
  EXPECT_EQ(policy.skipped_writes(), 0u);
}

TEST(TimestampOrderingTest, ThomasWriteRuleSkipsObsoleteWrite) {
  TimestampOrderingPolicy::Options options;
  options.thomas_write_rule = true;
  TimestampOrderingPolicy policy(2, options);
  EXPECT_EQ(policy.name(), "to+thomas");
  TxnScript t1 = Script({{OpAction::kWrite, 5}, {OpAction::kWrite, 0}});
  TxnScript t2 = Script({{OpAction::kWrite, 0}});
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 2, t2, 0), AccessVerdict::kGranted);
  // T1's write of x lost to T2's newer write and nobody younger read x:
  // elide it instead of restarting.
  EXPECT_EQ(Access(policy, 1, t1, 1), AccessVerdict::kSkip);
  EXPECT_EQ(policy.skipped_writes(), 1u);
  EXPECT_EQ(policy.rejections(), 0u);
  // Without the toggle the same access is fatal.
  TimestampOrderingPolicy basic(2);
  EXPECT_EQ(Access(basic, 1, t1, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(basic, 2, t2, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(basic, 1, t1, 1), AccessVerdict::kAbortSelf);
}

TEST(TimestampOrderingTest, OwnAccessesNeverConflict) {
  TimestampOrderingPolicy policy(1);
  TxnScript t1 = Script({{OpAction::kWrite, 0},
                         {OpAction::kRead, 0},
                         {OpAction::kWrite, 0}});
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 1, t1, 1), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 1, t1, 2), AccessVerdict::kGranted);
  EXPECT_EQ(policy.rejections(), 0u);
}

TEST(TimestampOrderingTest, RepeatedOnAbortIsIdempotent) {
  // Crash-at-op can re-abort a transaction whose stamps are already gone:
  // the repeat must be a no-op that leaves the survivors' entries (and the
  // committed maxima) untouched.
  TimestampOrderingPolicy policy(2);
  TxnScript t1 = Script({{OpAction::kWrite, 0}});
  TxnScript t2 = Script({{OpAction::kWrite, 1}});
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);
  EXPECT_EQ(Access(policy, 2, t2, 0), AccessVerdict::kGranted);
  EXPECT_EQ(policy.active_stamp_entries(), 2u);

  policy.Abort(1);
  EXPECT_FALSE(policy.timestamp(1).has_value());
  EXPECT_EQ(policy.active_stamp_entries(), 1u);  // T2's entry survives
  policy.Abort(1);  // already retracted
  policy.Abort(1);
  EXPECT_EQ(policy.active_stamp_entries(), 1u);
  EXPECT_TRUE(policy.timestamp(2).has_value());

  policy.Commit(2);
  EXPECT_EQ(policy.active_stamp_entries(), 0u);  // folded at commit
}

TEST(TimestampOrderingTest, FaultDrivenRestartsDrawFreshStampsAndRetract) {
  // Injected client aborts and crashes ride the same OnAbort path as
  // rejections: every restarted incarnation draws a fresh larger stamp
  // (the committed conflict graph still embeds in timestamp order) and
  // every aborted incarnation's stamp entries are erased — zero active
  // entries at quiescence.
  PartitionedWorkloadConfig config;
  config.num_partitions = 3;
  config.items_per_partition = 2;
  config.num_txns = 8;
  config.partitions_per_txn = 2;
  config.hotspot_probability = 0.7;
  config.seed = 11;
  auto workload = MakePartitionedWorkload(config);
  ASSERT_TRUE(workload.ok()) << workload.status();

  FaultPlanConfig fc;
  fc.seed = 29;
  fc.client_abort_probability = 0.7;
  fc.crash_probability = 0.25;
  FaultPlan plan(fc);
  EngineConfig sim_config;
  sim_config.faults = &plan;

  TimestampOrderingPolicy policy(workload->scripts.size());
  auto result = RunSimulation(policy, workload->scripts, sim_config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->fault_aborts, 0u);
  EXPECT_EQ(result->completed + result->crashes, workload->scripts.size());
  EXPECT_EQ(result->total_wait_ticks, 0u);  // TO still never waits
  EXPECT_EQ(policy.active_stamp_entries(), 0u);
  ConflictGraph graph = ConflictGraph::Build(result->schedule);
  for (const auto& [from, to] : graph.Edges()) {
    ASSERT_TRUE(policy.timestamp(from).has_value());
    ASSERT_TRUE(policy.timestamp(to).has_value());
    EXPECT_LT(*policy.timestamp(from), *policy.timestamp(to))
        << "conflict edge T" << from << " -> T" << to
        << " against timestamp order under faults";
  }
}

class ToWorkloadTest : public ::testing::TestWithParam<bool> {};

TEST_P(ToWorkloadTest, CommitsCsrTracesEmbeddedInTimestampOrder) {
  const bool thomas = GetParam();
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    PartitionedWorkloadConfig config;
    config.num_partitions = 4;
    config.items_per_partition = 2;
    config.num_txns = 8;
    config.partitions_per_txn = 3;
    config.cross_read_probability = 0.4;
    config.hotspot_probability = 0.6;
    config.seed = seed;
    auto workload = MakePartitionedWorkload(config);
    ASSERT_TRUE(workload.ok()) << workload.status();

    TimestampOrderingPolicy::Options options;
    options.thomas_write_rule = thomas;
    TimestampOrderingPolicy policy(workload->scripts.size(), options);
    auto result = RunSimulation(policy, workload->scripts);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->completed, workload->scripts.size());
    EXPECT_TRUE(IsConflictSerializable(result->schedule))
        << result->schedule.ToString(workload->db);

    // TO never waits or deadlocks; its whole cost is restarts (and, with
    // Thomas, elided writes).
    EXPECT_EQ(result->aborts, 0u);
    EXPECT_EQ(result->total_wait_ticks, 0u);
    EXPECT_EQ(result->restarts, policy.rejections());
    EXPECT_EQ(result->skipped_ops, policy.skipped_writes());
    if (!thomas) EXPECT_EQ(result->skipped_ops, 0u);

    // The structural invariant: every conflict edge of the committed trace
    // points from a smaller final timestamp to a larger one — the
    // timestamp order is a serialization order.
    ConflictGraph graph = ConflictGraph::Build(result->schedule);
    for (const auto& [from, to] : graph.Edges()) {
      ASSERT_TRUE(policy.timestamp(from).has_value());
      ASSERT_TRUE(policy.timestamp(to).has_value());
      EXPECT_LT(*policy.timestamp(from), *policy.timestamp(to))
          << "conflict edge T" << from << " -> T" << to
          << " against timestamp order, seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BasicAndThomas, ToWorkloadTest, ::testing::Bool());

}  // namespace
}  // namespace nse
