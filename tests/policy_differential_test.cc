// Policy-vs-checker differential fuzz harness: the oracle loop of Nagar &
// Jagannathan ("Automated Detection of Serializability Violations under
// Weak Consistency") and Biswas & Enea ("On the Complexity of Checking
// Transactional Consistency") turned into a ctest suite. For K seeds, a
// randomized workload sweep (contention via the hot-spot knob, transaction
// count, script length, arrival spread) is run under every scheduler
// policy, and the committed schedule is fed to the *independent* checkers
// behind CheckerRegistry — each policy's output must land in the class it
// promises:
//
//   strict 2PL   ->  CSR ∧ strict (hence DR)
//   SGT          ->  CSR (by construction: cycle vetoes)
//   PW-2PL       ->  PWSR
//   PW-2PL + DR  ->  PWSR ∧ DR
//
// The default seed count keeps the tier-1 wall time flat; the fuzz-labeled
// ctest entry re-runs the suite with NSE_FUZZ_SEEDS extra seeds in CI.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analysis_context.h"
#include "analysis/checker.h"
#include "common/rng.h"
#include "fuzz_env.h"
#include "scheduler/dr_scheduler.h"
#include "scheduler/pw_two_phase_locking.h"
#include "scheduler/sgt_policy.h"
#include "scheduler/sim.h"
#include "scheduler/two_phase_locking.h"
#include "scheduler/workload.h"

namespace nse {
namespace {

std::vector<uint64_t> FuzzSeeds() {
  std::vector<uint64_t> seeds;
  for (uint64_t s = 1; s <= FuzzSeedCount(6); ++s) seeds.push_back(s);
  return seeds;
}

/// One randomized point of the workload sweep, drawn from the seed's own
/// sub-streams so every knob varies independently across seeds.
Workload DrawWorkload(uint64_t seed) {
  Rng knobs = Rng(seed).Split(0);
  PartitionedWorkloadConfig config;
  config.num_partitions = 2 + knobs.NextBelow(4);           // 2..5
  config.items_per_partition = 1 + knobs.NextBelow(3);      // 1..3
  config.num_txns = 4 + knobs.NextBelow(7);                 // 4..10
  config.partitions_per_txn =
      1 + knobs.NextBelow(config.num_partitions);           // script length
  config.cross_read_probability = knobs.NextDouble();
  config.hotspot_probability = 0.3 * knobs.NextBelow(4);    // 0, .3, .6, .9
  config.arrival_spread = knobs.NextBelow(3) * 4;           // 0, 4, 8
  config.seed = seed;
  auto workload = MakePartitionedWorkload(config);
  EXPECT_TRUE(workload.ok()) << workload.status();
  return std::move(workload).value();
}

/// Runs `checker_name` from the built-in registry against the committed
/// schedule and asserts it is satisfied.
void ExpectClass(const Workload& workload, const Schedule& schedule,
                 std::string_view checker_name, std::string_view policy) {
  AnalysisContext ctx(*workload.ic, schedule);
  auto result = CheckerRegistry::BuiltIn().Run(checker_name, ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->verdict, Verdict::kSatisfied)
      << policy << " broke its " << checker_name
      << " promise: " << result->ToString() << "\nschedule:\n"
      << schedule.ToString(workload.db);
}

class PolicyDifferentialFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PolicyDifferentialFuzz, Strict2plCommitsCsrStrictSchedules) {
  Workload workload = DrawWorkload(GetParam());
  StrictTwoPhaseLocking policy;
  auto result = RunSimulation(policy, workload.scripts);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->completed, workload.scripts.size());
  ExpectClass(workload, result->schedule, "csr", policy.name());
  ExpectClass(workload, result->schedule, "delayed-read", policy.name());
  AnalysisContext strict_ctx(*workload.ic, result->schedule);
  EXPECT_TRUE(strict_ctx.strict());
}

TEST_P(PolicyDifferentialFuzz, SgtCommitsCsrSchedules) {
  Workload workload = DrawWorkload(GetParam());
  SgtPolicy policy(workload.scripts.size());
  auto result = RunSimulation(policy, workload.scripts);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->completed, workload.scripts.size());
  ExpectClass(workload, result->schedule, "csr", policy.name());
  // Abort-restart hygiene: whatever restarted left no residual edges — the
  // live graph equals the committed trace's conflict graph.
  EXPECT_FALSE(policy.graph().has_cycle());
  EXPECT_EQ(policy.graph().Edges(),
            ConflictGraph::Build(result->schedule).Edges());
}

TEST_P(PolicyDifferentialFuzz, Pw2plCommitsPwsrSchedules) {
  Workload workload = DrawWorkload(GetParam());
  PredicatewiseTwoPhaseLocking policy(&*workload.ic);
  auto result = RunSimulation(policy, workload.scripts);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->completed, workload.scripts.size());
  ExpectClass(workload, result->schedule, "pwsr", policy.name());
}

TEST_P(PolicyDifferentialFuzz, DrSchedulerCommitsPwsrDrSchedules) {
  Workload workload = DrawWorkload(GetParam());
  DelayedReadScheduler policy(&*workload.ic);
  auto result = RunSimulation(policy, workload.scripts);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->completed, workload.scripts.size());
  ExpectClass(workload, result->schedule, "pwsr", policy.name());
  ExpectClass(workload, result->schedule, "delayed-read", policy.name());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyDifferentialFuzz,
                         ::testing::ValuesIn(FuzzSeeds()));

}  // namespace
}  // namespace nse
