// Policy-vs-checker differential fuzz harness: the oracle loop of Nagar &
// Jagannathan ("Automated Detection of Serializability Violations under
// Weak Consistency") and Biswas & Enea ("On the Complexity of Checking
// Transactional Consistency") turned into a ctest suite. For K seeds, a
// randomized workload sweep (contention via the hot-spot knob, transaction
// count, script length, arrival spread) is run under every scheduler
// policy, and the committed schedule is fed to the *independent* checkers
// behind CheckerRegistry — each policy's output must land in the class it
// promises:
//
//   strict 2PL   ->  CSR ∧ strict (hence DR)
//   wound-wait   ->  CSR ∧ strict, zero deadlocks (priority 2PL)
//   wait-die     ->  CSR ∧ strict, zero deadlocks (priority 2PL)
//   SGT          ->  CSR (by construction: cycle vetoes)
//   SGT-victim   ->  CSR, cheapest-participant veto resolution
//   TO (±Thomas) ->  CSR, conflict edges embed in timestamp order
//   PW-2PL       ->  PWSR
//   PW-2PL + DR  ->  PWSR ∧ DR
//
// Each new family also carries its structural invariant per seed — the
// priority protocols never trip the deadlock-victim machinery, TO never
// waits and its committed conflict graph embeds in the final timestamp
// order, SGT-victim leaves no residual edges and every wound strictly
// saves work — while the cross-run restart-economics comparison against
// baseline SGT lives in PolicyInvariantFuzz (aggregated over the sweep:
// whole-run counters of two different schedulers diverge chaotically, so
// seed-for-seed deltas are not a stable invariant, but every prefix sum
// of the sweep is).
//
// The default seed count keeps the tier-1 wall time flat; the fuzz-labeled
// ctest entries re-run the suites with NSE_FUZZ_SEEDS extra seeds in CI.

#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analysis_context.h"
#include "analysis/checker.h"
#include "analysis/conflict_graph.h"
#include "common/rng.h"
#include "fuzz_env.h"
#include "scheduler/dr_scheduler.h"
#include "scheduler/priority_locking.h"
#include "scheduler/pw_two_phase_locking.h"
#include "scheduler/sgt_policy.h"
#include "scheduler/sgt_victim_policy.h"
#include "scheduler/sim.h"
#include "scheduler/timestamp_ordering.h"
#include "scheduler/two_phase_locking.h"
#include "scheduler/workload.h"

namespace nse {
namespace {

std::vector<uint64_t> FuzzSeeds() {
  std::vector<uint64_t> seeds;
  for (uint64_t s = 1; s <= FuzzSeedCount(6); ++s) seeds.push_back(s);
  return seeds;
}

/// One randomized point of the workload sweep, drawn from the seed's own
/// sub-streams so every knob varies independently across seeds.
Workload DrawWorkload(uint64_t seed) {
  Rng knobs = Rng(seed).Split(0);
  PartitionedWorkloadConfig config;
  config.num_partitions = 2 + knobs.NextBelow(4);           // 2..5
  config.items_per_partition = 1 + knobs.NextBelow(3);      // 1..3
  config.num_txns = 4 + knobs.NextBelow(7);                 // 4..10
  config.partitions_per_txn =
      1 + knobs.NextBelow(config.num_partitions);           // script length
  config.cross_read_probability = knobs.NextDouble();
  config.hotspot_probability = 0.3 * knobs.NextBelow(4);    // 0, .3, .6, .9
  config.arrival_spread = knobs.NextBelow(3) * 4;           // 0, 4, 8
  config.seed = seed;
  auto workload = MakePartitionedWorkload(config);
  EXPECT_TRUE(workload.ok()) << workload.status();
  return std::move(workload).value();
}

/// Runs `checker_name` from the built-in registry against the committed
/// schedule and asserts it is satisfied.
void ExpectClass(const Workload& workload, const Schedule& schedule,
                 std::string_view checker_name, std::string_view policy) {
  AnalysisContext ctx(*workload.ic, schedule);
  auto result = CheckerRegistry::BuiltIn().Run(checker_name, ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->verdict, Verdict::kSatisfied)
      << policy << " broke its " << checker_name
      << " promise: " << result->ToString() << "\nschedule:\n"
      << schedule.ToString(workload.db);
}

class PolicyDifferentialFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PolicyDifferentialFuzz, Strict2plCommitsCsrStrictSchedules) {
  Workload workload = DrawWorkload(GetParam());
  StrictTwoPhaseLocking policy;
  auto result = RunSimulation(policy, workload.scripts);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->completed, workload.scripts.size());
  ExpectClass(workload, result->schedule, "csr", policy.name());
  ExpectClass(workload, result->schedule, "delayed-read", policy.name());
  AnalysisContext strict_ctx(*workload.ic, result->schedule);
  EXPECT_TRUE(strict_ctx.strict());
}

TEST_P(PolicyDifferentialFuzz, SgtCommitsCsrSchedules) {
  Workload workload = DrawWorkload(GetParam());
  SgtPolicy policy(workload.scripts.size());
  auto result = RunSimulation(policy, workload.scripts);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->completed, workload.scripts.size());
  ExpectClass(workload, result->schedule, "csr", policy.name());
  // Abort-restart hygiene: whatever restarted left no residual edges — the
  // live graph equals the committed trace's conflict graph.
  EXPECT_FALSE(policy.graph().has_cycle());
  EXPECT_EQ(policy.graph().Edges(),
            ConflictGraph::Build(result->schedule).Edges());
}

TEST_P(PolicyDifferentialFuzz, SgtVictimCommitsCsrSchedules) {
  Workload workload = DrawWorkload(GetParam());
  SgtVictimPolicy policy(workload.scripts.size());
  auto result = RunSimulation(policy, workload.scripts);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->completed, workload.scripts.size());
  ExpectClass(workload, result->schedule, "csr", policy.name());
  // Same quiescence contract as baseline SGT, wounds notwithstanding.
  EXPECT_FALSE(policy.graph().has_cycle());
  EXPECT_EQ(policy.graph().Edges(),
            ConflictGraph::Build(result->schedule).Edges());
  // Every wound chose a strictly cheaper victim than the requester.
  EXPECT_EQ(result->wounds, policy.wounds_requested());
  EXPECT_GE(policy.wound_savings(), policy.wounds_requested());
}

TEST_P(PolicyDifferentialFuzz, WoundWaitCommitsCsrStrictWithoutDeadlocks) {
  Workload workload = DrawWorkload(GetParam());
  WoundWaitPolicy policy(workload.scripts.size());
  auto result = RunSimulation(policy, workload.scripts);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->completed, workload.scripts.size());
  ExpectClass(workload, result->schedule, "csr", policy.name());
  ExpectClass(workload, result->schedule, "delayed-read", policy.name());
  AnalysisContext strict_ctx(*workload.ic, result->schedule);
  EXPECT_TRUE(strict_ctx.strict());
  // Deadlock-free by construction: waits only ever point young -> old, so
  // the simulator's victim machinery must never fire.
  EXPECT_EQ(result->aborts, 0u);
  EXPECT_EQ(result->restarts, 0u);  // wound-wait never self-aborts
  EXPECT_EQ(result->wounds, policy.wounds_issued());
}

TEST_P(PolicyDifferentialFuzz, WaitDieCommitsCsrStrictWithoutDeadlocks) {
  Workload workload = DrawWorkload(GetParam());
  WaitDiePolicy policy(workload.scripts.size());
  auto result = RunSimulation(policy, workload.scripts);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->completed, workload.scripts.size());
  ExpectClass(workload, result->schedule, "csr", policy.name());
  ExpectClass(workload, result->schedule, "delayed-read", policy.name());
  AnalysisContext strict_ctx(*workload.ic, result->schedule);
  EXPECT_TRUE(strict_ctx.strict());
  // Deadlock-free by construction: waits only ever point old -> young.
  EXPECT_EQ(result->aborts, 0u);
  EXPECT_EQ(result->wounds, 0u);  // wait-die victims are always requesters
  EXPECT_EQ(result->restarts, policy.deaths());
}

class ToDifferentialFuzz
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

TEST_P(ToDifferentialFuzz, ToCommitsCsrSchedulesEmbeddedInTimestampOrder) {
  const auto [seed, thomas] = GetParam();
  Workload workload = DrawWorkload(seed);
  TimestampOrderingPolicy::Options options;
  options.thomas_write_rule = thomas;
  TimestampOrderingPolicy policy(workload.scripts.size(), options);
  auto result = RunSimulation(policy, workload.scripts);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->completed, workload.scripts.size());
  ExpectClass(workload, result->schedule, "csr", policy.name());
  // TO never blocks: no waits, no deadlocks; restarts are its whole cost.
  EXPECT_EQ(result->aborts, 0u);
  EXPECT_EQ(result->total_wait_ticks, 0u);
  EXPECT_EQ(result->restarts, policy.rejections());
  EXPECT_EQ(result->skipped_ops, policy.skipped_writes());
  if (!thomas) EXPECT_EQ(result->skipped_ops, 0u);
  // Structural invariant: the committed conflict graph embeds in the final
  // timestamp order — the timestamp order is a serialization order.
  ConflictGraph graph = ConflictGraph::Build(result->schedule);
  for (const auto& [from, to] : graph.Edges()) {
    ASSERT_TRUE(policy.timestamp(from).has_value());
    ASSERT_TRUE(policy.timestamp(to).has_value());
    EXPECT_LT(*policy.timestamp(from), *policy.timestamp(to))
        << policy.name() << " conflict edge T" << from << " -> T" << to
        << " against timestamp order, seed " << seed << "\nschedule:\n"
        << result->schedule.ToString(workload.db);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ToDifferentialFuzz,
    ::testing::Combine(::testing::ValuesIn(FuzzSeeds()), ::testing::Bool()));

TEST_P(PolicyDifferentialFuzz, Pw2plCommitsPwsrSchedules) {
  Workload workload = DrawWorkload(GetParam());
  PredicatewiseTwoPhaseLocking policy(&*workload.ic);
  auto result = RunSimulation(policy, workload.scripts);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->completed, workload.scripts.size());
  ExpectClass(workload, result->schedule, "pwsr", policy.name());
}

TEST_P(PolicyDifferentialFuzz, DrSchedulerCommitsPwsrDrSchedules) {
  Workload workload = DrawWorkload(GetParam());
  DelayedReadScheduler policy(&*workload.ic);
  auto result = RunSimulation(policy, workload.scripts);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->completed, workload.scripts.size());
  ExpectClass(workload, result->schedule, "pwsr", policy.name());
  ExpectClass(workload, result->schedule, "delayed-read", policy.name());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyDifferentialFuzz,
                         ::testing::ValuesIn(FuzzSeeds()));

// Cross-run invariants that only make sense across the whole seed sweep.
// Whole-run counters of two *different* schedulers diverge chaotically
// after their first differing decision (a wound changes every subsequent
// tick), so a seed-for-seed inequality is not a stable property — but the
// running sums over the sweep are: the victim policy's aggregate rollback
// and self-restart counts stay at or below baseline SGT's at every prefix
// of the seed range (verified far beyond the CI seed counts), which is
// what "fewer restarts on the same seeds" means here.
TEST(PolicyInvariantFuzz, SgtVictimRestartEconomicsDominateBaseline) {
  uint64_t victim_rollbacks = 0, baseline_rollbacks = 0;
  uint64_t victim_restarts = 0, baseline_restarts = 0;
  uint64_t wounds = 0;
  for (uint64_t seed : FuzzSeeds()) {
    Workload workload = DrawWorkload(seed);

    SgtPolicy baseline(workload.scripts.size());
    auto base = RunSimulation(baseline, workload.scripts);
    ASSERT_TRUE(base.ok()) << base.status();

    SgtVictimPolicy policy(workload.scripts.size());
    auto result = RunSimulation(policy, workload.scripts);
    ASSERT_TRUE(result.ok()) << result.status();

    victim_rollbacks += result->restarts + result->wounds + result->aborts;
    baseline_rollbacks += base->restarts + base->aborts;
    victim_restarts += result->restarts;
    baseline_restarts += base->restarts;
    wounds += result->wounds;

    // The running sums dominate at *every* prefix of the sweep, not just
    // its end — a much stronger pin than one final comparison.
    ASSERT_LE(victim_rollbacks, baseline_rollbacks)
        << "aggregate rollbacks overtook baseline at seed " << seed;
    ASSERT_LE(victim_restarts, baseline_restarts)
        << "aggregate self-restarts overtook baseline at seed " << seed;
  }
  // The sweep exercised the wound path (victim choice actually differed
  // from the baseline's requester-restart).
  EXPECT_GT(wounds, 0u);
}

}  // namespace
}  // namespace nse
