#include "scheduler/sim.h"

#include <gtest/gtest.h>

#include "analysis/delayed_read.h"
#include "analysis/serializability.h"
#include "scheduler/two_phase_locking.h"

namespace nse {
namespace {

TxnScript Script(std::initializer_list<AccessStep> steps,
                 uint64_t arrival = 0) {
  TxnScript s;
  s.steps = steps;
  s.arrival_tick = arrival;
  return s;
}

AccessStep R(ItemId item) { return AccessStep{OpAction::kRead, item}; }
AccessStep W(ItemId item) { return AccessStep{OpAction::kWrite, item}; }

TEST(SimTest, SingleTransactionRunsToCompletion) {
  StrictTwoPhaseLocking policy;
  auto result = RunSimulation(policy, {Script({R(0), W(1)})});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, 1u);
  EXPECT_EQ(result->total_ops, 2u);
  EXPECT_EQ(result->aborts, 0u);
  EXPECT_EQ(result->schedule.size(), 2u);
}

TEST(SimTest, DisjointTransactionsRunConcurrently) {
  StrictTwoPhaseLocking policy;
  // Two 4-op transactions on disjoint items: makespan ≈ 4, not 8.
  auto result = RunSimulation(
      policy, {Script({R(0), W(0), R(1), W(1)}),
               Script({R(2), W(2), R(3), W(3)})});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->completed, 2u);
  EXPECT_LE(result->makespan, 5u);
  EXPECT_EQ(result->total_wait_ticks, 0u);
}

TEST(SimTest, ConflictingTransactionsSerialize) {
  StrictTwoPhaseLocking policy;
  // Both write item 0 first: the second blocks until the first commits.
  auto result = RunSimulation(
      policy, {Script({W(0), R(1), W(2)}), Script({W(0), R(3), W(4)})});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->completed, 2u);
  EXPECT_GT(result->total_wait_ticks, 0u);
  EXPECT_TRUE(IsConflictSerializable(result->schedule));
  EXPECT_TRUE(IsStrict(result->schedule));
}

TEST(SimTest, DeadlockDetectedAndResolved) {
  StrictTwoPhaseLocking policy;
  // T1: W(0) then W(1); T2: W(1) then W(0) — classic deadlock.
  auto result =
      RunSimulation(policy, {Script({W(0), W(1)}), Script({W(1), W(0)})});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, 2u);
  EXPECT_GE(result->aborts, 1u);
  // The committed trace contains each transaction's ops exactly once.
  EXPECT_EQ(result->schedule.size(), 4u);
  EXPECT_TRUE(IsConflictSerializable(result->schedule));
}

TEST(SimTest, ArrivalTimesRespected) {
  StrictTwoPhaseLocking policy;
  auto result = RunSimulation(
      policy, {Script({R(0)}, /*arrival=*/0), Script({R(1)}, /*arrival=*/10)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->completed, 2u);
  EXPECT_GE(result->makespan, 11u);
}

TEST(SimTest, EmptyScriptCompletesImmediately) {
  StrictTwoPhaseLocking policy;
  auto result = RunSimulation(policy, {Script({})});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->completed, 1u);
  EXPECT_EQ(result->total_ops, 0u);
}

TEST(SimTest, NoTransactions) {
  StrictTwoPhaseLocking policy;
  auto result = RunSimulation(policy, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->completed, 0u);
  EXPECT_EQ(result->makespan, 0u);
}

TEST(SimTest, MaxTicksGuard) {
  StrictTwoPhaseLocking policy;
  SimConfig config;
  config.max_ticks = 1;
  auto result = RunSimulation(
      policy, {Script({R(0), R(1), R(2)}), Script({R(3), R(4), R(5)})},
      config);
  EXPECT_FALSE(result.ok());
}

TEST(SimTest, MetricsAreInternallyConsistent) {
  StrictTwoPhaseLocking policy;
  auto result = RunSimulation(
      policy, {Script({W(0), W(1)}), Script({W(0), W(2)}),
               Script({R(3), R(4)})});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->completed, 3u);
  EXPECT_GT(result->throughput, 0.0);
  EXPECT_GE(result->avg_response_ticks, 1.0);
  EXPECT_EQ(result->total_ops, result->schedule.size());
}

}  // namespace
}  // namespace nse
