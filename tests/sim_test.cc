#include "scheduler/sim.h"

#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/delayed_read.h"
#include "analysis/serializability.h"
#include "scheduler/two_phase_locking.h"

namespace nse {
namespace {

TxnScript Script(std::initializer_list<AccessStep> steps,
                 uint64_t arrival = 0) {
  TxnScript s;
  s.steps = steps;
  s.arrival_tick = arrival;
  return s;
}

AccessStep R(ItemId item) { return AccessStep{OpAction::kRead, item}; }
AccessStep W(ItemId item) { return AccessStep{OpAction::kWrite, item}; }

TEST(SimTest, SingleTransactionRunsToCompletion) {
  StrictTwoPhaseLocking policy;
  auto result = RunSimulation(policy, {Script({R(0), W(1)})});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, 1u);
  EXPECT_EQ(result->total_ops, 2u);
  EXPECT_EQ(result->aborts, 0u);
  EXPECT_EQ(result->schedule.size(), 2u);
}

TEST(SimTest, DisjointTransactionsRunConcurrently) {
  StrictTwoPhaseLocking policy;
  // Two 4-op transactions on disjoint items: makespan ≈ 4, not 8.
  auto result = RunSimulation(
      policy, {Script({R(0), W(0), R(1), W(1)}),
               Script({R(2), W(2), R(3), W(3)})});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->completed, 2u);
  EXPECT_LE(result->makespan, 5u);
  EXPECT_EQ(result->total_wait_ticks, 0u);
}

TEST(SimTest, ConflictingTransactionsSerialize) {
  StrictTwoPhaseLocking policy;
  // Both write item 0 first: the second blocks until the first commits.
  auto result = RunSimulation(
      policy, {Script({W(0), R(1), W(2)}), Script({W(0), R(3), W(4)})});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->completed, 2u);
  EXPECT_GT(result->total_wait_ticks, 0u);
  EXPECT_TRUE(IsConflictSerializable(result->schedule));
  EXPECT_TRUE(IsStrict(result->schedule));
}

TEST(SimTest, DeadlockDetectedAndResolved) {
  StrictTwoPhaseLocking policy;
  // T1: W(0) then W(1); T2: W(1) then W(0) — classic deadlock.
  auto result =
      RunSimulation(policy, {Script({W(0), W(1)}), Script({W(1), W(0)})});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, 2u);
  EXPECT_GE(result->aborts, 1u);
  // The committed trace contains each transaction's ops exactly once.
  EXPECT_EQ(result->schedule.size(), 4u);
  EXPECT_TRUE(IsConflictSerializable(result->schedule));
}

TEST(SimTest, ArrivalTimesRespected) {
  StrictTwoPhaseLocking policy;
  auto result = RunSimulation(
      policy, {Script({R(0)}, /*arrival=*/0), Script({R(1)}, /*arrival=*/10)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->completed, 2u);
  EXPECT_GE(result->makespan, 11u);
}

TEST(SimTest, EmptyScriptCompletesImmediately) {
  StrictTwoPhaseLocking policy;
  auto result = RunSimulation(policy, {Script({})});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->completed, 1u);
  EXPECT_EQ(result->total_ops, 0u);
}

TEST(SimTest, NoTransactions) {
  StrictTwoPhaseLocking policy;
  auto result = RunSimulation(policy, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->completed, 0u);
  EXPECT_EQ(result->makespan, 0u);
}

TEST(SimTest, MaxTicksGuard) {
  StrictTwoPhaseLocking policy;
  EngineConfig config;
  config.max_ticks = 1;
  auto result = RunSimulation(
      policy, {Script({R(0), R(1), R(2)}), Script({R(3), R(4), R(5)})},
      config);
  EXPECT_FALSE(result.ok());
}

TEST(SimTest, MetricsAreInternallyConsistent) {
  StrictTwoPhaseLocking policy;
  auto result = RunSimulation(
      policy, {Script({W(0), W(1)}), Script({W(0), W(2)}),
               Script({R(3), R(4)})});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->completed, 3u);
  EXPECT_GT(result->throughput, 0.0);
  EXPECT_GE(result->avg_response_ticks, 1.0);
  EXPECT_EQ(result->total_ops, result->schedule.size());
}

// Scriptable stub: a fixed verdict per (txn, step), pass-through
// otherwise. Exercises the kSkip and Condemn/DrainCondemned plumbing
// without a real protocol behind it.
class StubPolicy : public SchedulerPolicy {
 public:
  std::string name() const override { return "stub"; }
  Result<AccessGrant> RequestAccess(TxnId txn, const TxnScript& script,
                                    size_t step) override {
    NSE_RETURN_IF_ERROR(CheckStep(script, step));
    AccessVerdict verdict = AccessVerdict::kGranted;
    auto it = verdicts_.find({txn, step});
    if (it != verdicts_.end()) {
      verdict = it->second;
      verdicts_.erase(it);  // one-shot: the retry proceeds
    }
    switch (verdict) {
      case AccessVerdict::kWait:
        return WaitOn(MakeTicket());
      case AccessVerdict::kAbortSelf:
        return AbortSelf();
      case AccessVerdict::kSkip:
        return Skip();
      case AccessVerdict::kGranted:
        break;
    }
    granted_steps_.push_back(step);
    return Granted();
  }
  std::vector<TxnId> Blockers(TxnId, const TxnScript&,
                              size_t) const override {
    return {};
  }

  std::map<std::pair<TxnId, size_t>, AccessVerdict> verdicts_;
  std::vector<size_t> granted_steps_;
  std::vector<TxnId> aborted_;

 protected:
  void DoCommit(TxnId) override {}
  void DoAbort(TxnId txn) override { aborted_.push_back(txn); }
};

TEST(SimTest, SkippedStepsLeaveNoTraceAndNoGrant) {
  StubPolicy policy;
  policy.verdicts_[{1, 1}] = AccessVerdict::kSkip;
  auto result = RunSimulation(policy, {Script({W(0), W(1), W(2)})});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, 1u);
  EXPECT_EQ(result->skipped_ops, 1u);
  // The trace holds only the executed steps; the skipped one was never
  // granted (no trace_seq drawn for it).
  EXPECT_EQ(result->total_ops, 2u);
  EXPECT_EQ(result->schedule.ops()[0].entity, 0u);
  EXPECT_EQ(result->schedule.ops()[1].entity, 2u);
  EXPECT_EQ(policy.granted_steps_, (std::vector<size_t>{0, 2}));
}

TEST(SimTest, SkippedFinalStepCompletesTheTransaction) {
  StubPolicy policy;
  policy.verdicts_[{1, 1}] = AccessVerdict::kSkip;
  auto result = RunSimulation(policy, {Script({W(0), W(1)})});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed, 1u);
  EXPECT_EQ(result->skipped_ops, 1u);
  EXPECT_EQ(result->total_ops, 1u);
}

TEST(SimTest, WoundedVictimRollsBackAndRestarts) {
  StubPolicy policy;
  // T2's first access wounds T1 (which has already executed a step) and
  // waits one round; T1 restarts from scratch and both complete.
  policy.verdicts_[{2, 0}] = AccessVerdict::kWait;
  auto result = RunSimulation(policy, {Script({W(0), W(1)}, 0),
                                       Script({W(2), W(3)}, 1)});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->wounds, 0u);  // kWait alone wounds nobody

  // The simulator drains the condemnation right after T2's first request
  // (arrival tick 1, after T1 already ran its first step).
  class WoundOnce : public StubPolicy {
   public:
    Result<AccessGrant> RequestAccess(TxnId txn, const TxnScript& script,
                                      size_t step) override {
      if (txn == 2 && !wounded_) {
        wounded_ = true;
        Condemn(1);
        return WaitOn(MakeTicket());
      }
      return StubPolicy::RequestAccess(txn, script, step);
    }

   private:
    bool wounded_ = false;
  };
  WoundOnce policy2;
  auto result2 = RunSimulation(policy2, {Script({W(0), W(1)}, 0),
                                         Script({W(2), W(3)}, 1)});
  ASSERT_TRUE(result2.ok()) << result2.status();
  EXPECT_EQ(result2->completed, 2u);
  EXPECT_EQ(result2->wounds, 1u);
  EXPECT_EQ(result2->aborts, 0u);
  EXPECT_EQ(policy2.aborted_, std::vector<TxnId>{1});
  // The victim's rolled-back step re-executed: full trace length.
  EXPECT_EQ(result2->total_ops, 4u);
}

}  // namespace
}  // namespace nse
