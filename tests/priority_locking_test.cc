// Wound-wait / wait-die: protocol-level unit tests (who wounds, who dies,
// who waits; stamps survive restarts) and end-to-end runs pinning the
// deadlock-freedom invariant — the simulator's deadlock-victim machinery
// never fires (aborts == 0) even on workloads that reliably deadlock
// plain strict 2PL.

#include <gtest/gtest.h>

#include "analysis/analysis_context.h"
#include "analysis/serializability.h"
#include "scheduler/fault_injection.h"
#include "scheduler/priority_locking.h"
#include "scheduler/sim.h"
#include "scheduler/two_phase_locking.h"
#include "scheduler/workload.h"

namespace nse {
namespace {

TxnScript Script(std::vector<AccessStep> steps) {
  TxnScript script;
  script.steps = std::move(steps);
  return script;
}

TEST(WoundWaitTest, YoungerRequesterWaitsWithoutWounding) {
  WoundWaitPolicy policy(2);
  TxnScript t1 = Script({{OpAction::kWrite, 0}});
  TxnScript t2 = Script({{OpAction::kWrite, 0}});
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);  // ts 1
  // T2 (ts 2, younger) hits older T1's lock: plain wait, no wound — the
  // standing edge points young -> old.
  EXPECT_EQ(Access(policy, 2, t2, 0), AccessVerdict::kWait);
  EXPECT_EQ(policy.wounds_issued(), 0u);
  EXPECT_TRUE(policy.DrainCondemned().empty());
  EXPECT_EQ(policy.Blockers(2, t2, 0), std::vector<TxnId>{1});
}

TEST(WoundWaitTest, OlderRequesterWoundsYoungerHolder) {
  WoundWaitPolicy policy(2);
  // T2 draws the older stamp on an uncontended item, then younger T1
  // takes the lock T2 wants next.
  TxnScript t2 = Script({{OpAction::kWrite, 1}, {OpAction::kWrite, 0}});
  TxnScript t1 = Script({{OpAction::kWrite, 0}});
  EXPECT_EQ(Access(policy, 2, t2, 0), AccessVerdict::kGranted);  // ts 1
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);  // ts 2
  // Older T2 hits younger T1's lock: wound T1, wait for the rollback.
  EXPECT_EQ(Access(policy, 2, t2, 1), AccessVerdict::kWait);
  EXPECT_EQ(policy.wounds_issued(), 1u);
  EXPECT_EQ(policy.DrainCondemned(), std::vector<TxnId>{1});
  EXPECT_TRUE(policy.DrainCondemned().empty());  // drained exactly once
  // After the victim's rollback the lock frees and T2 proceeds; the
  // wounded T1 keeps its stamp across the restart.
  policy.Abort(1);
  EXPECT_EQ(Access(policy, 2, t2, 1), AccessVerdict::kGranted);
  EXPECT_EQ(policy.priority(1), 2u);
}

TEST(WaitDieTest, YoungerRequesterDiesOlderWaits) {
  WaitDiePolicy policy(2);
  TxnScript a = Script({{OpAction::kWrite, 1}, {OpAction::kWrite, 0}});
  TxnScript b = Script({{OpAction::kWrite, 0}});
  EXPECT_EQ(Access(policy, 2, a, 0), AccessVerdict::kGranted);  // ts 1
  EXPECT_EQ(Access(policy, 1, b, 0), AccessVerdict::kGranted);  // ts 2
  // Older T2 hits younger T1's lock: waits (old -> young edge).
  EXPECT_EQ(Access(policy, 2, a, 1), AccessVerdict::kWait);
  EXPECT_TRUE(policy.DrainCondemned().empty());
  EXPECT_EQ(policy.deaths(), 0u);
  // Younger T1 hits older T2's lock: dies, keeping its stamp.
  EXPECT_EQ(Access(policy, 1, a, 0), AccessVerdict::kAbortSelf);
  EXPECT_EQ(policy.deaths(), 1u);
  policy.Abort(1);
  EXPECT_EQ(policy.priority(1), 2u);
}

TEST(WaitDieTest, UpgradeRaceResolvesWithoutDeadlock) {
  // Two shared holders both upgrading to exclusive wedges plain 2PL in an
  // upgrade deadlock; under wait-die the younger dies immediately.
  WaitDiePolicy policy(2);
  TxnScript s = Script({{OpAction::kRead, 0}, {OpAction::kWrite, 0}});
  EXPECT_EQ(Access(policy, 1, s, 0), AccessVerdict::kGranted);  // ts 1
  EXPECT_EQ(Access(policy, 2, s, 0), AccessVerdict::kGranted);  // ts 2
  EXPECT_EQ(Access(policy, 1, s, 1), AccessVerdict::kWait);  // older
  EXPECT_EQ(Access(policy, 2, s, 1), AccessVerdict::kAbortSelf);
  policy.Abort(2);
  EXPECT_EQ(Access(policy, 1, s, 1), AccessVerdict::kGranted);
}

TEST(WoundWaitTest, RepeatedOnAbortIsIdempotentAndStampSurvives) {
  // A crash-at-op fault can re-abort a transaction whose locks are already
  // gone; the repeat must be a no-op, and the priority stamp must survive
  // every retraction — it is the deadlock-freedom invariant.
  WoundWaitPolicy policy(2);
  TxnScript t1 = Script({{OpAction::kWrite, 0}});
  TxnScript t2 = Script({{OpAction::kWrite, 1}});
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);  // ts 1
  EXPECT_EQ(Access(policy, 2, t2, 0), AccessVerdict::kGranted);  // ts 2
  policy.Abort(1);
  EXPECT_EQ(policy.held_locks(), 1u);  // only T2's grant remains
  policy.Abort(1);                   // already retracted: no-op
  policy.Abort(1);
  EXPECT_EQ(policy.held_locks(), 1u);
  EXPECT_EQ(policy.priority(1), 1u);
  EXPECT_EQ(policy.priority(2), 2u);
  // The restarted incarnation keeps its original (older) stamp: colliding
  // with younger T2 it wounds rather than waits behind a fresh stamp.
  TxnScript t1b = Script({{OpAction::kWrite, 1}});
  EXPECT_EQ(Access(policy, 1, t1b, 0), AccessVerdict::kWait);
  EXPECT_EQ(policy.wounds_issued(), 1u);
  EXPECT_EQ(policy.DrainCondemned(), std::vector<TxnId>{2});
}

TEST(WaitDieTest, RepeatedOnAbortIsIdempotentAndStampSurvives) {
  WaitDiePolicy policy(2);
  TxnScript t1 = Script({{OpAction::kWrite, 0}});
  TxnScript t2 = Script({{OpAction::kWrite, 1}});
  EXPECT_EQ(Access(policy, 1, t1, 0), AccessVerdict::kGranted);  // ts 1
  EXPECT_EQ(Access(policy, 2, t2, 0), AccessVerdict::kGranted);  // ts 2
  policy.Abort(2);
  policy.Abort(2);  // fault-driven double abort: no-op
  EXPECT_EQ(policy.held_locks(), 1u);
  EXPECT_EQ(policy.priority(2), 2u);  // stamp survives the retraction
  // Still the younger party after restarting: it dies on T1's lock
  // instead of waiting (a fresh stamp would have inverted the edge too).
  TxnScript t2b = Script({{OpAction::kWrite, 0}});
  EXPECT_EQ(Access(policy, 2, t2b, 0), AccessVerdict::kAbortSelf);
  EXPECT_EQ(policy.deaths(), 1u);
}

TEST(PriorityFaultTest, StampsKeepDeadlockFreedomUnderInjectedFaults) {
  // Client aborts and crashes drive extra OnAbort/restart rounds through
  // both protocols. Because stamps survive fault-driven restarts, the
  // deadlock-victim machinery must stay silent (aborts == 0), every lock
  // must be retracted at quiescence, and the committed trace stays
  // strict + CSR.
  PartitionedWorkloadConfig config;
  config.num_partitions = 4;
  config.items_per_partition = 2;
  config.num_txns = 8;
  config.partitions_per_txn = 3;
  config.cross_read_probability = 0.5;
  config.hotspot_probability = 0.7;
  config.seed = 13;
  auto workload = MakePartitionedWorkload(config);
  ASSERT_TRUE(workload.ok()) << workload.status();

  FaultPlanConfig fc;
  fc.seed = 31;
  fc.client_abort_probability = 0.6;
  fc.crash_probability = 0.2;
  FaultPlan plan(fc);
  EngineConfig sim_config;
  sim_config.faults = &plan;

  for (int which = 0; which < 2; ++which) {
    WoundWaitPolicy ww(workload->scripts.size());
    WaitDiePolicy wd(workload->scripts.size());
    SchedulerPolicy& policy =
        which == 0 ? static_cast<SchedulerPolicy&>(ww) : wd;
    auto result = RunSimulation(policy, workload->scripts, sim_config);
    ASSERT_TRUE(result.ok()) << policy.name() << ": " << result.status();
    EXPECT_GT(result->fault_aborts, 0u) << policy.name();
    EXPECT_EQ(result->completed + result->crashes, workload->scripts.size())
        << policy.name();
    EXPECT_EQ(result->aborts, 0u) << policy.name();  // victim machinery silent
    size_t residual_locks =
        which == 0 ? ww.held_locks() : wd.held_locks();
    EXPECT_EQ(residual_locks, 0u) << policy.name();
    EXPECT_TRUE(IsConflictSerializable(result->schedule)) << policy.name();
    AnalysisContext ctx(*workload->ic, result->schedule);
    EXPECT_TRUE(ctx.strict()) << policy.name();
  }
}

class PriorityWorkloadTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PriorityWorkloadTest, DeadlockFreeStrictCsrEndToEnd) {
  PartitionedWorkloadConfig config;
  config.num_partitions = 4;
  config.items_per_partition = 2;
  config.num_txns = 8;
  config.partitions_per_txn = 3;
  config.cross_read_probability = 0.5;
  config.hotspot_probability = 0.7;  // contention: plenty of lock conflicts
  config.seed = GetParam();
  auto workload = MakePartitionedWorkload(config);
  ASSERT_TRUE(workload.ok()) << workload.status();

  for (int which = 0; which < 2; ++which) {
    WoundWaitPolicy ww(workload->scripts.size());
    WaitDiePolicy wd(workload->scripts.size());
    SchedulerPolicy& policy =
        which == 0 ? static_cast<SchedulerPolicy&>(ww) : wd;
    auto result = RunSimulation(policy, workload->scripts);
    ASSERT_TRUE(result.ok()) << policy.name() << ": " << result.status();
    EXPECT_EQ(result->completed, workload->scripts.size());
    // Deadlock-free by construction: the victim machinery never fired.
    EXPECT_EQ(result->aborts, 0u) << policy.name();
    EXPECT_TRUE(IsConflictSerializable(result->schedule)) << policy.name();
    AnalysisContext ctx(*workload->ic, result->schedule);
    EXPECT_TRUE(ctx.strict()) << policy.name();
    if (which == 0) {
      EXPECT_EQ(result->wounds, ww.wounds_issued());
      EXPECT_EQ(result->restarts, 0u);
    } else {
      EXPECT_EQ(result->restarts, wd.deaths());
      EXPECT_EQ(result->wounds, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PriorityWorkloadTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace nse
