#include "analysis/serializability.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace nse {
namespace {

class SerializabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.AddIntItems({"a", "b", "c", "d"}, -8, 8).ok());
  }
  Database db_;
};

TEST_F(SerializabilityTest, SerialScheduleIsCsr) {
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0)).W(1, "b", Value(1)).R(2, "b", Value(1)).W(
      2, "c", Value(2));
  CsrReport report = CheckConflictSerializability(sb.Build());
  EXPECT_TRUE(report.serializable);
  ASSERT_TRUE(report.order.has_value());
  EXPECT_EQ(*report.order, (std::vector<TxnId>{1, 2}));
  EXPECT_FALSE(report.cycle.has_value());
}

TEST_F(SerializabilityTest, NonCsrHasCycleWitness) {
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0))
      .W(2, "a", Value(1))
      .R(2, "b", Value(0))
      .W(1, "b", Value(1));
  CsrReport report = CheckConflictSerializability(sb.Build());
  EXPECT_FALSE(report.serializable);
  EXPECT_FALSE(report.order.has_value());
  ASSERT_TRUE(report.cycle.has_value());
  EXPECT_FALSE(IsConflictSerializable(sb.Build()));
}

TEST_F(SerializabilityTest, SerializationOrdersEnumerated) {
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0)).R(2, "b", Value(0)).W(3, "a", Value(1));
  // Conflicts: T1 -> T3 only. Orders: any permutation with 1 before 3.
  auto orders = SerializationOrders(sb.Build(), 100);
  EXPECT_EQ(orders.size(), 3u);
  for (const auto& order : orders) {
    auto pos = [&](TxnId t) {
      return std::find(order.begin(), order.end(), t) - order.begin();
    };
    EXPECT_LT(pos(1), pos(3));
  }
}

TEST_F(SerializabilityTest, SerialArrangementConcatenatesTransactions) {
  ScheduleBuilder sb(db_);
  sb.R(1, "a", Value(0)).W(2, "b", Value(1)).W(1, "c", Value(2));
  auto serial = SerialArrangement(sb.Build(), {2, 1});
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(serial->ToString(db_), "w2(b, 1), r1(a, 0), w1(c, 2)");
  EXPECT_FALSE(SerialArrangement(sb.Build(), {1}).ok());
  EXPECT_FALSE(SerialArrangement(sb.Build(), {1, 2, 3}).ok());
}

class CsrEquivalencePropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(CsrEquivalencePropertyTest,
       CsrScheduleFinalStateMatchesSerialArrangement) {
  // Conflict-equivalent schedules preserve the order of conflicting
  // operations, so a CSR schedule and its serial arrangement produce the
  // same final state from any initial state. Validated on random schedules.
  Database db;
  ASSERT_TRUE(db.AddIntItems({"x", "y", "z", "w"}, -100, 100).ok());
  Rng rng(GetParam());
  int csr_seen = 0;
  for (int trial = 0; trial < 300; ++trial) {
    // Random schedule of 3 txns x 3 ops (values = write counter).
    OpSequence ops;
    int counter = 0;
    for (int step = 0; step < 9; ++step) {
      TxnId txn = static_cast<TxnId>(rng.NextBelow(3) + 1);
      ItemId item = static_cast<ItemId>(rng.NextBelow(4));
      if (rng.NextBool(0.5)) {
        ops.push_back(Operation::Write(txn, item, Value(++counter)));
      } else {
        ops.push_back(Operation::Read(txn, item, Value(0)));
      }
    }
    Schedule schedule(std::move(ops));
    CsrReport report = CheckConflictSerializability(schedule);
    if (!report.serializable) continue;
    ++csr_seen;
    auto serial = SerialArrangement(schedule, *report.order);
    ASSERT_TRUE(serial.ok());
    DbState initial;
    for (ItemId item = 0; item < 4; ++item) initial.Set(item, Value(0));
    auto direct = schedule.Execute(initial);
    auto arranged = serial->Execute(initial);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(arranged.ok());
    EXPECT_EQ(direct->final_state, arranged->final_state)
        << schedule.ToString(db);
  }
  EXPECT_GT(csr_seen, 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrEquivalencePropertyTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace nse
