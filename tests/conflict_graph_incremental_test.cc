// Incremental (Pearce–Kelly) cycle detection, differentially tested against
// the batch DFS reference: randomized insert-only edge streams must agree
// with the reference on the acyclicity verdict after every insertion and
// fire cycle detection on exactly the same edge, and the maintained online
// order must be a valid topological order at every acyclic step.

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/conflict_graph.h"
#include "common/rng.h"
#include "fuzz_env.h"

namespace nse {
namespace {

std::vector<TxnId> Nodes(size_t n) {
  std::vector<TxnId> nodes;
  for (TxnId id = 1; id <= n; ++id) nodes.push_back(id);
  return nodes;
}

/// Asserts `order` is a valid topological order of `graph`: a permutation
/// of the nodes with every edge pointing forward.
void ExpectValidTopoOrder(const ConflictGraph& graph,
                          const std::vector<TxnId>& order) {
  std::vector<TxnId> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  ASSERT_EQ(sorted, graph.nodes()) << "order is not a node permutation";
  std::vector<size_t> position(graph.nodes().back() + 1, 0);
  for (size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (const auto& [from, to] : graph.Edges()) {
    EXPECT_LT(position[from], position[to])
        << "edge T" << from << " -> T" << to << " violates the order";
  }
}

/// Asserts `cycle` is a closed walk over existing edges (first == last).
void ExpectValidCycle(const ConflictGraph& graph,
                      const std::vector<TxnId>& cycle) {
  ASSERT_GE(cycle.size(), 2u);
  EXPECT_EQ(cycle.front(), cycle.back());
  for (size_t i = 0; i + 1 < cycle.size(); ++i) {
    EXPECT_TRUE(graph.HasEdge(cycle[i], cycle[i + 1]))
        << "missing cycle edge T" << cycle[i] << " -> T" << cycle[i + 1];
  }
}

TEST(ConflictGraphIncrementalTest, MaintainsOrderAcrossInsertions) {
  ConflictGraph g(Nodes(5), CycleMode::kIncremental);
  EXPECT_TRUE(g.IsAcyclic());
  EXPECT_FALSE(g.has_cycle());
  // Insert edges against the initial identity order to force reordering.
  EXPECT_TRUE(g.AddEdge(5, 1));
  EXPECT_TRUE(g.AddEdge(4, 2));
  EXPECT_TRUE(g.AddEdge(2, 1));
  EXPECT_TRUE(g.IsAcyclic());
  ExpectValidTopoOrder(g, g.OnlineTopologicalOrder());
  // The canonical order is still served (and agrees on acyclicity).
  ASSERT_TRUE(g.TopologicalOrder().has_value());
}

TEST(ConflictGraphIncrementalTest, ReportsFirstCycleClosingEdge) {
  ConflictGraph g(Nodes(4), CycleMode::kIncremental);
  EXPECT_TRUE(g.AddEdge(1, 2));
  EXPECT_TRUE(g.AddEdge(2, 3));
  EXPECT_FALSE(g.has_cycle());
  EXPECT_TRUE(g.WouldCloseCycle(3, 1));
  EXPECT_FALSE(g.WouldCloseCycle(1, 4));
  EXPECT_TRUE(g.AddEdge(3, 1));  // closes 1 -> 2 -> 3 -> 1
  EXPECT_TRUE(g.has_cycle());
  EXPECT_FALSE(g.IsAcyclic());
  ASSERT_TRUE(g.cycle_edge().has_value());
  EXPECT_EQ(*g.cycle_edge(), std::make_pair(TxnId{3}, TxnId{1}));
  ASSERT_TRUE(g.cycle().has_value());
  ExpectValidCycle(g, *g.cycle());
  // The batch DFS reference agrees.
  EXPECT_TRUE(g.FindCycle().has_value());
}

TEST(ConflictGraphIncrementalTest, CycleOpPositionRecordedByBuild) {
  // r1(a) w2(a) r2(b) w1(b): the edge T2 -> T1 created by w1(b) at
  // position 3 closes the cycle.
  OpSequence ops;
  ops.push_back(Operation::Read(1, 0, Value(0)));
  ops.push_back(Operation::Write(2, 0, Value(1)));
  ops.push_back(Operation::Read(2, 1, Value(0)));
  ops.push_back(Operation::Write(1, 1, Value(1)));
  Schedule schedule{std::move(ops)};
  ConflictGraph g = ConflictGraph::Build(schedule, CycleMode::kIncremental);
  EXPECT_TRUE(g.has_cycle());
  ASSERT_TRUE(g.cycle_edge().has_value());
  EXPECT_EQ(*g.cycle_edge(), std::make_pair(TxnId{2}, TxnId{1}));
  ASSERT_TRUE(g.cycle_op_pos().has_value());
  EXPECT_EQ(*g.cycle_op_pos(), 3u);
}

TEST(ConflictGraphIncrementalTest, RemovalRepairsCycleState) {
  ConflictGraph g(Nodes(4), CycleMode::kIncremental);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 1);
  ASSERT_TRUE(g.has_cycle());
  EXPECT_TRUE(g.RemoveEdge(2, 3));
  EXPECT_FALSE(g.has_cycle());
  EXPECT_TRUE(g.IsAcyclic());
  ExpectValidTopoOrder(g, g.OnlineTopologicalOrder());
  EXPECT_FALSE(g.RemoveEdge(2, 3));  // already gone
}

TEST(ConflictGraphIncrementalTest, VictimRemovalBreaksOnlyItsCycles) {
  // Two disjoint cycles: 1 <-> 2 and 3 <-> 4. Removing one victim must
  // leave the other cycle detected.
  ConflictGraph g(Nodes(4), CycleMode::kIncremental);
  g.AddEdge(1, 2);
  g.AddEdge(2, 1);
  g.AddEdge(3, 4);
  g.AddEdge(4, 3);
  ASSERT_TRUE(g.has_cycle());
  g.RemoveEdgesOf(2);
  EXPECT_TRUE(g.has_cycle()) << "second cycle must survive the repair";
  ASSERT_TRUE(g.cycle().has_value());
  ExpectValidCycle(g, *g.cycle());
  g.RemoveEdgesOf(4);
  EXPECT_FALSE(g.has_cycle());
  EXPECT_EQ(g.num_edges(), 0u);
  ExpectValidTopoOrder(g, g.OnlineTopologicalOrder());
}

TEST(ConflictGraphIncrementalTest, EdgesInsertedWhileCyclicSurviveRepair) {
  ConflictGraph g(Nodes(4), CycleMode::kIncremental);
  g.AddEdge(1, 2);
  g.AddEdge(2, 1);
  ASSERT_TRUE(g.has_cycle());
  // Order maintenance is suspended while cyclic; these must still be
  // re-anchored by the repair after the cycle breaks.
  g.AddEdge(4, 3);
  g.AddEdge(3, 1);
  g.RemoveEdge(2, 1);
  EXPECT_FALSE(g.has_cycle());
  ExpectValidTopoOrder(g, g.OnlineTopologicalOrder());
  EXPECT_TRUE(g.HasEdge(4, 3));
  EXPECT_TRUE(g.HasEdge(3, 1));
}

// Property test (ISSUE 3): streaming randomized insert-only conflict-edge
// sequences, the Pearce–Kelly order is a valid topo order after every
// insertion and cycle detection fires on exactly the same edge as the DFS
// reference.
TEST(ConflictGraphIncrementalTest, RandomStreamsAgreeWithDfsReference) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    const size_t n = 2 + rng.NextBelow(20);
    const size_t stream_len = 1 + rng.NextBelow(4 * n);
    ConflictGraph incremental(Nodes(n), CycleMode::kIncremental);
    ConflictGraph reference(Nodes(n), CycleMode::kBatch);
    size_t incremental_cycle_at = 0;  // 1-based stream index, 0 = never
    size_t reference_cycle_at = 0;
    for (size_t i = 0; i < stream_len; ++i) {
      TxnId from = static_cast<TxnId>(1 + rng.NextBelow(n));
      TxnId to = static_cast<TxnId>(1 + rng.NextBelow(n));
      if (from == to) continue;
      bool would_close =
          !incremental.has_cycle() && incremental.WouldCloseCycle(from, to);
      bool inserted = incremental.AddEdge(from, to);
      EXPECT_EQ(reference.AddEdge(from, to), inserted);

      ASSERT_EQ(incremental.IsAcyclic(), reference.IsAcyclic())
          << "verdicts diverged at seed " << seed << " step " << i;
      if (inserted && would_close) {
        EXPECT_TRUE(incremental.has_cycle())
            << "WouldCloseCycle predicted a cycle that did not happen";
      }
      if (incremental.has_cycle() && incremental_cycle_at == 0) {
        incremental_cycle_at = i + 1;
        ASSERT_TRUE(incremental.cycle_edge().has_value());
        EXPECT_EQ(*incremental.cycle_edge(), std::make_pair(from, to))
            << "cycle must fire on the edge that closed it";
        ExpectValidCycle(incremental, *incremental.cycle());
      }
      if (!reference.IsAcyclic() && reference_cycle_at == 0) {
        reference_cycle_at = i + 1;
      }
      if (incremental.IsAcyclic()) {
        ExpectValidTopoOrder(incremental,
                             incremental.OnlineTopologicalOrder());
      }
    }
    EXPECT_EQ(incremental_cycle_at, reference_cycle_at)
        << "cycle fired on different stream steps at seed " << seed;
  }
}

// Removal fuzz: interleaved inserts and removals keep the online order
// valid and the verdict in lockstep with a per-step batch rebuild.
TEST(ConflictGraphIncrementalTest, RandomInsertRemoveStreamsStayConsistent) {
  for (uint64_t seed = 100; seed < 110; ++seed) {
    Rng rng(seed);
    const size_t n = 2 + rng.NextBelow(12);
    ConflictGraph incremental(Nodes(n), CycleMode::kIncremental);
    std::vector<std::pair<TxnId, TxnId>> live;
    for (size_t step = 0; step < 6 * n; ++step) {
      if (!live.empty() && rng.NextBool(0.35)) {
        size_t pick = rng.NextBelow(live.size());
        auto [from, to] = live[pick];
        live.erase(live.begin() + pick);
        EXPECT_TRUE(incremental.RemoveEdge(from, to));
      } else {
        TxnId from = static_cast<TxnId>(1 + rng.NextBelow(n));
        TxnId to = static_cast<TxnId>(1 + rng.NextBelow(n));
        if (from == to) continue;
        if (incremental.AddEdge(from, to)) live.push_back({from, to});
      }
      ConflictGraph rebuilt(Nodes(n));
      for (const auto& [from, to] : live) rebuilt.AddEdge(from, to);
      ASSERT_EQ(incremental.IsAcyclic(), rebuilt.IsAcyclic())
          << "seed " << seed << " step " << step;
      EXPECT_EQ(incremental.num_edges(), live.size());
      if (incremental.IsAcyclic()) {
        ExpectValidTopoOrder(incremental,
                             incremental.OnlineTopologicalOrder());
      } else {
        ExpectValidCycle(incremental, *incremental.cycle());
      }
    }
  }
}

// Decremental-path fuzz: removals fired deliberately *while a cycle is
// recorded* — the Kahn+DFS re-anchor path (order maintenance is suspended
// during cyclic phases and must be rebuilt when a removal may break the
// cycle). Three removal flavours are interleaved: RemoveEdge on an edge of
// the recorded cycle witness (breaks it), RemoveEdge on an edge outside
// the witness (cycle must survive), and RemoveEdgesOf on a cycle
// participant (the deadlock-victim abort path). Every step is
// cross-checked against a from-scratch batch-DFS rebuild.
TEST(ConflictGraphDecrementalFuzz, RemovalsWhileCycleRecordedAgreeWithDfs) {
  const size_t seeds = FuzzSeedCount(10);
  size_t cyclic_removals = 0;  // removals issued while a cycle was live
  size_t victim_removals = 0;  // RemoveEdgesOf issued while cyclic
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    Rng rng(seed * 977 + 5);
    const size_t n = 3 + rng.NextBelow(14);
    ConflictGraph g(Nodes(n), CycleMode::kIncremental);
    std::vector<std::pair<TxnId, TxnId>> live;  // mirror of the edge set

    auto remove_mirror_edge = [&](TxnId from, TxnId to) {
      auto it = std::find(live.begin(), live.end(), std::make_pair(from, to));
      ASSERT_NE(it, live.end());
      live.erase(it);
    };

    for (size_t step = 0; step < 10 * n; ++step) {
      if (g.has_cycle()) {
        // Removal under a recorded cycle: pick the flavour randomly. The
        // witness is copied — the removal below re-anchors the graph's
        // cycle state and would invalidate a reference.
        const std::vector<TxnId> cycle = *g.cycle();
        double flavour = rng.NextDouble();
        if (flavour < 0.4) {
          // Break the witness: remove one of its edges.
          size_t hop = rng.NextBelow(cycle.size() - 1);
          ASSERT_TRUE(g.RemoveEdge(cycle[hop], cycle[hop + 1]));
          remove_mirror_edge(cycle[hop], cycle[hop + 1]);
          ++cyclic_removals;
        } else if (flavour < 0.7 && live.size() > cycle.size()) {
          // Remove an edge that is not a witness hop; the recorded cycle
          // must survive the re-anchor (possibly as a different witness).
          std::vector<std::pair<TxnId, TxnId>> witness_edges;
          for (size_t h = 0; h + 1 < cycle.size(); ++h) {
            witness_edges.emplace_back(cycle[h], cycle[h + 1]);
          }
          std::vector<std::pair<TxnId, TxnId>> outside;
          for (const auto& edge : live) {
            if (std::find(witness_edges.begin(), witness_edges.end(), edge) ==
                witness_edges.end()) {
              outside.push_back(edge);
            }
          }
          if (!outside.empty()) {
            auto [from, to] = outside[rng.NextBelow(outside.size())];
            ASSERT_TRUE(g.RemoveEdge(from, to));
            remove_mirror_edge(from, to);
            ++cyclic_removals;
          }
        } else {
          // Victim abort: drop every edge of one cycle participant.
          TxnId victim = cycle[rng.NextBelow(cycle.size() - 1)];
          g.RemoveEdgesOf(victim);
          live.erase(std::remove_if(live.begin(), live.end(),
                                    [victim](const auto& edge) {
                                      return edge.first == victim ||
                                             edge.second == victim;
                                    }),
                     live.end());
          ++cyclic_removals;
          ++victim_removals;
        }
      } else {
        // Acyclic phase: mostly insert, occasionally remove.
        if (!live.empty() && rng.NextBool(0.2)) {
          size_t pick = rng.NextBelow(live.size());
          auto [from, to] = live[pick];
          live.erase(live.begin() + pick);
          ASSERT_TRUE(g.RemoveEdge(from, to));
        } else {
          TxnId from = static_cast<TxnId>(1 + rng.NextBelow(n));
          TxnId to = static_cast<TxnId>(1 + rng.NextBelow(n));
          if (from == to) continue;
          if (g.AddEdge(from, to)) live.push_back({from, to});
        }
      }

      // Cross-check against the batch-DFS reference built from scratch.
      ConflictGraph rebuilt(Nodes(n));
      for (const auto& [from, to] : live) rebuilt.AddEdge(from, to);
      ASSERT_EQ(g.IsAcyclic(), rebuilt.IsAcyclic())
          << "seed " << seed << " step " << step;
      ASSERT_EQ(g.num_edges(), live.size());
      if (g.IsAcyclic()) {
        ExpectValidTopoOrder(g, g.OnlineTopologicalOrder());
      } else {
        ExpectValidCycle(g, *g.cycle());
      }
    }
  }
  // The sweep must actually have exercised the re-anchor paths.
  EXPECT_GT(cyclic_removals, 0u);
  EXPECT_GT(victim_removals, 0u);
}

TEST(ConflictGraphIncrementalTest, WitnessProbeReturnsThePathBehindTheVeto) {
  ConflictGraph g(Nodes(5), CycleMode::kIncremental);
  EXPECT_TRUE(g.AddEdge(1, 2));
  EXPECT_TRUE(g.AddEdge(2, 3));
  EXPECT_TRUE(g.AddEdge(3, 4));
  // Inserting 4 -> 1 would close the cycle; the witness is the existing
  // path from `to` (1) to `from` (4).
  auto path = g.WouldCloseCycleWitness(4, 1);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<TxnId>{1, 2, 3, 4}));
  // No path means no witness — agreeing with the boolean probe.
  EXPECT_FALSE(g.WouldCloseCycleWitness(1, 3).has_value());
  EXPECT_FALSE(g.WouldCloseCycle(1, 3));
  // Self-probe: the single-node path.
  auto self_path = g.WouldCloseCycleWitness(2, 2);
  ASSERT_TRUE(self_path.has_value());
  EXPECT_EQ(*self_path, std::vector<TxnId>{2});
}

TEST(ConflictGraphDecrementalFuzz, OverlappingCyclesAndWitnessAgreeWithDfs) {
  // Two extensions of the removal-under-cycle fuzz above: (1) while a
  // cycle is recorded, keep *inserting* edges too (order maintenance is
  // suspended, so this breeds multiple overlapping cycles), then fire
  // RemoveEdgesOf on cycle participants — the re-anchor must agree with a
  // from-scratch batch-DFS rebuild even when other cycles survive the
  // removal; (2) in acyclic states, cross-check WouldCloseCycleWitness
  // against batch-DFS reachability and validate the returned path hop by
  // hop (the victim-choice SGT policy trusts it to name the cycle
  // participants).
  const size_t seeds = FuzzSeedCount(10);
  size_t overlapping_survivals = 0;  // victim removals that left a cycle
  size_t witness_probes = 0;
  size_t witness_hits = 0;
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    Rng rng(seed * 7919 + 3);
    const size_t n = 4 + rng.NextBelow(12);
    ConflictGraph g(Nodes(n), CycleMode::kIncremental);
    std::vector<std::pair<TxnId, TxnId>> live;

    auto rebuilt_reference = [&]() {
      ConflictGraph rebuilt(Nodes(n));
      for (const auto& [from, to] : live) rebuilt.AddEdge(from, to);
      return rebuilt;
    };

    for (size_t step = 0; step < 12 * n; ++step) {
      if (g.has_cycle()) {
        double flavour = rng.NextDouble();
        if (flavour < 0.5) {
          // Pile on more edges while the cycle is recorded: overlapping
          // cycles that share participants with the recorded witness.
          TxnId from = static_cast<TxnId>(1 + rng.NextBelow(n));
          TxnId to = static_cast<TxnId>(1 + rng.NextBelow(n));
          if (from == to) continue;
          if (g.AddEdge(from, to)) live.push_back({from, to});
        } else {
          // Abort a recorded-cycle participant. With overlapping cycles
          // the graph often *stays* cyclic — the re-anchor must find a
          // fresh witness rather than declare victory.
          const std::vector<TxnId> cycle = *g.cycle();
          TxnId victim = cycle[rng.NextBelow(cycle.size() - 1)];
          g.RemoveEdgesOf(victim);
          live.erase(std::remove_if(live.begin(), live.end(),
                                    [victim](const auto& edge) {
                                      return edge.first == victim ||
                                             edge.second == victim;
                                    }),
                     live.end());
          if (g.has_cycle()) ++overlapping_survivals;
        }
      } else {
        // Acyclic phase: probe the witness on a random candidate edge,
        // then mostly insert.
        TxnId from = static_cast<TxnId>(1 + rng.NextBelow(n));
        TxnId to = static_cast<TxnId>(1 + rng.NextBelow(n));
        if (from != to) {
          ++witness_probes;
          auto witness = g.WouldCloseCycleWitness(from, to);
          ConflictGraph reference = rebuilt_reference();
          ASSERT_EQ(witness.has_value(), reference.WouldCloseCycle(from, to))
              << "witness/batch reachability disagree, seed " << seed
              << " step " << step;
          ASSERT_EQ(witness.has_value(), g.WouldCloseCycle(from, to));
          if (witness.has_value()) {
            ++witness_hits;
            // The path must run to -> ... -> from over existing edges.
            ASSERT_GE(witness->size(), 2u);
            EXPECT_EQ(witness->front(), to);
            EXPECT_EQ(witness->back(), from);
            for (size_t h = 0; h + 1 < witness->size(); ++h) {
              EXPECT_TRUE(g.HasEdge((*witness)[h], (*witness)[h + 1]))
                  << "missing witness hop T" << (*witness)[h] << " -> T"
                  << (*witness)[h + 1];
            }
            // Closing the edge really does create the witnessed cycle.
            ASSERT_TRUE(g.AddEdge(from, to));
            live.push_back({from, to});
            EXPECT_TRUE(g.has_cycle());
            continue;
          }
        }
        if (!live.empty() && rng.NextBool(0.15)) {
          size_t pick = rng.NextBelow(live.size());
          auto [efrom, eto] = live[pick];
          live.erase(live.begin() + pick);
          ASSERT_TRUE(g.RemoveEdge(efrom, eto));
        } else if (from != to) {
          if (g.AddEdge(from, to)) live.push_back({from, to});
        }
      }

      // Cross-check against the batch-DFS reference built from scratch.
      ConflictGraph rebuilt = rebuilt_reference();
      ASSERT_EQ(g.IsAcyclic(), rebuilt.IsAcyclic())
          << "seed " << seed << " step " << step;
      ASSERT_EQ(g.num_edges(), live.size());
      if (g.IsAcyclic()) {
        ExpectValidTopoOrder(g, g.OnlineTopologicalOrder());
      } else {
        ExpectValidCycle(g, *g.cycle());
      }
    }
  }
  // The sweep must have exercised both target regimes.
  EXPECT_GT(overlapping_survivals, 0u);
  EXPECT_GT(witness_hits, 0u);
  EXPECT_GT(witness_probes, witness_hits);
}

TEST(ConflictGraphIncrementalTest, BuildMatchesBatchBuildOnSchedules) {
  // Random schedules: both modes must produce identical edge sets and
  // verdicts.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    OpSequence ops;
    const size_t txns = 2 + rng.NextBelow(6);
    const size_t items = 1 + rng.NextBelow(4);
    for (size_t i = 0; i < 30; ++i) {
      TxnId txn = static_cast<TxnId>(1 + rng.NextBelow(txns));
      ItemId item = static_cast<ItemId>(rng.NextBelow(items));
      if (rng.NextBool()) {
        ops.push_back(Operation::Read(txn, item, Value(0)));
      } else {
        ops.push_back(Operation::Write(txn, item, Value(1)));
      }
    }
    Schedule schedule{std::move(ops)};
    ConflictGraph batch = ConflictGraph::Build(schedule);
    ConflictGraph incremental =
        ConflictGraph::Build(schedule, CycleMode::kIncremental);
    EXPECT_EQ(batch.Edges(), incremental.Edges());
    EXPECT_EQ(batch.IsAcyclic(), incremental.IsAcyclic());
    EXPECT_EQ(batch.TopologicalOrder(), incremental.TopologicalOrder());
  }
}

}  // namespace
}  // namespace nse
