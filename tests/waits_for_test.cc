// WaitsForTracker: persistent incremental waits-for graph with blocker-set
// diffing — the scheduler layer's consumer of the Pearce–Kelly mode.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "scheduler/waits_for.h"

namespace nse {
namespace {

TEST(WaitsForTest, DetectsAndResolvesDeadlock) {
  WaitsForTracker tracker;
  tracker.SetWaits(1, {2});
  EXPECT_FALSE(tracker.has_cycle());
  tracker.SetWaits(2, {1});
  ASSERT_TRUE(tracker.has_cycle());
  const std::vector<TxnId>& cycle = *tracker.cycle();
  EXPECT_EQ(cycle.front(), cycle.back());
  EXPECT_NE(std::find(cycle.begin(), cycle.end(), TxnId{1}), cycle.end());
  EXPECT_NE(std::find(cycle.begin(), cycle.end(), TxnId{2}), cycle.end());
  ASSERT_TRUE(tracker.cycle_edge().has_value());
  EXPECT_EQ(*tracker.cycle_edge(), std::make_pair(TxnId{2}, TxnId{1}));

  tracker.OnResolved(2);
  EXPECT_FALSE(tracker.has_cycle());
  // 1's wait on 2 was resolved together with 2's edges.
  tracker.SetWaits(1, {2});  // re-blocks: must re-add cleanly
  EXPECT_FALSE(tracker.has_cycle());
}

TEST(WaitsForTest, UnchangedBlockerSetsDoNoGraphWork) {
  WaitsForTracker tracker;
  tracker.SetWaits(1, {2, 3});
  tracker.SetWaits(2, {3});
  uint64_t added = tracker.edges_added();
  uint64_t removed = tracker.edges_removed();
  // The steady-state stall tick: same blocker sets again and again.
  for (int tick = 0; tick < 100; ++tick) {
    tracker.SetWaits(1, {2, 3});
    tracker.SetWaits(2, {3});
  }
  EXPECT_EQ(tracker.edges_added(), added);
  EXPECT_EQ(tracker.edges_removed(), removed);
}

TEST(WaitsForTest, DiffsRetractOnlyStaleEdges) {
  WaitsForTracker tracker;
  tracker.SetWaits(1, {2, 3, 4});
  uint64_t added = tracker.edges_added();
  EXPECT_EQ(added, 3u);
  tracker.SetWaits(1, {3, 5});  // drop 2 and 4, keep 3, add 5
  EXPECT_EQ(tracker.edges_added(), added + 1);
  EXPECT_EQ(tracker.edges_removed(), 2u);
  EXPECT_TRUE(tracker.graph().HasEdge(1, 3));
  EXPECT_TRUE(tracker.graph().HasEdge(1, 5));
  EXPECT_FALSE(tracker.graph().HasEdge(1, 2));
}

TEST(WaitsForTest, SelfAndDuplicateBlockersAreDropped) {
  WaitsForTracker tracker;
  tracker.SetWaits(3, {3, 2, 2, 3});
  EXPECT_EQ(tracker.edges_added(), 1u);
  EXPECT_TRUE(tracker.graph().HasEdge(3, 2));
  EXPECT_FALSE(tracker.has_cycle());
}

TEST(WaitsForTest, GrowsNodeCapacityOnDemand) {
  WaitsForTracker tracker;
  tracker.SetWaits(1, {2});
  // Txn 100 appears later: the graph is rebuilt with the larger node set,
  // replaying the existing edges.
  tracker.SetWaits(100, {1});
  EXPECT_TRUE(tracker.graph().HasEdge(1, 2));
  EXPECT_TRUE(tracker.graph().HasEdge(100, 1));
  tracker.SetWaits(2, {100});
  ASSERT_TRUE(tracker.has_cycle());  // 1 -> 2 -> 100 -> 1
}

TEST(WaitsForTest, RandomStallStreamsMatchBatchRebuild) {
  // The tracker's verdict must equal a from-scratch graph + DFS on the
  // same waits-for relation, every tick, across random streams.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const size_t n = 3 + rng.NextBelow(12);
    WaitsForTracker tracker;
    tracker.EnsureTxns(n);
    std::vector<std::vector<TxnId>> waits(n + 1);
    for (int tick = 0; tick < 120; ++tick) {
      TxnId txn = static_cast<TxnId>(1 + rng.NextBelow(n));
      std::vector<TxnId> blockers;
      size_t count = rng.NextBelow(3);
      for (size_t i = 0; i < count; ++i) {
        TxnId blocker = static_cast<TxnId>(1 + rng.NextBelow(n));
        if (blocker != txn) blockers.push_back(blocker);
      }
      waits[txn] = blockers;
      tracker.SetWaits(txn, blockers);

      std::vector<TxnId> ids;
      for (TxnId id = 1; id <= n; ++id) ids.push_back(id);
      ConflictGraph reference(std::move(ids));
      for (TxnId u = 1; u <= n; ++u) {
        for (TxnId v : waits[u]) reference.AddEdge(u, v);
      }
      ASSERT_EQ(tracker.has_cycle(), reference.FindCycle().has_value())
          << "seed " << seed << " tick " << tick;
      if (tracker.has_cycle() && rng.NextBool(0.8)) {
        const std::vector<TxnId>& cycle = *tracker.cycle();
        TxnId victim = *std::max_element(cycle.begin(), cycle.end());
        tracker.OnResolved(victim);
        waits[victim].clear();
        for (auto& set : waits) {
          set.erase(std::remove(set.begin(), set.end(), victim), set.end());
        }
        std::vector<TxnId> check_ids;
        for (TxnId id = 1; id <= n; ++id) check_ids.push_back(id);
        ConflictGraph check(std::move(check_ids));
        for (TxnId u = 1; u <= n; ++u) {
          for (TxnId v : waits[u]) check.AddEdge(u, v);
        }
        ASSERT_EQ(tracker.has_cycle(), check.FindCycle().has_value())
            << "post-resolution verdict diverged";
      }
    }
  }
}

}  // namespace
}  // namespace nse
