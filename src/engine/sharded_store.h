// Lock-free value plane for the multithreaded engine: one atomic cell per
// item. The scheduler layer (policy + engine) decides *whether* an access
// may happen; this store only performs it. Cells are atomics so a policy
// bug that lets two workers race on an item is a scheduling bug visible to
// the analysis checkers, never undefined behavior under TSan.
//
// The accessors return Status / Result<T> envelopes, not sentinel values:
// an out-of-range item is a malformed request (OutOfRange), while a read
// of a never-written cell is a normal answer (0) — mirroring the repo-wide
// rule that errors are envelopes and domain answers are values.

#ifndef NSE_ENGINE_SHARDED_STORE_H_
#define NSE_ENGINE_SHARDED_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/status.h"
#include "txn/operation.h"

namespace nse {

/// Fixed-size array of independently-atomic value cells, item-addressed.
/// All cells start at 0. Thread-safe: any number of readers and writers
/// may touch any cells concurrently.
class ShardedValueStore {
 public:
  /// A store for items [0, num_items).
  explicit ShardedValueStore(size_t num_items)
      : size_(num_items),
        cells_(std::make_unique<std::atomic<int64_t>[]>(num_items)) {}

  /// The current value of `item`, or OutOfRange for an unknown item.
  Result<int64_t> Read(ItemId item) const {
    if (item >= size_) {
      return Status::OutOfRange("read of item outside the store");
    }
    return cells_[item].load(std::memory_order_acquire);
  }

  /// Sets `item` to `value`, or OutOfRange for an unknown item.
  Status Write(ItemId item, int64_t value) {
    if (item >= size_) {
      return Status::OutOfRange("write of item outside the store");
    }
    cells_[item].store(value, std::memory_order_release);
    return Status::Ok();
  }

  size_t size() const { return size_; }

 private:
  size_t size_;
  std::unique_ptr<std::atomic<int64_t>[]> cells_;
};

}  // namespace nse

#endif  // NSE_ENGINE_SHARDED_STORE_H_
