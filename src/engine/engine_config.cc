#include "engine/engine_config.h"

#include <algorithm>

#include "common/rng.h"

namespace nse {

Status EngineConfig::Validate() const {
  if (max_ticks == 0) {
    return Status::InvalidArgument("max_ticks must be positive");
  }
  if (threads == 0) {
    return Status::InvalidArgument("threads must be positive");
  }
  if (wait_timeout_micros == 0) {
    return Status::InvalidArgument(
        "wait_timeout_micros must be positive (blocked workers would never "
        "re-check their condemned flag)");
  }
  if (max_wall_micros == 0) {
    return Status::InvalidArgument("max_wall_micros must be positive");
  }
  const RestartPolicy& rp = restart;
  if (rp.backoff != RestartPolicy::Backoff::kImmediate && rp.cap < rp.base) {
    return Status::InvalidArgument(
        "restart backoff cap below base: the cap silently rewrites the "
        "first-restart delay");
  }
  if (rp.backoff == RestartPolicy::Backoff::kExponential && rp.base == 0) {
    return Status::InvalidArgument(
        "exponential backoff with base 0 never backs off (0 << n == 0)");
  }
  if (rp.jitter > 0 && rp.jitter_seed == 0) {
    return Status::InvalidArgument(
        "jitter requested with jitter_seed 0 (the reserved unseeded value)");
  }
  if (rp.overflow == RestartPolicy::Overflow::kShed && rp.max_live_txns == 0) {
    return Status::InvalidArgument(
        "shed overflow without an admission gate (max_live_txns == 0 never "
        "sheds; pick a gate or drop the overflow mode)");
  }
  return Status::Ok();
}

Result<EngineConfig> EngineConfig::Builder::Build() const {
  NSE_RETURN_IF_ERROR(cfg_.Validate());
  return cfg_;
}

uint64_t RestartBackoffDelay(const RestartPolicy& rp, TxnId txn, uint64_t n) {
  uint64_t delay = 0;
  switch (rp.backoff) {
    case RestartPolicy::Backoff::kImmediate:
      delay = 0;
      break;
    case RestartPolicy::Backoff::kFixed:
      delay = std::min(rp.base, rp.cap);
      break;
    case RestartPolicy::Backoff::kLinear:
      delay = std::min(rp.base + rp.step * n, rp.cap);
      break;
    case RestartPolicy::Backoff::kExponential: {
      delay = rp.base;
      for (uint64_t i = 1; i < n && delay < rp.cap; ++i) delay <<= 1;
      delay = std::min(delay, rp.cap);
      break;
    }
  }
  if (rp.jitter > 0) {
    delay += Rng(rp.jitter_seed).Split(txn).Split(n).NextBelow(rp.jitter + 1);
  }
  return delay;
}

}  // namespace nse
