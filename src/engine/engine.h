// Wall-clock multithreaded transaction engine: N worker threads drive
// scripted transactions against a shared SchedulerPolicy for real — OS
// threads, blocking waits, wound delivery and deadlock detection under
// races — where the tick simulator (scheduler/sim.h) drives the identical
// policy contract deterministically.
//
// Each worker claims one transaction at a time and runs it to commit,
// restarting it on aborts (deadlock victim, wound, policy kAbortSelf).
// Blocked requests wait on the policy's WaitHub with a bounded timeout;
// a timed-out waiter doubles as the deadlock detector (waits-for snapshot
// over the waiting registry, victim = largest id in the cycle, matching
// the simulator). Granted operations execute against a ShardedValueStore
// and are buffered with their policy-issued trace_seq; a commit splices
// the buffer into the global trace, an abort discards it. Sorting the
// committed trace by trace_seq therefore linearizes it exactly as the
// policy serialized the conflicts — that Schedule is what the analysis
// checkers verify against each policy's promised class.

#ifndef NSE_ENGINE_ENGINE_H_
#define NSE_ENGINE_ENGINE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "engine/engine_config.h"
#include "scheduler/scheduler.h"
#include "txn/schedule.h"

namespace nse {

/// Aggregate outcome of one engine run. Event counters are exact (atomic)
/// but their interleaving is nondeterministic run to run; only `completed`,
/// `total_ops` and the trace's class membership are stable contracts.
struct EngineResult {
  uint64_t completed = 0;        ///< transactions committed (== scripts run)
  uint64_t aborts = 0;           ///< deadlock-victim aborts (each restarts)
  uint64_t restarts = 0;         ///< policy-requested kAbortSelf events
  uint64_t wounds = 0;           ///< wound aborts actually delivered
  uint64_t vetoes = 0;           ///< policy veto_events() at quiescence
  uint64_t skipped_ops = 0;      ///< kSkip verdicts (Thomas-rule elisions)
  uint64_t committed_skipped_ops = 0;  ///< kSkip verdicts of incarnations
                                       ///< that committed; pins total_ops +
                                       ///< committed_skipped_ops == sum of
                                       ///< committed script lengths
  uint64_t wait_events = 0;      ///< kWait verdicts (each = one hub wait)
  uint64_t max_txn_restarts = 0; ///< max restarts of any single txn
  uint64_t total_ops = 0;        ///< committed operations in the trace
  uint64_t wall_micros = 0;      ///< wall-clock duration of the run
  size_t threads = 0;            ///< worker threads used
  double throughput_tps = 0;     ///< committed transactions per second
  Schedule schedule;             ///< committed trace, linearized by trace_seq
  /// Per-position version annotation, parallel to schedule.ops(): for a
  /// read granted with an AccessGrant::read_view (multiversion policies),
  /// the transaction whose write produced the observed version (0 = the
  /// initial state). Absent for writes and single-version reads.
  std::vector<std::optional<TxnId>> read_sources;
  /// Restarts (of any kind) per transaction, index txn-1. Read-only
  /// transactions under MVTO/SI must show 0 here.
  std::vector<uint64_t> txn_restarts;
};

/// Runs `scripts` to completion under `policy` with `config.threads`
/// workers. Transaction ids are 1-based script indices; arrival_tick is a
/// simulator notion and is ignored here (workers claim scripts in id
/// order). Fails on an invalid config, on simulator-only knobs the engine
/// does not implement (fault injection, starvation boost, admission gate —
/// Unimplemented), on a malformed policy request, on a stall with no
/// waits-for cycle (policy bug), or past the max_wall_micros deadline.
/// On success every transaction committed: completed == scripts.size().
Result<EngineResult> RunEngine(SchedulerPolicy& policy,
                               const std::vector<TxnScript>& scripts,
                               const EngineConfig& config = EngineConfig());

}  // namespace nse

#endif  // NSE_ENGINE_ENGINE_H_
