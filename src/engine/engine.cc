#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "engine/sharded_store.h"

namespace nse {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t MicrosSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

/// Why a transaction was condemned from outside its own worker.
enum CondemnKind : uint8_t {
  kNotCondemned = 0,
  kWounded = 1,         // policy wound (DrainCondemned victim)
  kDeadlockVictim = 2,  // chosen by the waits-for cycle detector
};

/// One buffered operation of an in-flight incarnation: the policy-issued
/// trace sequence number, the operation itself, and — for reads granted
/// with a version annotation (multiversion policies) — the writer of the
/// observed version. Commit splices these into the global trace; abort
/// drops them.
struct PendingOp {
  uint64_t seq = 0;
  Operation op;
  std::optional<TxnId> read_from;
};

/// Everything the workers share. Counters are atomics; the trace and the
/// waiting registry have their own mutexes; the deadlock detector is
/// serialized by try_lock on detect_mu (a second concurrent detection of
/// the same stall adds nothing).
struct EngineShared {
  const std::vector<TxnScript>& scripts;
  SchedulerPolicy& policy;
  const EngineConfig& config;
  ShardedValueStore store;
  Clock::time_point start;
  Clock::time_point deadline;

  // Per-txn flags (index = txn - 1).
  std::vector<std::atomic<uint8_t>> condemned;
  std::vector<std::atomic<bool>> done;
  // Waiting registry: step index the txn is blocked on, or -1 if not
  // waiting. Guarded by waiting_mu (the detector snapshots it).
  std::vector<int64_t> waiting_step;
  std::mutex waiting_mu;
  std::mutex detect_mu;

  std::atomic<size_t> next_txn{0};
  // Bumped on every state change (granted op, skip, commit, abort). A
  // blocked worker that times out with this counter unmoved scores a
  // stall strike; stall_patience consecutive strikes with no waits-for
  // cycle is a wedged policy.
  std::atomic<uint64_t> progress{0};

  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> aborts{0};
  std::atomic<uint64_t> restarts{0};
  std::atomic<uint64_t> wounds{0};
  std::atomic<uint64_t> skipped_ops{0};
  std::atomic<uint64_t> committed_skipped{0};
  std::atomic<uint64_t> wait_events{0};
  std::atomic<uint64_t> max_txn_restarts{0};
  // Final restart count per txn (index = txn - 1). Each slot has exactly
  // one writer (the worker that commits that txn, before join); the join
  // is the synchronization point for the readers below.
  std::vector<uint64_t> txn_restarts;

  std::mutex trace_mu;
  std::vector<PendingOp> trace;

  std::atomic<bool> failed{false};
  std::mutex fail_mu;
  Status failure = Status::Ok();

  EngineShared(const std::vector<TxnScript>& s, SchedulerPolicy& p,
               const EngineConfig& c, size_t num_items)
      : scripts(s),
        policy(p),
        config(c),
        store(num_items),
        start(Clock::now()),
        deadline(start + std::chrono::microseconds(c.max_wall_micros)),
        condemned(s.size()),
        done(s.size()),
        waiting_step(s.size(), -1),
        txn_restarts(s.size(), 0) {}

  /// Records the first failure and wakes everyone so workers drain out.
  void Fail(Status status) {
    {
      std::lock_guard<std::mutex> lock(fail_mu);
      if (failure.ok()) failure = std::move(status);
    }
    failed.store(true, std::memory_order_release);
    policy.Poke();
  }

  void BumpMaxRestarts(uint64_t count) {
    uint64_t seen = max_txn_restarts.load(std::memory_order_relaxed);
    while (seen < count && !max_txn_restarts.compare_exchange_weak(
                               seen, count, std::memory_order_relaxed)) {
    }
  }
};

/// Mark `victims` condemned (skipping finished transactions — a wound that
/// raced with the victim's commit is moot) and wake any that are blocked.
/// Returns true if any flag was newly set.
bool DeliverCondemnations(EngineShared& shared,
                          const std::vector<TxnId>& victims,
                          CondemnKind kind) {
  bool delivered = false;
  for (TxnId victim : victims) {
    size_t idx = victim - 1;
    NSE_CHECK_MSG(victim >= 1 && idx < shared.scripts.size(),
                  "policy condemned an unknown transaction %u", victim);
    if (shared.done[idx].load(std::memory_order_acquire)) continue;
    uint8_t expected = kNotCondemned;
    if (shared.condemned[idx].compare_exchange_strong(
            expected, kind, std::memory_order_acq_rel)) {
      delivered = true;
    }
  }
  if (delivered) shared.policy.Poke();
  return delivered;
}

/// Waits-for snapshot over the waiting registry, cycle search, victim
/// selection (largest id in the cycle, matching the simulator). Runs under
/// try_lock — a concurrent detection of the same stall is skipped. Returns
/// true if a victim was condemned. A racy snapshot can at worst condemn a
/// transaction whose cycle was already dissolving; that costs one
/// unnecessary restart, never safety.
bool TryDetectDeadlock(EngineShared& shared) {
  std::unique_lock<std::mutex> detect(shared.detect_mu, std::try_to_lock);
  if (!detect.owns_lock()) return false;

  std::vector<std::pair<TxnId, size_t>> waiting;
  {
    std::lock_guard<std::mutex> lock(shared.waiting_mu);
    for (size_t i = 0; i < shared.waiting_step.size(); ++i) {
      if (shared.waiting_step[i] >= 0) {
        waiting.emplace_back(static_cast<TxnId>(i + 1),
                             static_cast<size_t>(shared.waiting_step[i]));
      }
    }
  }
  if (waiting.size() < 2) return false;

  // A cycle needs every participant blocked, so only edges between
  // currently-waiting transactions matter; a running blocker will move on
  // its own.
  std::unordered_set<TxnId> waiting_set;
  for (const auto& entry : waiting) waiting_set.insert(entry.first);
  std::unordered_map<TxnId, std::vector<TxnId>> edges;
  for (const auto& [txn, step] : waiting) {
    for (TxnId blocker :
         shared.policy.Blockers(txn, shared.scripts[txn - 1], step)) {
      if (blocker != txn && waiting_set.count(blocker) > 0) {
        edges[txn].push_back(blocker);
      }
    }
  }

  // Iterative-enough DFS (recursion depth <= #waiting txns) collecting the
  // first cycle found.
  std::unordered_map<TxnId, int> color;  // 0 white, 1 on path, 2 finished
  std::vector<TxnId> path;
  std::vector<TxnId> cycle;
  std::function<bool(TxnId)> visit = [&](TxnId node) {
    color[node] = 1;
    path.push_back(node);
    for (TxnId next : edges[node]) {
      int c = color[next];
      if (c == 1) {
        auto it = std::find(path.begin(), path.end(), next);
        cycle.assign(it, path.end());
        return true;
      }
      if (c == 0 && visit(next)) return true;
    }
    path.pop_back();
    color[node] = 2;
    return false;
  };
  for (const auto& entry : waiting) {
    if (color[entry.first] == 0 && visit(entry.first)) break;
  }
  if (cycle.empty()) return false;

  TxnId victim = *std::max_element(cycle.begin(), cycle.end());
  return DeliverCondemnations(shared, {victim}, kDeadlockVictim);
}

/// Synthetic per-operation work: optional sleep (simulated I/O — this is
/// what makes thread scaling visible even on one core) plus optional spin.
void PayOperationCost(const EngineConfig& config) {
  if (config.op_latency_micros > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(config.op_latency_micros));
  }
  if (config.op_cost > 0) {
    volatile uint64_t sink = 0;
    for (uint64_t i = 0; i < config.op_cost; ++i) sink += i;
    (void)sink;
  }
}

/// Drives one transaction to commit, restarting across aborts. Returns
/// false iff the run failed (shared.failure holds why).
bool RunOneTxn(EngineShared& shared, size_t index) {
  const TxnScript& script = shared.scripts[index];
  const TxnId txn = static_cast<TxnId>(index + 1);
  const EngineConfig& config = shared.config;
  uint64_t restart_count = 0;
  std::vector<PendingOp> buffer;

  // Consume a pending condemnation: roll the incarnation back and count
  // the event by kind. Returns through the incarnation loop.
  auto consume_condemnation = [&](uint8_t why) {
    if (why == kWounded) {
      shared.wounds.fetch_add(1, std::memory_order_relaxed);
    } else {
      shared.aborts.fetch_add(1, std::memory_order_relaxed);
    }
  };

  auto backoff = [&]() {
    uint64_t delay =
        RestartBackoffDelay(config.restart, txn, restart_count) *
        config.backoff_unit_micros;
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
    }
  };

  for (;;) {  // one iteration = one incarnation
    buffer.clear();
    size_t pc = 0;
    uint64_t skips_this_life = 0;
    bool aborted = false;
    while (pc < script.steps.size()) {
      if (shared.failed.load(std::memory_order_acquire)) return false;
      if (Clock::now() > shared.deadline) {
        shared.Fail(Status::DeadlineExceeded(
            "engine exceeded max_wall_micros"));
        return false;
      }
      // Safe point: honor a wound / deadlock condemnation before doing
      // any further work under this incarnation.
      uint8_t why = shared.condemned[index].exchange(
          kNotCondemned, std::memory_order_acq_rel);
      if (why != kNotCondemned) {
        consume_condemnation(why);
        aborted = true;
        break;
      }

      Result<AccessGrant> grant =
          shared.policy.RequestAccess(txn, script, pc);
      if (!grant.ok()) {
        shared.Fail(grant.status());
        return false;
      }
      // Wound path: deliver any condemnations this request issued before
      // acting on our own verdict (the victims' workers roll them back).
      DeliverCondemnations(shared, shared.policy.DrainCondemned(),
                           kWounded);

      switch (grant->verdict) {
        case AccessVerdict::kGranted: {
          const AccessStep& step = script.steps[pc];
          Value traced(0);
          std::optional<TxnId> read_from;
          if (step.action == OpAction::kRead) {
            if (grant->read_view.has_value()) {
              // Multiversion read: the policy already resolved which
              // version this read observes — the shared single-version
              // store would return the *newest* write, not ours.
              traced = Value(grant->read_view->value);
              read_from = grant->read_view->writer;
            } else {
              Result<int64_t> value = shared.store.Read(step.item);
              if (!value.ok()) {
                shared.Fail(value.status());
                return false;
              }
              traced = Value(*value);
            }
          } else {
            Status written = shared.store.Write(
                step.item, static_cast<int64_t>(grant->trace_seq));
            if (!written.ok()) {
              shared.Fail(written);
              return false;
            }
            traced = Value(static_cast<int64_t>(grant->trace_seq));
          }
          buffer.push_back(PendingOp{
              grant->trace_seq,
              step.action == OpAction::kRead
                  ? Operation::Read(txn, step.item, traced)
                  : Operation::Write(txn, step.item, traced),
              read_from});
          PayOperationCost(config);
          ++pc;
          shared.progress.fetch_add(1, std::memory_order_acq_rel);
          break;
        }
        case AccessVerdict::kSkip:
          shared.skipped_ops.fetch_add(1, std::memory_order_relaxed);
          ++skips_this_life;
          ++pc;
          shared.progress.fetch_add(1, std::memory_order_acq_rel);
          break;
        case AccessVerdict::kAbortSelf:
          shared.restarts.fetch_add(1, std::memory_order_relaxed);
          aborted = true;
          break;
        case AccessVerdict::kWait: {
          shared.wait_events.fetch_add(1, std::memory_order_relaxed);
          NSE_CHECK_MSG(grant->wait.hub != nullptr,
                        "kWait grant without a wait ticket");
          {
            std::lock_guard<std::mutex> lock(shared.waiting_mu);
            shared.waiting_step[index] = static_cast<int64_t>(pc);
          }
          uint64_t strikes = 0;
          uint64_t ticket_epoch = grant->wait.epoch;
          while (!shared.failed.load(std::memory_order_acquire)) {
            uint64_t seen_progress =
                shared.progress.load(std::memory_order_acquire);
            bool moved = grant->wait.hub->AwaitChange(
                ticket_epoch, config.wait_timeout_micros);
            if (shared.condemned[index].load(std::memory_order_acquire) !=
                kNotCondemned) {
              break;  // consumed at the loop-top safe point
            }
            if (moved) break;  // footprint released somewhere: retry
            if (Clock::now() > shared.deadline) {
              shared.Fail(Status::DeadlineExceeded(
                  "engine exceeded max_wall_micros while blocked"));
              break;
            }
            // Timed out with a stale epoch: we are the detector now.
            if (TryDetectDeadlock(shared)) {
              strikes = 0;
              continue;
            }
            if (shared.progress.load(std::memory_order_acquire) !=
                seen_progress) {
              strikes = 0;
              continue;
            }
            if (++strikes > config.stall_patience) {
              shared.Fail(Status::Internal(
                  "engine stalled: blocked transactions but no waits-for "
                  "cycle"));
              break;
            }
          }
          {
            std::lock_guard<std::mutex> lock(shared.waiting_mu);
            shared.waiting_step[index] = -1;
          }
          break;  // retry the same pc (or consume the condemnation)
        }
      }
      if (aborted) break;
    }

    if (shared.failed.load(std::memory_order_acquire)) return false;

    if (!aborted) {
      // Last safe point: a wound that lands after this check raced with
      // the commit and is moot (the condemner only needed our footprint,
      // which Commit releases).
      uint8_t why = shared.condemned[index].exchange(
          kNotCondemned, std::memory_order_acq_rel);
      if (why != kNotCondemned) {
        consume_condemnation(why);
        aborted = true;
      }
    }

    if (!aborted) {
      shared.policy.Commit(txn);
      shared.done[index].store(true, std::memory_order_release);
      {
        std::lock_guard<std::mutex> lock(shared.trace_mu);
        shared.trace.insert(shared.trace.end(), buffer.begin(),
                            buffer.end());
      }
      shared.committed_skipped.fetch_add(skips_this_life,
                                         std::memory_order_relaxed);
      shared.txn_restarts[index] = restart_count;
      shared.completed.fetch_add(1, std::memory_order_relaxed);
      shared.progress.fetch_add(1, std::memory_order_acq_rel);
      return true;
    }

    // Abort path: retract the footprint (Abort Pokes the hub), discard
    // the buffered ops, back off, go again.
    shared.policy.Abort(txn);
    ++restart_count;
    shared.BumpMaxRestarts(restart_count);
    shared.progress.fetch_add(1, std::memory_order_acq_rel);
    backoff();
  }
}

void WorkerMain(EngineShared& shared) {
  for (;;) {
    size_t index = shared.next_txn.fetch_add(1, std::memory_order_relaxed);
    if (index >= shared.scripts.size()) return;
    if (!RunOneTxn(shared, index)) return;
  }
}

}  // namespace

Result<EngineResult> RunEngine(SchedulerPolicy& policy,
                               const std::vector<TxnScript>& scripts,
                               const EngineConfig& config) {
  NSE_RETURN_IF_ERROR(config.Validate());
  if (config.faults != nullptr) {
    return Status::Unimplemented(
        "fault injection is simulator-only; run the FaultPlan through "
        "RunSimulation");
  }
  if (config.restart.max_restarts_before_boost > 0) {
    return Status::Unimplemented(
        "the starvation watchdog (max_restarts_before_boost) is "
        "simulator-only");
  }
  if (config.restart.max_live_txns > 0) {
    return Status::Unimplemented(
        "the admission gate (max_live_txns) is simulator-only");
  }

  ItemId max_item = 0;
  for (const TxnScript& script : scripts) {
    for (const AccessStep& step : script.steps) {
      max_item = std::max(max_item, step.item);
    }
  }
  EngineShared shared(scripts, policy, config,
                      static_cast<size_t>(max_item) + 1);

  std::vector<std::thread> workers;
  workers.reserve(config.threads);
  for (size_t i = 0; i < config.threads; ++i) {
    workers.emplace_back([&shared] { WorkerMain(shared); });
  }
  for (std::thread& worker : workers) worker.join();

  if (shared.failed.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(shared.fail_mu);
    return shared.failure;
  }
  if (shared.completed.load() != scripts.size()) {
    return Status::Internal(
        "engine finished without committing every transaction");
  }

  std::sort(shared.trace.begin(), shared.trace.end(),
            [](const PendingOp& a, const PendingOp& b) {
              return a.seq < b.seq;
            });
  OpSequence ops;
  ops.reserve(shared.trace.size());
  EngineResult result;
  result.read_sources.reserve(shared.trace.size());
  for (const PendingOp& pending : shared.trace) {
    ops.push_back(pending.op);
    result.read_sources.push_back(pending.read_from);
  }

  result.completed = shared.completed.load();
  result.aborts = shared.aborts.load();
  result.restarts = shared.restarts.load();
  result.wounds = shared.wounds.load();
  result.vetoes = policy.veto_events();
  result.skipped_ops = shared.skipped_ops.load();
  result.committed_skipped_ops = shared.committed_skipped.load();
  result.wait_events = shared.wait_events.load();
  result.max_txn_restarts = shared.max_txn_restarts.load();
  result.txn_restarts = std::move(shared.txn_restarts);
  result.total_ops = ops.size();
  result.wall_micros = MicrosSince(shared.start);
  result.threads = config.threads;
  result.throughput_tps =
      result.wall_micros == 0
          ? 0
          : static_cast<double>(result.completed) * 1e6 /
                static_cast<double>(result.wall_micros);
  result.schedule = Schedule(std::move(ops));
  return result;
}

}  // namespace nse
