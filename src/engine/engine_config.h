// Shared run configuration for the two scheduler drivers — the wall-clock
// multithreaded engine (engine.h) and the deterministic tick simulator
// (scheduler/sim.h). One validated config replaces the old grow-by-accretion
// SimConfig struct: every knob combination is checked by Validate() (invoked
// by both drivers at entry), and the fluent Builder returns
// Result<EngineConfig> so inconsistent combinations are rejected at
// construction instead of silently accepted.
//
// The RestartPolicy (backoff shape, starvation watchdog, admission gate)
// lives here too, along with the pure backoff-delay function both drivers
// share; the simulator interprets delays as ticks, the engine as multiples
// of backoff_unit_micros.

#ifndef NSE_ENGINE_ENGINE_CONFIG_H_
#define NSE_ENGINE_ENGINE_CONFIG_H_

#include <cstdint>

#include "common/status.h"
#include "txn/operation.h"

namespace nse {

class FaultPlan;

/// Governs how aborted transactions re-enter the system and how many
/// transactions may be live at once. The defaults reproduce the historical
/// behavior bit-for-bit: linear backoff min(2 + 4*n, 128), no jitter, no
/// watchdog, no admission gate.
struct RestartPolicy {
  /// Backoff shape as a function of the transaction's restart count n
  /// (n >= 1 at the first computation), before jitter and capping.
  enum class Backoff {
    kImmediate,    ///< re-enter next tick
    kFixed,        ///< base ticks, every time
    kLinear,       ///< base + step * n   (legacy default)
    kExponential,  ///< base << (n - 1), capped — the thundering-herd shape
  };
  Backoff backoff = Backoff::kLinear;
  uint64_t base = 2;    ///< first-restart delay (ticks)
  uint64_t step = 4;    ///< linear slope (kLinear only)
  uint64_t cap = 128;   ///< upper bound on the computed delay
  /// Deterministic jitter: a pure-function draw from [0, jitter] (keyed on
  /// jitter_seed, txn, restart count) added to the delay, de-synchronizing
  /// victims of the same conflict without breaking reproducibility.
  uint64_t jitter = 0;
  uint64_t jitter_seed = 1;
  /// Starvation watchdog: once a transaction's restart count exceeds this,
  /// it is *boosted* rather than left to lose every future race.
  /// Escalations are strictly serialized: the lowest-id boosted unfinished
  /// transaction holds the privilege — zero backoff and scanned ahead of
  /// everyone else each tick — while any other boosted transaction is
  /// *parked* (idle, holding no footprint) until the privileged one
  /// finishes. Giving several chronic restarters free restarts at once
  /// would just trade livelock-by-backoff for livelock-by-collision (two
  /// free restarters can re-abort each other forever). 0 disables.
  /// Simulator-only; the engine rejects it (Unimplemented).
  uint64_t max_restarts_before_boost = 0;
  /// Admission gate: max transactions live (admitted, not yet done) at
  /// once. 0 = unlimited. Arrivals beyond the gate are queued (admitted in
  /// (arrival, id) order as slots free) or shed (dropped, counted, never
  /// run) per `overflow`. Simulator-only; the engine rejects it.
  size_t max_live_txns = 0;
  enum class Overflow { kQueue, kShed };
  Overflow overflow = Overflow::kQueue;
};

/// Run limits and switches for both drivers. Aggregate-constructible with
/// the historical defaults (so `EngineConfig{}` is the legacy SimConfig);
/// prefer the Builder for anything non-default — it validates at Build().
struct EngineConfig {
  // ---- shared knobs (simulator and engine) ------------------------------
  /// Simulator: hard tick stop (error if exceeded).
  uint64_t max_ticks = 1'000'000;
  /// Consecutive fully-stalled scheduling rounds (blocked transactions, no
  /// waits-for cycle, no one in deliberate backoff) tolerated before the
  /// run is declared wedged. Optimistic policies resolve such stalls
  /// themselves — an SGT veto escalates to kAbortSelf after its veto
  /// threshold — so drivers must not error on the first cycle-free stall.
  uint64_t stall_patience = 64;
  /// Restart governance: backoff, starvation watchdog, admission gate.
  RestartPolicy restart;
  /// Optional fault injection (not owned; nullptr = no faults).
  /// Simulator-only; the engine rejects it (Unimplemented).
  const FaultPlan* faults = nullptr;

  // ---- engine-only knobs (ignored by the simulator) ---------------------
  /// Worker threads driving transactions concurrently.
  size_t threads = 1;
  /// Upper bound on one hub wait before a blocked worker re-checks its
  /// condemned flag and the global progress counter (the deadlock
  /// detector's polling cadence, and the safety net against any missed
  /// wakeup).
  uint64_t wait_timeout_micros = 200;
  /// Engine interpretation of one backoff-delay unit (RestartBackoffDelay
  /// returns tick counts; the engine sleeps delay * backoff_unit_micros).
  uint64_t backoff_unit_micros = 20;
  /// Simulated per-operation I/O latency: each executed operation sleeps
  /// this long while holding its scheduler footprint. 0 = pure CPU. This
  /// is the knob that makes thread-scaling measurable on small hosts:
  /// sleeps overlap across workers even on a single core.
  uint64_t op_latency_micros = 0;
  /// Synthetic CPU work per executed operation (spin iterations).
  uint64_t op_cost = 0;
  /// Hard wall-clock deadline for one engine run (error if exceeded).
  uint64_t max_wall_micros = 30'000'000;

  /// Rejects inconsistent knob combinations (both drivers call this at
  /// entry; the Builder calls it at Build()).
  Status Validate() const;

  /// The historical defaults, spelled out.
  static EngineConfig Default() { return EngineConfig{}; }

  /// Fluent validated construction (defined below the struct):
  ///   NSE_ASSIGN_OR_RETURN(EngineConfig cfg,
  ///                        EngineConfig::Builder().Threads(8).Build());
  class Builder;
};

class EngineConfig::Builder {
 public:
  Builder& MaxTicks(uint64_t v) { cfg_.max_ticks = v; return *this; }
  Builder& StallPatience(uint64_t v) { cfg_.stall_patience = v; return *this; }
  Builder& Restart(const RestartPolicy& v) { cfg_.restart = v; return *this; }
  Builder& Faults(const FaultPlan* v) { cfg_.faults = v; return *this; }
  Builder& Threads(size_t v) { cfg_.threads = v; return *this; }
  Builder& WaitTimeoutMicros(uint64_t v) {
    cfg_.wait_timeout_micros = v;
    return *this;
  }
  Builder& BackoffUnitMicros(uint64_t v) {
    cfg_.backoff_unit_micros = v;
    return *this;
  }
  Builder& OpLatencyMicros(uint64_t v) {
    cfg_.op_latency_micros = v;
    return *this;
  }
  Builder& OpCost(uint64_t v) { cfg_.op_cost = v; return *this; }
  Builder& MaxWallMicros(uint64_t v) {
    cfg_.max_wall_micros = v;
    return *this;
  }

  /// Validates and returns the config, or InvalidArgument naming the
  /// inconsistent knobs.
  Result<EngineConfig> Build() const;

 private:
  EngineConfig cfg_;
};

/// The restart delay for a transaction entering its n-th restart
/// (n = restart count, >= 1). Pure function of (policy, txn, n) so replays
/// are bit-identical. The cap applies to the shape; jitter rides on top.
/// Shared by both drivers (ticks for the simulator; the engine multiplies
/// by backoff_unit_micros).
uint64_t RestartBackoffDelay(const RestartPolicy& rp, TxnId txn, uint64_t n);

}  // namespace nse

#endif  // NSE_ENGINE_ENGINE_CONFIG_H_
