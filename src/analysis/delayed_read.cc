#include "analysis/delayed_read.h"

#include "analysis/analysis_context.h"
#include "analysis/reads_from.h"
#include "common/string_util.h"

namespace nse {

std::string DrViolation::ToString(const Database& db,
                                  const Schedule& schedule) const {
  return StrCat("operation ", schedule.at(reader_pos).ToString(db),
                " at position ", reader_pos, " touches the write ",
                schedule.at(writer_pos).ToString(db), " of T", writer_txn,
                ", which has operations after position ", reader_pos);
}

std::optional<DrViolation> FindDrViolation(const Schedule& schedule) {
  // The memoized context path is the single implementation (Definition 5
  // over the reads-from relation); a transient context serves one-shot use.
  AnalysisContext ctx(schedule);
  return ctx.dr_violation();
}

bool IsDelayedRead(const Schedule& schedule) {
  return !FindDrViolation(schedule).has_value();
}

bool IsAvoidsCascadingAborts(const Schedule& schedule) {
  // With commit-at-last-operation, ACA and DR test the same condition; see
  // the header. Kept separate so call sites document their intent.
  return IsDelayedRead(schedule);
}

std::optional<DrViolation> FindStrictViolation(const Schedule& schedule) {
  // For every operation o at position j touching item x, the last write on x
  // before j (by another transaction) must belong to a completed txn.
  std::vector<std::optional<size_t>> last_write;
  for (size_t j = 0; j < schedule.size(); ++j) {
    const Operation& op = schedule.at(j);
    if (op.entity >= last_write.size()) last_write.resize(op.entity + 1);
    const auto& prev = last_write[op.entity];
    if (prev.has_value()) {
      TxnId writer = schedule.at(*prev).txn;
      if (writer != op.txn && !schedule.CompletedBy(writer, j)) {
        return DrViolation{j, *prev, writer};
      }
    }
    if (op.is_write()) last_write[op.entity] = j;
  }
  return std::nullopt;
}

bool IsStrict(const Schedule& schedule) {
  return !FindStrictViolation(schedule).has_value();
}

}  // namespace nse
