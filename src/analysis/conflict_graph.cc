#include "analysis/conflict_graph.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace nse {

ConflictGraph ConflictGraph::Build(const Schedule& schedule) {
  ConflictGraph graph;
  graph.nodes_ = schedule.txn_ids();
  size_t n = graph.nodes_.size();
  graph.adj_.assign(n, std::vector<bool>(n, false));
  const OpSequence& ops = schedule.ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    for (size_t j = i + 1; j < ops.size(); ++j) {
      if (Conflicts(ops[i], ops[j])) {
        graph.adj_[graph.IndexOf(ops[i].txn)][graph.IndexOf(ops[j].txn)] =
            true;
      }
    }
  }
  return graph;
}

size_t ConflictGraph::IndexOf(TxnId txn) const {
  auto it = std::lower_bound(nodes_.begin(), nodes_.end(), txn);
  NSE_CHECK_MSG(it != nodes_.end() && *it == txn, "unknown txn %u", txn);
  return static_cast<size_t>(it - nodes_.begin());
}

bool ConflictGraph::HasEdge(TxnId from, TxnId to) const {
  return adj_[IndexOf(from)][IndexOf(to)];
}

std::vector<std::pair<TxnId, TxnId>> ConflictGraph::Edges() const {
  std::vector<std::pair<TxnId, TxnId>> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (size_t j = 0; j < nodes_.size(); ++j) {
      if (adj_[i][j]) out.emplace_back(nodes_[i], nodes_[j]);
    }
  }
  return out;
}

bool ConflictGraph::IsAcyclic() const { return TopologicalOrder().has_value(); }

std::optional<std::vector<TxnId>> ConflictGraph::TopologicalOrder() const {
  size_t n = nodes_.size();
  std::vector<size_t> indegree(n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (adj_[i][j]) ++indegree[j];
    }
  }
  std::vector<size_t> ready;
  for (size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  std::vector<TxnId> order;
  order.reserve(n);
  // Pop the smallest ready node for a deterministic canonical order.
  while (!ready.empty()) {
    auto it = std::min_element(ready.begin(), ready.end());
    size_t node = *it;
    ready.erase(it);
    order.push_back(nodes_[node]);
    for (size_t j = 0; j < n; ++j) {
      if (adj_[node][j] && --indegree[j] == 0) ready.push_back(j);
    }
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

namespace {

void AllTopoRec(const std::vector<TxnId>& nodes,
                const std::vector<std::vector<bool>>& adj,
                std::vector<size_t>& indegree, std::vector<bool>& used,
                std::vector<TxnId>& current, size_t limit,
                std::vector<std::vector<TxnId>>& out) {
  if (out.size() >= limit) return;
  if (current.size() == nodes.size()) {
    out.push_back(current);
    return;
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (used[i] || indegree[i] != 0) continue;
    used[i] = true;
    current.push_back(nodes[i]);
    for (size_t j = 0; j < nodes.size(); ++j) {
      if (adj[i][j]) --indegree[j];
    }
    AllTopoRec(nodes, adj, indegree, used, current, limit, out);
    for (size_t j = 0; j < nodes.size(); ++j) {
      if (adj[i][j]) ++indegree[j];
    }
    current.pop_back();
    used[i] = false;
    if (out.size() >= limit) return;
  }
}

}  // namespace

std::vector<std::vector<TxnId>> ConflictGraph::AllTopologicalOrders(
    size_t limit) const {
  if (!IsAcyclic()) return {};
  size_t n = nodes_.size();
  std::vector<size_t> indegree(n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (adj_[i][j]) ++indegree[j];
    }
  }
  std::vector<bool> used(n, false);
  std::vector<TxnId> current;
  std::vector<std::vector<TxnId>> out;
  AllTopoRec(nodes_, adj_, indegree, used, current, limit, out);
  return out;
}

std::optional<std::vector<TxnId>> ConflictGraph::FindCycle() const {
  size_t n = nodes_.size();
  // Colors: 0 = white, 1 = on stack, 2 = done.
  std::vector<int> color(n, 0);
  std::vector<size_t> parent(n, SIZE_MAX);
  for (size_t root = 0; root < n; ++root) {
    if (color[root] != 0) continue;
    // Iterative DFS.
    std::vector<std::pair<size_t, size_t>> stack{{root, 0}};
    color[root] = 1;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      bool advanced = false;
      for (size_t j = next; j < n; ++j) {
        if (!adj_[node][j]) continue;
        next = j + 1;
        if (color[j] == 1) {
          // Found a cycle: walk parents from `node` back to j.
          std::vector<TxnId> cycle{nodes_[j]};
          size_t walk = node;
          while (walk != j) {
            cycle.push_back(nodes_[walk]);
            walk = parent[walk];
          }
          cycle.push_back(nodes_[j]);
          std::reverse(cycle.begin() + 1, cycle.end() - 1);
          return cycle;
        }
        if (color[j] == 0) {
          color[j] = 1;
          parent[j] = node;
          stack.emplace_back(j, 0);
          advanced = true;
          break;
        }
      }
      if (!advanced) {
        color[node] = 2;
        stack.pop_back();
      }
    }
  }
  return std::nullopt;
}

std::string ConflictGraph::ToString() const {
  std::vector<std::string> parts;
  for (const auto& [from, to] : Edges()) {
    parts.push_back(StrCat("T", from, " -> T", to));
  }
  return StrJoin(parts, ", ");
}

}  // namespace nse
