#include "analysis/conflict_graph.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace nse {

ConflictGraph::ConflictGraph(std::vector<TxnId> nodes)
    : nodes_(std::move(nodes)),
      out_(nodes_.size()),
      indegree_(nodes_.size(), 0) {
  NSE_CHECK_MSG(
      std::is_sorted(nodes_.begin(), nodes_.end()) &&
          std::adjacent_find(nodes_.begin(), nodes_.end()) == nodes_.end(),
      "conflict graph nodes must be sorted and distinct");
}

ConflictGraph ConflictGraph::Build(const Schedule& schedule) {
  // One shared sweep (SweepConflicts) over per-item access histories:
  // AddEdgeByIndex dedupes the candidate pairs, so total work is
  // O(ops · txns-per-item) instead of O(ops²).
  ConflictGraph graph(schedule.txn_ids());
  internal::SweepConflicts(
      schedule, [](size_t, uint32_t) {},
      [&graph](uint32_t from, uint32_t to, size_t) {
        graph.AddEdgeByIndex(from, to);
      });
  return graph;
}

size_t ConflictGraph::IndexOf(TxnId txn) const {
  auto it = std::lower_bound(nodes_.begin(), nodes_.end(), txn);
  NSE_CHECK_MSG(it != nodes_.end() && *it == txn, "unknown txn %u", txn);
  return static_cast<size_t>(it - nodes_.begin());
}

bool ConflictGraph::AddEdgeByIndex(uint32_t from, uint32_t to) {
  std::vector<uint32_t>& succ = out_[from];
  auto it = std::lower_bound(succ.begin(), succ.end(), to);
  if (it != succ.end() && *it == to) return false;
  succ.insert(it, to);
  ++indegree_[to];
  ++num_edges_;
  topo_valid_ = false;
  return true;
}

bool ConflictGraph::AddEdge(TxnId from, TxnId to) {
  return AddEdgeByIndex(static_cast<uint32_t>(IndexOf(from)),
                        static_cast<uint32_t>(IndexOf(to)));
}

bool ConflictGraph::HasEdge(TxnId from, TxnId to) const {
  const std::vector<uint32_t>& succ = out_[IndexOf(from)];
  uint32_t target = static_cast<uint32_t>(IndexOf(to));
  return std::binary_search(succ.begin(), succ.end(), target);
}

std::vector<std::pair<TxnId, TxnId>> ConflictGraph::Edges() const {
  std::vector<std::pair<TxnId, TxnId>> out;
  out.reserve(num_edges_);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (uint32_t j : out_[i]) out.emplace_back(nodes_[i], nodes_[j]);
  }
  return out;
}

const std::optional<std::vector<TxnId>>& ConflictGraph::CachedTopo() const {
  if (topo_valid_) return topo_;
  size_t n = nodes_.size();
  std::vector<uint32_t> indegree = indegree_;
  std::vector<size_t> ready;
  for (size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  std::vector<TxnId> order;
  order.reserve(n);
  // Pop the smallest ready node for a deterministic canonical order.
  while (!ready.empty()) {
    auto it = std::min_element(ready.begin(), ready.end());
    size_t node = *it;
    ready.erase(it);
    order.push_back(nodes_[node]);
    for (uint32_t j : out_[node]) {
      if (--indegree[j] == 0) ready.push_back(j);
    }
  }
  if (order.size() != n) {
    topo_ = std::nullopt;
  } else {
    topo_ = std::move(order);
  }
  topo_valid_ = true;
  return topo_;
}

bool ConflictGraph::IsAcyclic() const { return CachedTopo().has_value(); }

std::optional<std::vector<TxnId>> ConflictGraph::TopologicalOrder() const {
  return CachedTopo();
}

namespace {

void AllTopoRec(const std::vector<TxnId>& nodes,
                const std::vector<std::vector<uint32_t>>& out_adj,
                std::vector<uint32_t>& indegree, std::vector<bool>& used,
                std::vector<TxnId>& current, size_t limit,
                std::vector<std::vector<TxnId>>& out) {
  if (out.size() >= limit) return;
  if (current.size() == nodes.size()) {
    out.push_back(current);
    return;
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (used[i] || indegree[i] != 0) continue;
    used[i] = true;
    current.push_back(nodes[i]);
    for (uint32_t j : out_adj[i]) --indegree[j];
    AllTopoRec(nodes, out_adj, indegree, used, current, limit, out);
    for (uint32_t j : out_adj[i]) ++indegree[j];
    current.pop_back();
    used[i] = false;
    if (out.size() >= limit) return;
  }
}

}  // namespace

std::vector<std::vector<TxnId>> ConflictGraph::AllTopologicalOrders(
    size_t limit) const {
  if (!IsAcyclic()) return {};
  std::vector<uint32_t> indegree = indegree_;
  std::vector<bool> used(nodes_.size(), false);
  std::vector<TxnId> current;
  std::vector<std::vector<TxnId>> out;
  AllTopoRec(nodes_, out_, indegree, used, current, limit, out);
  return out;
}

std::optional<std::vector<TxnId>> ConflictGraph::FindCycle() const {
  size_t n = nodes_.size();
  // Colors: 0 = white, 1 = on stack, 2 = done.
  std::vector<int> color(n, 0);
  std::vector<size_t> parent(n, SIZE_MAX);
  for (size_t root = 0; root < n; ++root) {
    if (color[root] != 0) continue;
    // Iterative DFS; `next` indexes into the successor list of `node`.
    std::vector<std::pair<size_t, size_t>> stack{{root, 0}};
    color[root] = 1;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      bool advanced = false;
      const std::vector<uint32_t>& succ = out_[node];
      for (size_t k = next; k < succ.size(); ++k) {
        size_t j = succ[k];
        next = k + 1;
        if (color[j] == 1) {
          // Found a cycle: walk parents from `node` back to j.
          std::vector<TxnId> cycle{nodes_[j]};
          size_t walk = node;
          while (walk != j) {
            cycle.push_back(nodes_[walk]);
            walk = parent[walk];
          }
          cycle.push_back(nodes_[j]);
          std::reverse(cycle.begin() + 1, cycle.end() - 1);
          return cycle;
        }
        if (color[j] == 0) {
          color[j] = 1;
          parent[j] = node;
          stack.emplace_back(j, 0);
          advanced = true;
          break;
        }
      }
      if (!advanced) {
        color[node] = 2;
        stack.pop_back();
      }
    }
  }
  return std::nullopt;
}

std::string ConflictGraph::ToString() const {
  std::vector<std::string> parts;
  for (const auto& [from, to] : Edges()) {
    parts.push_back(StrCat("T", from, " -> T", to));
  }
  return StrJoin(parts, ", ");
}

}  // namespace nse
