#include "analysis/conflict_graph.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace nse {

namespace {

/// Test-and-set of `accessor`'s bit in a lazily grown word vector; returns
/// true when the bit was newly set.
bool TestAndSetBit(std::vector<uint64_t>& words, uint32_t accessor) {
  const size_t w = accessor >> 6;
  if (w >= words.size()) words.resize(w + 1, 0);
  const uint64_t bit = uint64_t{1} << (accessor & 63);
  if ((words[w] & bit) != 0) return false;
  words[w] |= bit;
  return true;
}

bool TestBit(const std::vector<uint64_t>& words, uint32_t accessor) {
  const size_t w = accessor >> 6;
  return w < words.size() &&
         (words[w] & (uint64_t{1} << (accessor & 63))) != 0;
}

void ClearBit(std::vector<uint64_t>& words, uint32_t accessor) {
  const size_t w = accessor >> 6;
  if (w < words.size()) words[w] &= ~(uint64_t{1} << (accessor & 63));
}

}  // namespace

void ConflictAccessIndex::Record(uint32_t accessor, bool is_write,
                                 ItemId item) {
  if (item >= history_.size()) history_.resize(item + 1);
  ItemHistory& h = history_[item];
  if (TestAndSetBit(is_write ? h.writer_bits : h.reader_bits, accessor)) {
    (is_write ? h.writers : h.readers).push_back(accessor);
  }
}

void ConflictAccessIndex::Erase(uint32_t accessor) {
  for (ItemHistory& h : history_) {
    if (TestBit(h.writer_bits, accessor)) {
      ClearBit(h.writer_bits, accessor);
      h.writers.erase(
          std::remove(h.writers.begin(), h.writers.end(), accessor),
          h.writers.end());
    }
    if (TestBit(h.reader_bits, accessor)) {
      ClearBit(h.reader_bits, accessor);
      h.readers.erase(
          std::remove(h.readers.begin(), h.readers.end(), accessor),
          h.readers.end());
    }
    // Debug-only retraction audit: membership bit and list must agree —
    // a surviving list entry here would resurrect the retracted txn's
    // conflicts on the next ForEachConflict.
    NSE_DCHECK_MSG(std::find(h.writers.begin(), h.writers.end(), accessor) ==
                           h.writers.end() &&
                       std::find(h.readers.begin(), h.readers.end(),
                                 accessor) == h.readers.end(),
                   "access-index entries for retracted txn %u survived",
                   accessor);
  }
}

namespace internal {

void FlatAdjacency::Reset(size_t num_nodes) {
  // Fresh regions with a little slack each, so the first neighbors land
  // without an immediate compaction.
  constexpr uint32_t kInitialCap = 2;
  start_.resize(num_nodes);
  count_.assign(num_nodes, 0);
  cap_.assign(num_nodes, kInitialCap);
  for (size_t i = 0; i < num_nodes; ++i) {
    start_[i] = static_cast<uint32_t>(i * kInitialCap);
  }
  slab_.assign(num_nodes * kInitialCap, 0);
  compactions_ = 0;
}

bool FlatAdjacency::Insert(size_t node, uint32_t value) {
  uint32_t* base = slab_.data() + start_[node];
  uint32_t* end = base + count_[node];
  uint32_t* pos = std::lower_bound(base, end, value);
  if (pos != end && *pos == value) return false;
  if (count_[node] == cap_[node]) {
    const size_t offset = static_cast<size_t>(pos - base);
    Compact(node);
    base = slab_.data() + start_[node];
    end = base + count_[node];
    pos = base + offset;
  }
  std::copy_backward(pos, end, end + 1);
  *pos = value;
  ++count_[node];
  return true;
}

bool FlatAdjacency::Erase(size_t node, uint32_t value) {
  uint32_t* base = slab_.data() + start_[node];
  uint32_t* end = base + count_[node];
  uint32_t* pos = std::lower_bound(base, end, value);
  if (pos == end || *pos != value) return false;
  std::copy(pos + 1, end, pos);
  --count_[node];
  return true;
}

bool FlatAdjacency::Contains(size_t node, uint32_t value) const {
  const uint32_t* base = slab_.data() + start_[node];
  return std::binary_search(base, base + count_[node], value);
}

void FlatAdjacency::Compact(size_t grow_node) {
  // One pass re-layout: every region gets proportional slack (count/2 + 2),
  // so each node triggers at most O(log degree) compactions as it grows and
  // the slab stays within a constant factor of the live data.
  ++compactions_;
  std::vector<uint32_t> new_start(start_.size());
  size_t total = 0;
  for (size_t i = 0; i < start_.size(); ++i) {
    new_start[i] = static_cast<uint32_t>(total);
    uint32_t cap = count_[i] + count_[i] / 2 + 2;
    if (i == grow_node && cap < count_[i] + 1) cap = count_[i] + 1;
    cap_[i] = cap;
    total += cap;
  }
  std::vector<uint32_t> new_slab(total);
  for (size_t i = 0; i < start_.size(); ++i) {
    std::copy(slab_.begin() + start_[i],
              slab_.begin() + start_[i] + count_[i],
              new_slab.begin() + new_start[i]);
  }
  slab_ = std::move(new_slab);
  start_ = std::move(new_start);
}

}  // namespace internal

ConflictGraph::ConflictGraph(std::vector<TxnId> nodes, CycleMode mode)
    : nodes_(std::move(nodes)),
      out_(nodes_.size()),
      indegree_(nodes_.size(), 0),
      mode_(mode) {
  NSE_CHECK_MSG(
      std::is_sorted(nodes_.begin(), nodes_.end()) &&
          std::adjacent_find(nodes_.begin(), nodes_.end()) == nodes_.end(),
      "conflict graph nodes must be sorted and distinct");
  if (mode_ == CycleMode::kIncremental) {
    in_.Reset(nodes_.size());
    ord_.resize(nodes_.size());
    // Any order over an edgeless graph is topological; start at identity.
    for (size_t i = 0; i < ord_.size(); ++i) {
      ord_[i] = static_cast<uint32_t>(i);
    }
    mark_.assign(nodes_.size(), 0);
    parent_.assign(nodes_.size(), UINT32_MAX);
  }
}

ConflictGraph ConflictGraph::Build(const Schedule& schedule, CycleMode mode) {
  // Dense bitset sweep: first-occurrence conflict pairs only, so the graph
  // sees no duplicate inserts at all and hot items cost word scans instead
  // of history walks. Emission order equals the reference sweep's
  // successful-insert order (see ConflictBitSweep), so the result is
  // bit-identical to BuildReference.
  ConflictGraph graph(schedule.txn_ids(), mode);
  const std::vector<TxnId>& txn_ids = schedule.txn_ids();
  internal::ConflictBitSweep sweep(static_cast<uint32_t>(txn_ids.size()),
                                   /*num_planes=*/1);
  const OpSequence& ops = schedule.ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    const Operation& op = ops[i];
    const uint32_t idx = static_cast<uint32_t>(
        std::lower_bound(txn_ids.begin(), txn_ids.end(), op.txn) -
        txn_ids.begin());
    sweep.Access(idx, op.is_write(), op.entity, /*extra_plane=*/-1,
                 [&graph, idx, i](size_t, uint32_t from) {
                   graph.AddEdgeByIndexAt(from, idx, i);
                 });
  }
  return graph;
}

ConflictGraph ConflictGraph::BuildReference(const Schedule& schedule,
                                            CycleMode mode) {
  // One shared sweep (SweepConflicts) over per-item access histories:
  // AddEdgeByIndex dedupes the candidate pairs, so total work is
  // O(ops · txns-per-item) instead of O(ops²).
  ConflictGraph graph(schedule.txn_ids(), mode);
  internal::SweepConflicts(
      schedule, [](size_t, uint32_t) {},
      [&graph](uint32_t from, uint32_t to, size_t pos) {
        graph.AddEdgeByIndexAt(from, to, pos);
      });
  return graph;
}

size_t ConflictGraph::IndexOf(TxnId txn) const {
  auto it = std::lower_bound(nodes_.begin(), nodes_.end(), txn);
  NSE_CHECK_MSG(it != nodes_.end() && *it == txn, "unknown txn %u", txn);
  return static_cast<size_t>(it - nodes_.begin());
}

bool ConflictGraph::AddEdgeByIndexInternal(uint32_t from, uint32_t to,
                                           std::optional<size_t> op_pos) {
  if (!out_.Insert(from, to)) return false;
  ++indegree_[to];
  ++num_edges_;
  topo_valid_ = false;
  if (mode_ == CycleMode::kIncremental) {
    in_.Insert(to, from);
    // While a cycle is recorded the maintained order is suspended (it is
    // re-anchored by RebuildOrderAndCycle once a removal may have broken
    // the cycle).
    if (!cycle_.has_value()) MaintainOrder(from, to, op_pos);
  }
  return true;
}

bool ConflictGraph::AddEdgeByIndex(uint32_t from, uint32_t to) {
  return AddEdgeByIndexInternal(from, to, std::nullopt);
}

bool ConflictGraph::AddEdgeByIndexAt(uint32_t from, uint32_t to,
                                     size_t op_pos) {
  return AddEdgeByIndexInternal(from, to, op_pos);
}

bool ConflictGraph::AddEdge(TxnId from, TxnId to) {
  return AddEdgeByIndex(static_cast<uint32_t>(IndexOf(from)),
                        static_cast<uint32_t>(IndexOf(to)));
}

uint32_t ConflictGraph::NextStamp() const {
  if (++stamp_ == 0) {
    // Stamp counter wrapped: reset all marks once.
    std::fill(mark_.begin(), mark_.end(), 0);
    stamp_ = 1;
  }
  return stamp_;
}

void ConflictGraph::MaintainOrder(uint32_t x, uint32_t y,
                                  std::optional<size_t> op_pos) {
  // Pearce–Kelly: the order is violated only when ord(y) <= ord(x); the
  // affected region is the open interval of ranks (ord(y), ord(x)).
  if (ord_[x] < ord_[y]) return;
  const uint32_t lb = ord_[y];
  const uint32_t ub = ord_[x];

  // Forward search from y over nodes with ord <= ub. Finding x closes the
  // first cycle: record the edge, a witness walked back over the DFS
  // parents, and the position of the operation that created the edge.
  // parent_ entries are only read for nodes marked with this stamp, so the
  // member scratch needs no per-insertion clearing — the cost stays
  // O(affected region).
  const uint32_t stamp = NextStamp();
  std::vector<uint32_t> delta_f;
  std::vector<uint32_t> stack{y};
  mark_[y] = stamp;
  while (!stack.empty()) {
    uint32_t node = stack.back();
    stack.pop_back();
    delta_f.push_back(node);
    for (uint32_t succ : out_[node]) {
      if (succ == x) {
        // Cycle x -> y -> ... -> node -> x.
        std::vector<TxnId> cycle{nodes_[x], nodes_[y]};
        std::vector<TxnId> tail;
        for (uint32_t walk = node; walk != y; walk = parent_[walk]) {
          tail.push_back(nodes_[walk]);
        }
        cycle.insert(cycle.end(), tail.rbegin(), tail.rend());
        cycle.push_back(nodes_[x]);
        cycle_ = std::move(cycle);
        cycle_edge_ = std::make_pair(nodes_[x], nodes_[y]);
        cycle_op_pos_ = op_pos;
        return;
      }
      if (mark_[succ] != stamp && ord_[succ] <= ub) {
        mark_[succ] = stamp;
        parent_[succ] = node;
        stack.push_back(succ);
      }
    }
  }

  // No cycle: backward search from x over nodes with ord >= lb, then merge
  // the two regions — backward nodes take the smallest pooled ranks (they
  // must precede x), forward nodes the rest, each group keeping its
  // relative order.
  const uint32_t back_stamp = NextStamp();
  std::vector<uint32_t> delta_b;
  stack.assign(1, x);
  mark_[x] = back_stamp;
  while (!stack.empty()) {
    uint32_t node = stack.back();
    stack.pop_back();
    delta_b.push_back(node);
    for (uint32_t pred : in_[node]) {
      if (mark_[pred] != back_stamp && ord_[pred] >= lb) {
        mark_[pred] = back_stamp;
        stack.push_back(pred);
      }
    }
  }

  auto by_ord = [this](uint32_t a, uint32_t b) { return ord_[a] < ord_[b]; };
  std::sort(delta_b.begin(), delta_b.end(), by_ord);
  std::sort(delta_f.begin(), delta_f.end(), by_ord);
  std::vector<uint32_t> pool;
  pool.reserve(delta_b.size() + delta_f.size());
  for (uint32_t node : delta_b) pool.push_back(ord_[node]);
  for (uint32_t node : delta_f) pool.push_back(ord_[node]);
  std::sort(pool.begin(), pool.end());
  size_t slot = 0;
  for (uint32_t node : delta_b) ord_[node] = pool[slot++];
  for (uint32_t node : delta_f) ord_[node] = pool[slot++];
}

void ConflictGraph::RebuildOrderAndCycle() {
  // Kahn over the current edge set. If acyclic, the completion order is a
  // valid online order and the cycle state clears; otherwise re-detect a
  // witness with the batch DFS (its closing edge is the witness's last
  // hop; no operation position is known for a re-detected cycle).
  NSE_CHECK_MSG(mode_ == CycleMode::kIncremental,
                "RebuildOrderAndCycle requires incremental mode");
  std::vector<uint32_t> indegree = indegree_;
  std::vector<uint32_t> ready;
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  uint32_t rank = 0;
  std::vector<uint32_t> order(nodes_.size(), UINT32_MAX);
  while (!ready.empty()) {
    uint32_t node = ready.back();
    ready.pop_back();
    order[node] = rank++;
    for (uint32_t succ : out_[node]) {
      if (--indegree[succ] == 0) ready.push_back(succ);
    }
  }
  if (rank == nodes_.size()) {
    ord_ = std::move(order);
    cycle_.reset();
    cycle_edge_.reset();
    cycle_op_pos_.reset();
    return;
  }
  cycle_ = FindCycle();
  NSE_CHECK(cycle_.has_value());
  const std::vector<TxnId>& cycle = *cycle_;
  cycle_edge_ = std::make_pair(cycle[cycle.size() - 2], cycle.front());
  cycle_op_pos_.reset();
}

bool ConflictGraph::RemoveEdge(TxnId from, TxnId to) {
  NSE_CHECK_MSG(mode_ == CycleMode::kIncremental,
                "RemoveEdge requires incremental mode");
  uint32_t x = static_cast<uint32_t>(IndexOf(from));
  uint32_t y = static_cast<uint32_t>(IndexOf(to));
  if (!out_.Erase(x, y)) return false;
  NSE_CHECK(in_.Erase(y, x));
  --indegree_[y];
  --num_edges_;
  topo_valid_ = false;
  // Removal never invalidates a valid order (fewer constraints); it can
  // only break a recorded cycle, so re-anchor in that case.
  if (cycle_.has_value()) RebuildOrderAndCycle();
  return true;
}

void ConflictGraph::RemoveEdgesOf(TxnId txn) {
  NSE_CHECK_MSG(mode_ == CycleMode::kIncremental,
                "RemoveEdgesOf requires incremental mode");
  uint32_t idx = static_cast<uint32_t>(IndexOf(txn));
  // Erases shift only within the touched region, so the spans over idx's
  // own regions stay valid throughout.
  for (uint32_t succ : out_[idx]) {
    NSE_CHECK(in_.Erase(succ, idx));
    --indegree_[succ];
  }
  for (uint32_t pred : in_[idx]) {
    NSE_CHECK(out_.Erase(pred, idx));
  }
  num_edges_ -= out_.size(idx) + in_.size(idx);
  out_.Clear(idx);
  in_.Clear(idx);
  indegree_[idx] = 0;
  NSE_DCHECK_MSG(NoEdgesReference(idx),
                 "edges referencing retracted txn %u survived", txn);
  topo_valid_ = false;
  if (cycle_.has_value()) RebuildOrderAndCycle();
}

bool ConflictGraph::NoEdgesReference(uint32_t idx) const {
  // Debug-only retraction audit (the concurrent engine leans on this): a
  // fully retracted node must appear in no other node's adjacency, in
  // either direction.
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    if (i == idx) continue;
    if (out_.Contains(i, idx) || in_.Contains(i, idx)) return false;
  }
  return true;
}

std::vector<TxnId> ConflictGraph::Predecessors(TxnId txn) const {
  NSE_CHECK_MSG(mode_ == CycleMode::kIncremental,
                "Predecessors requires incremental mode");
  std::vector<TxnId> out;
  const internal::FlatAdjacency::Span pred = in_[IndexOf(txn)];
  out.reserve(pred.size());
  for (uint32_t idx : pred) out.push_back(nodes_[idx]);
  return out;
}

std::vector<TxnId> ConflictGraph::Successors(TxnId txn) const {
  NSE_CHECK_MSG(mode_ == CycleMode::kIncremental,
                "Successors requires incremental mode");
  std::vector<TxnId> out;
  const internal::FlatAdjacency::Span succ = out_[IndexOf(txn)];
  out.reserve(succ.size());
  for (uint32_t idx : succ) out.push_back(nodes_[idx]);
  return out;
}

bool ConflictGraph::has_cycle() const {
  if (mode_ == CycleMode::kIncremental) return cycle_.has_value();
  return !IsAcyclic();
}

std::vector<TxnId> ConflictGraph::OnlineTopologicalOrder() const {
  NSE_CHECK_MSG(mode_ == CycleMode::kIncremental && !cycle_.has_value(),
                "online order requires an acyclic incremental graph");
  std::vector<uint32_t> by_rank(nodes_.size());
  for (uint32_t i = 0; i < nodes_.size(); ++i) by_rank[i] = i;
  std::sort(by_rank.begin(), by_rank.end(),
            [this](uint32_t a, uint32_t b) { return ord_[a] < ord_[b]; });
  std::vector<TxnId> order;
  order.reserve(by_rank.size());
  for (uint32_t idx : by_rank) order.push_back(nodes_[idx]);
  return order;
}

bool ConflictGraph::WouldCloseCycle(TxnId from, TxnId to) const {
  uint32_t x = static_cast<uint32_t>(IndexOf(from));
  uint32_t y = static_cast<uint32_t>(IndexOf(to));
  if (x == y) return true;
  // Closing a cycle means `to` already reaches `from`. In the maintained
  // (acyclic, incremental) order the search is bounded by the affected
  // region, and ord(from) < ord(to) settles it in O(1).
  const bool bounded =
      mode_ == CycleMode::kIncremental && !cycle_.has_value();
  if (bounded && ord_[x] < ord_[y]) return false;
  const uint32_t stamp =
      mode_ == CycleMode::kIncremental ? NextStamp() : 0;
  std::vector<char> visited;
  if (mode_ != CycleMode::kIncremental) visited.assign(nodes_.size(), 0);
  auto seen = [&](uint32_t node) {
    return mode_ == CycleMode::kIncremental ? mark_[node] == stamp
                                            : visited[node] != 0;
  };
  auto mark = [&](uint32_t node) {
    if (mode_ == CycleMode::kIncremental) {
      mark_[node] = stamp;
    } else {
      visited[node] = 1;
    }
  };
  std::vector<uint32_t> stack{y};
  mark(y);
  while (!stack.empty()) {
    uint32_t node = stack.back();
    stack.pop_back();
    if (node == x) return true;
    for (uint32_t succ : out_[node]) {
      if (seen(succ)) continue;
      if (bounded && ord_[succ] > ord_[x]) continue;
      mark(succ);
      stack.push_back(succ);
    }
  }
  return false;
}

std::optional<std::vector<TxnId>> ConflictGraph::WouldCloseCycleWitness(
    TxnId from, TxnId to) const {
  const uint32_t x = static_cast<uint32_t>(IndexOf(from));
  const uint32_t y = static_cast<uint32_t>(IndexOf(to));
  if (x == y) return std::vector<TxnId>{nodes_[y]};
  // Same reachability question as WouldCloseCycle ("does `to` reach
  // `from`?"), but with DFS parents recorded so the path can be walked
  // back. This is the veto *resolution* path (cold compared to the probe),
  // so local scratch is fine.
  const bool bounded =
      mode_ == CycleMode::kIncremental && !cycle_.has_value();
  if (bounded && ord_[x] < ord_[y]) return std::nullopt;
  std::vector<char> visited(nodes_.size(), 0);
  std::vector<uint32_t> parent(nodes_.size(), UINT32_MAX);
  std::vector<uint32_t> stack{y};
  visited[y] = 1;
  while (!stack.empty()) {
    uint32_t node = stack.back();
    stack.pop_back();
    if (node == x) {
      std::vector<TxnId> path;
      for (uint32_t walk = x; walk != UINT32_MAX; walk = parent[walk]) {
        path.push_back(nodes_[walk]);
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (uint32_t succ : out_[node]) {
      if (visited[succ]) continue;
      if (bounded && ord_[succ] > ord_[x]) continue;
      visited[succ] = 1;
      parent[succ] = node;
      stack.push_back(succ);
    }
  }
  return std::nullopt;
}

bool ConflictGraph::HasEdge(TxnId from, TxnId to) const {
  return out_.Contains(IndexOf(from), static_cast<uint32_t>(IndexOf(to)));
}

std::vector<std::pair<TxnId, TxnId>> ConflictGraph::Edges() const {
  std::vector<std::pair<TxnId, TxnId>> out;
  out.reserve(num_edges_);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (uint32_t j : out_[i]) out.emplace_back(nodes_[i], nodes_[j]);
  }
  return out;
}

const std::optional<std::vector<TxnId>>& ConflictGraph::CachedTopo() const {
  if (topo_valid_) return topo_;
  size_t n = nodes_.size();
  std::vector<uint32_t> indegree = indegree_;
  std::vector<size_t> ready;
  for (size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  std::vector<TxnId> order;
  order.reserve(n);
  // Pop the smallest ready node for a deterministic canonical order.
  while (!ready.empty()) {
    auto it = std::min_element(ready.begin(), ready.end());
    size_t node = *it;
    ready.erase(it);
    order.push_back(nodes_[node]);
    for (uint32_t j : out_[node]) {
      if (--indegree[j] == 0) ready.push_back(j);
    }
  }
  if (order.size() != n) {
    topo_ = std::nullopt;
  } else {
    topo_ = std::move(order);
  }
  topo_valid_ = true;
  return topo_;
}

bool ConflictGraph::IsAcyclic() const {
  // Incremental graphs answer in O(1) from the maintained cycle state; the
  // canonical order (TopologicalOrder) is still computed lazily on demand.
  if (mode_ == CycleMode::kIncremental) return !cycle_.has_value();
  return CachedTopo().has_value();
}

std::optional<std::vector<TxnId>> ConflictGraph::TopologicalOrder() const {
  return CachedTopo();
}

namespace {

void AllTopoRec(const std::vector<TxnId>& nodes,
                const internal::FlatAdjacency& out_adj,
                std::vector<uint32_t>& indegree, std::vector<bool>& used,
                std::vector<TxnId>& current, size_t limit,
                std::vector<std::vector<TxnId>>& out) {
  if (out.size() >= limit) return;
  if (current.size() == nodes.size()) {
    out.push_back(current);
    return;
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (used[i] || indegree[i] != 0) continue;
    used[i] = true;
    current.push_back(nodes[i]);
    for (uint32_t j : out_adj[i]) --indegree[j];
    AllTopoRec(nodes, out_adj, indegree, used, current, limit, out);
    for (uint32_t j : out_adj[i]) ++indegree[j];
    current.pop_back();
    used[i] = false;
    if (out.size() >= limit) return;
  }
}

}  // namespace

std::vector<std::vector<TxnId>> ConflictGraph::AllTopologicalOrders(
    size_t limit) const {
  if (!IsAcyclic()) return {};
  std::vector<uint32_t> indegree = indegree_;
  std::vector<bool> used(nodes_.size(), false);
  std::vector<TxnId> current;
  std::vector<std::vector<TxnId>> out;
  AllTopoRec(nodes_, out_, indegree, used, current, limit, out);
  return out;
}

std::optional<std::vector<TxnId>> ConflictGraph::FindCycle() const {
  size_t n = nodes_.size();
  // Colors: 0 = white, 1 = on stack, 2 = done.
  std::vector<int> color(n, 0);
  std::vector<size_t> parent(n, SIZE_MAX);
  for (size_t root = 0; root < n; ++root) {
    if (color[root] != 0) continue;
    // Iterative DFS; `next` indexes into the successor list of `node`.
    std::vector<std::pair<size_t, size_t>> stack{{root, 0}};
    color[root] = 1;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      bool advanced = false;
      const internal::FlatAdjacency::Span succ = out_[node];
      for (size_t k = next; k < succ.size(); ++k) {
        size_t j = succ[k];
        next = k + 1;
        if (color[j] == 1) {
          // Found a cycle: walk parents from `node` back to j.
          std::vector<TxnId> cycle{nodes_[j]};
          size_t walk = node;
          while (walk != j) {
            cycle.push_back(nodes_[walk]);
            walk = parent[walk];
          }
          cycle.push_back(nodes_[j]);
          std::reverse(cycle.begin() + 1, cycle.end() - 1);
          return cycle;
        }
        if (color[j] == 0) {
          color[j] = 1;
          parent[j] = node;
          stack.emplace_back(j, 0);
          advanced = true;
          break;
        }
      }
      if (!advanced) {
        color[node] = 2;
        stack.pop_back();
      }
    }
  }
  return std::nullopt;
}

std::string ConflictGraph::ToString() const {
  std::vector<std::string> parts;
  for (const auto& [from, to] : Edges()) {
    parts.push_back(StrCat("T", from, " -> T", to));
  }
  return StrJoin(parts, ", ");
}

}  // namespace nse
