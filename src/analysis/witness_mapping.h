// Witness position mapping: per-conjunct verdicts are found inside the
// projection S^{d_e}, but users debug the *full* schedule. The
// ScheduleProjection handle records where each projected operation sits in
// S (source_positions), so every projected witness — a conflict-cycle edge
// of the projected conflict graph, a delayed-read violation of S^{d_e} —
// can be located at full-schedule positions. Checker verdicts render these
// mapped positions (see PwsrChecker in checker.cc).

#ifndef NSE_ANALYSIS_WITNESS_MAPPING_H_
#define NSE_ANALYSIS_WITNESS_MAPPING_H_

#include <optional>
#include <string>
#include <vector>

#include "analysis/delayed_read.h"
#include "txn/schedule.h"

namespace nse {

class AnalysisContext;

/// One edge of a projected conflict-graph cycle, located in the full
/// schedule: some operation of `from` at full-schedule position `from_pos`
/// precedes and conflicts (same item, at least one write) with an operation
/// of `to` at `to_pos`.
struct MappedConflictEdge {
  TxnId from = 0;
  TxnId to = 0;
  size_t from_pos = 0;  ///< full-schedule position of the earlier operation
  size_t to_pos = 0;    ///< full-schedule position of the later operation
};

/// Locates every consecutive edge of `cycle` (txn ids as produced by
/// ConflictGraph::FindCycle — first may equal last; both forms accepted)
/// inside the conjunct-`e` projection, mapped to full-schedule positions
/// via projection(e).source_positions. Edges whose conflict cannot be found
/// in the projection (a cycle not of this conjunct's graph) are skipped.
/// Requires an IC in the context.
std::vector<MappedConflictEdge> MapConjunctCycle(
    AnalysisContext& ctx, size_t e, const std::vector<TxnId>& cycle);

/// First delayed-read violation of the conjunct-`e` projection S^{d_e},
/// with reader/writer positions mapped back to full-schedule positions; or
/// nullopt when the projection is DR. (A schedule that is DR as a whole has
/// DR projections, but not conversely — a projected violation pinpoints
/// the conjunct whose Lemma 6 hypothesis fails.)
std::optional<DrViolation> ProjectedDrViolation(AnalysisContext& ctx,
                                                size_t e);

/// Renders "T1 -> T2 (ops 1 -> 2), T2 -> T1 (ops 3 -> 4)".
std::string RenderMappedCycle(const std::vector<MappedConflictEdge>& edges);

}  // namespace nse

#endif  // NSE_ANALYSIS_WITNESS_MAPPING_H_
