// Schedule classes of §3.2:
//
//  * Delayed-read (DR), Definition 5: whenever o_j (of T2) reads from o_i
//    (of T1), T1 has completed all its operations by the time of o_j —
//    after(T1, o_j, S) = ε.
//  * ACA (avoids cascading aborts): a transaction reads only values written
//    by completed transactions. With the commit point taken as a
//    transaction's last operation — the convention of this value-only model,
//    documented in DESIGN.md — ACA and DR coincide; the paper's remark
//    "every ACA schedule is also DR" is the containment that makes DR the
//    practically interesting class.
//  * Strict: no item written by T1 is read *or overwritten* until T1
//    completes. Strict ⊂ ACA ⊆ DR.

#ifndef NSE_ANALYSIS_DELAYED_READ_H_
#define NSE_ANALYSIS_DELAYED_READ_H_

#include <optional>
#include <string>

#include "txn/schedule.h"

namespace nse {

/// Witness that a schedule is not DR / ACA / strict.
struct DrViolation {
  size_t reader_pos = 0;   ///< the offending (read or overwrite) position
  size_t writer_pos = 0;   ///< the uncompleted writer's operation
  TxnId writer_txn = 0;    ///< the transaction still holding operations

  /// Renders e.g. "op 3 reads from T1 which is incomplete at that point".
  std::string ToString(const Database& db, const Schedule& schedule) const;
};

/// First DR violation of `schedule`, or nullopt if the schedule is DR.
std::optional<DrViolation> FindDrViolation(const Schedule& schedule);

/// True iff `schedule` is delayed-read (Definition 5).
bool IsDelayedRead(const Schedule& schedule);

/// True iff `schedule` avoids cascading aborts (commit = last operation).
bool IsAvoidsCascadingAborts(const Schedule& schedule);

/// First strictness violation, or nullopt if the schedule is strict.
std::optional<DrViolation> FindStrictViolation(const Schedule& schedule);

/// True iff `schedule` is strict.
bool IsStrict(const Schedule& schedule);

}  // namespace nse

#endif  // NSE_ANALYSIS_DELAYED_READ_H_
