#include "analysis/robustness.h"

#include <vector>

#include "common/string_util.h"

namespace nse {

RobustnessReport CheckSiRobustness(const Schedule& schedule) {
  RobustnessReport report;
  const std::vector<Transaction> txns = schedule.Transactions();
  const size_t n = txns.size();
  std::vector<DataSet> reads(n), writes(n);
  for (size_t i = 0; i < n; ++i) {
    reads[i] = txns[i].ReadSet();
    writes[i] = txns[i].WriteSet();
  }

  // Static dependency graph: any[i][j] = some dependency i -> j (ww, wr or
  // rw on a shared item); rw[i][j] = a vulnerable edge (i reads an item j
  // writes). Both directions are populated — order is not fixed statically.
  std::vector<std::vector<bool>> any(n, std::vector<bool>(n, false));
  std::vector<std::vector<bool>> rw(n, std::vector<bool>(n, false));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (!DataSet::Disjoint(writes[i], writes[j])) any[i][j] = true;
      if (!DataSet::Disjoint(writes[i], reads[j])) any[i][j] = true;
      if (!DataSet::Disjoint(reads[i], writes[j])) {
        any[i][j] = true;
        rw[i][j] = true;
        ++report.vulnerable_edges;
      }
    }
  }

  // reach[i][j]: j reachable from i over dependency edges (any length,
  // including length 0 — a pivot's out-neighbor may *be* its in-neighbor).
  std::vector<std::vector<bool>> reach(any);
  for (size_t i = 0; i < n; ++i) reach[i][i] = true;
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (!reach[i][k]) continue;
      for (size_t j = 0; j < n; ++j) {
        if (reach[k][j]) reach[i][j] = true;
      }
    }
  }

  // Dangerous structure: T_i --rw--> T_j --rw--> T_k with T_i reachable
  // from T_k (k == i included), putting both vulnerable edges on a cycle.
  for (size_t j = 0; j < n; ++j) {
    for (size_t i = 0; i < n; ++i) {
      if (i == j || !rw[i][j]) continue;
      for (size_t k = 0; k < n; ++k) {
        if (k == j || !rw[j][k]) continue;
        if (reach[k][i]) {
          report.robust = false;
          report.pivot = txns[j].id();
          report.in_rw_from = txns[i].id();
          report.out_rw_to = txns[k].id();
          return report;
        }
      }
    }
  }
  report.robust = true;
  return report;
}

std::string RobustnessWitness(const RobustnessReport& report) {
  if (report.robust) {
    return StrCat("no dangerous structure (", report.vulnerable_edges,
                  " vulnerable edge(s)); every SI execution serializable; "
                  "view- and conflict-robustness coincide");
  }
  return StrCat("dangerous structure at pivot T", *report.pivot, ": T",
                *report.in_rw_from, " --rw--> T", *report.pivot, " --rw--> T",
                *report.out_rw_to, " closes a cycle; SI may admit write skew");
}

}  // namespace nse
