#include "analysis/fixed_structure.h"

#include "common/string_util.h"

namespace nse {

namespace {

/// Symbolic emission state along one path.
struct PathState {
  DataSet available;  ///< items read or written so far (cached)
  DataSet written;    ///< items written so far
  std::vector<OpStruct> sig;
  bool double_write = false;
  ItemId double_write_item = 0;
};

/// Emits the reads an expression performs, in evaluation order.
void EmitReads(const std::vector<ItemId>& vars, PathState& state) {
  for (ItemId item : vars) {
    if (state.available.Contains(item)) continue;
    state.sig.push_back(OpStruct{OpAction::kRead, item});
    state.available.Insert(item);
  }
}

/// Explores every branch combination of `block` starting at `idx`, pushing
/// the terminal PathState of each path onto `leaves`. On an if statement,
/// each branch is explored followed by the remainder of the block (the
/// branch and the tail are concatenated into one combined block).
void ExplorePath(const StmtBlock& block, size_t idx, PathState state,
                 size_t max_paths, std::vector<PathState>& leaves) {
  if (leaves.size() >= max_paths) return;
  for (size_t i = idx; i < block.size(); ++i) {
    const Stmt& stmt = *block[i];
    if (stmt.kind() == StmtKind::kAssign) {
      std::vector<ItemId> vars;
      CollectVarsInOrder(stmt.expr(), vars);
      EmitReads(vars, state);
      if (state.written.Contains(stmt.target())) {
        state.double_write = true;
        state.double_write_item = stmt.target();
        leaves.push_back(std::move(state));
        return;
      }
      state.sig.push_back(OpStruct{OpAction::kWrite, stmt.target()});
      state.written.Insert(stmt.target());
      state.available.Insert(stmt.target());
      continue;
    }
    // If statement: emit condition reads, then fork into both branches, each
    // followed by the remainder of this block.
    std::vector<ItemId> vars;
    CollectVarsInOrder(stmt.cond(), vars);
    EmitReads(vars, state);
    for (const StmtBlock* branch : {&stmt.then_block(), &stmt.else_block()}) {
      StmtBlock combined = *branch;
      combined.insert(combined.end(), block.begin() + static_cast<long>(i) + 1,
                      block.end());
      ExplorePath(combined, 0, state, max_paths, leaves);
      if (leaves.size() >= max_paths) return;
    }
    return;  // both forks covered the remainder of the block
  }
  leaves.push_back(std::move(state));
}

}  // namespace

StructureAnalysis AnalyzeStructure(const Database& db,
                                   const TransactionProgram& program,
                                   size_t max_paths) {
  std::vector<PathState> leaves;
  ExplorePath(program.body(), 0, PathState{}, max_paths, leaves);

  StructureAnalysis analysis;
  analysis.paths_explored = leaves.size();
  if (leaves.size() >= max_paths) {
    analysis.fixed = false;
    analysis.explanation = StrCat("exploration capped at ", max_paths,
                                  " paths; result is conservative");
    return analysis;
  }
  for (const PathState& leaf : leaves) {
    if (leaf.double_write) {
      analysis.valid = false;
      analysis.explanation =
          StrCat("some path writes item ", db.NameOf(leaf.double_write_item),
                 " twice, violating the transaction model");
      return analysis;
    }
  }
  analysis.fixed = true;
  analysis.signature = leaves.empty() ? std::vector<OpStruct>{} : leaves[0].sig;
  for (size_t i = 1; i < leaves.size(); ++i) {
    if (!(leaves[i].sig == analysis.signature)) {
      analysis.fixed = false;
      analysis.explanation = StrCat(
          "two execution paths emit different structures:\n  path A: ",
          StructToString(db, analysis.signature),
          "\n  path B: ", StructToString(db, leaves[i].sig));
      break;
    }
  }
  return analysis;
}

bool IsStraightLine(const TransactionProgram& program) {
  // If statements can only occur at the top level or nested inside other if
  // statements, so a body without ifs contains none anywhere.
  for (const StmtPtr& stmt : program.body()) {
    if (stmt->kind() == StmtKind::kIf) return false;
  }
  return true;
}

Result<bool> TestFixedStructureRandomized(const Database& db,
                                          const TransactionProgram& program,
                                          Rng& rng, size_t trials) {
  std::optional<std::vector<OpStruct>> reference;
  for (size_t t = 0; t < trials; ++t) {
    DbState initial;
    for (ItemId item = 0; item < db.num_items(); ++item) {
      const Domain& domain = db.DomainOf(item);
      initial.Set(item, domain.At(rng.NextBelow(domain.size())));
    }
    auto run = RunInIsolation(db, program, /*txn=*/1, initial);
    if (!run.ok()) continue;  // evaluation error on this state: skip
    std::vector<OpStruct> sig = run->txn.Struct();
    if (!reference.has_value()) {
      reference = std::move(sig);
    } else if (!(*reference == sig)) {
      return false;
    }
  }
  return true;
}

}  // namespace nse
