#include "analysis/reads_from.h"

#include "common/logging.h"

namespace nse {

std::optional<size_t> SourceOfRead(const Schedule& schedule,
                                   size_t reader_pos) {
  const Operation& reader = schedule.at(reader_pos);
  NSE_CHECK_MSG(reader.is_read(), "position %zu is not a read", reader_pos);
  std::optional<size_t> source;
  for (size_t i = 0; i < reader_pos; ++i) {
    const Operation& op = schedule.at(i);
    if (op.is_write() && op.entity == reader.entity) source = i;
  }
  return source;
}

std::vector<ReadsFromEdge> ReadsFromPairs(const Schedule& schedule) {
  std::vector<ReadsFromEdge> out;
  // Track the last write position per item as we sweep.
  std::vector<std::optional<size_t>> last_write;
  for (size_t i = 0; i < schedule.size(); ++i) {
    const Operation& op = schedule.at(i);
    if (op.entity >= last_write.size()) {
      last_write.resize(op.entity + 1);
    }
    if (op.is_write()) {
      last_write[op.entity] = i;
    } else if (last_write[op.entity].has_value()) {
      out.push_back(ReadsFromEdge{i, *last_write[op.entity]});
    }
  }
  return out;
}

std::vector<size_t> ReadsFromInitial(const Schedule& schedule) {
  std::vector<size_t> out;
  std::vector<bool> written;
  for (size_t i = 0; i < schedule.size(); ++i) {
    const Operation& op = schedule.at(i);
    if (op.entity >= written.size()) written.resize(op.entity + 1, false);
    if (op.is_write()) {
      written[op.entity] = true;
    } else if (!written[op.entity]) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace nse
