#include "analysis/serializability.h"

#include <algorithm>

#include "common/string_util.h"

namespace nse {

bool IsConflictSerializable(const Schedule& schedule) {
  return ConflictGraph::Build(schedule).IsAcyclic();
}

CsrReport CheckConflictSerializability(const Schedule& schedule) {
  return CsrReportFromGraph(ConflictGraph::Build(schedule));
}

CsrReport CsrReportFromGraph(const ConflictGraph& graph) {
  CsrReport report;
  report.order = graph.TopologicalOrder();
  report.serializable = report.order.has_value();
  if (!report.serializable) {
    // Fast path: a graph built with incremental detection already recorded
    // the first cycle (and the edge / operation position that closed it) —
    // no second DFS. Batch graphs fall back to the reference DFS.
    if (graph.cycle().has_value()) {
      report.cycle = graph.cycle();
      report.cycle_edge = graph.cycle_edge();
      report.cycle_op_pos = graph.cycle_op_pos();
    } else {
      report.cycle = graph.FindCycle();
    }
  }
  return report;
}

std::vector<std::vector<TxnId>> SerializationOrders(const Schedule& schedule,
                                                    size_t limit) {
  return ConflictGraph::Build(schedule).AllTopologicalOrders(limit);
}

Result<Schedule> SerialArrangement(const Schedule& schedule,
                                   const std::vector<TxnId>& order) {
  std::vector<TxnId> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  if (sorted != schedule.txn_ids()) {
    return Status::InvalidArgument(
        "order must list every transaction of the schedule exactly once");
  }
  OpSequence ops;
  ops.reserve(schedule.size());
  for (TxnId txn : order) {
    OpSequence txn_ops = OpsOfTxn(schedule.ops(), txn);
    ops.insert(ops.end(), txn_ops.begin(), txn_ops.end());
  }
  return Schedule(std::move(ops));
}

}  // namespace nse
