#include "analysis/violation_search.h"

#include "analysis/analysis_context.h"

namespace nse {

namespace {

/// True iff the execution's schedule satisfies the per-schedule filters.
/// Drives every filter through the execution's shared context, so the
/// artifacts each hypothesis needs (projections, reads-from, DAG) are built
/// once per sampled execution, not once per hypothesis.
bool PassesScheduleFilter(AnalysisContext& ctx, const HypothesisFilter& filter) {
  if (filter.require_pwsr && !ctx.pwsr_report().is_pwsr) return false;
  if (filter.require_delayed_read && !ctx.delayed_read()) return false;
  if (filter.require_dag_acyclic && !ctx.access_graph().IsAcyclic()) {
    return false;
  }
  return true;
}

/// Checks one execution; updates the outcome.
Status CheckOne(const ConsistencyChecker& checker, const Schedule& schedule,
                const DbState& initial, const std::vector<size_t>& choices,
                SearchOutcome& outcome) {
  ++outcome.checked;
  NSE_ASSIGN_OR_RETURN(StrongCorrectnessReport report,
                       CheckExecution(checker, schedule, initial));
  if (!report.strongly_correct) {
    ++outcome.violations;
    if (!outcome.first_counterexample.has_value()) {
      outcome.first_counterexample =
          Counterexample{initial, choices, schedule, std::move(report)};
    }
  }
  return Status::Ok();
}

}  // namespace

Result<SearchOutcome> SearchForViolations(
    const Database& db, const IntegrityConstraint& ic,
    const std::vector<const TransactionProgram*>& programs,
    const HypothesisFilter& filter, Rng& rng, uint64_t trials,
    bool stop_at_first) {
  SearchOutcome outcome;
  ConsistencyChecker checker(db, ic);

  if (filter.require_fixed_structure) {
    for (const TransactionProgram* program : programs) {
      StructureAnalysis analysis = AnalyzeStructure(db, *program);
      if (!analysis.valid || !analysis.fixed) {
        outcome.trials = trials;
        outcome.filtered_out = trials;
        return outcome;
      }
    }
  }

  for (uint64_t t = 0; t < trials; ++t) {
    ++outcome.trials;
    NSE_ASSIGN_OR_RETURN(DbState initial,
                         checker.SampleConsistentState(rng));
    // Mix exploration styles: uniformly random interleavings cover the
    // whole space, near-serial ones populate the PWSR/DR regimes the
    // filters select for (see NearSerialChoices).
    std::vector<size_t> choices;
    if (rng.NextBool(0.5)) {
      NSE_ASSIGN_OR_RETURN(choices, RandomChoices(db, programs, initial, rng));
    } else {
      size_t swaps = rng.NextBelow(2 * programs.size() + 6);
      NSE_ASSIGN_OR_RETURN(
          choices, NearSerialChoices(db, programs, initial, rng, swaps));
    }
    auto run = Interleave(db, programs, initial, choices);
    if (!run.ok()) {
      // A swapped near-serial sequence can become invalid when program
      // lengths are interleaving-dependent; discard the sample.
      if (run.status().code() == StatusCode::kInvalidArgument ||
          run.status().code() == StatusCode::kFailedPrecondition) {
        ++outcome.filtered_out;
        continue;
      }
      return run.status();
    }
    // One memoized context per sampled execution.
    AnalysisContext ctx(db, ic, run->schedule);
    if (!PassesScheduleFilter(ctx, filter)) {
      ++outcome.filtered_out;
      continue;
    }
    NSE_RETURN_IF_ERROR(
        CheckOne(checker, run->schedule, initial, choices, outcome));
    if (stop_at_first && outcome.violations > 0) break;
  }
  return outcome;
}

Result<SearchOutcome> ExhaustiveViolationSearch(
    const Database& db, const IntegrityConstraint& ic,
    const std::vector<const TransactionProgram*>& programs,
    const std::vector<DbState>& initial_states,
    const HypothesisFilter& filter, uint64_t interleaving_limit,
    bool stop_at_first) {
  SearchOutcome outcome;
  ConsistencyChecker checker(db, ic);

  if (filter.require_fixed_structure) {
    for (const TransactionProgram* program : programs) {
      StructureAnalysis analysis = AnalyzeStructure(db, *program);
      if (!analysis.valid || !analysis.fixed) return outcome;
    }
  }

  Status inner_error = Status::Ok();
  for (const DbState& initial : initial_states) {
    auto visit = [&](const InterleaveResult& run,
                     const std::vector<size_t>& choices) -> bool {
      ++outcome.trials;
      AnalysisContext ctx(db, ic, run.schedule);
      if (!PassesScheduleFilter(ctx, filter)) {
        ++outcome.filtered_out;
        return true;
      }
      Status status =
          CheckOne(checker, run.schedule, initial, choices, outcome);
      if (!status.ok()) {
        inner_error = status;
        return false;
      }
      return !(stop_at_first && outcome.violations > 0);
    };
    NSE_RETURN_IF_ERROR(
        EnumerateInterleavings(db, programs, initial, interleaving_limit,
                               visit)
            .status());
    NSE_RETURN_IF_ERROR(inner_error);
    if (stop_at_first && outcome.violations > 0) break;
  }
  return outcome;
}

}  // namespace nse
