#include "analysis/violation_search.h"

#include <algorithm>
#include <atomic>
#include <limits>

#include "analysis/analysis_context.h"
#include "common/logging.h"
#include "common/thread_pool.h"

namespace nse {

namespace {

constexpr uint64_t kNoTrial = std::numeric_limits<uint64_t>::max();

/// True iff the execution's schedule satisfies the per-schedule filters.
/// Drives every filter through the execution's shared context, so the
/// artifacts each hypothesis needs (projections, reads-from, DAG) are built
/// once per sampled execution, not once per hypothesis.
bool PassesScheduleFilter(AnalysisContext& ctx, const HypothesisFilter& filter) {
  if (filter.require_pwsr && !ctx.pwsr_report().is_pwsr) return false;
  if (filter.require_delayed_read && !ctx.delayed_read()) return false;
  if (filter.require_dag_acyclic && !ctx.access_graph().IsAcyclic()) {
    return false;
  }
  return true;
}

/// What one randomized trial amounted to. Stored per global trial index so
/// the merge step can reconstruct exactly the prefix a sequential run would
/// have produced, regardless of which worker ran which trial.
enum class TrialCode : uint8_t {
  kUnprocessed = 0,  ///< skipped (cancelled past the decisive trial)
  kFiltered,         ///< failed the hypothesis filter / invalid replay
  kCheckedOk,        ///< checked, strongly correct
  kViolation,        ///< checked, Definition 1 violated
  kError,            ///< a Status failure inside the trial
};

/// Per-worker accumulation. Workers claim batches of increasing trial
/// indices, so the first violation / error a worker records is its minimum.
struct WorkerState {
  std::optional<Counterexample> best_cex;
  uint64_t best_cex_trial = kNoTrial;
  Status error = Status::Ok();
  uint64_t error_trial = kNoTrial;
};

/// Monotone min-update of `target`.
void AtomicMin(std::atomic<uint64_t>& target, uint64_t value) {
  uint64_t current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

/// Runs trial `t` start to finish against its private RNG stream. When the
/// trial violates and `want_cex` is set, `cex` receives the reproducible
/// counterexample; on kError, `error` holds the status.
TrialCode RunOneTrial(const Database& db, const IntegrityConstraint& ic,
                      const std::vector<const TransactionProgram*>& programs,
                      const HypothesisFilter& filter,
                      const ConsistencyChecker& checker, SolverCache* cache,
                      Rng rng, bool want_cex,
                      std::optional<Counterexample>& cex, Status& error) {
  auto initial_or = checker.SampleConsistentState(rng);
  if (!initial_or.ok()) {
    error = initial_or.status();
    return TrialCode::kError;
  }
  DbState initial = std::move(initial_or).value();
  // Mix exploration styles: uniformly random interleavings cover the
  // whole space, near-serial ones populate the PWSR/DR regimes the
  // filters select for (see NearSerialChoices).
  std::vector<size_t> choices;
  if (rng.NextBool(0.5)) {
    auto choices_or = RandomChoices(db, programs, initial, rng);
    if (!choices_or.ok()) {
      error = choices_or.status();
      return TrialCode::kError;
    }
    choices = std::move(choices_or).value();
  } else {
    size_t swaps = rng.NextBelow(2 * programs.size() + 6);
    auto choices_or = NearSerialChoices(db, programs, initial, rng, swaps);
    if (!choices_or.ok()) {
      error = choices_or.status();
      return TrialCode::kError;
    }
    choices = std::move(choices_or).value();
  }
  auto run = Interleave(db, programs, initial, choices);
  if (!run.ok()) {
    // A swapped near-serial sequence can become invalid when program
    // lengths are interleaving-dependent; discard the sample.
    if (run.status().code() == StatusCode::kInvalidArgument ||
        run.status().code() == StatusCode::kFailedPrecondition) {
      return TrialCode::kFiltered;
    }
    error = run.status();
    return TrialCode::kError;
  }
  // One memoized context per sampled execution, sharing the search-wide
  // solver cache.
  AnalysisOptions options;
  options.solver_cache = cache;
  AnalysisContext ctx(db, ic, run->schedule, options);
  if (!PassesScheduleFilter(ctx, filter)) return TrialCode::kFiltered;
  auto report_or = CheckExecution(checker, run->schedule, initial);
  if (!report_or.ok()) {
    error = report_or.status();
    return TrialCode::kError;
  }
  if (report_or->strongly_correct) return TrialCode::kCheckedOk;
  if (want_cex) {
    cex = Counterexample{std::move(initial), std::move(choices),
                         std::move(run->schedule),
                         std::move(report_or).value()};
  }
  return TrialCode::kViolation;
}

/// One unit of exhaustive work: the subtree of complete interleavings of
/// `initial_states[state]` under a fixed top-level choice (or the whole
/// tree, with an empty prefix, when every program is already finished).
/// Units inherit the canonical order: states in order, prefixes ascending.
struct ExhaustiveUnit {
  size_t state = 0;
  size_t slot = 0;  ///< position among the state's units (0 = first choice)
  std::vector<size_t> prefix;
};

/// What one unit's enumeration produced, in subtree depth-first order. The
/// merge consumes a prefix of `codes` bounded by the state's remaining
/// visit budget, so later entries may be discarded — exactly mirroring
/// where a sequential run would have been cut off by the limit.
struct ExhaustiveUnitResult {
  std::vector<TrialCode> codes;
  std::optional<Counterexample> cex;  ///< first in-unit violation
  uint64_t cex_index = kNoTrial;      ///< its index within `codes`
  Status trial_error = Status::Ok();  ///< the status behind a kError code
  Status enum_error = Status::Ok();   ///< enumeration failed after `codes`
  bool enum_failed = false;
  bool truncated = false;  ///< the unit alone exceeded the visit budget
  bool ran = false;
};

}  // namespace

Result<SearchOutcome> SearchForViolations(
    const Database& db, const IntegrityConstraint& ic,
    const std::vector<const TransactionProgram*>& programs,
    const HypothesisFilter& filter, Rng& rng, const SearchConfig& config) {
  SearchOutcome outcome;

  if (filter.require_fixed_structure) {
    for (const TransactionProgram* program : programs) {
      StructureAnalysis analysis = AnalyzeStructure(db, *program);
      if (!analysis.valid || !analysis.fixed) {
        outcome.trials = config.trials;
        outcome.filtered_out = config.trials;
        return outcome;
      }
    }
  }
  if (config.trials == 0) return outcome;

  const size_t threads =
      config.threads == 0 ? ThreadPool::DefaultNumThreads() : config.threads;
  const uint64_t batch = config.batch_size == 0 ? 1 : config.batch_size;

  // Determinism backbone: trial t draws from Split(t) of one master
  // generator, so a trial's outcome is a pure function of (seed, t) — never
  // of the worker that ran it or of what other trials did.
  const Rng master = rng.Fork();

  SolverCache cache;
  SolverCache* cache_ptr = config.share_solver_cache ? &cache : nullptr;
  if (cache_ptr != nullptr) {
    // One-time sampling-domain enumerations, done before fan-out so cold
    // workers don't all recompute them.
    ConsistencyChecker(db, ic, cache_ptr).WarmSamplingDomains();
  }

  std::vector<TrialCode> codes(config.trials, TrialCode::kUnprocessed);
  std::atomic<uint64_t> next_trial{0};
  // Trials with index > cancel_after are skipped: set to the smallest
  // violating index under stop_at_first, and to the smallest erroring index
  // always (work past a decisive trial cannot change the result).
  std::atomic<uint64_t> cancel_after{kNoTrial};
  std::vector<WorkerState> workers(threads);

  auto worker_fn = [&](size_t w) {
    // Each worker owns its checker (solver stats are checker-local); all
    // checkers share the one cache.
    ConsistencyChecker checker(db, ic, cache_ptr);
    WorkerState& ws = workers[w];
    while (true) {
      const uint64_t start = next_trial.fetch_add(batch);
      if (start >= config.trials) break;
      const uint64_t end = std::min(start + batch, config.trials);
      for (uint64_t t = start; t < end; ++t) {
        if (t > cancel_after.load(std::memory_order_relaxed)) continue;
        std::optional<Counterexample> cex;
        Status error = Status::Ok();
        const bool want_cex = !ws.best_cex.has_value();
        TrialCode code = RunOneTrial(db, ic, programs, filter, checker,
                                     cache_ptr, master.Split(t), want_cex,
                                     cex, error);
        codes[t] = code;
        if (code == TrialCode::kViolation) {
          if (want_cex) {
            ws.best_cex = std::move(cex);
            ws.best_cex_trial = t;
          }
          if (config.stop_at_first) AtomicMin(cancel_after, t);
        } else if (code == TrialCode::kError) {
          if (ws.error_trial == kNoTrial) {
            ws.error = std::move(error);
            ws.error_trial = t;
          }
          AtomicMin(cancel_after, t);
        }
      }
    }
  };

  if (threads == 1) {
    worker_fn(0);
  } else {
    ThreadPool pool(threads);
    for (size_t w = 0; w < threads; ++w) {
      pool.Submit([&worker_fn, w] { worker_fn(w); });
    }
    pool.Wait();
  }

  // Associative merge: scan the per-trial codes in global order for the
  // first decisive trial — an error, or (under stop_at_first) a violation —
  // then tally exactly the prefix a sequential run would have produced.
  uint64_t end = config.trials;
  for (uint64_t t = 0; t < config.trials; ++t) {
    const TrialCode code = codes[t];
    if (code == TrialCode::kError) {
      for (const WorkerState& ws : workers) {
        if (ws.error_trial == t) return ws.error;
      }
      NSE_CHECK_MSG(false, "trial %llu marked kError but no worker owns it",
                    static_cast<unsigned long long>(t));
    }
    if (config.stop_at_first && code == TrialCode::kViolation) {
      end = t + 1;
      break;
    }
  }
  for (uint64_t t = 0; t < end; ++t) {
    NSE_CHECK_MSG(codes[t] != TrialCode::kUnprocessed,
                  "trial %llu below the decisive index was never run",
                  static_cast<unsigned long long>(t));
    ++outcome.trials;
    switch (codes[t]) {
      case TrialCode::kFiltered:
        ++outcome.filtered_out;
        break;
      case TrialCode::kCheckedOk:
        ++outcome.checked;
        break;
      case TrialCode::kViolation:
        ++outcome.checked;
        ++outcome.violations;
        break;
      default:
        break;
    }
  }
  for (WorkerState& ws : workers) {
    if (!ws.best_cex.has_value() || ws.best_cex_trial >= end) continue;
    if (!outcome.first_violation_trial.has_value() ||
        ws.best_cex_trial < *outcome.first_violation_trial) {
      outcome.first_violation_trial = ws.best_cex_trial;
      outcome.first_counterexample = std::move(ws.best_cex);
    }
  }
  outcome.solver_cache = cache.stats();
  return outcome;
}

Result<SearchOutcome> SearchForViolations(
    const Database& db, const IntegrityConstraint& ic,
    const std::vector<const TransactionProgram*>& programs,
    const HypothesisFilter& filter, Rng& rng, uint64_t trials,
    bool stop_at_first) {
  SearchConfig config;
  config.trials = trials;
  config.stop_at_first = stop_at_first;
  config.threads = 1;
  return SearchForViolations(db, ic, programs, filter, rng, config);
}

Result<SearchOutcome> ExhaustiveViolationSearch(
    const Database& db, const IntegrityConstraint& ic,
    const std::vector<const TransactionProgram*>& programs,
    const std::vector<DbState>& initial_states, const HypothesisFilter& filter,
    const ExhaustiveSearchConfig& config) {
  SearchOutcome outcome;

  if (filter.require_fixed_structure) {
    for (const TransactionProgram* program : programs) {
      StructureAnalysis analysis = AnalyzeStructure(db, *program);
      if (!analysis.valid || !analysis.fixed) return outcome;
    }
  }
  const uint64_t limit = config.interleaving_limit;
  if (limit == 0) {
    // A zero budget truncates every state before the first probe, so not
    // even probe errors can surface (matches the sequential enumeration,
    // whose budget check precedes any replay).
    outcome.truncated = initial_states.size();
    return outcome;
  }
  const size_t threads =
      config.threads == 0 ? ThreadPool::DefaultNumThreads() : config.threads;

  SolverCache cache;
  SolverCache* cache_ptr = config.share_solver_cache ? &cache : nullptr;
  if (cache_ptr != nullptr) {
    // Pre-warm before fan-out, as on the randomized path, so cold workers
    // don't all recompute the one-time domain enumerations.
    ConsistencyChecker(db, ic, cache_ptr).WarmSamplingDomains();
  }

  // Decompose each state's interleaving tree into the subtrees under its
  // live top-level choices. A state whose probe fails contributes no units;
  // its error surfaces when (and only when) the merge reaches the state, as
  // it would sequentially.
  std::vector<ExhaustiveUnit> units;
  std::vector<Status> state_probe(initial_states.size(), Status::Ok());
  std::vector<size_t> state_begin(initial_states.size() + 1, 0);
  for (size_t s = 0; s < initial_states.size(); ++s) {
    state_begin[s] = units.size();
    auto live_or = LiveFirstChoices(db, programs, initial_states[s]);
    if (!live_or.ok()) {
      state_probe[s] = live_or.status();
      continue;
    }
    if (live_or->empty()) {
      // Every program already finished: the single empty interleaving.
      units.push_back(ExhaustiveUnit{s, 0, {}});
    } else {
      for (size_t j = 0; j < live_or->size(); ++j) {
        units.push_back(ExhaustiveUnit{s, j, {(*live_or)[j]}});
      }
    }
  }
  state_begin[initial_states.size()] = units.size();

  std::vector<ExhaustiveUnitResult> results(units.size());
  std::atomic<size_t> next_unit{0};
  // Units with index > cancel_after are skipped. Only *certain* decisive
  // events may cancel: a kError, enumeration failure, or stop-at-first
  // violation in a slot-0 unit, whose starting budget is always the full
  // limit — so the merge provably stops at or before it. The same event in
  // a later slot might fall past the budget cut and be discarded, so it
  // must not cancel work the merge may still need.
  std::atomic<uint64_t> cancel_after{kNoTrial};

  auto run_unit = [&](const ConsistencyChecker& checker, size_t u) {
    const ExhaustiveUnit& unit = units[u];
    ExhaustiveUnitResult& res = results[u];
    res.ran = true;
    const DbState& initial = initial_states[unit.state];
    auto visit = [&](const InterleaveResult& run,
                     const std::vector<size_t>& choices) -> bool {
      if (u > cancel_after.load(std::memory_order_relaxed)) {
        // A certain decisive event before this unit: the merge will never
        // read it, so abandon the subtree mid-enumeration.
        return false;
      }
      AnalysisOptions options;
      options.solver_cache = cache_ptr;
      AnalysisContext ctx(db, ic, run.schedule, options);
      if (!PassesScheduleFilter(ctx, filter)) {
        res.codes.push_back(TrialCode::kFiltered);
        return true;
      }
      auto report_or = CheckExecution(checker, run.schedule, initial);
      if (!report_or.ok()) {
        res.trial_error = report_or.status();
        res.codes.push_back(TrialCode::kError);
        return false;
      }
      if (report_or->strongly_correct) {
        res.codes.push_back(TrialCode::kCheckedOk);
        return true;
      }
      if (!res.cex.has_value()) {
        res.cex_index = res.codes.size();
        res.cex = Counterexample{initial, choices, run.schedule,
                                 std::move(report_or).value()};
      }
      res.codes.push_back(TrialCode::kViolation);
      // Past the first violation the unit's remainder is never needed under
      // stop-at-first: the merge either stops at this violation or was cut
      // off by the budget even earlier.
      return !config.stop_at_first;
    };
    auto enumerated =
        config.reference_enumerator
            ? EnumerateInterleavingsFromReference(db, programs, initial,
                                                  unit.prefix, limit, visit)
            : EnumerateInterleavingsFrom(db, programs, initial, unit.prefix,
                                         limit, visit);
    if (!enumerated.ok()) {
      res.enum_failed = true;
      res.enum_error = enumerated.status();
    } else {
      res.truncated = !enumerated->exhausted;
    }
    const bool decisive =
        res.enum_failed ||
        (!res.codes.empty() &&
         (res.codes.back() == TrialCode::kError ||
          (config.stop_at_first &&
           res.codes.back() == TrialCode::kViolation)));
    if (unit.slot == 0 && decisive) AtomicMin(cancel_after, u);
  };

  auto worker_fn = [&]() {
    // As on the randomized path: checkers are worker-local, the cache is
    // shared.
    ConsistencyChecker checker(db, ic, cache_ptr);
    while (true) {
      const size_t u = next_unit.fetch_add(1);
      if (u >= units.size()) break;
      if (u > cancel_after.load(std::memory_order_relaxed)) continue;
      run_unit(checker, u);
    }
  };

  if (threads == 1) {
    worker_fn();
  } else {
    ThreadPool pool(threads);
    for (size_t w = 0; w < threads; ++w) {
      pool.Submit(worker_fn);
    }
    pool.Wait();
  }

  // Merge in canonical order: states in order; within a state, unit code
  // lists concatenated in slot order under a fresh per-state budget of
  // `limit` visits — the exact prefix the sequential enumeration produces.
  bool stopped = false;
  for (size_t s = 0; s < initial_states.size() && !stopped; ++s) {
    NSE_RETURN_IF_ERROR(state_probe[s]);
    uint64_t remaining = limit;
    bool state_truncated = false;
    for (size_t u = state_begin[s]; u < state_begin[s + 1]; ++u) {
      ExhaustiveUnitResult& res = results[u];
      NSE_CHECK_MSG(res.ran,
                    "exhaustive unit %llu reached by the merge but skipped",
                    static_cast<unsigned long long>(u));
      const uint64_t len = res.codes.size();
      const uint64_t take = std::min<uint64_t>(len, remaining);
      for (uint64_t k = 0; k < take && !stopped; ++k) {
        ++outcome.trials;
        switch (res.codes[k]) {
          case TrialCode::kFiltered:
            ++outcome.filtered_out;
            break;
          case TrialCode::kCheckedOk:
            ++outcome.checked;
            break;
          case TrialCode::kViolation:
            ++outcome.checked;
            ++outcome.violations;
            if (!outcome.first_counterexample.has_value()) {
              NSE_CHECK(res.cex_index == k && res.cex.has_value());
              outcome.first_counterexample = std::move(res.cex);
              outcome.first_violation_trial = outcome.trials - 1;
            }
            if (config.stop_at_first) stopped = true;
            break;
          case TrialCode::kError:
            return res.trial_error;
          case TrialCode::kUnprocessed:
            NSE_CHECK_MSG(false, "unprocessed code below the budget cut");
            break;
        }
      }
      if (stopped) break;  // visitor-stopped, not truncated (as sequential)
      remaining -= take;
      if (take < len || res.truncated) {
        state_truncated = true;
        break;
      }
      if (res.enum_failed) {
        // The failing replay was entered with `remaining` budget left; with
        // none, the sequential run truncates just before it instead.
        if (remaining > 0) return res.enum_error;
        state_truncated = true;
        break;
      }
    }
    if (state_truncated) ++outcome.truncated;
  }
  outcome.solver_cache = cache.stats();
  return outcome;
}

Result<SearchOutcome> ExhaustiveViolationSearch(
    const Database& db, const IntegrityConstraint& ic,
    const std::vector<const TransactionProgram*>& programs,
    const std::vector<DbState>& initial_states,
    const HypothesisFilter& filter, uint64_t interleaving_limit,
    bool stop_at_first) {
  ExhaustiveSearchConfig config;
  config.interleaving_limit = interleaving_limit;
  config.stop_at_first = stop_at_first;
  config.threads = 1;
  return ExhaustiveViolationSearch(db, ic, programs, initial_states, filter,
                                   config);
}

}  // namespace nse
