#include "analysis/pwsr.h"

#include "analysis/analysis_context.h"
#include "common/string_util.h"

namespace nse {

PwsrReport CheckPwsr(const Schedule& schedule, const IntegrityConstraint& ic) {
  AnalysisContext ctx(ic, schedule);
  return ctx.pwsr_report();
}

std::string PwsrReportToString(const Database& db,
                               const IntegrityConstraint& ic,
                               const PwsrReport& report) {
  std::vector<std::string> parts;
  parts.push_back(StrCat("PWSR: ", report.is_pwsr ? "yes" : "no",
                         report.conjuncts_disjoint ? ""
                                                   : " (conjuncts overlap!)"));
  for (const auto& entry : report.per_conjunct) {
    std::string line =
        StrCat("  S^", db.DataSetToString(ic.data_set(entry.conjunct)), ": ");
    if (entry.csr.serializable) {
      std::vector<std::string> txns;
      for (TxnId txn : *entry.csr.order) txns.push_back(StrCat("T", txn));
      line += StrCat("serializable, order ", StrJoin(txns, " "));
    } else {
      line += "NOT serializable";
    }
    parts.push_back(std::move(line));
  }
  return StrJoin(parts, "\n");
}

}  // namespace nse
