#include "analysis/pwsr.h"

#include "common/string_util.h"

namespace nse {

PwsrReport CheckPwsr(const Schedule& schedule, const IntegrityConstraint& ic) {
  PwsrReport report;
  report.conjuncts_disjoint = ic.disjoint();
  report.is_pwsr = true;
  for (size_t e = 0; e < ic.num_conjuncts(); ++e) {
    ConjunctSerializability entry;
    entry.conjunct = e;
    entry.csr =
        CheckConflictSerializability(schedule.Project(ic.data_set(e)));
    if (!entry.csr.serializable) report.is_pwsr = false;
    report.per_conjunct.push_back(std::move(entry));
  }
  return report;
}

std::string PwsrReportToString(const Database& db,
                               const IntegrityConstraint& ic,
                               const PwsrReport& report) {
  std::vector<std::string> parts;
  parts.push_back(StrCat("PWSR: ", report.is_pwsr ? "yes" : "no",
                         report.conjuncts_disjoint ? ""
                                                   : " (conjuncts overlap!)"));
  for (const auto& entry : report.per_conjunct) {
    std::string line =
        StrCat("  S^", db.DataSetToString(ic.data_set(entry.conjunct)), ": ");
    if (entry.csr.serializable) {
      std::vector<std::string> txns;
      for (TxnId txn : *entry.csr.order) txns.push_back(StrCat("T", txn));
      line += StrCat("serializable, order ", StrJoin(txns, " "));
    } else {
      line += "NOT serializable";
    }
    parts.push_back(std::move(line));
  }
  return StrJoin(parts, "\n");
}

}  // namespace nse
