#include "analysis/strong_correctness.h"

#include "common/string_util.h"

namespace nse {

std::string ScViolation::ToString(const Database& db) const {
  switch (kind) {
    case ViolationKind::kFinalStateInconsistent:
      return StrCat("final state ", witness.ToString(db),
                    " is inconsistent (from initial state ",
                    initial_state.ToString(db), ")");
    case ViolationKind::kTransactionReadInconsistent:
      return StrCat("transaction T", txn, " read the inconsistent state ",
                    witness.ToString(db));
  }
  return "?";
}

namespace {

/// Checks condition (2) of Definition 1 — every read(T_i) consistent —
/// appending violations. Independent of the initial state.
Status CheckReadMaps(const ConsistencyChecker& checker,
                     const Schedule& schedule, const DbState& initial,
                     StrongCorrectnessReport& report) {
  for (TxnId txn : schedule.txn_ids()) {
    DbState read_map = ReadMapOf(OpsOfTxn(schedule.ops(), txn));
    NSE_ASSIGN_OR_RETURN(bool consistent, checker.IsConsistent(read_map));
    if (!consistent) {
      report.strongly_correct = false;
      report.violations.push_back(
          ScViolation{ViolationKind::kTransactionReadInconsistent, txn,
                      std::move(read_map), initial});
    }
  }
  return Status::Ok();
}

}  // namespace

Result<StrongCorrectnessReport> CheckExecution(
    const ConsistencyChecker& checker, const Schedule& schedule,
    const DbState& initial) {
  NSE_ASSIGN_OR_RETURN(ExecutionResult exec, schedule.Execute(initial));
  if (!exec.reads_consistent()) {
    return Status::FailedPrecondition(
        StrCat("schedule is not an execution from the given initial state (",
               exec.read_mismatches.size(), " read mismatches)"));
  }
  StrongCorrectnessReport report;
  report.initial_states_checked = 1;
  NSE_ASSIGN_OR_RETURN(bool final_ok,
                       checker.IsConsistent(exec.final_state));
  if (!final_ok) {
    report.strongly_correct = false;
    report.violations.push_back(
        ScViolation{ViolationKind::kFinalStateInconsistent, 0,
                    exec.final_state, initial});
  }
  NSE_RETURN_IF_ERROR(CheckReadMaps(checker, schedule, initial, report));
  return report;
}

Result<StrongCorrectnessReport> CheckScheduleOverInitialStates(
    const ConsistencyChecker& checker, const Schedule& schedule,
    uint64_t limit) {
  StrongCorrectnessReport report;
  // Condition 2 once: read maps are fixed by the schedule's values.
  NSE_RETURN_IF_ERROR(
      CheckReadMaps(checker, schedule, DbState(), report));

  // Condition 1 over the executable family: consistent extensions of the
  // pinned initial reads.
  DbState pinned = schedule.PinnedInitialReads();
  NSE_ASSIGN_OR_RETURN(bool pinned_ok, checker.IsConsistent(pinned));
  if (!pinned_ok) {
    // No consistent initial state can execute S; condition 1 is vacuous.
    return report;
  }

  // Enumerate consistent total states extending `pinned` directly — the
  // solver branches only on unpinned items, so every enumerated state is an
  // executable initial state.
  NSE_ASSIGN_OR_RETURN(std::vector<DbState> candidates,
                       checker.EnumerateConsistentExtensions(pinned, limit));
  for (const DbState& initial : candidates) {
    ++report.initial_states_checked;
    NSE_ASSIGN_OR_RETURN(ExecutionResult exec, schedule.Execute(initial));
    // By construction of `pinned`, reads match.
    NSE_ASSIGN_OR_RETURN(bool final_ok,
                         checker.IsConsistent(exec.final_state));
    if (!final_ok) {
      report.strongly_correct = false;
      report.violations.push_back(
          ScViolation{ViolationKind::kFinalStateInconsistent, 0,
                      exec.final_state, initial});
    }
  }
  return report;
}

}  // namespace nse
