#include "analysis/txn_state.h"

namespace nse {

std::vector<DbState> ComputeTxnStates(const Schedule& schedule,
                                      const DataSet& d,
                                      const std::vector<TxnId>& order,
                                      const DbState& initial) {
  std::vector<DbState> out;
  out.reserve(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    if (i == 0) {
      out.push_back(initial.Restrict(d));
      continue;
    }
    TxnId prev = order[i - 1];
    OpSequence prev_ops_d = ProjectOps(OpsOfTxn(schedule.ops(), prev), d);
    DataSet prev_writes = WriteSetOf(prev_ops_d);
    DbState carried = out.back().Restrict(DataSet::Minus(d, prev_writes));
    out.push_back(DbState::Override(carried, WriteMapOf(prev_ops_d)));
  }
  return out;
}

std::optional<size_t> FindReadOutsideState(const Schedule& schedule,
                                           const DataSet& d,
                                           const std::vector<TxnId>& order,
                                           const DbState& initial) {
  std::vector<DbState> states =
      ComputeTxnStates(schedule, d, order, initial);
  for (size_t i = 0; i < order.size(); ++i) {
    DbState read_d =
        ReadMapOf(ProjectOps(OpsOfTxn(schedule.ops(), order[i]), d));
    if (!read_d.IsSubstateOf(states[i])) return i;
  }
  return std::nullopt;
}

bool FinalStateMatches(const Schedule& schedule, const DataSet& d,
                       const std::vector<TxnId>& order, const DbState& initial,
                       const DbState& final_state) {
  if (order.empty()) {
    return initial.Restrict(d) == final_state.Restrict(d);
  }
  std::vector<DbState> states =
      ComputeTxnStates(schedule, d, order, initial);
  TxnId last = order.back();
  OpSequence last_ops_d = ProjectOps(OpsOfTxn(schedule.ops(), last), d);
  DbState result = DbState::Override(states.back(), WriteMapOf(last_ops_d));
  return result == final_state.Restrict(d);
}

}  // namespace nse
