// The uniform checker interface: every criterion of the paper — CSR, PWSR,
// delayed-read, view-set soundness, strong correctness, and the theorem
// combinators — runs as a Checker against one shared AnalysisContext and
// returns a CheckResult with a verdict plus a human-readable witness. The
// multiversion additions (view serializability, MVSR over version-annotated
// traces, static SI robustness) register through the same seam.
//
// CheckerRegistry::BuiltIn() holds the nine criteria; callers sweep them
// with RunAll (one memoized context, each artifact built once) or
// cherry-pick by name. New criteria plug in by registering another Checker.

#ifndef NSE_ANALYSIS_CHECKER_H_
#define NSE_ANALYSIS_CHECKER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/analysis_context.h"
#include "common/status.h"

namespace nse {

/// Outcome category of one checker run.
enum class Verdict {
  kSatisfied,  ///< the criterion holds for the schedule
  kViolated,   ///< the criterion fails, witness explains where
  kUnknown,    ///< not decidable with what the context has (e.g. no IC)
};

/// "satisfied", "violated", or "unknown".
const char* VerdictName(Verdict verdict);

/// Uniform result of one checker.
struct CheckResult {
  std::string checker;                 ///< registry name of the checker
  Verdict verdict = Verdict::kUnknown;
  std::string witness;                 ///< order / cycle / violation, rendered

  /// Renders "csr: satisfied (serialization order T1 T2)".
  std::string ToString() const;
};

/// One criterion over an AnalysisContext.
class Checker {
 public:
  virtual ~Checker() = default;

  /// Stable registry name, e.g. "pwsr".
  virtual std::string_view name() const = 0;

  /// Decides the criterion using (and populating) the context's caches.
  virtual CheckResult Check(AnalysisContext& ctx) const = 0;
};

/// A named collection of checkers.
class CheckerRegistry {
 public:
  CheckerRegistry() = default;

  /// The nine built-in criteria: csr, pwsr, delayed-read, view-set,
  /// strong-correctness, theorems, view-serializability, mvsr,
  /// mv-robustness (in that order).
  static const CheckerRegistry& BuiltIn();

  /// Adds a checker; duplicate names are rejected.
  Status Register(std::unique_ptr<Checker> checker);

  /// The checker named `name`, or nullptr.
  const Checker* Find(std::string_view name) const;

  /// Registered names, in registration order.
  std::vector<std::string_view> Names() const;

  /// Runs every registered checker against one shared context.
  std::vector<CheckResult> RunAll(AnalysisContext& ctx) const;

  /// Runs one checker by name; NotFound if absent.
  Result<CheckResult> Run(std::string_view name, AnalysisContext& ctx) const;

 private:
  std::vector<std::unique_ptr<Checker>> checkers_;
};

}  // namespace nse

#endif  // NSE_ANALYSIS_CHECKER_H_
