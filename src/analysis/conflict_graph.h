// Conflict graph (serialization graph) of a schedule: nodes are the
// transactions; there is an edge T_i → T_j when some operation of T_i
// precedes and conflicts with an operation of T_j. A schedule is conflict
// serializable (CSR) iff the graph is acyclic; topological orders of the
// graph are exactly its serialization orders (Papadimitriou [13]).
//
// The graph is stored as sorted adjacency lists and supports incremental
// edge insertion (AddEdge); the canonical topological order is computed on
// demand and cached until the next insertion, so repeated acyclicity /
// serialization-order queries on the same graph are free. Build sweeps the
// schedule once per item history instead of comparing all operation pairs.

#ifndef NSE_ANALYSIS_CONFLICT_GRAPH_H_
#define NSE_ANALYSIS_CONFLICT_GRAPH_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "txn/schedule.h"

namespace nse {

/// The conflict graph of one schedule (or schedule projection).
class ConflictGraph {
 public:
  /// An empty graph with no nodes.
  ConflictGraph() = default;

  /// An edgeless graph over `nodes` (must be sorted ascending, duplicates
  /// are rejected); edges are added incrementally with AddEdge.
  explicit ConflictGraph(std::vector<TxnId> nodes);

  /// Builds the graph from `schedule`.
  static ConflictGraph Build(const Schedule& schedule);

  /// Transactions (nodes), ascending by id.
  const std::vector<TxnId>& nodes() const { return nodes_; }

  /// Inserts the edge from → to (both must be nodes). Returns true when the
  /// edge is new; the cached topological state is invalidated only then.
  bool AddEdge(TxnId from, TxnId to);

  /// AddEdge by positions into nodes() — the id lookups skipped. For bulk
  /// producers that already work in node indices (the shared analysis
  /// sweep, graph builders).
  bool AddEdgeByIndex(uint32_t from, uint32_t to);

  /// True iff the edge from → to is present.
  bool HasEdge(TxnId from, TxnId to) const;

  /// Number of distinct edges.
  size_t num_edges() const { return num_edges_; }

  /// All edges as (from, to) pairs, ordered by (from, to).
  std::vector<std::pair<TxnId, TxnId>> Edges() const;

  /// True iff the graph has no directed cycle (schedule is CSR).
  bool IsAcyclic() const;

  /// Some serialization order (topological order), or nullopt if cyclic.
  /// Deterministic: smallest ready node first. Cached between edge inserts.
  std::optional<std::vector<TxnId>> TopologicalOrder() const;

  /// All serialization orders, up to `limit` (empty if cyclic). If exactly
  /// `limit` orders are returned the enumeration may be incomplete.
  std::vector<std::vector<TxnId>> AllTopologicalOrders(size_t limit) const;

  /// A directed cycle witness (sequence of txn ids, first == last), or
  /// nullopt if acyclic.
  std::optional<std::vector<TxnId>> FindCycle() const;

  /// Renders "T1 -> T2, T2 -> T3".
  std::string ToString() const;

 private:
  size_t IndexOf(TxnId txn) const;
  /// Canonical topological order over node indices, or nullopt if cyclic;
  /// computed once per edge-set revision.
  const std::optional<std::vector<TxnId>>& CachedTopo() const;

  std::vector<TxnId> nodes_;
  std::vector<std::vector<uint32_t>> out_;  // sorted successor indices
  std::vector<uint32_t> indegree_;          // by node index
  size_t num_edges_ = 0;

  mutable bool topo_valid_ = false;
  mutable std::optional<std::vector<TxnId>> topo_;
};

namespace internal {

/// The single implementation of the per-item conflict sweep shared by
/// ConflictGraph::Build and the AnalysisContext fused core build. Walks the
/// schedule once, maintaining per-item histories of the distinct
/// transactions (as indices into schedule.txn_ids()) that have written /
/// read each item, and calls:
///
///   on_op(op_pos, txn_index)        for every operation, in order;
///   emit(from_index, to_index, op_pos)
///       for every candidate conflict pair — a write conflicts with every
///       earlier accessor of its item, a read with every earlier writer.
///
/// Candidate pairs repeat across positions; deduplication is the caller's
/// job (AddEdgeByIndex, or a seen-bitset for bulk builds).
template <typename OnOpFn, typename EmitFn>
void SweepConflicts(const Schedule& schedule, OnOpFn on_op, EmitFn emit) {
  const std::vector<TxnId>& txn_ids = schedule.txn_ids();
  struct ItemHistory {
    std::vector<uint32_t> writers;  // distinct txn indices, insertion order
    std::vector<uint32_t> readers;
  };
  std::vector<ItemHistory> history;
  auto remember = [](std::vector<uint32_t>& txns, uint32_t idx) {
    if (std::find(txns.begin(), txns.end(), idx) == txns.end()) {
      txns.push_back(idx);
    }
  };
  const OpSequence& ops = schedule.ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    const Operation& op = ops[i];
    if (op.entity >= history.size()) history.resize(op.entity + 1);
    ItemHistory& h = history[op.entity];
    const uint32_t idx = static_cast<uint32_t>(
        std::lower_bound(txn_ids.begin(), txn_ids.end(), op.txn) -
        txn_ids.begin());
    on_op(i, idx);
    for (uint32_t writer : h.writers) {
      if (writer != idx) emit(writer, idx, i);
    }
    if (op.is_write()) {
      for (uint32_t reader : h.readers) {
        if (reader != idx) emit(reader, idx, i);
      }
      remember(h.writers, idx);
    } else {
      remember(h.readers, idx);
    }
  }
}

}  // namespace internal

}  // namespace nse

#endif  // NSE_ANALYSIS_CONFLICT_GRAPH_H_
