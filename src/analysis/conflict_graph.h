// Conflict graph (serialization graph) of a schedule: nodes are the
// transactions; there is an edge T_i → T_j when some operation of T_i
// precedes and conflicts with an operation of T_j. A schedule is conflict
// serializable (CSR) iff the graph is acyclic; topological orders of the
// graph are exactly its serialization orders (Papadimitriou [13]).
//
// The graph is stored as sorted adjacency lists and supports incremental
// edge insertion (AddEdge); the canonical topological order is computed on
// demand and cached until the next insertion, so repeated acyclicity /
// serialization-order queries on the same graph are free. Build sweeps the
// schedule once per item history instead of comparing all operation pairs.
//
// CycleMode::kIncremental additionally maintains an *online* topological
// order updated in place on every insertion with the Pearce–Kelly
// algorithm: an edge whose endpoints already agree with the order costs
// O(1), otherwise only the affected region between the endpoints is
// searched and reordered — so acyclicity is an O(1) query after every
// AddEdge instead of an O(V+E) recomputation. The first cycle-closing edge
// is recorded together with a cycle witness (and, when supplied, the
// schedule position of the operation that created the edge), which is what
// the scheduler policies, the deadlock-victim selection in the simulator
// and the CSR fast path of AnalysisContext consume. The batch DFS
// (FindCycle) is kept unchanged as the cross-checked reference.

#ifndef NSE_ANALYSIS_CONFLICT_GRAPH_H_
#define NSE_ANALYSIS_CONFLICT_GRAPH_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "txn/schedule.h"

namespace nse {

/// How a ConflictGraph answers cycle queries.
enum class CycleMode : uint8_t {
  /// Acyclicity / topo order recomputed on demand (cached per revision).
  kBatch,
  /// Online topological order maintained per insertion (Pearce–Kelly);
  /// acyclicity is O(1), the first cycle-closing edge is recorded.
  kIncremental,
};

/// The conflict graph of one schedule (or schedule projection).
class ConflictGraph {
 public:
  /// An empty graph with no nodes.
  ConflictGraph() = default;

  /// An edgeless graph over `nodes` (must be sorted ascending, duplicates
  /// are rejected); edges are added incrementally with AddEdge.
  explicit ConflictGraph(std::vector<TxnId> nodes,
                         CycleMode mode = CycleMode::kBatch);

  /// Builds the graph from `schedule`. In incremental mode the first
  /// cycle-closing edge additionally records the schedule position of the
  /// operation that created it (cycle_op_pos).
  static ConflictGraph Build(const Schedule& schedule,
                             CycleMode mode = CycleMode::kBatch);

  /// Transactions (nodes), ascending by id.
  const std::vector<TxnId>& nodes() const { return nodes_; }

  /// The cycle-query mode this graph was constructed with.
  CycleMode cycle_mode() const { return mode_; }

  /// Inserts the edge from → to (both must be nodes). Returns true when the
  /// edge is new; the cached topological state is invalidated only then.
  bool AddEdge(TxnId from, TxnId to);

  /// AddEdge by positions into nodes() — the id lookups skipped. For bulk
  /// producers that already work in node indices (the shared analysis
  /// sweep, graph builders).
  bool AddEdgeByIndex(uint32_t from, uint32_t to);

  /// AddEdgeByIndex recording the schedule position of the operation that
  /// created the edge: if this insertion closes the first cycle, the
  /// position is reported as cycle_op_pos() (incremental mode).
  bool AddEdgeByIndexAt(uint32_t from, uint32_t to, size_t op_pos);

  /// Removes the edge from → to if present (incremental mode only; the
  /// simulator's waits-for graph retracts edges as blockers resolve).
  /// Removing an edge never invalidates the maintained order; if a recorded
  /// cycle might have been broken, the cycle state is recomputed.
  bool RemoveEdge(TxnId from, TxnId to);

  /// Removes every in- and out-edge of `txn` (incremental mode only) — the
  /// deadlock-victim abort path.
  void RemoveEdgesOf(TxnId txn);

  // ---- incremental cycle state (kIncremental) --------------------------

  /// True iff a cycle has been detected. O(1) in incremental mode; in
  /// batch mode equivalent to !IsAcyclic().
  bool has_cycle() const;

  /// The first cycle-closing edge (from, to) as txn ids, or nullopt while
  /// acyclic. After a removal-triggered re-detection this is the closing
  /// edge of the freshly discovered cycle.
  const std::optional<std::pair<TxnId, TxnId>>& cycle_edge() const {
    return cycle_edge_;
  }

  /// Schedule position of the operation that closed the cycle, when the
  /// cycle-closing edge was inserted with AddEdgeByIndexAt (the fused
  /// analysis sweep and Build record positions; waits-for edges have none).
  const std::optional<size_t>& cycle_op_pos() const { return cycle_op_pos_; }

  /// The recorded cycle witness (txn ids, first == last), or nullopt while
  /// acyclic. Incremental mode only; batch callers use FindCycle.
  const std::optional<std::vector<TxnId>>& cycle() const { return cycle_; }

  /// The maintained online topological order (incremental mode, acyclic
  /// graphs): a valid — not necessarily canonical — serialization order.
  std::vector<TxnId> OnlineTopologicalOrder() const;

  /// True iff inserting from → to now would close a cycle, i.e. `to`
  /// reaches `from`. O(affected region) in incremental acyclic state via
  /// the order bounds; plain DFS otherwise. Does not mutate the graph.
  bool WouldCloseCycle(TxnId from, TxnId to) const;

  /// The witness variant of WouldCloseCycle: when inserting from → to
  /// would close a cycle, returns the existing path to → ... → from (txn
  /// ids; with the probed edge appended it would be the full cycle), else
  /// nullopt. from == to yields the single-node path {to}. Same bounded
  /// search as WouldCloseCycle in incremental acyclic state (a valid topo
  /// order ranks every node of a to→from path at most ord(from), so the
  /// pruning never hides a path); the victim-choice SGT policy consumes
  /// this to abort the cheapest *active* cycle participant instead of
  /// always restarting the requester. Does not mutate the graph.
  std::optional<std::vector<TxnId>> WouldCloseCycleWitness(TxnId from,
                                                           TxnId to) const;

  /// The direct predecessors of `txn` (incremental mode only — that is
  /// where predecessor lists are maintained). O(in-degree).
  std::vector<TxnId> Predecessors(TxnId txn) const;

  /// True iff the edge from → to is present.
  bool HasEdge(TxnId from, TxnId to) const;

  /// Number of distinct edges.
  size_t num_edges() const { return num_edges_; }

  /// All edges as (from, to) pairs, ordered by (from, to).
  std::vector<std::pair<TxnId, TxnId>> Edges() const;

  /// True iff the graph has no directed cycle (schedule is CSR).
  bool IsAcyclic() const;

  /// Some serialization order (topological order), or nullopt if cyclic.
  /// Deterministic: smallest ready node first. Cached between edge inserts.
  std::optional<std::vector<TxnId>> TopologicalOrder() const;

  /// All serialization orders, up to `limit` (empty if cyclic). If exactly
  /// `limit` orders are returned the enumeration may be incomplete.
  std::vector<std::vector<TxnId>> AllTopologicalOrders(size_t limit) const;

  /// A directed cycle witness (sequence of txn ids, first == last), or
  /// nullopt if acyclic.
  std::optional<std::vector<TxnId>> FindCycle() const;

  /// Renders "T1 -> T2, T2 -> T3".
  std::string ToString() const;

 private:
  size_t IndexOf(TxnId txn) const;
  /// Canonical topological order over node indices, or nullopt if cyclic;
  /// computed once per edge-set revision.
  const std::optional<std::vector<TxnId>>& CachedTopo() const;

  /// Pearce–Kelly order maintenance for a freshly inserted edge x → y with
  /// ord_[y] <= ord_[x]: forward search from y bounded by ord_[x] either
  /// finds x (cycle — recorded, order left untouched) or yields the
  /// affected forward region, which is then merged with the backward region
  /// of x over the pooled order slots.
  void MaintainOrder(uint32_t x, uint32_t y, std::optional<size_t> op_pos);

  /// Recomputes the online order and cycle state from scratch (Kahn + DFS
  /// reference); used after removals while a cycle was recorded, when the
  /// suspended order maintenance must be re-anchored.
  void RebuildOrderAndCycle();

  /// Fresh visit stamp for the bounded searches (avoids O(V) clears).
  uint32_t NextStamp() const;

  bool AddEdgeByIndexInternal(uint32_t from, uint32_t to,
                              std::optional<size_t> op_pos);

  std::vector<TxnId> nodes_;
  std::vector<std::vector<uint32_t>> out_;  // sorted successor indices
  std::vector<uint32_t> indegree_;          // by node index
  size_t num_edges_ = 0;
  CycleMode mode_ = CycleMode::kBatch;

  // Incremental mode state.
  std::vector<std::vector<uint32_t>> in_;  // sorted predecessor indices
  std::vector<uint32_t> ord_;              // node index -> online rank
  std::optional<std::pair<TxnId, TxnId>> cycle_edge_;
  std::optional<size_t> cycle_op_pos_;
  std::optional<std::vector<TxnId>> cycle_;
  mutable std::vector<uint32_t> mark_;     // visit stamps for bounded DFS
  mutable uint32_t stamp_ = 0;
  std::vector<uint32_t> parent_;  // DFS parents; valid for current stamp only

  mutable bool topo_valid_ = false;
  mutable std::optional<std::vector<TxnId>> topo_;
};

/// Per-item access histories with streaming conflict-edge derivation — the
/// single statement of the paper's conflict rule (same item, distinct
/// transactions, at least one write) shared by the batch analysis sweep
/// (internal::SweepConflicts, hence ConflictGraph::Build and the
/// AnalysisContext fused core build) and the SGT policy's online veto
/// check. Accessors are caller-chosen uint32_t handles: txn indices into
/// schedule.txn_ids() for the sweep, raw txn ids for the scheduler.
class ConflictAccessIndex {
 public:
  /// Calls emit(prior) for every distinct prior accessor whose recorded
  /// access conflicts with an (is_write, item) access by `accessor`: a
  /// write conflicts with every earlier accessor of the item, a read with
  /// every earlier writer. `accessor` itself is never emitted. Prior
  /// writers are emitted before prior readers, each group in first-access
  /// order.
  template <typename EmitFn>
  void ForEachConflict(uint32_t accessor, bool is_write, ItemId item,
                       EmitFn emit) const {
    if (item >= history_.size()) return;
    const ItemHistory& h = history_[item];
    for (uint32_t writer : h.writers) {
      if (writer != accessor) emit(writer);
    }
    if (is_write) {
      for (uint32_t reader : h.readers) {
        if (reader != accessor) emit(reader);
      }
    }
  }

  /// Records the access into the item's history (repeat accesses dedupe).
  void Record(uint32_t accessor, bool is_write, ItemId item);

  /// Erases `accessor` from every item history — the abort-retraction
  /// counterpart of ConflictGraph::RemoveEdgesOf.
  void Erase(uint32_t accessor);

  /// Drops all histories.
  void Clear() { history_.clear(); }

 private:
  struct ItemHistory {
    std::vector<uint32_t> writers;  // distinct accessors, insertion order
    std::vector<uint32_t> readers;
  };
  std::vector<ItemHistory> history_;
};

namespace internal {

/// The single implementation of the per-item conflict sweep shared by
/// ConflictGraph::Build and the AnalysisContext fused core build. Walks the
/// schedule once, feeding each operation through a ConflictAccessIndex
/// keyed by txn indices into schedule.txn_ids(), and calls:
///
///   on_op(op_pos, txn_index)        for every operation, in order;
///   emit(from_index, to_index, op_pos)
///       for every candidate conflict pair — a write conflicts with every
///       earlier accessor of its item, a read with every earlier writer.
///
/// Candidate pairs repeat across positions; deduplication is the caller's
/// job (AddEdgeByIndex, or a seen-bitset for bulk builds).
template <typename OnOpFn, typename EmitFn>
void SweepConflicts(const Schedule& schedule, OnOpFn on_op, EmitFn emit) {
  const std::vector<TxnId>& txn_ids = schedule.txn_ids();
  ConflictAccessIndex index;
  const OpSequence& ops = schedule.ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    const Operation& op = ops[i];
    const uint32_t idx = static_cast<uint32_t>(
        std::lower_bound(txn_ids.begin(), txn_ids.end(), op.txn) -
        txn_ids.begin());
    on_op(i, idx);
    index.ForEachConflict(idx, op.is_write(), op.entity,
                          [&](uint32_t from) { emit(from, idx, i); });
    index.Record(idx, op.is_write(), op.entity);
  }
}

}  // namespace internal

}  // namespace nse

#endif  // NSE_ANALYSIS_CONFLICT_GRAPH_H_
