// Conflict graph (serialization graph) of a schedule: nodes are the
// transactions; there is an edge T_i → T_j when some operation of T_i
// precedes and conflicts with an operation of T_j. A schedule is conflict
// serializable (CSR) iff the graph is acyclic; topological orders of the
// graph are exactly its serialization orders (Papadimitriou [13]).
//
// The graph is stored as sorted adjacency lists and supports incremental
// edge insertion (AddEdge); the canonical topological order is computed on
// demand and cached until the next insertion, so repeated acyclicity /
// serialization-order queries on the same graph are free. Build sweeps the
// schedule once per item history instead of comparing all operation pairs.
//
// CycleMode::kIncremental additionally maintains an *online* topological
// order updated in place on every insertion with the Pearce–Kelly
// algorithm: an edge whose endpoints already agree with the order costs
// O(1), otherwise only the affected region between the endpoints is
// searched and reordered — so acyclicity is an O(1) query after every
// AddEdge instead of an O(V+E) recomputation. The first cycle-closing edge
// is recorded together with a cycle witness (and, when supplied, the
// schedule position of the operation that created the edge), which is what
// the scheduler policies, the deadlock-victim selection in the simulator
// and the CSR fast path of AnalysisContext consume. The batch DFS
// (FindCycle) is kept unchanged as the cross-checked reference.

#ifndef NSE_ANALYSIS_CONFLICT_GRAPH_H_
#define NSE_ANALYSIS_CONFLICT_GRAPH_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "txn/schedule.h"

namespace nse {

/// How a ConflictGraph answers cycle queries.
enum class CycleMode : uint8_t {
  /// Acyclicity / topo order recomputed on demand (cached per revision).
  kBatch,
  /// Online topological order maintained per insertion (Pearce–Kelly);
  /// acyclicity is O(1), the first cycle-closing edge is recorded.
  kIncremental,
};

namespace internal {

/// CSR-style flat adjacency storage: every node's neighbor list is a sorted
/// region of one shared slab, with per-node slack so inserts are in-place
/// shifts. When a region fills, the whole slab is compacted once with fresh
/// proportional slack — amortized O(1) slabs per node doubling, in exchange
/// for one allocation per compaction instead of one per neighbor list.
///
/// Regions stay sorted deliberately (the issue's unsorted-insert variant
/// was rejected; see docs/adr/0006): iteration order is then bit-identical
/// to the nested-vector layout this replaces, which the recorded cycle
/// witnesses, WouldCloseCycleWitness paths, and Edges() ordering all
/// observe.
class FlatAdjacency {
 public:
  FlatAdjacency() = default;
  explicit FlatAdjacency(size_t num_nodes) { Reset(num_nodes); }

  /// Re-initializes to `num_nodes` empty regions.
  void Reset(size_t num_nodes);

  /// A view of one node's sorted neighbors. Invalidated by Insert (which
  /// may compact the slab); Erase/Clear keep other regions in place.
  class Span {
   public:
    Span(const uint32_t* begin, const uint32_t* end)
        : begin_(begin), end_(end) {}
    const uint32_t* begin() const { return begin_; }
    const uint32_t* end() const { return end_; }
    size_t size() const { return static_cast<size_t>(end_ - begin_); }
    bool empty() const { return begin_ == end_; }
    uint32_t operator[](size_t i) const { return begin_[i]; }

   private:
    const uint32_t* begin_;
    const uint32_t* end_;
  };

  Span operator[](size_t node) const {
    const uint32_t* base = slab_.data() + start_[node];
    return Span(base, base + count_[node]);
  }

  size_t size(size_t node) const { return count_[node]; }
  size_t num_nodes() const { return start_.size(); }

  /// Sorted insert; returns true when `value` was not already present.
  bool Insert(size_t node, uint32_t value);

  /// Removes `value` if present (region shift; no compaction).
  bool Erase(size_t node, uint32_t value);

  bool Contains(size_t node, uint32_t value) const;

  /// Empties `node`'s region (capacity is reclaimed at the next compact).
  void Clear(size_t node) { count_[node] = 0; }

  /// Slab compactions so far (observability for tests/benches).
  size_t compactions() const { return compactions_; }

 private:
  /// Rewrites the slab with fresh slack, guaranteeing room for one more
  /// neighbor of `grow_node`.
  void Compact(size_t grow_node);

  std::vector<uint32_t> slab_;
  std::vector<uint32_t> start_;  // region offsets into slab_
  std::vector<uint32_t> count_;  // live neighbors per region
  std::vector<uint32_t> cap_;    // region capacities
  size_t compactions_ = 0;
};

}  // namespace internal

/// The conflict graph of one schedule (or schedule projection).
class ConflictGraph {
 public:
  /// An empty graph with no nodes.
  ConflictGraph() = default;

  /// An edgeless graph over `nodes` (must be sorted ascending, duplicates
  /// are rejected); edges are added incrementally with AddEdge.
  explicit ConflictGraph(std::vector<TxnId> nodes,
                         CycleMode mode = CycleMode::kBatch);

  /// Builds the graph from `schedule`. In incremental mode the first
  /// cycle-closing edge additionally records the schedule position of the
  /// operation that created it (cycle_op_pos). Uses the dense bitset sweep
  /// (ConflictBitSweep); bit-identical to BuildReference by construction
  /// and pinned so by the fuzz differential.
  static ConflictGraph Build(const Schedule& schedule,
                             CycleMode mode = CycleMode::kBatch);

  /// The reference build over the vector-scan sweep (SweepConflicts). Kept
  /// as the cross-check oracle for Build and the bench baseline.
  static ConflictGraph BuildReference(const Schedule& schedule,
                                      CycleMode mode = CycleMode::kBatch);

  /// Transactions (nodes), ascending by id.
  const std::vector<TxnId>& nodes() const { return nodes_; }

  /// The cycle-query mode this graph was constructed with.
  CycleMode cycle_mode() const { return mode_; }

  /// Inserts the edge from → to (both must be nodes). Returns true when the
  /// edge is new; the cached topological state is invalidated only then.
  bool AddEdge(TxnId from, TxnId to);

  /// AddEdge by positions into nodes() — the id lookups skipped. For bulk
  /// producers that already work in node indices (the shared analysis
  /// sweep, graph builders).
  bool AddEdgeByIndex(uint32_t from, uint32_t to);

  /// AddEdgeByIndex recording the schedule position of the operation that
  /// created the edge: if this insertion closes the first cycle, the
  /// position is reported as cycle_op_pos() (incremental mode).
  bool AddEdgeByIndexAt(uint32_t from, uint32_t to, size_t op_pos);

  /// Removes the edge from → to if present (incremental mode only; the
  /// simulator's waits-for graph retracts edges as blockers resolve).
  /// Removing an edge never invalidates the maintained order; if a recorded
  /// cycle might have been broken, the cycle state is recomputed.
  bool RemoveEdge(TxnId from, TxnId to);

  /// Removes every in- and out-edge of `txn` (incremental mode only) — the
  /// deadlock-victim abort path.
  void RemoveEdgesOf(TxnId txn);

  // ---- incremental cycle state (kIncremental) --------------------------

  /// True iff a cycle has been detected. O(1) in incremental mode; in
  /// batch mode equivalent to !IsAcyclic().
  bool has_cycle() const;

  /// The first cycle-closing edge (from, to) as txn ids, or nullopt while
  /// acyclic. After a removal-triggered re-detection this is the closing
  /// edge of the freshly discovered cycle.
  const std::optional<std::pair<TxnId, TxnId>>& cycle_edge() const {
    return cycle_edge_;
  }

  /// Schedule position of the operation that closed the cycle, when the
  /// cycle-closing edge was inserted with AddEdgeByIndexAt (the fused
  /// analysis sweep and Build record positions; waits-for edges have none).
  const std::optional<size_t>& cycle_op_pos() const { return cycle_op_pos_; }

  /// The recorded cycle witness (txn ids, first == last), or nullopt while
  /// acyclic. Incremental mode only; batch callers use FindCycle.
  const std::optional<std::vector<TxnId>>& cycle() const { return cycle_; }

  /// The maintained online topological order (incremental mode, acyclic
  /// graphs): a valid — not necessarily canonical — serialization order.
  std::vector<TxnId> OnlineTopologicalOrder() const;

  /// True iff inserting from → to now would close a cycle, i.e. `to`
  /// reaches `from`. O(affected region) in incremental acyclic state via
  /// the order bounds; plain DFS otherwise. Does not mutate the graph.
  bool WouldCloseCycle(TxnId from, TxnId to) const;

  /// The witness variant of WouldCloseCycle: when inserting from → to
  /// would close a cycle, returns the existing path to → ... → from (txn
  /// ids; with the probed edge appended it would be the full cycle), else
  /// nullopt. from == to yields the single-node path {to}. Same bounded
  /// search as WouldCloseCycle in incremental acyclic state (a valid topo
  /// order ranks every node of a to→from path at most ord(from), so the
  /// pruning never hides a path); the victim-choice SGT policy consumes
  /// this to abort the cheapest *active* cycle participant instead of
  /// always restarting the requester. Does not mutate the graph.
  std::optional<std::vector<TxnId>> WouldCloseCycleWitness(TxnId from,
                                                           TxnId to) const;

  /// The direct predecessors of `txn` (incremental mode only — that is
  /// where predecessor lists are maintained). O(in-degree).
  std::vector<TxnId> Predecessors(TxnId txn) const;

  /// The direct successors of `txn` (incremental mode only). O(out-degree).
  /// SgtPolicy's incremental committed-node trim walks these to find the
  /// nodes a retraction may have freed.
  std::vector<TxnId> Successors(TxnId txn) const;

  /// True iff the edge from → to is present.
  bool HasEdge(TxnId from, TxnId to) const;

  /// Number of distinct edges.
  size_t num_edges() const { return num_edges_; }

  /// All edges as (from, to) pairs, ordered by (from, to).
  std::vector<std::pair<TxnId, TxnId>> Edges() const;

  /// True iff the graph has no directed cycle (schedule is CSR).
  bool IsAcyclic() const;

  /// Some serialization order (topological order), or nullopt if cyclic.
  /// Deterministic: smallest ready node first. Cached between edge inserts.
  std::optional<std::vector<TxnId>> TopologicalOrder() const;

  /// All serialization orders, up to `limit` (empty if cyclic). If exactly
  /// `limit` orders are returned the enumeration may be incomplete.
  std::vector<std::vector<TxnId>> AllTopologicalOrders(size_t limit) const;

  /// A directed cycle witness (sequence of txn ids, first == last), or
  /// nullopt if acyclic.
  std::optional<std::vector<TxnId>> FindCycle() const;

  /// Renders "T1 -> T2, T2 -> T3".
  std::string ToString() const;

 private:
  size_t IndexOf(TxnId txn) const;
  /// Debug-only retraction audit: true iff no other node's adjacency (in
  /// either direction) still references `idx`. O(V log deg); only called
  /// from NSE_DCHECK in RemoveEdgesOf.
  bool NoEdgesReference(uint32_t idx) const;
  /// Canonical topological order over node indices, or nullopt if cyclic;
  /// computed once per edge-set revision.
  const std::optional<std::vector<TxnId>>& CachedTopo() const;

  /// Pearce–Kelly order maintenance for a freshly inserted edge x → y with
  /// ord_[y] <= ord_[x]: forward search from y bounded by ord_[x] either
  /// finds x (cycle — recorded, order left untouched) or yields the
  /// affected forward region, which is then merged with the backward region
  /// of x over the pooled order slots.
  void MaintainOrder(uint32_t x, uint32_t y, std::optional<size_t> op_pos);

  /// Recomputes the online order and cycle state from scratch (Kahn + DFS
  /// reference); used after removals while a cycle was recorded, when the
  /// suspended order maintenance must be re-anchored.
  void RebuildOrderAndCycle();

  /// Fresh visit stamp for the bounded searches (avoids O(V) clears).
  uint32_t NextStamp() const;

  bool AddEdgeByIndexInternal(uint32_t from, uint32_t to,
                              std::optional<size_t> op_pos);

  std::vector<TxnId> nodes_;
  internal::FlatAdjacency out_;     // sorted successor indices, flat slab
  std::vector<uint32_t> indegree_;  // by node index
  size_t num_edges_ = 0;
  CycleMode mode_ = CycleMode::kBatch;

  // Incremental mode state.
  internal::FlatAdjacency in_;  // sorted predecessor indices, flat slab
  std::vector<uint32_t> ord_;              // node index -> online rank
  std::optional<std::pair<TxnId, TxnId>> cycle_edge_;
  std::optional<size_t> cycle_op_pos_;
  std::optional<std::vector<TxnId>> cycle_;
  mutable std::vector<uint32_t> mark_;     // visit stamps for bounded DFS
  mutable uint32_t stamp_ = 0;
  std::vector<uint32_t> parent_;  // DFS parents; valid for current stamp only

  mutable bool topo_valid_ = false;
  mutable std::optional<std::vector<TxnId>> topo_;
};

/// Per-item access histories with streaming conflict-edge derivation — the
/// single statement of the paper's conflict rule (same item, distinct
/// transactions, at least one write) shared by the batch analysis sweep
/// (internal::SweepConflicts, hence ConflictGraph::Build and the
/// AnalysisContext fused core build) and the SGT policy's online veto
/// check. Accessors are caller-chosen uint32_t handles: txn indices into
/// schedule.txn_ids() for the sweep, raw txn ids for the scheduler.
class ConflictAccessIndex {
 public:
  /// Calls emit(prior) for every distinct prior accessor whose recorded
  /// access conflicts with an (is_write, item) access by `accessor`: a
  /// write conflicts with every earlier accessor of the item, a read with
  /// every earlier writer. `accessor` itself is never emitted. Prior
  /// writers are emitted before prior readers, each group in first-access
  /// order.
  template <typename EmitFn>
  void ForEachConflict(uint32_t accessor, bool is_write, ItemId item,
                       EmitFn emit) const {
    if (item >= history_.size()) return;
    const ItemHistory& h = history_[item];
    for (uint32_t writer : h.writers) {
      if (writer != accessor) emit(writer);
    }
    if (is_write) {
      for (uint32_t reader : h.readers) {
        if (reader != accessor) emit(reader);
      }
    }
  }

  /// Records the access into the item's history (repeat accesses dedupe).
  void Record(uint32_t accessor, bool is_write, ItemId item);

  /// Erases `accessor` from every item history — the abort-retraction
  /// counterpart of ConflictGraph::RemoveEdgesOf.
  void Erase(uint32_t accessor);

  /// Drops all histories.
  void Clear() { history_.clear(); }

 private:
  struct ItemHistory {
    std::vector<uint32_t> writers;  // distinct accessors, insertion order
    std::vector<uint32_t> readers;
    // Membership bitsets over accessor handles (64-bit words, lazily
    // grown): Record dedupes with one test-and-set instead of a list scan,
    // Erase skips items the accessor never touched.
    std::vector<uint64_t> writer_bits;
    std::vector<uint64_t> reader_bits;
  };
  std::vector<ItemHistory> history_;
};

namespace internal {

/// The single implementation of the per-item conflict sweep shared by
/// ConflictGraph::Build and the AnalysisContext fused core build. Walks the
/// schedule once, feeding each operation through a ConflictAccessIndex
/// keyed by txn indices into schedule.txn_ids(), and calls:
///
///   on_op(op_pos, txn_index)        for every operation, in order;
///   emit(from_index, to_index, op_pos)
///       for every candidate conflict pair — a write conflicts with every
///       earlier accessor of its item, a read with every earlier writer.
///
/// Candidate pairs repeat across positions; deduplication is the caller's
/// job (AddEdgeByIndex, or a seen-bitset for bulk builds).
template <typename OnOpFn, typename EmitFn>
void SweepConflicts(const Schedule& schedule, OnOpFn on_op, EmitFn emit) {
  const std::vector<TxnId>& txn_ids = schedule.txn_ids();
  ConflictAccessIndex index;
  const OpSequence& ops = schedule.ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    const Operation& op = ops[i];
    const uint32_t idx = static_cast<uint32_t>(
        std::lower_bound(txn_ids.begin(), txn_ids.end(), op.txn) -
        txn_ids.begin());
    on_op(i, idx);
    index.ForEachConflict(idx, op.is_write(), op.entity,
                          [&](uint32_t from) { emit(from, idx, i); });
    index.Record(idx, op.is_write(), op.entity);
  }
}

/// Dense fast path for the per-item conflict sweep: per-item reader/writer
/// bitsets over txn indices plus per-plane already-emitted bitsets (64-bit
/// word blocks). An access whose conflicts were all emitted before — the
/// common case on hot items — costs a few word scans and popcounts, with
/// no per-accessor walk and no downstream dedupe work at all, because the
/// emitted bitset is exactly the consumer-side dedupe pulled up front (an
/// already-present pair is a no-op insert either way).
///
/// First-occurrence emissions walk the recorded first-access orders, so
/// the emitted pair sequence is exactly the reference sweep's sequence of
/// *successful* inserts — prior writers first, then (for writes) prior
/// readers — which keeps dense-built graphs bit-identical to
/// reference-built ones, recorded cycle witnesses included. Planes let one
/// sweep feed several consumers (the full graph and each conjunct
/// projection) with independent dedupe. Cross-checked against
/// SweepConflicts by the fuzz differential.
class ConflictBitSweep {
 public:
  ConflictBitSweep(uint32_t num_txns, size_t num_planes)
      : num_txns_(num_txns),
        words_((static_cast<size_t>(num_txns) + 63) / 64),
        emitted_(num_planes) {}

  /// Feeds one access in schedule order: calls emit(plane, from) for every
  /// conflict pair (from → accessor) not yet emitted on that plane, then
  /// records the access. `extra_plane` (< 0 for none) additionally emits
  /// the same access's pairs under a second plane's dedupe.
  template <typename EmitFn>
  void Access(uint32_t accessor, bool is_write, ItemId item, int extra_plane,
              EmitFn emit) {
    if (item >= items_.size()) items_.resize(item + 1);
    ItemBits& bits = items_[item];
    EmitPlane(bits, accessor, is_write, 0, emit);
    if (extra_plane >= 0) {
      EmitPlane(bits, accessor, is_write, static_cast<size_t>(extra_plane),
                emit);
    }
    RecordBit(is_write ? bits.writer_words : bits.reader_words,
              is_write ? bits.writer_order : bits.reader_order, accessor);
  }

  /// Distinct conflict pairs emitted on `plane` so far.
  uint64_t emitted_count(size_t plane) const {
    uint64_t total = 0;
    for (uint64_t word : emitted_[plane]) {
      total += static_cast<uint64_t>(__builtin_popcountll(word));
    }
    return total;
  }

 private:
  struct ItemBits {
    std::vector<uint64_t> writer_words;  // membership, lazily grown
    std::vector<uint64_t> reader_words;
    std::vector<uint32_t> writer_order;  // distinct, first-access order
    std::vector<uint32_t> reader_order;
  };

  /// Popcount of candidate bits not yet emitted on `row` (the accessor's
  /// own bit masked out).
  static uint64_t CountNew(const std::vector<uint64_t>& cand,
                           const uint64_t* row, uint32_t accessor) {
    uint64_t fresh = 0;
    const size_t self_word = accessor >> 6;
    for (size_t w = 0; w < cand.size(); ++w) {
      uint64_t word = cand[w] & ~row[w];
      if (w == self_word) word &= ~(uint64_t{1} << (accessor & 63));
      fresh += static_cast<uint64_t>(__builtin_popcountll(word));
    }
    return fresh;
  }

  /// Emits the `fresh` not-yet-emitted accessors of `order` in first-access
  /// order, marking them on `row`.
  template <typename EmitFn>
  static void WalkOrder(const std::vector<uint32_t>& order, uint64_t* row,
                        uint32_t accessor, uint64_t fresh, size_t plane,
                        EmitFn& emit) {
    for (uint32_t from : order) {
      if (from == accessor) continue;
      uint64_t& word = row[from >> 6];
      const uint64_t bit = uint64_t{1} << (from & 63);
      if ((word & bit) != 0) continue;
      word |= bit;
      emit(plane, from);
      if (--fresh == 0) break;
    }
  }

  template <typename EmitFn>
  void EmitPlane(ItemBits& bits, uint32_t accessor, bool is_write,
                 size_t plane, EmitFn& emit) {
    uint64_t* row = PlaneRow(plane, accessor);
    uint64_t fresh = CountNew(bits.writer_words, row, accessor);
    if (fresh != 0) {
      WalkOrder(bits.writer_order, row, accessor, fresh, plane, emit);
    }
    if (is_write) {
      // Recomputed after the writer walk: an accessor on both lists was
      // just marked there and must not emit twice.
      fresh = CountNew(bits.reader_words, row, accessor);
      if (fresh != 0) {
        WalkOrder(bits.reader_order, row, accessor, fresh, plane, emit);
      }
    }
  }

  /// The accessor's 64-bit row of `plane`'s emitted bitset (rows allocated
  /// on a plane's first use).
  uint64_t* PlaneRow(size_t plane, uint32_t accessor) {
    std::vector<uint64_t>& store = emitted_[plane];
    if (store.empty()) {
      store.assign(static_cast<size_t>(num_txns_) * words_, 0);
    }
    return store.data() + static_cast<size_t>(accessor) * words_;
  }

  static void RecordBit(std::vector<uint64_t>& words,
                        std::vector<uint32_t>& order, uint32_t accessor) {
    const size_t w = accessor >> 6;
    if (w >= words.size()) words.resize(w + 1, 0);
    const uint64_t bit = uint64_t{1} << (accessor & 63);
    if ((words[w] & bit) != 0) return;
    words[w] |= bit;
    order.push_back(accessor);
  }

  uint32_t num_txns_;
  size_t words_;
  std::vector<ItemBits> items_;
  std::vector<std::vector<uint64_t>> emitted_;  // plane -> txns × words_
};

}  // namespace internal

}  // namespace nse

#endif  // NSE_ANALYSIS_CONFLICT_GRAPH_H_
