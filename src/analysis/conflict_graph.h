// Conflict graph (serialization graph) of a schedule: nodes are the
// transactions; there is an edge T_i → T_j when some operation of T_i
// precedes and conflicts with an operation of T_j. A schedule is conflict
// serializable (CSR) iff the graph is acyclic; topological orders of the
// graph are exactly its serialization orders (Papadimitriou [13]).

#ifndef NSE_ANALYSIS_CONFLICT_GRAPH_H_
#define NSE_ANALYSIS_CONFLICT_GRAPH_H_

#include <optional>
#include <string>
#include <vector>

#include "txn/schedule.h"

namespace nse {

/// The conflict graph of one schedule (or schedule projection).
class ConflictGraph {
 public:
  /// Builds the graph from `schedule`.
  static ConflictGraph Build(const Schedule& schedule);

  /// Transactions (nodes), ascending by id.
  const std::vector<TxnId>& nodes() const { return nodes_; }

  /// True iff the edge from → to is present.
  bool HasEdge(TxnId from, TxnId to) const;

  /// All edges as (from, to) pairs.
  std::vector<std::pair<TxnId, TxnId>> Edges() const;

  /// True iff the graph has no directed cycle (schedule is CSR).
  bool IsAcyclic() const;

  /// Some serialization order (topological order), or nullopt if cyclic.
  std::optional<std::vector<TxnId>> TopologicalOrder() const;

  /// All serialization orders, up to `limit` (empty if cyclic). If exactly
  /// `limit` orders are returned the enumeration may be incomplete.
  std::vector<std::vector<TxnId>> AllTopologicalOrders(size_t limit) const;

  /// A directed cycle witness (sequence of txn ids, first == last), or
  /// nullopt if acyclic.
  std::optional<std::vector<TxnId>> FindCycle() const;

  /// Renders "T1 -> T2, T2 -> T3".
  std::string ToString() const;

 private:
  size_t IndexOf(TxnId txn) const;

  std::vector<TxnId> nodes_;
  std::vector<std::vector<bool>> adj_;  // adjacency matrix by node index
};

}  // namespace nse

#endif  // NSE_ANALYSIS_CONFLICT_GRAPH_H_
