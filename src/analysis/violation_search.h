// Violation search: the empirical engine behind the T1/T2/T3 experiments.
// Samples (initial state, interleaving) pairs for a set of transaction
// programs, filters executions by the hypotheses of interest (PWSR, DR,
// acyclic DAG, fixed structure), and checks strong correctness of each
// surviving execution. Under any theorem's hypotheses the expected count is
// zero; dropping a hypothesis should re-expose Example-2-style violations.
//
// The randomized search runs on a fixed worker pool. Determinism contract
// (see docs/adr/0002): trial t draws from the sub-stream Split(t) of one
// master generator, workers claim trial-index batches from a shared
// dispenser, and per-worker outcomes merge associatively — so for a fixed
// seed the outcome counts and the first counterexample (ordered by global
// trial index) are identical for any thread count, including 1. Workers
// share one SolverCache, so strong-correctness checks on overlapping
// sampled schedules reuse each other's solver search trees.
//
// The exhaustive search (a bounded model checker) runs on the same pool
// with the same discipline: the interleaving tree of each initial state
// partitions into the subtrees under its top-level choices, workers claim
// (state, first-choice) subtree units from a shared dispenser, and the
// merge replays the canonical depth-first order under the per-state visit
// budget — so counts, truncation, and the first counterexample (in
// enumeration order) are bit-identical at any thread count. Enumeration is
// deterministic, so no per-unit RNG streams are needed; workers share one
// pre-warmed SolverCache, which changes only speed and cache stats, never
// verdicts (the exhaustive path samples nothing).

#ifndef NSE_ANALYSIS_VIOLATION_SEARCH_H_
#define NSE_ANALYSIS_VIOLATION_SEARCH_H_

#include <optional>
#include <vector>

#include "analysis/strong_correctness.h"
#include "analysis/theorems.h"
#include "common/rng.h"
#include "constraints/solver.h"
#include "txn/interleaver.h"

namespace nse {

/// Which hypotheses an execution must satisfy to be checked.
struct HypothesisFilter {
  bool require_pwsr = false;
  bool require_delayed_read = false;
  bool require_dag_acyclic = false;
  /// Checked once against the programs (not per execution).
  bool require_fixed_structure = false;
};

/// A strong-correctness violation with everything needed to reproduce it.
struct Counterexample {
  DbState initial;
  std::vector<size_t> choices;
  Schedule schedule;
  StrongCorrectnessReport report;
};

/// Aggregate statistics of one search.
struct SearchOutcome {
  uint64_t trials = 0;             ///< executions generated
  uint64_t filtered_out = 0;       ///< executions failing the filter
  uint64_t checked = 0;            ///< executions strong-correctness checked
  uint64_t violations = 0;         ///< executions violating Definition 1
  /// Exhaustive search only: initial states whose interleaving enumeration
  /// was cut off by the limit (i.e. the search was NOT exhaustive for them).
  /// Distinguishes "few trials because the filter rejected executions" from
  /// "few trials because enumeration was truncated".
  uint64_t truncated = 0;
  std::optional<Counterexample> first_counterexample;
  /// Global trial index of first_counterexample: the sampled trial index on
  /// the randomized path, the canonical enumeration index on the
  /// exhaustive path.
  std::optional<uint64_t> first_violation_trial;
  /// Shared solver-cache effort during this search (zeros when disabled).
  SolverCache::Stats solver_cache;
};

/// Knobs of the randomized search engine.
struct SearchConfig {
  uint64_t trials = 0;
  /// Stop as soon as a violation is found. The returned outcome is the
  /// deterministic prefix: every trial up to and including the smallest
  /// violating trial index (later-index work already done is discarded), so
  /// stop-at-first results are also thread-count independent.
  bool stop_at_first = false;
  /// Worker threads; 0 means ThreadPool::DefaultNumThreads(). threads=1
  /// runs inline on the calling thread (no pool) but through the same
  /// trial-stream machinery, so it is bit-identical to any other count.
  size_t threads = 1;
  /// Trials claimed per dispenser round-trip (tradeoff: dispatch overhead
  /// vs. tail imbalance).
  uint64_t batch_size = 16;
  /// Share one SolverCache across all workers (sampling domains,
  /// consistency verdicts, extension subtrees). Disable to measure the
  /// uncached baseline. Note: cached sampling draws uniformly from
  /// enumerated per-conjunct solution sets, uncached uses the randomized
  /// backtracking search — so flipping this changes which executions a
  /// given seed samples. Each mode is internally deterministic; they are
  /// different (equally valid) random experiments, not the same run.
  bool share_solver_cache = true;
};

/// Randomized search: `config.trials` (initial state, random interleaving)
/// pairs. Initial states are sampled consistent states. If the programs
/// fail the fixed-structure requirement (when set), returns an outcome with
/// all trials filtered out.
Result<SearchOutcome> SearchForViolations(
    const Database& db, const IntegrityConstraint& ic,
    const std::vector<const TransactionProgram*>& programs,
    const HypothesisFilter& filter, Rng& rng, const SearchConfig& config);

/// Single-threaded convenience overload (the pre-engine signature).
Result<SearchOutcome> SearchForViolations(
    const Database& db, const IntegrityConstraint& ic,
    const std::vector<const TransactionProgram*>& programs,
    const HypothesisFilter& filter, Rng& rng, uint64_t trials,
    bool stop_at_first = false);

/// Knobs of the exhaustive search engine.
struct ExhaustiveSearchConfig {
  /// Complete-interleaving visit budget per initial state; enumeration past
  /// it is reported via SearchOutcome::truncated.
  uint64_t interleaving_limit = 0;
  /// Stop at the first violation in canonical enumeration order. As on the
  /// randomized path the returned outcome is the deterministic prefix
  /// ending at that violation, so it is thread-count independent.
  bool stop_at_first = false;
  /// Worker threads; 0 means ThreadPool::DefaultNumThreads(). threads=1
  /// runs inline on the calling thread through the same unit machinery.
  size_t threads = 1;
  /// Share one pre-warmed SolverCache across all workers. Unlike the
  /// randomized path this never changes the outcome (nothing is sampled);
  /// disable only to measure the uncached baseline.
  bool share_solver_cache = true;
  /// Drive the units through EnumerateInterleavingsFromReference (the
  /// original replay-per-node enumerator) instead of the incremental
  /// step/undo enumerator. Visit order and every count are identical —
  /// only wall time differs. This is the sequential baseline configuration
  /// of bench_violation_search's exhaustive rows.
  bool reference_enumerator = false;
};

/// Exhaustive search over every interleaving from each given initial state
/// (up to `config.interleaving_limit` interleavings per state), fanned
/// over (state, top-level choice) subtree units. SearchOutcome is
/// bit-identical at any thread count; see the header comment.
Result<SearchOutcome> ExhaustiveViolationSearch(
    const Database& db, const IntegrityConstraint& ic,
    const std::vector<const TransactionProgram*>& programs,
    const std::vector<DbState>& initial_states, const HypothesisFilter& filter,
    const ExhaustiveSearchConfig& config);

/// Single-threaded convenience overload (the pre-engine signature).
Result<SearchOutcome> ExhaustiveViolationSearch(
    const Database& db, const IntegrityConstraint& ic,
    const std::vector<const TransactionProgram*>& programs,
    const std::vector<DbState>& initial_states,
    const HypothesisFilter& filter, uint64_t interleaving_limit,
    bool stop_at_first = false);

}  // namespace nse

#endif  // NSE_ANALYSIS_VIOLATION_SEARCH_H_
