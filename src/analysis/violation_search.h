// Violation search: the empirical engine behind the T1/T2/T3 experiments.
// Samples (initial state, interleaving) pairs for a set of transaction
// programs, filters executions by the hypotheses of interest (PWSR, DR,
// acyclic DAG, fixed structure), and checks strong correctness of each
// surviving execution. Under any theorem's hypotheses the expected count is
// zero; dropping a hypothesis should re-expose Example-2-style violations.
//
// Also provides exhaustive search over all interleavings for small
// scenarios (a bounded model checker).

#ifndef NSE_ANALYSIS_VIOLATION_SEARCH_H_
#define NSE_ANALYSIS_VIOLATION_SEARCH_H_

#include <optional>
#include <vector>

#include "analysis/strong_correctness.h"
#include "analysis/theorems.h"
#include "common/rng.h"
#include "constraints/solver.h"
#include "txn/interleaver.h"

namespace nse {

/// Which hypotheses an execution must satisfy to be checked.
struct HypothesisFilter {
  bool require_pwsr = false;
  bool require_delayed_read = false;
  bool require_dag_acyclic = false;
  /// Checked once against the programs (not per execution).
  bool require_fixed_structure = false;
};

/// A strong-correctness violation with everything needed to reproduce it.
struct Counterexample {
  DbState initial;
  std::vector<size_t> choices;
  Schedule schedule;
  StrongCorrectnessReport report;
};

/// Aggregate statistics of one search.
struct SearchOutcome {
  uint64_t trials = 0;             ///< executions generated
  uint64_t filtered_out = 0;       ///< executions failing the filter
  uint64_t checked = 0;            ///< executions strong-correctness checked
  uint64_t violations = 0;         ///< executions violating Definition 1
  std::optional<Counterexample> first_counterexample;
};

/// Randomized search: `trials` (initial state, random interleaving) pairs.
/// Initial states are sampled consistent states. If the programs fail the
/// fixed-structure requirement (when set), returns an outcome with all
/// trials filtered out.
Result<SearchOutcome> SearchForViolations(
    const Database& db, const IntegrityConstraint& ic,
    const std::vector<const TransactionProgram*>& programs,
    const HypothesisFilter& filter, Rng& rng, uint64_t trials,
    bool stop_at_first = false);

/// Exhaustive search over every interleaving from each given initial state
/// (up to `interleaving_limit` interleavings per state).
Result<SearchOutcome> ExhaustiveViolationSearch(
    const Database& db, const IntegrityConstraint& ic,
    const std::vector<const TransactionProgram*>& programs,
    const std::vector<DbState>& initial_states,
    const HypothesisFilter& filter, uint64_t interleaving_limit,
    bool stop_at_first = false);

}  // namespace nse

#endif  // NSE_ANALYSIS_VIOLATION_SEARCH_H_
