#include "analysis/theorems.h"

#include "analysis/analysis_context.h"
#include "common/string_util.h"

namespace nse {

TheoremCertificate Certify(
    const Database& db, const IntegrityConstraint& ic,
    const Schedule& schedule,
    const std::vector<const TransactionProgram*>* programs) {
  AnalysisContext ctx(db, ic, schedule);
  return Certify(ctx, programs);
}

TheoremCertificate Certify(
    AnalysisContext& ctx,
    const std::vector<const TransactionProgram*>* programs) {
  if (programs == nullptr) programs = ctx.options().programs;
  // The fixed-structure analysis needs the catalog; without one the
  // Theorem 1 hypothesis stays unknown instead of aborting in ctx.db().
  if (!ctx.has_db()) programs = nullptr;
  TheoremCertificate cert;
  cert.pwsr = ctx.pwsr_report();
  cert.conjuncts_disjoint = ctx.ic().disjoint();
  cert.delayed_read = ctx.delayed_read();
  cert.dag_acyclic = ctx.access_graph().IsAcyclic();
  if (programs != nullptr) {
    bool all_fixed = true;
    for (const TransactionProgram* program : *programs) {
      StructureAnalysis analysis = AnalyzeStructure(ctx.db(), *program);
      if (!analysis.valid || !analysis.fixed) {
        all_fixed = false;
        break;
      }
    }
    cert.all_programs_fixed_structure = all_fixed;
  }
  bool base = cert.pwsr.is_pwsr && cert.conjuncts_disjoint;
  cert.theorem1_applies = base && cert.all_programs_fixed_structure.has_value() &&
                          *cert.all_programs_fixed_structure;
  cert.theorem2_applies = base && cert.delayed_read;
  cert.theorem3_applies = base && cert.dag_acyclic;
  return cert;
}

std::string TheoremCertificate::Summary() const {
  std::vector<std::string> lines;
  lines.push_back(StrCat("PWSR (Def. 2): ", pwsr.is_pwsr ? "yes" : "no"));
  lines.push_back(StrCat("conjuncts disjoint: ",
                         conjuncts_disjoint ? "yes" : "NO (Example 5 regime)"));
  if (all_programs_fixed_structure.has_value()) {
    lines.push_back(StrCat("all programs fixed-structure (Def. 3): ",
                           *all_programs_fixed_structure ? "yes" : "no"));
  } else {
    lines.push_back("all programs fixed-structure (Def. 3): unknown");
  }
  lines.push_back(StrCat("delayed-read (Def. 5): ",
                         delayed_read ? "yes" : "no"));
  lines.push_back(StrCat("DAG(S, IC) acyclic: ", dag_acyclic ? "yes" : "no"));
  lines.push_back(StrCat("Theorem 1 applies: ",
                         theorem1_applies ? "yes" : "no"));
  lines.push_back(StrCat("Theorem 2 applies: ",
                         theorem2_applies ? "yes" : "no"));
  lines.push_back(StrCat("Theorem 3 applies: ",
                         theorem3_applies ? "yes" : "no"));
  lines.push_back(StrCat("strong correctness guaranteed: ",
                         guaranteed_strongly_correct() ? "YES" : "not proven"));
  return StrJoin(lines, "\n");
}

}  // namespace nse
