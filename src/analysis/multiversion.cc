#include "analysis/multiversion.h"

#include <algorithm>
#include <functional>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/string_util.h"

namespace nse {

namespace {

/// One operation of a transaction, reduced to what the serial-order search
/// needs: action, item, and (for reads) the required observed writer.
struct MvOp {
  bool is_read = false;
  ItemId item = 0;
  TxnId source = 0;  // reads only: required writer (0 = initial state)
};

/// Per-item write metadata harvested in one pass over the trace.
struct ItemWrites {
  std::vector<TxnId> order;  // distinct writers, by first write position
  TxnId final_writer = 0;    // writer of the last write in the trace
};

std::unordered_map<ItemId, ItemWrites> CollectWrites(
    const Schedule& schedule) {
  std::unordered_map<ItemId, ItemWrites> writes;
  for (const Operation& op : schedule.ops()) {
    if (!op.is_write()) continue;
    ItemWrites& entry = writes[op.entity];
    if (std::find(entry.order.begin(), entry.order.end(), op.txn) ==
        entry.order.end()) {
      entry.order.push_back(op.txn);
    }
    entry.final_writer = op.txn;
  }
  return writes;
}

/// Resolves the effective reads-from of every position: the annotation when
/// present, the latest preceding write otherwise (0 = initial state).
std::vector<std::optional<TxnId>> ResolveReadSources(
    const Schedule& schedule, const VersionAnnotations& versions) {
  std::vector<std::optional<TxnId>> resolved(schedule.size());
  std::unordered_map<ItemId, TxnId> last_writer;
  for (size_t p = 0; p < schedule.size(); ++p) {
    const Operation& op = schedule.at(p);
    if (op.is_write()) {
      last_writer[op.entity] = op.txn;
      continue;
    }
    if (p < versions.read_from.size() && versions.read_from[p].has_value()) {
      resolved[p] = versions.read_from[p];
    } else {
      auto it = last_writer.find(op.entity);
      resolved[p] = it == last_writer.end() ? TxnId{0} : it->second;
    }
  }
  return resolved;
}

/// The search input: transactions with their reduced op lists.
struct SearchInput {
  std::vector<TxnId> txns;                 // ascending
  std::vector<std::vector<MvOp>> ops;      // parallel to txns
  std::unordered_map<TxnId, size_t> index;  // txn -> position in txns
};

SearchInput BuildSearchInput(
    const Schedule& schedule,
    const std::vector<std::optional<TxnId>>& sources) {
  SearchInput input;
  input.txns = schedule.txn_ids();
  input.ops.resize(input.txns.size());
  for (size_t k = 0; k < input.txns.size(); ++k) input.index[input.txns[k]] = k;
  for (size_t p = 0; p < schedule.size(); ++p) {
    const Operation& op = schedule.at(p);
    MvOp reduced;
    reduced.is_read = op.is_read();
    reduced.item = op.entity;
    if (op.is_read()) reduced.source = sources[p].value_or(0);
    input.ops[input.index.at(op.txn)].push_back(reduced);
  }
  return input;
}

/// True iff placing `t` next in the serial order is consistent with its
/// required reads-from, given the current last committed writer per item.
bool Feasible(const std::vector<MvOp>& ops, TxnId t,
              const std::unordered_map<ItemId, TxnId>& committed) {
  std::unordered_set<ItemId> own;
  for (const MvOp& op : ops) {
    if (!op.is_read) {
      own.insert(op.item);
      continue;
    }
    TxnId actual;
    if (own.count(op.item) > 0) {
      actual = t;
    } else {
      auto it = committed.find(op.item);
      actual = it == committed.end() ? TxnId{0} : it->second;
    }
    if (actual != op.source) return false;
  }
  return true;
}

/// Exhaustive serial-order search with reads-from feasibility pruning.
/// Returns kFound / kExhausted / kCapped via the report it fills.
enum class SearchOutcome { kFound, kExhausted, kCapped };

SearchOutcome SearchSerialOrder(
    const SearchInput& input,
    const std::unordered_map<ItemId, TxnId>* required_finals,
    uint64_t node_limit, std::vector<TxnId>& order, uint64_t& nodes) {
  const size_t n = input.txns.size();
  std::vector<bool> used(n, false);
  std::unordered_map<ItemId, TxnId> committed;
  order.clear();
  bool capped = false;

  std::function<bool(size_t)> place = [&](size_t depth) {
    if (depth == n) {
      if (required_finals != nullptr) {
        for (const auto& [item, writer] : *required_finals) {
          auto it = committed.find(item);
          if (it == committed.end() || it->second != writer) return false;
        }
      }
      return true;
    }
    for (size_t k = 0; k < n; ++k) {
      if (used[k]) continue;
      if (++nodes > node_limit) {
        capped = true;
        return false;
      }
      const TxnId t = input.txns[k];
      if (!Feasible(input.ops[k], t, committed)) continue;
      used[k] = true;
      order.push_back(t);
      // Overwrite-and-restore: remember each touched item's prior writer.
      std::vector<std::pair<ItemId, TxnId>> saved;
      for (const MvOp& op : input.ops[k]) {
        if (op.is_read) continue;
        auto it = committed.find(op.item);
        saved.emplace_back(op.item, it == committed.end() ? TxnId{0}
                                                          : it->second);
        committed[op.item] = t;
      }
      if (place(depth + 1)) return true;
      for (auto rit = saved.rbegin(); rit != saved.rend(); ++rit) {
        if (rit->second == 0) {
          committed.erase(rit->first);
        } else {
          committed[rit->first] = rit->second;
        }
      }
      order.pop_back();
      used[k] = false;
      if (capped) return false;
    }
    return false;
  };

  if (place(0)) return SearchOutcome::kFound;
  return capped ? SearchOutcome::kCapped : SearchOutcome::kExhausted;
}

/// MVSG fast path: edges under the trace's per-item write order as the
/// version order. Returns a topological order when acyclic.
std::optional<std::vector<TxnId>> MvsgTopologicalOrder(
    const SearchInput& input,
    const std::vector<std::optional<TxnId>>& sources, const Schedule& schedule,
    const std::unordered_map<ItemId, ItemWrites>& writes) {
  const size_t n = input.txns.size();
  std::vector<std::vector<bool>> edge(n, std::vector<bool>(n, false));
  auto add_edge = [&](TxnId from, TxnId to) {
    if (from == to) return;
    edge[input.index.at(from)][input.index.at(to)] = true;
  };
  // Version rank of txn i's version of `item`; the initial version ranks
  // below every written one.
  auto rank_of = [&](const ItemWrites& entry, TxnId txn) -> int {
    if (txn == 0) return -1;
    auto it = std::find(entry.order.begin(), entry.order.end(), txn);
    return static_cast<int>(it - entry.order.begin());
  };
  for (size_t p = 0; p < schedule.size(); ++p) {
    const Operation& op = schedule.at(p);
    if (!op.is_read()) continue;
    const TxnId reader = op.txn;
    const TxnId source = sources[p].value_or(0);
    auto writes_it = writes.find(op.entity);
    if (source != 0 && source != reader) add_edge(source, reader);
    if (writes_it == writes.end()) continue;
    const ItemWrites& entry = writes_it->second;
    const int source_rank = rank_of(entry, source);
    for (TxnId other : entry.order) {
      if (other == source || other == reader) continue;
      if (rank_of(entry, other) < source_rank) {
        add_edge(other, source);
      } else {
        add_edge(reader, other);
      }
    }
  }
  // Kahn's algorithm, smallest-id-first for a deterministic witness.
  std::vector<size_t> indegree(n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (edge[i][j]) ++indegree[j];
    }
  }
  std::vector<TxnId> order;
  std::vector<bool> emitted(n, false);
  for (size_t round = 0; round < n; ++round) {
    size_t pick = n;
    for (size_t i = 0; i < n; ++i) {
      if (!emitted[i] && indegree[i] == 0) {
        pick = i;
        break;
      }
    }
    if (pick == n) return std::nullopt;  // cycle
    emitted[pick] = true;
    order.push_back(input.txns[pick]);
    for (size_t j = 0; j < n; ++j) {
      if (edge[pick][j]) --indegree[j];
    }
  }
  return order;
}

std::string RenderOrder(const std::vector<TxnId>& order) {
  std::vector<std::string> parts;
  parts.reserve(order.size());
  for (TxnId txn : order) parts.push_back(StrCat("T", txn));
  return StrJoin(parts, " ");
}

/// Shared driver for both criteria. `required_finals` non-null switches on
/// classical view equivalence's final-write condition.
MultiversionReport Decide(const Schedule& schedule,
                          const std::vector<std::optional<TxnId>>& sources,
                          const std::unordered_map<ItemId, TxnId>* finals,
                          uint64_t node_limit, std::string_view criterion) {
  MultiversionReport report;
  const std::unordered_map<ItemId, ItemWrites> writes =
      CollectWrites(schedule);
  // A read annotated with a transaction that never writes the item is a
  // malformed trace, refuted without a search.
  for (size_t p = 0; p < schedule.size(); ++p) {
    const Operation& op = schedule.at(p);
    if (!op.is_read() || !sources[p].has_value() || *sources[p] == 0) {
      continue;
    }
    auto it = writes.find(op.entity);
    if (it == writes.end() ||
        std::find(it->second.order.begin(), it->second.order.end(),
                  *sources[p]) == it->second.order.end()) {
      report.satisfied = false;
      report.detail =
          StrCat("position ", p, " reads from T", *sources[p],
                 ", which never writes the item — malformed annotation");
      return report;
    }
  }
  const SearchInput input = BuildSearchInput(schedule, sources);
  std::optional<std::vector<TxnId>> topo =
      MvsgTopologicalOrder(input, sources, schedule, writes);
  if (topo.has_value()) {
    // A topological order of the MVSG reproduces the reads-from; for view
    // equivalence it must additionally land the same final writes.
    bool finals_ok = true;
    if (finals != nullptr) {
      std::unordered_map<ItemId, TxnId> last;
      for (TxnId txn : *topo) {
        for (const MvOp& op : input.ops[input.index.at(txn)]) {
          if (!op.is_read) last[op.item] = txn;
        }
      }
      for (const auto& [item, writer] : *finals) {
        auto it = last.find(item);
        if (it == last.end() || it->second != writer) {
          finals_ok = false;
          break;
        }
      }
    }
    if (finals_ok) {
      report.satisfied = true;
      report.fast_path = true;
      report.detail = StrCat(criterion,
                             " via acyclic MVSG under the trace version "
                             "order; serial order ",
                             RenderOrder(*topo));
      report.order = std::move(topo);
      return report;
    }
  }
  // Exact tier: the trace version order is only a candidate (Thomas-rule
  // writes land older than wall order), so search serial orders outright.
  std::vector<TxnId> order;
  switch (SearchSerialOrder(input, finals, node_limit, order,
                            report.nodes_visited)) {
    case SearchOutcome::kFound:
      report.satisfied = true;
      report.detail = StrCat(criterion, " via serial-order search (",
                             report.nodes_visited, " nodes); serial order ",
                             RenderOrder(order));
      report.order = std::move(order);
      return report;
    case SearchOutcome::kExhausted:
      report.satisfied = false;
      report.detail =
          StrCat("no serial order reproduces the ",
                 finals != nullptr ? "reads-from and final writes"
                                   : "annotated reads-from",
                 " (search exhausted, ", report.nodes_visited, " nodes)");
      return report;
    case SearchOutcome::kCapped:
      report.decided = false;
      report.satisfied = false;
      report.detail = StrCat("serial-order search exceeded ", node_limit,
                             " nodes before deciding");
      return report;
  }
  return report;
}

}  // namespace

VersionAnnotations MonoversionAnnotations(const Schedule& schedule) {
  VersionAnnotations versions;
  versions.read_from.resize(schedule.size());
  std::unordered_map<ItemId, TxnId> last_writer;
  for (size_t p = 0; p < schedule.size(); ++p) {
    const Operation& op = schedule.at(p);
    if (op.is_write()) {
      last_writer[op.entity] = op.txn;
      continue;
    }
    auto it = last_writer.find(op.entity);
    versions.read_from[p] = it == last_writer.end() ? TxnId{0} : it->second;
  }
  return versions;
}

MultiversionReport CheckMvsr(const Schedule& schedule,
                             const VersionAnnotations& versions,
                             uint64_t node_limit) {
  const std::vector<std::optional<TxnId>> sources =
      ResolveReadSources(schedule, versions);
  return Decide(schedule, sources, /*finals=*/nullptr, node_limit, "MVSR");
}

MultiversionReport CheckViewSerializability(const Schedule& schedule,
                                            uint64_t node_limit) {
  const std::vector<std::optional<TxnId>> sources =
      ResolveReadSources(schedule, VersionAnnotations{});
  std::unordered_map<ItemId, TxnId> finals;
  for (const Operation& op : schedule.ops()) {
    if (op.is_write()) finals[op.entity] = op.txn;
  }
  return Decide(schedule, sources, &finals, node_limit,
                "view-serializable");
}

}  // namespace nse
