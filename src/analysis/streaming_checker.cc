#include "analysis/streaming_checker.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace nse {

namespace {

constexpr size_t kInitialSlots = 64;

uint64_t EdgeKey(uint32_t from, uint32_t to) {
  return (static_cast<uint64_t>(from) << 32) | to;
}

/// An edgeless incremental graph over slot ids 0..capacity-1.
ConflictGraph SlotGraph(size_t capacity) {
  std::vector<TxnId> nodes(capacity);
  for (size_t i = 0; i < capacity; ++i) nodes[i] = static_cast<TxnId>(i);
  return ConflictGraph(std::move(nodes), CycleMode::kIncremental);
}

}  // namespace

bool StreamingReport::ok() const {
  if (!full.ok || !aborted_reads.empty()) return false;
  return std::all_of(planes.begin(), planes.end(),
                     [](const StreamingPlaneReport& p) { return p.ok; });
}

StreamingChecker::StreamingChecker(const Database& db, StreamingOptions options)
    : db_(&db), options_(std::move(options)) {
  planes_.resize(1 + options_.planes.size());
  for (size_t p = 0; p < planes_.size(); ++p) {
    Plane& plane = planes_[p];
    if (p > 0) {
      plane.items = options_.planes[p - 1];
      NSE_CHECK(!plane.items.empty());
    }
    plane.graph = SlotGraph(kInitialSlots);
    plane.slots.resize(kInitialSlots);
    for (size_t s = kInitialSlots; s > 0; --s) {
      plane.free_slots.push_back(static_cast<uint32_t>(s - 1));
    }
  }
}

Status StreamingChecker::Feed(const HistoryEvent& event) {
  if (finished_) {
    return Status::FailedPrecondition("Feed after Finish");
  }
  const auto fail = [&](StatusCode code, const std::string& what) {
    return Status(code, StrCat("event ", stats_.events, " (",
                               HistoryEventTypeName(event.type), " txn ",
                               event.txn, "): ", what));
  };
  if (event.txn == 0) {
    return fail(StatusCode::kInvalidArgument, "transaction ids must be >= 1");
  }
  const size_t event_index = stats_.events;
  switch (event.type) {
    case HistoryEventType::kBegin:
      if (active_.count(event.txn) != 0) {
        return fail(StatusCode::kFailedPrecondition,
                    "duplicate begin of an active transaction");
      }
      if (aborted_.count(event.txn) != 0) {
        return fail(StatusCode::kFailedPrecondition,
                    "transaction id reused after abort");
      }
      active_.insert(event.txn);
      break;
    case HistoryEventType::kRead:
    case HistoryEventType::kWrite: {
      if (active_.count(event.txn) == 0) {
        return fail(StatusCode::kFailedPrecondition,
                    "operation of a transaction that is not active");
      }
      if (event.item >= db_->num_items()) {
        return fail(StatusCode::kNotFound,
                    StrCat("unknown item id ", event.item));
      }
      NSE_RETURN_IF_ERROR(FeedOp(event, event_index));
      ++stats_.ops;
      break;
    }
    case HistoryEventType::kCommit:
    case HistoryEventType::kAbort:
      if (active_.count(event.txn) == 0) {
        return fail(StatusCode::kFailedPrecondition,
                    "commit/abort of a transaction that is not active");
      }
      active_.erase(event.txn);
      if (event.type == HistoryEventType::kCommit) {
        FeedCommit(event.txn, event_index);
        ++stats_.commits;
      } else {
        FeedAbort(event.txn);
        ++stats_.aborts;
      }
      break;
  }
  ++stats_.events;
  return Status::Ok();
}

Status StreamingChecker::FeedOp(const HistoryEvent& event, size_t event_index) {
  const bool is_write = event.type == HistoryEventType::kWrite;
  for (Plane& plane : planes_) {
    if (plane.violated || !plane.Tracks(event.item)) continue;
    const uint32_t slot = EnsureSlot(plane, event.txn);
    plane.access.ForEachConflict(
        slot, is_write, event.item, [&](uint32_t from) {
          if (plane.graph.AddEdgeByIndexAt(from, slot, event_index)) {
            plane.edge_meta[EdgeKey(from, slot)] =
                EdgeMeta{next_seq_++, event_index};
          }
        });
    plane.access.Record(slot, is_write, event.item);
  }
  if (!is_write && event.read_from.has_value() && *event.read_from != 0 &&
      *event.read_from != event.txn) {
    TrackDirtyRead(event.txn, *event.read_from, event_index);
  }
  return Status::Ok();
}

void StreamingChecker::FeedCommit(TxnId txn, size_t event_index) {
  for (Plane& plane : planes_) {
    if (plane.violated) {
      auto it = plane.frozen_fates.find(txn);
      if (it != plane.frozen_fates.end() &&
          it->second == TxnFate::kIncomplete) {
        it->second = TxnFate::kCommitted;
      }
      continue;
    }
    auto slot_it = plane.slot_of.find(txn);
    if (slot_it == plane.slot_of.end()) continue;  // no tracked ops
    const uint32_t slot = slot_it->second;
    plane.slots[slot].committed = true;
    plane.committed_slots.push_back(slot);
    ++plane.committed_retained;
    if (plane.graph.has_cycle() && CommittedCycleThrough(plane, slot)) {
      LatchViolation(plane, event_index);
      continue;
    }
    if (options_.window != 0 &&
        plane.committed_retained > options_.window &&
        !plane.graph.has_cycle()) {
      EvictionSweep(plane);
    }
  }
  ResolveDirtyReads(txn, /*committed=*/true);
}

void StreamingChecker::FeedAbort(TxnId txn) {
  aborted_.insert(txn);
  for (Plane& plane : planes_) {
    if (plane.violated) {
      auto it = plane.frozen_fates.find(txn);
      if (it != plane.frozen_fates.end() &&
          it->second == TxnFate::kIncomplete) {
        it->second = TxnFate::kAborted;
      }
      continue;
    }
    auto slot_it = plane.slot_of.find(txn);
    if (slot_it == plane.slot_of.end()) continue;
    RetireSlot(plane, slot_it->second);
  }
  ResolveDirtyReads(txn, /*committed=*/false);
}

uint32_t StreamingChecker::EnsureSlot(Plane& plane, TxnId txn) {
  auto it = plane.slot_of.find(txn);
  if (it != plane.slot_of.end()) return it->second;
  if (plane.free_slots.empty()) GrowPlane(plane);
  const uint32_t slot = plane.free_slots.back();
  plane.free_slots.pop_back();
  plane.slots[slot] = SlotInfo{txn, /*live=*/true, /*committed=*/false};
  plane.slot_of.emplace(txn, slot);
  ++plane.occupied;
  stats_.peak_retained = std::max(stats_.peak_retained, plane.occupied);
  return slot;
}

void StreamingChecker::GrowPlane(Plane& plane) {
  const size_t old_cap = plane.slots.size();
  const size_t new_cap = old_cap * 2;
  // Re-insert the live edges in creation order into a doubled graph: the
  // Pearce–Kelly state is rebuilt by the same insertion sequence the live
  // graph saw, so cycle state and recorded witnesses are preserved.
  std::vector<std::pair<EdgeMeta, uint64_t>> edges;
  edges.reserve(plane.edge_meta.size());
  for (const auto& [key, meta] : plane.edge_meta) {
    edges.push_back({meta, key});
  }
  std::sort(edges.begin(), edges.end(),
            [](const auto& a, const auto& b) { return a.first.seq < b.first.seq; });
  ConflictGraph grown = SlotGraph(new_cap);
  for (const auto& [meta, key] : edges) {
    grown.AddEdgeByIndexAt(static_cast<uint32_t>(key >> 32),
                           static_cast<uint32_t>(key & 0xffffffffu),
                           meta.event);
  }
  plane.graph = std::move(grown);
  plane.slots.resize(new_cap);
  for (size_t s = new_cap; s > old_cap; --s) {
    plane.free_slots.push_back(static_cast<uint32_t>(s - 1));
  }
  ++stats_.rebuilds;
}

void StreamingChecker::RetireSlot(Plane& plane, uint32_t slot) {
  for (TxnId pred : plane.graph.Predecessors(slot)) {
    plane.edge_meta.erase(EdgeKey(static_cast<uint32_t>(pred), slot));
  }
  for (TxnId succ : plane.graph.Successors(slot)) {
    plane.edge_meta.erase(EdgeKey(slot, static_cast<uint32_t>(succ)));
  }
  plane.graph.RemoveEdgesOf(slot);
  plane.access.Erase(slot);
  plane.slot_of.erase(plane.slots[slot].txn);
  if (plane.slots[slot].committed) --plane.committed_retained;
  plane.slots[slot] = SlotInfo{};
  plane.free_slots.push_back(slot);
  --plane.occupied;
}

void StreamingChecker::EvictionSweep(Plane& plane) {
  // A committed slot with no in-edges can never lie on a future cycle
  // (its in-degree is frozen); retire such slots, cascading — each
  // retirement can free the slots it pointed at.
  bool progress = true;
  while (plane.committed_retained > options_.window && progress) {
    progress = false;
    for (size_t i = 0; i < plane.committed_slots.size();) {
      const uint32_t slot = plane.committed_slots[i];
      if (!plane.slots[slot].live || !plane.slots[slot].committed) {
        // Stale entry (retired by an earlier cascade pass).
        plane.committed_slots[i] = plane.committed_slots.back();
        plane.committed_slots.pop_back();
        continue;
      }
      if (plane.graph.Predecessors(slot).empty()) {
        RetireSlot(plane, slot);
        ++stats_.evictions;
        progress = true;
        plane.committed_slots[i] = plane.committed_slots.back();
        plane.committed_slots.pop_back();
        if (plane.committed_retained <= options_.window) return;
        continue;
      }
      ++i;
    }
  }
}

bool StreamingChecker::CommittedCycleThrough(const Plane& plane,
                                             uint32_t slot) const {
  // Depth-first over committed slots only, looking for a path back to
  // `slot`. Guarded by has_cycle(), so this runs rarely.
  std::vector<bool> visited(plane.slots.size(), false);
  std::vector<uint32_t> stack;
  stack.push_back(slot);
  while (!stack.empty()) {
    const uint32_t u = stack.back();
    stack.pop_back();
    for (TxnId succ : plane.graph.Successors(u)) {
      const uint32_t v = static_cast<uint32_t>(succ);
      if (v == slot) return true;
      if (!visited[v] && plane.slots[v].live && plane.slots[v].committed) {
        visited[v] = true;
        stack.push_back(v);
      }
    }
  }
  return false;
}

void StreamingChecker::LatchViolation(Plane& plane, size_t event_index) {
  plane.violated = true;
  plane.detected_at = event_index;
  violation_seen_ = true;
  // Snapshot every live edge with its creation rank and originating
  // event; fates of endpoints still active resolve as the log continues.
  plane.frozen.reserve(plane.edge_meta.size());
  for (const auto& [key, meta] : plane.edge_meta) {
    const uint32_t from = static_cast<uint32_t>(key >> 32);
    const uint32_t to = static_cast<uint32_t>(key & 0xffffffffu);
    plane.frozen.push_back(FrozenEdge{plane.slots[from].txn,
                                      plane.slots[to].txn, meta.seq,
                                      meta.event});
    for (uint32_t end : {from, to}) {
      const SlotInfo& info = plane.slots[end];
      auto it = plane.frozen_fates.emplace(info.txn, TxnFate::kIncomplete).first;
      if (info.committed) it->second = TxnFate::kCommitted;
    }
  }
  // Drop the live structures — the verdict is latched; only the frozen
  // snapshot and its fates matter now.
  plane.graph = ConflictGraph();
  plane.access.Clear();
  plane.slot_of.clear();
  plane.slots.clear();
  plane.free_slots.clear();
  plane.edge_meta.clear();
  plane.committed_slots.clear();
  plane.committed_retained = 0;
  plane.occupied = 0;
}

StreamingPlaneReport StreamingChecker::FinishPlane(Plane& plane) {
  StreamingPlaneReport report;
  if (!plane.violated) {
    // Sound and complete: with all fates settled, an acyclic live graph
    // means the committed projection is acyclic (evicted transactions
    // provably lie on no cycle).
    return report;
  }
  report.ok = false;
  report.detected_at = plane.detected_at;
  // Replay the snapshot's committed-committed edges in creation order —
  // exactly the batch plane's insertion sequence — to reproduce its first
  // cycle-closing edge, witness cycle, and event position.
  std::vector<FrozenEdge> edges;
  edges.reserve(plane.frozen.size());
  std::vector<TxnId> nodes;
  for (const FrozenEdge& edge : plane.frozen) {
    if (plane.frozen_fates.at(edge.from) != TxnFate::kCommitted ||
        plane.frozen_fates.at(edge.to) != TxnFate::kCommitted) {
      continue;
    }
    edges.push_back(edge);
    nodes.push_back(edge.from);
    nodes.push_back(edge.to);
  }
  std::sort(edges.begin(), edges.end(),
            [](const FrozenEdge& a, const FrozenEdge& b) {
              return a.seq < b.seq;
            });
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  const auto index_of = [&](TxnId txn) {
    return static_cast<uint32_t>(
        std::lower_bound(nodes.begin(), nodes.end(), txn) - nodes.begin());
  };
  ConflictGraph graph(nodes, CycleMode::kIncremental);
  for (const FrozenEdge& edge : edges) {
    graph.AddEdgeByIndexAt(index_of(edge.from), index_of(edge.to), edge.event);
  }
  NSE_CHECK(graph.has_cycle());
  StreamingViolation violation;
  violation.edge = *graph.cycle_edge();
  violation.event = *graph.cycle_op_pos();
  violation.cycle = *graph.cycle();
  report.violation = std::move(violation);
  return report;
}

void StreamingChecker::TrackDirtyRead(TxnId reader, TxnId writer,
                                      size_t event_index) {
  DirtyPending entry;
  entry.reader = reader;
  entry.writer = writer;
  entry.event = event_index;
  if (active_.count(writer) == 0) {
    // Retired writer: committed (clean) unless recorded as aborted.
    if (aborted_.count(writer) == 0) return;
    entry.writer_aborted = true;
  }
  size_t idx;
  if (!dirty_free_.empty()) {
    idx = dirty_free_.back();
    dirty_free_.pop_back();
    dirty_[idx] = entry;
  } else {
    idx = dirty_.size();
    dirty_.push_back(entry);
  }
  dirty_by_reader_.emplace(reader, idx);
  if (!entry.writer_aborted) dirty_by_writer_.emplace(writer, idx);
}

void StreamingChecker::RemoveDirtyIndex(
    std::unordered_multimap<TxnId, size_t>& index, TxnId key, size_t entry) {
  auto range = index.equal_range(key);
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == entry) {
      index.erase(it);
      return;
    }
  }
}

void StreamingChecker::ResolveDirtyReads(TxnId txn, bool committed) {
  // As a writer: commit clears its entries, abort marks them dirty (and
  // fires the ones whose reader already committed).
  auto writer_range = dirty_by_writer_.equal_range(txn);
  std::vector<size_t> writer_entries;
  for (auto it = writer_range.first; it != writer_range.second; ++it) {
    writer_entries.push_back(it->second);
  }
  dirty_by_writer_.erase(writer_range.first, writer_range.second);
  for (size_t idx : writer_entries) {
    DirtyPending& entry = dirty_[idx];
    if (entry.dead) continue;
    if (committed) {
      entry.dead = true;
      RemoveDirtyIndex(dirty_by_reader_, entry.reader, idx);
      dirty_free_.push_back(idx);
    } else if (entry.reader_committed) {
      aborted_read_events_.push_back(entry.event);
      violation_seen_ = true;
      entry.dead = true;
      dirty_free_.push_back(idx);
    } else {
      entry.writer_aborted = true;  // waits for the reader's fate
    }
  }
  // As a reader: commit fires entries whose writer already aborted (or
  // parks them on the writer); abort drops them.
  auto reader_range = dirty_by_reader_.equal_range(txn);
  std::vector<size_t> reader_entries;
  for (auto it = reader_range.first; it != reader_range.second; ++it) {
    reader_entries.push_back(it->second);
  }
  dirty_by_reader_.erase(reader_range.first, reader_range.second);
  for (size_t idx : reader_entries) {
    DirtyPending& entry = dirty_[idx];
    if (entry.dead) continue;
    if (!committed) {
      entry.dead = true;
      RemoveDirtyIndex(dirty_by_writer_, entry.writer, idx);
      dirty_free_.push_back(idx);
    } else if (entry.writer_aborted) {
      aborted_read_events_.push_back(entry.event);
      violation_seen_ = true;
      entry.dead = true;
      dirty_free_.push_back(idx);
    } else {
      entry.reader_committed = true;  // waits for the writer's fate
    }
  }
}

StreamingReport StreamingChecker::Finish() {
  NSE_CHECK(!finished_);
  finished_ = true;
  StreamingReport report;
  report.full = FinishPlane(planes_[0]);
  for (size_t p = 1; p < planes_.size(); ++p) {
    report.planes.push_back(FinishPlane(planes_[p]));
  }
  std::sort(aborted_read_events_.begin(), aborted_read_events_.end());
  report.aborted_reads = aborted_read_events_;
  size_t retained = 0;
  for (const Plane& plane : planes_) {
    retained = std::max(retained, plane.occupied);
  }
  stats_.retained = retained;
  report.stats = stats_;
  return report;
}

StreamingReport CheckHistoryStreaming(const History& history,
                                      StreamingOptions options) {
  StreamingChecker checker(history.db, std::move(options));
  for (const HistoryEvent& event : history.events) {
    Status fed = checker.Feed(event);
    NSE_CHECK_MSG(fed.ok(), "%s", fed.ToString().c_str());
  }
  return checker.Finish();
}

}  // namespace nse
