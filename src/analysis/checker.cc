#include "analysis/checker.h"

#include "analysis/multiversion.h"
#include "analysis/robustness.h"
#include "analysis/theorems.h"
#include "analysis/view_set.h"
#include "analysis/witness_mapping.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace nse {

const char* VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kSatisfied:
      return "satisfied";
    case Verdict::kViolated:
      return "violated";
    case Verdict::kUnknown:
      return "unknown";
  }
  return "?";
}

std::string CheckResult::ToString() const {
  std::string out = StrCat(checker, ": ", VerdictName(verdict));
  if (!witness.empty()) out += StrCat(" (", witness, ")");
  return out;
}

namespace {

std::string RenderTxns(const std::vector<TxnId>& txns,
                       std::string_view separator) {
  std::vector<std::string> parts;
  parts.reserve(txns.size());
  for (TxnId txn : txns) parts.push_back(StrCat("T", txn));
  return StrJoin(parts, separator);
}

std::string RenderCsrWitness(const CsrReport& csr) {
  if (csr.serializable) {
    return StrCat("serialization order ", RenderTxns(*csr.order, " "));
  }
  if (csr.cycle.has_value()) {
    std::string out =
        StrCat("conflict cycle ", RenderTxns(*csr.cycle, " -> "));
    if (csr.cycle_edge.has_value()) {
      out += StrCat("; closed by T", csr.cycle_edge->first, " -> T",
                    csr.cycle_edge->second);
      if (csr.cycle_op_pos.has_value()) {
        out += StrCat(" at op ", *csr.cycle_op_pos);
      }
    }
    return out;
  }
  return "no serialization order";
}

class CsrChecker : public Checker {
 public:
  std::string_view name() const override { return "csr"; }
  CheckResult Check(AnalysisContext& ctx) const override {
    const CsrReport& csr = ctx.csr_report();
    return CheckResult{
        std::string(name()),
        csr.serializable ? Verdict::kSatisfied : Verdict::kViolated,
        RenderCsrWitness(csr)};
  }
};

class PwsrChecker : public Checker {
 public:
  std::string_view name() const override { return "pwsr"; }
  CheckResult Check(AnalysisContext& ctx) const override {
    if (!ctx.has_ic()) {
      return CheckResult{std::string(name()), Verdict::kUnknown,
                         "no integrity constraint in context"};
    }
    const PwsrReport& pwsr = ctx.pwsr_report();
    if (pwsr.is_pwsr) {
      std::string witness = StrCat(pwsr.per_conjunct.size(),
                                   " conjunct projections serializable");
      if (!pwsr.conjuncts_disjoint) witness += "; conjuncts overlap";
      return CheckResult{std::string(name()), Verdict::kSatisfied,
                         std::move(witness)};
    }
    for (const ConjunctSerializability& entry : pwsr.per_conjunct) {
      if (entry.csr.serializable) continue;
      std::string witness =
          StrCat("S^d of conjunct ", entry.conjunct + 1,
                 " not serializable: ", RenderCsrWitness(entry.csr));
      if (entry.csr.cycle.has_value()) {
        // Locate the cycle's conflicts at full-schedule positions via the
        // projection's source_positions, so the witness points into S, not
        // into S^d.
        std::vector<MappedConflictEdge> mapped =
            MapConjunctCycle(ctx, entry.conjunct, *entry.csr.cycle);
        if (!mapped.empty()) {
          witness += StrCat("; conflicts at ", RenderMappedCycle(mapped));
        }
      }
      return CheckResult{std::string(name()), Verdict::kViolated,
                         std::move(witness)};
    }
    return CheckResult{std::string(name()), Verdict::kViolated,
                       "no serializable projection"};
  }
};

class DelayedReadChecker : public Checker {
 public:
  std::string_view name() const override { return "delayed-read"; }
  CheckResult Check(AnalysisContext& ctx) const override {
    const std::optional<DrViolation>& violation = ctx.dr_violation();
    if (!violation.has_value()) {
      return CheckResult{std::string(name()), Verdict::kSatisfied,
                         "every read is from a completed transaction"};
    }
    return CheckResult{
        std::string(name()), Verdict::kViolated,
        StrCat("position ", violation->reader_pos, " reads from T",
               violation->writer_txn, " (write at position ",
               violation->writer_pos, "), still incomplete at that point")};
  }
};

class ViewSetChecker : public Checker {
 public:
  std::string_view name() const override { return "view-set"; }
  CheckResult Check(AnalysisContext& ctx) const override {
    if (!ctx.has_ic()) {
      return CheckResult{std::string(name()), Verdict::kUnknown,
                         "no integrity constraint in context"};
    }
    std::optional<ViewSetUnsoundness> bad = CheckViewSetSoundness(ctx);
    if (!bad.has_value()) {
      return CheckResult{std::string(name()), Verdict::kSatisfied,
                         "Lemma 2/6 view sets sound at every position"};
    }
    return CheckResult{
        std::string(name()), Verdict::kViolated,
        StrCat("view set of conjunct ", bad->conjunct + 1, " unsound at ",
               "position ", bad->position, ", order index ", bad->order_index,
               bad->variant == ViewSetVariant::kDelayedRead ? " (Lemma 6)"
                                                            : " (Lemma 2)")};
  }
};

class StrongCorrectnessChecker : public Checker {
 public:
  std::string_view name() const override { return "strong-correctness"; }
  CheckResult Check(AnalysisContext& ctx) const override {
    if (!ctx.has_db() || !ctx.has_ic()) {
      return CheckResult{std::string(name()), Verdict::kUnknown,
                         "needs a database and an integrity constraint"};
    }
    const Result<StrongCorrectnessReport>& report = ctx.strong_correctness();
    if (!report.ok()) {
      return CheckResult{std::string(name()), Verdict::kUnknown,
                         report.status().ToString()};
    }
    if (report->strongly_correct) {
      return CheckResult{
          std::string(name()), Verdict::kSatisfied,
          StrCat("Definition 1 holds over ", report->initial_states_checked,
                 " initial state(s)")};
    }
    const ScViolation& violation = report->violations.front();
    return CheckResult{std::string(name()), Verdict::kViolated,
                       violation.ToString(ctx.db())};
  }
};

class TheoremChecker : public Checker {
 public:
  std::string_view name() const override { return "theorems"; }
  CheckResult Check(AnalysisContext& ctx) const override {
    if (!ctx.has_ic()) {
      return CheckResult{std::string(name()), Verdict::kUnknown,
                         "no integrity constraint in context"};
    }
    TheoremCertificate cert = Certify(ctx);
    if (cert.guaranteed_strongly_correct()) {
      std::vector<std::string> applied;
      if (cert.theorem1_applies) applied.push_back("1");
      if (cert.theorem2_applies) applied.push_back("2");
      if (cert.theorem3_applies) applied.push_back("3");
      return CheckResult{
          std::string(name()), Verdict::kSatisfied,
          StrCat("Theorem ", StrJoin(applied, "/"),
                 " certifies strong correctness")};
    }
    // The theorems are sufficient, not necessary: failing all hypotheses
    // leaves strong correctness open, so the verdict is unknown.
    return CheckResult{
        std::string(name()), Verdict::kUnknown,
        StrCat("no theorem applies (PWSR: ", cert.pwsr.is_pwsr ? "yes" : "no",
               ", DR: ", cert.delayed_read ? "yes" : "no",
               ", DAG acyclic: ", cert.dag_acyclic ? "yes" : "no", ")")};
  }
};

/// Maps a MultiversionReport onto the checker verdict vocabulary: an
/// undecided search (node cap) is kUnknown, not a violation.
CheckResult FromMultiversionReport(std::string_view name,
                                   MultiversionReport report) {
  if (!report.decided) {
    return CheckResult{std::string(name), Verdict::kUnknown,
                       std::move(report.detail)};
  }
  return CheckResult{std::string(name),
                     report.satisfied ? Verdict::kSatisfied
                                      : Verdict::kViolated,
                     std::move(report.detail)};
}

class ViewSerializabilityChecker : public Checker {
 public:
  std::string_view name() const override { return "view-serializability"; }
  CheckResult Check(AnalysisContext& ctx) const override {
    // Conflict serializability implies view serializability, and the CSR
    // report is memoized — take it before any serial-order search.
    if (ctx.csr_report().serializable) {
      return CheckResult{std::string(name()), Verdict::kSatisfied,
                         StrCat("conflict-serializable (order ",
                                RenderTxns(*ctx.csr_report().order, " "),
                                ")")};
    }
    return FromMultiversionReport(name(),
                                  CheckViewSerializability(ctx.schedule()));
  }
};

class MvsrChecker : public Checker {
 public:
  std::string_view name() const override { return "mvsr"; }
  CheckResult Check(AnalysisContext& ctx) const override {
    const VersionAnnotations* versions = ctx.options().versions;
    // Without annotations the trace is monoversion (reads resolve
    // positionally) — still a well-posed MVSR question, since monoversion
    // schedules are the 1-version special case.
    VersionAnnotations none;
    MultiversionReport report =
        CheckMvsr(ctx.schedule(), versions != nullptr ? *versions : none);
    return FromMultiversionReport(name(), std::move(report));
  }
};

class MvRobustnessChecker : public Checker {
 public:
  std::string_view name() const override { return "mv-robustness"; }
  CheckResult Check(AnalysisContext& ctx) const override {
    RobustnessReport report = CheckSiRobustness(ctx.schedule());
    return CheckResult{std::string(name()),
                       report.robust ? Verdict::kSatisfied
                                     : Verdict::kViolated,
                       RobustnessWitness(report)};
  }
};

}  // namespace

const CheckerRegistry& CheckerRegistry::BuiltIn() {
  static const CheckerRegistry* registry = [] {
    auto* r = new CheckerRegistry();
    NSE_CHECK(r->Register(std::make_unique<CsrChecker>()).ok());
    NSE_CHECK(r->Register(std::make_unique<PwsrChecker>()).ok());
    NSE_CHECK(r->Register(std::make_unique<DelayedReadChecker>()).ok());
    NSE_CHECK(r->Register(std::make_unique<ViewSetChecker>()).ok());
    NSE_CHECK(r->Register(std::make_unique<StrongCorrectnessChecker>()).ok());
    NSE_CHECK(r->Register(std::make_unique<TheoremChecker>()).ok());
    NSE_CHECK(
        r->Register(std::make_unique<ViewSerializabilityChecker>()).ok());
    NSE_CHECK(r->Register(std::make_unique<MvsrChecker>()).ok());
    NSE_CHECK(r->Register(std::make_unique<MvRobustnessChecker>()).ok());
    return r;
  }();
  return *registry;
}

Status CheckerRegistry::Register(std::unique_ptr<Checker> checker) {
  if (checker == nullptr) {
    return Status::InvalidArgument("checker must not be null");
  }
  if (Find(checker->name()) != nullptr) {
    return Status::InvalidArgument(
        StrCat("checker '", checker->name(), "' already registered"));
  }
  checkers_.push_back(std::move(checker));
  return Status::Ok();
}

const Checker* CheckerRegistry::Find(std::string_view name) const {
  for (const std::unique_ptr<Checker>& checker : checkers_) {
    if (checker->name() == name) return checker.get();
  }
  return nullptr;
}

std::vector<std::string_view> CheckerRegistry::Names() const {
  std::vector<std::string_view> names;
  names.reserve(checkers_.size());
  for (const std::unique_ptr<Checker>& checker : checkers_) {
    names.push_back(checker->name());
  }
  return names;
}

std::vector<CheckResult> CheckerRegistry::RunAll(AnalysisContext& ctx) const {
  std::vector<CheckResult> results;
  results.reserve(checkers_.size());
  for (const std::unique_ptr<Checker>& checker : checkers_) {
    results.push_back(checker->Check(ctx));
  }
  return results;
}

Result<CheckResult> CheckerRegistry::Run(std::string_view name,
                                         AnalysisContext& ctx) const {
  const Checker* checker = Find(name);
  if (checker == nullptr) {
    return Status::NotFound(StrCat("no checker named '", name, "'"));
  }
  return checker->Check(ctx);
}

}  // namespace nse
