// Theorem certifier: given a schedule (and, when available, the programs
// that produced it), decides which of the paper's sufficient conditions for
// strong correctness apply:
//
//   Theorem 1 — S is PWSR and every program has fixed structure.
//   Theorem 2 — S is PWSR and delayed-read.
//   Theorem 3 — S is PWSR and DAG(S, IC) is acyclic.
//
// All three additionally require the conjunct data sets to be disjoint
// (Example 5 shows none survives overlap).

#ifndef NSE_ANALYSIS_THEOREMS_H_
#define NSE_ANALYSIS_THEOREMS_H_

#include <optional>
#include <string>
#include <vector>

#include "analysis/access_graph.h"
#include "analysis/delayed_read.h"
#include "analysis/fixed_structure.h"
#include "analysis/pwsr.h"
#include "constraints/integrity_constraint.h"
#include "txn/program.h"
#include "txn/schedule.h"

namespace nse {

class AnalysisContext;

/// Which theorems apply to a schedule.
struct TheoremCertificate {
  PwsrReport pwsr;              ///< Definition 2 verdict (with per-conjunct detail)
  bool conjuncts_disjoint = true;
  /// nullopt when the generating programs were not supplied.
  std::optional<bool> all_programs_fixed_structure;
  bool delayed_read = false;
  bool dag_acyclic = false;

  bool theorem1_applies = false;
  bool theorem2_applies = false;
  bool theorem3_applies = false;

  /// True iff at least one theorem certifies strong correctness.
  bool guaranteed_strongly_correct() const {
    return theorem1_applies || theorem2_applies || theorem3_applies;
  }

  /// Renders a multi-line summary.
  std::string Summary() const;
};

/// Certifies `schedule` against `ic`. When `programs` is non-null, the
/// fixed-structure hypothesis of Theorem 1 is checked with the exact
/// structural analysis.
TheoremCertificate Certify(
    const Database& db, const IntegrityConstraint& ic, const Schedule& schedule,
    const std::vector<const TransactionProgram*>* programs = nullptr);

/// Context-driven certification: reuses the context's memoized PWSR report,
/// reads-from relation, and data access graph, so certifying after other
/// checks on the same context costs only the theorem combination. Programs
/// are taken from `programs` when non-null, else from ctx.options().
TheoremCertificate Certify(
    AnalysisContext& ctx,
    const std::vector<const TransactionProgram*>* programs = nullptr);

}  // namespace nse

#endif  // NSE_ANALYSIS_THEOREMS_H_
