#include "analysis/witness_mapping.h"

#include "analysis/analysis_context.h"
#include "common/string_util.h"

namespace nse {

namespace {

/// Earliest conflicting operation pair (p, q), p < q, with ops[p].txn ==
/// `from`, ops[q].txn == `to`, same item, at least one write — positions in
/// `projected`. Scans later ops outermost so the reported pair is the first
/// completion of a conflict, matching how the conflict edge arose.
std::optional<std::pair<size_t, size_t>> FindConflictPair(
    const Schedule& projected, TxnId from, TxnId to) {
  const OpSequence& ops = projected.ops();
  for (size_t q = 0; q < ops.size(); ++q) {
    if (ops[q].txn != to) continue;
    for (size_t p = 0; p < q; ++p) {
      if (ops[p].txn != from) continue;
      if (ops[p].entity != ops[q].entity) continue;
      if (ops[p].is_write() || ops[q].is_write()) return std::make_pair(p, q);
    }
  }
  return std::nullopt;
}

}  // namespace

std::vector<MappedConflictEdge> MapConjunctCycle(
    AnalysisContext& ctx, size_t e, const std::vector<TxnId>& cycle) {
  std::vector<MappedConflictEdge> out;
  if (cycle.size() < 2) return out;
  const ScheduleProjection& projection = ctx.projection(e);
  // FindCycle emits first == last; iterate consecutive pairs either way.
  for (size_t i = 0; i + 1 < cycle.size(); ++i) {
    TxnId from = cycle[i];
    TxnId to = cycle[i + 1];
    std::optional<std::pair<size_t, size_t>> pair =
        FindConflictPair(projection.schedule, from, to);
    if (!pair.has_value()) continue;
    out.push_back(MappedConflictEdge{
        from, to, projection.source_positions[pair->first],
        projection.source_positions[pair->second]});
  }
  return out;
}

std::optional<DrViolation> ProjectedDrViolation(AnalysisContext& ctx,
                                                size_t e) {
  const ScheduleProjection& projection = ctx.projection(e);
  std::optional<DrViolation> violation =
      FindDrViolation(projection.schedule);
  if (!violation.has_value()) return std::nullopt;
  return DrViolation{projection.source_positions[violation->reader_pos],
                     projection.source_positions[violation->writer_pos],
                     violation->writer_txn};
}

std::string RenderMappedCycle(const std::vector<MappedConflictEdge>& edges) {
  std::vector<std::string> parts;
  parts.reserve(edges.size());
  for (const MappedConflictEdge& edge : edges) {
    parts.push_back(StrCat("T", edge.from, " -> T", edge.to, " (ops ",
                           edge.from_pos, " -> ", edge.to_pos, ")"));
  }
  return StrJoin(parts, ", ");
}

}  // namespace nse
