// AnalysisContext: one memoizing home for every derived artifact of a
// schedule the paper's criteria share — the conflict graph, the reads-from
// relation, per-conjunct projections S^{d_e} with their projected conflict
// graphs, the data access graph DAG(S, IC), the consistency solver, and the
// criterion reports themselves (CSR, PWSR, DR, strict, strong correctness).
//
// Every artifact is built lazily on first access and cached for the
// lifetime of the context, so a full sweep of checkers over one execution
// pays for each artifact once instead of once per checker. The violation
// search engine builds exactly one context per sampled execution; callers
// that need a single criterion can keep using the free functions, which
// delegate here through a transient context.
//
// A context borrows (or owns) its schedule and borrows the database and
// integrity constraint; it must not outlive them. Contexts are
// thread-compatible, not thread-safe.

#ifndef NSE_ANALYSIS_ANALYSIS_CONTEXT_H_
#define NSE_ANALYSIS_ANALYSIS_CONTEXT_H_

#include <optional>
#include <vector>

#include "analysis/access_graph.h"
#include "analysis/conflict_graph.h"
#include "analysis/delayed_read.h"
#include "analysis/pwsr.h"
#include "analysis/reads_from.h"
#include "analysis/serializability.h"
#include "analysis/strong_correctness.h"
#include "common/arena.h"
#include "common/status.h"
#include "constraints/integrity_constraint.h"
#include "constraints/solver.h"
#include "txn/schedule.h"

namespace nse {

class TransactionProgram;
struct VersionAnnotations;

/// Knobs for the context-driven checkers.
struct AnalysisOptions {
  /// Initial-state enumeration cap for strong correctness (Definition 1
  /// quantifies over all consistent initial states; this bounds the sweep).
  uint64_t initial_state_limit = 64;
  /// The programs that produced the schedule, when known: enables the
  /// fixed-structure hypothesis of Theorem 1. Not owned.
  const std::vector<const TransactionProgram*>* programs = nullptr;
  /// Version annotations of a multiversion trace (analysis/multiversion.h):
  /// per read position, the transaction whose write produced the observed
  /// version. Enables the exact reads-from for the mvsr checker; when null,
  /// reads resolve positionally (monoversion semantics). Not owned.
  const VersionAnnotations* versions = nullptr;
  /// When set, the context's ConsistencyChecker memoizes its search trees
  /// here. Not owned; shared across contexts (and threads) by the violation
  /// search so overlapping solver queries are answered once.
  SolverCache* solver_cache = nullptr;
};

/// How many times each artifact was actually built (not served from cache).
/// A second access to any artifact must leave its counter unchanged — the
/// memoization contract, pinned by tests.
struct AnalysisCacheStats {
  size_t conflict_graph_builds = 0;
  size_t reads_from_builds = 0;
  size_t projection_builds = 0;        // counts conjunct projections built
  size_t projection_graph_builds = 0;  // counts projected graphs built
  size_t access_graph_builds = 0;
  size_t solver_builds = 0;
  size_t csr_builds = 0;
  size_t pwsr_builds = 0;
  size_t dr_builds = 0;
  size_t strict_builds = 0;
  size_t strong_correctness_builds = 0;
};

/// Memoized analysis artifacts of one schedule (against one IC).
class AnalysisContext {
 public:
  /// Full context: every checker is available.
  AnalysisContext(const Database& db, const IntegrityConstraint& ic,
                  const Schedule& schedule, AnalysisOptions options = {});

  /// Owning variant: the context keeps the schedule alive itself.
  AnalysisContext(const Database& db, const IntegrityConstraint& ic,
                  Schedule&& schedule_owned, AnalysisOptions options = {});

  /// IC-only context (no solver): structural criteria plus PWSR/DAG.
  AnalysisContext(const IntegrityConstraint& ic, const Schedule& schedule,
                  AnalysisOptions options = {});

  /// Schedule-only context: CSR / DR / strict only.
  explicit AnalysisContext(const Schedule& schedule,
                           AnalysisOptions options = {});

  AnalysisContext(const AnalysisContext&) = delete;
  AnalysisContext& operator=(const AnalysisContext&) = delete;

  /// True when a database catalog was supplied (solver + rendering).
  bool has_db() const { return db_ != nullptr; }
  /// True when an integrity constraint was supplied.
  bool has_ic() const { return ic_ != nullptr; }

  /// The catalog (aborts when absent — guard with has_db()).
  const Database& db() const;
  /// The integrity constraint (aborts when absent — guard with has_ic()).
  const IntegrityConstraint& ic() const;
  /// The schedule under analysis.
  const Schedule& schedule() const { return *schedule_; }
  const AnalysisOptions& options() const { return options_; }

  // ---- memoized artifacts ---------------------------------------------

  /// Conflict graph of the full schedule.
  const ConflictGraph& conflict_graph();

  /// The reads-from relation of §3.2.
  const std::vector<ReadsFromEdge>& reads_from();

  /// Projection handle for S^{d_e} of conjunct `e` (requires an IC).
  const ScheduleProjection& projection(size_t e);

  /// Conflict graph of S^{d_e} (requires an IC). When the conjunct data
  /// sets are disjoint, all conjunct graphs are derived together in one
  /// sweep of the schedule — no projected schedules are materialized.
  const ConflictGraph& projection_graph(size_t e);

  /// The data access graph DAG(S, IC) (requires an IC).
  const DataAccessGraph& access_graph();

  /// The consistency oracle for (db, ic) (requires both).
  const ConsistencyChecker& consistency_checker();

  // ---- memoized criterion reports -------------------------------------

  /// CSR report of the full schedule (footnote 2 baseline).
  const CsrReport& csr_report();

  /// PWSR report, Definition 2 (requires an IC).
  const PwsrReport& pwsr_report();

  /// First delayed-read violation, or nullopt when the schedule is DR.
  const std::optional<DrViolation>& dr_violation();
  /// True iff the schedule is delayed-read (Definition 5).
  bool delayed_read() { return !dr_violation().has_value(); }

  /// First strictness violation, or nullopt when strict.
  const std::optional<DrViolation>& strict_violation();
  /// True iff the schedule is strict.
  bool strict() { return !strict_violation().has_value(); }

  /// Strong correctness (Definition 1) quantified over up to
  /// options().initial_state_limit consistent initial states (requires db
  /// and IC).
  const Result<StrongCorrectnessReport>& strong_correctness();

  /// Build counters — see AnalysisCacheStats.
  const AnalysisCacheStats& cache_stats() const { return stats_; }

 private:
  AnalysisContext(const Database* db, const IntegrityConstraint* ic,
                  const Schedule* schedule, AnalysisOptions options);

  /// Fills whichever of {full conflict graph, per-conjunct projection
  /// graphs, reads-from relation} is still unbuilt, in a single pass over
  /// the schedule: conflicts are same-item, so every graph is a regrouping
  /// of the same per-item access histories. The projected-graph part is
  /// valid only for disjoint conjuncts (each item feeds exactly one
  /// conjunct's graph); callers gate on ic().disjoint(). The pass runs the
  /// dense bitset sweep (one plane per graph) with its scratch in the
  /// per-schedule arena.
  void BuildCoreGraphs();

  const Database* db_ = nullptr;
  const IntegrityConstraint* ic_ = nullptr;
  std::optional<Schedule> owned_schedule_;
  const Schedule* schedule_ = nullptr;
  AnalysisOptions options_;

  std::optional<ConflictGraph> conflict_graph_;
  std::optional<std::vector<ReadsFromEdge>> reads_from_;
  std::vector<std::optional<ScheduleProjection>> projections_;
  std::vector<std::optional<ConflictGraph>> projection_graphs_;
  std::optional<DataAccessGraph> access_graph_;
  std::optional<ConsistencyChecker> solver_;
  std::optional<CsrReport> csr_;
  std::optional<PwsrReport> pwsr_;
  std::optional<std::optional<DrViolation>> dr_violation_;
  std::optional<std::optional<DrViolation>> strict_violation_;
  std::optional<Result<StrongCorrectnessReport>> strong_;

  /// Scratch for the fused builds: edge lists, membership flags and item
  /// states bump-allocate here instead of issuing per-container mallocs.
  MonotonicArena arena_;

  AnalysisCacheStats stats_;
};

}  // namespace nse

#endif  // NSE_ANALYSIS_ANALYSIS_CONTEXT_H_
