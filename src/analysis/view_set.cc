#include "analysis/view_set.h"

#include "analysis/analysis_context.h"

namespace nse {

std::vector<DataSet> ComputeViewSets(const Schedule& schedule,
                                     const DataSet& d,
                                     const std::vector<TxnId>& order,
                                     size_t p, ViewSetVariant variant) {
  std::vector<DataSet> out;
  out.reserve(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    if (i == 0) {
      out.push_back(d);
      continue;
    }
    TxnId prev = order[i - 1];
    // WS of the previous transaction's d-projection.
    OpSequence prev_ops_d =
        ProjectOps(OpsOfTxn(schedule.ops(), prev), d);
    DataSet prev_writes_d = WriteSetOf(prev_ops_d);
    switch (variant) {
      case ViewSetVariant::kGeneral: {
        // WS(after(T^d_{i-1}, p, S)): d-writes of prev occurring after p.
        DataSet written_after =
            WriteSetOf(ProjectOps(schedule.AfterOfTxn(prev, p), d));
        out.push_back(DataSet::Minus(out.back(), written_after));
        break;
      }
      case ViewSetVariant::kDelayedRead: {
        bool completed = schedule.CompletedBy(prev, p);
        if (!completed) {
          out.push_back(DataSet::Minus(out.back(), prev_writes_d));
        } else {
          out.push_back(DataSet::Union(out.back(), prev_writes_d));
        }
        break;
      }
    }
  }
  return out;
}

std::optional<size_t> FindViewSetUnsoundness(const Schedule& schedule,
                                             const DataSet& d,
                                             const std::vector<TxnId>& order,
                                             size_t p,
                                             ViewSetVariant variant) {
  std::vector<DataSet> view_sets =
      ComputeViewSets(schedule, d, order, p, variant);
  for (size_t i = 0; i < order.size(); ++i) {
    // RS(before(T^d_i, p, S)): items of d read by T_i at or before p.
    DataSet read_before =
        ReadSetOf(ProjectOps(schedule.BeforeOfTxn(order[i], p), d));
    if (!read_before.IsSubsetOf(view_sets[i])) return i;
  }
  return std::nullopt;
}

std::optional<ViewSetUnsoundness> CheckViewSetSoundness(AnalysisContext& ctx) {
  const Schedule& schedule = ctx.schedule();
  const PwsrReport& pwsr = ctx.pwsr_report();
  bool dr = ctx.delayed_read();
  for (size_t e = 0; e < pwsr.per_conjunct.size(); ++e) {
    const std::optional<std::vector<TxnId>>& order = pwsr.OrderFor(e);
    if (!order.has_value()) continue;  // lemmas need a serialization order
    const DataSet& d = ctx.ic().data_set(e);
    for (size_t p = 0; p < schedule.size(); ++p) {
      auto bad = FindViewSetUnsoundness(schedule, d, *order, p,
                                        ViewSetVariant::kGeneral);
      if (bad.has_value()) {
        return ViewSetUnsoundness{e, p, *bad, ViewSetVariant::kGeneral};
      }
      if (dr) {
        bad = FindViewSetUnsoundness(schedule, d, *order, p,
                                     ViewSetVariant::kDelayedRead);
        if (bad.has_value()) {
          return ViewSetUnsoundness{e, p, *bad, ViewSetVariant::kDelayedRead};
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace nse
