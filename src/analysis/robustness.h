// Static robustness of a workload against snapshot isolation, after Fekete
// et al.'s dangerous-structure analysis and the Vandevoort–Ketsman–Neven
// (VKN) coincidence results. The object under test is the *workload* — the
// transactions' read and write sets — not one interleaving: operation order
// is unknown ahead of time, so every conflicting pair contributes its
// dependency edges in both directions.
//
// The static dependency graph has an edge T_i -> T_j (i != j) for each
// shared item with at least one writer; an edge is *vulnerable* (rw) when
// T_i reads an item T_j writes. SI admits an anomaly only through a pivot:
// a transaction with an incoming rw edge and an outgoing rw edge that lie
// on a common cycle. No such structure means every SI execution of the
// workload is (multiversion view) serializable — and by the VKN coincidence
// view-robustness and conflict-robustness agree on this class, so the
// certificate is checkable structurally. The test is sound for certifying
// robustness; a dangerous structure is a warning, not a counterexample (the
// static graph over-approximates).

#ifndef NSE_ANALYSIS_ROBUSTNESS_H_
#define NSE_ANALYSIS_ROBUSTNESS_H_

#include <cstddef>
#include <optional>
#include <string>

#include "txn/schedule.h"

namespace nse {

/// Outcome of the static SI-robustness test.
struct RobustnessReport {
  /// No dangerous structure: every SI execution of the workload is
  /// serializable (view- and conflict-robust coincide here).
  bool robust = false;
  /// When not robust: the pivot T_j and the vulnerable edges around it —
  /// in_rw_from --rw--> pivot --rw--> out_rw_to, with a dependency path
  /// from out_rw_to back to in_rw_from closing the cycle.
  std::optional<TxnId> pivot;
  std::optional<TxnId> in_rw_from;
  std::optional<TxnId> out_rw_to;
  /// Vulnerable (rw) edges in the static dependency graph.
  size_t vulnerable_edges = 0;
};

/// Runs the dangerous-structure test over the transactions of `schedule`
/// (their read/write sets; order within the schedule is ignored).
RobustnessReport CheckSiRobustness(const Schedule& schedule);

/// Renders "robust (...)" / "pivot T2 ..." for witnesses.
std::string RobustnessWitness(const RobustnessReport& report);

}  // namespace nse

#endif  // NSE_ANALYSIS_ROBUSTNESS_H_
