// Data access graph DAG(S, IC) of §3.3: one node per conjunct; a directed
// edge (C_i, C_j), i ≠ j, when some transaction of S reads a data item in
// d_i and writes a data item in d_j. Theorem 3: a PWSR schedule with an
// acyclic data access graph is strongly correct.

#ifndef NSE_ANALYSIS_ACCESS_GRAPH_H_
#define NSE_ANALYSIS_ACCESS_GRAPH_H_

#include <optional>
#include <string>
#include <vector>

#include "constraints/integrity_constraint.h"
#include "txn/schedule.h"

namespace nse {

/// The data access graph over conjunct indices 0..l-1.
class DataAccessGraph {
 public:
  /// Builds DAG(S, IC).
  static DataAccessGraph Build(const Schedule& schedule,
                               const IntegrityConstraint& ic);

  /// Number of conjuncts (nodes).
  size_t num_nodes() const { return adj_.size(); }

  /// True iff the edge i → j is present.
  bool HasEdge(size_t i, size_t j) const { return adj_[i][j]; }

  /// All edges as (from, to) conjunct-index pairs.
  std::vector<std::pair<size_t, size_t>> Edges() const;

  /// True iff the graph has no directed cycle.
  bool IsAcyclic() const;

  /// A topological order of conjunct indices, or nullopt if cyclic. With
  /// this ordering, every transaction that writes in d_k reads only from
  /// d_1, ..., d_k (the induction order of Theorem 3's proof).
  std::optional<std::vector<size_t>> TopologicalOrder() const;

  /// Renders "C1 -> C2, C2 -> C3" (1-based, as in the paper).
  std::string ToString() const;

 private:
  std::vector<std::vector<bool>> adj_;
};

}  // namespace nse

#endif  // NSE_ANALYSIS_ACCESS_GRAPH_H_
