#include "analysis/analysis_context.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace nse {

AnalysisContext::AnalysisContext(const Database* db,
                                 const IntegrityConstraint* ic,
                                 const Schedule* schedule,
                                 AnalysisOptions options)
    : db_(db), ic_(ic), schedule_(schedule), options_(options) {
  if (ic_ != nullptr) {
    projections_.resize(ic_->num_conjuncts());
    projection_graphs_.resize(ic_->num_conjuncts());
  }
}

AnalysisContext::AnalysisContext(const Database& db,
                                 const IntegrityConstraint& ic,
                                 const Schedule& schedule,
                                 AnalysisOptions options)
    : AnalysisContext(&db, &ic, &schedule, options) {}

AnalysisContext::AnalysisContext(const Database& db,
                                 const IntegrityConstraint& ic,
                                 Schedule&& schedule_owned,
                                 AnalysisOptions options)
    : AnalysisContext(&db, &ic, nullptr, options) {
  owned_schedule_ = std::move(schedule_owned);
  schedule_ = &*owned_schedule_;
}

AnalysisContext::AnalysisContext(const IntegrityConstraint& ic,
                                 const Schedule& schedule,
                                 AnalysisOptions options)
    : AnalysisContext(nullptr, &ic, &schedule, options) {}

AnalysisContext::AnalysisContext(const Schedule& schedule,
                                 AnalysisOptions options)
    : AnalysisContext(nullptr, nullptr, &schedule, options) {}

const Database& AnalysisContext::db() const {
  NSE_CHECK_MSG(db_ != nullptr, "analysis context has no database");
  return *db_;
}

const IntegrityConstraint& AnalysisContext::ic() const {
  NSE_CHECK_MSG(ic_ != nullptr, "analysis context has no integrity constraint");
  return *ic_;
}

const ConflictGraph& AnalysisContext::conflict_graph() {
  if (!conflict_graph_.has_value()) {
    if (ic_ != nullptr && ic_->disjoint()) {
      BuildCoreGraphs();
    } else {
      conflict_graph_ =
          ConflictGraph::Build(*schedule_, CycleMode::kIncremental);
      ++stats_.conflict_graph_builds;
    }
  }
  return *conflict_graph_;
}

const std::vector<ReadsFromEdge>& AnalysisContext::reads_from() {
  if (!reads_from_.has_value()) {
    if (ic_ != nullptr && ic_->disjoint()) {
      BuildCoreGraphs();
    } else {
      reads_from_ = ReadsFromPairs(*schedule_);
      ++stats_.reads_from_builds;
    }
  }
  return *reads_from_;
}

const ScheduleProjection& AnalysisContext::projection(size_t e) {
  NSE_CHECK_MSG(e < projections_.size(), "conjunct index %zu out of range %zu",
                e, projections_.size());
  if (!projections_[e].has_value()) {
    projections_[e] = schedule_->ProjectWithPositions(ic().data_set(e));
    ++stats_.projection_builds;
  }
  return *projections_[e];
}

const ConflictGraph& AnalysisContext::projection_graph(size_t e) {
  NSE_CHECK_MSG(e < projection_graphs_.size(),
                "conjunct index %zu out of range %zu", e,
                projection_graphs_.size());
  if (!projection_graphs_[e].has_value()) {
    if (ic().disjoint()) {
      BuildCoreGraphs();
    } else {
      projection_graphs_[e] =
          ConflictGraph::Build(projection(e).schedule, CycleMode::kIncremental);
      ++stats_.projection_graph_builds;
    }
  }
  return *projection_graphs_[e];
}

void AnalysisContext::BuildCoreGraphs() {
  // Conflicts are same-item, so the full conflict graph and every projected
  // conflict graph are regroupings of the same per-item access histories,
  // and the reads-from relation falls out of the same last-write tracking.
  // With disjoint conjuncts each item feeds exactly one conjunct, so one
  // sweep over the schedule derives all of them without materializing a
  // single projected schedule.
  size_t num_conjuncts = projection_graphs_.size();
  bool need_full = !conflict_graph_.has_value();
  bool need_rf = !reads_from_.has_value();
  bool need_proj = false;
  for (const auto& graph : projection_graphs_) {
    if (!graph.has_value()) need_proj = true;
  }
  if (!need_full && !need_rf && !need_proj) return;

  // One dense bitset sweep (ConflictBitSweep) in txn-index space: plane 0
  // dedupes the full graph's edges, plane 1+e conjunct e's, so each
  // distinct edge is emitted exactly once per consumer — the n×n seen
  // matrices of the earlier implementation are gone. The per-op bookkeeping
  // tracks last writes (reads-from) and per-conjunct membership alongside,
  // and all scratch bump-allocates from the per-schedule arena.
  const std::vector<TxnId>& txn_ids = schedule_->txn_ids();
  const uint32_t n = static_cast<uint32_t>(txn_ids.size());
  const OpSequence& ops = schedule_->ops();
  arena_.Reset();

  // Deduped edges in first-occurrence (schedule) order, each with the
  // position of the operation that created it — inserting them in this
  // order into incremental graphs makes the recorded first cycle the
  // earliest one the schedule closes.
  struct EdgeAt {
    uint32_t from;
    uint32_t to;
    size_t pos;
  };
  ArenaVector<EdgeAt> full_edges{ArenaAllocator<EdgeAt>(&arena_)};
  std::vector<ArenaVector<EdgeAt>> proj_edges(
      num_conjuncts, ArenaVector<EdgeAt>{ArenaAllocator<EdgeAt>(&arena_)});
  ArenaVector<char> proj_member(static_cast<size_t>(num_conjuncts) * n, 0,
                                ArenaAllocator<char>(&arena_));
  std::vector<ReadsFromEdge> rf;  // kept artifact, not scratch
  struct ItemState {
    int conjunct = -2;  // -2 = not looked up yet, -1 = unconstrained
    std::optional<size_t> last_write;
  };
  ArenaVector<ItemState> items{ArenaAllocator<ItemState>(&arena_)};
  // Conjunct of the item an operation touches, memoized per item; -1 when
  // unconstrained.
  auto conjunct_of = [&](const Operation& op) {
    if (op.entity >= items.size()) items.resize(op.entity + 1);
    ItemState& item = items[op.entity];
    if (item.conjunct == -2) {
      std::optional<size_t> e = ic().ConjunctOf(op.entity);
      item.conjunct = e.has_value() ? static_cast<int>(*e) : -1;
    }
    return item.conjunct;
  };
  internal::ConflictBitSweep sweep(n, 1 + num_conjuncts);
  for (size_t pos = 0; pos < ops.size(); ++pos) {
    const Operation& op = ops[pos];
    const uint32_t idx = static_cast<uint32_t>(
        std::lower_bound(txn_ids.begin(), txn_ids.end(), op.txn) -
        txn_ids.begin());
    const int e = conjunct_of(op);
    if (need_proj && e >= 0) {
      proj_member[static_cast<size_t>(e) * n + idx] = 1;
    }
    ItemState& item = items[op.entity];
    if (op.is_write()) {
      item.last_write = pos;
    } else if (need_rf && item.last_write.has_value()) {
      rf.push_back(ReadsFromEdge{pos, *item.last_write});
    }
    const int extra_plane = (need_proj && e >= 0) ? 1 + e : -1;
    sweep.Access(idx, op.is_write(), op.entity, extra_plane,
                 [&](size_t plane, uint32_t from) {
                   if (plane == 0) {
                     if (need_full) full_edges.push_back({from, idx, pos});
                   } else {
                     proj_edges[plane - 1].push_back({from, idx, pos});
                   }
                 });
  }
  if (need_full) {
    ConflictGraph graph(txn_ids, CycleMode::kIncremental);
    for (const EdgeAt& edge : full_edges) {
      graph.AddEdgeByIndexAt(edge.from, edge.to, edge.pos);
    }
    conflict_graph_ = std::move(graph);
    ++stats_.conflict_graph_builds;
  }
  if (need_rf) {
    reads_from_ = std::move(rf);
    ++stats_.reads_from_builds;
  }
  for (size_t e = 0; e < num_conjuncts; ++e) {
    if (projection_graphs_[e].has_value()) continue;
    // Local node list of S^{d_e} plus the full-index → local-index map.
    std::vector<TxnId> nodes;
    ArenaVector<uint32_t> local(n, 0, ArenaAllocator<uint32_t>(&arena_));
    for (uint32_t idx = 0; idx < n; ++idx) {
      if (proj_member[e * n + idx]) {
        local[idx] = static_cast<uint32_t>(nodes.size());
        nodes.push_back(txn_ids[idx]);
      }
    }
    ConflictGraph graph(std::move(nodes), CycleMode::kIncremental);
    for (const EdgeAt& edge : proj_edges[e]) {
      // The positions are full-schedule positions (the sweep runs over S),
      // so a projected graph's cycle_op_pos needs no mapping here.
      graph.AddEdgeByIndexAt(local[edge.from], local[edge.to], edge.pos);
    }
    projection_graphs_[e] = std::move(graph);
    ++stats_.projection_graph_builds;
  }
}

const DataAccessGraph& AnalysisContext::access_graph() {
  if (!access_graph_.has_value()) {
    access_graph_ = DataAccessGraph::Build(*schedule_, ic());
    ++stats_.access_graph_builds;
  }
  return *access_graph_;
}

const ConsistencyChecker& AnalysisContext::consistency_checker() {
  if (!solver_.has_value()) {
    solver_.emplace(db(), ic(), options_.solver_cache);
    ++stats_.solver_builds;
  }
  return *solver_;
}

const CsrReport& AnalysisContext::csr_report() {
  if (!csr_.has_value()) {
    csr_ = CsrReportFromGraph(conflict_graph());
    ++stats_.csr_builds;
  }
  return *csr_;
}

const PwsrReport& AnalysisContext::pwsr_report() {
  if (!pwsr_.has_value()) {
    PwsrReport report;
    report.conjuncts_disjoint = ic().disjoint();
    report.is_pwsr = true;
    for (size_t e = 0; e < ic().num_conjuncts(); ++e) {
      ConjunctSerializability entry;
      entry.conjunct = e;
      entry.csr = CsrReportFromGraph(projection_graph(e));
      if (!entry.csr.serializable) {
        report.is_pwsr = false;
        // Witness mapping: the disjoint fused sweep records full-schedule
        // positions directly; a graph built from a materialized projection
        // records projection-local ones — map those through
        // source_positions so every verdict renders at positions of S.
        if (entry.csr.cycle_op_pos.has_value() && !ic().disjoint()) {
          const std::vector<size_t>& source = projection(e).source_positions;
          if (*entry.csr.cycle_op_pos < source.size()) {
            entry.csr.cycle_op_pos = source[*entry.csr.cycle_op_pos];
          }
        }
      }
      report.per_conjunct.push_back(std::move(entry));
    }
    pwsr_ = std::move(report);
    ++stats_.pwsr_builds;
  }
  return *pwsr_;
}

const std::optional<DrViolation>& AnalysisContext::dr_violation() {
  if (!dr_violation_.has_value()) {
    std::optional<DrViolation> violation;
    for (const ReadsFromEdge& edge : reads_from()) {
      TxnId writer = schedule_->at(edge.writer_pos).txn;
      TxnId reader = schedule_->at(edge.reader_pos).txn;
      if (writer == reader) continue;  // cannot occur under the access rules
      if (!schedule_->CompletedBy(writer, edge.reader_pos)) {
        violation = DrViolation{edge.reader_pos, edge.writer_pos, writer};
        break;
      }
    }
    dr_violation_ = std::move(violation);
    ++stats_.dr_builds;
  }
  return *dr_violation_;
}

const std::optional<DrViolation>& AnalysisContext::strict_violation() {
  if (!strict_violation_.has_value()) {
    strict_violation_ = FindStrictViolation(*schedule_);
    ++stats_.strict_builds;
  }
  return *strict_violation_;
}

const Result<StrongCorrectnessReport>& AnalysisContext::strong_correctness() {
  if (!strong_.has_value()) {
    strong_ = CheckScheduleOverInitialStates(consistency_checker(), *schedule_,
                                             options_.initial_state_limit);
    ++stats_.strong_correctness_builds;
  }
  return *strong_;
}

}  // namespace nse
