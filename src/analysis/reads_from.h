// The reads-from relation of §3.2: read operation o_j reads from write
// operation o_i when both touch the same item, o_i precedes o_j, and no
// other write on that item lies between them.

#ifndef NSE_ANALYSIS_READS_FROM_H_
#define NSE_ANALYSIS_READS_FROM_H_

#include <optional>
#include <vector>

#include "txn/schedule.h"

namespace nse {

/// One reads-from pair, by schedule position.
struct ReadsFromEdge {
  size_t reader_pos = 0;  ///< position of the read o_j
  size_t writer_pos = 0;  ///< position of the write o_i it reads from
};

/// All reads-from pairs of `schedule`, in reader order.
std::vector<ReadsFromEdge> ReadsFromPairs(const Schedule& schedule);

/// Positions of reads served by the initial state (no preceding write).
std::vector<size_t> ReadsFromInitial(const Schedule& schedule);

/// The write that read position `reader_pos` reads from, or nullopt when it
/// reads the initial state. `reader_pos` must hold a read.
std::optional<size_t> SourceOfRead(const Schedule& schedule,
                                   size_t reader_pos);

}  // namespace nse

#endif  // NSE_ANALYSIS_READS_FROM_H_
