// View sets VS(T_i, p, d, S): the items of d a transaction can possibly have
// read before operation p.
//
//  * Lemma 2 (general schedules):
//      VS(T_1) = d
//      VS(T_i) = VS(T_{i-1}) − WS(after(T^d_{i-1}, p, S))
//  * Lemma 6 (delayed-read schedules):
//      VS(T_1) = d
//      VS(T_i) = VS(T_{i-1}) − WS(T^d_{i-1})   if after(T_{i-1}, p, S) ≠ ε
//      VS(T_i) = VS(T_{i-1}) ∪ WS(T^d_{i-1})   if after(T_{i-1}, p, S) = ε
//
// Both lemmas assert soundness: RS(before(T^d_i, p, S)) ⊆ VS(T_i, p, d, S)
// whenever T_1 ... T_n is a serialization order of S^d — verified by
// property tests and by the CheckViewSetSoundness helper.

#ifndef NSE_ANALYSIS_VIEW_SET_H_
#define NSE_ANALYSIS_VIEW_SET_H_

#include <vector>

#include "common/status.h"
#include "txn/schedule.h"

namespace nse {

class AnalysisContext;

/// Which recurrence to use.
enum class ViewSetVariant {
  kGeneral,      ///< Lemma 2
  kDelayedRead,  ///< Lemma 6 (sound only on DR schedules)
};

/// Computes VS(T_i, p, d, S) for every transaction along `order` (which must
/// be a serialization order of S^d; this is not re-verified here).
/// Returns one DataSet per order position.
std::vector<DataSet> ComputeViewSets(const Schedule& schedule,
                                     const DataSet& d,
                                     const std::vector<TxnId>& order,
                                     size_t p, ViewSetVariant variant);

/// Verifies the soundness claim of Lemma 2/6 for one (d, order, p) triple:
/// RS(before(T^d_i, p, S)) ⊆ VS(T_i, p, d, S) for every i. Returns the
/// first offending order position, or nullopt when sound.
std::optional<size_t> FindViewSetUnsoundness(const Schedule& schedule,
                                             const DataSet& d,
                                             const std::vector<TxnId>& order,
                                             size_t p,
                                             ViewSetVariant variant);

/// A Lemma 2/6 soundness failure found by CheckViewSetSoundness.
struct ViewSetUnsoundness {
  size_t conjunct = 0;     ///< conjunct index e whose S^{d_e} misbehaved
  size_t position = 0;     ///< schedule position p of the failure
  size_t order_index = 0;  ///< offending position along the serialization order
  ViewSetVariant variant = ViewSetVariant::kGeneral;
};

/// Verifies the soundness claims of Lemma 2 (and, when the schedule is
/// delayed-read, Lemma 6) for every conjunct with a serializable projection,
/// at every schedule position, reusing the context's memoized PWSR orders.
/// Returns the first failure, or nullopt when both lemmas hold (which the
/// paper proves they always do — a non-null result is a library bug).
std::optional<ViewSetUnsoundness> CheckViewSetSoundness(AnalysisContext& ctx);

}  // namespace nse

#endif  // NSE_ANALYSIS_VIEW_SET_H_
