#include "analysis/access_graph.h"

#include <algorithm>

#include "common/string_util.h"

namespace nse {

DataAccessGraph DataAccessGraph::Build(const Schedule& schedule,
                                       const IntegrityConstraint& ic) {
  DataAccessGraph graph;
  size_t l = ic.num_conjuncts();
  graph.adj_.assign(l, std::vector<bool>(l, false));
  for (const Transaction& txn : schedule.Transactions()) {
    DataSet reads = txn.ReadSet();
    DataSet writes = txn.WriteSet();
    for (size_t i = 0; i < l; ++i) {
      if (DataSet::Disjoint(reads, ic.data_set(i))) continue;
      for (size_t j = 0; j < l; ++j) {
        if (i == j) continue;
        if (!DataSet::Disjoint(writes, ic.data_set(j))) {
          graph.adj_[i][j] = true;
        }
      }
    }
  }
  return graph;
}

std::vector<std::pair<size_t, size_t>> DataAccessGraph::Edges() const {
  std::vector<std::pair<size_t, size_t>> out;
  for (size_t i = 0; i < adj_.size(); ++i) {
    for (size_t j = 0; j < adj_.size(); ++j) {
      if (adj_[i][j]) out.emplace_back(i, j);
    }
  }
  return out;
}

std::optional<std::vector<size_t>> DataAccessGraph::TopologicalOrder() const {
  size_t n = adj_.size();
  std::vector<size_t> indegree(n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (adj_[i][j]) ++indegree[j];
    }
  }
  std::vector<size_t> ready;
  for (size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  std::vector<size_t> order;
  while (!ready.empty()) {
    auto it = std::min_element(ready.begin(), ready.end());
    size_t node = *it;
    ready.erase(it);
    order.push_back(node);
    for (size_t j = 0; j < n; ++j) {
      if (adj_[node][j] && --indegree[j] == 0) ready.push_back(j);
    }
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

bool DataAccessGraph::IsAcyclic() const {
  return TopologicalOrder().has_value();
}

std::string DataAccessGraph::ToString() const {
  std::vector<std::string> parts;
  for (const auto& [from, to] : Edges()) {
    parts.push_back(StrCat("C", from + 1, " -> C", to + 1));
  }
  return StrJoin(parts, ", ");
}

}  // namespace nse
