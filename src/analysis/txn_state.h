// The abstract per-transaction state of Definition 4:
//
//   state(T_1, d, S, DS1) = DS1^d
//   state(T_i, d, S, DS1) = state(T_{i-1})^{d − WS(T^d_{i-1})} ∪ write(T^d_{i-1})
//
// i.e. the possible view of d "seen" by T_i under a chosen serialization
// order of S^d. The state is abstract — it may never be physically realized
// in the schedule — and depends on the serialization order chosen (the
// paper's Example 1 exhibits two different states for the two orders).
//
// Definition 4's two consequences, used throughout §3, are provided as
// checkable predicates:
//   (a) read(T^d_i) ⊆ state(T_i, d, S, DS1)      (for executions of S)
//   (b) [state(T_n, d, S, DS1)] T^d_n [DS2^d]    where [DS1] S [DS2]

#ifndef NSE_ANALYSIS_TXN_STATE_H_
#define NSE_ANALYSIS_TXN_STATE_H_

#include <vector>

#include "txn/schedule.h"

namespace nse {

/// Computes state(T_i, d, S, DS1) for each i along `order` (a serialization
/// order of S^d; not re-verified here). Returns one DbState per position.
std::vector<DbState> ComputeTxnStates(const Schedule& schedule,
                                      const DataSet& d,
                                      const std::vector<TxnId>& order,
                                      const DbState& initial);

/// Checks consequence (a): read(T^d_i) ⊆ state(T_i, d, S, DS1) for every i.
/// Returns the first violating order position, or nullopt. Holds whenever S
/// is an execution from `initial` and `order` serializes S^d.
std::optional<size_t> FindReadOutsideState(const Schedule& schedule,
                                           const DataSet& d,
                                           const std::vector<TxnId>& order,
                                           const DbState& initial);

/// Checks consequence (b): applying the last transaction's d-writes to
/// state(T_n, d, S, DS1) yields DS2^d, the final state's restriction.
bool FinalStateMatches(const Schedule& schedule, const DataSet& d,
                       const std::vector<TxnId>& order, const DbState& initial,
                       const DbState& final_state);

}  // namespace nse

#endif  // NSE_ANALYSIS_TXN_STATE_H_
