// Strong correctness — Definition 1. A schedule S is strongly correct iff
//  (1) for every consistent DS1 with [DS1] S [DS2], DS2 is consistent, and
//  (2) for every transaction T_i of S, read(T_i) is consistent (extensible).
//
// For a concrete execution (a schedule with value attributes plus the
// initial state it ran from), both conditions are decidable with the
// solver. For the schedule-level quantifier, observe that the initial
// states from which S is executable are exactly the consistent extensions
// of S.PinnedInitialReads() (every item's first operation, if a read, pins
// its initial value); CheckScheduleOverInitialStates enumerates them.

#ifndef NSE_ANALYSIS_STRONG_CORRECTNESS_H_
#define NSE_ANALYSIS_STRONG_CORRECTNESS_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "constraints/solver.h"
#include "txn/schedule.h"

namespace nse {

/// Why a schedule failed strong correctness.
enum class ViolationKind {
  kFinalStateInconsistent,        ///< DS2 violates the IC
  kTransactionReadInconsistent,   ///< some read(T_i) is not extensible
};

/// One strong-correctness violation.
struct ScViolation {
  ViolationKind kind = ViolationKind::kFinalStateInconsistent;
  TxnId txn = 0;          ///< offending transaction (read case)
  DbState witness;        ///< the inconsistent state / read map
  DbState initial_state;  ///< the initial state exhibiting it

  /// Renders a human-readable description.
  std::string ToString(const Database& db) const;
};

/// Outcome of a strong-correctness check.
struct StrongCorrectnessReport {
  bool strongly_correct = true;
  std::vector<ScViolation> violations;
  size_t initial_states_checked = 0;
};

/// Definition 1 for one concrete execution of `schedule` from `initial`.
/// Fails with FailedPrecondition if `schedule` is not an execution from
/// `initial` (some read sees a different value than recorded).
Result<StrongCorrectnessReport> CheckExecution(
    const ConsistencyChecker& checker, const Schedule& schedule,
    const DbState& initial);

/// Definition 1 quantified over initial states: enumerates up to `limit`
/// consistent initial states compatible with the schedule's pinned reads
/// and checks each induced execution. Read-map consistency (condition 2)
/// does not depend on the initial state and is checked once.
Result<StrongCorrectnessReport> CheckScheduleOverInitialStates(
    const ConsistencyChecker& checker, const Schedule& schedule,
    uint64_t limit);

}  // namespace nse

#endif  // NSE_ANALYSIS_STRONG_CORRECTNESS_H_
