// Fixed-structure transaction programs — Definition 3: TP has fixed
// structure iff struct(T1) = struct(T2) for the transactions produced by
// executing TP from any two database states.
//
// For the nse program language (assignments + if-then-else, no loops) the
// property is decidable exactly: operation emission depends only on the
// path taken and on which items are already cached, so exploring every
// branch combination enumerates all possible structures. AnalyzeStructure
// performs that exploration; TestFixedStructureRandomized cross-checks
// Definition 3 directly by executing from sampled states.

#ifndef NSE_ANALYSIS_FIXED_STRUCTURE_H_
#define NSE_ANALYSIS_FIXED_STRUCTURE_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "txn/program.h"

namespace nse {

/// Result of the exact structural analysis.
struct StructureAnalysis {
  bool fixed = false;  ///< all paths emit the same operation structure
  bool valid = true;   ///< no path writes an item twice
  /// The unique signature when fixed; one representative otherwise.
  std::vector<OpStruct> signature;
  /// Two differing signatures (rendered) when not fixed; the double-write
  /// item when invalid.
  std::string explanation;
  size_t paths_explored = 0;
};

/// Explores all branch combinations of `program` (up to `max_paths`) and
/// decides Definition 3 exactly for this language. Paths beyond the cap
/// make the result conservative (`fixed` = false with an explanation).
StructureAnalysis AnalyzeStructure(const Database& db,
                                   const TransactionProgram& program,
                                   size_t max_paths = 4096);

/// True iff the program contains no if statement — the "straight line
/// transactions" restriction of Sha et al. [14], strictly stronger than
/// fixed structure.
bool IsStraightLine(const TransactionProgram& program);

/// Definition 3 by sampling: executes `program` in isolation from `trials`
/// random total states (uniform per-item domain values) and compares
/// structures. Returns false as soon as two runs differ. Runs whose
/// evaluation fails (e.g. type errors on exotic domains) are skipped.
Result<bool> TestFixedStructureRandomized(const Database& db,
                                          const TransactionProgram& program,
                                          Rng& rng, size_t trials);

}  // namespace nse

#endif  // NSE_ANALYSIS_FIXED_STRUCTURE_H_
