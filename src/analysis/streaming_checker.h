// Streaming windowed serializability checker: the online half of the
// black-box history plane (src/history/). Events arrive one at a time
// through Feed; verdicts are emitted online (violation_seen() flips the
// moment a committed-only conflict cycle completes) and the final report
// carries witnesses that agree bit-for-bit with the batch plane
// (history/batch_check.h) on the same log — the contract pinned by the
// history differential fuzz suite.
//
// The checker maintains one live conflict graph per plane (the full
// schedule, plus one projected plane per StreamingOptions::planes entry,
// PWSR-style) over the decremental incremental-cycle ConflictGraph.
// Transactions occupy recycled node slots; aborted transactions have
// their edges retracted (RemoveEdgesOf + access-index erase), exactly the
// committed-projection semantics of the batch plane.
//
// Eviction (the window): a committed transaction can gain no further
// in-edges — every in-edge u → v is created by an operation of v, and a
// committed v issues no more operations. So a committed transaction with
// zero in-degree in the live graph can never lie on any future cycle, and
// retiring it (edges, access-index entries, slot) is sound AND complete:
// no verdict ever changes because of an eviction. When a plane retains
// more than `window` committed transactions, such transactions are swept
// out (cascading — each removal can free its successors). Retained
// memory is therefore bounded by the active transactions plus the
// committed ones they transitively pin, not by log length. Conversely a
// transaction pinned by an in-edge from a live predecessor stays until
// the predecessor resolves — the concurrent-overlap term of the bound.
//
// Violations fire only at commit events: a new edge always points INTO
// the operating (hence active) transaction, so a committed-only cycle can
// only complete when its last member commits. Detection is a targeted
// DFS through the committing transaction over committed nodes, guarded
// by the O(1) has_cycle() of the Pearce–Kelly graph. On detection the
// verdict latches and the plane freezes: its live edge set (with each
// edge's creation order and originating log event) is snapshotted, the
// graph is dropped, and only the commit fates of the snapshot's endpoints
// are tracked further. Finish() replays the snapshot's
// committed-committed edges in creation order into a fresh incremental
// graph — reproducing the batch plane's insertion sequence, hence its
// first cycle-closing edge, witness cycle and event position exactly
// (evicted transactions never lie on a batch cycle, so their absence from
// the snapshot is invisible to the witness; see docs/adr/0011).
//
// Dirty reads are tracked from the read_from annotations: a committed
// reader whose annotation names an aborted writer is reported with the
// read's event index, matching AbortedReadEvents. The id set of aborted
// transactions is the one structure that grows with aborts rather than
// the window (any future read may name any past writer).
//
// Feed validates the event protocol over live transactions (duplicate
// begin, operation before begin or after finish, unknown items) with
// typed Status errors; checks that need unbounded memory (reuse of a
// long-retired id, read_from of a retired writer) are the parser's job —
// ParseHistory rejects them exactly.

#ifndef NSE_ANALYSIS_STREAMING_CHECKER_H_
#define NSE_ANALYSIS_STREAMING_CHECKER_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/conflict_graph.h"
#include "common/status.h"
#include "history/history.h"

namespace nse {

/// Knobs for the streaming checker.
struct StreamingOptions {
  /// Committed transactions a plane retains before eviction sweeps run;
  /// 0 = unbounded (never evict). Any value yields identical verdicts —
  /// the window trades memory against sweep work only.
  size_t window = 64;
  /// Projected planes (PWSR's per-conjunct test): each non-empty item set
  /// is checked for conflict serializability of its projection, in
  /// addition to the always-present full plane.
  std::vector<DataSet> planes;
};

/// One serializability violation, in log coordinates (identical layout to
/// the batch plane's BatchViolation — the differential compares them
/// field by field).
struct StreamingViolation {
  /// The conflict edge whose creation closed the first cycle.
  std::pair<TxnId, TxnId> edge;
  /// Log event index of the operation that created that edge.
  size_t event = 0;
  /// Cycle witness (txn ids, first == last).
  std::vector<TxnId> cycle;
};

/// Final verdict of one plane.
struct StreamingPlaneReport {
  bool ok = true;
  std::optional<StreamingViolation> violation;
  /// Event index at which the verdict latched online (the commit that
  /// completed the first committed-only cycle) — diagnostic; the witness
  /// above is the batch-identical one.
  std::optional<size_t> detected_at;
};

/// Counters for the memory/throughput contract.
struct StreamingStats {
  uint64_t events = 0;        ///< events fed
  uint64_t ops = 0;           ///< read/write events
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t evictions = 0;     ///< committed transactions swept out
  uint64_t rebuilds = 0;      ///< slot-capacity graph rebuilds
  size_t peak_retained = 0;   ///< max transactions resident in any plane
  size_t retained = 0;        ///< resident at Finish
};

/// The complete streaming verdict.
struct StreamingReport {
  StreamingPlaneReport full;                 ///< CSR of the full projection
  std::vector<StreamingPlaneReport> planes;  ///< per StreamingOptions plane
  /// Event indices of committed dirty reads, ascending (agrees with
  /// AbortedReadEvents).
  std::vector<size_t> aborted_reads;
  StreamingStats stats;

  /// True iff every plane is serializable and no aborted read exists.
  bool ok() const;
};

/// The streaming checker. Thread-compatible, not thread-safe.
class StreamingChecker {
 public:
  /// `db` is the item catalog events refer to (borrowed; must outlive the
  /// checker).
  explicit StreamingChecker(const Database& db, StreamingOptions options = {});

  /// Ingests one event. Protocol violations over live transactions yield
  /// typed errors and leave the checker state unchanged.
  Status Feed(const HistoryEvent& event);

  /// True once any plane has latched a violation or a committed dirty
  /// read has resolved — the online verdict.
  bool violation_seen() const { return violation_seen_; }

  /// Running counters (peak_retained is maintained live).
  const StreamingStats& stats() const { return stats_; }

  /// Finalizes witnesses and returns the report. The checker is spent
  /// afterwards; further Feed calls are rejected.
  StreamingReport Finish();

 private:
  /// An edge's identity in batch insertion order: `seq` is the global
  /// creation rank (the batch plane inserts committed-committed edges in
  /// exactly this order), `event` the log event of the creating op.
  struct EdgeMeta {
    uint64_t seq = 0;
    size_t event = 0;
  };

  /// A snapshotted live edge of a frozen (violated) plane.
  struct FrozenEdge {
    TxnId from = 0;
    TxnId to = 0;
    uint64_t seq = 0;
    size_t event = 0;
  };

  struct SlotInfo {
    TxnId txn = 0;
    bool live = false;
    bool committed = false;
  };

  /// One checked plane: the full schedule (empty `items`), or a
  /// projection.
  struct Plane {
    DataSet items;  ///< empty = all items
    ConflictGraph graph;
    ConflictAccessIndex access;
    std::unordered_map<TxnId, uint32_t> slot_of;
    std::vector<SlotInfo> slots;
    std::vector<uint32_t> free_slots;
    /// Edge metadata keyed by (from_slot << 32) | to_slot.
    std::unordered_map<uint64_t, EdgeMeta> edge_meta;
    /// Live committed slots — the eviction sweep's worklist.
    std::vector<uint32_t> committed_slots;
    size_t committed_retained = 0;
    size_t occupied = 0;

    // Frozen (violated) state.
    bool violated = false;
    size_t detected_at = 0;
    std::vector<FrozenEdge> frozen;
    /// Fates of the snapshot's endpoints, resolved as the log continues:
    /// absent = still active at Finish (incomplete, excluded).
    std::unordered_map<TxnId, TxnFate> frozen_fates;

    bool Tracks(ItemId item) const {
      return items.empty() || items.Contains(item);
    }
  };

  /// Pending dirty-read dependency: reader R observed writer W's version.
  struct DirtyPending {
    TxnId reader = 0;
    TxnId writer = 0;
    size_t event = 0;
    bool writer_aborted = false;
    bool reader_committed = false;
    bool dead = false;
  };

  Status FeedOp(const HistoryEvent& event, size_t event_index);
  void FeedCommit(TxnId txn, size_t event_index);
  void FeedAbort(TxnId txn);

  uint32_t EnsureSlot(Plane& plane, TxnId txn);
  void GrowPlane(Plane& plane);
  void RetireSlot(Plane& plane, uint32_t slot);
  void EvictionSweep(Plane& plane);
  bool CommittedCycleThrough(const Plane& plane, uint32_t slot) const;
  void LatchViolation(Plane& plane, size_t event_index);
  StreamingPlaneReport FinishPlane(Plane& plane);

  void TrackDirtyRead(TxnId reader, TxnId writer, size_t event_index);
  void ResolveDirtyReads(TxnId txn, bool committed);
  void RemoveDirtyIndex(std::unordered_multimap<TxnId, size_t>& index,
                        TxnId key, size_t entry);

  const Database* db_;
  StreamingOptions options_;
  std::vector<Plane> planes_;  ///< planes_[0] is the full plane

  /// Live (begun, unresolved) transactions.
  std::unordered_set<TxnId> active_;
  /// Every aborted transaction id — grows with aborts, not log length.
  std::unordered_set<TxnId> aborted_;

  std::vector<DirtyPending> dirty_;
  std::vector<size_t> dirty_free_;
  std::unordered_multimap<TxnId, size_t> dirty_by_reader_;
  std::unordered_multimap<TxnId, size_t> dirty_by_writer_;
  std::vector<size_t> aborted_read_events_;

  uint64_t next_seq_ = 1;
  bool violation_seen_ = false;
  bool finished_ = false;
  StreamingStats stats_;
};

/// Convenience: streams a whole (validated) history and returns the
/// report. Aborts on Feed errors — validate first for untrusted input.
StreamingReport CheckHistoryStreaming(const History& history,
                                      StreamingOptions options = {});

}  // namespace nse

#endif  // NSE_ANALYSIS_STREAMING_CHECKER_H_
