// Conflict serializability (CSR) — the baseline correctness criterion the
// paper relaxes (footnote 2: "by serializability we refer to conflict
// serializability").

#ifndef NSE_ANALYSIS_SERIALIZABILITY_H_
#define NSE_ANALYSIS_SERIALIZABILITY_H_

#include <optional>
#include <vector>

#include "analysis/conflict_graph.h"
#include "common/status.h"
#include "txn/schedule.h"

namespace nse {

/// Outcome of a CSR test.
struct CsrReport {
  bool serializable = false;
  /// A serialization order when serializable.
  std::optional<std::vector<TxnId>> order;
  /// A conflict-graph cycle witness when not.
  std::optional<std::vector<TxnId>> cycle;
  /// The conflict edge whose insertion closed the cycle, when the graph was
  /// built with incremental (Pearce–Kelly) detection.
  std::optional<std::pair<TxnId, TxnId>> cycle_edge;
  /// Schedule position of the operation that created the cycle-closing
  /// edge, when recorded. For a projected conflict graph this is mapped to
  /// a *full-schedule* position by the AnalysisContext pwsr path (via
  /// ScheduleProjection::source_positions), so verdicts render where the
  /// user can see them.
  std::optional<size_t> cycle_op_pos;
};

/// True iff `schedule` is conflict serializable.
bool IsConflictSerializable(const Schedule& schedule);

/// Full CSR report with order/cycle witness.
CsrReport CheckConflictSerializability(const Schedule& schedule);

/// The CSR report of an already-built conflict graph — the single
/// implementation behind both the free function and the memoized
/// AnalysisContext path.
CsrReport CsrReportFromGraph(const ConflictGraph& graph);

/// All serialization orders of `schedule`, up to `limit`; empty if not CSR.
std::vector<std::vector<TxnId>> SerializationOrders(const Schedule& schedule,
                                                    size_t limit);

/// The serial schedule obtained by concatenating the transactions of
/// `schedule` in `order` (with their recorded values).
Result<Schedule> SerialArrangement(const Schedule& schedule,
                                   const std::vector<TxnId>& order);

}  // namespace nse

#endif  // NSE_ANALYSIS_SERIALIZABILITY_H_
