// Multiversion and view serializability over (optionally) version-annotated
// traces. A multiversion schedule does not say which write a read observed —
// that is the scheduler's choice — so the drivers surface it explicitly: a
// VersionAnnotations sidecar names, per read position, the transaction whose
// write produced the observed version (0 = the initial state). With the
// reads-from relation pinned, MVSR is the classical Bernstein–Goodman
// one-copy serializability: the trace is MVSR iff some *serial monoversion*
// execution of the same transactions reproduces exactly that reads-from.
//
// The check is two-tier. Fast path: build the multiversion serialization
// graph MVSG(S, <<) with the trace's per-item write order as the version
// order; acyclic certifies MVSR with a topological witness. The trace order
// is the natural candidate but not the only one (MVTO's Thomas-rule writes
// land as *older* versions than wall order suggests), so a cyclic MVSG is
// not a refutation — the exact tier runs a bounded serial-order search with
// per-transaction reads-from feasibility pruning. Search exhausted refutes
// MVSR; hitting the node cap leaves the verdict undecided.
//
// The same machinery decides monoversion view serializability (VSR), where
// the annotation is derived positionally (each read observes the latest
// preceding write) and classical view equivalence additionally pins the
// final write per item.

#ifndef NSE_ANALYSIS_MULTIVERSION_H_
#define NSE_ANALYSIS_MULTIVERSION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "txn/schedule.h"

namespace nse {

/// Per-position version annotation, parallel to schedule.ops(): for reads,
/// the transaction whose write produced the observed version (0 = initial
/// state; may be the reader itself). Entries for writes — and reads of a
/// single-version policy — are nullopt; such reads are resolved
/// positionally (latest preceding write), which embeds monoversion traces
/// as the 1-version special case.
struct VersionAnnotations {
  std::vector<std::optional<TxnId>> read_from;
};

/// Outcome of an MVSR / VSR decision.
struct MultiversionReport {
  /// False iff the search hit its node cap before deciding.
  bool decided = true;
  /// The criterion holds (meaningful only when decided).
  bool satisfied = false;
  /// Witness serial order when satisfied.
  std::optional<std::vector<TxnId>> order;
  /// True when the fast path alone certified (MVSG acyclic / CSR).
  bool fast_path = false;
  /// Serial-order search nodes expanded (0 when the fast path decided).
  uint64_t nodes_visited = 0;
  /// Human-readable elaboration of the verdict.
  std::string detail;
};

/// Default node cap for the exact serial-order search.
inline constexpr uint64_t kDefaultMvSearchNodeLimit = 1u << 20;

/// Derives the monoversion annotation of `schedule`: every read observes
/// the latest preceding write of its item (0 = initial state).
VersionAnnotations MonoversionAnnotations(const Schedule& schedule);

/// Decides whether `schedule` with reads-from pinned by `versions` is
/// one-copy (multiversion view) serializable. Annotation entries may be
/// absent (see VersionAnnotations); an annotation naming a transaction
/// with no write on the item is a malformed trace and refutes outright.
MultiversionReport CheckMvsr(const Schedule& schedule,
                             const VersionAnnotations& versions,
                             uint64_t node_limit = kDefaultMvSearchNodeLimit);

/// Decides classical (monoversion) view serializability: positional
/// reads-from plus final-write equivalence against a serial order. No CSR
/// fast path here — callers with a conflict graph at hand should try CSR
/// first (conflict serializability implies view serializability).
MultiversionReport CheckViewSerializability(
    const Schedule& schedule,
    uint64_t node_limit = kDefaultMvSearchNodeLimit);

}  // namespace nse

#endif  // NSE_ANALYSIS_MULTIVERSION_H_
