// Predicate-wise serializability — Definition 2: S is PWSR iff for every
// conjunct data set d_e of the integrity constraint, the projection S^{d_e}
// is conflict serializable.

#ifndef NSE_ANALYSIS_PWSR_H_
#define NSE_ANALYSIS_PWSR_H_

#include <optional>
#include <string>
#include <vector>

#include "analysis/serializability.h"
#include "constraints/integrity_constraint.h"
#include "txn/schedule.h"

namespace nse {

/// Per-conjunct result of the PWSR test.
struct ConjunctSerializability {
  size_t conjunct = 0;  ///< conjunct index e
  CsrReport csr;        ///< serializability of S^{d_e}
};

/// Outcome of the PWSR test.
struct PwsrReport {
  bool is_pwsr = false;
  bool conjuncts_disjoint = true;  ///< the theorems also need disjointness
  std::vector<ConjunctSerializability> per_conjunct;

  /// Serialization order of S^{d_e} for conjunct `e`, when serializable.
  /// Out-of-range conjunct indices yield an empty optional instead of
  /// undefined behavior.
  const std::optional<std::vector<TxnId>>& OrderFor(size_t e) const {
    static const std::optional<std::vector<TxnId>> kNone;
    if (e >= per_conjunct.size()) return kNone;
    return per_conjunct[e].csr.order;
  }
};

/// Tests Definition 2 for `schedule` against `ic`.
PwsrReport CheckPwsr(const Schedule& schedule, const IntegrityConstraint& ic);

/// Renders a one-line verdict per conjunct.
std::string PwsrReportToString(const Database& db,
                               const IntegrityConstraint& ic,
                               const PwsrReport& report);

}  // namespace nse

#endif  // NSE_ANALYSIS_PWSR_H_
