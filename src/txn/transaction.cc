#include "txn/transaction.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace nse {

DataSet ReadSetOf(const OpSequence& seq) {
  DataSet out;
  for (const Operation& op : seq) {
    if (op.is_read()) out.Insert(op.entity);
  }
  return out;
}

DataSet WriteSetOf(const OpSequence& seq) {
  DataSet out;
  for (const Operation& op : seq) {
    if (op.is_write()) out.Insert(op.entity);
  }
  return out;
}

DbState ReadMapOf(const OpSequence& seq) {
  DbState out;
  for (const Operation& op : seq) {
    if (op.is_read() && !out.Has(op.entity)) out.Set(op.entity, op.value);
  }
  return out;
}

DbState WriteMapOf(const OpSequence& seq) {
  DbState out;
  for (const Operation& op : seq) {
    if (op.is_write()) out.Set(op.entity, op.value);
  }
  return out;
}

OpSequence ProjectOps(const OpSequence& seq, const DataSet& d) {
  OpSequence out;
  for (const Operation& op : seq) {
    if (d.Contains(op.entity)) out.push_back(op);
  }
  return out;
}

OpSequence OpsOfTxn(const OpSequence& seq, TxnId txn) {
  OpSequence out;
  for (const Operation& op : seq) {
    if (op.txn == txn) out.push_back(op);
  }
  return out;
}

std::vector<OpStruct> StructOf(const OpSequence& seq) {
  std::vector<OpStruct> out;
  out.reserve(seq.size());
  for (const Operation& op : seq) out.push_back(StructOf(op));
  return out;
}

std::string OpsToString(const Database& db, const OpSequence& seq) {
  std::vector<std::string> parts;
  parts.reserve(seq.size());
  for (const Operation& op : seq) parts.push_back(op.ToString(db));
  return StrJoin(parts, ", ");
}

std::string StructToString(const Database& db,
                           const std::vector<OpStruct>& sig) {
  std::vector<std::string> parts;
  parts.reserve(sig.size());
  for (const OpStruct& s : sig) {
    parts.push_back(
        StrCat(OpActionName(s.action), "(", db.NameOf(s.entity), ")"));
  }
  return StrJoin(parts, ", ");
}

Transaction::Transaction(TxnId id, OpSequence ops)
    : id_(id), ops_(std::move(ops)) {
  for (const Operation& op : ops_) {
    NSE_CHECK_MSG(op.txn == id_, "op of txn %u placed in transaction %u",
                  op.txn, id_);
  }
}

Status Transaction::ValidateAccessDiscipline() const {
  DataSet read_items;
  DataSet written_items;
  for (const Operation& op : ops_) {
    if (op.is_read()) {
      if (read_items.Contains(op.entity)) {
        return Status::FailedPrecondition(
            StrCat("transaction ", id_, " reads item #", op.entity,
                   " more than once"));
      }
      if (written_items.Contains(op.entity)) {
        return Status::FailedPrecondition(
            StrCat("transaction ", id_, " reads item #", op.entity,
                   " after writing it"));
      }
      read_items.Insert(op.entity);
    } else {
      if (written_items.Contains(op.entity)) {
        return Status::FailedPrecondition(
            StrCat("transaction ", id_, " writes item #", op.entity,
                   " more than once"));
      }
      written_items.Insert(op.entity);
    }
  }
  return Status::Ok();
}

DataSet Transaction::AccessSet() const {
  return DataSet::Union(ReadSet(), WriteSet());
}

std::string Transaction::ToString(const Database& db) const {
  return StrCat("T", id_, ": ", OpsToString(db, ops_));
}

}  // namespace nse
