#include "txn/schedule.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace nse {

Schedule::Schedule(OpSequence ops) : ops_(std::move(ops)) {
  for (const Operation& op : ops_) {
    if (!std::binary_search(txn_ids_.begin(), txn_ids_.end(), op.txn)) {
      txn_ids_.insert(
          std::upper_bound(txn_ids_.begin(), txn_ids_.end(), op.txn), op.txn);
    }
  }
  last_op_index_.assign(txn_ids_.size(), 0);
  for (size_t i = 0; i < ops_.size(); ++i) {
    auto it = std::lower_bound(txn_ids_.begin(), txn_ids_.end(), ops_[i].txn);
    last_op_index_[static_cast<size_t>(it - txn_ids_.begin())] = i;
  }
}

Result<Schedule> Schedule::FromOps(OpSequence ops) {
  Schedule schedule(std::move(ops));
  for (TxnId txn : schedule.txn_ids()) {
    NSE_RETURN_IF_ERROR(
        schedule.TransactionOf(txn).ValidateAccessDiscipline());
  }
  return schedule;
}

const Operation& Schedule::at(size_t p) const {
  NSE_CHECK_MSG(p < ops_.size(), "schedule position %zu out of range %zu", p,
                ops_.size());
  return ops_[p];
}

Transaction Schedule::TransactionOf(TxnId txn) const {
  return Transaction(txn, OpsOfTxn(ops_, txn));
}

std::vector<Transaction> Schedule::Transactions() const {
  std::vector<Transaction> out;
  out.reserve(txn_ids_.size());
  for (TxnId txn : txn_ids_) out.push_back(TransactionOf(txn));
  return out;
}

Schedule Schedule::Project(const DataSet& d) const {
  return Schedule(ProjectOps(ops_, d));
}

ScheduleProjection Schedule::ProjectWithPositions(const DataSet& d) const {
  OpSequence ops;
  std::vector<size_t> positions;
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (d.Contains(ops_[i].entity)) {
      ops.push_back(ops_[i]);
      positions.push_back(i);
    }
  }
  return ScheduleProjection{Schedule(std::move(ops)), std::move(positions)};
}

OpSequence Schedule::BeforeOfTxn(TxnId txn, size_t p) const {
  OpSequence out;
  for (size_t i = 0; i < ops_.size() && i <= p; ++i) {
    if (ops_[i].txn != txn) continue;
    if (i < p || (i == p && ops_[p].txn == txn)) out.push_back(ops_[i]);
  }
  return out;
}

OpSequence Schedule::AfterOfTxn(TxnId txn, size_t p) const {
  OpSequence out;
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (ops_[i].txn != txn) continue;
    if (i > p) out.push_back(ops_[i]);
  }
  return out;
}

OpSequence Schedule::BeforeAll(size_t p) const {
  OpSequence out;
  for (size_t i = 0; i < ops_.size() && i <= p; ++i) out.push_back(ops_[i]);
  return out;
}

std::optional<size_t> Schedule::LastOpIndexOf(TxnId txn) const {
  auto it = std::lower_bound(txn_ids_.begin(), txn_ids_.end(), txn);
  if (it == txn_ids_.end() || *it != txn) return std::nullopt;
  return last_op_index_[static_cast<size_t>(it - txn_ids_.begin())];
}

bool Schedule::CompletedBy(TxnId txn, size_t p) const {
  auto last = LastOpIndexOf(txn);
  if (!last.has_value()) return true;
  return *last <= p;
}

Result<ExecutionResult> Schedule::Execute(const DbState& initial) const {
  ExecutionResult result;
  DbState state = initial;
  for (size_t i = 0; i < ops_.size(); ++i) {
    const Operation& op = ops_[i];
    if (op.is_write()) {
      state.Set(op.entity, op.value);
      continue;
    }
    auto visible = state.Get(op.entity);
    if (!visible.has_value()) {
      return Status::FailedPrecondition(
          StrCat("read of item #", op.entity,
                 " which is unassigned in the initial state"));
    }
    if (*visible != op.value) result.read_mismatches.push_back(i);
  }
  result.final_state = std::move(state);
  return result;
}

DbState Schedule::PinnedInitialReads() const {
  DbState pinned;
  DataSet touched;
  for (const Operation& op : ops_) {
    if (touched.Contains(op.entity)) continue;
    touched.Insert(op.entity);
    if (op.is_read()) pinned.Set(op.entity, op.value);
  }
  return pinned;
}

DataSet Schedule::AccessedItems() const {
  DataSet out;
  for (const Operation& op : ops_) out.Insert(op.entity);
  return out;
}

std::string Schedule::ToString(const Database& db) const {
  return OpsToString(db, ops_);
}

ScheduleBuilder& ScheduleBuilder::R(TxnId txn, std::string_view item,
                                    Value value) {
  ops_.push_back(Operation::Read(txn, db_.MustFind(item), std::move(value)));
  return *this;
}

ScheduleBuilder& ScheduleBuilder::W(TxnId txn, std::string_view item,
                                    Value value) {
  ops_.push_back(Operation::Write(txn, db_.MustFind(item), std::move(value)));
  return *this;
}

}  // namespace nse
