// Transaction and operation-sequence notation from §2.2:
//   RS(seq), read(seq), WS(seq), write(seq), seq^d, struct(seq).
//
// The free functions operate on arbitrary operation sequences (transactions,
// schedules, before/after slices); Transaction wraps a sequence with its id
// and validates the paper's access discipline (each item read at most once,
// written at most once, never read after being written by the same
// transaction).

#ifndef NSE_TXN_TRANSACTION_H_
#define NSE_TXN_TRANSACTION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "state/database.h"
#include "state/db_state.h"
#include "txn/operation.h"

namespace nse {

/// An ordered operation sequence (the paper's `seq`).
using OpSequence = std::vector<Operation>;

/// RS(seq): items read by operations in seq.
DataSet ReadSetOf(const OpSequence& seq);

/// WS(seq): items written by operations in seq.
DataSet WriteSetOf(const OpSequence& seq);

/// read(seq): the database state "seen" by the reads in seq. If an item is
/// read more than once (possible for schedules), the first read wins.
DbState ReadMapOf(const OpSequence& seq);

/// write(seq): the effect of the writes in seq on the database. If an item
/// is written more than once, the last write wins.
DbState WriteMapOf(const OpSequence& seq);

/// seq^d: subsequence of operations whose entity lies in d.
OpSequence ProjectOps(const OpSequence& seq, const DataSet& d);

/// The subsequence of operations belonging to transaction `txn`.
OpSequence OpsOfTxn(const OpSequence& seq, TxnId txn);

/// struct(seq): the sequence with values erased.
std::vector<OpStruct> StructOf(const OpSequence& seq);

/// Renders "r1(a, 0), w2(d, 0), ..." using catalog names.
std::string OpsToString(const Database& db, const OpSequence& seq);

/// Renders a struct signature "r(a), r(c), w(b)".
std::string StructToString(const Database& db,
                           const std::vector<OpStruct>& sig);

/// A transaction T_i = (OT_i, <_{OT_i}).
class Transaction {
 public:
  Transaction() = default;

  /// Wraps `ops` as the transaction `id`. Every op must carry txn == id.
  Transaction(TxnId id, OpSequence ops);

  /// The transaction id.
  TxnId id() const { return id_; }

  /// The ordered operations.
  const OpSequence& ops() const { return ops_; }

  /// Number of operations.
  size_t size() const { return ops_.size(); }
  /// True iff the transaction has no operations.
  bool empty() const { return ops_.empty(); }

  /// Validates the paper's access discipline: each item is read at most
  /// once, written at most once, and never read after being written.
  Status ValidateAccessDiscipline() const;

  /// RS(T_i).
  DataSet ReadSet() const { return ReadSetOf(ops_); }
  /// WS(T_i).
  DataSet WriteSet() const { return WriteSetOf(ops_); }
  /// read(T_i).
  DbState ReadMap() const { return ReadMapOf(ops_); }
  /// write(T_i).
  DbState WriteMap() const { return WriteMapOf(ops_); }
  /// RS(T_i) ∪ WS(T_i): all items touched.
  DataSet AccessSet() const;

  /// T_i^d.
  Transaction Project(const DataSet& d) const {
    return Transaction(id_, ProjectOps(ops_, d));
  }

  /// struct(T_i).
  std::vector<OpStruct> Struct() const { return StructOf(ops_); }

  /// Renders "T1: r1(a, 0), r1(c, 5), w1(b, 5)".
  std::string ToString(const Database& db) const;

 private:
  TxnId id_ = 0;
  OpSequence ops_;
};

}  // namespace nse

#endif  // NSE_TXN_TRANSACTION_H_
