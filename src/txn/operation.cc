#include "txn/operation.h"

#include "common/string_util.h"

namespace nse {

const char* OpActionName(OpAction action) {
  return action == OpAction::kRead ? "r" : "w";
}

std::string Operation::ToString(const Database& db) const {
  return StrCat(OpActionName(action), txn, "(", db.NameOf(entity), ", ",
                value.ToString(), ")");
}

bool Conflicts(const Operation& a, const Operation& b) {
  return a.entity == b.entity && a.txn != b.txn &&
         (a.is_write() || b.is_write());
}

}  // namespace nse
