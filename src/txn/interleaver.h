// Interleaver: builds schedules by executing transaction programs
// concurrently against a shared database state (§2.2). The caller controls
// the interleaving with a *choice sequence*: choices[k] = index of the
// program that performs its next operation at step k. Each read sees the
// shared state at its moment of execution; each write updates it — this is
// what gives schedule operations their value attributes.
//
// Also provides serial execution, random interleavings, and exhaustive
// enumeration of all interleavings (a tiny model checker used to *search*
// for strong-correctness violations in small scenarios).

#ifndef NSE_TXN_INTERLEAVER_H_
#define NSE_TXN_INTERLEAVER_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "txn/program.h"
#include "txn/schedule.h"

namespace nse {

/// Outcome of one interleaved execution [DS1] S [DS2].
struct InterleaveResult {
  Schedule schedule;    ///< S, with value attributes
  DbState final_state;  ///< DS2
  bool complete;        ///< true iff every program ran to completion
};

/// Executes `programs` concurrently from `initial` under `choices`.
/// Transaction ids are 1-based: programs[i] runs as T_{i+1}.
/// A choice naming a finished program is an InvalidArgument error.
/// If `require_complete` is true, all programs must be finished after the
/// last choice; otherwise the result may be a prefix schedule.
Result<InterleaveResult> Interleave(
    const Database& db, const std::vector<const TransactionProgram*>& programs,
    const DbState& initial, const std::vector<size_t>& choices,
    bool require_complete = true);

/// Serial execution in the given order of program indices (a special choice
/// sequence); the baseline the paper compares against.
Result<InterleaveResult> ExecuteSerially(
    const Database& db, const std::vector<const TransactionProgram*>& programs,
    const DbState& initial, const std::vector<size_t>& order);

/// A uniformly random *complete* choice sequence for `programs` executing
/// from `initial` (programs are stepped to discover their lengths).
Result<std::vector<size_t>> RandomChoices(
    const Database& db, const std::vector<const TransactionProgram*>& programs,
    const DbState& initial, Rng& rng);

/// A *near-serial* choice sequence: the programs run serially in a random
/// order, then `swaps` random adjacent transpositions (between different
/// programs) partially interleave the sequence. With few swaps the
/// resulting executions usually stay PWSR/DR — the regime the theorems
/// quantify over — whereas uniformly random choices almost never do once
/// several transactions conflict.
///
/// Note: the returned sequence is valid for the *serial* execution; because
/// program lengths may depend on interleaving (non-fixed-structure
/// programs), replaying a swapped sequence can fail — callers should treat
/// Interleave errors as a discarded sample.
Result<std::vector<size_t>> NearSerialChoices(
    const Database& db, const std::vector<const TransactionProgram*>& programs,
    const DbState& initial, Rng& rng, size_t swaps);

/// Callback for EnumerateInterleavings; return false to stop enumeration.
using InterleavingVisitor = std::function<bool(const InterleaveResult&,
                                               const std::vector<size_t>&)>;

/// How an interleaving enumeration ended.
struct EnumerationOutcome {
  uint64_t visited = 0;  ///< complete interleavings passed to the visitor
  /// True iff every complete interleaving was visited (or the visitor
  /// stopped the enumeration itself); false iff `limit` cut it off with
  /// unexplored interleavings remaining. The distinction matters to
  /// consumers like ExhaustiveViolationSearch, where "no violation found"
  /// is only evidence when the enumeration was exhaustive.
  bool exhausted = true;
};

/// Enumerates every complete interleaving of `programs` from `initial`
/// (depth-first over the choice tree), invoking `visit` for each. Stops
/// early when `visit` returns false or after `limit` interleavings.
///
/// The number of interleavings is the multinomial (Σn_i)! / Π(n_i!) — keep
/// programs tiny. Program lengths may be state-dependent; the enumeration
/// follows actual execution, so it is exact even for non-fixed-structure
/// programs.
Result<EnumerationOutcome> EnumerateInterleavings(
    const Database& db, const std::vector<const TransactionProgram*>& programs,
    const DbState& initial, uint64_t limit, const InterleavingVisitor& visit);

/// Enumerates the complete interleavings whose choice sequences extend the
/// fixed `prefix`, in the same depth-first order EnumerateInterleavings
/// would visit them. The visitor receives full choice sequences (prefix
/// included); `visited` counts only this subtree. This is the unit of work
/// for the parallel exhaustive search: the root tree partitions exactly
/// into the subtrees under each live first choice, so enumerating them
/// independently and concatenating in ascending first-choice order
/// reproduces the sequential enumeration.
Result<EnumerationOutcome> EnumerateInterleavingsFrom(
    const Database& db, const std::vector<const TransactionProgram*>& programs,
    const DbState& initial, const std::vector<size_t>& prefix, uint64_t limit,
    const InterleavingVisitor& visit);

/// EnumerateInterleavingsFrom, original implementation: a fresh execution
/// arena plus a full prefix replay at every tree node (O(depth^2) program
/// steps per path). The production enumerator above walks the same tree
/// with one persistent arena and step/undo per edge; this replay-per-node
/// version is kept as its differential reference (identical visit order,
/// visited counts, and truncation behavior — fuzz-checked) and as the
/// sequential baseline bench_violation_search measures the exhaustive
/// engine against.
Result<EnumerationOutcome> EnumerateInterleavingsFromReference(
    const Database& db, const std::vector<const TransactionProgram*>& programs,
    const DbState& initial, const std::vector<size_t>& prefix, uint64_t limit,
    const InterleavingVisitor& visit);

/// The program indices that can perform an operation first from `initial`,
/// in ascending order — i.e. the valid first choices of any complete
/// interleaving. Empty iff every program is already finished, in which case
/// the only complete interleaving is the empty one.
Result<std::vector<size_t>> LiveFirstChoices(
    const Database& db, const std::vector<const TransactionProgram*>& programs,
    const DbState& initial);

}  // namespace nse

#endif  // NSE_TXN_INTERLEAVER_H_
