#include "txn/program.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "constraints/evaluator.h"
#include "constraints/parser.h"

namespace nse {

StmtPtr AssignStmt(ItemId target, Term expr) {
  return std::make_shared<const Stmt>(StmtKind::kAssign, target,
                                      std::move(expr), nullptr, StmtBlock{},
                                      StmtBlock{});
}

StmtPtr IfStmt(Formula cond, StmtBlock then_block, StmtBlock else_block) {
  return std::make_shared<const Stmt>(StmtKind::kIf, 0, nullptr,
                                      std::move(cond), std::move(then_block),
                                      std::move(else_block));
}

Result<StmtPtr> MakeAssign(const Database& db, std::string_view item,
                           std::string_view expr_text) {
  NSE_ASSIGN_OR_RETURN(ItemId target, db.Find(item));
  NSE_ASSIGN_OR_RETURN(Term expr, ParseTerm(db, expr_text));
  return AssignStmt(target, std::move(expr));
}

Result<StmtPtr> MakeIf(const Database& db, std::string_view cond_text,
                       StmtBlock then_block, StmtBlock else_block) {
  NSE_ASSIGN_OR_RETURN(Formula cond, ParseFormula(db, cond_text));
  return IfStmt(std::move(cond), std::move(then_block), std::move(else_block));
}

StmtPtr MustAssign(const Database& db, std::string_view item,
                   std::string_view expr_text) {
  auto result = MakeAssign(db, item, expr_text);
  NSE_CHECK_MSG(result.ok(), "MustAssign: %s",
                result.status().ToString().c_str());
  return std::move(result).value();
}

StmtPtr MustIf(const Database& db, std::string_view cond_text,
               StmtBlock then_block, StmtBlock else_block) {
  auto result =
      MakeIf(db, cond_text, std::move(then_block), std::move(else_block));
  NSE_CHECK_MSG(result.ok(), "MustIf: %s", result.status().ToString().c_str());
  return std::move(result).value();
}

namespace {

void PrintBlock(const Database& db, const StmtBlock& block, int indent,
                std::string& out) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  for (const StmtPtr& stmt : block) {
    if (stmt->kind() == StmtKind::kAssign) {
      out += StrCat(pad, db.NameOf(stmt->target()), " := ",
                    TermToString(db, stmt->expr()), ";\n");
    } else {
      out += StrCat(pad, "if (", FormulaToString(db, stmt->cond()),
                    ") then {\n");
      PrintBlock(db, stmt->then_block(), indent + 1, out);
      if (!stmt->else_block().empty()) {
        out += StrCat(pad, "} else {\n");
        PrintBlock(db, stmt->else_block(), indent + 1, out);
      }
      out += StrCat(pad, "}\n");
    }
  }
}

void CollectBlockItems(const StmtBlock& block, DataSet& all, DataSet& writes) {
  for (const StmtPtr& stmt : block) {
    if (stmt->kind() == StmtKind::kAssign) {
      all = DataSet::Union(all, ItemsOf(stmt->expr()));
      all.Insert(stmt->target());
      writes.Insert(stmt->target());
    } else {
      all = DataSet::Union(all, ItemsOf(stmt->cond()));
      CollectBlockItems(stmt->then_block(), all, writes);
      CollectBlockItems(stmt->else_block(), all, writes);
    }
  }
}

}  // namespace

std::string TransactionProgram::ToString(const Database& db) const {
  std::string out = StrCat(name_, ":\n");
  PrintBlock(db, body_, 1, out);
  return out;
}

DataSet ItemsOfBlock(const StmtBlock& block) {
  DataSet all;
  DataSet writes;
  CollectBlockItems(block, all, writes);
  return all;
}

DataSet WriteItemsOfBlock(const StmtBlock& block) {
  DataSet all;
  DataSet writes;
  CollectBlockItems(block, all, writes);
  return writes;
}

void CollectVarsInOrder(const Term& term, std::vector<ItemId>& out) {
  if (term == nullptr) return;
  if (term->kind() == TermKind::kVar) {
    for (ItemId seen : out) {
      if (seen == term->var()) return;
    }
    out.push_back(term->var());
    return;
  }
  for (const Term& arg : term->args()) CollectVarsInOrder(arg, out);
}

void CollectVarsInOrder(const Formula& formula, std::vector<ItemId>& out) {
  if (formula == nullptr) return;
  if (formula->kind() == FormulaKind::kCmp) {
    CollectVarsInOrder(formula->lhs(), out);
    CollectVarsInOrder(formula->rhs(), out);
    return;
  }
  for (const Formula& child : formula->children()) {
    CollectVarsInOrder(child, out);
  }
}

namespace {

/// One replay pass over the program: consumes the recorded history and
/// either completes (program finished) or stops at the first new operation.
class ReplayPass {
 public:
  ReplayPass(const Database& db, const OpSequence& history, TxnId txn)
      : db_(db), history_(history), txn_(txn) {}

  /// The next operation discovered, if any. For writes the value is already
  /// computed; for reads the value must be supplied by the environment.
  struct Pending {
    OpAction action;
    ItemId item;
    Value write_value;  // meaningful for writes only
  };

  /// Runs the pass. On return exactly one holds:
  ///  * error() non-OK — the program is invalid or hit a type error;
  ///  * pending() set — the next operation was found;
  ///  * neither     — the program completed with no new operation.
  void Run(const StmtBlock& body) {
    ExecBlock(body);
    if (!error_.ok() || stopped_) return;
    NSE_CHECK_MSG(pos_ == history_.size(),
                  "replay consumed %zu of %zu recorded ops", pos_,
                  history_.size());
  }

  const Status& error() const { return error_; }
  const std::optional<Pending>& pending() const { return pending_; }

 private:
  // Returns false when execution must unwind (stop or error).
  bool ExecBlock(const StmtBlock& block) {
    for (const StmtPtr& stmt : block) {
      if (!ExecStmt(*stmt)) return false;
    }
    return true;
  }

  bool ExecStmt(const Stmt& stmt) {
    if (stmt.kind() == StmtKind::kAssign) {
      std::optional<Value> value = EvalTermHooked(stmt.expr());
      if (!value.has_value()) return false;
      return PerformWrite(stmt.target(), *value);
    }
    std::optional<bool> cond = EvalFormulaHooked(stmt.cond());
    if (!cond.has_value()) return false;
    return ExecBlock(*cond ? stmt.then_block() : stmt.else_block());
  }

  // Resolves all items of the term (DFS first-occurrence order) and
  // evaluates it. nullopt = stopped or error.
  std::optional<Value> EvalTermHooked(const Term& term) {
    if (!ResolveVars(term)) return std::nullopt;
    auto result = EvalTerm(term, env_);
    if (!result.ok()) {
      error_ = result.status();
      return std::nullopt;
    }
    return *result;
  }

  std::optional<bool> EvalFormulaHooked(const Formula& formula) {
    std::vector<ItemId> vars;
    CollectVarsInOrder(formula, vars);
    for (ItemId item : vars) {
      if (!ResolveItem(item)) return std::nullopt;
    }
    auto result = EvalFormula(formula, env_);
    if (!result.ok()) {
      error_ = result.status();
      return std::nullopt;
    }
    return *result;
  }

  bool ResolveVars(const Term& term) {
    std::vector<ItemId> vars;
    CollectVarsInOrder(term, vars);
    for (ItemId item : vars) {
      if (!ResolveItem(item)) return false;
    }
    return true;
  }

  // Ensures env_ has a value for `item`, emitting/replaying a read op if the
  // transaction has not accessed it yet.
  bool ResolveItem(ItemId item) {
    if (env_.Has(item)) return true;  // already read or written locally
    // This access is the next operation occurrence: a read.
    if (pos_ < history_.size()) {
      const Operation& recorded = history_[pos_];
      NSE_CHECK_MSG(recorded.is_read() && recorded.entity == item,
                    "replay divergence at op %zu of txn %u", pos_, txn_);
      env_.Set(item, recorded.value);
      ++pos_;
      return true;
    }
    pending_ = Pending{OpAction::kRead, item, Value()};
    stopped_ = true;
    return false;
  }

  bool PerformWrite(ItemId item, const Value& value) {
    if (written_.Contains(item)) {
      error_ = Status::FailedPrecondition(
          StrCat("program writes item ", db_.NameOf(item),
                 " more than once (transaction model allows one write)"));
      return false;
    }
    if (pos_ < history_.size()) {
      const Operation& recorded = history_[pos_];
      NSE_CHECK_MSG(recorded.is_write() && recorded.entity == item,
                    "replay divergence at op %zu of txn %u", pos_, txn_);
      NSE_CHECK_MSG(recorded.value == value,
                    "nondeterministic write value at op %zu of txn %u", pos_,
                    txn_);
      ++pos_;
      written_.Insert(item);
      env_.Set(item, value);  // the transaction sees its own writes
      return true;
    }
    pending_ = Pending{OpAction::kWrite, item, value};
    stopped_ = true;
    return false;
  }

  const Database& db_;
  const OpSequence& history_;
  TxnId txn_;
  size_t pos_ = 0;       // ops of history consumed
  DbState env_;          // values visible to the transaction (reads + own writes)
  DataSet written_;      // items written so far
  std::optional<Pending> pending_;
  bool stopped_ = false;
  Status error_;
};

}  // namespace

ProgramExecution::ProgramExecution(const Database* db,
                                   const TransactionProgram* program,
                                   TxnId txn)
    : db_(db), program_(program), txn_(txn) {
  NSE_CHECK(db != nullptr && program != nullptr);
}

Result<std::optional<Operation>> ProgramExecution::Step(
    const ReadEnv& read_env) {
  if (finished_) return std::optional<Operation>();
  ReplayPass pass(*db_, history_, txn_);
  pass.Run(program_->body());
  NSE_RETURN_IF_ERROR(pass.error());
  if (!pass.pending().has_value()) {
    finished_ = true;
    return std::optional<Operation>();
  }
  const auto& pending = *pass.pending();
  Operation op;
  if (pending.action == OpAction::kRead) {
    NSE_ASSIGN_OR_RETURN(Value value, read_env(pending.item));
    op = Operation::Read(txn_, pending.item, std::move(value));
  } else {
    op = Operation::Write(txn_, pending.item, pending.write_value);
  }
  history_.push_back(op);
  return std::optional<Operation>(op);
}

Result<bool> ProgramExecution::ProbeFinished() {
  if (finished_) return true;
  ReplayPass pass(*db_, history_, txn_);
  pass.Run(program_->body());
  NSE_RETURN_IF_ERROR(pass.error());
  if (!pass.pending().has_value()) {
    finished_ = true;
    return true;
  }
  return false;
}

void ProgramExecution::UndoLastOp() {
  NSE_CHECK_MSG(!history_.empty(), "UndoLastOp with no emitted operation");
  history_.pop_back();
  finished_ = false;
}

Result<Transaction> ProgramExecution::Finish() const {
  if (!finished_) {
    return Status::FailedPrecondition(
        StrCat("transaction ", txn_, " has not finished executing"));
  }
  return Transaction(txn_, history_);
}

Result<IsolatedRun> RunInIsolation(const Database& db,
                                   const TransactionProgram& program,
                                   TxnId txn, const DbState& initial) {
  ProgramExecution exec(&db, &program, txn);
  DbState state = initial;
  ReadEnv env = [&state, &db](ItemId item) -> Result<Value> {
    auto value = state.Get(item);
    if (!value.has_value()) {
      return Status::FailedPrecondition(
          StrCat("item ", db.NameOf(item), " unassigned in initial state"));
    }
    return *value;
  };
  while (true) {
    NSE_ASSIGN_OR_RETURN(std::optional<Operation> op, exec.Step(env));
    if (!op.has_value()) break;
    if (op->is_write()) state.Set(op->entity, op->value);
  }
  NSE_ASSIGN_OR_RETURN(Transaction txn_result, exec.Finish());
  return IsolatedRun{std::move(txn_result), std::move(state)};
}

}  // namespace nse
