// Operation: the paper's 3-tuple (action, entity, value) (§2.2), tagged with
// the transaction it belongs to. Read operations carry the value returned;
// write operations carry the value assigned — the value attribute is what
// lets this library reason about non-serializable executions semantically.

#ifndef NSE_TXN_OPERATION_H_
#define NSE_TXN_OPERATION_H_

#include <cstdint>
#include <string>

#include "state/database.h"
#include "state/value.h"

namespace nse {

/// Identifier of a transaction within one schedule (1-based in rendering,
/// matching the paper's T1, T2, ... convention).
using TxnId = uint32_t;

/// Operation type: read or write.
enum class OpAction { kRead, kWrite };

/// "r" or "w".
const char* OpActionName(OpAction action);

/// One read or write operation with its observed/assigned value.
struct Operation {
  OpAction action = OpAction::kRead;
  ItemId entity = 0;
  Value value;
  TxnId txn = 0;

  /// Builds a read operation r_txn(entity, value).
  static Operation Read(TxnId txn, ItemId entity, Value value) {
    return Operation{OpAction::kRead, entity, std::move(value), txn};
  }
  /// Builds a write operation w_txn(entity, value).
  static Operation Write(TxnId txn, ItemId entity, Value value) {
    return Operation{OpAction::kWrite, entity, std::move(value), txn};
  }

  /// True iff this is a read.
  bool is_read() const { return action == OpAction::kRead; }
  /// True iff this is a write.
  bool is_write() const { return action == OpAction::kWrite; }

  /// Renders e.g. "r1(a, 0)" using catalog names and 1-based txn ids.
  std::string ToString(const Database& db) const;

  friend bool operator==(const Operation& a, const Operation& b) {
    return a.action == b.action && a.entity == b.entity && a.value == b.value &&
           a.txn == b.txn;
  }
};

/// True iff the two operations conflict: same entity, different transactions,
/// and at least one is a write.
bool Conflicts(const Operation& a, const Operation& b);

/// The structural part of an operation — the paper's struct() drops values.
struct OpStruct {
  OpAction action = OpAction::kRead;
  ItemId entity = 0;

  friend bool operator==(const OpStruct& a, const OpStruct& b) {
    return a.action == b.action && a.entity == b.entity;
  }
};

/// struct(o): the operation with its value erased.
inline OpStruct StructOf(const Operation& op) {
  return OpStruct{op.action, op.entity};
}

}  // namespace nse

#endif  // NSE_TXN_OPERATION_H_
