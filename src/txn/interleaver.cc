#include "txn/interleaver.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace nse {

namespace {

/// Shared execution context: live state + one stepper per program.
struct Arena {
  DbState state;
  std::vector<ProgramExecution> execs;
  OpSequence ops;

  Arena(const Database& db,
        const std::vector<const TransactionProgram*>& programs,
        const DbState& initial)
      : state(initial) {
    execs.reserve(programs.size());
    for (size_t i = 0; i < programs.size(); ++i) {
      execs.emplace_back(&db, programs[i],
                         static_cast<TxnId>(i + 1));  // 1-based ids
    }
  }

  /// True iff no program has a remaining operation (probes by replay).
  Result<bool> ProbeAllFinished() {
    for (auto& exec : execs) {
      NSE_ASSIGN_OR_RETURN(bool done, exec.ProbeFinished());
      if (!done) return false;
    }
    return true;
  }

  /// Steps program `index`; appends the op and applies writes.
  /// Returns true if an op was performed, false if the program was finished.
  Result<bool> StepOne(const Database& db, size_t index) {
    ProgramExecution& exec = execs[index];
    ReadEnv env = [this, &db](ItemId item) -> Result<Value> {
      auto value = state.Get(item);
      if (!value.has_value()) {
        return Status::FailedPrecondition(
            StrCat("item ", db.NameOf(item),
                   " is unassigned in the shared state"));
      }
      return *value;
    };
    NSE_ASSIGN_OR_RETURN(std::optional<Operation> op, exec.Step(env));
    if (!op.has_value()) return false;
    if (op->is_write()) state.Set(op->entity, op->value);
    ops.push_back(*op);
    return true;
  }
};

}  // namespace

Result<InterleaveResult> Interleave(
    const Database& db, const std::vector<const TransactionProgram*>& programs,
    const DbState& initial, const std::vector<size_t>& choices,
    bool require_complete) {
  Arena arena(db, programs, initial);
  for (size_t k = 0; k < choices.size(); ++k) {
    size_t index = choices[k];
    if (index >= programs.size()) {
      return Status::InvalidArgument(
          StrCat("choice ", k, " names program ", index, " of ",
                 programs.size()));
    }
    NSE_ASSIGN_OR_RETURN(bool stepped, arena.StepOne(db, index));
    if (!stepped) {
      return Status::InvalidArgument(
          StrCat("choice ", k, " names finished program ", index));
    }
  }
  NSE_ASSIGN_OR_RETURN(bool complete, arena.ProbeAllFinished());
  if (require_complete && !complete) {
    return Status::FailedPrecondition(
        "choice sequence does not run every program to completion");
  }
  return InterleaveResult{Schedule(std::move(arena.ops)),
                          std::move(arena.state), complete};
}

Result<InterleaveResult> ExecuteSerially(
    const Database& db, const std::vector<const TransactionProgram*>& programs,
    const DbState& initial, const std::vector<size_t>& order) {
  if (order.size() != programs.size()) {
    return Status::InvalidArgument("order must list every program once");
  }
  Arena arena(db, programs, initial);
  for (size_t index : order) {
    if (index >= programs.size()) {
      return Status::InvalidArgument(StrCat("bad program index ", index));
    }
    while (true) {
      NSE_ASSIGN_OR_RETURN(bool stepped, arena.StepOne(db, index));
      if (!stepped) break;
    }
  }
  NSE_ASSIGN_OR_RETURN(bool complete, arena.ProbeAllFinished());
  NSE_CHECK(complete);
  return InterleaveResult{Schedule(std::move(arena.ops)),
                          std::move(arena.state), true};
}

Result<std::vector<size_t>> RandomChoices(
    const Database& db, const std::vector<const TransactionProgram*>& programs,
    const DbState& initial, Rng& rng) {
  Arena arena(db, programs, initial);
  std::vector<size_t> choices;
  while (true) {
    std::vector<size_t> live;
    for (size_t i = 0; i < arena.execs.size(); ++i) {
      NSE_ASSIGN_OR_RETURN(bool done, arena.execs[i].ProbeFinished());
      if (!done) live.push_back(i);
    }
    if (live.empty()) break;
    size_t index = live[rng.NextBelow(live.size())];
    NSE_ASSIGN_OR_RETURN(bool stepped, arena.StepOne(db, index));
    NSE_CHECK(stepped);
    choices.push_back(index);
  }
  return choices;
}

Result<std::vector<size_t>> NearSerialChoices(
    const Database& db, const std::vector<const TransactionProgram*>& programs,
    const DbState& initial, Rng& rng, size_t swaps) {
  std::vector<size_t> order(programs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);

  Arena arena(db, programs, initial);
  std::vector<size_t> choices;
  for (size_t index : order) {
    while (true) {
      NSE_ASSIGN_OR_RETURN(bool stepped, arena.StepOne(db, index));
      if (!stepped) break;
      choices.push_back(index);
    }
  }
  if (choices.size() < 2) return choices;
  for (size_t s = 0; s < swaps; ++s) {
    size_t i = rng.NextBelow(choices.size() - 1);
    if (choices[i] != choices[i + 1]) std::swap(choices[i], choices[i + 1]);
  }
  return choices;
}

namespace {

Status EnumerateRec(const Database& db,
                    const std::vector<const TransactionProgram*>& programs,
                    const DbState& initial, std::vector<size_t>& prefix,
                    uint64_t limit, uint64_t& visited, bool& stop,
                    bool& truncated, const InterleavingVisitor& visit) {
  if (stop) return Status::Ok();
  if (visited >= limit) {
    // Reached only when unexplored work remains (callers recurse solely
    // below the limit): the limit — not the visitor — ended the search.
    truncated = true;
    return Status::Ok();
  }
  // Replay the prefix. O(depth^2) per path, fine for the tiny scenarios
  // exhaustive enumeration targets.
  Arena arena(db, programs, initial);
  for (size_t index : prefix) {
    NSE_ASSIGN_OR_RETURN(bool stepped, arena.StepOne(db, index));
    NSE_CHECK(stepped);
  }
  NSE_ASSIGN_OR_RETURN(bool all_done, arena.ProbeAllFinished());
  if (all_done) {
    ++visited;
    InterleaveResult result{Schedule(arena.ops), arena.state, true};
    if (!visit(result, prefix)) stop = true;
    return Status::Ok();
  }
  for (size_t i = 0; i < programs.size(); ++i) {
    if (stop) break;
    NSE_ASSIGN_OR_RETURN(bool done, arena.execs[i].ProbeFinished());
    if (done) continue;
    if (visited >= limit) {
      // An unfinished program means at least one more complete interleaving
      // exists along this branch.
      truncated = true;
      break;
    }
    prefix.push_back(i);
    NSE_RETURN_IF_ERROR(EnumerateRec(db, programs, initial, prefix, limit,
                                     visited, stop, truncated, visit));
    prefix.pop_back();
  }
  return Status::Ok();
}

}  // namespace

Result<EnumerationOutcome> EnumerateInterleavings(
    const Database& db, const std::vector<const TransactionProgram*>& programs,
    const DbState& initial, uint64_t limit, const InterleavingVisitor& visit) {
  std::vector<size_t> prefix;
  EnumerationOutcome outcome;
  bool stop = false;
  bool truncated = false;
  NSE_RETURN_IF_ERROR(EnumerateRec(db, programs, initial, prefix, limit,
                                   outcome.visited, stop, truncated, visit));
  outcome.exhausted = !truncated;
  return outcome;
}

}  // namespace nse
