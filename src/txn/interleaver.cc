#include "txn/interleaver.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace nse {

namespace {

/// Shared execution context: live state + one stepper per program.
struct Arena {
  DbState state;
  std::vector<ProgramExecution> execs;
  OpSequence ops;

  Arena(const Database& db,
        const std::vector<const TransactionProgram*>& programs,
        const DbState& initial)
      : state(initial) {
    execs.reserve(programs.size());
    for (size_t i = 0; i < programs.size(); ++i) {
      execs.emplace_back(&db, programs[i],
                         static_cast<TxnId>(i + 1));  // 1-based ids
    }
  }

  /// True iff no program has a remaining operation (probes by replay).
  Result<bool> ProbeAllFinished() {
    for (auto& exec : execs) {
      NSE_ASSIGN_OR_RETURN(bool done, exec.ProbeFinished());
      if (!done) return false;
    }
    return true;
  }

  /// Steps program `index`; appends the op and applies writes.
  /// Returns true if an op was performed, false if the program was finished.
  Result<bool> StepOne(const Database& db, size_t index) {
    StepUndo ignored;
    return StepOneUndoable(db, index, ignored);
  }

  /// What UndoStep needs to rewind one performed operation.
  struct StepUndo {
    size_t index = 0;               ///< program that stepped
    bool wrote = false;             ///< whether the op was a write
    ItemId entity = 0;              ///< written item (wrote only)
    std::optional<Value> old_value; ///< its prior binding (wrote only)
  };

  /// StepOne recording enough to rewind: the DFS enumerator steps into a
  /// child, recurses, and undoes, so the whole choice tree is walked with
  /// one persistent arena instead of a fresh prefix replay per node.
  Result<bool> StepOneUndoable(const Database& db, size_t index,
                               StepUndo& undo) {
    ProgramExecution& exec = execs[index];
    ReadEnv env = [this, &db](ItemId item) -> Result<Value> {
      auto value = state.Get(item);
      if (!value.has_value()) {
        return Status::FailedPrecondition(
            StrCat("item ", db.NameOf(item),
                   " is unassigned in the shared state"));
      }
      return *value;
    };
    NSE_ASSIGN_OR_RETURN(std::optional<Operation> op, exec.Step(env));
    if (!op.has_value()) return false;
    undo.index = index;
    undo.wrote = op->is_write();
    if (undo.wrote) {
      undo.entity = op->entity;
      undo.old_value = state.Get(op->entity);
      state.Set(op->entity, op->value);
    }
    ops.push_back(*op);
    return true;
  }

  /// Rewinds the step recorded in `undo` (strictly LIFO).
  void UndoStep(const StepUndo& undo) {
    ops.pop_back();
    if (undo.wrote) {
      if (undo.old_value.has_value()) {
        state.Set(undo.entity, *undo.old_value);
      } else {
        state.Unset(undo.entity);
      }
    }
    execs[undo.index].UndoLastOp();
  }
};

}  // namespace

Result<InterleaveResult> Interleave(
    const Database& db, const std::vector<const TransactionProgram*>& programs,
    const DbState& initial, const std::vector<size_t>& choices,
    bool require_complete) {
  Arena arena(db, programs, initial);
  for (size_t k = 0; k < choices.size(); ++k) {
    size_t index = choices[k];
    if (index >= programs.size()) {
      return Status::InvalidArgument(
          StrCat("choice ", k, " names program ", index, " of ",
                 programs.size()));
    }
    NSE_ASSIGN_OR_RETURN(bool stepped, arena.StepOne(db, index));
    if (!stepped) {
      return Status::InvalidArgument(
          StrCat("choice ", k, " names finished program ", index));
    }
  }
  NSE_ASSIGN_OR_RETURN(bool complete, arena.ProbeAllFinished());
  if (require_complete && !complete) {
    return Status::FailedPrecondition(
        "choice sequence does not run every program to completion");
  }
  return InterleaveResult{Schedule(std::move(arena.ops)),
                          std::move(arena.state), complete};
}

Result<InterleaveResult> ExecuteSerially(
    const Database& db, const std::vector<const TransactionProgram*>& programs,
    const DbState& initial, const std::vector<size_t>& order) {
  if (order.size() != programs.size()) {
    return Status::InvalidArgument("order must list every program once");
  }
  Arena arena(db, programs, initial);
  for (size_t index : order) {
    if (index >= programs.size()) {
      return Status::InvalidArgument(StrCat("bad program index ", index));
    }
    while (true) {
      NSE_ASSIGN_OR_RETURN(bool stepped, arena.StepOne(db, index));
      if (!stepped) break;
    }
  }
  NSE_ASSIGN_OR_RETURN(bool complete, arena.ProbeAllFinished());
  NSE_CHECK(complete);
  return InterleaveResult{Schedule(std::move(arena.ops)),
                          std::move(arena.state), true};
}

Result<std::vector<size_t>> RandomChoices(
    const Database& db, const std::vector<const TransactionProgram*>& programs,
    const DbState& initial, Rng& rng) {
  Arena arena(db, programs, initial);
  std::vector<size_t> choices;
  while (true) {
    std::vector<size_t> live;
    for (size_t i = 0; i < arena.execs.size(); ++i) {
      NSE_ASSIGN_OR_RETURN(bool done, arena.execs[i].ProbeFinished());
      if (!done) live.push_back(i);
    }
    if (live.empty()) break;
    size_t index = live[rng.NextBelow(live.size())];
    NSE_ASSIGN_OR_RETURN(bool stepped, arena.StepOne(db, index));
    NSE_CHECK(stepped);
    choices.push_back(index);
  }
  return choices;
}

Result<std::vector<size_t>> NearSerialChoices(
    const Database& db, const std::vector<const TransactionProgram*>& programs,
    const DbState& initial, Rng& rng, size_t swaps) {
  std::vector<size_t> order(programs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);

  Arena arena(db, programs, initial);
  std::vector<size_t> choices;
  for (size_t index : order) {
    while (true) {
      NSE_ASSIGN_OR_RETURN(bool stepped, arena.StepOne(db, index));
      if (!stepped) break;
      choices.push_back(index);
    }
  }
  if (choices.size() < 2) return choices;
  for (size_t s = 0; s < swaps; ++s) {
    size_t i = rng.NextBelow(choices.size() - 1);
    if (choices[i] != choices[i + 1]) std::swap(choices[i], choices[i + 1]);
  }
  return choices;
}

namespace {

/// Incremental DFS over the choice tree: one persistent Arena, stepping
/// into a child and rewinding on the way back (StepOneUndoable/UndoStep),
/// so each tree edge costs one program step instead of a full prefix
/// replay. Liveness is discovered by *attempting* the step — a program is
/// finished exactly when Step yields nothing — which also replaces the
/// per-node ProbeAllFinished pass: a node is a leaf iff no child stepped.
/// Visit order, visited counts, and the truncated flag are identical to
/// EnumerateRecReference (differential-fuzzed in interleaver_test.cc).
Status EnumerateRec(const Database& db, Arena& arena,
                    std::vector<size_t>& prefix, uint64_t limit,
                    uint64_t& visited, bool& stop, bool& truncated,
                    const InterleavingVisitor& visit) {
  if (stop) return Status::Ok();
  if (visited >= limit) {
    // Reached only when unexplored work remains (callers recurse solely
    // below the limit): the limit — not the visitor — ended the search.
    truncated = true;
    return Status::Ok();
  }
  bool any_live = false;
  for (size_t i = 0; i < arena.execs.size(); ++i) {
    if (stop) break;
    Arena::StepUndo undo;
    NSE_ASSIGN_OR_RETURN(bool stepped, arena.StepOneUndoable(db, i, undo));
    if (!stepped) continue;
    any_live = true;
    if (visited >= limit) {
      // An unfinished program means at least one more complete interleaving
      // exists along this branch.
      arena.UndoStep(undo);
      truncated = true;
      break;
    }
    prefix.push_back(i);
    Status status = EnumerateRec(db, arena, prefix, limit, visited, stop,
                                 truncated, visit);
    prefix.pop_back();
    arena.UndoStep(undo);
    NSE_RETURN_IF_ERROR(status);
  }
  if (!any_live) {
    ++visited;
    InterleaveResult result{Schedule(arena.ops), arena.state, true};
    if (!visit(result, prefix)) stop = true;
  }
  return Status::Ok();
}

/// The original enumeration: a fresh Arena + full prefix replay at every
/// node, O(depth^2) program steps per path. Kept as the differential
/// reference for EnumerateRec and as the sequential baseline the
/// bench_violation_search exhaustive speedups are measured against.
Status EnumerateRecReference(
    const Database& db, const std::vector<const TransactionProgram*>& programs,
    const DbState& initial, std::vector<size_t>& prefix, uint64_t limit,
    uint64_t& visited, bool& stop, bool& truncated,
    const InterleavingVisitor& visit) {
  if (stop) return Status::Ok();
  if (visited >= limit) {
    truncated = true;
    return Status::Ok();
  }
  Arena arena(db, programs, initial);
  for (size_t index : prefix) {
    NSE_ASSIGN_OR_RETURN(bool stepped, arena.StepOne(db, index));
    NSE_CHECK(stepped);
  }
  NSE_ASSIGN_OR_RETURN(bool all_done, arena.ProbeAllFinished());
  if (all_done) {
    ++visited;
    InterleaveResult result{Schedule(arena.ops), arena.state, true};
    if (!visit(result, prefix)) stop = true;
    return Status::Ok();
  }
  for (size_t i = 0; i < programs.size(); ++i) {
    if (stop) break;
    NSE_ASSIGN_OR_RETURN(bool done, arena.execs[i].ProbeFinished());
    if (done) continue;
    if (visited >= limit) {
      truncated = true;
      break;
    }
    prefix.push_back(i);
    NSE_RETURN_IF_ERROR(EnumerateRecReference(db, programs, initial, prefix,
                                              limit, visited, stop, truncated,
                                              visit));
    prefix.pop_back();
  }
  return Status::Ok();
}

/// Shared driver: seeds the arena with `prefix` (pinning the subtree; the
/// recursion pushes/pops strictly above the seed) and runs the incremental
/// enumeration.
Result<EnumerationOutcome> EnumerateFromImpl(
    const Database& db, const std::vector<const TransactionProgram*>& programs,
    const DbState& initial, const std::vector<size_t>& prefix, uint64_t limit,
    const InterleavingVisitor& visit) {
  Arena arena(db, programs, initial);
  for (size_t index : prefix) {
    NSE_ASSIGN_OR_RETURN(bool stepped, arena.StepOne(db, index));
    NSE_CHECK(stepped);
  }
  std::vector<size_t> seeded = prefix;
  EnumerationOutcome outcome;
  bool stop = false;
  bool truncated = false;
  NSE_RETURN_IF_ERROR(EnumerateRec(db, arena, seeded, limit, outcome.visited,
                                   stop, truncated, visit));
  outcome.exhausted = !truncated;
  return outcome;
}

}  // namespace

Result<EnumerationOutcome> EnumerateInterleavings(
    const Database& db, const std::vector<const TransactionProgram*>& programs,
    const DbState& initial, uint64_t limit, const InterleavingVisitor& visit) {
  return EnumerateFromImpl(db, programs, initial, {}, limit, visit);
}

Result<EnumerationOutcome> EnumerateInterleavingsFrom(
    const Database& db, const std::vector<const TransactionProgram*>& programs,
    const DbState& initial, const std::vector<size_t>& prefix, uint64_t limit,
    const InterleavingVisitor& visit) {
  return EnumerateFromImpl(db, programs, initial, prefix, limit, visit);
}

Result<EnumerationOutcome> EnumerateInterleavingsFromReference(
    const Database& db, const std::vector<const TransactionProgram*>& programs,
    const DbState& initial, const std::vector<size_t>& prefix, uint64_t limit,
    const InterleavingVisitor& visit) {
  std::vector<size_t> seeded = prefix;
  EnumerationOutcome outcome;
  bool stop = false;
  bool truncated = false;
  NSE_RETURN_IF_ERROR(EnumerateRecReference(db, programs, initial, seeded,
                                            limit, outcome.visited, stop,
                                            truncated, visit));
  outcome.exhausted = !truncated;
  return outcome;
}

Result<std::vector<size_t>> LiveFirstChoices(
    const Database& db, const std::vector<const TransactionProgram*>& programs,
    const DbState& initial) {
  Arena arena(db, programs, initial);
  std::vector<size_t> live;
  for (size_t i = 0; i < arena.execs.size(); ++i) {
    NSE_ASSIGN_OR_RETURN(bool done, arena.execs[i].ProbeFinished());
    if (!done) live.push_back(i);
  }
  return live;
}

}  // namespace nse
