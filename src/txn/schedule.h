// Schedule: a finite set of transactions plus a total order on all their
// operations (§2.2). Operations are addressed by their position (index) in
// the schedule; depth(p, S) is exactly that index.
//
// Includes the paper's slicing operators before(seq, p, S) / after(seq, p, S)
// for seq = a transaction of S or S itself, projections S^d, and execution
// semantics [DS1] S [DS2].

#ifndef NSE_TXN_SCHEDULE_H_
#define NSE_TXN_SCHEDULE_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "state/database.h"
#include "state/db_state.h"
#include "txn/transaction.h"

namespace nse {

/// Result of executing a schedule from an initial state.
struct ExecutionResult {
  /// The final database state DS2 (initial state overridden by writes).
  DbState final_state;
  /// Positions of read operations whose recorded value differs from the
  /// value actually visible at that point of the execution. Empty iff the
  /// schedule is an execution from the given initial state.
  std::vector<size_t> read_mismatches;

  /// True iff every read saw exactly its recorded value.
  bool reads_consistent() const { return read_mismatches.empty(); }
};

struct ScheduleProjection;

/// An ordered sequence of operations from a set of transactions.
class Schedule {
 public:
  Schedule() = default;

  /// Wraps `ops` as a schedule. Transaction membership is derived from the
  /// operations' txn fields.
  explicit Schedule(OpSequence ops);

  /// Like the constructor but additionally validates that every derived
  /// transaction obeys the access discipline of §2.2.
  static Result<Schedule> FromOps(OpSequence ops);

  /// The operations in schedule order.
  const OpSequence& ops() const { return ops_; }

  /// Number of operations.
  size_t size() const { return ops_.size(); }
  /// True iff the schedule has no operations.
  bool empty() const { return ops_.empty(); }

  /// The operation at position `p` (aborts if out of range).
  const Operation& at(size_t p) const;

  /// depth(p, S): number of operations preceding position p — i.e. p itself.
  size_t depth(size_t p) const { return p; }

  /// Distinct transaction ids, ascending.
  const std::vector<TxnId>& txn_ids() const { return txn_ids_; }

  /// The transaction with id `txn` (empty transaction if absent).
  Transaction TransactionOf(TxnId txn) const;

  /// All transactions, in txn-id order.
  std::vector<Transaction> Transactions() const;

  /// S^d: the schedule restricted to operations on items in d.
  Schedule Project(const DataSet& d) const;

  /// S^d together with the original position of each projected operation —
  /// the handle analysis layers use to map witnesses found in a projection
  /// back to positions of the full schedule.
  ScheduleProjection ProjectWithPositions(const DataSet& d) const;

  /// before(T_txn, p, S): operations of transaction `txn` strictly before
  /// position p, plus the operation at p itself when it belongs to `txn`.
  OpSequence BeforeOfTxn(TxnId txn, size_t p) const;

  /// after(T_txn, p, S): operations of `txn` not in before(T_txn, p, S).
  OpSequence AfterOfTxn(TxnId txn, size_t p) const;

  /// before(S, p, S): prefix of the schedule through position p.
  OpSequence BeforeAll(size_t p) const;

  /// Position of the last operation of `txn`, or nullopt if absent.
  std::optional<size_t> LastOpIndexOf(TxnId txn) const;

  /// True iff transaction `txn` has no operation after position p — the
  /// paper's "after(T, p, S) = ε" (transaction completed by p).
  bool CompletedBy(TxnId txn, size_t p) const;

  /// Executes the schedule from `initial`: writes override the state in
  /// order; each read is checked against the visible value and mismatches
  /// are reported (a mismatch means S is not an execution from `initial`).
  /// Fails if a read references an item unassigned in `initial`.
  Result<ExecutionResult> Execute(const DbState& initial) const;

  /// The constraints `initial` must satisfy for S to be executable from it:
  /// for each item, its first operation in S pins the item's initial value
  /// if that operation is a read (writes leave it free).
  DbState PinnedInitialReads() const;

  /// write(S): the cumulative effect of the schedule's writes (last write
  /// per item wins).
  DbState WriteMap() const { return WriteMapOf(ops_); }

  /// Items accessed anywhere in the schedule.
  DataSet AccessedItems() const;

  /// Renders "r1(a, 0), w2(d, 0), ..." using catalog names.
  std::string ToString(const Database& db) const;

 private:
  OpSequence ops_;
  std::vector<TxnId> txn_ids_;
  /// Position of the last operation of txn_ids_[k], parallel to txn_ids_;
  /// precomputed so CompletedBy / LastOpIndexOf avoid a full scan.
  std::vector<size_t> last_op_index_;
};

/// A projection handle: S^d plus where each projected operation sits in S.
struct ScheduleProjection {
  Schedule schedule;                     ///< the projected schedule S^d
  std::vector<size_t> source_positions;  ///< projected index → position in S
};

/// Fluent construction of schedules for tests and examples:
///   ScheduleBuilder b(db);
///   b.R(1, "a", 0).W(2, "d", 0).R(1, "c", 5).W(1, "b", 5);
///   Schedule s = b.Build();
class ScheduleBuilder {
 public:
  explicit ScheduleBuilder(const Database& db) : db_(db) {}

  /// Appends r_txn(item, value).
  ScheduleBuilder& R(TxnId txn, std::string_view item, Value value);
  /// Appends w_txn(item, value).
  ScheduleBuilder& W(TxnId txn, std::string_view item, Value value);

  /// Finishes construction.
  Schedule Build() const { return Schedule(ops_); }

 private:
  const Database& db_;
  OpSequence ops_;
};

}  // namespace nse

#endif  // NSE_TXN_SCHEDULE_H_
