// Transaction programs (§2.2): high-level programs whose execution from a
// database state produces a transaction. The language has assignments and
// if-then-else over the constraint expression language:
//
//   stmt := item ':=' term | if (formula) then stmts [else stmts]
//
// Evaluation semantics (fixed so that struct() is well-defined):
//  * Evaluating a term or condition reads, in depth-first left-to-right
//    order, every data item occurring in it that the transaction has not
//    already read or written; each such first access emits a read operation
//    carrying the value seen.
//  * Re-reads are served from the transaction's cache (a transaction reads
//    each item at most once and never reads an item after writing it).
//  * An assignment emits one write operation; writing an item twice violates
//    the transaction model and is reported as an error.
//
// ProgramExecution steps a program one *operation* at a time against an
// arbitrary environment, which is what the interleaver uses to build
// concurrent schedules with value attributes.

#ifndef NSE_TXN_PROGRAM_H_
#define NSE_TXN_PROGRAM_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "constraints/ast.h"
#include "state/db_state.h"
#include "txn/schedule.h"

namespace nse {

class Stmt;
/// Shared immutable statement handle.
using StmtPtr = std::shared_ptr<const Stmt>;
/// A statement block.
using StmtBlock = std::vector<StmtPtr>;

/// Statement node kinds.
enum class StmtKind { kAssign, kIf };

/// One statement of a transaction program.
class Stmt {
 public:
  Stmt(StmtKind kind, ItemId target, Term expr, Formula cond,
       StmtBlock then_block, StmtBlock else_block)
      : kind_(kind),
        target_(target),
        expr_(std::move(expr)),
        cond_(std::move(cond)),
        then_block_(std::move(then_block)),
        else_block_(std::move(else_block)) {}

  /// The node kind.
  StmtKind kind() const { return kind_; }
  /// Assignment target (kAssign only).
  ItemId target() const { return target_; }
  /// Assignment expression (kAssign only).
  const Term& expr() const { return expr_; }
  /// Branch condition (kIf only).
  const Formula& cond() const { return cond_; }
  /// Then-branch (kIf only).
  const StmtBlock& then_block() const { return then_block_; }
  /// Else-branch (kIf only; may be empty).
  const StmtBlock& else_block() const { return else_block_; }

 private:
  StmtKind kind_;
  ItemId target_;
  Term expr_;
  Formula cond_;
  StmtBlock then_block_;
  StmtBlock else_block_;
};

/// item := expr.
StmtPtr AssignStmt(ItemId target, Term expr);
/// if (cond) then then_block else else_block.
StmtPtr IfStmt(Formula cond, StmtBlock then_block, StmtBlock else_block = {});

/// item := expr with the item and expression given textually.
Result<StmtPtr> MakeAssign(const Database& db, std::string_view item,
                           std::string_view expr_text);
/// if (cond_text) then ... else ... with a textual condition.
Result<StmtPtr> MakeIf(const Database& db, std::string_view cond_text,
                       StmtBlock then_block, StmtBlock else_block = {});

/// Abort-on-error variants for tests and examples.
StmtPtr MustAssign(const Database& db, std::string_view item,
                   std::string_view expr_text);
StmtPtr MustIf(const Database& db, std::string_view cond_text,
               StmtBlock then_block, StmtBlock else_block = {});

/// A named transaction program TP_i.
class TransactionProgram {
 public:
  TransactionProgram() = default;
  /// Builds a program from a statement block.
  TransactionProgram(std::string name, StmtBlock body)
      : name_(std::move(name)), body_(std::move(body)) {}

  /// The program's name (e.g. "TP1").
  const std::string& name() const { return name_; }
  /// The top-level statements.
  const StmtBlock& body() const { return body_; }

  /// Pretty-prints the program source.
  std::string ToString(const Database& db) const;

 private:
  std::string name_;
  StmtBlock body_;
};

/// Data items occurring in `block` (reads and writes, all paths).
DataSet ItemsOfBlock(const StmtBlock& block);

/// Items possibly written by `block` on some path.
DataSet WriteItemsOfBlock(const StmtBlock& block);

/// Collects the data items of a term/formula in depth-first left-to-right
/// *first-occurrence* order — the order program evaluation reads them.
void CollectVarsInOrder(const Term& term, std::vector<ItemId>& out);
void CollectVarsInOrder(const Formula& formula, std::vector<ItemId>& out);

/// Supplies the value of an item visible to a transaction at this moment of
/// the concurrent execution (typically: the shared database state).
using ReadEnv = std::function<Result<Value>(ItemId)>;

/// Step-wise execution of one program as one transaction.
///
/// The stepper re-interprets the program from its recorded operation history
/// on every Step (oracle replay): deterministic evaluation makes the replay
/// reach exactly the next operation, which is then performed against the
/// environment. This keeps the interpreter simple while letting a scheduler
/// interleave transactions at operation granularity.
class ProgramExecution {
 public:
  /// Prepares an execution of `program` as transaction `txn`.
  ProgramExecution(const Database* db, const TransactionProgram* program,
                   TxnId txn);

  /// True iff the program has emitted all its operations.
  bool finished() const { return finished_; }

  /// The transaction id.
  TxnId txn() const { return txn_; }

  /// The program being executed.
  const TransactionProgram& program() const { return *program_; }

  /// Operations emitted so far (the transaction prefix).
  const OpSequence& history() const { return history_; }

  /// Performs the next operation. If it is a read, `read_env` supplies the
  /// visible value. The returned operation has been appended to history();
  /// for a write the *caller* must apply it to the shared state. Returns
  /// nullopt when the program is finished.
  Result<std::optional<Operation>> Step(const ReadEnv& read_env);

  /// True iff no operations remain. Decides by replay without performing
  /// anything; latches finished() when the program turns out to be complete.
  Result<bool> ProbeFinished();

  /// Rewinds the most recent Step: drops the last emitted operation and
  /// clears the finished latch (the next replay re-derives it). Because the
  /// stepper re-interprets from history(), this is a complete undo. The
  /// exhaustive enumerator uses it to walk the choice tree with one
  /// persistent stepper per program instead of replaying every prefix.
  /// Aborts if no operation has been emitted.
  void UndoLastOp();

  /// The completed transaction; FailedPrecondition if not finished.
  Result<Transaction> Finish() const;

 private:
  const Database* db_;
  const TransactionProgram* program_;
  TxnId txn_;
  OpSequence history_;
  bool finished_ = false;
};

/// A full isolated run of a program: [DS1] TP_i [DS2].
struct IsolatedRun {
  Transaction txn;      ///< the transaction produced
  DbState final_state;  ///< DS2
};

/// Executes `program` in isolation from `initial` (which must assign every
/// item the program may read).
Result<IsolatedRun> RunInIsolation(const Database& db,
                                   const TransactionProgram& program,
                                   TxnId txn, const DbState& initial);

}  // namespace nse

#endif  // NSE_TXN_PROGRAM_H_
