// Umbrella header for the nse library — everything needed to model,
// execute, and certify non-serializable executions per Rastogi et al.,
// "On Correctness of Non-serializable Executions" (PODS '93 / JCSS '98).
//
// Typical flow:
//   1. Describe the database (Database, Domain) and the integrity
//      constraint (IntegrityConstraint::Parse).
//   2. Write transaction programs (TransactionProgram, MustAssign/MustIf)
//      or raw schedules (ScheduleBuilder).
//   3. Execute concurrently (Interleave / RunSimulation with a
//      SchedulerPolicy) to obtain value-carrying schedules.
//   4. Certify: CheckPwsr, IsDelayedRead, DataAccessGraph, AnalyzeStructure,
//      Certify (Theorems 1–3), CheckExecution (Definition 1).

#ifndef NSE_NSE_H_
#define NSE_NSE_H_

#include "analysis/access_graph.h"
#include "analysis/analysis_context.h"
#include "analysis/checker.h"
#include "analysis/conflict_graph.h"
#include "analysis/delayed_read.h"
#include "analysis/fixed_structure.h"
#include "analysis/pwsr.h"
#include "analysis/reads_from.h"
#include "analysis/serializability.h"
#include "analysis/strong_correctness.h"
#include "analysis/theorems.h"
#include "analysis/txn_state.h"
#include "analysis/view_set.h"
#include "analysis/violation_search.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "constraints/ast.h"
#include "constraints/evaluator.h"
#include "constraints/integrity_constraint.h"
#include "constraints/parser.h"
#include "constraints/solver.h"
#include "scheduler/dr_scheduler.h"
#include "scheduler/lock_manager.h"
#include "scheduler/metrics.h"
#include "scheduler/pw_two_phase_locking.h"
#include "scheduler/scheduler.h"
#include "scheduler/sim.h"
#include "scheduler/two_phase_locking.h"
#include "scheduler/waits_for.h"
#include "scheduler/workload.h"
#include "state/database.h"
#include "state/db_state.h"
#include "state/domain.h"
#include "state/value.h"
#include "txn/interleaver.h"
#include "txn/operation.h"
#include "txn/program.h"
#include "txn/schedule.h"
#include "txn/transaction.h"

#endif  // NSE_NSE_H_
