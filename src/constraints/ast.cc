#include "constraints/ast.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace nse {

namespace {

Term MakeTerm(TermKind kind, Value constant, ItemId var,
              std::vector<Term> args) {
  return std::make_shared<const TermNode>(kind, std::move(constant), var,
                                          std::move(args));
}

Formula MakeFormula(FormulaKind kind, CmpOp cmp, Term lhs, Term rhs,
                    std::vector<Formula> children) {
  return std::make_shared<const FormulaNode>(kind, cmp, std::move(lhs),
                                             std::move(rhs),
                                             std::move(children));
}

void CollectItems(const Term& term, DataSet& out) {
  if (term == nullptr) return;
  if (term->kind() == TermKind::kVar) out.Insert(term->var());
  for (const Term& arg : term->args()) CollectItems(arg, out);
}

void CollectItems(const Formula& formula, DataSet& out) {
  if (formula == nullptr) return;
  if (formula->kind() == FormulaKind::kCmp) {
    CollectItems(formula->lhs(), out);
    CollectItems(formula->rhs(), out);
    return;
  }
  for (const Formula& child : formula->children()) CollectItems(child, out);
}

const char* CmpOpSymbol(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

}  // namespace

Term Const(Value v) {
  return MakeTerm(TermKind::kConst, std::move(v), 0, {});
}

Term Var(ItemId item) { return MakeTerm(TermKind::kVar, Value(), item, {}); }

Term Var(const Database& db, std::string_view name) {
  return Var(db.MustFind(name));
}

Term Add(Term lhs, Term rhs) {
  return MakeTerm(TermKind::kAdd, Value(), 0, {std::move(lhs), std::move(rhs)});
}

Term Sub(Term lhs, Term rhs) {
  return MakeTerm(TermKind::kSub, Value(), 0, {std::move(lhs), std::move(rhs)});
}

Term Mul(Term lhs, Term rhs) {
  return MakeTerm(TermKind::kMul, Value(), 0, {std::move(lhs), std::move(rhs)});
}

Term Neg(Term operand) {
  return MakeTerm(TermKind::kNeg, Value(), 0, {std::move(operand)});
}

Term Abs(Term operand) {
  return MakeTerm(TermKind::kAbs, Value(), 0, {std::move(operand)});
}

Term Min(Term lhs, Term rhs) {
  return MakeTerm(TermKind::kMin, Value(), 0, {std::move(lhs), std::move(rhs)});
}

Term Max(Term lhs, Term rhs) {
  return MakeTerm(TermKind::kMax, Value(), 0, {std::move(lhs), std::move(rhs)});
}

Formula True() {
  return MakeFormula(FormulaKind::kTrue, CmpOp::kEq, nullptr, nullptr, {});
}

Formula False() {
  return MakeFormula(FormulaKind::kFalse, CmpOp::kEq, nullptr, nullptr, {});
}

Formula Cmp(CmpOp op, Term lhs, Term rhs) {
  return MakeFormula(FormulaKind::kCmp, op, std::move(lhs), std::move(rhs),
                     {});
}

Formula Eq(Term lhs, Term rhs) {
  return Cmp(CmpOp::kEq, std::move(lhs), std::move(rhs));
}
Formula Ne(Term lhs, Term rhs) {
  return Cmp(CmpOp::kNe, std::move(lhs), std::move(rhs));
}
Formula Lt(Term lhs, Term rhs) {
  return Cmp(CmpOp::kLt, std::move(lhs), std::move(rhs));
}
Formula Le(Term lhs, Term rhs) {
  return Cmp(CmpOp::kLe, std::move(lhs), std::move(rhs));
}
Formula Gt(Term lhs, Term rhs) {
  return Cmp(CmpOp::kGt, std::move(lhs), std::move(rhs));
}
Formula Ge(Term lhs, Term rhs) {
  return Cmp(CmpOp::kGe, std::move(lhs), std::move(rhs));
}

Formula Not(Formula operand) {
  return MakeFormula(FormulaKind::kNot, CmpOp::kEq, nullptr, nullptr,
                     {std::move(operand)});
}

Formula And(std::vector<Formula> children) {
  NSE_CHECK(!children.empty());
  if (children.size() == 1) return children[0];
  return MakeFormula(FormulaKind::kAnd, CmpOp::kEq, nullptr, nullptr,
                     std::move(children));
}

Formula And(Formula a, Formula b) {
  return And(std::vector<Formula>{std::move(a), std::move(b)});
}

Formula Or(std::vector<Formula> children) {
  NSE_CHECK(!children.empty());
  if (children.size() == 1) return children[0];
  return MakeFormula(FormulaKind::kOr, CmpOp::kEq, nullptr, nullptr,
                     std::move(children));
}

Formula Or(Formula a, Formula b) {
  return Or(std::vector<Formula>{std::move(a), std::move(b)});
}

Formula Implies(Formula a, Formula b) {
  return MakeFormula(FormulaKind::kImplies, CmpOp::kEq, nullptr, nullptr,
                     {std::move(a), std::move(b)});
}

Formula Iff(Formula a, Formula b) {
  return MakeFormula(FormulaKind::kIff, CmpOp::kEq, nullptr, nullptr,
                     {std::move(a), std::move(b)});
}

DataSet ItemsOf(const Term& term) {
  DataSet out;
  CollectItems(term, out);
  return out;
}

DataSet ItemsOf(const Formula& formula) {
  DataSet out;
  CollectItems(formula, out);
  return out;
}

bool TermEquals(const Term& a, const Term& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case TermKind::kConst:
      return a->constant() == b->constant();
    case TermKind::kVar:
      return a->var() == b->var();
    default:
      break;
  }
  if (a->args().size() != b->args().size()) return false;
  for (size_t i = 0; i < a->args().size(); ++i) {
    if (!TermEquals(a->args()[i], b->args()[i])) return false;
  }
  return true;
}

bool FormulaEquals(const Formula& a, const Formula& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind() != b->kind()) return false;
  if (a->kind() == FormulaKind::kCmp) {
    return a->cmp() == b->cmp() && TermEquals(a->lhs(), b->lhs()) &&
           TermEquals(a->rhs(), b->rhs());
  }
  if (a->children().size() != b->children().size()) return false;
  for (size_t i = 0; i < a->children().size(); ++i) {
    if (!FormulaEquals(a->children()[i], b->children()[i])) return false;
  }
  return true;
}

std::vector<Formula> TopLevelConjuncts(const Formula& formula) {
  std::vector<Formula> out;
  if (formula == nullptr) return out;
  if (formula->kind() == FormulaKind::kAnd) {
    for (const Formula& child : formula->children()) {
      auto nested = TopLevelConjuncts(child);
      out.insert(out.end(), nested.begin(), nested.end());
    }
  } else {
    out.push_back(formula);
  }
  return out;
}

std::string TermToString(const Database& db, const Term& term) {
  if (term == nullptr) return "<null>";
  switch (term->kind()) {
    case TermKind::kConst:
      return term->constant().ToString();
    case TermKind::kVar:
      return db.NameOf(term->var());
    case TermKind::kAdd:
      return StrCat("(", TermToString(db, term->args()[0]), " + ",
                    TermToString(db, term->args()[1]), ")");
    case TermKind::kSub:
      return StrCat("(", TermToString(db, term->args()[0]), " - ",
                    TermToString(db, term->args()[1]), ")");
    case TermKind::kMul:
      return StrCat("(", TermToString(db, term->args()[0]), " * ",
                    TermToString(db, term->args()[1]), ")");
    case TermKind::kNeg:
      return StrCat("-", TermToString(db, term->args()[0]));
    case TermKind::kAbs:
      return StrCat("abs(", TermToString(db, term->args()[0]), ")");
    case TermKind::kMin:
      return StrCat("min(", TermToString(db, term->args()[0]), ", ",
                    TermToString(db, term->args()[1]), ")");
    case TermKind::kMax:
      return StrCat("max(", TermToString(db, term->args()[0]), ", ",
                    TermToString(db, term->args()[1]), ")");
  }
  return "?";
}

std::string FormulaToString(const Database& db, const Formula& formula) {
  if (formula == nullptr) return "<null>";
  switch (formula->kind()) {
    case FormulaKind::kTrue:
      return "true";
    case FormulaKind::kFalse:
      return "false";
    case FormulaKind::kCmp:
      return StrCat(TermToString(db, formula->lhs()), " ",
                    CmpOpSymbol(formula->cmp()), " ",
                    TermToString(db, formula->rhs()));
    case FormulaKind::kNot:
      return StrCat("!(", FormulaToString(db, formula->children()[0]), ")");
    case FormulaKind::kAnd: {
      std::vector<std::string> parts;
      for (const Formula& child : formula->children()) {
        parts.push_back(StrCat("(", FormulaToString(db, child), ")"));
      }
      return StrJoin(parts, " & ");
    }
    case FormulaKind::kOr: {
      std::vector<std::string> parts;
      for (const Formula& child : formula->children()) {
        parts.push_back(StrCat("(", FormulaToString(db, child), ")"));
      }
      return StrJoin(parts, " | ");
    }
    case FormulaKind::kImplies:
      return StrCat("(", FormulaToString(db, formula->children()[0]), ") -> (",
                    FormulaToString(db, formula->children()[1]), ")");
    case FormulaKind::kIff:
      return StrCat("(", FormulaToString(db, formula->children()[0]),
                    ") <-> (", FormulaToString(db, formula->children()[1]),
                    ")");
  }
  return "?";
}

size_t FormulaSize(const Formula& formula) {
  if (formula == nullptr) return 0;
  size_t n = 1;
  if (formula->kind() == FormulaKind::kCmp) {
    // Count term nodes too.
    struct Counter {
      static size_t Count(const Term& t) {
        if (t == nullptr) return 0;
        size_t c = 1;
        for (const Term& arg : t->args()) c += Count(arg);
        return c;
      }
    };
    n += Counter::Count(formula->lhs()) + Counter::Count(formula->rhs());
  }
  for (const Formula& child : formula->children()) n += FormulaSize(child);
  return n;
}

}  // namespace nse
