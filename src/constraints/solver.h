// ConsistencyChecker: the oracle for the paper's two consistency notions
// (§2.1).
//
//  * A *total* state DS is consistent iff DS ⊨ IC.
//  * A *restriction* DS^d is consistent iff there exists a consistent total
//    state DS1 with DS1^d = DS^d (i.e. the partial state is extensible).
//
// Extensibility is decided exactly by backtracking search over the declared
// finite domains. When the conjunct data sets are disjoint — the paper's
// standing assumption — Lemma 1 lets the search decompose per conjunct,
// which is both the correctness argument and the key performance lever
// (ablation A1 in DESIGN.md measures it against the global search).

#ifndef NSE_CONSTRAINTS_SOLVER_H_
#define NSE_CONSTRAINTS_SOLVER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "constraints/integrity_constraint.h"
#include "state/db_state.h"

namespace nse {

/// Search effort counters (reset with ResetStats()).
struct SolverStats {
  uint64_t nodes = 0;       ///< search-tree nodes visited
  uint64_t prunes = 0;      ///< branches cut by partial evaluation
  uint64_t solutions = 0;   ///< satisfying assignments found
};

/// Decides consistency questions for one (Database, IntegrityConstraint)
/// pair. Thread-compatible (not thread-safe: stats are mutated).
class ConsistencyChecker {
 public:
  ConsistencyChecker(const Database& db, const IntegrityConstraint& ic);

  /// Total satisfaction DS ⊨ IC. Every constrained item must be assigned;
  /// otherwise FailedPrecondition.
  Result<bool> Satisfies(const DbState& state) const;

  /// The paper's consistency for a possibly partial state: does a consistent
  /// total extension exist? Values outside their item's domain make the
  /// state inconsistent (states range over domains by definition).
  ///
  /// Uses the Lemma 1 per-conjunct decomposition when conjuncts are
  /// disjoint, and global search otherwise.
  Result<bool> IsConsistent(const DbState& state) const;

  /// Like IsConsistent but always searches globally over all constrained
  /// items (ablation baseline; also the only sound mode for overlapping
  /// conjuncts).
  Result<bool> IsConsistentGlobal(const DbState& state) const;

  /// A consistent total state extending `state` (over all database items),
  /// or nullopt if none exists.
  Result<std::optional<DbState>> FindConsistentExtension(
      const DbState& state) const;

  /// A pseudo-random consistent total state. FailedPrecondition if the IC is
  /// unsatisfiable over the domains.
  Result<DbState> SampleConsistentState(Rng& rng) const;

  /// Up to `limit` consistent total states, in lexicographic item/value
  /// order. If exactly `limit` states are returned the enumeration may be
  /// incomplete.
  Result<std::vector<DbState>> EnumerateConsistentStates(
      uint64_t limit) const;

  /// Up to `limit` consistent total states extending `pinned` (every pinned
  /// item keeps its pinned value). The search branches only on unpinned
  /// items, so pinned-heavy queries — e.g. the executable initial states of
  /// a schedule — enumerate directly instead of filtering the full state
  /// space.
  Result<std::vector<DbState>> EnumerateConsistentExtensions(
      const DbState& pinned, uint64_t limit) const;

  /// True iff some consistent total state exists.
  Result<bool> IsSatisfiable() const;

  /// Search effort since the last ResetStats().
  const SolverStats& stats() const { return stats_; }
  /// Zeroes the effort counters.
  void ResetStats() { stats_ = SolverStats(); }

  /// The catalog this checker reads domains from.
  const Database& database() const { return db_; }
  /// The constraint this checker decides.
  const IntegrityConstraint& constraint() const { return ic_; }

 private:
  /// True iff `formula` has a satisfying total extension of `working` over
  /// `items[idx..]` (items already assigned in `working` are fixed).
  bool SearchExtend(const Formula& formula,
                    const std::vector<ItemId>& items, size_t idx,
                    DbState& working) const;

  /// Completes `working` over `items[idx..]` into a satisfying assignment;
  /// false if impossible. On success `working` holds the witness.
  bool SearchWitness(const Formula& formula,
                     const std::vector<ItemId>& items, size_t idx,
                     DbState& working) const;

  /// Randomized witness search (shuffled item order, rotated value order).
  bool SearchWitnessRandom(const Formula& formula, std::vector<ItemId> items,
                           DbState& working, Rng& rng) const;

  /// Appends total assignments over `items` satisfying `formula` (extending
  /// `working`) to `out`, up to `limit` entries in total.
  void EnumerateBlock(const Formula& formula,
                      const std::vector<ItemId>& items, size_t idx,
                      DbState& working, uint64_t limit,
                      std::vector<DbState>& out) const;

  /// Items of `d` not yet assigned in `state`, cheapest domains first.
  std::vector<ItemId> UnassignedOf(const DataSet& d,
                                   const DbState& state) const;

  const Database& db_;
  const IntegrityConstraint& ic_;
  mutable SolverStats stats_;
};

}  // namespace nse

#endif  // NSE_CONSTRAINTS_SOLVER_H_
