// ConsistencyChecker: the oracle for the paper's two consistency notions
// (§2.1).
//
//  * A *total* state DS is consistent iff DS ⊨ IC.
//  * A *restriction* DS^d is consistent iff there exists a consistent total
//    state DS1 with DS1^d = DS^d (i.e. the partial state is extensible).
//
// Extensibility is decided exactly by backtracking search over the declared
// finite domains. When the conjunct data sets are disjoint — the paper's
// standing assumption — Lemma 1 lets the search decompose per conjunct,
// which is both the correctness argument and the key performance lever
// (ablation A1 in DESIGN.md measures it against the global search).

#ifndef NSE_CONSTRAINTS_SOLVER_H_
#define NSE_CONSTRAINTS_SOLVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "constraints/integrity_constraint.h"
#include "state/db_state.h"

namespace nse {

/// Search effort counters (reset with ResetStats()).
struct SolverStats {
  uint64_t nodes = 0;       ///< search-tree nodes visited
  uint64_t prunes = 0;      ///< branches cut by partial evaluation
  uint64_t solutions = 0;   ///< satisfying assignments found
};

/// A shared memo of solver search trees, keyed by per-conjunct (block)
/// restrictions of the query state. The violation search samples thousands
/// of executions whose pinned-read restrictions overlap heavily: with
/// disjoint conjunct data sets (Lemma 1), every consistency question
/// decomposes into per-conjunct sub-questions over a handful of items, and
/// those sub-questions repeat across trials — so the cache converges to the
/// small space of distinct per-conjunct restrictions and answers everything
/// after warm-up in one hash probe.
///
/// Three kinds of entries, all keyed by (kind, block, restriction[, limit]):
///   * extensibility verdicts — SearchExtend over one block (IsConsistent);
///   * block enumerations — EnumerateConsistentExtensions subtrees;
///   * per-conjunct solution sets — the sampling domains behind
///     SampleConsistentState (sampling picks uniformly from the enumerated
///     satisfying assignments instead of re-running the randomized search).
///
/// Thread-safe: sharded, each shard behind its own mutex. Read-mostly after
/// warm-up. A cache may be shared by many ConsistencyCheckers across many
/// worker threads, but only for the same (Database, IntegrityConstraint)
/// pair — keys do not include the constraint identity.
class SolverCache {
 public:
  /// Aggregate hit/miss counters across all shards.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    /// Solution-set computations actually executed (per-key once-cell:
    /// concurrent cold requests for one key run exactly one computation).
    uint64_t computes = 0;
    /// Requests that arrived while another worker was computing the same
    /// key and waited for its result instead of recomputing the subtree.
    uint64_t coalesced = 0;
    /// Entries dropped to keep the cache under its entry cap.
    uint64_t evictions = 0;
    /// Entries currently resident (verdicts + solution sets, all shards).
    uint64_t entries = 0;
    double hit_rate() const {
      uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  /// Default entry cap: ample for any single search (per-search caches stay
  /// far below it) while bounding a long-lived service's cache.
  static constexpr size_t kDefaultMaxEntries = size_t{1} << 20;

  /// `max_entries` caps the total resident entries (verdicts + solution
  /// sets) across all shards; the cap is enforced per shard at
  /// max_entries / num_shards (>= 1). Eviction is random-replacement in
  /// hash order — O(1), no recency bookkeeping on the hot read path —
  /// which suits this cache's access pattern: after warm-up the working
  /// set is small and re-fetching an evicted entry costs one bounded
  /// solver search, not a user-visible miss.
  explicit SolverCache(size_t num_shards = 8,
                       size_t max_entries = kDefaultMaxEntries);

  SolverCache(const SolverCache&) = delete;
  SolverCache& operator=(const SolverCache&) = delete;

  /// Aggregated counters (consistent snapshot per shard, not globally).
  Stats stats() const;

  /// The configured total entry cap.
  size_t max_entries() const { return max_entries_; }

  /// Drops every entry and zeroes the counters.
  void Clear();

 private:
  friend class ConsistencyChecker;

  /// An enumerated block of satisfying assignments. `complete` is false
  /// when the enumeration was cut off by its limit (consumers needing the
  /// full set must then fall back to searching).
  struct SolutionSet {
    std::shared_ptr<const std::vector<DbState>> states;
    bool complete = true;
  };

  /// A per-key once-cell: the first cold requester computes, concurrent
  /// requesters for the same key block on `cv` and reuse the result. If
  /// the owner's computation unwinds, the cell is marked abandoned and
  /// waiters retry (competing for ownership again) instead of hanging.
  struct InflightSolutions {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool abandoned = false;
    SolutionSet result;
  };

  /// Read-mostly after warm-up: hits take the shared lock (concurrent, no
  /// convoy when a reader is preempted mid-probe), only misses write.
  /// Counters are relaxed atomics so the read path never writes the map.
  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<std::string, bool> verdicts;
    std::unordered_map<std::string, SolutionSet> solutions;
    /// Keys whose solution set is being computed right now (once-cells).
    std::unordered_map<std::string, std::shared_ptr<InflightSolutions>>
        inflight;
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> computes{0};
    std::atomic<uint64_t> coalesced{0};
    std::atomic<uint64_t> evictions{0};
  };

  Shard& ShardFor(const std::string& key);

  /// Drops entries (hash-order random replacement, alternating between the
  /// larger of the two maps) until the shard is strictly below its cap,
  /// making room for one insertion. Caller holds the shard's unique lock.
  void EvictForInsert(Shard& shard);

  /// Probe helpers used by ConsistencyChecker: on hit, bump `hits` and
  /// return the entry; on miss bump `misses` and return nullopt.
  std::optional<bool> LookupVerdict(const std::string& key);
  void StoreVerdict(const std::string& key, bool verdict);

  /// The memoized read path for solution sets: returns the cached set, or
  /// runs `compute` exactly once per key — concurrent cold workers
  /// requesting the same key wait for the in-flight computation instead of
  /// duplicating the enumeration subtree (ROADMAP: compute-once guard).
  SolutionSet GetOrComputeSolutions(
      const std::string& key, const std::function<SolutionSet()>& compute);

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t max_entries_ = kDefaultMaxEntries;
  size_t per_shard_cap_ = kDefaultMaxEntries;
};

/// Decides consistency questions for one (Database, IntegrityConstraint)
/// pair. Thread-compatible (not thread-safe: stats are mutated).
class ConsistencyChecker {
 public:
  ConsistencyChecker(const Database& db, const IntegrityConstraint& ic);

  /// Cache-backed checker: consistency verdicts, extension enumerations and
  /// sampling domains are memoized in `cache` (shared across checkers and
  /// threads; must outlive this checker and belong to the same (db, ic)).
  ConsistencyChecker(const Database& db, const IntegrityConstraint& ic,
                     SolverCache* cache);

  /// Total satisfaction DS ⊨ IC. Every constrained item must be assigned;
  /// otherwise FailedPrecondition.
  Result<bool> Satisfies(const DbState& state) const;

  /// The paper's consistency for a possibly partial state: does a consistent
  /// total extension exist? Values outside their item's domain make the
  /// state inconsistent (states range over domains by definition).
  ///
  /// Uses the Lemma 1 per-conjunct decomposition when conjuncts are
  /// disjoint, and global search otherwise.
  Result<bool> IsConsistent(const DbState& state) const;

  /// Like IsConsistent but always searches globally over all constrained
  /// items (ablation baseline; also the only sound mode for overlapping
  /// conjuncts).
  Result<bool> IsConsistentGlobal(const DbState& state) const;

  /// A consistent total state extending `state` (over all database items),
  /// or nullopt if none exists.
  Result<std::optional<DbState>> FindConsistentExtension(
      const DbState& state) const;

  /// A pseudo-random consistent total state. FailedPrecondition if the IC is
  /// unsatisfiable over the domains.
  Result<DbState> SampleConsistentState(Rng& rng) const;

  /// Pre-computes the memoized per-conjunct sampling domains (no-op without
  /// a cache or with overlapping conjuncts). The enumerations are one-time
  /// but not free — fan-out callers warm them once before spawning workers
  /// so cold workers don't race to duplicate them.
  void WarmSamplingDomains() const;

  /// Up to `limit` consistent total states, in lexicographic item/value
  /// order. If exactly `limit` states are returned the enumeration may be
  /// incomplete.
  Result<std::vector<DbState>> EnumerateConsistentStates(
      uint64_t limit) const;

  /// Up to `limit` consistent total states extending `pinned` (every pinned
  /// item keeps its pinned value). The search branches only on unpinned
  /// items, so pinned-heavy queries — e.g. the executable initial states of
  /// a schedule — enumerate directly instead of filtering the full state
  /// space.
  Result<std::vector<DbState>> EnumerateConsistentExtensions(
      const DbState& pinned, uint64_t limit) const;

  /// True iff some consistent total state exists.
  Result<bool> IsSatisfiable() const;

  /// Search effort since the last ResetStats().
  const SolverStats& stats() const { return stats_; }
  /// Zeroes the effort counters.
  void ResetStats() { stats_ = SolverStats(); }

  /// The attached cache, or nullptr when uncached.
  SolverCache* cache() const { return cache_; }

  /// The catalog this checker reads domains from.
  const Database& database() const { return db_; }
  /// The constraint this checker decides.
  const IntegrityConstraint& constraint() const { return ic_; }

 private:
  /// True iff `formula` has a satisfying total extension of `working` over
  /// `items[idx..]` (items already assigned in `working` are fixed).
  bool SearchExtend(const Formula& formula,
                    const std::vector<ItemId>& items, size_t idx,
                    DbState& working) const;

  /// Completes `working` over `items[idx..]` into a satisfying assignment;
  /// false if impossible. On success `working` holds the witness.
  bool SearchWitness(const Formula& formula,
                     const std::vector<ItemId>& items, size_t idx,
                     DbState& working) const;

  /// Randomized witness search (shuffled item order, rotated value order).
  bool SearchWitnessRandom(const Formula& formula, std::vector<ItemId> items,
                           DbState& working, Rng& rng) const;

  /// Appends total assignments over `items` satisfying `formula` (extending
  /// `working`) to `out`, up to `limit` entries in total. When
  /// `nodes_remaining` is set, the search also stops once that many nodes
  /// have been visited, setting `*aborted` — the enumeration is then
  /// incomplete regardless of out.size().
  void EnumerateBlock(const Formula& formula,
                      const std::vector<ItemId>& items, size_t idx,
                      DbState& working, uint64_t limit,
                      std::vector<DbState>& out,
                      uint64_t* nodes_remaining = nullptr,
                      bool* aborted = nullptr) const;

  /// Items of `d` not yet assigned in `state`, cheapest domains first.
  std::vector<ItemId> UnassignedOf(const DataSet& d,
                                   const DbState& state) const;

  /// SearchExtend over one block, memoized in the attached cache when
  /// present. `tag` identifies the block ('C' + conjunct index, or 'G' for
  /// the global block); `working` is the query state restricted to the
  /// block's items.
  bool ExtendBlockCached(const Formula& formula, char kind, size_t tag,
                         const DbState& working,
                         const std::vector<ItemId>& todo) const;

  /// The full satisfying-assignment set of conjunct `e` over its data set
  /// (no pinning), memoized. `complete` reports whether the set was fully
  /// enumerated (vs. cut off at the internal cap).
  SolverCache::SolutionSet ConjunctSolutionsCached(size_t e) const;

  /// EnumerateBlock memoized per (block, pinned restriction, limit).
  std::shared_ptr<const std::vector<DbState>> EnumerateBlockCached(
      const Formula& formula, char kind, size_t tag, const DbState& working,
      const std::vector<ItemId>& todo, uint64_t limit) const;

  const Database& db_;
  const IntegrityConstraint& ic_;
  SolverCache* cache_ = nullptr;
  mutable SolverStats stats_;
};

}  // namespace nse

#endif  // NSE_CONSTRAINTS_SOLVER_H_
