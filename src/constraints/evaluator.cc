#include "constraints/evaluator.h"

#include <cstdlib>

#include "common/string_util.h"

namespace nse {

namespace {

Status TypeError(const char* op, const Value& v) {
  return Status::InvalidArgument(
      StrCat("operator ", op, " applied to ", ValueTypeName(v.type()),
             " value ", v.ToString()));
}

Result<int64_t> WantInt(const char* op, const Value& v) {
  if (!v.is_int()) return TypeError(op, v);
  return v.AsInt();
}

/// Compares two values of the same type; InvalidArgument on type mismatch or
/// on ordering comparisons between booleans.
Result<bool> Compare(CmpOp op, const Value& a, const Value& b) {
  if (op == CmpOp::kEq) return a == b;
  if (op == CmpOp::kNe) return a != b;
  if (a.type() != b.type()) {
    return Status::InvalidArgument(
        StrCat("ordered comparison between ", ValueTypeName(a.type()), " and ",
               ValueTypeName(b.type())));
  }
  if (a.is_bool()) {
    return Status::InvalidArgument("ordered comparison between booleans");
  }
  bool lt = a < b;
  bool gt = b < a;
  switch (op) {
    case CmpOp::kLt:
      return lt;
    case CmpOp::kLe:
      return !gt;
    case CmpOp::kGt:
      return gt;
    case CmpOp::kGe:
      return !lt;
    default:
      return Status::Internal("unreachable comparison");
  }
}

}  // namespace

Result<Value> EvalTerm(const Term& term, const DbState& state) {
  if (term == nullptr) return Status::InvalidArgument("null term");
  switch (term->kind()) {
    case TermKind::kConst:
      return term->constant();
    case TermKind::kVar: {
      auto value = state.Get(term->var());
      if (!value.has_value()) {
        return Status::FailedPrecondition(
            StrCat("item #", term->var(), " is unassigned"));
      }
      return *value;
    }
    case TermKind::kAdd: {
      NSE_ASSIGN_OR_RETURN(Value a, EvalTerm(term->args()[0], state));
      NSE_ASSIGN_OR_RETURN(Value b, EvalTerm(term->args()[1], state));
      // String concatenation is the natural '+' for strings.
      if (a.is_string() && b.is_string()) {
        return Value(a.AsString() + b.AsString());
      }
      NSE_ASSIGN_OR_RETURN(int64_t ia, WantInt("+", a));
      NSE_ASSIGN_OR_RETURN(int64_t ib, WantInt("+", b));
      return Value(ia + ib);
    }
    case TermKind::kSub: {
      NSE_ASSIGN_OR_RETURN(Value a, EvalTerm(term->args()[0], state));
      NSE_ASSIGN_OR_RETURN(Value b, EvalTerm(term->args()[1], state));
      NSE_ASSIGN_OR_RETURN(int64_t ia, WantInt("-", a));
      NSE_ASSIGN_OR_RETURN(int64_t ib, WantInt("-", b));
      return Value(ia - ib);
    }
    case TermKind::kMul: {
      NSE_ASSIGN_OR_RETURN(Value a, EvalTerm(term->args()[0], state));
      NSE_ASSIGN_OR_RETURN(Value b, EvalTerm(term->args()[1], state));
      NSE_ASSIGN_OR_RETURN(int64_t ia, WantInt("*", a));
      NSE_ASSIGN_OR_RETURN(int64_t ib, WantInt("*", b));
      return Value(ia * ib);
    }
    case TermKind::kNeg: {
      NSE_ASSIGN_OR_RETURN(Value a, EvalTerm(term->args()[0], state));
      NSE_ASSIGN_OR_RETURN(int64_t ia, WantInt("neg", a));
      return Value(-ia);
    }
    case TermKind::kAbs: {
      NSE_ASSIGN_OR_RETURN(Value a, EvalTerm(term->args()[0], state));
      NSE_ASSIGN_OR_RETURN(int64_t ia, WantInt("abs", a));
      return Value(ia < 0 ? -ia : ia);
    }
    case TermKind::kMin: {
      NSE_ASSIGN_OR_RETURN(Value a, EvalTerm(term->args()[0], state));
      NSE_ASSIGN_OR_RETURN(Value b, EvalTerm(term->args()[1], state));
      NSE_ASSIGN_OR_RETURN(int64_t ia, WantInt("min", a));
      NSE_ASSIGN_OR_RETURN(int64_t ib, WantInt("min", b));
      return Value(ia < ib ? ia : ib);
    }
    case TermKind::kMax: {
      NSE_ASSIGN_OR_RETURN(Value a, EvalTerm(term->args()[0], state));
      NSE_ASSIGN_OR_RETURN(Value b, EvalTerm(term->args()[1], state));
      NSE_ASSIGN_OR_RETURN(int64_t ia, WantInt("max", a));
      NSE_ASSIGN_OR_RETURN(int64_t ib, WantInt("max", b));
      return Value(ia > ib ? ia : ib);
    }
  }
  return Status::Internal("unreachable term kind");
}

Result<bool> EvalFormula(const Formula& formula, const DbState& state) {
  if (formula == nullptr) return Status::InvalidArgument("null formula");
  switch (formula->kind()) {
    case FormulaKind::kTrue:
      return true;
    case FormulaKind::kFalse:
      return false;
    case FormulaKind::kCmp: {
      NSE_ASSIGN_OR_RETURN(Value a, EvalTerm(formula->lhs(), state));
      NSE_ASSIGN_OR_RETURN(Value b, EvalTerm(formula->rhs(), state));
      return Compare(formula->cmp(), a, b);
    }
    case FormulaKind::kNot: {
      NSE_ASSIGN_OR_RETURN(bool v, EvalFormula(formula->children()[0], state));
      return !v;
    }
    case FormulaKind::kAnd: {
      for (const Formula& child : formula->children()) {
        NSE_ASSIGN_OR_RETURN(bool v, EvalFormula(child, state));
        if (!v) return false;
      }
      return true;
    }
    case FormulaKind::kOr: {
      for (const Formula& child : formula->children()) {
        NSE_ASSIGN_OR_RETURN(bool v, EvalFormula(child, state));
        if (v) return true;
      }
      return false;
    }
    case FormulaKind::kImplies: {
      NSE_ASSIGN_OR_RETURN(bool a, EvalFormula(formula->children()[0], state));
      if (!a) return true;
      return EvalFormula(formula->children()[1], state);
    }
    case FormulaKind::kIff: {
      NSE_ASSIGN_OR_RETURN(bool a, EvalFormula(formula->children()[0], state));
      NSE_ASSIGN_OR_RETURN(bool b, EvalFormula(formula->children()[1], state));
      return a == b;
    }
  }
  return Status::Internal("unreachable formula kind");
}

std::optional<Value> EvalTermPartial(const Term& term, const DbState& state) {
  if (term == nullptr) return std::nullopt;
  if (term->kind() == TermKind::kVar) {
    return state.Get(term->var());
  }
  // For all other kinds, delegate to total evaluation; a missing child makes
  // the whole term unknown.
  switch (term->kind()) {
    case TermKind::kConst:
      return term->constant();
    default: {
      // Check all referenced items are assigned; if so, total-evaluate.
      const DataSet items = ItemsOf(term);
      for (ItemId item : items) {
        if (!state.Has(item)) return std::nullopt;
      }
      auto result = EvalTerm(term, state);
      if (!result.ok()) return std::nullopt;
      return *result;
    }
  }
}

Truth EvalFormulaPartial(const Formula& formula, const DbState& state) {
  if (formula == nullptr) return std::nullopt;
  switch (formula->kind()) {
    case FormulaKind::kTrue:
      return true;
    case FormulaKind::kFalse:
      return false;
    case FormulaKind::kCmp: {
      auto a = EvalTermPartial(formula->lhs(), state);
      auto b = EvalTermPartial(formula->rhs(), state);
      if (!a.has_value() || !b.has_value()) return std::nullopt;
      auto cmp = Compare(formula->cmp(), *a, *b);
      if (!cmp.ok()) return std::nullopt;
      return *cmp;
    }
    case FormulaKind::kNot: {
      Truth v = EvalFormulaPartial(formula->children()[0], state);
      if (!v.has_value()) return std::nullopt;
      return !*v;
    }
    case FormulaKind::kAnd: {
      bool unknown = false;
      for (const Formula& child : formula->children()) {
        Truth v = EvalFormulaPartial(child, state);
        if (!v.has_value()) {
          unknown = true;
        } else if (!*v) {
          return false;
        }
      }
      if (unknown) return std::nullopt;
      return true;
    }
    case FormulaKind::kOr: {
      bool unknown = false;
      for (const Formula& child : formula->children()) {
        Truth v = EvalFormulaPartial(child, state);
        if (!v.has_value()) {
          unknown = true;
        } else if (*v) {
          return true;
        }
      }
      if (unknown) return std::nullopt;
      return false;
    }
    case FormulaKind::kImplies: {
      Truth a = EvalFormulaPartial(formula->children()[0], state);
      Truth b = EvalFormulaPartial(formula->children()[1], state);
      if (a.has_value() && !*a) return true;
      if (b.has_value() && *b) return true;
      if (a.has_value() && b.has_value()) return *b || !*a;
      return std::nullopt;
    }
    case FormulaKind::kIff: {
      Truth a = EvalFormulaPartial(formula->children()[0], state);
      Truth b = EvalFormulaPartial(formula->children()[1], state);
      if (!a.has_value() || !b.has_value()) return std::nullopt;
      return *a == *b;
    }
  }
  return std::nullopt;
}

}  // namespace nse
