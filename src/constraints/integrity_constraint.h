// IntegrityConstraint: IC = C1 ∧ C2 ∧ ... ∧ Cl with each conjunct Ce defined
// over a data set d_e. The paper's standing assumption — d_e ∩ d_f = ∅ for
// e ≠ f — is verified at construction; Example 5 shows the theorems fail
// without it, so overlapping conjuncts require an explicit opt-in and are
// flagged on every checker result.

#ifndef NSE_CONSTRAINTS_INTEGRITY_CONSTRAINT_H_
#define NSE_CONSTRAINTS_INTEGRITY_CONSTRAINT_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "constraints/ast.h"
#include "state/database.h"

namespace nse {

/// Whether overlapping conjunct data sets are permitted.
enum class ConjunctOverlap {
  kReject,  ///< Enforce the paper's disjointness assumption (default).
  kAllow,   ///< Permit overlap (only for studying its failure modes).
};

/// A partitioned integrity constraint.
class IntegrityConstraint {
 public:
  /// Builds an IC from explicit conjuncts. Fails with InvalidArgument if two
  /// conjuncts share a data item and `overlap` is kReject, or if a conjunct
  /// references no data item.
  static Result<IntegrityConstraint> FromConjuncts(
      const Database& db, std::vector<Formula> conjuncts,
      ConjunctOverlap overlap = ConjunctOverlap::kReject);

  /// Splits `formula` on top-level ∧ and delegates to FromConjuncts.
  static Result<IntegrityConstraint> FromFormula(
      const Database& db, const Formula& formula,
      ConjunctOverlap overlap = ConjunctOverlap::kReject);

  /// Parses the textual syntax (see parser.h) and splits on top-level '&'.
  static Result<IntegrityConstraint> Parse(
      const Database& db, std::string_view text,
      ConjunctOverlap overlap = ConjunctOverlap::kReject);

  /// Number of conjuncts l.
  size_t num_conjuncts() const { return conjuncts_.size(); }

  /// The e-th conjunct formula Ce (0-based).
  const Formula& conjunct(size_t e) const { return conjuncts_[e]; }

  /// The e-th conjunct's data set d_e.
  const DataSet& data_set(size_t e) const { return data_sets_[e]; }

  /// All conjunct data sets.
  const std::vector<DataSet>& data_sets() const { return data_sets_; }

  /// Union of all conjunct data sets (items mentioned by some conjunct).
  const DataSet& constrained_items() const { return constrained_items_; }

  /// Index of the conjunct whose data set contains `item`, or nullopt if the
  /// item is unconstrained. With overlapping conjuncts, the lowest index.
  std::optional<size_t> ConjunctOf(ItemId item) const;

  /// True iff the conjunct data sets are pairwise disjoint.
  bool disjoint() const { return disjoint_; }

  /// The conjunction C1 ∧ ... ∧ Cl as a single formula.
  Formula AsFormula() const;

  /// Renders e.g. "C1: a > 0 -> b > 0 over {a, b}; C2: c > 0 over {c}".
  std::string ToString(const Database& db) const;

 private:
  IntegrityConstraint() = default;

  std::vector<Formula> conjuncts_;
  std::vector<DataSet> data_sets_;
  DataSet constrained_items_;
  bool disjoint_ = true;
};

}  // namespace nse

#endif  // NSE_CONSTRAINTS_INTEGRITY_CONSTRAINT_H_
