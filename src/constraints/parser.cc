#include "constraints/parser.h"

#include <cctype>
#include <vector>

#include "common/string_util.h"

namespace nse {

namespace {

enum class TokKind {
  kEnd,
  kInt,
  kString,
  kIdent,
  kLParen,
  kRParen,
  kComma,
  kPlus,
  kMinus,
  kStar,
  kEq,     // '=' or '=='
  kNe,     // '!='
  kLt,
  kLe,
  kGt,
  kGe,
  kBang,   // '!'
  kAmp,    // '&' or '&&'
  kPipe,   // '|' or '||'
  kArrow,  // '->'
  kDArrow, // '<->'
};

struct Token {
  TokKind kind;
  std::string text;  // identifier / string / integer spelling
  size_t pos = 0;    // byte offset in the source, for error messages
};

Status SyntaxError(std::string_view text, size_t pos, std::string_view what) {
  return Status::InvalidArgument(
      StrCat("parse error at offset ", pos, " in \"", text, "\": ", what));
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    const size_t n = text_.size();
    while (i < n) {
      char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      size_t start = i;
      if (std::isdigit(static_cast<unsigned char>(c))) {
        while (i < n && std::isdigit(static_cast<unsigned char>(text_[i]))) {
          ++i;
        }
        out.push_back({TokKind::kInt, std::string(text_.substr(start, i - start)),
                       start});
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        while (i < n && (std::isalnum(static_cast<unsigned char>(text_[i])) ||
                         text_[i] == '_')) {
          ++i;
        }
        out.push_back({TokKind::kIdent,
                       std::string(text_.substr(start, i - start)), start});
        continue;
      }
      if (c == '"') {
        ++i;
        std::string body;
        while (i < n && text_[i] != '"') {
          body.push_back(text_[i]);
          ++i;
        }
        if (i == n) return SyntaxError(text_, start, "unterminated string");
        ++i;  // closing quote
        out.push_back({TokKind::kString, std::move(body), start});
        continue;
      }
      auto push1 = [&](TokKind kind) {
        out.push_back({kind, std::string(1, c), start});
        ++i;
      };
      switch (c) {
        case '(':
          push1(TokKind::kLParen);
          break;
        case ')':
          push1(TokKind::kRParen);
          break;
        case ',':
          push1(TokKind::kComma);
          break;
        case '+':
          push1(TokKind::kPlus);
          break;
        case '*':
          push1(TokKind::kStar);
          break;
        case '-':
          if (i + 1 < n && text_[i + 1] == '>') {
            out.push_back({TokKind::kArrow, "->", start});
            i += 2;
          } else {
            push1(TokKind::kMinus);
          }
          break;
        case '=':
          if (i + 1 < n && text_[i + 1] == '=') {
            out.push_back({TokKind::kEq, "==", start});
            i += 2;
          } else {
            push1(TokKind::kEq);
          }
          break;
        case '!':
          if (i + 1 < n && text_[i + 1] == '=') {
            out.push_back({TokKind::kNe, "!=", start});
            i += 2;
          } else {
            push1(TokKind::kBang);
          }
          break;
        case '<':
          if (i + 2 < n && text_[i + 1] == '-' && text_[i + 2] == '>') {
            out.push_back({TokKind::kDArrow, "<->", start});
            i += 3;
          } else if (i + 1 < n && text_[i + 1] == '=') {
            out.push_back({TokKind::kLe, "<=", start});
            i += 2;
          } else {
            push1(TokKind::kLt);
          }
          break;
        case '>':
          if (i + 1 < n && text_[i + 1] == '=') {
            out.push_back({TokKind::kGe, ">=", start});
            i += 2;
          } else {
            push1(TokKind::kGt);
          }
          break;
        case '&':
          if (i + 1 < n && text_[i + 1] == '&') {
            out.push_back({TokKind::kAmp, "&&", start});
            i += 2;
          } else {
            push1(TokKind::kAmp);
          }
          break;
        case '|':
          if (i + 1 < n && text_[i + 1] == '|') {
            out.push_back({TokKind::kPipe, "||", start});
            i += 2;
          } else {
            push1(TokKind::kPipe);
          }
          break;
        default:
          return SyntaxError(text_, start,
                             StrCat("unexpected character '", c, "'"));
      }
    }
    out.push_back({TokKind::kEnd, "", n});
    return out;
  }

 private:
  std::string_view text_;
};

class Parser {
 public:
  Parser(const Database& db, std::string_view text, std::vector<Token> tokens)
      : db_(db), text_(text), tokens_(std::move(tokens)) {}

  Result<Formula> ParseFormulaAll() {
    NSE_ASSIGN_OR_RETURN(Formula f, ParseIff());
    if (Peek().kind != TokKind::kEnd) {
      return SyntaxError(text_, Peek().pos, "trailing input after formula");
    }
    return f;
  }

  Result<Term> ParseTermAll() {
    NSE_ASSIGN_OR_RETURN(Term t, ParseAdd());
    if (Peek().kind != TokKind::kEnd) {
      return SyntaxError(text_, Peek().pos, "trailing input after term");
    }
    return t;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(TokKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool MatchIdent(std::string_view word) {
    if (Peek().kind == TokKind::kIdent && Peek().text == word) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Formula> ParseIff() {
    NSE_ASSIGN_OR_RETURN(Formula lhs, ParseImpl());
    while (Match(TokKind::kDArrow)) {
      NSE_ASSIGN_OR_RETURN(Formula rhs, ParseImpl());
      lhs = Iff(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Formula> ParseImpl() {
    NSE_ASSIGN_OR_RETURN(Formula lhs, ParseOr());
    if (Match(TokKind::kArrow)) {
      NSE_ASSIGN_OR_RETURN(Formula rhs, ParseImpl());  // right associative
      return Implies(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Formula> ParseOr() {
    NSE_ASSIGN_OR_RETURN(Formula lhs, ParseAnd());
    while (Peek().kind == TokKind::kPipe || (Peek().kind == TokKind::kIdent &&
                                             Peek().text == "or")) {
      Advance();
      NSE_ASSIGN_OR_RETURN(Formula rhs, ParseAnd());
      lhs = Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Formula> ParseAnd() {
    NSE_ASSIGN_OR_RETURN(Formula lhs, ParseNot());
    while (Peek().kind == TokKind::kAmp || (Peek().kind == TokKind::kIdent &&
                                            Peek().text == "and")) {
      Advance();
      NSE_ASSIGN_OR_RETURN(Formula rhs, ParseNot());
      lhs = And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Formula> ParseNot() {
    if (Match(TokKind::kBang) || MatchIdent("not")) {
      NSE_ASSIGN_OR_RETURN(Formula inner, ParseNot());
      return Not(std::move(inner));
    }
    return ParseAtom();
  }

  Result<Formula> ParseAtom() {
    if (MatchIdent("true")) return True();
    if (MatchIdent("false")) return False();

    // Ambiguity: '(' may open a parenthesized formula or a parenthesized
    // term on the left of a comparison. Try the comparison first; if that
    // fails, rewind and parse a parenthesized formula.
    size_t saved = pos_;
    auto cmp_attempt = ParseComparison();
    if (cmp_attempt.ok()) return cmp_attempt;
    pos_ = saved;

    if (Match(TokKind::kLParen)) {
      NSE_ASSIGN_OR_RETURN(Formula inner, ParseIff());
      if (!Match(TokKind::kRParen)) {
        return SyntaxError(text_, Peek().pos, "expected ')'");
      }
      return inner;
    }
    return cmp_attempt;  // the comparison error is the more informative one
  }

  Result<Formula> ParseComparison() {
    NSE_ASSIGN_OR_RETURN(Term lhs, ParseAdd());
    CmpOp op;
    switch (Peek().kind) {
      case TokKind::kEq:
        op = CmpOp::kEq;
        break;
      case TokKind::kNe:
        op = CmpOp::kNe;
        break;
      case TokKind::kLt:
        op = CmpOp::kLt;
        break;
      case TokKind::kLe:
        op = CmpOp::kLe;
        break;
      case TokKind::kGt:
        op = CmpOp::kGt;
        break;
      case TokKind::kGe:
        op = CmpOp::kGe;
        break;
      default:
        return SyntaxError(text_, Peek().pos, "expected comparison operator");
    }
    Advance();
    NSE_ASSIGN_OR_RETURN(Term rhs, ParseAdd());
    return Cmp(op, std::move(lhs), std::move(rhs));
  }

  Result<Term> ParseAdd() {
    NSE_ASSIGN_OR_RETURN(Term lhs, ParseMul());
    while (true) {
      if (Match(TokKind::kPlus)) {
        NSE_ASSIGN_OR_RETURN(Term rhs, ParseMul());
        lhs = Add(std::move(lhs), std::move(rhs));
      } else if (Match(TokKind::kMinus)) {
        NSE_ASSIGN_OR_RETURN(Term rhs, ParseMul());
        lhs = Sub(std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<Term> ParseMul() {
    NSE_ASSIGN_OR_RETURN(Term lhs, ParseUnary());
    while (Match(TokKind::kStar)) {
      NSE_ASSIGN_OR_RETURN(Term rhs, ParseUnary());
      lhs = Mul(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Term> ParseUnary() {
    if (Match(TokKind::kMinus)) {
      NSE_ASSIGN_OR_RETURN(Term inner, ParseUnary());
      return Neg(std::move(inner));
    }
    return ParsePrimary();
  }

  Result<Term> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokKind::kInt: {
        Advance();
        return Const(Value(static_cast<int64_t>(std::stoll(tok.text))));
      }
      case TokKind::kString: {
        Advance();
        return Const(Value(tok.text));
      }
      case TokKind::kLParen: {
        Advance();
        NSE_ASSIGN_OR_RETURN(Term inner, ParseAdd());
        if (!Match(TokKind::kRParen)) {
          return SyntaxError(text_, Peek().pos, "expected ')' in term");
        }
        return inner;
      }
      case TokKind::kIdent: {
        const std::string& name = tok.text;
        if (name == "min" || name == "max") {
          Advance();
          if (!Match(TokKind::kLParen)) {
            return SyntaxError(text_, Peek().pos,
                               StrCat("expected '(' after ", name));
          }
          NSE_ASSIGN_OR_RETURN(Term a, ParseAdd());
          if (!Match(TokKind::kComma)) {
            return SyntaxError(text_, Peek().pos, "expected ','");
          }
          NSE_ASSIGN_OR_RETURN(Term b, ParseAdd());
          if (!Match(TokKind::kRParen)) {
            return SyntaxError(text_, Peek().pos, "expected ')'");
          }
          return name == "min" ? Min(std::move(a), std::move(b))
                               : Max(std::move(a), std::move(b));
        }
        if (name == "abs") {
          Advance();
          if (!Match(TokKind::kLParen)) {
            return SyntaxError(text_, Peek().pos, "expected '(' after abs");
          }
          NSE_ASSIGN_OR_RETURN(Term a, ParseAdd());
          if (!Match(TokKind::kRParen)) {
            return SyntaxError(text_, Peek().pos, "expected ')'");
          }
          return Abs(std::move(a));
        }
        if (name == "true" || name == "false") {
          // Bool constants are formulas, not terms; comparisons with bool
          // items use `x = true`. Reaching here as a term is legal only on
          // the RHS of '='; expose as bool Value.
          Advance();
          return Const(Value(name == "true"));
        }
        auto id = db_.Find(name);
        if (!id.ok()) {
          return SyntaxError(text_, tok.pos,
                             StrCat("unknown data item '", name, "'"));
        }
        Advance();
        return Var(*id);
      }
      default:
        return SyntaxError(text_, tok.pos, "expected a term");
    }
  }

  const Database& db_;
  std::string_view text_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Formula> ParseFormula(const Database& db, std::string_view text) {
  Lexer lexer(text);
  NSE_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(db, text, std::move(tokens));
  return parser.ParseFormulaAll();
}

Result<Term> ParseTerm(const Database& db, std::string_view text) {
  Lexer lexer(text);
  NSE_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(db, text, std::move(tokens));
  return parser.ParseTermAll();
}

}  // namespace nse
