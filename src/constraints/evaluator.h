// Evaluation of terms and formulae under a database state, viewed as a
// variable assignment (paper §2.1, standard interpretation I).
//
// Two modes:
//  * Total evaluation — every referenced item must be assigned; type errors
//    and unassigned items are reported via Status.
//  * Partial (three-valued) evaluation — unassigned items yield "unknown";
//    used by the solver to prune search branches whose truth value is
//    already determined by the partial assignment.

#ifndef NSE_CONSTRAINTS_EVALUATOR_H_
#define NSE_CONSTRAINTS_EVALUATOR_H_

#include <optional>

#include "common/status.h"
#include "constraints/ast.h"
#include "state/db_state.h"

namespace nse {

/// Evaluates `term` under `state`. Fails if an item is unassigned or an
/// operator receives operands of the wrong type.
Result<Value> EvalTerm(const Term& term, const DbState& state);

/// Evaluates `formula` under `state` (all referenced items must be assigned).
Result<bool> EvalFormula(const Formula& formula, const DbState& state);

/// Three-valued truth: true / false / unknown (nullopt).
using Truth = std::optional<bool>;

/// Partially evaluates `term`; nullopt if it depends on an unassigned item.
/// Type errors also yield nullopt (the solver treats them as unsatisfiable
/// branches elsewhere; total evaluation reports them precisely).
std::optional<Value> EvalTermPartial(const Term& term, const DbState& state);

/// Kleene three-valued evaluation of `formula` under a partial `state`:
/// returns true/false when the truth value is determined regardless of how
/// unassigned items are filled in *node-locally* (no constraint propagation).
Truth EvalFormulaPartial(const Formula& formula, const DbState& state);

}  // namespace nse

#endif  // NSE_CONSTRAINTS_EVALUATOR_H_
