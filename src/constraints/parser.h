// Textual syntax for constraints and terms.
//
// Grammar (precedence low→high: <-> , -> , | , & , ! , atoms):
//
//   formula  := iff
//   iff      := impl ('<->' impl)*
//   impl     := or ('->' or)*            (right associative)
//   or       := and (('|' | 'or') and)*
//   and      := not (('&' | 'and' | '&&') not)*
//   not      := ('!' | 'not') not | atom
//   atom     := 'true' | 'false' | term cmp term | '(' formula ')'
//   cmp      := '=' | '==' | '!=' | '<' | '<=' | '>' | '>='
//   term     := add
//   add      := mul (('+' | '-') mul)*
//   mul      := unary ('*' unary)*
//   unary    := '-' unary | primary
//   primary  := INT | STRING | item-name
//             | ('min'|'max') '(' term ',' term ')' | 'abs' '(' term ')'
//             | '(' term ')'
//
// Item names are resolved against a Database; unknown names are reported
// with their source position.

#ifndef NSE_CONSTRAINTS_PARSER_H_
#define NSE_CONSTRAINTS_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "constraints/ast.h"
#include "state/database.h"

namespace nse {

/// Parses a formula such as "(a > 0 -> b > 0) & c > 0".
Result<Formula> ParseFormula(const Database& db, std::string_view text);

/// Parses a term such as "abs(b) + 1".
Result<Term> ParseTerm(const Database& db, std::string_view text);

}  // namespace nse

#endif  // NSE_CONSTRAINTS_PARSER_H_
