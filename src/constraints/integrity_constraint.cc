#include "constraints/integrity_constraint.h"

#include "common/string_util.h"
#include "constraints/parser.h"

namespace nse {

Result<IntegrityConstraint> IntegrityConstraint::FromConjuncts(
    const Database& db, std::vector<Formula> conjuncts,
    ConjunctOverlap overlap) {
  if (conjuncts.empty()) {
    return Status::InvalidArgument("an IC needs at least one conjunct");
  }
  IntegrityConstraint ic;
  ic.conjuncts_ = std::move(conjuncts);
  for (size_t e = 0; e < ic.conjuncts_.size(); ++e) {
    if (ic.conjuncts_[e] == nullptr) {
      return Status::InvalidArgument(StrCat("conjunct ", e, " is null"));
    }
    DataSet items = ItemsOf(ic.conjuncts_[e]);
    if (items.empty()) {
      return Status::InvalidArgument(
          StrCat("conjunct ", e, " references no data item: ",
                 FormulaToString(db, ic.conjuncts_[e])));
    }
    for (ItemId item : items) {
      if (item >= db.num_items()) {
        return Status::InvalidArgument(
            StrCat("conjunct ", e, " references unknown item id ", item));
      }
    }
    ic.data_sets_.push_back(std::move(items));
  }
  ic.disjoint_ = true;
  for (size_t e = 0; e < ic.data_sets_.size() && ic.disjoint_; ++e) {
    for (size_t f = e + 1; f < ic.data_sets_.size(); ++f) {
      if (!DataSet::Disjoint(ic.data_sets_[e], ic.data_sets_[f])) {
        ic.disjoint_ = false;
        if (overlap == ConjunctOverlap::kReject) {
          return Status::InvalidArgument(StrCat(
              "conjuncts ", e, " and ", f, " share data items ",
              db.DataSetToString(
                  DataSet::Intersect(ic.data_sets_[e], ic.data_sets_[f])),
              "; the paper's theorems require disjoint conjuncts "
              "(see Example 5). Pass ConjunctOverlap::kAllow to study this."));
        }
        break;
      }
    }
  }
  DataSet all;
  for (const DataSet& d : ic.data_sets_) all = DataSet::Union(all, d);
  ic.constrained_items_ = std::move(all);
  return ic;
}

Result<IntegrityConstraint> IntegrityConstraint::FromFormula(
    const Database& db, const Formula& formula, ConjunctOverlap overlap) {
  if (formula == nullptr) {
    return Status::InvalidArgument("null formula");
  }
  return FromConjuncts(db, TopLevelConjuncts(formula), overlap);
}

Result<IntegrityConstraint> IntegrityConstraint::Parse(
    const Database& db, std::string_view text, ConjunctOverlap overlap) {
  NSE_ASSIGN_OR_RETURN(Formula formula, ParseFormula(db, text));
  return FromFormula(db, formula, overlap);
}

std::optional<size_t> IntegrityConstraint::ConjunctOf(ItemId item) const {
  for (size_t e = 0; e < data_sets_.size(); ++e) {
    if (data_sets_[e].Contains(item)) return e;
  }
  return std::nullopt;
}

Formula IntegrityConstraint::AsFormula() const { return And(conjuncts_); }

std::string IntegrityConstraint::ToString(const Database& db) const {
  std::vector<std::string> parts;
  for (size_t e = 0; e < conjuncts_.size(); ++e) {
    parts.push_back(StrCat("C", e + 1, ": ",
                           FormulaToString(db, conjuncts_[e]), " over ",
                           db.DataSetToString(data_sets_[e])));
  }
  return StrJoin(parts, "; ");
}

}  // namespace nse
