// Abstract syntax for the paper's integrity-constraint language (§2.1):
// quantifier-free first-order formulae over numeric/string constants,
// functions (+, -, *, min, max, abs), comparison operators, and variables
// (data items). Terms and formulae are immutable shared DAGs.

#ifndef NSE_CONSTRAINTS_AST_H_
#define NSE_CONSTRAINTS_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "state/database.h"
#include "state/value.h"

namespace nse {

class TermNode;
class FormulaNode;

/// An arithmetic/string term (shared immutable handle).
using Term = std::shared_ptr<const TermNode>;
/// A boolean formula (shared immutable handle).
using Formula = std::shared_ptr<const FormulaNode>;

/// Term node kinds.
enum class TermKind { kConst, kVar, kAdd, kSub, kMul, kNeg, kAbs, kMin, kMax };

/// Comparison operators for atoms.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Formula node kinds.
enum class FormulaKind {
  kTrue,
  kFalse,
  kCmp,
  kNot,
  kAnd,
  kOr,
  kImplies,
  kIff,
};

/// A node in a term DAG.
class TermNode {
 public:
  TermNode(TermKind kind, Value constant, ItemId var, std::vector<Term> args)
      : kind_(kind),
        constant_(std::move(constant)),
        var_(var),
        args_(std::move(args)) {}

  /// The node kind.
  TermKind kind() const { return kind_; }
  /// The constant payload (kConst only).
  const Value& constant() const { return constant_; }
  /// The data item (kVar only).
  ItemId var() const { return var_; }
  /// Child terms (operators only).
  const std::vector<Term>& args() const { return args_; }

 private:
  TermKind kind_;
  Value constant_;
  ItemId var_;
  std::vector<Term> args_;
};

/// A node in a formula DAG.
class FormulaNode {
 public:
  FormulaNode(FormulaKind kind, CmpOp cmp, Term lhs, Term rhs,
              std::vector<Formula> children)
      : kind_(kind),
        cmp_(cmp),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)),
        children_(std::move(children)) {}

  /// The node kind.
  FormulaKind kind() const { return kind_; }
  /// Comparison operator (kCmp only).
  CmpOp cmp() const { return cmp_; }
  /// Left term of a comparison (kCmp only).
  const Term& lhs() const { return lhs_; }
  /// Right term of a comparison (kCmp only).
  const Term& rhs() const { return rhs_; }
  /// Child formulae (connectives only).
  const std::vector<Formula>& children() const { return children_; }

 private:
  FormulaKind kind_;
  CmpOp cmp_;
  Term lhs_;
  Term rhs_;
  std::vector<Formula> children_;
};

// ---- Term factories ----

/// A constant term.
Term Const(Value v);
/// A variable term referring to data item `item`.
Term Var(ItemId item);
/// A variable term resolved by name against `db` (aborts on unknown name).
Term Var(const Database& db, std::string_view name);
/// lhs + rhs.
Term Add(Term lhs, Term rhs);
/// lhs - rhs.
Term Sub(Term lhs, Term rhs);
/// lhs * rhs.
Term Mul(Term lhs, Term rhs);
/// -operand.
Term Neg(Term operand);
/// |operand|.
Term Abs(Term operand);
/// min(lhs, rhs).
Term Min(Term lhs, Term rhs);
/// max(lhs, rhs).
Term Max(Term lhs, Term rhs);

// ---- Formula factories ----

/// The formula "true".
Formula True();
/// The formula "false".
Formula False();
/// Comparison atom lhs `op` rhs.
Formula Cmp(CmpOp op, Term lhs, Term rhs);
/// lhs = rhs.
Formula Eq(Term lhs, Term rhs);
/// lhs ≠ rhs.
Formula Ne(Term lhs, Term rhs);
/// lhs < rhs.
Formula Lt(Term lhs, Term rhs);
/// lhs ≤ rhs.
Formula Le(Term lhs, Term rhs);
/// lhs > rhs.
Formula Gt(Term lhs, Term rhs);
/// lhs ≥ rhs.
Formula Ge(Term lhs, Term rhs);
/// ¬operand.
Formula Not(Formula operand);
/// Conjunction (n-ary, n ≥ 1).
Formula And(std::vector<Formula> children);
/// Binary conjunction.
Formula And(Formula a, Formula b);
/// Disjunction (n-ary, n ≥ 1).
Formula Or(std::vector<Formula> children);
/// Binary disjunction.
Formula Or(Formula a, Formula b);
/// a → b.
Formula Implies(Formula a, Formula b);
/// a ↔ b.
Formula Iff(Formula a, Formula b);

// ---- Inspection ----

/// The set of data items occurring in `term`.
DataSet ItemsOf(const Term& term);
/// The set of data items occurring in `formula`.
DataSet ItemsOf(const Formula& formula);

/// Structural equality of terms.
bool TermEquals(const Term& a, const Term& b);
/// Structural equality of formulae.
bool FormulaEquals(const Formula& a, const Formula& b);

/// Splits a formula into its top-level conjuncts (flattening nested ∧).
std::vector<Formula> TopLevelConjuncts(const Formula& formula);

/// Renders a term with item names from `db`, e.g. "(a + 1) * max(b, 0)".
std::string TermToString(const Database& db, const Term& term);
/// Renders a formula, e.g. "(a > 0 -> b > 0) & c > 0".
std::string FormulaToString(const Database& db, const Formula& formula);

/// Number of AST nodes in a formula (for benchmarks / complexity reporting).
size_t FormulaSize(const Formula& formula);

}  // namespace nse

#endif  // NSE_CONSTRAINTS_AST_H_
