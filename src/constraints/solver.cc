#include "constraints/solver.h"

#include <algorithm>
#include <functional>
#include <mutex>

#include "common/string_util.h"
#include "constraints/evaluator.h"

namespace nse {

namespace {

/// Caps for the memoized sampling domains. A conjunct's solution set is
/// usable for sampling only when it enumerates completely within
/// kConjunctSolutionCap solutions and kConjunctEnumNodeBudget search nodes;
/// otherwise the (one-time, bounded) attempt is remembered as incomplete
/// and every later draw falls straight back to the randomized search. The
/// node budget — not the solution cap — is what protects against conjuncts
/// whose enumeration tree is huge even though few assignments satisfy them.
constexpr uint64_t kConjunctSolutionCap = 4096;
constexpr uint64_t kConjunctEnumNodeBudget = 1u << 20;

/// Serialized cache key: block kind + tag [+ limit] + the block restriction
/// of the query state. Built with raw appends — this runs on every memoized
/// solver query, so no ostringstream. Type prefixes keep int / bool /
/// string values from aliasing.
std::string BlockKey(char kind, size_t tag, const DbState& state,
                     uint64_t limit = 0) {
  std::string key;
  key.reserve(16 + state.size() * 12);
  key.push_back(kind);
  key += std::to_string(tag);
  key.push_back(':');
  key += std::to_string(limit);
  for (const auto& [item, value] : state) {
    key.push_back('|');
    key += std::to_string(item);
    key.push_back('=');
    if (value.is_int()) {
      key += std::to_string(value.AsInt());
    } else if (value.is_bool()) {
      key.push_back(value.AsBool() ? 'T' : 'F');
    } else {
      // Length-prefixed so strings containing the delimiters cannot make
      // two distinct states serialize to the same key.
      const std::string& s = value.AsString();
      key.push_back('"');
      key += std::to_string(s.size());
      key.push_back(':');
      key += s;
    }
  }
  return key;
}

}  // namespace

SolverCache::SolverCache(size_t num_shards, size_t max_entries) {
  if (num_shards == 0) num_shards = 1;
  if (max_entries == 0) max_entries = 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  max_entries_ = max_entries;
  per_shard_cap_ = std::max<size_t>(1, max_entries / num_shards);
}

SolverCache::Shard& SolverCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

void SolverCache::EvictForInsert(Shard& shard) {
  // The loop condition (>= cap >= 1) guarantees at least one map is
  // non-empty on every pass.
  while (shard.verdicts.size() + shard.solutions.size() >= per_shard_cap_) {
    // Hash-order random replacement: drop the first entry of whichever map
    // holds more (solution sets are the expensive ones to hold, verdicts
    // the cheap ones to recompute — ties go to the verdicts).
    if (shard.solutions.size() > shard.verdicts.size()) {
      shard.solutions.erase(shard.solutions.begin());
    } else {
      shard.verdicts.erase(shard.verdicts.begin());
    }
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

std::optional<bool> SolverCache::LookupVerdict(const std::string& key) {
  Shard& shard = ShardFor(key);
  {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.verdicts.find(key);
    if (it != shard.verdicts.end()) {
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  shard.misses.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void SolverCache::StoreVerdict(const std::string& key, bool verdict) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  if (shard.verdicts.find(key) != shard.verdicts.end()) return;
  EvictForInsert(shard);
  shard.verdicts.emplace(key, verdict);
}

SolverCache::SolutionSet SolverCache::GetOrComputeSolutions(
    const std::string& key, const std::function<SolutionSet()>& compute) {
  Shard& shard = ShardFor(key);
  for (;;) {
    {
      std::shared_lock<std::shared_mutex> lock(shard.mu);
      auto it = shard.solutions.find(key);
      if (it != shard.solutions.end()) {
        shard.hits.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    std::shared_ptr<InflightSolutions> cell;
    bool owner = false;
    {
      std::unique_lock<std::shared_mutex> lock(shard.mu);
      auto it = shard.solutions.find(key);
      if (it != shard.solutions.end()) {
        shard.hits.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
      auto [slot, inserted] = shard.inflight.try_emplace(key);
      if (inserted) {
        slot->second = std::make_shared<InflightSolutions>();
        owner = true;
      }
      cell = slot->second;
    }
    if (!owner) {
      // Another worker is computing this key: wait for its once-cell
      // instead of recomputing the subtree. An abandoned cell (the owner
      // unwound) sends us back to compete for ownership.
      shard.coalesced.fetch_add(1, std::memory_order_relaxed);
      std::unique_lock<std::mutex> wait(cell->mu);
      cell->cv.wait(wait, [&] { return cell->done || cell->abandoned; });
      if (cell->done) return cell->result;
      continue;
    }
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    SolutionSet result;
    try {
      result = compute();
    } catch (...) {
      // Release the key and wake waiters so a failed computation degrades
      // to a retry instead of wedging the cell forever.
      {
        std::unique_lock<std::shared_mutex> lock(shard.mu);
        auto it = shard.inflight.find(key);
        // Erase only our own cell: a concurrent Clear() may have dropped
        // it and a new owner re-inserted a fresh one under the same key.
        if (it != shard.inflight.end() && it->second == cell) {
          shard.inflight.erase(it);
        }
      }
      {
        std::lock_guard<std::mutex> publish(cell->mu);
        cell->abandoned = true;
      }
      cell->cv.notify_all();
      throw;
    }
    shard.computes.fetch_add(1, std::memory_order_relaxed);
    {
      std::unique_lock<std::shared_mutex> lock(shard.mu);
      if (shard.solutions.find(key) == shard.solutions.end()) {
        EvictForInsert(shard);
      }
      shard.solutions.emplace(key, result);
      auto it = shard.inflight.find(key);
      if (it != shard.inflight.end() && it->second == cell) {
        shard.inflight.erase(it);
      }
    }
    {
      std::lock_guard<std::mutex> publish(cell->mu);
      cell->result = result;
      cell->done = true;
    }
    cell->cv.notify_all();
    return result;
  }
}

SolverCache::Stats SolverCache::stats() const {
  Stats out;
  for (const auto& shard : shards_) {
    out.hits += shard->hits.load(std::memory_order_relaxed);
    out.misses += shard->misses.load(std::memory_order_relaxed);
    out.computes += shard->computes.load(std::memory_order_relaxed);
    out.coalesced += shard->coalesced.load(std::memory_order_relaxed);
    out.evictions += shard->evictions.load(std::memory_order_relaxed);
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    out.entries += shard->verdicts.size() + shard->solutions.size();
  }
  return out;
}

void SolverCache::Clear() {
  for (const auto& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard->mu);
    shard->verdicts.clear();
    shard->solutions.clear();
    // In-flight owners finish against their once-cells and re-store into
    // the cleared map; dropping the entries only forgets the coalescing.
    shard->inflight.clear();
    shard->hits.store(0, std::memory_order_relaxed);
    shard->misses.store(0, std::memory_order_relaxed);
    shard->computes.store(0, std::memory_order_relaxed);
    shard->coalesced.store(0, std::memory_order_relaxed);
    shard->evictions.store(0, std::memory_order_relaxed);
  }
}

ConsistencyChecker::ConsistencyChecker(const Database& db,
                                       const IntegrityConstraint& ic)
    : db_(db), ic_(ic) {}

ConsistencyChecker::ConsistencyChecker(const Database& db,
                                       const IntegrityConstraint& ic,
                                       SolverCache* cache)
    : db_(db), ic_(ic), cache_(cache) {}

Result<bool> ConsistencyChecker::Satisfies(const DbState& state) const {
  for (ItemId item : ic_.constrained_items()) {
    if (!state.Has(item)) {
      return Status::FailedPrecondition(
          StrCat("Satisfies() requires all constrained items assigned; ",
                 db_.NameOf(item), " is missing"));
    }
  }
  if (!state.RespectsDomains(db_)) return false;
  for (size_t e = 0; e < ic_.num_conjuncts(); ++e) {
    NSE_ASSIGN_OR_RETURN(bool ok, EvalFormula(ic_.conjunct(e), state));
    if (!ok) return false;
  }
  return true;
}

std::vector<ItemId> ConsistencyChecker::UnassignedOf(
    const DataSet& d, const DbState& state) const {
  std::vector<ItemId> out;
  for (ItemId item : d) {
    if (!state.Has(item)) out.push_back(item);
  }
  std::stable_sort(out.begin(), out.end(), [this](ItemId a, ItemId b) {
    return db_.DomainOf(a).size() < db_.DomainOf(b).size();
  });
  return out;
}

bool ConsistencyChecker::SearchExtend(const Formula& formula,
                                      const std::vector<ItemId>& items,
                                      size_t idx, DbState& working) const {
  ++stats_.nodes;
  Truth truth = EvalFormulaPartial(formula, working);
  if (truth.has_value()) {
    if (!*truth) ++stats_.prunes;
    // If determined true, any domain completion works (domains are
    // non-empty by construction), so an extension exists.
    return *truth;
  }
  if (idx == items.size()) {
    // All relevant items assigned yet truth unknown can only stem from a
    // type error inside the formula; treat as unsatisfied.
    return false;
  }
  ItemId item = items[idx];
  const Domain& domain = db_.DomainOf(item);
  for (uint64_t i = 0; i < domain.size(); ++i) {
    working.Set(item, domain.At(i));
    if (SearchExtend(formula, items, idx + 1, working)) {
      working.Unset(item);
      return true;
    }
    working.Unset(item);
  }
  return false;
}

bool ConsistencyChecker::SearchWitness(const Formula& formula,
                                       const std::vector<ItemId>& items,
                                       size_t idx, DbState& working) const {
  ++stats_.nodes;
  Truth truth = EvalFormulaPartial(formula, working);
  if (truth.has_value() && !*truth) {
    ++stats_.prunes;
    return false;
  }
  if (idx == items.size()) {
    if (truth.has_value() && *truth) {
      ++stats_.solutions;
      return true;
    }
    return false;
  }
  ItemId item = items[idx];
  const Domain& domain = db_.DomainOf(item);
  for (uint64_t i = 0; i < domain.size(); ++i) {
    working.Set(item, domain.At(i));
    if (SearchWitness(formula, items, idx + 1, working)) return true;
    working.Unset(item);
  }
  return false;
}

bool ConsistencyChecker::SearchWitnessRandom(const Formula& formula,
                                             std::vector<ItemId> items,
                                             DbState& working,
                                             Rng& rng) const {
  rng.Shuffle(items);
  // Recursive lambda with per-level random value rotation.
  struct Frame {
    const ConsistencyChecker* self;
    const Formula* formula;
    const std::vector<ItemId>* items;
    Rng* rng;
    bool Go(size_t idx, DbState& working) const {
      ++self->stats_.nodes;
      Truth truth = EvalFormulaPartial(*formula, working);
      if (truth.has_value() && !*truth) {
        ++self->stats_.prunes;
        return false;
      }
      if (idx == items->size()) {
        return truth.has_value() && *truth;
      }
      ItemId item = (*items)[idx];
      const Domain& domain = self->db_.DomainOf(item);
      uint64_t n = domain.size();
      uint64_t offset = rng->NextBelow(n);
      for (uint64_t i = 0; i < n; ++i) {
        working.Set(item, domain.At((i + offset) % n));
        if (Go(idx + 1, working)) return true;
        working.Unset(item);
      }
      return false;
    }
  };
  Frame frame{this, &formula, &items, &rng};
  return frame.Go(0, working);
}

void ConsistencyChecker::EnumerateBlock(const Formula& formula,
                                        const std::vector<ItemId>& items,
                                        size_t idx, DbState& working,
                                        uint64_t limit,
                                        std::vector<DbState>& out,
                                        uint64_t* nodes_remaining,
                                        bool* aborted) const {
  if (out.size() >= limit) return;
  if (nodes_remaining != nullptr) {
    if (*nodes_remaining == 0) {
      if (aborted != nullptr) *aborted = true;
      return;
    }
    --*nodes_remaining;
  }
  ++stats_.nodes;
  Truth truth = EvalFormulaPartial(formula, working);
  if (truth.has_value() && !*truth) {
    ++stats_.prunes;
    return;
  }
  if (idx == items.size()) {
    if (truth.has_value() && *truth) {
      ++stats_.solutions;
      out.push_back(working);
    }
    return;
  }
  ItemId item = items[idx];
  const Domain& domain = db_.DomainOf(item);
  for (uint64_t i = 0; i < domain.size() && out.size() < limit; ++i) {
    if (aborted != nullptr && *aborted) break;
    working.Set(item, domain.At(i));
    EnumerateBlock(formula, items, idx + 1, working, limit, out,
                   nodes_remaining, aborted);
    working.Unset(item);
  }
}

bool ConsistencyChecker::ExtendBlockCached(
    const Formula& formula, char kind, size_t tag, const DbState& working,
    const std::vector<ItemId>& todo) const {
  if (cache_ == nullptr) {
    DbState scratch = working;
    return SearchExtend(formula, todo, 0, scratch);
  }
  std::string key = BlockKey(kind, tag, working);
  if (std::optional<bool> hit = cache_->LookupVerdict(key); hit.has_value()) {
    return *hit;
  }
  DbState scratch = working;
  bool verdict = SearchExtend(formula, todo, 0, scratch);
  cache_->StoreVerdict(key, verdict);
  return verdict;
}

Result<bool> ConsistencyChecker::IsConsistent(const DbState& state) const {
  if (!state.RespectsDomains(db_)) return false;
  if (!ic_.disjoint()) return IsConsistentGlobal(state);
  // Lemma 1: with pairwise-disjoint conjunct data sets, DS is extensible iff
  // each per-conjunct restriction is extensible.
  for (size_t e = 0; e < ic_.num_conjuncts(); ++e) {
    DbState working = state.Restrict(ic_.data_set(e));
    std::vector<ItemId> todo = UnassignedOf(ic_.data_set(e), working);
    if (!ExtendBlockCached(ic_.conjunct(e), 'C', e, working, todo)) {
      return false;
    }
  }
  return true;
}

Result<bool> ConsistencyChecker::IsConsistentGlobal(
    const DbState& state) const {
  if (!state.RespectsDomains(db_)) return false;
  DbState working = state.Restrict(ic_.constrained_items());
  std::vector<ItemId> todo = UnassignedOf(ic_.constrained_items(), working);
  Formula all = ic_.AsFormula();
  return ExtendBlockCached(all, 'G', 0, working, todo);
}

Result<std::optional<DbState>> ConsistencyChecker::FindConsistentExtension(
    const DbState& state) const {
  if (!state.RespectsDomains(db_)) return std::optional<DbState>();
  DbState witness = state;
  if (ic_.disjoint()) {
    for (size_t e = 0; e < ic_.num_conjuncts(); ++e) {
      DbState working = state.Restrict(ic_.data_set(e));
      std::vector<ItemId> todo = UnassignedOf(ic_.data_set(e), working);
      if (!SearchWitness(ic_.conjunct(e), todo, 0, working)) {
        return std::optional<DbState>();
      }
      witness = DbState::Override(witness, working);
    }
  } else {
    DbState working = state.Restrict(ic_.constrained_items());
    std::vector<ItemId> todo = UnassignedOf(ic_.constrained_items(), working);
    Formula all = ic_.AsFormula();
    if (!SearchWitness(all, todo, 0, working)) {
      return std::optional<DbState>();
    }
    witness = DbState::Override(witness, working);
  }
  // Complete unconstrained items with their first domain value.
  for (ItemId item = 0; item < db_.num_items(); ++item) {
    if (!witness.Has(item)) witness.Set(item, db_.DomainOf(item).At(0));
  }
  return std::optional<DbState>(witness);
}

SolverCache::SolutionSet ConsistencyChecker::ConjunctSolutionsCached(
    size_t e) const {
  // Per-key once-cell: concurrent cold workers asking for the same conjunct
  // run exactly one enumeration and share the result.
  std::string key = BlockKey('S', e, DbState());
  return cache_->GetOrComputeSolutions(key, [&] {
    SolverCache::SolutionSet set;
    auto states = std::make_shared<std::vector<DbState>>();
    DbState working;
    std::vector<ItemId> items(ic_.data_set(e).items());
    uint64_t nodes_remaining = kConjunctEnumNodeBudget;
    bool aborted = false;
    EnumerateBlock(ic_.conjunct(e), items, 0, working, kConjunctSolutionCap,
                   *states, &nodes_remaining, &aborted);
    set.complete = !aborted && states->size() < kConjunctSolutionCap;
    set.states = std::move(states);
    return set;
  });
}

void ConsistencyChecker::WarmSamplingDomains() const {
  if (cache_ == nullptr || !ic_.disjoint()) return;
  for (size_t e = 0; e < ic_.num_conjuncts(); ++e) {
    ConjunctSolutionsCached(e);
  }
}

Result<DbState> ConsistencyChecker::SampleConsistentState(Rng& rng) const {
  DbState out;
  if (ic_.disjoint()) {
    for (size_t e = 0; e < ic_.num_conjuncts(); ++e) {
      // With a cache: sample uniformly from the conjunct's enumerated
      // satisfying assignments (computed once, shared by every trial and
      // worker). Conjuncts too big to enumerate — and the uncached path —
      // use the randomized backtracking search.
      if (cache_ != nullptr) {
        SolverCache::SolutionSet set = ConjunctSolutionsCached(e);
        if (set.complete) {
          if (set.states->empty()) {
            return Status::FailedPrecondition(
                StrCat("conjunct ", e, " is unsatisfiable over its domains"));
          }
          out = DbState::Override(
              out, (*set.states)[rng.NextBelow(set.states->size())]);
          continue;
        }
      }
      DbState working;
      std::vector<ItemId> items(ic_.data_set(e).items());
      if (!SearchWitnessRandom(ic_.conjunct(e), items, working, rng)) {
        return Status::FailedPrecondition(
            StrCat("conjunct ", e, " is unsatisfiable over its domains"));
      }
      out = DbState::Override(out, working);
    }
  } else {
    DbState working;
    std::vector<ItemId> items(ic_.constrained_items().items());
    Formula all = ic_.AsFormula();
    if (!SearchWitnessRandom(all, items, working, rng)) {
      return Status::FailedPrecondition(
          "the IC is unsatisfiable over its domains");
    }
    out = working;
  }
  for (ItemId item = 0; item < db_.num_items(); ++item) {
    if (!out.Has(item)) {
      const Domain& domain = db_.DomainOf(item);
      out.Set(item, domain.At(rng.NextBelow(domain.size())));
    }
  }
  return out;
}

Result<std::vector<DbState>> ConsistencyChecker::EnumerateConsistentStates(
    uint64_t limit) const {
  return EnumerateConsistentExtensions(DbState(), limit);
}

Result<std::vector<DbState>> ConsistencyChecker::EnumerateConsistentExtensions(
    const DbState& pinned, uint64_t limit) const {
  // Blocks: one per conjunct (or one global block when overlapping), plus
  // one block for unconstrained items.
  struct Block {
    Formula formula;
    std::vector<ItemId> items;
  };
  std::vector<Block> blocks;
  if (ic_.disjoint()) {
    for (size_t e = 0; e < ic_.num_conjuncts(); ++e) {
      blocks.push_back({ic_.conjunct(e), ic_.data_set(e).items()});
    }
  } else {
    blocks.push_back({ic_.AsFormula(), ic_.constrained_items().items()});
  }
  std::vector<ItemId> unconstrained;
  for (ItemId item = 0; item < db_.num_items(); ++item) {
    if (!ic_.constrained_items().Contains(item)) unconstrained.push_back(item);
  }
  if (!unconstrained.empty()) {
    blocks.push_back({True(), std::move(unconstrained)});
  }

  // Enumerate each block's satisfying assignments — pinned items are fixed
  // in the working state, so branching happens on unpinned items only —
  // then take the cross product (bounded by `limit`). Each block's subtree
  // is memoized by (block, pinned restriction, limit): the pinned-read
  // states of sampled schedules overlap per conjunct far more than they do
  // jointly, so across a violation search most blocks are cache hits.
  std::vector<std::shared_ptr<const std::vector<DbState>>> per_block;
  for (size_t b = 0; b < blocks.size(); ++b) {
    const Block& block = blocks[b];
    DbState working;
    std::vector<ItemId> todo;
    for (ItemId item : block.items) {
      if (pinned.Has(item)) {
        working.Set(item, *pinned.Get(item));
      } else {
        todo.push_back(item);
      }
    }
    std::shared_ptr<const std::vector<DbState>> assignments =
        EnumerateBlockCached(block.formula, 'B', b, working, todo, limit);
    if (assignments->empty()) return std::vector<DbState>{};
    per_block.push_back(std::move(assignments));
  }

  std::vector<DbState> out;
  std::vector<size_t> cursor(per_block.size(), 0);
  while (out.size() < limit) {
    DbState state;
    for (size_t b = 0; b < per_block.size(); ++b) {
      state = DbState::Override(state, (*per_block[b])[cursor[b]]);
    }
    out.push_back(std::move(state));
    // Odometer increment.
    size_t b = per_block.size();
    while (b > 0) {
      --b;
      if (++cursor[b] < per_block[b]->size()) break;
      cursor[b] = 0;
      if (b == 0) return out;  // wrapped around: complete
    }
  }
  return out;
}

std::shared_ptr<const std::vector<DbState>>
ConsistencyChecker::EnumerateBlockCached(const Formula& formula, char kind,
                                         size_t tag, const DbState& working,
                                         const std::vector<ItemId>& todo,
                                         uint64_t limit) const {
  auto enumerate = [&] {
    auto states = std::make_shared<std::vector<DbState>>();
    DbState scratch = working;
    EnumerateBlock(formula, todo, 0, scratch, limit, *states);
    return states;
  };
  if (cache_ == nullptr) return enumerate();
  // Once-cell per (block, restriction, limit): a cold subtree is computed
  // by exactly one worker, everyone else coalesces onto its result.
  std::string key = BlockKey(kind, tag, working, limit);
  SolverCache::SolutionSet set = cache_->GetOrComputeSolutions(key, [&] {
    SolverCache::SolutionSet fresh;
    fresh.states = enumerate();
    fresh.complete = fresh.states->size() < limit;
    return fresh;
  });
  return set.states;
}

Result<bool> ConsistencyChecker::IsSatisfiable() const {
  return IsConsistent(DbState());
}

}  // namespace nse
