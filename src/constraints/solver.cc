#include "constraints/solver.h"

#include <algorithm>

#include "common/string_util.h"
#include "constraints/evaluator.h"

namespace nse {

ConsistencyChecker::ConsistencyChecker(const Database& db,
                                       const IntegrityConstraint& ic)
    : db_(db), ic_(ic) {}

Result<bool> ConsistencyChecker::Satisfies(const DbState& state) const {
  for (ItemId item : ic_.constrained_items()) {
    if (!state.Has(item)) {
      return Status::FailedPrecondition(
          StrCat("Satisfies() requires all constrained items assigned; ",
                 db_.NameOf(item), " is missing"));
    }
  }
  if (!state.RespectsDomains(db_)) return false;
  for (size_t e = 0; e < ic_.num_conjuncts(); ++e) {
    NSE_ASSIGN_OR_RETURN(bool ok, EvalFormula(ic_.conjunct(e), state));
    if (!ok) return false;
  }
  return true;
}

std::vector<ItemId> ConsistencyChecker::UnassignedOf(
    const DataSet& d, const DbState& state) const {
  std::vector<ItemId> out;
  for (ItemId item : d) {
    if (!state.Has(item)) out.push_back(item);
  }
  std::stable_sort(out.begin(), out.end(), [this](ItemId a, ItemId b) {
    return db_.DomainOf(a).size() < db_.DomainOf(b).size();
  });
  return out;
}

bool ConsistencyChecker::SearchExtend(const Formula& formula,
                                      const std::vector<ItemId>& items,
                                      size_t idx, DbState& working) const {
  ++stats_.nodes;
  Truth truth = EvalFormulaPartial(formula, working);
  if (truth.has_value()) {
    if (!*truth) ++stats_.prunes;
    // If determined true, any domain completion works (domains are
    // non-empty by construction), so an extension exists.
    return *truth;
  }
  if (idx == items.size()) {
    // All relevant items assigned yet truth unknown can only stem from a
    // type error inside the formula; treat as unsatisfied.
    return false;
  }
  ItemId item = items[idx];
  const Domain& domain = db_.DomainOf(item);
  for (uint64_t i = 0; i < domain.size(); ++i) {
    working.Set(item, domain.At(i));
    if (SearchExtend(formula, items, idx + 1, working)) {
      working.Unset(item);
      return true;
    }
    working.Unset(item);
  }
  return false;
}

bool ConsistencyChecker::SearchWitness(const Formula& formula,
                                       const std::vector<ItemId>& items,
                                       size_t idx, DbState& working) const {
  ++stats_.nodes;
  Truth truth = EvalFormulaPartial(formula, working);
  if (truth.has_value() && !*truth) {
    ++stats_.prunes;
    return false;
  }
  if (idx == items.size()) {
    if (truth.has_value() && *truth) {
      ++stats_.solutions;
      return true;
    }
    return false;
  }
  ItemId item = items[idx];
  const Domain& domain = db_.DomainOf(item);
  for (uint64_t i = 0; i < domain.size(); ++i) {
    working.Set(item, domain.At(i));
    if (SearchWitness(formula, items, idx + 1, working)) return true;
    working.Unset(item);
  }
  return false;
}

bool ConsistencyChecker::SearchWitnessRandom(const Formula& formula,
                                             std::vector<ItemId> items,
                                             DbState& working,
                                             Rng& rng) const {
  rng.Shuffle(items);
  // Recursive lambda with per-level random value rotation.
  struct Frame {
    const ConsistencyChecker* self;
    const Formula* formula;
    const std::vector<ItemId>* items;
    Rng* rng;
    bool Go(size_t idx, DbState& working) const {
      ++self->stats_.nodes;
      Truth truth = EvalFormulaPartial(*formula, working);
      if (truth.has_value() && !*truth) {
        ++self->stats_.prunes;
        return false;
      }
      if (idx == items->size()) {
        return truth.has_value() && *truth;
      }
      ItemId item = (*items)[idx];
      const Domain& domain = self->db_.DomainOf(item);
      uint64_t n = domain.size();
      uint64_t offset = rng->NextBelow(n);
      for (uint64_t i = 0; i < n; ++i) {
        working.Set(item, domain.At((i + offset) % n));
        if (Go(idx + 1, working)) return true;
        working.Unset(item);
      }
      return false;
    }
  };
  Frame frame{this, &formula, &items, &rng};
  return frame.Go(0, working);
}

void ConsistencyChecker::EnumerateBlock(const Formula& formula,
                                        const std::vector<ItemId>& items,
                                        size_t idx, DbState& working,
                                        uint64_t limit,
                                        std::vector<DbState>& out) const {
  if (out.size() >= limit) return;
  ++stats_.nodes;
  Truth truth = EvalFormulaPartial(formula, working);
  if (truth.has_value() && !*truth) {
    ++stats_.prunes;
    return;
  }
  if (idx == items.size()) {
    if (truth.has_value() && *truth) {
      ++stats_.solutions;
      out.push_back(working);
    }
    return;
  }
  ItemId item = items[idx];
  const Domain& domain = db_.DomainOf(item);
  for (uint64_t i = 0; i < domain.size() && out.size() < limit; ++i) {
    working.Set(item, domain.At(i));
    EnumerateBlock(formula, items, idx + 1, working, limit, out);
    working.Unset(item);
  }
}

Result<bool> ConsistencyChecker::IsConsistent(const DbState& state) const {
  if (!state.RespectsDomains(db_)) return false;
  if (!ic_.disjoint()) return IsConsistentGlobal(state);
  // Lemma 1: with pairwise-disjoint conjunct data sets, DS is extensible iff
  // each per-conjunct restriction is extensible.
  for (size_t e = 0; e < ic_.num_conjuncts(); ++e) {
    DbState working = state.Restrict(ic_.data_set(e));
    std::vector<ItemId> todo = UnassignedOf(ic_.data_set(e), working);
    if (!SearchExtend(ic_.conjunct(e), todo, 0, working)) return false;
  }
  return true;
}

Result<bool> ConsistencyChecker::IsConsistentGlobal(
    const DbState& state) const {
  if (!state.RespectsDomains(db_)) return false;
  DbState working = state.Restrict(ic_.constrained_items());
  std::vector<ItemId> todo = UnassignedOf(ic_.constrained_items(), working);
  Formula all = ic_.AsFormula();
  return SearchExtend(all, todo, 0, working);
}

Result<std::optional<DbState>> ConsistencyChecker::FindConsistentExtension(
    const DbState& state) const {
  if (!state.RespectsDomains(db_)) return std::optional<DbState>();
  DbState witness = state;
  if (ic_.disjoint()) {
    for (size_t e = 0; e < ic_.num_conjuncts(); ++e) {
      DbState working = state.Restrict(ic_.data_set(e));
      std::vector<ItemId> todo = UnassignedOf(ic_.data_set(e), working);
      if (!SearchWitness(ic_.conjunct(e), todo, 0, working)) {
        return std::optional<DbState>();
      }
      witness = DbState::Override(witness, working);
    }
  } else {
    DbState working = state.Restrict(ic_.constrained_items());
    std::vector<ItemId> todo = UnassignedOf(ic_.constrained_items(), working);
    Formula all = ic_.AsFormula();
    if (!SearchWitness(all, todo, 0, working)) {
      return std::optional<DbState>();
    }
    witness = DbState::Override(witness, working);
  }
  // Complete unconstrained items with their first domain value.
  for (ItemId item = 0; item < db_.num_items(); ++item) {
    if (!witness.Has(item)) witness.Set(item, db_.DomainOf(item).At(0));
  }
  return std::optional<DbState>(witness);
}

Result<DbState> ConsistencyChecker::SampleConsistentState(Rng& rng) const {
  DbState out;
  if (ic_.disjoint()) {
    for (size_t e = 0; e < ic_.num_conjuncts(); ++e) {
      DbState working;
      std::vector<ItemId> items(ic_.data_set(e).items());
      if (!SearchWitnessRandom(ic_.conjunct(e), items, working, rng)) {
        return Status::FailedPrecondition(
            StrCat("conjunct ", e, " is unsatisfiable over its domains"));
      }
      out = DbState::Override(out, working);
    }
  } else {
    DbState working;
    std::vector<ItemId> items(ic_.constrained_items().items());
    Formula all = ic_.AsFormula();
    if (!SearchWitnessRandom(all, items, working, rng)) {
      return Status::FailedPrecondition(
          "the IC is unsatisfiable over its domains");
    }
    out = working;
  }
  for (ItemId item = 0; item < db_.num_items(); ++item) {
    if (!out.Has(item)) {
      const Domain& domain = db_.DomainOf(item);
      out.Set(item, domain.At(rng.NextBelow(domain.size())));
    }
  }
  return out;
}

Result<std::vector<DbState>> ConsistencyChecker::EnumerateConsistentStates(
    uint64_t limit) const {
  return EnumerateConsistentExtensions(DbState(), limit);
}

Result<std::vector<DbState>> ConsistencyChecker::EnumerateConsistentExtensions(
    const DbState& pinned, uint64_t limit) const {
  // Blocks: one per conjunct (or one global block when overlapping), plus
  // one block for unconstrained items.
  struct Block {
    Formula formula;
    std::vector<ItemId> items;
  };
  std::vector<Block> blocks;
  if (ic_.disjoint()) {
    for (size_t e = 0; e < ic_.num_conjuncts(); ++e) {
      blocks.push_back({ic_.conjunct(e), ic_.data_set(e).items()});
    }
  } else {
    blocks.push_back({ic_.AsFormula(), ic_.constrained_items().items()});
  }
  std::vector<ItemId> unconstrained;
  for (ItemId item = 0; item < db_.num_items(); ++item) {
    if (!ic_.constrained_items().Contains(item)) unconstrained.push_back(item);
  }
  if (!unconstrained.empty()) {
    blocks.push_back({True(), std::move(unconstrained)});
  }

  // Enumerate each block's satisfying assignments — pinned items are fixed
  // in the working state, so branching happens on unpinned items only —
  // then take the cross product (bounded by `limit`).
  std::vector<std::vector<DbState>> per_block;
  for (const Block& block : blocks) {
    std::vector<DbState> assignments;
    DbState working;
    std::vector<ItemId> todo;
    for (ItemId item : block.items) {
      if (pinned.Has(item)) {
        working.Set(item, *pinned.Get(item));
      } else {
        todo.push_back(item);
      }
    }
    EnumerateBlock(block.formula, todo, 0, working, limit, assignments);
    if (assignments.empty()) return std::vector<DbState>{};
    per_block.push_back(std::move(assignments));
  }

  std::vector<DbState> out;
  std::vector<size_t> cursor(per_block.size(), 0);
  while (out.size() < limit) {
    DbState state;
    for (size_t b = 0; b < per_block.size(); ++b) {
      state = DbState::Override(state, per_block[b][cursor[b]]);
    }
    out.push_back(std::move(state));
    // Odometer increment.
    size_t b = per_block.size();
    while (b > 0) {
      --b;
      if (++cursor[b] < per_block[b].size()) break;
      cursor[b] = 0;
      if (b == 0) return out;  // wrapped around: complete
    }
  }
  return out;
}

Result<bool> ConsistencyChecker::IsSatisfiable() const {
  return IsConsistent(DbState());
}

}  // namespace nse
