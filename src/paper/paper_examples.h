// The paper's worked examples as executable fixtures, shared by the test
// suite (ground truth), the example binaries (narration), and the benchmark
// harness (E1–E5 of DESIGN.md).
//
// Values, initial states, schedules, and outcomes are transcribed from the
// paper. Where the scanned source garbles a program (Examples 1 and 5), the
// statement is reconstructed so that executing it reproduces the paper's
// printed schedule and final state exactly; the reconstruction is noted at
// the definition.

#ifndef NSE_PAPER_PAPER_EXAMPLES_H_
#define NSE_PAPER_PAPER_EXAMPLES_H_

#include <optional>
#include <vector>

#include "constraints/integrity_constraint.h"
#include "state/database.h"
#include "state/db_state.h"
#include "txn/program.h"

namespace nse::paper {

/// Example 1 (§2.2) — notation: transactions, RS/read/WS/write, projections.
///   TP1: if (a >= 0) then b := c else c := d;     TP2: d := a
///   DS1 = {(a,0), (b,10), (c,5), (d,10)}
///   S   = r1(a,0), r2(a,0), w2(d,0), r1(c,5), w1(b,5)
/// (The journal scan prints the second operation as "r1(a, 0)"; it belongs
/// to T2. The branch condition "(a0)" is reconstructed as a >= 0.)
struct Example1 {
  Database db;
  DbState ds1;
  TransactionProgram tp1;
  TransactionProgram tp2;
  /// Choice sequence producing the paper's S from {tp1, tp2}.
  std::vector<size_t> choices;
  /// Expected final state DS2 = {(a,0), (b,5), (c,5), (d,0)}.
  DbState ds2_expected;

  static Example1 Make();
};

/// Example 2 (§3) — a PWSR schedule that is not strongly correct; also the
/// scenario of Example 3 (§3.1), which examines the same execution at
/// p = w1(a,1).
///   IC = (a > 0 -> b > 0) ∧ (c > 0),  d1 = {a,b}, d2 = {c}
///   TP1: a := 1; if (c > 0) then b := |b| + 1
///   TP2: if (a > 0) then c := b
///   DS0 = {(a,-1), (b,-1), (c,1)}
///   S   = w1(a,1), r2(a,1), r2(b,-1), w2(c,-1), r1(c,-1)
struct Example2 {
  Database db;
  std::optional<IntegrityConstraint> ic;
  DbState ds0;
  TransactionProgram tp1;
  TransactionProgram tp2;
  /// TP1', the fixed-structure repair: else-branch "b := b".
  TransactionProgram tp1_fixed;
  std::vector<size_t> choices;
  /// Expected (inconsistent) final state {(a,1), (b,-1), (c,-1)}.
  DbState ds2_expected;

  static Example2 Make();
};

/// Example 4 (§3.2) — Lemma 7 needs DS1^d ∪ read(T) consistent *jointly*:
///   IC = (a = b ∧ b = c) as one conjunct, d = {a, b}
///   TP1: a := c
///   DS1 = {(a,-1), (b,-1), (c,1)}  →  T1 = r1(c,1), w1(a,1)
struct Example4 {
  Database db;
  std::optional<IntegrityConstraint> ic;
  DbState ds1;
  TransactionProgram tp1;
  /// d = {a, b}.
  DataSet d;
  /// Expected final state {(a,1), (b,-1), (c,1)}.
  DbState ds2_expected;

  static Example4 Make();
};

/// Example 5 (§3.3) — overlapping conjuncts defeat every theorem:
///   IC = (a > b) ∧ (a = c) ∧ (d > 0)   — conjuncts share item a
///   TP1: b := c - 5;   TP2: a := c + 20; c := c + 20;   TP3: d := a - b
///   DS0 = {(a,10), (b,0), (c,10), (d,5)}
///   S   = r3(a,10), r2(c,10), w2(a,30), w2(c,30), r1(c,30), w1(b,25),
///         r3(b,25), w3(d,-15)
/// (The scan garbles TP1 and attributes two of T3's operations to other
/// transactions; the reconstruction above reproduces the printed values:
/// w1(b,25) from c = 30, and w3(d,-15) = 10 - 25.)
struct Example5 {
  Database db;
  std::optional<IntegrityConstraint> ic;  ///< built with ConjunctOverlap::kAllow
  DbState ds0;
  TransactionProgram tp1;
  TransactionProgram tp2;
  TransactionProgram tp3;
  std::vector<size_t> choices;
  /// Expected (inconsistent) final state {(a,30), (b,25), (c,30), (d,-15)}.
  DbState ds2_expected;

  static Example5 Make();
};

}  // namespace nse::paper

#endif  // NSE_PAPER_PAPER_EXAMPLES_H_
