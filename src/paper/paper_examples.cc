#include "paper/paper_examples.h"

#include "common/logging.h"

namespace nse::paper {

namespace {

Database SmallDb(std::initializer_list<const char*> names, int64_t lo,
                 int64_t hi) {
  Database db;
  for (const char* name : names) {
    auto id = db.AddItem(name, Domain::IntRange(lo, hi));
    NSE_CHECK(id.ok());
  }
  return db;
}

IntegrityConstraint MustParseIc(const Database& db, const char* text,
                                ConjunctOverlap overlap) {
  auto ic = IntegrityConstraint::Parse(db, text, overlap);
  NSE_CHECK_MSG(ic.ok(), "IC parse: %s", ic.status().ToString().c_str());
  return std::move(ic).value();
}

}  // namespace

Example1 Example1::Make() {
  Example1 ex;
  ex.db = SmallDb({"a", "b", "c", "d"}, -32, 32);
  ex.ds1 = DbState::OfNamed(ex.db, {{"a", Value(0)},
                                    {"b", Value(10)},
                                    {"c", Value(5)},
                                    {"d", Value(10)}});
  ex.tp1 = TransactionProgram(
      "TP1", {MustIf(ex.db, "a >= 0", {MustAssign(ex.db, "b", "c")},
                     {MustAssign(ex.db, "c", "d")})});
  ex.tp2 = TransactionProgram("TP2", {MustAssign(ex.db, "d", "a")});
  // S: r1(a,0) r2(a,0) w2(d,0) r1(c,5) w1(b,5).
  ex.choices = {0, 1, 1, 0, 0};
  ex.ds2_expected = DbState::OfNamed(ex.db, {{"a", Value(0)},
                                             {"b", Value(5)},
                                             {"c", Value(5)},
                                             {"d", Value(0)}});
  return ex;
}

Example2 Example2::Make() {
  Example2 ex;
  ex.db = SmallDb({"a", "b", "c"}, -8, 8);
  ex.ic = MustParseIc(ex.db, "(a > 0 -> b > 0) & c > 0",
                      ConjunctOverlap::kReject);
  ex.ds0 = DbState::OfNamed(
      ex.db, {{"a", Value(-1)}, {"b", Value(-1)}, {"c", Value(1)}});
  ex.tp1 = TransactionProgram(
      "TP1", {MustAssign(ex.db, "a", "1"),
              MustIf(ex.db, "c > 0",
                     {MustAssign(ex.db, "b", "abs(b) + 1")})});
  ex.tp2 = TransactionProgram(
      "TP2", {MustIf(ex.db, "a > 0", {MustAssign(ex.db, "c", "b")})});
  ex.tp1_fixed = TransactionProgram(
      "TP1'", {MustAssign(ex.db, "a", "1"),
               MustIf(ex.db, "c > 0",
                      {MustAssign(ex.db, "b", "abs(b) + 1")},
                      {MustAssign(ex.db, "b", "b")})});
  // S: w1(a,1) r2(a,1) r2(b,-1) w2(c,-1) r1(c,-1).
  ex.choices = {0, 1, 1, 1, 0};
  ex.ds2_expected = DbState::OfNamed(
      ex.db, {{"a", Value(1)}, {"b", Value(-1)}, {"c", Value(-1)}});
  return ex;
}

Example4 Example4::Make() {
  Example4 ex;
  ex.db = SmallDb({"a", "b", "c"}, -8, 8);
  // One conjunct over {a, b, c}: the example is about joint consistency of
  // DS1^d ∪ read(T1), not about conjunct partitioning.
  ex.ic = MustParseIc(ex.db, "a = b & b = c", ConjunctOverlap::kAllow);
  {
    // a = b and b = c share item b; fold them into a single conjunct so the
    // standing disjointness assumption holds.
    auto folded = IntegrityConstraint::FromConjuncts(
        ex.db, {And(ex.ic->conjunct(0), ex.ic->conjunct(1))});
    NSE_CHECK(folded.ok());
    ex.ic = std::move(folded).value();
  }
  ex.ds1 = DbState::OfNamed(
      ex.db, {{"a", Value(-1)}, {"b", Value(-1)}, {"c", Value(1)}});
  ex.tp1 = TransactionProgram("TP1", {MustAssign(ex.db, "a", "c")});
  ex.d = ex.db.SetOf({"a", "b"});
  ex.ds2_expected = DbState::OfNamed(
      ex.db, {{"a", Value(1)}, {"b", Value(-1)}, {"c", Value(1)}});
  return ex;
}

Example5 Example5::Make() {
  Example5 ex;
  ex.db = SmallDb({"a", "b", "c", "d"}, -64, 64);
  ex.ic = MustParseIc(ex.db, "a > b & a = c & d > 0",
                      ConjunctOverlap::kAllow);
  ex.ds0 = DbState::OfNamed(ex.db, {{"a", Value(10)},
                                    {"b", Value(0)},
                                    {"c", Value(10)},
                                    {"d", Value(5)}});
  ex.tp1 = TransactionProgram("TP1", {MustAssign(ex.db, "b", "c - 5")});
  ex.tp2 = TransactionProgram("TP2", {MustAssign(ex.db, "a", "c + 20"),
                                      MustAssign(ex.db, "c", "c + 20")});
  ex.tp3 = TransactionProgram("TP3", {MustAssign(ex.db, "d", "a - b")});
  // S: r3(a,10) r2(c,10) w2(a,30) w2(c,30) r1(c,30) w1(b,25) r3(b,25)
  //    w3(d,-15).    (programs indexed 0=TP1, 1=TP2, 2=TP3)
  ex.choices = {2, 1, 1, 1, 0, 0, 2, 2};
  ex.ds2_expected = DbState::OfNamed(ex.db, {{"a", Value(30)},
                                             {"b", Value(25)},
                                             {"c", Value(30)},
                                             {"d", Value(-15)}});
  return ex;
}

}  // namespace nse::paper
