// The versioned JSON-lines history format (docs/history-format.md): one
// JSON object per line, first line a header pinning the format version,
// every following line one event. The parser is strict — malformed JSON,
// unknown types or keys, missing fields, protocol violations (out-of-order
// commit, operation before begin, duplicate transaction ids, a read_from
// naming a never-written version) all return typed Status errors through
// the Result<History> envelope; a parse never crashes and never yields a
// history that fails ValidateHistory.
//
//   {"type":"history","v":1}
//   {"type":"begin","txn":1}
//   {"type":"write","txn":1,"item":"a","value":1}
//   {"type":"read","txn":2,"item":"a","value":1,"from":1}
//   {"type":"commit","txn":1}
//   {"type":"abort","txn":2}
//
// Values are int64 / bool / string (the Value types); `value` and `from`
// are optional (a value defaults to 0 — class membership is structural).
// Items are named; the catalog is derived in first-appearance order.

#ifndef NSE_HISTORY_HISTORY_IO_H_
#define NSE_HISTORY_HISTORY_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "history/history.h"

namespace nse {

/// Parses a complete JSON-lines history text. Blank lines are allowed and
/// skipped; everything else must parse, and the event protocol must hold
/// (the returned history passes ValidateHistory by construction).
Result<History> ParseHistory(std::string_view text);

/// Reads and parses a history file; IO failures map to NotFound.
Result<History> ReadHistoryFile(const std::string& path);

/// Serializes a history back to JSON-lines text (header line included).
/// ParseHistory(SerializeHistory(h)) reproduces `h` event-for-event for any
/// history that validates.
std::string SerializeHistory(const History& history);

/// Serializes one event as a single JSON line (no trailing newline).
std::string SerializeHistoryEvent(const History& history,
                                  const HistoryEvent& event);

}  // namespace nse

#endif  // NSE_HISTORY_HISTORY_IO_H_
