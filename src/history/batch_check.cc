#include "history/batch_check.h"

#include <algorithm>

#include "analysis/analysis_context.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "constraints/ast.h"

namespace nse {

bool BatchReport::ok() const {
  if (!full.ok || !aborted_reads.empty()) return false;
  return std::all_of(planes.begin(), planes.end(),
                     [](const BatchPlaneReport& p) { return p.ok; });
}

namespace {

BatchPlaneReport PlaneFromCsr(const CsrReport& csr,
                              const std::vector<size_t>& source_events) {
  BatchPlaneReport plane;
  plane.ok = csr.serializable;
  if (!csr.serializable) {
    // Incremental builds always record the closing edge and its position.
    NSE_CHECK(csr.cycle_edge.has_value() && csr.cycle_op_pos.has_value() &&
              csr.cycle.has_value());
    BatchViolation violation;
    violation.edge = *csr.cycle_edge;
    violation.event = source_events[*csr.cycle_op_pos];
    violation.cycle = *csr.cycle;
    plane.violation = std::move(violation);
  }
  return plane;
}

}  // namespace

std::vector<size_t> AbortedReadEvents(const History& history) {
  CommittedProjection proj = CommittedProjectionOf(history);
  std::vector<size_t> events;
  for (size_t i = 0; i < history.events.size(); ++i) {
    const HistoryEvent& e = history.events[i];
    if (e.type != HistoryEventType::kRead || !e.read_from.has_value() ||
        *e.read_from == 0) {
      continue;
    }
    if (proj.FateOf(e.txn) == TxnFate::kCommitted &&
        proj.FateOf(*e.read_from) == TxnFate::kAborted) {
      events.push_back(i);
    }
  }
  return events;
}

BatchReport CheckHistoryBatch(const History& history,
                              const std::vector<DataSet>& planes) {
  CommittedProjection proj = CommittedProjectionOf(history);
  BatchReport report;
  report.aborted_reads = AbortedReadEvents(history);

  if (planes.empty()) {
    AnalysisContext ctx(proj.schedule);
    report.full = PlaneFromCsr(ctx.csr_report(), proj.source_events);
    return report;
  }

  auto ic = PlanesAsConstraint(history.db, planes, ConjunctOverlap::kAllow);
  NSE_CHECK(ic.ok());
  AnalysisContext ctx(*ic, proj.schedule);
  report.full = PlaneFromCsr(ctx.csr_report(), proj.source_events);
  const PwsrReport& pwsr = ctx.pwsr_report();
  NSE_CHECK(pwsr.per_conjunct.size() == planes.size());
  for (const ConjunctSerializability& entry : pwsr.per_conjunct) {
    report.planes.push_back(PlaneFromCsr(entry.csr, proj.source_events));
  }
  return report;
}

Result<IntegrityConstraint> PlanesAsConstraint(
    const Database& db, const std::vector<DataSet>& planes,
    ConjunctOverlap overlap) {
  std::vector<Formula> conjuncts;
  conjuncts.reserve(planes.size());
  for (const DataSet& plane : planes) {
    if (plane.empty()) {
      return Status::InvalidArgument("a plane must contain at least one item");
    }
    std::optional<Term> sum;
    for (ItemId item : plane) {
      if (item >= db.num_items()) {
        return Status::NotFound(StrCat("plane references unknown item ", item));
      }
      Term var = Var(item);
      sum = sum.has_value() ? Add(std::move(*sum), std::move(var))
                            : std::move(var);
    }
    conjuncts.push_back(Ge(std::move(*sum), Const(Value(int64_t{0}))));
  }
  return IntegrityConstraint::FromConjuncts(db, std::move(conjuncts), overlap);
}

}  // namespace nse
