// Black-box transaction histories: the external-log counterpart of the
// simulator/engine traces. A History is an ordered event log — begin, read,
// write, commit, abort — over a derived item catalog, produced by an
// external system (or by our own drivers through trace_export.h) and
// consumed without knowing which scheduler generated it, the
// online-auditor scenario of ROADMAP item 4 (Nagar–Jagannathan's
// weak-consistency violation detection; Biswas–Enea's polynomial
// fragments).
//
// Reads may carry an optional `read_from` version annotation naming the
// transaction whose write produced the observed version (0 = the initial
// state), the same sidecar convention as VersionAnnotations — that is what
// makes dirty reads (a committed reader observing an aborted write)
// decidable from the log alone.
//
// ValidateHistory enforces the event protocol (one begin per transaction,
// operations only while active, commit/abort exactly once, annotations
// only on versions actually written); CommittedProjectionOf derives the
// committed Schedule the batch analysis plane (AnalysisContext +
// CheckerRegistry) consumes, with a position map back to log event indices
// so witnesses from either plane land in the same coordinate system.

#ifndef NSE_HISTORY_HISTORY_H_
#define NSE_HISTORY_HISTORY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/multiversion.h"
#include "common/status.h"
#include "state/database.h"
#include "txn/schedule.h"

namespace nse {

/// Current (and only) history format version.
inline constexpr int kHistoryFormatVersion = 1;

/// One log event.
enum class HistoryEventType : uint8_t { kBegin, kRead, kWrite, kCommit, kAbort };

/// "begin", "read", "write", "commit", or "abort".
const char* HistoryEventTypeName(HistoryEventType type);

/// One event of a history log. `item`, `value` and `read_from` are
/// meaningful only for reads/writes (`read_from` only for reads).
struct HistoryEvent {
  HistoryEventType type = HistoryEventType::kBegin;
  TxnId txn = 0;
  ItemId item = 0;
  Value value;
  /// Version annotation: the transaction whose write produced the observed
  /// version (0 = initial state). Absent reads resolve positionally.
  std::optional<TxnId> read_from;

  static HistoryEvent Begin(TxnId txn) {
    return HistoryEvent{HistoryEventType::kBegin, txn, 0, Value(), {}};
  }
  static HistoryEvent Read(TxnId txn, ItemId item, Value value,
                           std::optional<TxnId> from = std::nullopt) {
    return HistoryEvent{HistoryEventType::kRead, txn, item, std::move(value),
                        from};
  }
  static HistoryEvent Write(TxnId txn, ItemId item, Value value) {
    return HistoryEvent{HistoryEventType::kWrite, txn, item, std::move(value),
                        {}};
  }
  static HistoryEvent Commit(TxnId txn) {
    return HistoryEvent{HistoryEventType::kCommit, txn, 0, Value(), {}};
  }
  static HistoryEvent Abort(TxnId txn) {
    return HistoryEvent{HistoryEventType::kAbort, txn, 0, Value(), {}};
  }

  friend bool operator==(const HistoryEvent& a, const HistoryEvent& b) {
    return a.type == b.type && a.txn == b.txn && a.item == b.item &&
           a.value == b.value && a.read_from == b.read_from;
  }
};

/// A parsed (or constructed) history: the derived item catalog plus the
/// event log. Constructed histories should pass ValidateHistory before any
/// analysis; ParseHistory returns only validated histories.
struct History {
  int version = kHistoryFormatVersion;
  Database db;
  std::vector<HistoryEvent> events;
};

/// Final state of a transaction in a history.
enum class TxnFate : uint8_t { kCommitted, kAborted, kIncomplete };

/// Checks the event protocol over the whole log. Violations yield typed
/// errors (InvalidArgument / FailedPrecondition), never a crash:
///   - txn ids are >= 1 and items are registered in `history.db`;
///   - a transaction begins exactly once, before any of its operations;
///   - no operation or re-begin after the transaction commits or aborts;
///   - commit/abort name a begun, still-active transaction (an out-of-order
///     or duplicate commit is rejected);
///   - a `read_from` annotation names 0 (initial state) or a transaction
///     that wrote the item at an earlier log position (a read of a
///     never-written version is rejected).
Status ValidateHistory(const History& history);

/// The committed projection of a history: what the batch analysis plane
/// checks. Operations of transactions whose fate is kCommitted, in log
/// order, with the version annotations lifted into the checker sidecar.
struct CommittedProjection {
  Schedule schedule;              ///< committed operations, log order
  VersionAnnotations annotations; ///< read_from per position (reads only)
  /// schedule position -> index of the originating event in History.events;
  /// the shared coordinate map between batch witnesses (schedule positions)
  /// and streaming witnesses (log event indices).
  std::vector<size_t> source_events;
  /// Fate per transaction id present in the log, ascending by txn id,
  /// parallel to `txn_ids`.
  std::vector<TxnId> txn_ids;
  std::vector<TxnFate> fates;

  /// Fate of `txn`, or kIncomplete if the id never appears.
  TxnFate FateOf(TxnId txn) const;
};

/// Derives the committed projection. The history must validate; call
/// ValidateHistory first on untrusted input (ParseHistory already does).
CommittedProjection CommittedProjectionOf(const History& history);

}  // namespace nse

#endif  // NSE_HISTORY_HISTORY_H_
