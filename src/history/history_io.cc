#include "history/history_io.h"

#include <cctype>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/string_util.h"

namespace nse {
namespace {

// ---- minimal strict JSON for one flat object per line -----------------------
//
// The format only ever uses flat objects whose values are integers,
// booleans, or strings, so the scanner below supports exactly that; nested
// containers, floats, null, and \u escapes are rejected with a typed error
// rather than silently accepted.

struct JsonValue {
  enum class Kind { kInt, kBool, kString } kind = Kind::kInt;
  int64_t int_value = 0;
  bool bool_value = false;
  std::string string_value;
};

class LineScanner {
 public:
  explicit LineScanner(std::string_view text) : text_(text) {}

  Status ParseObject(std::vector<std::pair<std::string, JsonValue>>* out) {
    SkipSpace();
    if (!Consume('{')) return Err("expected '{'");
    SkipSpace();
    if (Consume('}')) return Finish();
    while (true) {
      std::string key;
      NSE_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) return Err("expected ':' after key");
      JsonValue value;
      NSE_RETURN_IF_ERROR(ParseValue(&value));
      for (const auto& [existing, unused] : *out) {
        (void)unused;
        if (existing == key) return Err(StrCat("duplicate key \"", key, "\""));
      }
      out->emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) {
        SkipSpace();
        continue;
      }
      if (Consume('}')) return Finish();
      return Err("expected ',' or '}'");
    }
  }

 private:
  Status Finish() {
    SkipSpace();
    if (pos_ != text_.size()) return Err("trailing characters after object");
    return Status::Ok();
  }

  Status ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Err("unexpected end of line");
    char c = text_[pos_];
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string_value);
    }
    if (c == 't' || c == 'f') {
      const std::string_view word = c == 't' ? "true" : "false";
      if (text_.substr(pos_, word.size()) != word) {
        return Err("malformed literal");
      }
      pos_ += word.size();
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = c == 't';
      return Status::Ok();
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      if (c == '-') ++pos_;
      size_t digits = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++digits;
      }
      if (digits == 0) return Err("malformed number");
      if (pos_ < text_.size() &&
          (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
        return Err("floating-point values are not part of the format");
      }
      errno = 0;
      out->kind = JsonValue::Kind::kInt;
      out->int_value = std::strtoll(
          std::string(text_.substr(start, pos_ - start)).c_str(), nullptr, 10);
      if (errno == ERANGE) return Err("integer out of range");
      return Status::Ok();
    }
    if (c == '{' || c == '[') return Err("nested containers are not allowed");
    if (c == 'n') return Err("null is not allowed");
    return Err(StrCat("unexpected character '", std::string(1, c), "'"));
  }

  Status ParseString(std::string* out) {
    SkipSpace();
    if (!Consume('"')) return Err("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u':
            return Err("\\u escapes are not supported by the format");
          default:
            return Err(StrCat("bad escape '\\", std::string(1, esc), "'"));
        }
        continue;
      }
      out->push_back(c);
    }
    return Err("unterminated string");
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Err(const std::string& what) {
    return Status::InvalidArgument(StrCat("malformed JSON: ", what));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

std::string EscapeJson(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Keyed access with strict unknown-key rejection.
class Fields {
 public:
  explicit Fields(std::vector<std::pair<std::string, JsonValue>> fields)
      : fields_(std::move(fields)) {}

  const JsonValue* Find(std::string_view key) {
    for (auto& [k, v] : fields_) {
      if (k == key) {
        used_.insert(k);
        return &v;
      }
    }
    return nullptr;
  }

  Status RequireInt(std::string_view key, int64_t* out) {
    const JsonValue* v = Find(key);
    if (v == nullptr) {
      return Status::InvalidArgument(StrCat("missing field \"", key, "\""));
    }
    if (v->kind != JsonValue::Kind::kInt) {
      return Status::InvalidArgument(
          StrCat("field \"", key, "\" must be an integer"));
    }
    *out = v->int_value;
    return Status::Ok();
  }

  Status RequireString(std::string_view key, std::string* out) {
    const JsonValue* v = Find(key);
    if (v == nullptr) {
      return Status::InvalidArgument(StrCat("missing field \"", key, "\""));
    }
    if (v->kind != JsonValue::Kind::kString) {
      return Status::InvalidArgument(
          StrCat("field \"", key, "\" must be a string"));
    }
    *out = v->string_value;
    return Status::Ok();
  }

  /// Fails if any field was never consumed by Find/Require*.
  Status RejectUnknown() const {
    for (const auto& [k, v] : fields_) {
      (void)v;
      if (used_.count(k) == 0) {
        return Status::InvalidArgument(StrCat("unknown field \"", k, "\""));
      }
    }
    return Status::Ok();
  }

 private:
  std::vector<std::pair<std::string, JsonValue>> fields_;
  std::unordered_set<std::string> used_;
};

Status ParseTxnId(Fields& fields, TxnId* out) {
  int64_t raw = 0;
  NSE_RETURN_IF_ERROR(fields.RequireInt("txn", &raw));
  if (raw < 1 || raw > static_cast<int64_t>(UINT32_MAX)) {
    return Status::InvalidArgument(
        StrCat("transaction id ", raw, " outside [1, 2^32)"));
  }
  *out = static_cast<TxnId>(raw);
  return Status::Ok();
}

Value ValueOf(const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kInt:
      return Value(v.int_value);
    case JsonValue::Kind::kBool:
      return Value(v.bool_value);
    case JsonValue::Kind::kString:
      return Value(v.string_value);
  }
  return Value();
}

}  // namespace

Result<History> ParseHistory(std::string_view text) {
  History history;
  std::unordered_map<std::string, ItemId> item_ids;
  bool saw_header = false;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = StripWhitespace(text.substr(start, end - start));
    start = end + 1;
    ++line_no;
    if (line.empty()) {
      if (start > text.size()) break;
      continue;
    }
    const auto at_line = [&](Status status) {
      return Status(status.code(),
                    StrCat("line ", line_no, ": ", status.message()));
    };

    std::vector<std::pair<std::string, JsonValue>> raw;
    LineScanner scanner(line);
    Status parsed = scanner.ParseObject(&raw);
    if (!parsed.ok()) return at_line(parsed);
    Fields fields(std::move(raw));

    std::string type;
    Status typed = fields.RequireString("type", &type);
    if (!typed.ok()) return at_line(typed);

    if (!saw_header) {
      if (type != "history") {
        return at_line(Status::InvalidArgument(
            "first line must be the {\"type\":\"history\",\"v\":1} header"));
      }
      int64_t version = 0;
      Status v = fields.RequireInt("v", &version);
      if (!v.ok()) return at_line(v);
      if (version != kHistoryFormatVersion) {
        return at_line(Status::Unimplemented(
            StrCat("unsupported history format version ", version)));
      }
      Status unknown = fields.RejectUnknown();
      if (!unknown.ok()) return at_line(unknown);
      saw_header = true;
      continue;
    }

    HistoryEvent event;
    if (type == "begin") {
      event.type = HistoryEventType::kBegin;
    } else if (type == "read") {
      event.type = HistoryEventType::kRead;
    } else if (type == "write") {
      event.type = HistoryEventType::kWrite;
    } else if (type == "commit") {
      event.type = HistoryEventType::kCommit;
    } else if (type == "abort") {
      event.type = HistoryEventType::kAbort;
    } else if (type == "history") {
      return at_line(
          Status::FailedPrecondition("duplicate history header line"));
    } else {
      return at_line(
          Status::InvalidArgument(StrCat("unknown event type \"", type, "\"")));
    }

    Status txn = ParseTxnId(fields, &event.txn);
    if (!txn.ok()) return at_line(txn);

    if (event.type == HistoryEventType::kRead ||
        event.type == HistoryEventType::kWrite) {
      std::string item_name;
      Status item = fields.RequireString("item", &item_name);
      if (!item.ok()) return at_line(item);
      if (item_name.empty()) {
        return at_line(Status::InvalidArgument("empty item name"));
      }
      auto it = item_ids.find(item_name);
      if (it == item_ids.end()) {
        auto added = history.db.AddItem(item_name, Domain());
        if (!added.ok()) return at_line(added.status());
        it = item_ids.emplace(item_name, *added).first;
      }
      event.item = it->second;
      if (const JsonValue* value = fields.Find("value")) {
        event.value = ValueOf(*value);
      }
      if (event.type == HistoryEventType::kRead) {
        if (const JsonValue* from = fields.Find("from")) {
          if (from->kind != JsonValue::Kind::kInt || from->int_value < 0 ||
              from->int_value > static_cast<int64_t>(UINT32_MAX)) {
            return at_line(Status::InvalidArgument(
                "field \"from\" must be a transaction id or 0"));
          }
          event.read_from = static_cast<TxnId>(from->int_value);
        }
      }
    }
    Status unknown = fields.RejectUnknown();
    if (!unknown.ok()) return at_line(unknown);
    history.events.push_back(std::move(event));
  }
  if (!saw_header) {
    return Status::InvalidArgument(
        "empty input: a history needs at least the header line");
  }
  NSE_RETURN_IF_ERROR(ValidateHistory(history));
  return history;
}

Result<History> ReadHistoryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound(StrCat("cannot open ", path));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseHistory(buffer.str());
}

std::string SerializeHistoryEvent(const History& history,
                                  const HistoryEvent& event) {
  std::ostringstream os;
  os << "{\"type\":\"" << HistoryEventTypeName(event.type) << "\",\"txn\":"
     << event.txn;
  if (event.type == HistoryEventType::kRead ||
      event.type == HistoryEventType::kWrite) {
    os << ",\"item\":\"" << EscapeJson(history.db.NameOf(event.item)) << "\"";
    os << ",\"value\":";
    if (event.value.is_int()) {
      os << event.value.AsInt();
    } else if (event.value.is_bool()) {
      os << (event.value.AsBool() ? "true" : "false");
    } else {
      os << '"' << EscapeJson(event.value.AsString()) << '"';
    }
    if (event.type == HistoryEventType::kRead && event.read_from.has_value()) {
      os << ",\"from\":" << *event.read_from;
    }
  }
  os << "}";
  return os.str();
}

std::string SerializeHistory(const History& history) {
  std::ostringstream os;
  os << "{\"type\":\"history\",\"v\":" << history.version << "}\n";
  for (const HistoryEvent& event : history.events) {
    os << SerializeHistoryEvent(history, event) << "\n";
  }
  return os.str();
}

}  // namespace nse
