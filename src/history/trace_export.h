// Trace → history converters: every existing harness doubles as a history
// format producer. A committed SimResult/EngineResult trace becomes a
// well-formed History — each transaction begins right before its first
// committed operation and commits right after its last one, reads carry
// the trace's read_sources as read_from annotations — so the black-box
// plane (parser, streaming checker, nse_check) can be exercised against
// logs whose ground-truth class is already known to the batch checkers.

#ifndef NSE_HISTORY_TRACE_EXPORT_H_
#define NSE_HISTORY_TRACE_EXPORT_H_

#include "engine/engine.h"
#include "history/history.h"
#include "scheduler/sim.h"

namespace nse {

/// Builds a history from a committed trace. `read_sources` must be empty
/// or parallel to `schedule.ops()` (position-wise read_from annotations,
/// the SimResult/EngineResult convention). The item catalog is copied from
/// `db`; the result passes ValidateHistory.
History HistoryFromTrace(const Database& db, const Schedule& schedule,
                         const std::vector<std::optional<TxnId>>& read_sources);

/// HistoryFromTrace over a simulation result.
History HistoryFromSim(const Database& db, const SimResult& result);

/// HistoryFromTrace over an engine result.
History HistoryFromEngine(const Database& db, const EngineResult& result);

}  // namespace nse

#endif  // NSE_HISTORY_TRACE_EXPORT_H_
