// Seeded adversarial history generator: a deterministic event stream for
// fuzzing the black-box plane. Histories are produced one event at a time
// (Next()), so a multimillion-op log can be streamed into the windowed
// checker without ever materializing it; Generate() collects the stream
// into a History for the batch plane.
//
// The base stream interleaves up to `max_active` concurrent transactions
// over a small item catalog — enough contention that conflict cycles arise
// organically. On top of that, anomaly gadgets are injected with the
// configured rates, each a short interleaved block with a known diagnosis:
//
//   dirty read    w_W(x) r_R(x from W) commit_R abort_W
//   lost update   r_1(x) r_2(x) w_1(x) w_2(x) — classic CSR cycle
//   write skew    r_1(a) r_2(b) w_1(b) w_2(a) — CSR cycle, SI-admissible
//   non-CSR k-cycle   phase 1: w_i(x_i) ∀i; phase 2: w_i(x_{(i mod k)+1})
//
// MalformedHistoryCorpus returns texts that MUST be rejected by
// ParseHistory with a typed error — the negative half of the fuzz surface.

#ifndef NSE_HISTORY_HISTORY_GENERATOR_H_
#define NSE_HISTORY_HISTORY_GENERATOR_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "history/history.h"

namespace nse {

/// Tuning knobs for the generator. Defaults give small, contended,
/// anomaly-free histories; fuzz harnesses perturb from here.
struct HistoryGenOptions {
  uint32_t num_txns = 12;        ///< base transactions (gadget txns extra)
  uint32_t num_items = 6;        ///< item catalog size ("x0".."xN")
  uint32_t min_ops_per_txn = 1;  ///< ops per base transaction, uniform
  uint32_t max_ops_per_txn = 5;
  uint32_t max_active = 4;       ///< concurrency width of the interleaving
  double abort_fraction = 0.15;  ///< base transactions that abort
  double annotate_fraction = 0.5;  ///< reads carrying a read_from annotation
  double write_fraction = 0.5;     ///< write vs read per base operation
  /// Gadget injection rates, per admission slot.
  double dirty_read_fraction = 0.0;
  double lost_update_fraction = 0.0;
  double write_skew_fraction = 0.0;
  double csr_cycle_fraction = 0.0;  ///< non-CSR k-cycle (k in [3,5])
};

/// Streams one deterministic history, event by event.
class HistoryGenerator {
 public:
  HistoryGenerator(HistoryGenOptions options, uint64_t seed);

  /// The item catalog the stream is drawn over.
  const Database& db() const { return db_; }

  /// Next event of the stream, or nullopt once the history is complete.
  /// The concatenation of all events passes ValidateHistory.
  std::optional<HistoryEvent> Next();

  /// Drains the remaining stream into a History (catalog included).
  History Generate();

 private:
  struct ActiveTxn {
    TxnId txn = 0;
    uint32_t ops_left = 0;
    bool will_abort = false;
  };

  void EmitOpOrFinish(size_t slot);
  void Admit();
  void PushGadget();
  void PushDirtyRead();
  void PushLostUpdate();
  void PushWriteSkew();
  void PushCsrCycle();
  TxnId NewTxn();
  ItemId RandomItem();
  /// A read of `item`, annotated with the last logged writer when the
  /// annotation coin lands (or always, if `force_annotate`).
  HistoryEvent MakeRead(TxnId txn, ItemId item, bool force_annotate = false);
  HistoryEvent MakeWrite(TxnId txn, ItemId item);

  HistoryGenOptions options_;
  Rng rng_;
  Database db_;
  std::deque<HistoryEvent> pending_;
  std::vector<ActiveTxn> active_;
  uint32_t base_started_ = 0;
  TxnId next_txn_ = 1;
  int64_t next_value_ = 1;
  /// Last transaction that wrote each item, in log order (0 = none yet).
  std::vector<TxnId> last_writer_;
};

/// A complete random well-formed history: options drawn from the seed, all
/// gadget rates enabled at low levels. The workhorse of the differential
/// fuzz harness.
History DrawHistory(uint64_t seed);

/// Texts ParseHistory must reject with a typed error (never a crash).
/// Covers malformed JSON, bad headers, unknown fields/types, and protocol
/// violations: out-of-order commit, op before begin, duplicate txn ids,
/// read of a never-written version.
std::vector<std::string> MalformedHistoryCorpus();

}  // namespace nse

#endif  // NSE_HISTORY_HISTORY_GENERATOR_H_
