// Batch reference analysis of a history: the committed projection run
// through the existing analysis plane (AnalysisContext), with every
// witness mapped from schedule positions back to log event indices via
// CommittedProjection::source_events. This is the oracle the streaming
// checker is differentially tested against — both planes speak the same
// coordinate system (event indices), so witness agreement is exact
// equality.

#ifndef NSE_HISTORY_BATCH_CHECK_H_
#define NSE_HISTORY_BATCH_CHECK_H_

#include <optional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "constraints/integrity_constraint.h"
#include "history/history.h"

namespace nse {

/// One serializability violation, in log coordinates.
struct BatchViolation {
  /// The conflict edge whose creation closed the first cycle.
  std::pair<TxnId, TxnId> edge;
  /// Log event index of the operation that created that edge.
  size_t event = 0;
  /// Cycle witness (txn ids, first == last).
  std::vector<TxnId> cycle;
};

/// Verdict of one analysis plane (the full schedule, or one projection).
struct BatchPlaneReport {
  bool ok = true;
  std::optional<BatchViolation> violation;
};

/// The complete batch verdict over a history.
struct BatchReport {
  /// CSR of the committed projection.
  BatchPlaneReport full;
  /// Per requested plane: CSR of the projection onto that data set
  /// (PWSR's per-conjunct test, Definition 2), parallel to the `planes`
  /// argument of CheckHistoryBatch.
  std::vector<BatchPlaneReport> planes;
  /// Event indices of committed dirty reads: reads whose annotation names
  /// a transaction that aborted, performed by a transaction that
  /// committed. Ascending.
  std::vector<size_t> aborted_reads;

  /// True iff every plane is serializable and no aborted read exists.
  bool ok() const;
};

/// Runs the batch plane over `history` (which must validate). Each entry
/// of `planes` is a non-empty item set defining one projected plane.
BatchReport CheckHistoryBatch(const History& history,
                              const std::vector<DataSet>& planes = {});

/// Event indices of committed dirty reads (see BatchReport), by direct
/// scan of the log — independent of both checkers, for cross-checking.
std::vector<size_t> AbortedReadEvents(const History& history);

/// Wraps item partitions as an integrity constraint whose conjunct data
/// sets are exactly `planes` (each conjunct is the vacuous sum(items) >= 0
/// over its set) — the bridge from the history plane, which has no
/// constraint language, to PWSR machinery that wants an IC.
Result<IntegrityConstraint> PlanesAsConstraint(
    const Database& db, const std::vector<DataSet>& planes,
    ConjunctOverlap overlap = ConjunctOverlap::kReject);

}  // namespace nse

#endif  // NSE_HISTORY_BATCH_CHECK_H_
