#include "history/history_generator.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace nse {

HistoryGenerator::HistoryGenerator(HistoryGenOptions options, uint64_t seed)
    : options_(options), rng_(seed) {
  NSE_CHECK(options_.num_items >= 2);
  NSE_CHECK(options_.min_ops_per_txn >= 1 &&
            options_.min_ops_per_txn <= options_.max_ops_per_txn);
  NSE_CHECK(options_.max_active >= 1);
  for (uint32_t i = 0; i < options_.num_items; ++i) {
    NSE_CHECK(db_.AddItem(StrCat("x", i), Domain()).ok());
  }
  last_writer_.assign(options_.num_items, 0);
}

TxnId HistoryGenerator::NewTxn() { return next_txn_++; }

ItemId HistoryGenerator::RandomItem() {
  return static_cast<ItemId>(rng_.NextBelow(options_.num_items));
}

HistoryEvent HistoryGenerator::MakeRead(TxnId txn, ItemId item,
                                        bool force_annotate) {
  std::optional<TxnId> from;
  if (force_annotate || rng_.NextBool(options_.annotate_fraction)) {
    from = last_writer_[item];  // 0 = initial state, always valid
  }
  return HistoryEvent::Read(txn, item, Value(next_value_++), from);
}

HistoryEvent HistoryGenerator::MakeWrite(TxnId txn, ItemId item) {
  last_writer_[item] = txn;
  return HistoryEvent::Write(txn, item, Value(next_value_++));
}

void HistoryGenerator::PushDirtyRead() {
  // w_W(x) r_R(x from W) commit_R abort_W: R commits having observed a
  // version that never happened.
  TxnId writer = NewTxn();
  TxnId reader = NewTxn();
  ItemId x = RandomItem();
  pending_.push_back(HistoryEvent::Begin(writer));
  pending_.push_back(HistoryEvent::Begin(reader));
  pending_.push_back(MakeWrite(writer, x));
  pending_.push_back(MakeRead(reader, x, /*force_annotate=*/true));
  pending_.push_back(HistoryEvent::Commit(reader));
  pending_.push_back(HistoryEvent::Abort(writer));
}

void HistoryGenerator::PushLostUpdate() {
  // r_1(x) r_2(x) w_1(x) w_2(x): T2's write clobbers T1's read-modify-write
  // — edges T1→T2 (r1 before w2) and T2→T1 (r2 before w1), a CSR cycle.
  TxnId t1 = NewTxn();
  TxnId t2 = NewTxn();
  ItemId x = RandomItem();
  pending_.push_back(HistoryEvent::Begin(t1));
  pending_.push_back(HistoryEvent::Begin(t2));
  pending_.push_back(MakeRead(t1, x));
  pending_.push_back(MakeRead(t2, x));
  pending_.push_back(MakeWrite(t1, x));
  pending_.push_back(MakeWrite(t2, x));
  pending_.push_back(HistoryEvent::Commit(t1));
  pending_.push_back(HistoryEvent::Commit(t2));
}

void HistoryGenerator::PushWriteSkew() {
  // r_1(a) r_2(b) w_1(b) w_2(a): each transaction reads the item the other
  // writes — a CSR cycle that snapshot isolation admits.
  TxnId t1 = NewTxn();
  TxnId t2 = NewTxn();
  ItemId a = RandomItem();
  ItemId b = (a + 1) % options_.num_items;
  pending_.push_back(HistoryEvent::Begin(t1));
  pending_.push_back(HistoryEvent::Begin(t2));
  pending_.push_back(MakeRead(t1, a));
  pending_.push_back(MakeRead(t2, b));
  pending_.push_back(MakeWrite(t1, b));
  pending_.push_back(MakeWrite(t2, a));
  pending_.push_back(HistoryEvent::Commit(t1));
  pending_.push_back(HistoryEvent::Commit(t2));
}

void HistoryGenerator::PushCsrCycle() {
  // k transactions, k items: phase 1 w_i(x_i), phase 2 w_i(x_{(i mod k)+1})
  // — ww edges i → (i mod k)+1 close a k-cycle no pairwise swap breaks.
  uint32_t k = static_cast<uint32_t>(rng_.NextInt(3, 5));
  k = std::min(k, options_.num_items);
  std::vector<TxnId> txns(k);
  std::vector<ItemId> items(k);
  for (uint32_t i = 0; i < k; ++i) {
    txns[i] = NewTxn();
    items[i] = static_cast<ItemId>(i);
    pending_.push_back(HistoryEvent::Begin(txns[i]));
  }
  for (uint32_t i = 0; i < k; ++i) {
    pending_.push_back(MakeWrite(txns[i], items[i]));
  }
  for (uint32_t i = 0; i < k; ++i) {
    pending_.push_back(MakeWrite(txns[i], items[(i + 1) % k]));
  }
  for (uint32_t i = 0; i < k; ++i) {
    pending_.push_back(HistoryEvent::Commit(txns[i]));
  }
}

void HistoryGenerator::PushGadget() {
  double roll = rng_.NextDouble();
  if (roll < options_.dirty_read_fraction) {
    PushDirtyRead();
    return;
  }
  roll -= options_.dirty_read_fraction;
  if (roll < options_.lost_update_fraction) {
    PushLostUpdate();
    return;
  }
  roll -= options_.lost_update_fraction;
  if (roll < options_.write_skew_fraction) {
    PushWriteSkew();
    return;
  }
  roll -= options_.write_skew_fraction;
  if (roll < options_.csr_cycle_fraction) {
    PushCsrCycle();
  }
}

void HistoryGenerator::Admit() {
  ActiveTxn txn;
  txn.txn = NewTxn();
  txn.ops_left = static_cast<uint32_t>(
      rng_.NextInt(options_.min_ops_per_txn, options_.max_ops_per_txn));
  txn.will_abort = rng_.NextBool(options_.abort_fraction);
  active_.push_back(txn);
  ++base_started_;
  pending_.push_back(HistoryEvent::Begin(txn.txn));
}

void HistoryGenerator::EmitOpOrFinish(size_t slot) {
  ActiveTxn& txn = active_[slot];
  if (txn.ops_left == 0) {
    pending_.push_back(txn.will_abort ? HistoryEvent::Abort(txn.txn)
                                      : HistoryEvent::Commit(txn.txn));
    active_.erase(active_.begin() + static_cast<ptrdiff_t>(slot));
    return;
  }
  --txn.ops_left;
  ItemId item = RandomItem();
  pending_.push_back(rng_.NextBool(options_.write_fraction)
                         ? MakeWrite(txn.txn, item)
                         : MakeRead(txn.txn, item));
}

std::optional<HistoryEvent> HistoryGenerator::Next() {
  while (pending_.empty()) {
    const bool can_admit = base_started_ < options_.num_txns &&
                           active_.size() < options_.max_active;
    if (can_admit && (active_.empty() || rng_.NextBool(0.35))) {
      // Each admission slot first rolls for a gadget block, then admits the
      // base transaction that earned the slot.
      PushGadget();
      Admit();
      continue;
    }
    if (active_.empty()) return std::nullopt;  // stream exhausted
    EmitOpOrFinish(rng_.NextBelow(active_.size()));
  }
  HistoryEvent event = std::move(pending_.front());
  pending_.pop_front();
  return event;
}

History HistoryGenerator::Generate() {
  History history;
  history.db = db_;
  while (std::optional<HistoryEvent> event = Next()) {
    history.events.push_back(std::move(*event));
  }
  return history;
}

History DrawHistory(uint64_t seed) {
  Rng rng(seed);
  HistoryGenOptions options;
  options.num_txns = static_cast<uint32_t>(rng.NextInt(4, 24));
  options.num_items = static_cast<uint32_t>(rng.NextInt(2, 8));
  options.max_ops_per_txn = static_cast<uint32_t>(rng.NextInt(2, 6));
  options.max_active = static_cast<uint32_t>(rng.NextInt(1, 6));
  options.abort_fraction = rng.NextDouble() * 0.3;
  options.annotate_fraction = rng.NextDouble();
  options.write_fraction = 0.3 + rng.NextDouble() * 0.4;
  options.dirty_read_fraction = rng.NextBool(0.5) ? 0.10 : 0.0;
  options.lost_update_fraction = rng.NextBool(0.5) ? 0.10 : 0.0;
  options.write_skew_fraction = rng.NextBool(0.5) ? 0.10 : 0.0;
  options.csr_cycle_fraction = rng.NextBool(0.5) ? 0.10 : 0.0;
  HistoryGenerator gen(options, rng.Next());
  return gen.Generate();
}

std::vector<std::string> MalformedHistoryCorpus() {
  const std::string header = "{\"type\":\"history\",\"v\":1}\n";
  return {
      // Lexical / structural JSON failures.
      "",
      "not json at all\n",
      header + "{\"type\":\"begin\",\"txn\":1\n",
      header + "{\"type\":\"begin\",\"txn\":1} trailing\n",
      header + "{\"type\":\"begin\",\"txn\":1.5}\n",
      header + "{\"type\":\"begin\",\"txn\":null}\n",
      header + "{\"type\":\"begin\",\"txn\":[1]}\n",
      header + "{\"type\":\"begin\",\"txn\":1,\"txn\":2}\n",
      header + "{\"type\":\"read\",\"txn\":1,\"item\":\"a\\u0041\"}\n",
      // Header failures.
      "{\"type\":\"begin\",\"txn\":1}\n",
      "{\"type\":\"history\",\"v\":99}\n",
      "{\"type\":\"history\"}\n",
      header + header,
      // Schema failures.
      header + "{\"type\":\"merge\",\"txn\":1}\n",
      header + "{\"type\":\"begin\",\"txn\":1,\"extra\":true}\n",
      header + "{\"type\":\"begin\"}\n",
      header + "{\"type\":\"begin\",\"txn\":0}\n",
      header + "{\"type\":\"begin\",\"txn\":-3}\n",
      header + "{\"type\":\"begin\",\"txn\":4294967296}\n",
      header + "{\"type\":\"write\",\"txn\":1}\n",
      header + "{\"type\":\"begin\",\"txn\":1}\n"
               "{\"type\":\"read\",\"txn\":1,\"item\":\"a\",\"from\":-1}\n",
      header + "{\"type\":\"begin\",\"txn\":1}\n"
               "{\"type\":\"write\",\"txn\":1,\"item\":\"\",\"value\":0}\n",
      // Protocol failures (well-formed JSON, invalid event order).
      header + "{\"type\":\"commit\",\"txn\":1}\n",
      header + "{\"type\":\"write\",\"txn\":1,\"item\":\"a\",\"value\":1}\n",
      header + "{\"type\":\"begin\",\"txn\":1}\n"
               "{\"type\":\"begin\",\"txn\":1}\n",
      header + "{\"type\":\"begin\",\"txn\":1}\n"
               "{\"type\":\"commit\",\"txn\":1}\n"
               "{\"type\":\"begin\",\"txn\":1}\n",
      header + "{\"type\":\"begin\",\"txn\":1}\n"
               "{\"type\":\"commit\",\"txn\":1}\n"
               "{\"type\":\"commit\",\"txn\":1}\n",
      header + "{\"type\":\"begin\",\"txn\":1}\n"
               "{\"type\":\"commit\",\"txn\":1}\n"
               "{\"type\":\"write\",\"txn\":1,\"item\":\"a\",\"value\":1}\n",
      header + "{\"type\":\"begin\",\"txn\":1}\n"
               "{\"type\":\"read\",\"txn\":1,\"item\":\"a\",\"from\":7}\n",
      header + "{\"type\":\"begin\",\"txn\":1}\n"
               "{\"type\":\"begin\",\"txn\":2}\n"
               "{\"type\":\"read\",\"txn\":1,\"item\":\"a\",\"from\":2}\n",
  };
}

}  // namespace nse
