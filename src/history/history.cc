#include "history/history.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"

namespace nse {

const char* HistoryEventTypeName(HistoryEventType type) {
  switch (type) {
    case HistoryEventType::kBegin:
      return "begin";
    case HistoryEventType::kRead:
      return "read";
    case HistoryEventType::kWrite:
      return "write";
    case HistoryEventType::kCommit:
      return "commit";
    case HistoryEventType::kAbort:
      return "abort";
  }
  return "?";
}

namespace {

enum class TxnPhase : uint8_t { kUnseen, kActive, kDone };

struct TxnTrack {
  TxnPhase phase = TxnPhase::kUnseen;
  /// Items this transaction has written so far (validates read_from).
  std::unordered_set<ItemId> written;
};

}  // namespace

Status ValidateHistory(const History& history) {
  if (history.version != kHistoryFormatVersion) {
    return Status::InvalidArgument(
        StrCat("unsupported history version ", history.version));
  }
  std::unordered_map<TxnId, TxnTrack> txns;
  for (size_t i = 0; i < history.events.size(); ++i) {
    const HistoryEvent& e = history.events[i];
    const auto fail = [&](StatusCode code, const std::string& what) {
      return Status(code, StrCat("event ", i, " (", HistoryEventTypeName(e.type),
                                 " txn ", e.txn, "): ", what));
    };
    if (e.txn == 0) {
      return fail(StatusCode::kInvalidArgument,
                  "transaction ids must be >= 1");
    }
    TxnTrack& track = txns[e.txn];
    switch (e.type) {
      case HistoryEventType::kBegin:
        if (track.phase == TxnPhase::kActive) {
          return fail(StatusCode::kFailedPrecondition,
                      "duplicate begin of an active transaction");
        }
        if (track.phase == TxnPhase::kDone) {
          return fail(StatusCode::kFailedPrecondition,
                      "transaction id reused after commit/abort");
        }
        track.phase = TxnPhase::kActive;
        break;
      case HistoryEventType::kRead:
      case HistoryEventType::kWrite: {
        if (track.phase == TxnPhase::kUnseen) {
          return fail(StatusCode::kFailedPrecondition,
                      "operation before begin");
        }
        if (track.phase == TxnPhase::kDone) {
          return fail(StatusCode::kFailedPrecondition,
                      "operation after commit/abort");
        }
        if (e.item >= history.db.num_items()) {
          return fail(StatusCode::kNotFound,
                      StrCat("unknown item id ", e.item));
        }
        if (e.type == HistoryEventType::kWrite) {
          track.written.insert(e.item);
        } else if (e.read_from.has_value() && *e.read_from != 0) {
          auto writer = txns.find(*e.read_from);
          if (writer == txns.end() ||
              writer->second.written.count(e.item) == 0) {
            return fail(StatusCode::kFailedPrecondition,
                        StrCat("read of a never-written version: txn ",
                               *e.read_from, " has no prior write of ",
                               history.db.NameOf(e.item)));
          }
        }
        break;
      }
      case HistoryEventType::kCommit:
      case HistoryEventType::kAbort:
        if (track.phase == TxnPhase::kUnseen) {
          return fail(StatusCode::kFailedPrecondition,
                      "commit/abort of an unknown transaction");
        }
        if (track.phase == TxnPhase::kDone) {
          return fail(StatusCode::kFailedPrecondition,
                      "commit/abort after the transaction already finished");
        }
        track.phase = TxnPhase::kDone;
        break;
    }
  }
  return Status::Ok();
}

TxnFate CommittedProjection::FateOf(TxnId txn) const {
  auto it = std::lower_bound(txn_ids.begin(), txn_ids.end(), txn);
  if (it == txn_ids.end() || *it != txn) return TxnFate::kIncomplete;
  return fates[static_cast<size_t>(it - txn_ids.begin())];
}

CommittedProjection CommittedProjectionOf(const History& history) {
  // One pass to settle fates.
  std::unordered_map<TxnId, TxnFate> fate_of;
  for (const HistoryEvent& e : history.events) {
    switch (e.type) {
      case HistoryEventType::kBegin:
        fate_of.emplace(e.txn, TxnFate::kIncomplete);
        break;
      case HistoryEventType::kCommit:
        fate_of[e.txn] = TxnFate::kCommitted;
        break;
      case HistoryEventType::kAbort:
        fate_of[e.txn] = TxnFate::kAborted;
        break;
      default:
        break;
    }
  }

  CommittedProjection out;
  out.txn_ids.reserve(fate_of.size());
  for (const auto& [txn, fate] : fate_of) out.txn_ids.push_back(txn);
  std::sort(out.txn_ids.begin(), out.txn_ids.end());
  out.fates.reserve(out.txn_ids.size());
  for (TxnId txn : out.txn_ids) out.fates.push_back(fate_of[txn]);

  // Second pass collects committed operations in log order.
  OpSequence ops;
  for (size_t i = 0; i < history.events.size(); ++i) {
    const HistoryEvent& e = history.events[i];
    if (e.type != HistoryEventType::kRead &&
        e.type != HistoryEventType::kWrite) {
      continue;
    }
    if (fate_of[e.txn] != TxnFate::kCommitted) continue;
    ops.push_back(e.type == HistoryEventType::kRead
                      ? Operation::Read(e.txn, e.item, e.value)
                      : Operation::Write(e.txn, e.item, e.value));
    out.annotations.read_from.push_back(
        e.type == HistoryEventType::kRead ? e.read_from : std::nullopt);
    out.source_events.push_back(i);
  }
  out.schedule = Schedule(std::move(ops));
  return out;
}

}  // namespace nse
