#include "history/trace_export.h"

#include <unordered_map>

#include "common/logging.h"

namespace nse {

History HistoryFromTrace(
    const Database& db, const Schedule& schedule,
    const std::vector<std::optional<TxnId>>& read_sources) {
  NSE_CHECK(read_sources.empty() ||
            read_sources.size() == schedule.ops().size());
  // Last trace position of each transaction — its commit goes right after.
  std::unordered_map<TxnId, size_t> last_pos;
  for (size_t i = 0; i < schedule.ops().size(); ++i) {
    last_pos[schedule.ops()[i].txn] = i;
  }

  History history;
  history.db = db;
  history.events.reserve(schedule.ops().size() + 2 * last_pos.size());
  std::unordered_map<TxnId, bool> begun;
  for (size_t i = 0; i < schedule.ops().size(); ++i) {
    const Operation& op = schedule.ops()[i];
    if (!begun[op.txn]) {
      begun[op.txn] = true;
      history.events.push_back(HistoryEvent::Begin(op.txn));
    }
    if (op.is_read()) {
      std::optional<TxnId> from =
          read_sources.empty() ? std::nullopt : read_sources[i];
      history.events.push_back(
          HistoryEvent::Read(op.txn, op.entity, op.value, from));
    } else {
      history.events.push_back(
          HistoryEvent::Write(op.txn, op.entity, op.value));
    }
    if (last_pos[op.txn] == i) {
      history.events.push_back(HistoryEvent::Commit(op.txn));
    }
  }
  return history;
}

History HistoryFromSim(const Database& db, const SimResult& result) {
  return HistoryFromTrace(db, result.schedule, result.read_sources);
}

History HistoryFromEngine(const Database& db, const EngineResult& result) {
  return HistoryFromTrace(db, result.schedule, result.read_sources);
}

}  // namespace nse
