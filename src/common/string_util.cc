#include "common/string_util.h"

namespace nse {

std::vector<std::string> StrSplit(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\n' ||
          text[begin] == '\r')) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\n' || text[end - 1] == '\r')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace nse
