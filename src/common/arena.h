// A monotonic bump allocator for per-computation scratch: allocations are
// O(1) pointer bumps out of geometrically growing blocks, individual frees
// do not exist, and Reset() rewinds the whole arena while keeping the
// blocks for reuse. The analysis layer uses one arena per schedule context
// so a fused graph build performs a handful of block mallocs instead of a
// storm of small vector allocations (ISSUE 6; cf. the cache-conscious
// layout arguments of Ailamaki et al., PAPERS.md).
//
// ArenaAllocator adapts the arena to the standard allocator interface, so
// scratch containers are ordinary std::vectors that happen to bump-allocate
// (`std::vector<T, ArenaAllocator<T>>`). Deallocate is a no-op; memory
// comes back only via Reset()/destruction. Containers bound to an arena
// must not outlive it.
//
// Thread-compatible, not thread-safe: one arena per thread/context.

#ifndef NSE_COMMON_ARENA_H_
#define NSE_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace nse {

/// Monotonic block-chained bump allocator.
class MonotonicArena {
 public:
  /// `first_block_bytes` sizes the first block; later blocks double (capped
  /// at kMaxBlockBytes) so total malloc traffic is logarithmic in bytes
  /// served.
  explicit MonotonicArena(size_t first_block_bytes = 1 << 12)
      : next_block_bytes_(first_block_bytes < kMinBlockBytes
                              ? kMinBlockBytes
                              : first_block_bytes) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Returns `bytes` bytes aligned to `align` (a power of two). Oversized
  /// requests get a dedicated block.
  void* Allocate(size_t bytes, size_t align) {
    if (bytes == 0) bytes = 1;
    size_t offset = (offset_ + (align - 1)) & ~(align - 1);
    if (current_ >= blocks_.size() || offset + bytes > blocks_[current_].size) {
      NextBlock(bytes + align);
      offset = (offset_ + (align - 1)) & ~(align - 1);
    }
    offset_ = offset + bytes;
    return blocks_[current_].data.get() + offset;
  }

  /// Rewinds to empty, keeping every block for reuse.
  void Reset() {
    current_ = 0;
    offset_ = 0;
  }

  /// Total bytes owned across blocks (capacity, not live bytes).
  size_t capacity_bytes() const {
    size_t total = 0;
    for (const Block& block : blocks_) total += block.size;
    return total;
  }

 private:
  static constexpr size_t kMinBlockBytes = 256;
  static constexpr size_t kMaxBlockBytes = 1 << 20;

  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  /// Advances to the next block that can serve `min_bytes`, allocating one
  /// when no retained block fits.
  void NextBlock(size_t min_bytes) {
    while (current_ + 1 < blocks_.size()) {
      ++current_;
      offset_ = 0;
      if (blocks_[current_].size >= min_bytes) return;
    }
    size_t size = next_block_bytes_;
    if (size < min_bytes) size = min_bytes;
    if (next_block_bytes_ < kMaxBlockBytes) next_block_bytes_ *= 2;
    Block block;
    block.data = std::make_unique<char[]>(size);
    block.size = size;
    blocks_.push_back(std::move(block));
    current_ = blocks_.size() - 1;
    offset_ = 0;
  }

  std::vector<Block> blocks_;
  size_t current_ = 0;
  size_t offset_ = 0;
  size_t next_block_bytes_;
};

/// Standard-allocator adapter over a MonotonicArena (deallocate is a no-op).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(MonotonicArena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, size_t) {}

  MonotonicArena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const {
    return arena_ != other.arena();
  }

 private:
  MonotonicArena* arena_;
};

/// A std::vector bound to an arena.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace nse

#endif  // NSE_COMMON_ARENA_H_
