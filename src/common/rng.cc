#include "common/rng.h"

#include <cassert>

namespace nse {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return static_cast<int64_t>(static_cast<uint64_t>(lo) + NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng(Next()); }

Rng Rng::Split(uint64_t stream) const {
  // Fold all 256 bits of parent state into one word (rotations keep the
  // words from cancelling), then perturb it with a SplitMix64 jump of the
  // stream id. For a fixed parent state the map stream -> seed is injective
  // up to the SplitMix64 output permutation, so distinct ids give distinct,
  // well-separated seed sequences.
  uint64_t folded = state_[0] ^ Rotl(state_[1], 17) ^ Rotl(state_[2], 29) ^
                    Rotl(state_[3], 43);
  uint64_t jump = stream;
  uint64_t derived = folded ^ SplitMix64(jump);
  return Rng(derived);
}

}  // namespace nse
