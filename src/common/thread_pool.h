// A small fixed-size worker pool for CPU-bound fan-out (the violation
// search's trial batches). Tasks are opaque closures executed in FIFO order
// by whichever worker frees up first; Wait() gives a barrier.
//
// Deliberately minimal: no futures, no task priorities, no work stealing —
// callers that need deterministic results must make their tasks commutative
// (the violation search does this with per-trial RNG streams and an
// associative outcome merge; see docs/adr/0002).

#ifndef NSE_COMMON_THREAD_POOL_H_
#define NSE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nse {

/// Fixed pool of worker threads draining one shared task queue.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Waits for every submitted task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution by some worker.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void Wait();

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// A sensible default worker count: hardware_concurrency, at least 1.
  static size_t DefaultNumThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: task or shutdown
  std::condition_variable idle_cv_;   // signals Wait(): all drained
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;                 // tasks currently executing
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace nse

#endif  // NSE_COMMON_THREAD_POOL_H_
