// Minimal assertion macros for internal invariants. These abort on failure;
// they guard programmer errors, never user input (user input goes through
// Status).

#ifndef NSE_COMMON_LOGGING_H_
#define NSE_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a message if `cond` is false. Enabled in all build types.
#define NSE_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "NSE_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

/// NSE_CHECK with an extra printf-style context message.
#define NSE_CHECK_MSG(cond, ...)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "NSE_CHECK failed at %s:%d: %s: ", __FILE__,   \
                   __LINE__, #cond);                                      \
      std::fprintf(stderr, __VA_ARGS__);                                  \
      std::fprintf(stderr, "\n");                                         \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

/// Debug-only checks: compiled in when assertions are on (!NDEBUG) or when
/// NSE_DEBUG_CHECKS is defined — the sanitizer CI builds define the latter
/// so invariants stay armed under TSan/ASan even at RelWithDebInfo.
#if !defined(NDEBUG) || defined(NSE_DEBUG_CHECKS)
#define NSE_DCHECK(cond) NSE_CHECK(cond)
#define NSE_DCHECK_MSG(cond, ...) NSE_CHECK_MSG(cond, __VA_ARGS__)
#else
// Disabled: the condition is never evaluated at runtime, but stays
// compiled (odr-used) so variables that exist only for the check do not
// trip -Wunused.
#define NSE_DCHECK(cond)           \
  do {                             \
    if (false) (void)(cond);       \
  } while (false)
#define NSE_DCHECK_MSG(cond, ...)  \
  do {                             \
    if (false) (void)(cond);       \
  } while (false)
#endif

#endif  // NSE_COMMON_LOGGING_H_
