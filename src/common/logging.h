// Minimal assertion macros for internal invariants. These abort on failure;
// they guard programmer errors, never user input (user input goes through
// Status).

#ifndef NSE_COMMON_LOGGING_H_
#define NSE_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a message if `cond` is false. Enabled in all build types.
#define NSE_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "NSE_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

/// NSE_CHECK with an extra printf-style context message.
#define NSE_CHECK_MSG(cond, ...)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "NSE_CHECK failed at %s:%d: %s: ", __FILE__,   \
                   __LINE__, #cond);                                      \
      std::fprintf(stderr, __VA_ARGS__);                                  \
      std::fprintf(stderr, "\n");                                         \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#endif  // NSE_COMMON_LOGGING_H_
