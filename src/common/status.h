// Status and Result<T>: exception-free error handling for the nse library.
//
// Public APIs that can fail return Status (no payload) or Result<T> (payload
// or error), mirroring the conventions of large C++ database codebases.

#ifndef NSE_COMMON_STATUS_H_
#define NSE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace nse {

/// Error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller supplied a malformed value.
  kNotFound,          ///< A named entity (item, transaction, ...) is unknown.
  kFailedPrecondition,///< Operation is valid but the object state is not.
  kOutOfRange,        ///< Index or position outside the valid range.
  kUnimplemented,     ///< Feature intentionally not supported.
  kDeadlineExceeded,  ///< A wall-clock budget ran out before completion.
  kInternal,          ///< Invariant violation inside the library.
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on the success path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns the OK status.
  static Status Ok() { return Status(); }
  /// Returns an InvalidArgument status with the given message.
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  /// Returns a NotFound status with the given message.
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  /// Returns a FailedPrecondition status with the given message.
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  /// Returns an OutOfRange status with the given message.
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  /// Returns an Unimplemented status with the given message.
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  /// Returns a DeadlineExceeded status with the given message.
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  /// Returns an Internal status with the given message.
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The error message; empty for OK.
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value of type T or an error Status. Dereference only when ok().
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The status (OK when a value is present).
  const Status& status() const { return status_; }

  /// Accessors; valid only when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace nse

/// Propagates a non-OK Status from the evaluated expression.
#define NSE_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::nse::Status nse_status_tmp_ = (expr);      \
    if (!nse_status_tmp_.ok()) return nse_status_tmp_; \
  } while (false)

/// Assigns the value of a Result expression to `lhs` or propagates its error.
#define NSE_ASSIGN_OR_RETURN(lhs, expr)                     \
  NSE_ASSIGN_OR_RETURN_IMPL_(                               \
      NSE_STATUS_CONCAT_(nse_result_, __LINE__), lhs, expr)

#define NSE_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                               \
  if (!var.ok()) return var.status();              \
  lhs = std::move(var).value()

#define NSE_STATUS_CONCAT_INNER_(a, b) a##b
#define NSE_STATUS_CONCAT_(a, b) NSE_STATUS_CONCAT_INNER_(a, b)

#endif  // NSE_COMMON_STATUS_H_
