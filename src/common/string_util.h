// Small string helpers used across the library (GCC 12 has no std::format).

#ifndef NSE_COMMON_STRING_UTIL_H_
#define NSE_COMMON_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace nse {

namespace internal {
inline void StrAppendAll(std::ostringstream&) {}
template <typename T, typename... Rest>
void StrAppendAll(std::ostringstream& os, const T& head, const Rest&... rest) {
  os << head;
  StrAppendAll(os, rest...);
}
}  // namespace internal

/// Concatenates the stream representations of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  internal::StrAppendAll(os, args...);
  return os.str();
}

/// Joins elements of `parts` with `sep`, using each element's ostream output.
template <typename Container>
std::string StrJoin(const Container& parts, std::string_view sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& part : parts) {
    if (!first) os << sep;
    first = false;
    os << part;
  }
  return os.str();
}

/// Splits `text` on `delim`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view text, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True iff `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace nse

#endif  // NSE_COMMON_STRING_UTIL_H_
