// Deterministic pseudo-random number generation for workloads and property
// tests. Every randomized component takes an explicit seed so that paper
// experiments and counterexample searches are reproducible.

#ifndef NSE_COMMON_RNG_H_
#define NSE_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace nse {

/// xoshiro256** generator seeded via SplitMix64. Deterministic across
/// platforms (unlike std::mt19937 + std::uniform_int_distribution, whose
/// distribution output is implementation-defined).
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// Picks a uniformly random element of `items` (must be non-empty).
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[NextBelow(items.size())];
  }

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = NextBelow(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent generator (for fan-out without stream overlap).
  Rng Fork();

  /// Deterministic sub-stream derivation: the generator for stream id
  /// `stream`, a pure function of (current state, stream) — the parent is
  /// not advanced, and the same (state, stream) pair always yields the same
  /// sub-generator. Distinct stream ids are decorrelated by a SplitMix64
  /// jump over the id before it is folded into the parent state, so
  /// Split(0), Split(1), ... are pairwise independent streams. This is the
  /// primitive behind reproducible parallel fan-out: worker (or trial) k
  /// draws from Split(k), so results are independent of how work is
  /// assigned to threads.
  Rng Split(uint64_t stream) const;

 private:
  uint64_t state_[4];
};

}  // namespace nse

#endif  // NSE_COMMON_RNG_H_
