#include "state/database.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace nse {

DataSet::DataSet(std::vector<ItemId> ids) : ids_(std::move(ids)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

DataSet::DataSet(std::initializer_list<ItemId> ids)
    : DataSet(std::vector<ItemId>(ids)) {}

bool DataSet::Contains(ItemId item) const {
  return std::binary_search(ids_.begin(), ids_.end(), item);
}

void DataSet::Insert(ItemId item) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), item);
  if (it == ids_.end() || *it != item) ids_.insert(it, item);
}

void DataSet::Remove(ItemId item) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), item);
  if (it != ids_.end() && *it == item) ids_.erase(it);
}

DataSet DataSet::Union(const DataSet& a, const DataSet& b) {
  std::vector<ItemId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.ids_.begin(), a.ids_.end(), b.ids_.begin(), b.ids_.end(),
                 std::back_inserter(out));
  DataSet result;
  result.ids_ = std::move(out);
  return result;
}

DataSet DataSet::Intersect(const DataSet& a, const DataSet& b) {
  std::vector<ItemId> out;
  std::set_intersection(a.ids_.begin(), a.ids_.end(), b.ids_.begin(),
                        b.ids_.end(), std::back_inserter(out));
  DataSet result;
  result.ids_ = std::move(out);
  return result;
}

DataSet DataSet::Minus(const DataSet& a, const DataSet& b) {
  std::vector<ItemId> out;
  std::set_difference(a.ids_.begin(), a.ids_.end(), b.ids_.begin(),
                      b.ids_.end(), std::back_inserter(out));
  DataSet result;
  result.ids_ = std::move(out);
  return result;
}

bool DataSet::Disjoint(const DataSet& a, const DataSet& b) {
  auto ia = a.ids_.begin();
  auto ib = b.ids_.begin();
  while (ia != a.ids_.end() && ib != b.ids_.end()) {
    if (*ia == *ib) return false;
    if (*ia < *ib) {
      ++ia;
    } else {
      ++ib;
    }
  }
  return true;
}

bool DataSet::IsSubsetOf(const DataSet& other) const {
  return std::includes(other.ids_.begin(), other.ids_.end(), ids_.begin(),
                       ids_.end());
}

Result<ItemId> Database::AddItem(std::string name, Domain domain) {
  if (name.empty()) {
    return Status::InvalidArgument("data item name must be non-empty");
  }
  if (by_name_.count(name) != 0) {
    return Status::InvalidArgument(StrCat("duplicate data item: ", name));
  }
  ItemId id = static_cast<ItemId>(names_.size());
  by_name_.emplace(name, id);
  names_.push_back(std::move(name));
  domains_.push_back(std::move(domain));
  return id;
}

Status Database::AddIntItems(const std::vector<std::string>& names, int64_t lo,
                             int64_t hi) {
  for (const auto& name : names) {
    NSE_ASSIGN_OR_RETURN(ItemId ignored, AddItem(name, Domain::IntRange(lo, hi)));
    (void)ignored;
  }
  return Status::Ok();
}

Result<ItemId> Database::Find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return Status::NotFound(StrCat("unknown data item: ", name));
  }
  return it->second;
}

ItemId Database::MustFind(std::string_view name) const {
  auto result = Find(name);
  NSE_CHECK_MSG(result.ok(), "unknown data item '%.*s'",
                static_cast<int>(name.size()), name.data());
  return *result;
}

const std::string& Database::NameOf(ItemId item) const {
  NSE_CHECK(item < names_.size());
  return names_[item];
}

const Domain& Database::DomainOf(ItemId item) const {
  NSE_CHECK(item < domains_.size());
  return domains_[item];
}

DataSet Database::AllItems() const {
  std::vector<ItemId> ids(names_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<ItemId>(i);
  return DataSet(std::move(ids));
}

DataSet Database::SetOf(std::initializer_list<std::string_view> names) const {
  std::vector<ItemId> ids;
  ids.reserve(names.size());
  for (auto name : names) ids.push_back(MustFind(name));
  return DataSet(std::move(ids));
}

std::string Database::DataSetToString(const DataSet& set) const {
  std::vector<std::string> parts;
  parts.reserve(set.size());
  for (ItemId item : set) parts.push_back(NameOf(item));
  return StrCat("{", StrJoin(parts, ", "), "}");
}

}  // namespace nse
